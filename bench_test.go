package recflex_test

// One benchmark per table and figure of the paper's evaluation (§VI), driving
// the same harness as cmd/recflex-bench at a reduced scale, plus
// micro-benchmarks of the core primitives. Regenerate the full evaluation
// with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/recflex-bench -exp all -scale 10 -eval 8   # bigger
//	go run ./cmd/recflex-bench -exp all -paper              # full paper scale

import (
	"math/rand"
	"sync"
	"testing"

	recflex "repro"
	"repro/internal/datasynth"
	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/perf"
	"repro/internal/sched"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite shares one tuned suite across benchmarks so per-benchmark time
// measures the experiment, not repeated tuning.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.Config{
			Scale:       50, // models A-E at 16-24 features: benchmark scale
			TuneBatches: 1,
			EvalBatches: 2,
			BatchCap:    512,
			Occupancies: []int{2, 4, 8},
			Parallelism: 4,
		})
	})
	return suite
}

func BenchmarkTable1_Datagen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if len(rows) != 5 {
			b.Fatal("table 1 incomplete")
		}
	}
}

func BenchmarkFigure2_Heterogeneity(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3_Microbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9_KernelComparison(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 10 {
			b.Fatal("figure 9 incomplete")
		}
	}
}

func BenchmarkFigure10_EndToEnd(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_KernelCounters(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11_TuningAblation(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12_ScheduleSweep(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13_ThreadMapping(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig13(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalability10k(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Scalability(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMLPerfParity(b *testing.B) {
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.MLPerf(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverhead_HostMapping(b *testing.B) {
	// The §VI-E claim: host-side workload analysis + task-map construction
	// per batch is lightweight. This measures it directly in real time.
	cfg := datasynth.Scaled(datasynth.ModelA(), 10)
	rng := rand.New(rand.NewSource(1))
	batch, err := datasynth.GenerateBatch(cfg, 256, rng)
	if err != nil {
		b.Fatal(err)
	}
	features := experiments.Features(cfg)
	choices := make([]sched.Schedule, len(features))
	for f := range choices {
		choices[f] = sched.SubWarp{Threads: 256, Lanes: 32, Vec: 1, UnrollRows: 1}
	}
	dev := gpusim.V100()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fusion.Compile(dev, features, choices, batch, fusion.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtensions_Discussion(b *testing.B) {
	// The §VII extension studies: multi-GPU placement, UVM cache sweep,
	// preprocess fusion, intra-feature heterogeneity.
	s := benchSuite()
	for i := 0; i < b.N; i++ {
		if _, err := s.Extensions(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core primitives ---
//
// The hot-path bodies live in internal/perf, shared with the recflex-bench
// -perf emitter so the committed BENCH_*.json trajectory and the go-test
// benchmarks always measure the same code.

func BenchmarkSimulateKernel640Blocks(b *testing.B) { perf.SimulateKernel640Blocks(b) }

func BenchmarkSimulateSaturated(b *testing.B) { perf.SimulateSaturated(b) }

func BenchmarkReplayHotPath(b *testing.B) { perf.ReplayHotPath(b) }

func BenchmarkCacheDispatch(b *testing.B) { perf.CacheDispatch(b) }

func BenchmarkTuneSerial(b *testing.B) { perf.TuneSerial(b) }

func BenchmarkTuneParallel(b *testing.B) { perf.TuneParallel(b) }

func BenchmarkRetuneWarm(b *testing.B) { perf.RetuneWarm(b) }

func BenchmarkPoolingReference(b *testing.B) {
	features, tables, makeBatch := buildToyModel(b)
	batch := makeBatch(256)
	_ = features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f := range tables {
			if _, err := recflex.PoolReference(tables[f], &batch.Features[f], features[f].Pool); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSchedulePlanning(b *testing.B) {
	dev := gpusim.V100()
	pf := make([]int, 512)
	for i := range pf {
		pf[i] = 30 + i%50
	}
	w := sched.Workload{Dim: 32, BatchSize: 512, PF: pf, TotalRows: sumInts(pf), UniqueRows: sumInts(pf), TableRows: 1 << 16}
	l2 := sched.L2Context{CacheBytes: 6 << 20, WorkingSetBytes: 64 << 20}
	s := sched.SubWarp{Threads: 256, Lanes: 8, Vec: 4, UnrollRows: 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Plan(&w, dev, l2); err != nil {
			b.Fatal(err)
		}
	}
}

func sumInts(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}
