package recflex_test

import (
	"math/rand"
	"testing"

	recflex "repro"
)

// buildToyModel creates a small heterogeneous model through the public API.
func buildToyModel(t testing.TB) ([]recflex.FeatureInfo, []*recflex.Table, func(int) *recflex.Batch) {
	t.Helper()
	type spec struct {
		name string
		dim  int
		rows int
		pf   func(*rand.Rand) int
	}
	specs := []spec{
		{"id", 32, 1 << 12, func(*rand.Rand) int { return 1 }},
		{"tiny", 4, 1 << 10, func(*rand.Rand) int { return 1 }},
		{"hist", 8, 1 << 12, func(r *rand.Rand) int { return 10 + r.Intn(40) }},
		{"heavy", 64, 1 << 13, func(r *rand.Rand) int { return 40 + r.Intn(80) }},
	}
	features := make([]recflex.FeatureInfo, len(specs))
	tables := make([]*recflex.Table, len(specs))
	for i, sp := range specs {
		features[i] = recflex.FeatureInfo{Name: sp.name, Dim: sp.dim, TableRows: sp.rows, Pool: recflex.PoolSum}
		tbl, err := recflex.NewTable(sp.name, sp.rows, sp.dim, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		tables[i] = tbl
	}
	rng := rand.New(rand.NewSource(1))
	makeBatch := func(size int) *recflex.Batch {
		b := &recflex.Batch{}
		for _, sp := range specs {
			perSample := make([][]int32, size)
			for s := range perSample {
				ids := make([]int32, sp.pf(rng))
				for j := range ids {
					ids[j] = int32(rng.Intn(sp.rows))
				}
				perSample[s] = ids
			}
			b.Features = append(b.Features, recflex.NewFeatureBatch(perSample))
		}
		return b
	}
	return features, tables, makeBatch
}

func TestPublicAPITuneAndRun(t *testing.T) {
	features, tables, makeBatch := buildToyModel(t)
	dev := recflex.V100()
	opt := recflex.New(dev, features)
	if err := opt.Tune([]*recflex.Batch{makeBatch(128), makeBatch(192)}, recflex.TuneOptions{
		Occupancies: []int{2, 4, 8},
	}); err != nil {
		t.Fatal(err)
	}
	batch := makeBatch(96)
	outs, sim, err := opt.Run(tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Time <= 0 {
		t.Error("simulated time must be positive")
	}
	if len(outs) != len(features) {
		t.Fatalf("%d outputs for %d features", len(outs), len(features))
	}
	for f := range outs {
		if len(outs[f]) != batch.BatchSize()*features[f].Dim {
			t.Errorf("feature %d: output length %d", f, len(outs[f]))
		}
	}
}

func TestPublicAPICompileDirect(t *testing.T) {
	features, tables, makeBatch := buildToyModel(t)
	dev := recflex.A100()
	choices := make([]recflex.Schedule, len(features))
	for i := range choices {
		choices[i] = recflex.SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1}
	}
	batch := makeBatch(64)
	fu, err := recflex.Compile(dev, features, choices, batch, recflex.FusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	outs, res, err := fu.Run(tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || len(outs) != len(features) {
		t.Error("direct compile path broken")
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	features, _, makeBatch := buildToyModel(t)
	dev := recflex.V100()
	batch := makeBatch(64)
	names := map[string]bool{}
	for _, b := range recflex.Baselines() {
		names[b.Name()] = true
		if b.Supports(features) != nil {
			continue
		}
		sec, err := b.Measure(dev, features, batch)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if sec <= 0 {
			t.Errorf("%s: non-positive time", b.Name())
		}
	}
	for _, want := range []string{"TensorFlow", "RECom", "HugeCTR", "TorchRec"} {
		if !names[want] {
			t.Errorf("baseline %s missing", want)
		}
	}
}

func TestPublicAPICustomCandidates(t *testing.T) {
	features, _, makeBatch := buildToyModel(t)
	dev := recflex.V100()
	cands := make([][]recflex.Schedule, len(features))
	for f := range cands {
		cands[f] = []recflex.Schedule{
			recflex.SubWarp{Threads: 128, Lanes: 8, Vec: 1, UnrollRows: 1},
			recflex.BlockPerSample{Threads: 128, Vec: 1},
		}
	}
	opt, err := recflex.NewWithCandidates(dev, features, cands)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Tune([]*recflex.Batch{makeBatch(64)}, recflex.TuneOptions{Occupancies: []int{2, 4}}); err != nil {
		t.Fatal(err)
	}
	for f, c := range opt.Tuned().Choices {
		if c.Name() != cands[f][0].Name() && c.Name() != cands[f][1].Name() {
			t.Errorf("feature %d: choice %s not from the custom set", f, c.Name())
		}
	}
}

func TestDefaultCandidatesExposed(t *testing.T) {
	if len(recflex.DefaultCandidates(32)) < 10 {
		t.Error("default candidate set too small")
	}
}

func TestPublicAutoOptimizer(t *testing.T) {
	features, tables, makeBatch := buildToyModel(t)
	dev := recflex.V100()
	sample := makeBatch(128)
	opt, err := recflex.NewAuto(dev, features, sample, recflex.AutoOptions{MaxCandidates: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Tune([]*recflex.Batch{sample}, recflex.TuneOptions{Occupancies: []int{2, 4, 8}}); err != nil {
		t.Fatal(err)
	}
	outs, _, err := opt.Run(tables, makeBatch(32))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != len(features) {
		t.Error("auto optimizer output shape wrong")
	}
}
