// Package gateway is the wall-clock front door over the fleet pool: it
// accepts live inference requests over HTTP, stamps each with a simulated
// arrival time by mapping wall-clock time through a configurable time-warp
// factor, and drives the incremental fleet.Live engine — the exact code path
// batch replay uses — so admission, weighted-fair dispatch, drift detection,
// background re-tune and canary hot-swap all run against live traffic.
//
// The backend is a GPU-free simulator, so the gateway borrows Revati's
// time-warp trick: instead of burning real accelerator time, one wall-clock
// second is dilated into Warp simulated seconds. Every admitted request is
// recorded to a session log in simulated units only; replaying that log
// offline through fleet.Pool.Serve reproduces per-request outcomes and
// sojourns bit-identically, which is the invariant that keeps the wall-clock
// layer honest.
package gateway

import "time"

// Clock abstracts the wall clock so gateway tests control time and replay
// purity is auditable: everything the session log or deterministic-replay
// pins consume is derived from simulated time; the Clock only decides *when*
// simulated time advances, never *what* the engine computes.
type Clock interface {
	// Now returns the current wall time.
	Now() time.Time
	// After fires once after d, like time.After.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the wall clock.
func RealClock() Clock { return realClock{} }
