package gateway_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/fleet"
	"repro/internal/gateway"
)

// FuzzSessionLogDecode hammers the session-log decoder: it must never panic,
// and anything it accepts must satisfy the session invariants and survive a
// re-encode/re-decode round trip bit-identically — the decoder and encoder
// are two sides of the replay contract.
func FuzzSessionLogDecode(f *testing.F) {
	// Seed with a real session, including a NaN-sojourn shed and a split.
	var valid bytes.Buffer
	sw := gateway.NewSessionWriter(&valid)
	sw.Request(0, fleet.Request{Arrival: 0, Size: 4, Model: 0, Tenant: 0})
	sw.Request(1, fleet.Request{Arrival: 0.125, Size: 300, Model: 1, Tenant: 1, Deadline: 2})
	sw.Request(2, fleet.Request{Arrival: 0.125, Size: 8, Model: 0, Tenant: 0})
	sw.Outcome(fleet.Event{ID: 0, Outcome: fleet.OutcomeServed, Worker: 0, Sojourn: 1, Dispatch: 0, Service: 1, End: 1})
	sw.Outcome(fleet.Event{ID: 2, Outcome: fleet.OutcomeShedQueue, Worker: -1, Sojourn: math.NaN(), Dispatch: math.NaN(), Service: math.NaN(), End: 0.125})
	sw.Outcome(fleet.Event{ID: 1, Outcome: fleet.OutcomeSplit, Generation: 1, Worker: 1, Sojourn: 2.5, Dispatch: 0.5, Service: 2, End: 2.625})
	sw.Elastic(3, []fleet.ScaleEvent{
		{Time: 0.25, Worker: 2, Delta: 1, Workers: 3},
		{Time: 2.5, Worker: 2, Delta: -1, Workers: 2},
	})
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("recflex-session v1\nend 0\n"))
	f.Add([]byte("recflex-session v1\nreq 0 0x1p+00 4 0 0 0x0p+00\nend 1\n"))
	f.Add([]byte("recflex-session v1\nreq 0 0x1p+00 4 0 0 0x0p+00\n")) // truncated
	f.Add([]byte("recflex-session v2\nend 0\n"))                       // bad version
	f.Add([]byte(""))
	f.Add([]byte("\x00\xff garbage"))
	f.Add([]byte("recflex-session v1\nout 0 0 0 0 0x0p+00 0x0p+00 0x0p+00 0x0p+00\nend 0\n"))
	f.Add([]byte("recflex-session v1\npre 0\nend 0\n"))
	f.Add([]byte("recflex-session v1\npre 2\nscale 0x1p+00 2 1 3\nend 0\n"))
	f.Add([]byte("recflex-session v1\nscale 0x1p+00 2 1 3\nend 0\n")) // scale before pre

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := gateway.ReadSession(bytes.NewReader(data))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		// Structural invariants of anything the decoder accepts.
		if len(s.Requests) != len(s.Outcomes) || len(s.Requests) != len(s.Resolved) {
			t.Fatalf("ragged session: %d reqs, %d outcomes, %d resolved",
				len(s.Requests), len(s.Outcomes), len(s.Resolved))
		}
		last := math.Inf(-1)
		for i, r := range s.Requests {
			if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
				t.Fatalf("request %d: non-finite arrival accepted", i)
			}
			if r.Arrival < last {
				t.Fatalf("request %d: regressing arrival accepted", i)
			}
			last = r.Arrival
		}
		for i, ev := range s.Outcomes {
			if s.Resolved[i] && (ev.Outcome > fleet.OutcomeSplit) {
				t.Fatalf("outcome %d: out-of-range outcome %d accepted", i, ev.Outcome)
			}
		}

		// Accepted sessions re-encode and re-decode to the identical session.
		var buf bytes.Buffer
		w := gateway.NewSessionWriter(&buf)
		for id, r := range s.Requests {
			w.Request(id, r)
		}
		for id, ev := range s.Outcomes {
			if s.Resolved[id] {
				ev.ID = id
				w.Outcome(ev)
			}
		}
		if s.HasElastic {
			w.Elastic(s.Preemptions, s.ScaleEvents)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		s2, err := gateway.ReadSession(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded session rejected: %v\n%s", err, buf.String())
		}
		if len(s2.Requests) != len(s.Requests) {
			t.Fatalf("round trip changed request count: %d -> %d", len(s.Requests), len(s2.Requests))
		}
		bits := math.Float64bits
		for i := range s.Requests {
			a, b := s.Requests[i], s2.Requests[i]
			if bits(a.Arrival) != bits(b.Arrival) || bits(a.Deadline) != bits(b.Deadline) ||
				a.Size != b.Size || a.Model != b.Model || a.Tenant != b.Tenant {
				t.Fatalf("request %d changed across round trip: %+v -> %+v", i, a, b)
			}
			if s.Resolved[i] != s2.Resolved[i] {
				t.Fatalf("resolved[%d] changed across round trip", i)
			}
			if !s.Resolved[i] {
				continue
			}
			x, y := s.Outcomes[i], s2.Outcomes[i]
			if x.Outcome != y.Outcome || x.Generation != y.Generation || x.Worker != y.Worker ||
				bits(x.Sojourn) != bits(y.Sojourn) || bits(x.Dispatch) != bits(y.Dispatch) ||
				bits(x.Service) != bits(y.Service) || bits(x.End) != bits(y.End) {
				t.Fatalf("outcome %d changed across round trip: %+v -> %+v", i, x, y)
			}
		}
		if s2.HasElastic != s.HasElastic || s2.Preemptions != s.Preemptions ||
			len(s2.ScaleEvents) != len(s.ScaleEvents) {
			t.Fatalf("elastic summary changed across round trip: %v/%d/%d -> %v/%d/%d",
				s.HasElastic, s.Preemptions, len(s.ScaleEvents),
				s2.HasElastic, s2.Preemptions, len(s2.ScaleEvents))
		}
		for i := range s.ScaleEvents {
			a, b := s.ScaleEvents[i], s2.ScaleEvents[i]
			if bits(a.Time) != bits(b.Time) || a.Worker != b.Worker ||
				a.Delta != b.Delta || a.Workers != b.Workers {
				t.Fatalf("scale event %d changed across round trip: %+v -> %+v", i, a, b)
			}
		}
	})
}
