package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"repro/internal/fleet"
)

// InferRequest is the POST /v1/infer body. Model and Tenant are pool
// indices; Size is the request batch size; DeadlineSim an optional relative
// deadline in simulated seconds (0 = tenant/pool default).
type InferRequest struct {
	Model       int     `json:"model"`
	Tenant      int     `json:"tenant"`
	Size        int     `json:"size"`
	DeadlineSim float64 `json:"deadline_sim,omitempty"`
}

// InferResponse is the /v1/infer reply. Times are simulated seconds; shed
// requests carry zeros (Outcome says why). ArrivalSim is the warped
// admission stamp, the value the session log records.
type InferResponse struct {
	ID         int     `json:"id"`
	Outcome    string  `json:"outcome"`
	Generation int     `json:"generation"`
	Worker     int     `json:"worker"`
	ArrivalSim float64 `json:"arrival_sim"`
	SojournSim float64 `json:"sojourn_sim"`
	ServiceSim float64 `json:"service_sim"`
	EndSim     float64 `json:"end_sim"`
}

// MetricsResponse is the GET /v1/metrics reply. Percentiles are clamped to 0
// while Served == 0 (never NaN — NaN is unencodable in JSON).
type MetricsResponse struct {
	Admitted int     `json:"admitted"`
	Served   int     `json:"served"`
	Shed     int     `json:"shed"`
	Pending  int     `json:"pending"`
	Lost     int     `json:"lost"`
	Warp     float64 `json:"warp"`
	SimNow   float64 `json:"sim_now"`
	P50Sim   float64 `json:"p50_sim"`
	P95Sim   float64 `json:"p95_sim"`
	P99Sim   float64 `json:"p99_sim"`
}

// jsonSafe clamps non-finite values (shed requests carry NaN sojourns) to 0
// so every response body is valid JSON.
func jsonSafe(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// Handler returns the gateway's HTTP front door:
//
//	POST /v1/infer   — admit one request, respond when the engine resolves it
//	GET  /v1/metrics — counters and clamped percentiles
//	GET  /healthz    — 200 while the engine is healthy, 503 after a fatal error
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", g.handleInfer)
	mux.HandleFunc("/v1/metrics", g.handleMetrics)
	mux.HandleFunc("/healthz", g.handleHealth)
	return mux
}

func (g *Gateway) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req InferRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	ev, err := g.Infer(r.Context(), fleet.Request{
		Size:     req.Size,
		Deadline: req.DeadlineSim,
		Model:    req.Model,
		Tenant:   req.Tenant,
	})
	if err != nil {
		// The engine rejected the request (unknown model/tenant, bad size):
		// client error. A sticky engine failure or shutdown: server error.
		status := http.StatusBadRequest
		if g.Err() != nil || r.Context().Err() != nil || errors.Is(err, ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	writeJSON(w, InferResponse{
		ID:         ev.ID,
		Outcome:    ev.Outcome.String(),
		Generation: ev.Generation,
		Worker:     ev.Worker,
		ArrivalSim: jsonSafe(ev.End - ev.Sojourn),
		SojournSim: jsonSafe(ev.Sojourn),
		ServiceSim: jsonSafe(ev.Service),
		EndSim:     jsonSafe(ev.End),
	})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s := g.Stats()
	writeJSON(w, MetricsResponse{
		Admitted: s.Admitted,
		Served:   s.Served,
		Shed:     s.Shed,
		Pending:  s.Pending,
		Lost:     s.Lost,
		Warp:     s.Warp,
		SimNow:   jsonSafe(s.SimNow),
		P50Sim:   jsonSafe(s.P50),
		P95Sim:   jsonSafe(s.P95),
		P99Sim:   jsonSafe(s.P99),
	})
}

func (g *Gateway) handleHealth(w http.ResponseWriter, r *http.Request) {
	if err := g.Err(); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Header already sent; nothing useful left to do.
		_ = err
	}
}
