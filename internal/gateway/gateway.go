package gateway

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// ErrClosed is returned by Infer once Close has begun: the session is
// shutting down, not rejecting this particular request.
var ErrClosed = errors.New("gateway: closed")

// Config configures a Gateway.
type Config struct {
	// Pool is the fleet the gateway serves over. Required.
	Pool *fleet.Pool
	// Warp is the time-warp factor: simulated seconds per wall-clock second.
	// 1 serves in real time; 1000 dilates one wall millisecond into one
	// simulated second, letting a laptop replay an hour of fleet traffic in
	// seconds. Must be positive and finite.
	Warp float64
	// Clock is the wall-clock source; nil means the real clock. Tests inject
	// a fake. The clock never feeds the engine — only simulated time derived
	// from it does, which is why recorded sessions replay bit-identically.
	Clock Clock
	// Session, when non-nil, receives the session log (see SessionWriter).
	Session io.Writer
}

// Stats is a point-in-time observability snapshot of a gateway.
type Stats struct {
	// Admitted counts requests accepted into the engine (including ones the
	// admission policy then shed). Served and Shed partition the resolved
	// ones; Pending is admitted minus resolved.
	Admitted, Served, Shed, Pending int
	// Lost counts admitted requests that were never resolved by shutdown.
	// The engine drains on Close, so this must be 0; it exists so smoke
	// tests can assert that, not because losing requests is expected.
	Lost int
	// Preemptions counts chunk-boundary preemption events observed so far
	// (informational requeues under fleet.Config.Preempt; they resolve no
	// request and never appear in the session log).
	Preemptions int
	// Warp is the configured time-warp factor; SimNow the current simulated
	// time in seconds.
	Warp, SimNow float64
	// P50, P95 and P99 are served-sojourn percentiles in simulated seconds,
	// clamped to 0 while Served == 0.
	P50, P95, P99 float64
}

// Gateway is a live serving session over a fleet.Pool: it stamps wall-clock
// arrivals with warped simulated time, admits them into the incremental
// fleet.Live engine, and a pump goroutine advances the engine exactly when
// the wall clock reaches each pending simulated event. Because events are
// only advanced at-or-after their warped wall time, a response is delivered
// to the caller no earlier than its simulated completion maps to — the
// wall-clock behavior of the simulated fleet.
//
// All engine access is serialized under one mutex; HTTP handlers and the
// pump contend on it, never on the engine itself.
type Gateway struct {
	pool  *fleet.Pool
	warp  float64
	clock Clock
	sess  *SessionWriter

	mu       sync.Mutex
	live     *fleet.Live
	epoch    time.Time
	lastSim  float64
	waiters  map[int]chan fleet.Event
	pending  []fleet.Event // resolved, held until the wall clock reaches warped End
	sojourns []float64
	admitted  int
	served    int
	shedded   int
	preempted int
	lost      int
	err      error
	closed   bool

	wake     chan struct{}
	stop     chan struct{}
	pumpDone chan struct{}
}

// New opens a gateway session over cfg.Pool and starts its event pump. Every
// New must be balanced by Close, which drains the engine and returns the
// session's fleet.Report.
func New(cfg Config) (*Gateway, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("gateway: nil pool")
	}
	if !(cfg.Warp > 0) || math.IsInf(cfg.Warp, 0) {
		return nil, fmt.Errorf("gateway: time-warp factor must be positive and finite, got %g", cfg.Warp)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	g := &Gateway{
		pool:     cfg.Pool,
		warp:     cfg.Warp,
		clock:    clock,
		live:     cfg.Pool.Begin(),
		epoch:    clock.Now(),
		waiters:  make(map[int]chan fleet.Event),
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	if cfg.Session != nil {
		g.sess = NewSessionWriter(cfg.Session)
	}
	go g.pump()
	return g, nil
}

// simNowLocked maps the wall clock onto simulated time: elapsed wall seconds
// times the warp factor, clamped monotone so a coarse clock can never hand
// the engine a regressing arrival.
func (g *Gateway) simNowLocked() float64 {
	t := g.clock.Now().Sub(g.epoch).Seconds() * g.warp
	if t < g.lastSim {
		return g.lastSim
	}
	g.lastSim = t
	return t
}

// signalWake nudges the pump to recompute its timer (new earliest event).
func (g *Gateway) signalWake() {
	select {
	case g.wake <- struct{}{}:
	default:
	}
}

// deliverLocked records resolved events and fans them out to waiters. The
// engine resolves a request analytically at dispatch — its completion time is
// known the moment it starts — but the caller must not see the answer before
// the wall clock reaches the warped completion, so an event whose End is
// still in the simulated future parks in pending until flushLocked matures
// it. Session-log records and counters are written at resolution: the log's
// out-line order is resolution order, and replay does not depend on it.
func (g *Gateway) deliverLocked(evs []fleet.Event, now float64) {
	for _, ev := range evs {
		if ev.Outcome == fleet.OutcomePreempted {
			// Informational chunk requeue under fleet.Config.Preempt: the
			// request is not resolved, so nothing is logged (the parent still
			// gets exactly one out-line at completion — a second line for the
			// same id would poison ReadSession), no waiter answers, and the
			// served/shed counters don't move.
			g.preempted++
			continue
		}
		if g.sess != nil {
			g.sess.Outcome(ev)
		}
		if ev.Outcome == fleet.OutcomeServed || ev.Outcome == fleet.OutcomeSplit {
			g.served++
			g.sojourns = append(g.sojourns, ev.Sojourn)
		} else {
			g.shedded++
		}
		if _, ok := g.waiters[ev.ID]; !ok {
			continue
		}
		if ev.End > now {
			g.pending = append(g.pending, ev)
			continue
		}
		g.sendLocked(ev)
	}
}

// sendLocked hands one matured event to its waiter.
func (g *Gateway) sendLocked(ev fleet.Event) {
	if ch, ok := g.waiters[ev.ID]; ok {
		ch <- ev // buffered 1: delivery never blocks under the lock
		delete(g.waiters, ev.ID)
	}
}

// flushLocked delivers every parked event whose warped completion has passed.
func (g *Gateway) flushLocked(now float64) {
	for i := 0; i < len(g.pending); {
		if g.pending[i].End <= now {
			g.sendLocked(g.pending[i])
			g.pending[i] = g.pending[len(g.pending)-1]
			g.pending = g.pending[:len(g.pending)-1]
		} else {
			i++
		}
	}
}

// earliestPendingLocked returns the soonest parked completion, +Inf if none.
func (g *Gateway) earliestPendingLocked() float64 {
	next := math.Inf(1)
	for _, ev := range g.pending {
		if ev.End < next {
			next = ev.End
		}
	}
	return next
}

// failLocked latches a fatal engine error and unblocks every waiter.
func (g *Gateway) failLocked(err error) {
	if g.err == nil {
		g.err = err
	}
	g.pending = nil
	for id, ch := range g.waiters {
		close(ch)
		delete(g.waiters, id)
	}
}

// pump advances the engine whenever the wall clock reaches the warped time
// of its earliest pending dispatch. It owns no state; it only takes the lock
// in bursts, so admissions interleave freely.
func (g *Gateway) pump() {
	defer close(g.pumpDone)
	for {
		g.mu.Lock()
		if g.closed || g.err != nil {
			g.mu.Unlock()
			return
		}
		now := g.simNowLocked()
		g.flushLocked(now)
		next := g.live.NextEventTime()
		if !math.IsInf(next, 1) && now >= next {
			evs, err := g.live.Advance(now)
			if err != nil {
				g.failLocked(err)
				g.mu.Unlock()
				return
			}
			g.deliverLocked(evs, now)
			g.mu.Unlock()
			continue
		}
		if p := g.earliestPendingLocked(); p < next {
			next = p
		}
		g.mu.Unlock()
		if math.IsInf(next, 1) {
			select {
			case <-g.stop:
				return
			case <-g.wake:
			}
			continue
		}
		// The earliest event can sit arbitrarily far in the simulated future
		// (a lone request with a huge arrival gap, an extreme warp ratio).
		// Converting such a float to time.Duration overflows int64, and the
		// negative result used to collapse into a 1ns timer — a busy-spin
		// that pinned a core until the event matured. Bound the idle wait
		// instead: sleeping short of the target is always safe, because the
		// loop recomputes the remaining wait each pass and a wake signal
		// re-arms it early anyway.
		const maxIdleWait = time.Second
		waitSec := (next - now) / g.warp
		var wait time.Duration
		switch {
		case !(waitSec > 0):
			wait = time.Nanosecond
		case waitSec >= maxIdleWait.Seconds():
			wait = maxIdleWait
		default:
			wait = time.Duration(waitSec * float64(time.Second))
			if wait <= 0 {
				wait = time.Nanosecond
			}
		}
		select {
		case <-g.stop:
			return
		case <-g.wake:
		case <-g.clock.After(wait):
		}
	}
}

// Infer admits one live request — its Arrival field is ignored and replaced
// by the gateway's current simulated time — and blocks until the engine
// resolves it (served, split, or shed). The returned Event carries simulated
// times; the wall delay the caller experienced is the warped image of its
// simulated sojourn. ctx cancellation abandons the wait but not the request:
// the engine still resolves and records it.
func (g *Gateway) Infer(ctx context.Context, r fleet.Request) (fleet.Event, error) {
	g.mu.Lock()
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return fleet.Event{}, err
	}
	if g.closed {
		g.mu.Unlock()
		return fleet.Event{}, ErrClosed
	}
	r.Arrival = g.simNowLocked()
	id, evs, err := g.live.Admit(r)
	if err != nil {
		if g.live.Err() != nil {
			g.failLocked(err)
		}
		g.mu.Unlock()
		return fleet.Event{}, err
	}
	if g.sess != nil {
		g.sess.Request(id, r)
	}
	g.admitted++
	ch := make(chan fleet.Event, 1)
	g.waiters[id] = ch
	g.deliverLocked(evs, r.Arrival) // may already contain this request's shed
	g.mu.Unlock()
	g.signalWake()

	select {
	case ev, ok := <-ch:
		if !ok {
			return fleet.Event{}, g.Err()
		}
		return ev, nil
	case <-ctx.Done():
		return fleet.Event{}, ctx.Err()
	}
}

// Err returns the gateway's fatal engine error, nil while healthy.
func (g *Gateway) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		return g.err
	}
	return nil
}

// Stats snapshots the gateway's counters and served-sojourn percentiles.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	var q trace.Quantiler
	p50, p95, p99 := q.P50P95P99(g.sojourns)
	simNow := g.lastSim
	if !g.closed && g.err == nil {
		simNow = g.simNowLocked()
	}
	return Stats{
		Admitted:    g.admitted,
		Served:      g.served,
		Shed:        g.shedded,
		Pending:     g.admitted - g.served - g.shedded,
		Lost:        g.lost,
		Preemptions: g.preempted,
		Warp:        g.warp,
		SimNow:      simNow,
		P50:         p50,
		P95:         p95,
		P99:         p99,
	}
}

// Close stops the pump, drains every in-flight request through the engine
// (waiters receive their events immediately rather than at warped wall
// time), finalizes the session log, and returns the session's fleet.Report —
// the same report an offline Pool.Serve over the recorded stream produces.
// An empty session (nothing admitted) returns a nil report.
func (g *Gateway) Close() (*fleet.Report, error) {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, fmt.Errorf("gateway: already closed")
	}
	g.closed = true
	g.mu.Unlock()
	close(g.stop)
	<-g.pumpDone

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.err != nil {
		g.live.Abort()
		if g.sess != nil {
			g.sess.Close()
		}
		return nil, g.err
	}
	if g.admitted == 0 {
		g.live.Abort()
		if g.sess != nil {
			if err := g.sess.Close(); err != nil {
				return nil, fmt.Errorf("gateway: session log: %w", err)
			}
		}
		return nil, nil
	}
	rep, evs, err := g.live.Close()
	if err != nil {
		g.failLocked(err)
		if g.sess != nil {
			g.sess.Close()
		}
		return nil, err
	}
	// Shutdown drains immediately: parked and freshly drained events all
	// deliver now rather than at their warped wall time.
	g.deliverLocked(evs, math.Inf(1))
	g.flushLocked(math.Inf(1))
	g.lost = len(g.waiters)
	for id, ch := range g.waiters {
		close(ch)
		delete(g.waiters, id)
	}
	if g.lost > 0 {
		return rep, fmt.Errorf("gateway: %d admitted requests were never resolved", g.lost)
	}
	if g.sess != nil {
		g.sess.Elastic(rep.Metrics.Preemptions, rep.Metrics.ScaleEvents)
		if err := g.sess.Close(); err != nil {
			return rep, fmt.Errorf("gateway: session log: %w", err)
		}
	}
	return rep, nil
}
