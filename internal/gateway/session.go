package gateway

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"repro/internal/fleet"
)

// The session log is the gateway's replay contract: every admitted request's
// arrival (in simulated seconds), size, model, tenant and deadline, plus the
// outcome the live engine resolved for it. Floats are written in Go's hex
// float format ('x', shortest round-trip), so a recorded arrival parses back
// to the identical bit pattern and the offline replay sees byte-for-byte the
// same inputs the live session saw — decimal formatting would round and
// break bit-identical replay.
//
// Format (text, line-oriented):
//
//	recflex-session v1
//	req <id> <arrival> <size> <model> <tenant> <deadline>
//	out <id> <outcome> <generation> <worker> <sojourn> <dispatch> <service> <end>
//	pre <preemptions>
//	scale <time> <worker> <delta> <workers>
//	end <requests>
//
// req lines appear in admission order (id is dense, starting at 0); out
// lines appear in resolution order. The trailing end line makes truncation
// detectable.
//
// pre/scale are the pool's elastic summary, written once at session close:
// the chunk-preemption count and every applied autoscaling decision in
// decision order. They extend the replay contract to pool identity — a
// static homogeneous rebuild of an autoscaled session replays every
// per-request record bit-identically when the elastic machinery never
// touched a request (idle pools drain workers invisibly), so without these
// records a replay could "verify" against the wrong pool. pre must precede
// any scale line; both are optional so logs from earlier writers still
// decode, skipping the elastic check.

// sessionHeader is the version line every session log starts with.
const sessionHeader = "recflex-session v1"

// hexFloat formats v for bit-exact round-tripping.
func hexFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// SessionWriter streams a gateway session to w. Methods never return errors;
// the first write failure is latched and reported by Close, so the serving
// hot path does not branch on log I/O.
type SessionWriter struct {
	w    *bufio.Writer
	err  error
	reqs int
}

// NewSessionWriter starts a session log on w.
func NewSessionWriter(w io.Writer) *SessionWriter {
	sw := &SessionWriter{w: bufio.NewWriter(w)}
	sw.printf("%s\n", sessionHeader)
	return sw
}

func (sw *SessionWriter) printf(format string, args ...any) {
	if sw.err != nil {
		return
	}
	_, sw.err = fmt.Fprintf(sw.w, format, args...)
}

// Request records one admitted request; id is its admission id.
func (sw *SessionWriter) Request(id int, r fleet.Request) {
	sw.printf("req %d %s %d %d %d %s\n",
		id, hexFloat(r.Arrival), r.Size, r.Model, r.Tenant, hexFloat(r.Deadline))
	sw.reqs++
}

// Outcome records one resolved event.
func (sw *SessionWriter) Outcome(ev fleet.Event) {
	sw.printf("out %d %d %d %d %s %s %s %s\n",
		ev.ID, int(ev.Outcome), ev.Generation, ev.Worker,
		hexFloat(ev.Sojourn), hexFloat(ev.Dispatch), hexFloat(ev.Service), hexFloat(ev.End))
}

// Elastic records the pool's elastic summary: the preemption count and the
// applied autoscaling decisions, in decision order. Call at most once, after
// the last outcome and before Close.
func (sw *SessionWriter) Elastic(preemptions int, events []fleet.ScaleEvent) {
	sw.printf("pre %d\n", preemptions)
	for _, e := range events {
		sw.printf("scale %s %d %d %d\n", hexFloat(e.Time), e.Worker, e.Delta, e.Workers)
	}
}

// Close writes the session footer, flushes, and reports the first error hit
// anywhere in the stream.
func (sw *SessionWriter) Close() error {
	sw.printf("end %d\n", sw.reqs)
	if sw.err != nil {
		return sw.err
	}
	return sw.w.Flush()
}

// Session is a decoded session log: the admitted request stream in admission
// order plus the outcomes the live run resolved.
type Session struct {
	// Requests[id] is the admitted request with that admission id.
	Requests []fleet.Request
	// Outcomes[id] is the recorded resolution of request id.
	Outcomes []fleet.Event
	// Resolved[id] reports whether an out line was recorded for id (false
	// only in truncated or hand-edited logs).
	Resolved []bool
	// HasElastic reports whether the log carries the pool's elastic summary
	// (a pre record); Preemptions and ScaleEvents are meaningful only then.
	HasElastic bool
	// Preemptions is the recorded chunk-preemption count.
	Preemptions int
	// ScaleEvents are the recorded autoscaling decisions in decision order.
	ScaleEvents []fleet.ScaleEvent
}

// ReadSession decodes a session log. It rejects version mismatches, malformed
// lines, out-of-order or duplicate ids, and a missing or inconsistent footer
// — a session log is evidence, so damage must be loud, not smoothed over.
func ReadSession(r io.Reader) (*Session, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("gateway: reading session: %w", err)
		}
		return nil, fmt.Errorf("gateway: empty session log")
	}
	if sc.Text() != sessionHeader {
		return nil, fmt.Errorf("gateway: bad session header %q (want %q)", sc.Text(), sessionHeader)
	}
	s := &Session{}
	sawEnd := false
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if sawEnd {
			return nil, fmt.Errorf("gateway: session line %d: content after end marker", line)
		}
		f := strings.Fields(text)
		if len(f) == 0 {
			return nil, fmt.Errorf("gateway: session line %d: empty line", line)
		}
		switch f[0] {
		case "req":
			if len(f) != 7 {
				return nil, fmt.Errorf("gateway: session line %d: req wants 6 fields, got %d", line, len(f)-1)
			}
			id, err1 := strconv.Atoi(f[1])
			arrival, err2 := strconv.ParseFloat(f[2], 64)
			size, err3 := strconv.Atoi(f[3])
			model, err4 := strconv.Atoi(f[4])
			tenant, err5 := strconv.Atoi(f[5])
			deadline, err6 := strconv.ParseFloat(f[6], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil || err5 != nil || err6 != nil {
				return nil, fmt.Errorf("gateway: session line %d: malformed req", line)
			}
			if id != len(s.Requests) {
				return nil, fmt.Errorf("gateway: session line %d: req id %d out of order (want %d)", line, id, len(s.Requests))
			}
			if len(s.Requests) > 0 && arrival < s.Requests[len(s.Requests)-1].Arrival {
				return nil, fmt.Errorf("gateway: session line %d: arrival %g regresses", line, arrival)
			}
			if math.IsNaN(arrival) || math.IsInf(arrival, 0) {
				return nil, fmt.Errorf("gateway: session line %d: non-finite arrival", line)
			}
			s.Requests = append(s.Requests, fleet.Request{
				Arrival: arrival, Size: size, Deadline: deadline, Model: model, Tenant: tenant,
			})
			s.Outcomes = append(s.Outcomes, fleet.Event{})
			s.Resolved = append(s.Resolved, false)
		case "out":
			if len(f) != 9 {
				return nil, fmt.Errorf("gateway: session line %d: out wants 8 fields, got %d", line, len(f)-1)
			}
			id, err1 := strconv.Atoi(f[1])
			oc, err2 := strconv.Atoi(f[2])
			gen, err3 := strconv.Atoi(f[3])
			worker, err4 := strconv.Atoi(f[4])
			soj, err5 := strconv.ParseFloat(f[5], 64)
			disp, err6 := strconv.ParseFloat(f[6], 64)
			svc, err7 := strconv.ParseFloat(f[7], 64)
			end, err8 := strconv.ParseFloat(f[8], 64)
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil ||
				err5 != nil || err6 != nil || err7 != nil || err8 != nil {
				return nil, fmt.Errorf("gateway: session line %d: malformed out", line)
			}
			if id < 0 || id >= len(s.Requests) {
				return nil, fmt.Errorf("gateway: session line %d: out id %d references no req", line, id)
			}
			if s.Resolved[id] {
				return nil, fmt.Errorf("gateway: session line %d: duplicate outcome for id %d", line, id)
			}
			// OutcomeSplit stays the upper bound on purpose: OutcomePreempted
			// events are informational chunk requeues the gateway keeps out of
			// session logs (a request resolves exactly once), so one here is
			// as corrupt as an unknown value.
			if oc < 0 || oc > int(fleet.OutcomeSplit) {
				return nil, fmt.Errorf("gateway: session line %d: unknown outcome %d", line, oc)
			}
			s.Outcomes[id] = fleet.Event{
				ID: id, Outcome: fleet.Outcome(oc), Generation: gen, Worker: worker,
				Sojourn: soj, Dispatch: disp, Service: svc, End: end,
			}
			s.Resolved[id] = true
		case "pre":
			if len(f) != 2 {
				return nil, fmt.Errorf("gateway: session line %d: pre wants 1 field, got %d", line, len(f)-1)
			}
			if s.HasElastic {
				return nil, fmt.Errorf("gateway: session line %d: duplicate pre record", line)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("gateway: session line %d: malformed pre", line)
			}
			s.HasElastic = true
			s.Preemptions = n
		case "scale":
			if len(f) != 5 {
				return nil, fmt.Errorf("gateway: session line %d: scale wants 4 fields, got %d", line, len(f)-1)
			}
			if !s.HasElastic {
				return nil, fmt.Errorf("gateway: session line %d: scale record before pre", line)
			}
			tm, err1 := strconv.ParseFloat(f[1], 64)
			worker, err2 := strconv.Atoi(f[2])
			delta, err3 := strconv.Atoi(f[3])
			workers, err4 := strconv.Atoi(f[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("gateway: session line %d: malformed scale", line)
			}
			if math.IsNaN(tm) || math.IsInf(tm, 0) {
				return nil, fmt.Errorf("gateway: session line %d: non-finite scale time", line)
			}
			if delta != 1 && delta != -1 {
				return nil, fmt.Errorf("gateway: session line %d: scale delta %d is not +-1", line, delta)
			}
			if worker < 0 || workers < 0 {
				return nil, fmt.Errorf("gateway: session line %d: negative scale worker/count", line)
			}
			s.ScaleEvents = append(s.ScaleEvents, fleet.ScaleEvent{
				Time: tm, Worker: worker, Delta: delta, Workers: workers,
			})
		case "end":
			if len(f) != 2 {
				return nil, fmt.Errorf("gateway: session line %d: malformed end", line)
			}
			n, err := strconv.Atoi(f[1])
			if err != nil || n != len(s.Requests) {
				return nil, fmt.Errorf("gateway: session line %d: end count %s does not match %d requests", line, f[1], len(s.Requests))
			}
			sawEnd = true
		default:
			return nil, fmt.Errorf("gateway: session line %d: unknown record %q", line, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gateway: reading session: %w", err)
	}
	if !sawEnd {
		return nil, fmt.Errorf("gateway: session log truncated (no end marker)")
	}
	return s, nil
}

// Replay replays the session's request stream offline through pool.Serve and
// checks the hard invariant bit by bit: every recorded outcome, sojourn,
// dispatch time, service time, worker and generation must equal what the
// batch engine computes from the same arrivals. It returns the offline
// report on success and a description of the first divergence otherwise.
//
// The pool must be built exactly like the live one (same config, models with
// the same service functions, tenants); supervised models re-run their drift
// control deterministically because everything it consumes is virtual time.
func (s *Session) Replay(pool *fleet.Pool) (*fleet.Report, error) {
	if len(s.Requests) == 0 {
		return nil, fmt.Errorf("gateway: session has no requests to replay")
	}
	rep, err := pool.Serve(s.Requests)
	if err != nil {
		return nil, fmt.Errorf("gateway: offline replay: %w", err)
	}
	for id := range s.Requests {
		if !s.Resolved[id] {
			return nil, fmt.Errorf("gateway: request %d has no recorded outcome (truncated session?)", id)
		}
		rec := s.Outcomes[id]
		switch {
		case rep.Outcomes[id] != rec.Outcome:
			return nil, fmt.Errorf("gateway: request %d: outcome diverged: live %v, replay %v", id, rec.Outcome, rep.Outcomes[id])
		case !bitsEqual(rep.Sojourn[id], rec.Sojourn):
			return nil, fmt.Errorf("gateway: request %d: sojourn diverged: live %s, replay %s", id, hexFloat(rec.Sojourn), hexFloat(rep.Sojourn[id]))
		case !bitsEqual(rep.Dispatch[id], rec.Dispatch):
			return nil, fmt.Errorf("gateway: request %d: dispatch diverged: live %s, replay %s", id, hexFloat(rec.Dispatch), hexFloat(rep.Dispatch[id]))
		case !bitsEqual(rep.Service[id], rec.Service):
			return nil, fmt.Errorf("gateway: request %d: service diverged: live %s, replay %s", id, hexFloat(rec.Service), hexFloat(rep.Service[id]))
		case rep.Worker[id] != rec.Worker:
			return nil, fmt.Errorf("gateway: request %d: worker diverged: live %d, replay %d", id, rec.Worker, rep.Worker[id])
		case rep.Generations[id] != rec.Generation:
			return nil, fmt.Errorf("gateway: request %d: generation diverged: live %d, replay %d", id, rec.Generation, rep.Generations[id])
		}
	}
	// Pool-identity check: a session recorded with the elastic summary must
	// reproduce the exact preemption count and autoscaling decisions, even
	// when none of them changed a per-request record.
	if s.HasElastic {
		m := rep.Metrics
		if m.Preemptions != s.Preemptions {
			return nil, fmt.Errorf("gateway: preemptions diverged: live %d, replay %d", s.Preemptions, m.Preemptions)
		}
		if len(m.ScaleEvents) != len(s.ScaleEvents) {
			return nil, fmt.Errorf("gateway: scale events diverged: live %d, replay %d", len(s.ScaleEvents), len(m.ScaleEvents))
		}
		for i, rec := range s.ScaleEvents {
			got := m.ScaleEvents[i]
			if !bitsEqual(got.Time, rec.Time) || got.Worker != rec.Worker ||
				got.Delta != rec.Delta || got.Workers != rec.Workers {
				return nil, fmt.Errorf("gateway: scale event %d diverged: live %+v, replay %+v", i, rec, got)
			}
		}
	}
	return rep, nil
}

// bitsEqual compares floats by bit pattern, so NaN == NaN (shed requests
// record NaN sojourns) and -0 != +0.
func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
