package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/datasynth"
)

// LoadgenConfig configures one open-loop load-generator run against a
// gateway.
type LoadgenConfig struct {
	// URL is the gateway base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// Arrival draws inter-arrival gaps in *wall* seconds. Required.
	Arrival datasynth.ArrivalProcess
	// Sizes draws request batch sizes (values < 1 are clamped to 1). Required.
	Sizes datasynth.Dist
	// Model and Tenant index into the gateway's pool.
	Model, Tenant int
	// DeadlineSim is the per-request relative deadline in simulated seconds
	// (0 = server default).
	DeadlineSim float64
	// Requests is the total request count. Must be positive.
	Requests int
	// Workers bounds in-flight concurrency. Must be positive. Workers do not
	// pace the schedule — intended send times are fixed up front — they only
	// bound how many requests can be on the wire at once.
	Workers int
	// Seed makes the schedule and sizes reproducible.
	Seed int64
	// Client is the HTTP client; nil builds one with persistent keep-alive
	// connections sized to Workers, so every worker multiplexes over a warm
	// connection instead of paying a dial per request.
	Client *http.Client
	// Clock is the wall-clock source; nil means the real clock.
	Clock Clock
}

// LoadgenResult summarizes one run. Latencies are coordinated-omission
// correct: each request's latency is measured from its *intended* send time
// on the precomputed open-loop schedule, not from when a worker actually got
// to it — a stalled server therefore inflates the recorded tail instead of
// silently thinning the arrival stream.
type LoadgenResult struct {
	// Sent counts requests put on the wire; Served and Shed partition the
	// gateway's answers; Errors counts transport or non-2xx failures. Lost is
	// Sent minus answered — anything the gateway accepted but never answered.
	Sent, Served, Shed, Errors, Lost int
	// Latencies[i] is request i's wall latency from intended send time.
	// Failed requests record their latency too (the time to the error).
	Latencies []time.Duration
	// P50, P95, P99 are latency percentiles over all requests (0 when none).
	P50, P95, P99 time.Duration
	// Elapsed is the wall duration of the whole run.
	Elapsed time.Duration
}

// RunLoadgen drives an open-loop, coordinated-omission-correct load test:
// the full arrival schedule is drawn up front from the seeded process, each
// request fires as close to its intended time as a free worker allows, and
// latency is always measured from the intended time. Modeled on
// scylla-bench's rate-limited workers and cedar's persistent multiplexed
// connections.
func RunLoadgen(cfg LoadgenConfig) (*LoadgenResult, error) {
	if cfg.URL == "" {
		return nil, fmt.Errorf("gateway: loadgen needs a target URL")
	}
	if cfg.Arrival == nil || cfg.Sizes == nil {
		return nil, fmt.Errorf("gateway: loadgen needs arrival process and size distribution")
	}
	if cfg.Requests <= 0 {
		return nil, fmt.Errorf("gateway: loadgen request count must be positive, got %d", cfg.Requests)
	}
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("gateway: loadgen worker count must be positive, got %d", cfg.Workers)
	}
	clock := cfg.Clock
	if clock == nil {
		clock = RealClock()
	}
	client := cfg.Client
	if client == nil {
		tr := &http.Transport{
			MaxIdleConns:        cfg.Workers,
			MaxIdleConnsPerHost: cfg.Workers,
			IdleConnTimeout:     90 * time.Second,
		}
		client = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	// The whole schedule is fixed before the first byte is sent: intended
	// offsets from the run start, and sizes. A slow server cannot push the
	// schedule back — that feedback is exactly the coordinated-omission bug.
	rng := rand.New(rand.NewSource(cfg.Seed))
	offsets := make([]time.Duration, cfg.Requests)
	sizes := make([]int, cfg.Requests)
	var at float64
	for i := 0; i < cfg.Requests; i++ {
		offsets[i] = time.Duration(at * float64(time.Second))
		at += cfg.Arrival.Next(rng)
		if s := cfg.Sizes.Sample(rng); s > 0 {
			sizes[i] = s
		} else {
			sizes[i] = 1
		}
	}

	res := &LoadgenResult{Latencies: make([]time.Duration, cfg.Requests)}
	var mu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int)
	start := clock.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				intended := start.Add(offsets[i])
				if d := intended.Sub(clock.Now()); d > 0 {
					<-clock.After(d)
				}
				outcome, err := postInfer(client, cfg, sizes[i])
				// Latency from the intended send time: queueing behind a
				// stalled server or a saturated worker pool is charged to
				// the request, not hidden.
				lat := clock.Now().Sub(intended)
				mu.Lock()
				res.Latencies[i] = lat
				res.Sent++
				switch {
				case err != nil:
					res.Errors++
				case outcome == "served" || outcome == "split":
					res.Served++
				default:
					res.Shed++
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < cfg.Requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	res.Elapsed = clock.Now().Sub(start)
	res.Lost = res.Sent - res.Served - res.Shed - res.Errors

	sorted := append([]time.Duration(nil), res.Latencies...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	res.P50 = rankDuration(sorted, 0.50)
	res.P95 = rankDuration(sorted, 0.95)
	res.P99 = rankDuration(sorted, 0.99)
	return res, nil
}

// postInfer sends one inference request and returns the gateway's outcome.
func postInfer(client *http.Client, cfg LoadgenConfig, size int) (string, error) {
	body, err := json.Marshal(InferRequest{
		Model: cfg.Model, Tenant: cfg.Tenant, Size: size, DeadlineSim: cfg.DeadlineSim,
	})
	if err != nil {
		return "", err
	}
	resp, err := client.Post(cfg.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return "", fmt.Errorf("gateway: infer returned %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var out InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Outcome, nil
}

// rankDuration is nearest-rank selection on a sorted sample, clamped to 0
// when empty (matching trace.Percentile's empty-sample contract).
func rankDuration(sorted []time.Duration, p float64) time.Duration {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
