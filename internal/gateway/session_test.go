package gateway_test

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/trace"
)

// Hex-float formatting is the reason the log replays bit-identically: every
// float — awkward decimals, denormals, NaN sojourns — must round-trip to the
// exact bit pattern.
func TestSessionRoundTripBitExact(t *testing.T) {
	reqs := []fleet.Request{
		{Arrival: 0, Size: 1, Model: 0, Tenant: 0},
		{Arrival: 0.1, Size: 64, Model: 1, Tenant: 1, Deadline: math.Pi},
		{Arrival: 0.1, Size: 3, Model: 0, Tenant: 0, Deadline: 5e-324}, // tie arrival, denormal deadline
		{Arrival: 1e17 + 0.75, Size: 7, Model: 1, Tenant: 0},
	}
	outs := []fleet.Event{
		{ID: 0, Outcome: fleet.OutcomeServed, Generation: 0, Worker: 1, Sojourn: 1.0000000000000002, Dispatch: 0, Service: 1, End: 1},
		{ID: 1, Outcome: fleet.OutcomeShedQueue, Generation: 1, Worker: -1, Sojourn: math.NaN(), Dispatch: math.NaN(), Service: math.NaN(), End: 0.1},
		{ID: 2, Outcome: fleet.OutcomeSplit, Generation: 0, Worker: 0, Sojourn: 0.30000000000000004, Dispatch: 0.1, Service: 0.2, End: 0.4},
		{ID: 3, Outcome: fleet.OutcomeServed, Generation: 2, Worker: 3, Sojourn: math.Copysign(0, -1), Dispatch: 1e17 + 0.75, Service: 0, End: 1e17 + 0.75},
	}

	var buf bytes.Buffer
	sw := gateway.NewSessionWriter(&buf)
	for id, r := range reqs {
		sw.Request(id, r)
	}
	// Outcomes land out of admission order, as a live engine resolves them.
	for _, i := range []int{1, 0, 3, 2} {
		sw.Outcome(outs[i])
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	sess, err := gateway.ReadSession(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.Requests) != len(reqs) {
		t.Fatalf("decoded %d requests, want %d", len(sess.Requests), len(reqs))
	}
	bits := math.Float64bits
	for i, want := range reqs {
		got := sess.Requests[i]
		if bits(got.Arrival) != bits(want.Arrival) || bits(got.Deadline) != bits(want.Deadline) ||
			got.Size != want.Size || got.Model != want.Model || got.Tenant != want.Tenant {
			t.Errorf("request %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
	for i, want := range outs {
		if !sess.Resolved[i] {
			t.Fatalf("outcome %d not resolved after decode", i)
		}
		got := sess.Outcomes[i]
		if got.Outcome != want.Outcome || got.Generation != want.Generation || got.Worker != want.Worker ||
			bits(got.Sojourn) != bits(want.Sojourn) || bits(got.Dispatch) != bits(want.Dispatch) ||
			bits(got.Service) != bits(want.Service) || bits(got.End) != bits(want.End) {
			t.Errorf("outcome %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
}

// A session log is evidence: every kind of damage must be rejected loudly.
func TestReadSessionRejectsDamage(t *testing.T) {
	valid := func() string {
		var buf bytes.Buffer
		sw := gateway.NewSessionWriter(&buf)
		sw.Request(0, fleet.Request{Arrival: 0, Size: 4})
		sw.Request(1, fleet.Request{Arrival: 0.5, Size: 8})
		sw.Outcome(fleet.Event{ID: 0, Outcome: fleet.OutcomeServed, Sojourn: 1, End: 1})
		sw.Outcome(fleet.Event{ID: 1, Outcome: fleet.OutcomeServed, Sojourn: 1, End: 1.5})
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()
	// The valid log parses.
	if _, err := gateway.ReadSession(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid session rejected: %v", err)
	}

	cases := map[string]string{
		"empty":              "",
		"bad header":         "recflex-session v9\nend 0\n",
		"no end marker":      strings.TrimSuffix(valid, "end 2\n"),
		"wrong end count":    strings.Replace(valid, "end 2", "end 3", 1),
		"content after end":  valid + "req 2 0x1p+1 4 0 0 0x0p+00\n",
		"req out of order":   strings.Replace(valid, "req 1", "req 5", 1),
		"req field count":    strings.Replace(valid, "req 0 ", "req 0 extra ", 1),
		"out without req":    strings.Replace(valid, "out 1", "out 9", 1),
		"duplicate out":      strings.Replace(valid, "out 1", "out 0", 1),
		"unknown record":     strings.Replace(valid, "out 0", "zap 0", 1),
		"unknown outcome":    strings.Replace(valid, "out 0 0", "out 0 99", 1),
		"malformed float":    strings.Replace(valid, "0x1p-01", "zzz", 1),
		"regressing arrival": strings.Replace(valid, "req 1 0x1p-01", "req 1 -0x1p+00", 1),
		"infinite arrival":   strings.Replace(valid, "req 1 0x1p-01", "req 1 +Inf", 1),
	}
	for name, log := range cases {
		if _, err := gateway.ReadSession(strings.NewReader(log)); err == nil {
			t.Errorf("%s: accepted\n%s", name, log)
		}
	}
}

// Replay must detect tampering: flip one bit of a recorded sojourn and the
// replay check fails; drop an outcome and it reports the truncation.
func TestReplayDetectsTamperAndTruncation(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(1.0)}}, []fleet.TenantSpec{{Name: "only"}})
	reqs := []fleet.Request{
		{Arrival: 0, Size: 4},
		{Arrival: 0.25, Size: 8},
		{Arrival: 0.5, Size: 16},
	}
	rep, err := pool.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}

	build := func() *gateway.Session {
		var buf bytes.Buffer
		sw := gateway.NewSessionWriter(&buf)
		for i, r := range reqs {
			sw.Request(i, r)
		}
		for i := range reqs {
			sw.Outcome(fleet.Event{
				ID: i, Outcome: rep.Outcomes[i], Generation: rep.Generations[i],
				Worker: rep.Worker[i], Sojourn: rep.Sojourn[i],
				Dispatch: rep.Dispatch[i], Service: rep.Service[i],
				End: rep.Dispatch[i] + rep.Service[i],
			})
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		s, err := gateway.ReadSession(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// The honest log replays.
	if _, err := build().Replay(pool); err != nil {
		t.Fatalf("honest session diverged: %v", err)
	}

	// One ULP of tampering on one sojourn is caught.
	tampered := build()
	tampered.Outcomes[1].Sojourn = math.Nextafter(tampered.Outcomes[1].Sojourn, math.Inf(1))
	if _, err := tampered.Replay(pool); err == nil {
		t.Fatal("tampered sojourn replayed without divergence")
	} else if !strings.Contains(err.Error(), "sojourn diverged") {
		t.Fatalf("tamper error %q does not name the diverged field", err)
	}

	// A missing outcome is a truncated session, not a silent pass.
	truncated := build()
	truncated.Resolved[2] = false
	if _, err := truncated.Replay(pool); err == nil {
		t.Fatal("truncated session replayed without error")
	}

	// Wrong worker and wrong generation are caught too.
	wrongWorker := build()
	wrongWorker.Outcomes[0].Worker++
	if _, err := wrongWorker.Replay(pool); err == nil || !strings.Contains(err.Error(), "worker diverged") {
		t.Fatalf("wrong worker: %v", err)
	}
	wrongGen := build()
	wrongGen.Outcomes[0].Generation++
	if _, err := wrongGen.Replay(pool); err == nil || !strings.Contains(err.Error(), "generation diverged") {
		t.Fatalf("wrong generation: %v", err)
	}

	// An empty session has nothing to replay.
	if _, err := (&gateway.Session{}).Replay(pool); err == nil {
		t.Fatal("empty session replayed")
	}
}

// The writer latches the first I/O error and reports it at Close.
func TestSessionWriterLatchesWriteError(t *testing.T) {
	sw := gateway.NewSessionWriter(failingWriter{})
	sw.Request(0, fleet.Request{Arrival: 0, Size: 1})
	if err := sw.Close(); err == nil {
		t.Fatal("write error was swallowed")
	}
}

type failingWriter struct{}

func (failingWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk on fire") }
