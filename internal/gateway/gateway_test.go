package gateway_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/datasynth"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/trace"
)

// constSvc is a time- and size-invariant service.
func constSvc(v float64) trace.TimedServiceFunc {
	return func(float64, int) (float64, error) { return v, nil }
}

// sizeSvc scales service time linearly with batch size.
func sizeSvc(perSample float64) trace.TimedServiceFunc {
	return func(_ float64, size int) (float64, error) { return perSample * float64(size), nil }
}

func mustPool(t *testing.T, cfg fleet.Config, models []fleet.Model, tenants []fleet.TenantSpec) *fleet.Pool {
	t.Helper()
	p, err := fleet.NewPool(cfg, models, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// driftyModel is a supervised model whose detector fires once virtual time
// passes driftAt, re-tuning to half the base service time.
func driftyModel(t *testing.T, name string, base, driftAt float64) fleet.Model {
	t.Helper()
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 1},
		Window:       8,
		CheckEvery:   4,
		TuneDuration: 0.02,
		MaxRetunes:   1,
		Cooldown:     0.5,
	}, constSvc(base), func(win []trace.WindowEntry) (bool, error) {
		return win[len(win)-1].Time >= driftAt, nil
	}, func(gen int, _ []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return constSvc(base / 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fleet.Model{Name: name, Supervisor: sv}
}

// fakeClock is a hand-advanced Clock. After-channels fire when advance moves
// the clock past their deadline.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	afters []fakeAfter
	waits  []time.Duration // every duration handed to After, in call order
}

type fakeAfter struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	f.afters = append(f.afters, fakeAfter{at: f.now.Add(d), ch: ch})
	f.waits = append(f.waits, d)
	return ch
}

// armedWaits snapshots every duration After has been asked for so far.
func (f *fakeClock) armedWaits() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.waits...)
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	kept := f.afters[:0]
	for _, a := range f.afters {
		if !a.at.After(f.now) {
			a.ch <- f.now
		} else {
			kept = append(kept, a)
		}
	}
	f.afters = kept
}

// rewind moves the clock backward — a hostile clock the warp mapping must
// clamp against.
func (f *fakeClock) rewind(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(-d)
}

// The tentpole invariant: a live gateway session — concurrent clients, warped
// wall-clock arrivals, served and shed outcomes — records a session log whose
// offline replay through fleet.Pool reproduces every per-request outcome and
// sojourn bit-identically. The test asserts record<->replay equality, not any
// particular trace, so wall-clock nondeterminism across runs is immaterial.
func TestGatewaySessionReplaysBitIdentically(t *testing.T) {
	tenants := []fleet.TenantSpec{
		{Name: "gold", Priority: 1},
		{Name: "capped", Priority: 0, Quota: 2},
	}
	models := []fleet.Model{
		{Name: "heavy", Service: constSvc(2.0)},
		{Name: "scaled", Service: sizeSvc(0.05)},
	}
	pool := mustPool(t, fleet.Config{
		Queue: trace.QueuePolicy{Workers: 2, QueueDepth: 3},
	}, models, tenants)

	var log bytes.Buffer
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 20000, Session: &log})
	if err != nil {
		t.Fatal(err)
	}

	// Open-loop load: each request is its own goroutine, so in-flight count
	// is unbounded and the depth-3 queue and tenant quota genuinely fill.
	const total = 100
	var wg sync.WaitGroup
	var mu sync.Mutex
	outcomes := make(map[fleet.Outcome]int)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i, size int) {
			defer wg.Done()
			ev, err := g.Infer(context.Background(), fleet.Request{
				Size:   size,
				Model:  i % len(models),
				Tenant: i % len(tenants),
			})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			mu.Lock()
			outcomes[ev.Outcome]++
			mu.Unlock()
		}(i, 1+rng.Intn(64))
		// Bursty launches: ten near-simultaneous arrivals per lull, so the
		// depth-3 queue and the quota-capped tenant overflow for real.
		if i%10 == 9 {
			time.Sleep(time.Duration(rng.Intn(200)) * time.Microsecond)
		}
	}
	wg.Wait()

	liveRep, err := g.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if liveRep == nil {
		t.Fatal("close returned nil report for a non-empty session")
	}
	st := g.Stats()
	if st.Admitted != total || st.Lost != 0 || st.Pending != 0 {
		t.Fatalf("stats after close: %+v, want %d admitted, 0 lost, 0 pending", st, total)
	}

	sess, err := gateway.ReadSession(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("read session: %v", err)
	}
	if len(sess.Requests) != total {
		t.Fatalf("session has %d requests, want %d", len(sess.Requests), total)
	}

	// The hard invariant: offline replay through the same pool reproduces
	// every recorded outcome, sojourn, dispatch, service, worker and
	// generation bit for bit. Replay fails loudly on the first divergence.
	offRep, err := sess.Replay(pool)
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	// The live report (admission order) must agree with the offline one too.
	for i := range sess.Requests {
		if liveRep.Outcomes[i] != offRep.Outcomes[i] {
			t.Fatalf("request %d: live report outcome %v, replay %v", i, liveRep.Outcomes[i], offRep.Outcomes[i])
		}
		if math.Float64bits(liveRep.Sojourn[i]) != math.Float64bits(offRep.Sojourn[i]) {
			t.Fatalf("request %d: live sojourn %v, replay %v", i, liveRep.Sojourn[i], offRep.Sojourn[i])
		}
	}

	// Sanity on coverage: with 2 workers, a depth-3 queue, a 2s service and a
	// quota-capped tenant under a 20000x warp, the stream must have produced
	// both served and shed outcomes or the test lost its teeth.
	if outcomes[fleet.OutcomeServed] == 0 {
		t.Error("no served requests — warp or load is mis-tuned")
	}
	if outcomes[fleet.OutcomeShedQueue]+outcomes[fleet.OutcomeShedQuota]+outcomes[fleet.OutcomeShedLoad] == 0 {
		t.Error("no shed requests — queue never filled, shed replay path untested")
	}
}

// A supervised model's drift-detect -> background-tune -> hot-swap cycle runs
// against live gateway traffic, and the recorded session still replays
// bit-identically — generation stamps included.
func TestGatewaySupervisedModelReplay(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{driftyModel(t, "drifty", 0.5, 5)}, []fleet.TenantSpec{{Name: "only"}})

	var log bytes.Buffer
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 10000, Session: &log})
	if err != nil {
		t.Fatal(err)
	}

	swapped := false
	for i := 0; i < 40; i++ {
		ev, err := g.Infer(context.Background(), fleet.Request{Size: 16})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if ev.Generation > 0 {
			swapped = true
		}
		time.Sleep(100 * time.Microsecond) // ~1 simulated second per gap at warp 10000
	}
	if !swapped {
		t.Fatal("no request resolved on a post-swap generation — hot-swap never ran against live traffic")
	}

	if _, err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	sess, err := gateway.ReadSession(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("read session: %v", err)
	}
	if _, err := sess.Replay(pool); err != nil {
		t.Fatalf("supervised replay diverged: %v", err)
	}
}

// The warp mapping: simulated time is elapsed wall time times the warp
// factor, and a regressing wall clock can never regress simulated time.
func TestGatewayWarpMapping(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(1.0)}}, []fleet.TenantSpec{{Name: "only"}})
	fc := newFakeClock()
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 50, Clock: fc})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	if got := g.Stats().SimNow; got != 0 {
		t.Fatalf("SimNow at epoch = %g, want 0", got)
	}
	fc.advance(100 * time.Millisecond)
	if got := g.Stats().SimNow; math.Abs(got-5) > 1e-9 {
		t.Fatalf("SimNow after 100ms at warp 50 = %g, want 5", got)
	}
	fc.rewind(40 * time.Millisecond)
	if got := g.Stats().SimNow; got < 5 {
		t.Fatalf("SimNow regressed to %g after the wall clock rewound", got)
	}
}

// Responses are delivered at warped wall time, not instantly: a 0.2-simulated-
// second service at warp 10 holds the caller for ~20 wall milliseconds.
func TestGatewayInferPacesToWallClock(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(0.2)}}, []fleet.TenantSpec{{Name: "only"}})
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 10})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ev, err := g.Infer(context.Background(), fleet.Request{Size: 8})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Outcome != fleet.OutcomeServed {
		t.Fatalf("outcome %v, want served", ev.Outcome)
	}
	// 0.2 sim s / warp 10 = 20ms wall; allow generous scheduler slack below.
	if elapsed < 10*time.Millisecond {
		t.Errorf("response delivered after %v wall, want >= ~20ms (warped completion)", elapsed)
	}
	if _, err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestGatewayConfigValidation(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(1.0)}}, []fleet.TenantSpec{{Name: "only"}})
	cases := []gateway.Config{
		{Pool: nil, Warp: 1},
		{Pool: pool, Warp: 0},
		{Pool: pool, Warp: -2},
		{Pool: pool, Warp: math.Inf(1)},
		{Pool: pool, Warp: math.NaN()},
	}
	for i, cfg := range cases {
		if _, err := gateway.New(cfg); err == nil {
			t.Errorf("case %d: New(%+v) accepted an invalid config", i, cfg)
		}
	}
}

// The HTTP front door + open-loop load generator, end to end on a loopback
// listener: no transport errors, no lost requests, clean shutdown, and the
// recorded session still replays bit-identically. This is the CI smoke test.
func TestGatewayHTTPLoadgenSmoke(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 2, QueueDepth: 64}},
		[]fleet.Model{{Name: "m", Service: sizeSvc(0.001)}}, []fleet.TenantSpec{{Name: "only"}})
	var log bytes.Buffer
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 2000, Session: &log})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	const n = 40
	res, err := gateway.RunLoadgen(gateway.LoadgenConfig{
		URL:      srv.URL,
		Arrival:  datasynth.Poisson{Rate: 500},
		Sizes:    datasynth.Uniform{Lo: 1, Hi: 32},
		Requests: n,
		Workers:  8,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != n || res.Errors != 0 || res.Lost != 0 {
		t.Fatalf("loadgen: sent %d errors %d lost %d, want %d/0/0", res.Sent, res.Errors, res.Lost, n)
	}
	if res.Served+res.Shed != n {
		t.Fatalf("served %d + shed %d != %d", res.Served, res.Shed, n)
	}

	// Metrics endpoint: valid JSON, counters consistent with the run.
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met gateway.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatalf("metrics decode: %v", err)
	}
	resp.Body.Close()
	if met.Admitted != n {
		t.Fatalf("metrics admitted %d, want %d", met.Admitted, n)
	}
	if met.Served > 0 && met.P50Sim <= 0 {
		t.Errorf("served %d requests but P50 = %g", met.Served, met.P50Sim)
	}

	// Health endpoint while healthy.
	hr, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", hr.StatusCode)
	}

	rep, err := g.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if rep == nil {
		t.Fatal("nil report after a served session")
	}
	if st := g.Stats(); st.Lost != 0 || st.Pending != 0 {
		t.Fatalf("after close: %d lost, %d pending, want 0/0", st.Lost, st.Pending)
	}

	sess, err := gateway.ReadSession(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("read session: %v", err)
	}
	if _, err := sess.Replay(pool); err != nil {
		t.Fatalf("HTTP-recorded session diverged on replay: %v", err)
	}
}

// Bad requests are client errors that must not poison the serving session.
func TestGatewayHTTPRejectsBadRequests(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(0.001)}}, []fleet.TenantSpec{{Name: "only"}})
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 5000})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/infer", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, body := range []string{
		`{"model": 9, "tenant": 0, "size": 4}`, // unknown model
		`{"model": 0, "tenant": 5, "size": 4}`, // unknown tenant
		`{"model": 0, "tenant": 0, "size": 0}`, // non-positive size
		`{"model": 0, "size": 4, "bogus": 1}`,  // unknown field
		`not json at all`,                      // malformed body
	} {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("POST %s -> %d, want 400", body, code)
		}
	}
	// GET on the infer endpoint is a method error.
	if resp, err := http.Get(srv.URL + "/v1/infer"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/infer -> %d, want 405", resp.StatusCode)
		}
	}

	// The rejections above were not sticky: the gateway still serves.
	if code := post(`{"model": 0, "tenant": 0, "size": 4}`); code != http.StatusOK {
		t.Fatalf("good request after rejections -> %d, want 200", code)
	}
	if resp, err := http.Get(srv.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz after rejections -> %d, want 200", resp.StatusCode)
		}
	}

	if _, err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// A closed gateway answers 503, not 400: shutdown is the server's fault.
	if code := post(`{"model": 0, "tenant": 0, "size": 4}`); code != http.StatusServiceUnavailable {
		t.Fatalf("infer after close -> %d, want 503", code)
	}
}

// Close on an idle gateway: no admissions, nil report, valid (empty) session.
func TestGatewayCloseEmpty(t *testing.T) {
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(1.0)}}, []fleet.TenantSpec{{Name: "only"}})
	var log bytes.Buffer
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 100, Session: &log})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if rep != nil {
		t.Fatalf("empty session returned a report: %+v", rep)
	}
	if _, err := g.Close(); err == nil {
		t.Fatal("double close did not error")
	}
	sess, err := gateway.ReadSession(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatalf("empty session log did not parse: %v", err)
	}
	if len(sess.Requests) != 0 {
		t.Fatalf("empty session decoded %d requests", len(sess.Requests))
	}
	if _, err := g.Infer(context.Background(), fleet.Request{Size: 1}); err == nil {
		t.Fatal("Infer after close did not error")
	}
}

// Regression: a pending event arbitrarily far in the simulated future used to
// overflow the pump's wall-wait conversion (float seconds to int64
// nanoseconds), and the negative product collapsed into a 1ns timer — a
// busy-spin that pinned a core until the event matured. The pump must arm a
// bounded idle wait instead; sleeping short is safe because the loop
// recomputes the remaining wait every pass.
func TestGatewayPumpFarFutureEventDoesNotBusySpin(t *testing.T) {
	clock := newFakeClock()
	pool := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "glacial", Service: constSvc(1e12)}},
		[]fleet.TenantSpec{{Name: "only"}})
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 1, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Blocks until shutdown drains it; the ctx cancel below abandons the
		// wait without abandoning the request.
		g.Infer(ctx, fleet.Request{Size: 1})
	}()

	// The request dispatches at sim t=0 and completes at sim t=1e12, so the
	// pump parks the event and arms a timer for it. Wait for that arm.
	deadline := time.Now().Add(10 * time.Second)
	var waits []time.Duration
	for len(waits) == 0 && time.Now().Before(deadline) {
		waits = clock.armedWaits()
		time.Sleep(time.Millisecond)
	}
	if len(waits) == 0 {
		t.Fatal("pump never armed a timer for the far-future completion")
	}
	for _, w := range waits {
		if w < 10*time.Millisecond {
			t.Fatalf("pump armed a %v timer for a completion ~1e12 simulated seconds out (overflow busy-spin)", w)
		}
	}

	cancel()
	<-done
	if _, err := g.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
