package gateway_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datasynth"
	"repro/internal/gateway"
)

// outcomeServer answers every /v1/infer with the given outcome after an
// optional stall.
func outcomeServer(outcome string, stall time.Duration) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if stall > 0 {
			time.Sleep(stall)
		}
		json.NewEncoder(w).Encode(gateway.InferResponse{Outcome: outcome})
	}))
}

// The coordinated-omission test from the issue: a stalled server must inflate
// the recorded tail, not silently thin the arrival stream. One worker against
// a 40ms-per-request server on a 5ms schedule queues linearly; latency
// measured from the *intended* send time therefore grows with queue position.
// A CO-buggy generator (latency from actual send) would record ~40ms flat.
func TestLoadgenCoordinatedOmissionCorrect(t *testing.T) {
	const stall = 40 * time.Millisecond
	srv := outcomeServer("served", stall)
	defer srv.Close()

	const n = 8
	res, err := gateway.RunLoadgen(gateway.LoadgenConfig{
		URL:      srv.URL,
		Arrival:  datasynth.FixedInterval{Rate: 200}, // intended sends every 5ms
		Sizes:    datasynth.Fixed{K: 1},
		Requests: n,
		Workers:  1, // serialize behind the stall
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Served != n || res.Errors != 0 || res.Lost != 0 {
		t.Fatalf("served %d errors %d lost %d, want %d/0/0", res.Served, res.Errors, res.Lost, n)
	}

	// Request i completes no earlier than (i+1)*40ms from the first send but
	// was *intended* at i*5ms: its true latency is at least 40+35i ms. The
	// last request must therefore record >= 285ms; we assert 250ms for slack.
	last := res.Latencies[n-1]
	if last < 250*time.Millisecond {
		t.Fatalf("last latency %v — measured from actual send, not intended (coordinated omission)", last)
	}
	// The tail dwarfs a single server stall: queueing is being charged.
	if last < 4*stall {
		t.Fatalf("last latency %v < 4x the %v stall — queue delay not charged to the request", last, stall)
	}
	// Latency grows with queue position (allow scheduler jitter on neighbors).
	if res.Latencies[n-1] <= res.Latencies[0]+100*time.Millisecond {
		t.Fatalf("latencies did not grow under a stalled server: first %v, last %v",
			res.Latencies[0], res.Latencies[n-1])
	}
	if res.P99 < res.P50 {
		t.Fatalf("P99 %v < P50 %v", res.P99, res.P50)
	}
	if res.Elapsed < n*stall {
		t.Fatalf("elapsed %v < %d serialized stalls", res.Elapsed, n)
	}
}

// Shed outcomes and transport-level failures land in the right counters, and
// nothing is ever silently lost.
func TestLoadgenCountsOutcomes(t *testing.T) {
	shedSrv := outcomeServer("shed-queue", 0)
	defer shedSrv.Close()
	res, err := gateway.RunLoadgen(gateway.LoadgenConfig{
		URL:      shedSrv.URL,
		Arrival:  datasynth.Poisson{Rate: 5000},
		Sizes:    datasynth.Fixed{K: 2},
		Requests: 10,
		Workers:  4,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 10 || res.Served != 0 || res.Errors != 0 || res.Lost != 0 {
		t.Fatalf("shed server: %+v, want 10 shed", res)
	}

	var hits atomic.Int64
	errSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer errSrv.Close()
	res, err = gateway.RunLoadgen(gateway.LoadgenConfig{
		URL:      errSrv.URL,
		Arrival:  datasynth.Poisson{Rate: 5000},
		Sizes:    datasynth.Fixed{K: 2},
		Requests: 10,
		Workers:  4,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 10 || res.Lost != 0 {
		t.Fatalf("error server: %+v, want 10 errors, 0 lost", res)
	}
	if hits.Load() != 10 {
		t.Fatalf("server saw %d requests, want 10", hits.Load())
	}
}

// The same seed reproduces the same schedule and sizes.
func TestLoadgenSeededScheduleIsDeterministic(t *testing.T) {
	var sizes1, sizes2 []int
	record := func(dst *[]int) *httptest.Server {
		return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			var req gateway.InferRequest
			json.NewDecoder(r.Body).Decode(&req)
			*dst = append(*dst, req.Size)
			json.NewEncoder(w).Encode(gateway.InferResponse{Outcome: "served"})
		}))
	}
	run := func(srv *httptest.Server) {
		t.Helper()
		_, err := gateway.RunLoadgen(gateway.LoadgenConfig{
			URL:      srv.URL,
			Arrival:  datasynth.Poisson{Rate: 10000},
			Sizes:    datasynth.Uniform{Lo: 1, Hi: 128},
			Requests: 20,
			Workers:  1, // one worker: sizes arrive in schedule order
			Seed:     42,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s1 := record(&sizes1)
	run(s1)
	s1.Close()
	s2 := record(&sizes2)
	run(s2)
	s2.Close()
	if len(sizes1) != 20 || len(sizes2) != 20 {
		t.Fatalf("recorded %d and %d sizes, want 20", len(sizes1), len(sizes2))
	}
	for i := range sizes1 {
		if sizes1[i] != sizes2[i] {
			t.Fatalf("size %d: %d vs %d under the same seed", i, sizes1[i], sizes2[i])
		}
	}
}

func TestLoadgenConfigValidation(t *testing.T) {
	good := gateway.LoadgenConfig{
		URL:      "http://127.0.0.1:1",
		Arrival:  datasynth.Poisson{Rate: 100},
		Sizes:    datasynth.Fixed{K: 1},
		Requests: 1,
		Workers:  1,
	}
	mutate := []func(*gateway.LoadgenConfig){
		func(c *gateway.LoadgenConfig) { c.URL = "" },
		func(c *gateway.LoadgenConfig) { c.Arrival = nil },
		func(c *gateway.LoadgenConfig) { c.Sizes = nil },
		func(c *gateway.LoadgenConfig) { c.Requests = 0 },
		func(c *gateway.LoadgenConfig) { c.Requests = -5 },
		func(c *gateway.LoadgenConfig) { c.Workers = 0 },
		func(c *gateway.LoadgenConfig) { c.Workers = -1 },
	}
	for i, m := range mutate {
		cfg := good
		m(&cfg)
		if _, err := gateway.RunLoadgen(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
