package sched

import (
	"fmt"

	"repro/internal/gpusim"
)

// StagedTile dedicates one block per sample and pipelines the sample's rows
// through a double-buffered shared-memory staging area, StageRows rows per
// async copy. The bulk transfers raise memory-level parallelism dramatically,
// which makes this family the isolated-latency champion on multi-hot
// features: alone on the GPU, nothing hides latency better.
//
// The catch is the paper's §II-C interference warning verbatim: the staging
// buffer costs tens of kilobytes of shared memory and a wide register file,
// and in a fused kernel the shared-memory union caps the occupancy of every
// other feature. A greedy separate-combine tuner loves StagedTile; the
// interference-aware two-stage tuner only accepts it when the globally tuned
// occupancy can afford it — the heart of the Figure 11 gap.
type StagedTile struct {
	Threads   int // threads per block, multiple of 32
	Vec       int // elements per vector load: 1, 2 or 4
	StageRows int // rows per staging chunk: >= 1
}

var _ Schedule = StagedTile{}

// Name implements Schedule.
func (s StagedTile) Name() string {
	return fmt.Sprintf("stagedtile(t%d,v%d,s%d)", s.Threads, s.Vec, s.StageRows)
}

// Resources implements Schedule.
func (s StagedTile) Resources(int) gpusim.KernelResources {
	return gpusim.KernelResources{
		ThreadsPerBlock: s.Threads,
		RegsPerThread:   40 + 8*s.Vec,
		// Double-buffered staging area.
		SharedMemPerBlock: 2 * s.Threads * s.Vec * 4 * s.StageRows,
	}
}

func (s StagedTile) valid() error {
	switch {
	case s.Threads <= 0 || s.Threads%32 != 0:
		return fmt.Errorf("sched: %s: threads must be a positive multiple of 32", s.Name())
	case s.Vec != 1 && s.Vec != 2 && s.Vec != 4:
		return fmt.Errorf("sched: %s: vec must be 1, 2 or 4", s.Name())
	case s.StageRows < 1:
		return fmt.Errorf("sched: %s: stage rows must be >= 1", s.Name())
	}
	return nil
}

// Supports implements Schedule.
func (s StagedTile) Supports(w *Workload) bool {
	return s.valid() == nil && w.Dim > 0
}

// Plan implements Schedule.
func (s StagedTile) Plan(w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	if err := s.valid(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	warps := s.Threads / dev.WarpSize
	colIters := ceilDiv(w.Dim, dev.WarpSize*s.Vec)
	activeLanes := ceilDiv(w.Dim, s.Vec)
	if activeLanes > dev.WarpSize {
		activeLanes = dev.WarpSize
	}
	rowSector := rowSectorBytes(w.RowBytes())
	h := l2.HitFraction(w)
	writeRow := w.RowBytes()
	reduceStages := 0
	for v := warps; v > 1; v >>= 1 {
		reduceStages++
	}

	fill := func(lo, hi int) gpusim.BlockWork {
		pf := w.PF[lo]
		chunks := ceilDiv(pf, s.StageRows)
		// Bulk staging copies amortize per-row addressing; the reduction
		// over staged rows is cheap register work.
		comp := float64(chunks)*(instrLoadOverhead+8) +
			float64(pf)*float64(colIters)*float64(s.Vec) +
			float64(reduceStages)*float64(colIters)*4*float64(warps) +
			float64(colIters)*(1+float64(s.Vec)) + instrSampleEpilogue
		reads := float64(pf) * rowSector
		// One request per staged chunk: large, pipelined transfers.
		reqs := float64(chunks) + float64(colIters)
		return gpusim.BlockWork{
			CompCycles:  comp,
			DRAMBytes:   reads*(1-h) + writeRow,
			L2Bytes:     reads * h,
			MemRequests: reqs,
			Warps:       warps,
			ActiveFrac:  float64(activeLanes) / float64(dev.WarpSize),
			PredOffFrac: 0,
		}
	}
	return contiguousPlan(s, w, 1, fill), nil
}
