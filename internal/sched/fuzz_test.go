package sched

import (
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

var fuzzDims = []int{4, 8, 16, 32, 64, 128}

// FuzzScheduleEquivalence fuzzes the invariant the whole tuner rests on:
// every candidate schedule is an execution strategy, never a semantics
// change. For a fuzzed workload batch, each supported candidate's plan must
// validate, and its pooled outputs must be bit-identical to the CPU
// reference for every pooling mode — both when executed whole and when its
// blocks run in a shuffled order (the exact-cover property the hot-swap
// relies on: any generation's plan computes the same embeddings).
func FuzzScheduleEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(32), uint8(1), uint8(20))
	f.Add(int64(21), uint8(255), uint8(0), uint8(40))
	f.Add(int64(-9), uint8(1), uint8(5), uint8(0))
	f.Add(int64(7717), uint8(64), uint8(3), uint8(7))

	dev := gpusim.V100()
	f.Fuzz(func(t *testing.T, seed int64, rawBatch, rawDim, rawPF uint8) {
		dim := fuzzDims[int(rawDim)%len(fuzzDims)]
		batch := 1 + int(rawBatch)%128
		maxPF := int(rawPF) % 48

		rng := rand.New(rand.NewSource(seed))
		rows := 128 << rng.Intn(4)
		tbl, err := embedding.NewDeterministicTable("t", rows, dim, uint64(seed)*0x9E3779B9+1)
		if err != nil {
			t.Fatal(err)
		}
		fb, w := randomWorkloadBatch(rng, batch, rows, dim, maxPF)
		if err := w.Validate(); err != nil {
			t.Fatalf("generated workload invalid: %v", err)
		}

		cands := SupportedCandidates(DefaultCandidates(dim), &w)
		if len(cands) == 0 {
			return
		}
		for _, mode := range []embedding.PoolMode{embedding.PoolSum, embedding.PoolMean, embedding.PoolMax} {
			want, err := embedding.PoolCPU(tbl, fb, mode)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range cands {
				p, err := s.Plan(&w, dev, testL2())
				if err != nil {
					t.Fatalf("%s: Plan: %v", s.Name(), err)
				}
				if err := p.Validate(w.BatchSize); err != nil {
					t.Fatalf("%s: plan invalid: %v", s.Name(), err)
				}
				got := make([]float32, len(want))
				p.ExecuteAll(tbl, fb, mode, got)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s mode %v: out[%d] = %g, want %g (batch %d dim %d maxPF %d seed %d)",
							s.Name(), mode, i, got[i], want[i], batch, dim, maxPF, seed)
					}
				}
				// Blocks shuffled and run exactly once must cover the batch.
				shuffled := make([]float32, len(want))
				for _, b := range rng.Perm(p.NumBlocks) {
					p.ExecuteBlock(b, tbl, fb, mode, shuffled)
				}
				for i := range want {
					if want[i] != shuffled[i] {
						t.Fatalf("%s mode %v: shuffled block execution diverges at %d", s.Name(), mode, i)
					}
				}
			}
		}
	})
}
