// Package sched implements RecFlex's schedule templates for embedding
// operations. A schedule is one way of mapping the lookup-and-pool work of a
// single feature field onto GPU thread blocks: it decides how many blocks the
// feature needs for a given input workload (the thread mapping), what each
// block costs (compute cycles, memory traffic, divergence), what static
// resources it consumes (threads, registers, shared memory), and — for
// correctness checking — which output elements each block produces.
//
// Schedules are heterogeneous in exactly the way the paper's Figure 3 shows:
// a sub-warp schedule wins on small-dimension multi-hot features, a
// thread-per-sample schedule on one-hot features, a block-per-sample schedule
// on huge pooling factors, and so on. Each template exposes tunable
// parameters (threads per block, lanes per sample, vector width, unroll
// factor) whose combinations form the per-feature candidate sets S^(f) that
// the tuner searches.
package sched

import (
	"fmt"

	"repro/internal/embedding"
)

// Workload summarizes one feature's input for one batch: everything a
// schedule needs to plan thread mapping and estimate cost. It is computed on
// the host during preprocessing (the paper's host-side workload analysis).
type Workload struct {
	Dim       int
	BatchSize int
	// PF[i] is the pooling factor of sample i.
	PF []int
	// TotalRows is sum(PF): the number of embedding rows retrieved.
	TotalRows int
	// UniqueRows is the number of distinct IDs (drives L2 reuse).
	UniqueRows int
	// TableRows is the feature's embedding-table height.
	TableRows int
}

// AnalyzeWorkload derives the workload summary of one feature batch. This is
// the "extra workload analysis per data reading" the paper folds into CPU
// preprocessing; it is O(nnz) and allocation-light.
func AnalyzeWorkload(fb *embedding.FeatureBatch, dim, tableRows int) Workload {
	w := Workload{
		Dim:       dim,
		BatchSize: fb.BatchSize(),
		TableRows: tableRows,
	}
	w.PF = make([]int, w.BatchSize)
	for i := range w.PF {
		w.PF[i] = fb.PoolingFactor(i)
		w.TotalRows += w.PF[i]
	}
	w.UniqueRows = fb.UniqueRowsEstimate()
	return w
}

// Validate checks internal consistency.
func (w *Workload) Validate() error {
	switch {
	case w.Dim <= 0:
		return fmt.Errorf("sched: workload dim must be positive, got %d", w.Dim)
	case w.BatchSize <= 0:
		return fmt.Errorf("sched: workload batch size must be positive, got %d", w.BatchSize)
	case len(w.PF) != w.BatchSize:
		return fmt.Errorf("sched: len(PF)=%d != batch size %d", len(w.PF), w.BatchSize)
	}
	total := 0
	for i, pf := range w.PF {
		if pf < 0 {
			return fmt.Errorf("sched: negative pooling factor %d at sample %d", pf, i)
		}
		total += pf
	}
	if total != w.TotalRows {
		return fmt.Errorf("sched: TotalRows=%d but PF sums to %d", w.TotalRows, total)
	}
	if w.UniqueRows < 0 || w.UniqueRows > w.TotalRows {
		return fmt.Errorf("sched: UniqueRows=%d outside [0,%d]", w.UniqueRows, w.TotalRows)
	}
	return nil
}

// RowBytes returns the size of one embedding row.
func (w *Workload) RowBytes() float64 { return float64(w.Dim) * 4 }

// MeanPF returns the average pooling factor.
func (w *Workload) MeanPF() float64 {
	return float64(w.TotalRows) / float64(w.BatchSize)
}

// L2Context carries the global information a schedule needs to estimate how
// much of its row traffic the L2 cache absorbs: the cache capacity and the
// total working set of everything co-resident in the fused kernel. A feature
// tuned in isolation would overestimate its cache share; the tuner's padding
// blocks exist precisely to simulate this grid-level contention.
type L2Context struct {
	CacheBytes      float64
	WorkingSetBytes float64
}

// HitFraction estimates the fraction of row reads served by L2 for workload
// w: the reuse fraction of the access stream scaled by how much of the
// working set fits in cache.
func (c L2Context) HitFraction(w *Workload) float64 {
	if w.TotalRows == 0 {
		return 0
	}
	reuse := float64(w.TotalRows-w.UniqueRows) / float64(w.TotalRows)
	fit := 1.0
	if c.WorkingSetBytes > c.CacheBytes && c.WorkingSetBytes > 0 {
		fit = c.CacheBytes / c.WorkingSetBytes
	}
	return reuse * fit
}
