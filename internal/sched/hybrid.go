package sched

import (
	"fmt"

	"repro/internal/gpusim"
)

// HybridSplit routes each sample by its pooling factor: samples at or above
// ThresholdPF get a whole block each (the Heavy schedule), the rest share
// sub-warps (the Light schedule). The host's workload analysis performs the
// split, so the schedule adapts to intra-feature heterogeneity — the bimodal
// history features where neither a uniform fine-grained nor a uniform
// coarse-grained mapping wins: sub-warps stall in lockstep behind the heavy
// samples, while block-per-sample wastes whole blocks on one-row samples.
//
// Like SortedSubWarp, the split travels as a permutation in the Plan (light
// samples first, then heavy), so outputs land in their original slots and
// functional semantics are untouched.
type HybridSplit struct {
	Light       SubWarp
	Heavy       BlockPerSample
	ThresholdPF int
}

var _ Schedule = HybridSplit{}

// Name implements Schedule.
func (h HybridSplit) Name() string {
	return fmt.Sprintf("hybrid(%s|%s,pf>=%d)", h.Light.Name(), h.Heavy.Name(), h.ThresholdPF)
}

// Resources implements Schedule: the union footprint, as in any fused kernel.
func (h HybridSplit) Resources(dim int) gpusim.KernelResources {
	l, hv := h.Light.Resources(dim), h.Heavy.Resources(dim)
	out := l
	if hv.ThreadsPerBlock > out.ThreadsPerBlock {
		out.ThreadsPerBlock = hv.ThreadsPerBlock
	}
	if hv.RegsPerThread > out.RegsPerThread {
		out.RegsPerThread = hv.RegsPerThread
	}
	if hv.SharedMemPerBlock > out.SharedMemPerBlock {
		out.SharedMemPerBlock = hv.SharedMemPerBlock
	}
	return out
}

func (h HybridSplit) valid() error {
	if err := h.Light.valid(); err != nil {
		return err
	}
	if err := h.Heavy.valid(); err != nil {
		return err
	}
	if h.ThresholdPF < 1 {
		return fmt.Errorf("sched: %s: threshold must be >= 1", h.Name())
	}
	return nil
}

// Supports implements Schedule.
func (h HybridSplit) Supports(w *Workload) bool {
	return h.valid() == nil && h.Light.Supports(w) && h.Heavy.Supports(w)
}

// Plan implements Schedule.
func (h HybridSplit) Plan(w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	if err := h.valid(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	perm := make([]int32, 0, w.BatchSize)
	var heavy []int32
	lightRows := 0
	for i, pf := range w.PF {
		if pf >= h.ThresholdPF {
			heavy = append(heavy, int32(i))
		} else {
			perm = append(perm, int32(i))
			lightRows += pf
		}
	}
	nLight := len(perm)
	perm = append(perm, heavy...)

	// Degenerate splits collapse to the single applicable schedule.
	if len(heavy) == 0 {
		p, err := h.Light.Plan(w, dev, l2)
		if err != nil {
			return nil, err
		}
		p.Schedule = h
		return p, nil
	}
	if nLight == 0 {
		p, err := h.Heavy.Plan(w, dev, l2)
		if err != nil {
			return nil, err
		}
		p.Schedule = h
		return p, nil
	}

	split := func(idx []int32, rows int) Workload {
		sub := Workload{
			Dim:       w.Dim,
			BatchSize: len(idx),
			PF:        make([]int, len(idx)),
			TotalRows: rows,
			TableRows: w.TableRows,
		}
		for i, s := range idx {
			sub.PF[i] = w.PF[s]
		}
		// Unique rows split proportionally to the row share.
		if w.TotalRows > 0 {
			sub.UniqueRows = w.UniqueRows * rows / w.TotalRows
		}
		return sub
	}
	wLight := split(perm[:nLight], lightRows)
	wHeavy := split(perm[nLight:], w.TotalRows-lightRows)

	pLight, err := h.Light.Plan(&wLight, dev, l2)
	if err != nil {
		return nil, err
	}
	pHeavy, err := h.Heavy.Plan(&wHeavy, dev, l2)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		Schedule:  h,
		NumBlocks: pLight.NumBlocks + pHeavy.NumBlocks,
		Blocks:    append(pLight.Blocks, pHeavy.Blocks...),
		SampleLo:  pLight.SampleLo,
		SampleHi:  pLight.SampleHi,
		Perm:      perm,
	}
	for b := 0; b < pHeavy.NumBlocks; b++ {
		p.SampleLo = append(p.SampleLo, pHeavy.SampleLo[b]+int32(nLight))
		p.SampleHi = append(p.SampleHi, pHeavy.SampleHi[b]+int32(nLight))
	}
	return p, nil
}
