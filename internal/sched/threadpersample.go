package sched

import (
	"fmt"

	"repro/internal/gpusim"
)

// ThreadPerSample assigns one thread to one sample: the thread loops over the
// sample's rows and keeps the whole Dim-wide accumulator in registers. All 32
// lanes of a warp stay active, and for one-hot features each sample costs a
// single strided row read — the cheapest possible mapping. The price is a
// register footprint proportional to the embedding dimension, which makes
// this family exactly the kind of occupancy-hostile schedule the paper's
// Figure 12 shows collapsing when the fused kernel constrains occupancy.
type ThreadPerSample struct {
	Threads int // threads per block, multiple of 32
	Unroll  int // rows in flight per thread: >= 1
}

var _ Schedule = ThreadPerSample{}

// Name implements Schedule.
func (s ThreadPerSample) Name() string {
	return fmt.Sprintf("threadpersample(t%d,u%d)", s.Threads, s.Unroll)
}

// Resources implements Schedule.
func (s ThreadPerSample) Resources(dim int) gpusim.KernelResources {
	return gpusim.KernelResources{
		ThreadsPerBlock: s.Threads,
		// dim accumulator registers per thread plus unroll row pointers.
		RegsPerThread: 16 + dim + 4*(s.Unroll-1),
	}
}

func (s ThreadPerSample) valid() error {
	switch {
	case s.Threads <= 0 || s.Threads%32 != 0:
		return fmt.Errorf("sched: %s: threads must be a positive multiple of 32", s.Name())
	case s.Unroll < 1:
		return fmt.Errorf("sched: %s: unroll must be >= 1", s.Name())
	}
	return nil
}

// Supports implements Schedule: the accumulator must fit in the register
// file (dim <= 64 keeps the footprint legal).
func (s ThreadPerSample) Supports(w *Workload) bool {
	if s.valid() != nil {
		return false
	}
	return s.Resources(w.Dim).RegsPerThread <= 128
}

// Plan implements Schedule.
func (s ThreadPerSample) Plan(w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	if err := s.valid(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if !s.Supports(w) {
		return nil, fmt.Errorf("sched: %s cannot hold a %d-wide accumulator in registers", s.Name(), w.Dim)
	}
	samplesPerBlock := adaptiveSamplesPerBlock(dev, w.BatchSize, s.Threads, dev.WarpSize)
	rowSector := rowSectorBytes(w.RowBytes())
	h := l2.HitFraction(w)
	writeRow := w.RowBytes()

	fill := func(lo, hi int) gpusim.BlockWork {
		var comp, reads, writes, reqs float64
		var sumPF, maxPFSum int
		// Warp lockstep: a warp iterates to the max pooling factor among
		// its 32 samples; threads whose sample is done are predicated off.
		for g := lo; g < hi; g += dev.WarpSize {
			end := g + dev.WarpSize
			if end > hi {
				end = hi
			}
			group := w.PF[g:end]
			maxPF := maxIntSlice(group)
			iters := ceilDiv(maxPF, s.Unroll)
			// Each iteration: every lane loads Unroll rows element by
			// element (scalar loads: different lanes hit different rows)
			// and accumulates dim elements per row.
			comp += float64(iters) * float64(s.Unroll) * float64(w.Dim) * (instrLoadOverhead/2 + 1)
			comp += float64(w.Dim) + instrSampleEpilogue // write + epilogue
			sumPF += sumIntSlice(group)
			maxPFSum += maxPF * len(group)
			for _, pf := range group {
				reads += float64(pf) * rowSector
			}
			// One request wave per unrolled iteration; lanes issue
			// concurrently, so waves rather than lane-loads count.
			reqs += float64(iters * w.Dim)
			writes += float64(len(group)) * writeRow
			reqs += float64(len(group))
		}
		balance := 1.0
		if maxPFSum > 0 {
			balance = float64(sumPF) / float64(maxPFSum)
		}
		samples := hi - lo
		warps := ceilDiv(samples, dev.WarpSize)
		tailUtil := float64(samples) / float64(warps*dev.WarpSize)
		return gpusim.BlockWork{
			CompCycles:  comp,
			DRAMBytes:   reads*(1-h) + writes,
			L2Bytes:     reads * h,
			MemRequests: reqs,
			Warps:       warps,
			ActiveFrac:  tailUtil,
			PredOffFrac: 1 - balance,
		}
	}
	return contiguousPlan(s, w, samplesPerBlock, fill), nil
}
