package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gpusim"
)

func autoWorkload(rng *rand.Rand, batch, dim, meanPF int) Workload {
	pf := make([]int, batch)
	total := 0
	for i := range pf {
		pf[i] = rng.Intn(2*meanPF + 1)
		total += pf[i]
	}
	return Workload{Dim: dim, BatchSize: batch, PF: pf, TotalRows: total, UniqueRows: total, TableRows: 1 << 18}
}

func TestAutoCandidatesShape(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(81))
	w := autoWorkload(rng, 256, 32, 40)
	cands := AutoCandidates(&w, dev, testL2(), AutoOptions{MaxCandidates: 10, PerFamilyMin: 1})
	if len(cands) < 10 {
		t.Errorf("only %d candidates", len(cands))
	}
	names := make(map[string]bool)
	fams := make(map[string]bool)
	for _, c := range cands {
		if names[c.Name()] {
			t.Errorf("duplicate candidate %s", c.Name())
		}
		names[c.Name()] = true
		fams[family(c)] = true
		if !c.Supports(&w) {
			t.Errorf("unsupported candidate %s returned", c.Name())
		}
	}
	// Family diversity is preserved for the interference stage.
	for _, f := range []string{"subwarp", "bps"} {
		if !fams[f] {
			t.Errorf("family %s missing from the auto set", f)
		}
	}
}

// The analytic pruner must keep a candidate whose simulated isolated time is
// within a reasonable factor of the best grid candidate.
func TestAutoCandidatesKeepNearOptimal(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(83))
	for _, cfg := range []struct {
		dim, meanPF int
	}{{4, 1}, {8, 50}, {64, 150}} {
		w := autoWorkload(rng, 256, cfg.dim, cfg.meanPF)
		simulate := func(s Schedule) float64 {
			p, err := s.Plan(&w, dev, testL2())
			if err != nil {
				return math.Inf(1)
			}
			k := &gpusim.Kernel{Name: "auto", Resources: s.Resources(w.Dim), Blocks: p.Blocks}
			r, err := gpusim.Simulate(dev, k)
			if err != nil {
				return math.Inf(1)
			}
			return r.Time
		}
		// Brute-force best over the whole grid.
		best := math.Inf(1)
		for _, s := range fullGrid(w.Dim) {
			if !s.Supports(&w) {
				continue
			}
			if tm := simulate(s); tm < best {
				best = tm
			}
		}
		// Best within the pruned set.
		prunedBest := math.Inf(1)
		for _, s := range AutoCandidates(&w, dev, testL2(), AutoOptions{}) {
			if tm := simulate(s); tm < prunedBest {
				prunedBest = tm
			}
		}
		if prunedBest > best*1.5 {
			t.Errorf("dim %d meanPF %d: pruned best %g vs grid best %g (>1.5x loss)",
				cfg.dim, cfg.meanPF, prunedBest, best)
		}
	}
}

func TestAutoCandidatesDifferByWorkload(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(85))
	oneHot := autoWorkload(rng, 256, 4, 0)
	for i := range oneHot.PF {
		oneHot.PF[i] = 1
	}
	oneHot.TotalRows = 256
	oneHot.UniqueRows = 256
	heavy := autoWorkload(rng, 256, 128, 200)
	a := AutoCandidates(&oneHot, dev, testL2(), AutoOptions{MaxCandidates: 5, PerFamilyMin: 1})
	b := AutoCandidates(&heavy, dev, testL2(), AutoOptions{MaxCandidates: 5, PerFamilyMin: 1})
	if a[0].Name() == b[0].Name() {
		t.Errorf("top candidate identical for one-hot dim-4 and heavy dim-128: %s", a[0].Name())
	}
}

func TestFamilyBuckets(t *testing.T) {
	cases := map[string]Schedule{
		"tps":     ThreadPerSample{Threads: 64, Unroll: 1},
		"subwarp": SubWarp{Threads: 64, Lanes: 4, Vec: 1, UnrollRows: 1},
		"sorted":  SortedSubWarp{SubWarp{Threads: 64, Lanes: 4, Vec: 1, UnrollRows: 1}},
		"bps":     BlockPerSample{Threads: 64, Vec: 1},
		"staged":  StagedTile{Threads: 64, Vec: 1, StageRows: 2},
		"hybrid":  HybridSplit{Light: SubWarp{Threads: 64, Lanes: 4, Vec: 1, UnrollRows: 1}, Heavy: BlockPerSample{Threads: 64, Vec: 1}, ThresholdPF: 8},
	}
	for want, s := range cases {
		if got := family(s); got != want {
			t.Errorf("family(%s) = %q, want %q", s.Name(), got, want)
		}
	}
}
