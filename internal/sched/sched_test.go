package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

func testL2() L2Context {
	return L2Context{CacheBytes: 6 << 20, WorkingSetBytes: 64 << 20}
}

func randomWorkloadBatch(rng *rand.Rand, batch, rows, dim, maxPF int) (*embedding.FeatureBatch, Workload) {
	perSample := make([][]int32, batch)
	for i := range perSample {
		pf := rng.Intn(maxPF + 1)
		ids := make([]int32, pf)
		for j := range ids {
			ids[j] = int32(rng.Intn(rows))
		}
		perSample[i] = ids
	}
	fb := embedding.NewFeatureBatch(perSample)
	return &fb, AnalyzeWorkload(&fb, dim, rows)
}

func TestAnalyzeWorkload(t *testing.T) {
	fb := embedding.NewFeatureBatch([][]int32{{1, 2, 2}, {}, {5}})
	w := AnalyzeWorkload(&fb, 16, 100)
	if w.BatchSize != 3 || w.TotalRows != 4 || w.UniqueRows != 3 || w.Dim != 16 {
		t.Errorf("workload = %+v", w)
	}
	if err := w.Validate(); err != nil {
		t.Error(err)
	}
	if w.MeanPF() != 4.0/3.0 {
		t.Errorf("MeanPF = %g", w.MeanPF())
	}
	if w.RowBytes() != 64 {
		t.Errorf("RowBytes = %g", w.RowBytes())
	}
}

func TestWorkloadValidateRejects(t *testing.T) {
	base := Workload{Dim: 8, BatchSize: 2, PF: []int{1, 2}, TotalRows: 3, UniqueRows: 2, TableRows: 10}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := []Workload{
		{Dim: 0, BatchSize: 2, PF: []int{1, 2}, TotalRows: 3},
		{Dim: 8, BatchSize: 0, PF: nil},
		{Dim: 8, BatchSize: 2, PF: []int{1}, TotalRows: 1},
		{Dim: 8, BatchSize: 2, PF: []int{1, -1}, TotalRows: 0},
		{Dim: 8, BatchSize: 2, PF: []int{1, 2}, TotalRows: 99},
		{Dim: 8, BatchSize: 2, PF: []int{1, 2}, TotalRows: 3, UniqueRows: 9},
	}
	for i, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, w)
		}
	}
}

func TestL2HitFraction(t *testing.T) {
	w := Workload{Dim: 8, BatchSize: 4, PF: []int{10, 10, 10, 10}, TotalRows: 40, UniqueRows: 10}
	fits := L2Context{CacheBytes: 1 << 30, WorkingSetBytes: 1 << 20}
	if h := fits.HitFraction(&w); math.Abs(h-0.75) > 1e-12 {
		t.Errorf("fitting working set: hit %g, want 0.75 (reuse fraction)", h)
	}
	pressured := L2Context{CacheBytes: 1 << 20, WorkingSetBytes: 4 << 20}
	if h := pressured.HitFraction(&w); math.Abs(h-0.75*0.25) > 1e-12 {
		t.Errorf("pressured working set: hit %g, want %g", h, 0.75*0.25)
	}
	empty := Workload{Dim: 8, BatchSize: 1, PF: []int{0}}
	if h := fits.HitFraction(&empty); h != 0 {
		t.Errorf("empty workload hit %g, want 0", h)
	}
}

func allTemplates() []Schedule {
	return []Schedule{
		SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1},
		SubWarp{Threads: 128, Lanes: 32, Vec: 4, UnrollRows: 4},
		SubWarp{Threads: 256, Lanes: 2, Vec: 1, UnrollRows: 2},
		ThreadPerSample{Threads: 256, Unroll: 1},
		ThreadPerSample{Threads: 64, Unroll: 8},
		BlockPerSample{Threads: 128, Vec: 1},
		BlockPerSample{Threads: 256, Vec: 4},
		StagedTile{Threads: 256, Vec: 4, StageRows: 4},
		StagedTile{Threads: 64, Vec: 1, StageRows: 8},
		SortedSubWarp{SubWarp{Threads: 128, Lanes: 4, Vec: 1, UnrollRows: 1}},
		HybridSplit{
			Light:       SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1},
			Heavy:       BlockPerSample{Threads: 128, Vec: 1},
			ThresholdPF: 20,
		},
	}
}

// Core invariant: every schedule produces output identical to the CPU
// reference, for every pooling mode — schedules change how, never what.
func TestSchedulesMatchReferenceProperty(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(21))
	tbl, err := embedding.NewDeterministicTable("t", 512, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		fb, w := randomWorkloadBatch(rng, 1+rng.Intn(300), tbl.Rows, tbl.Dim, 40)
		for _, s := range allTemplates() {
			if !s.Supports(&w) {
				continue
			}
			p, err := s.Plan(&w, dev, testL2())
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if err := p.Validate(w.BatchSize); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			for _, mode := range []embedding.PoolMode{embedding.PoolSum, embedding.PoolMean, embedding.PoolMax} {
				want, err := embedding.PoolCPU(tbl, fb, mode)
				if err != nil {
					t.Fatal(err)
				}
				got := make([]float32, len(want))
				p.ExecuteAll(tbl, fb, mode, got)
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("trial %d %s mode %v: out[%d] = %g, want %g",
							trial, s.Name(), mode, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// Executing blocks in arbitrary order and exactly once must still cover the
// whole batch (the task-map exact-cover invariant at schedule level).
func TestPlanBlocksArePartition(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(22))
	tbl, _ := embedding.NewDeterministicTable("t", 256, 32, 4)
	fb, w := randomWorkloadBatch(rng, 200, tbl.Rows, tbl.Dim, 20)
	for _, s := range allTemplates() {
		if !s.Supports(&w) {
			continue
		}
		p, err := s.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatal(err)
		}
		want, _ := embedding.PoolCPU(tbl, fb, embedding.PoolSum)
		got := make([]float32, len(want))
		order := rng.Perm(p.NumBlocks)
		for _, b := range order {
			p.ExecuteBlock(b, tbl, fb, embedding.PoolSum, got)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: shuffled block execution diverges at %d", s.Name(), i)
			}
		}
	}
}

func TestPlanWorkConservation(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(23))
	_, w := randomWorkloadBatch(rng, 128, 1024, 16, 30)
	for _, s := range allTemplates() {
		if !s.Supports(&w) {
			continue
		}
		p, err := s.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatal(err)
		}
		var dram, l2b float64
		for i := range p.Blocks {
			if err := p.Blocks[i].Validate(); err != nil {
				t.Fatalf("%s block %d: %v", s.Name(), i, err)
			}
			dram += p.Blocks[i].DRAMBytes
			l2b += p.Blocks[i].L2Bytes
		}
		// Reads (at sector granularity) + writes: a lower bound on traffic.
		minTraffic := float64(w.TotalRows)*w.RowBytes() + float64(w.BatchSize)*w.RowBytes()
		if dram+l2b < minTraffic*0.99 {
			t.Errorf("%s: traffic %g below workload minimum %g", s.Name(), dram+l2b, minTraffic)
		}
	}
}

// For a small-dimension multi-hot feature, packing more samples per warp
// (fewer lanes) must reduce compute work — the Figure 3 heterogeneity effect.
func TestSubWarpLaneEfficiencySmallDim(t *testing.T) {
	dev := gpusim.V100()
	pf := make([]int, 256)
	for i := range pf {
		pf[i] = 50
	}
	w := Workload{Dim: 4, BatchSize: 256, PF: pf, TotalRows: 256 * 50, UniqueRows: 256 * 50, TableRows: 1 << 20}
	comp := func(lanes int) float64 {
		s := SubWarp{Threads: 256, Lanes: lanes, Vec: 1, UnrollRows: 1}
		p, err := s.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i := range p.Blocks {
			total += p.Blocks[i].CompCycles
		}
		return total
	}
	c4, c32 := comp(4), comp(32)
	if c4*4 > c32 {
		t.Errorf("lanes=4 compute (%g) should be far below lanes=32 (%g) for dim 4", c4, c32)
	}
}

func TestThreadPerSampleSupportsGate(t *testing.T) {
	s := ThreadPerSample{Threads: 256, Unroll: 1}
	small := Workload{Dim: 8, BatchSize: 1, PF: []int{1}, TotalRows: 1, UniqueRows: 1}
	big := Workload{Dim: 128, BatchSize: 1, PF: []int{1}, TotalRows: 1, UniqueRows: 1}
	if !s.Supports(&small) {
		t.Error("dim 8 should be supported")
	}
	if s.Supports(&big) {
		t.Error("dim 128 should exceed the register budget")
	}
	if _, err := s.Plan(&big, gpusim.V100(), testL2()); err == nil {
		t.Error("Plan must reject unsupported workloads")
	}
}

func TestBlockPerSampleOneBlockPerSample(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(24))
	_, w := randomWorkloadBatch(rng, 77, 512, 64, 300)
	s := BlockPerSample{Threads: 128, Vec: 4}
	p, err := s.Plan(&w, dev, testL2())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks != 77 {
		t.Errorf("NumBlocks = %d, want 77", p.NumBlocks)
	}
}

func TestScheduleResourceFormulas(t *testing.T) {
	sw := SubWarp{Threads: 256, Lanes: 8, Vec: 4, UnrollRows: 2}
	r := sw.Resources(32)
	if r.ThreadsPerBlock != 256 {
		t.Errorf("subwarp threads = %d", r.ThreadsPerBlock)
	}
	if r.RegsPerThread != 22+16+12 {
		t.Errorf("subwarp regs = %d, want %d", r.RegsPerThread, 22+16+12)
	}
	tps := ThreadPerSample{Threads: 128, Unroll: 4}
	if got := tps.Resources(16).RegsPerThread; got != 16+16+12 {
		t.Errorf("tps regs = %d, want %d", got, 16+16+12)
	}
	bps := BlockPerSample{Threads: 128, Vec: 2}
	rb := bps.Resources(64)
	if rb.SharedMemPerBlock != 128*4*2 {
		t.Errorf("bps smem = %d, want %d", rb.SharedMemPerBlock, 128*4*2)
	}
}

func TestScheduleValidation(t *testing.T) {
	dev := gpusim.V100()
	w := Workload{Dim: 8, BatchSize: 4, PF: []int{1, 1, 1, 1}, TotalRows: 4, UniqueRows: 4}
	bad := []Schedule{
		SubWarp{Threads: 100, Lanes: 8, Vec: 1, UnrollRows: 1},
		SubWarp{Threads: 256, Lanes: 3, Vec: 1, UnrollRows: 1},
		SubWarp{Threads: 256, Lanes: 8, Vec: 3, UnrollRows: 1},
		SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 0},
		ThreadPerSample{Threads: 100, Unroll: 1},
		ThreadPerSample{Threads: 256, Unroll: 0},
		BlockPerSample{Threads: 100, Vec: 1},
		BlockPerSample{Threads: 256, Vec: 8},
	}
	for _, s := range bad {
		if s.Supports(&w) {
			t.Errorf("%s: invalid parameters accepted by Supports", s.Name())
		}
		if _, err := s.Plan(&w, dev, testL2()); err == nil {
			t.Errorf("%s: invalid parameters accepted by Plan", s.Name())
		}
	}
}

func TestDefaultCandidates(t *testing.T) {
	for _, dim := range []int{4, 8, 32, 128} {
		cands := DefaultCandidates(dim)
		if len(cands) < 10 {
			t.Errorf("dim %d: only %d candidates", dim, len(cands))
		}
		names := make(map[string]bool)
		for _, c := range cands {
			if names[c.Name()] {
				t.Errorf("dim %d: duplicate candidate %s", dim, c.Name())
			}
			names[c.Name()] = true
		}
		// First candidates are the register-heavy family (Figure 12).
		if _, ok := cands[0].(ThreadPerSample); !ok {
			t.Errorf("dim %d: first candidate %s, want ThreadPerSample", dim, cands[0].Name())
		}
	}
}

func TestSupportedCandidatesFilters(t *testing.T) {
	w := Workload{Dim: 128, BatchSize: 2, PF: []int{3, 3}, TotalRows: 6, UniqueRows: 6}
	all := DefaultCandidates(128)
	sup := SupportedCandidates(all, &w)
	if len(sup) == 0 || len(sup) >= len(all) {
		t.Errorf("filtering: %d of %d supported; expected a strict non-empty subset", len(sup), len(all))
	}
	for _, s := range sup {
		if _, ok := s.(ThreadPerSample); ok {
			t.Errorf("%s should not support dim 128", s.Name())
		}
	}
}

func TestMaxThreadsPerBlock(t *testing.T) {
	scheds := []Schedule{
		BlockPerSample{Threads: 64, Vec: 1},
		SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1},
		ThreadPerSample{Threads: 128, Unroll: 1},
	}
	if got := MaxThreadsPerBlock(scheds, []int{8, 8, 8}); got != 256 {
		t.Errorf("MaxThreadsPerBlock = %d, want 256", got)
	}
}

func TestPlanForBatch(t *testing.T) {
	dev := gpusim.V100()
	fb := embedding.NewFeatureBatch([][]int32{{0, 1}, {2}})
	p, err := PlanForBatch(SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1}, &fb, 8, 10, dev, testL2())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumBlocks != 1 {
		t.Errorf("NumBlocks = %d, want 1", p.NumBlocks)
	}
	if _, err := PlanForBatch(ThreadPerSample{Threads: 256, Unroll: 1}, &fb, 128, 10, dev, testL2()); err == nil {
		t.Error("unsupported workload accepted")
	}
}

func TestEmptyFeaturePlans(t *testing.T) {
	dev := gpusim.V100()
	// Feature absent from every sample: pooling factors all zero.
	w := Workload{Dim: 16, BatchSize: 64, PF: make([]int, 64), TotalRows: 0, UniqueRows: 0, TableRows: 100}
	for _, s := range allTemplates() {
		if !s.Supports(&w) {
			continue
		}
		p, err := s.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := p.Validate(64); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for i := range p.Blocks {
			if p.Blocks[i].CompCycles <= 0 {
				t.Errorf("%s block %d: zero-work feature still writes outputs", s.Name(), i)
			}
		}
	}
}

func TestRowSectorBytes(t *testing.T) {
	cases := map[float64]float64{16: 32, 32: 32, 33: 64, 512: 512, 0: 32}
	for in, want := range cases {
		if got := rowSectorBytes(in); got != want {
			t.Errorf("rowSectorBytes(%g) = %g, want %g", in, got, want)
		}
	}
}

func TestSplitTrafficConservation(t *testing.T) {
	w := Workload{Dim: 8, BatchSize: 2, PF: []int{4, 4}, TotalRows: 8, UniqueRows: 4}
	l2 := L2Context{CacheBytes: 1 << 30, WorkingSetBytes: 1}
	dram, l2b := splitTraffic(&w, l2, 1000, 200)
	if math.Abs(dram+l2b-1200) > 1e-9 {
		t.Errorf("traffic not conserved: %g + %g != 1200", dram, l2b)
	}
	if l2b != 500 { // reuse fraction 0.5, fully fitting
		t.Errorf("l2 bytes = %g, want 500", l2b)
	}
}
