package sched

import (
	"testing"
	"testing/quick"
)

// Property: ParseSchedule inverts Name for every built-in schedule family.
func TestParseScheduleRoundTrip(t *testing.T) {
	samples := []Schedule{
		SubWarp{Threads: 256, Lanes: 8, Vec: 4, UnrollRows: 1},
		SubWarp{Threads: 64, Lanes: 32, Vec: 1, UnrollRows: 4},
		ThreadPerSample{Threads: 256, Unroll: 8},
		ThreadPerSample{Threads: 32, Unroll: 1},
		BlockPerSample{Threads: 128, Vec: 2},
		StagedTile{Threads: 256, Vec: 4, StageRows: 8},
		SortedSubWarp{SubWarp{Threads: 256, Lanes: 4, Vec: 1, UnrollRows: 2}},
		HybridSplit{
			Light:       SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1},
			Heavy:       BlockPerSample{Threads: 128, Vec: 4},
			ThresholdPF: 64,
		},
	}
	for _, s := range samples {
		got, err := ParseSchedule(s.Name())
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got.Name() != s.Name() {
			t.Errorf("round trip: %q -> %q", s.Name(), got.Name())
		}
	}
}

// Every default candidate must round-trip (persistence depends on it).
func TestAllDefaultCandidatesParse(t *testing.T) {
	for _, dim := range []int{4, 8, 32, 128} {
		for _, c := range DefaultCandidates(dim) {
			got, err := ParseSchedule(c.Name())
			if err != nil {
				t.Fatalf("dim %d: %s: %v", dim, c.Name(), err)
			}
			if got.Name() != c.Name() {
				t.Errorf("dim %d: round trip %q -> %q", dim, c.Name(), got.Name())
			}
		}
	}
}

func TestParseScheduleRejectsGarbage(t *testing.T) {
	bad := []string{
		"", "nonsense", "subwarp(t256)", "subwarp(t256,l3,v1,u1)",
		"threadpersample(t100,u1)", "blockpersample(t128,v3)",
		"stagedtile(t256,v1,s0)", "hybrid(bogus|also,pf>=1)",
		"hybrid(subwarp(t256,l8,v1,u1)|subwarp(t256,l8,v1,u1),pf>=1)",
		"sorted-blockpersample(t128,v1)",
		"hybrid(subwarp(t256,l8,v1,u1)|blockpersample(t128,v1),pf>=0)",
	}
	for _, name := range bad {
		if _, err := ParseSchedule(name); err == nil {
			t.Errorf("parsed garbage %q", name)
		}
	}
}

// Property: random valid SubWarp parameters survive the round trip.
func TestParseSubWarpProperty(t *testing.T) {
	lanes := []int{1, 2, 4, 8, 16, 32}
	vecs := []int{1, 2, 4}
	f := func(tRaw, lRaw, vRaw, uRaw uint8) bool {
		s := SubWarp{
			Threads:    32 * (1 + int(tRaw)%32),
			Lanes:      lanes[int(lRaw)%len(lanes)],
			Vec:        vecs[int(vRaw)%len(vecs)],
			UnrollRows: 1 + int(uRaw)%8,
		}
		got, err := ParseSchedule(s.Name())
		return err == nil && got.Name() == s.Name()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
