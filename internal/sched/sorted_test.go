package sched

import (
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

func TestSortedSubWarpMatchesReference(t *testing.T) {
	dev := gpusim.V100()
	tbl, err := embedding.NewDeterministicTable("t", 256, 8, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		fb, w := randomWorkloadBatch(rng, 1+rng.Intn(200), tbl.Rows, tbl.Dim, 60)
		s := SortedSubWarp{SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1}}
		if !s.Supports(&w) {
			t.Fatal("sorted subwarp should support this workload")
		}
		p, err := s.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(w.BatchSize); err != nil {
			t.Fatal(err)
		}
		if p.Perm == nil {
			t.Fatal("sorted plan must carry a permutation")
		}
		for _, mode := range []embedding.PoolMode{embedding.PoolSum, embedding.PoolMax} {
			want, err := embedding.PoolCPU(tbl, fb, mode)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float32, len(want))
			// Execute in shuffled block order to expose ownership bugs.
			for _, b := range rng.Perm(p.NumBlocks) {
				p.ExecuteBlock(b, tbl, fb, mode, got)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d mode %v: out[%d] = %g, want %g", trial, mode, i, got[i], want[i])
				}
			}
		}
	}
}

// Sorting must reduce the lockstep waste on high-variance workloads: the
// sorted plan's total compute is strictly below the unsorted plan's.
func TestSortedReducesDivergenceWaste(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(33))
	pf := make([]int, 512)
	total := 0
	for i := range pf {
		// Bimodal: most samples tiny, a few huge — worst case for
		// sub-warp lockstep.
		if rng.Intn(8) == 0 {
			pf[i] = 200
		} else {
			pf[i] = 2
		}
		total += pf[i]
	}
	w := Workload{Dim: 8, BatchSize: 512, PF: pf, TotalRows: total, UniqueRows: total, TableRows: 1 << 16}
	base := SubWarp{Threads: 256, Lanes: 4, Vec: 1, UnrollRows: 1}
	sorted := SortedSubWarp{base}
	comp := func(s Schedule) float64 {
		p, err := s.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for i := range p.Blocks {
			sum += p.Blocks[i].CompCycles
		}
		return sum
	}
	cBase, cSorted := comp(base), comp(sorted)
	if cSorted >= cBase*0.7 {
		t.Errorf("sorting should cut lockstep compute substantially: %g vs %g", cSorted, cBase)
	}
}

func TestSortedPlanValidatePermutation(t *testing.T) {
	dev := gpusim.V100()
	pf := []int{3, 1, 5, 0, 2, 2, 7, 1}
	w := Workload{Dim: 4, BatchSize: 8, PF: pf, TotalRows: 21, UniqueRows: 21, TableRows: 64}
	s := SortedSubWarp{SubWarp{Threads: 64, Lanes: 4, Vec: 1, UnrollRows: 1}}
	p, err := s.Plan(&w, dev, testL2())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(8); err != nil {
		t.Fatal(err)
	}
	// Permutation is by descending pooling factor.
	for i := 1; i < len(p.Perm); i++ {
		if pf[p.Perm[i-1]] < pf[p.Perm[i]] {
			t.Fatalf("perm not sorted by pf desc at %d", i)
		}
	}
	// Corrupt the permutation: Validate must notice.
	p.Perm[0] = p.Perm[1]
	if err := p.Validate(8); err == nil {
		t.Error("duplicate permutation entry accepted")
	}
	p.Perm = p.Perm[:4]
	if err := p.Validate(8); err == nil {
		t.Error("short permutation accepted")
	}
}

func TestSortedInDefaultCandidates(t *testing.T) {
	found := false
	for _, c := range DefaultCandidates(16) {
		if _, ok := c.(SortedSubWarp); ok {
			found = true
		}
	}
	if !found {
		t.Error("sorted family missing from default candidates")
	}
}
