package sched

import (
	"fmt"
	"strings"
)

// ParseSchedule reconstructs a schedule from its Name() string, the inverse
// of Name for every built-in family. It lets tuned results be persisted as
// plain text and reloaded in a serving process (see core.SaveTuned /
// core.LoadTuned).
func ParseSchedule(name string) (Schedule, error) {
	switch {
	case strings.HasPrefix(name, "sorted-"):
		inner, err := ParseSchedule(strings.TrimPrefix(name, "sorted-"))
		if err != nil {
			return nil, err
		}
		sw, ok := inner.(SubWarp)
		if !ok {
			return nil, fmt.Errorf("sched: sorted- prefix requires a subwarp schedule, got %q", name)
		}
		return SortedSubWarp{sw}, nil

	case strings.HasPrefix(name, "subwarp("):
		var t, l, v, u int
		if _, err := fmt.Sscanf(name, "subwarp(t%d,l%d,v%d,u%d)", &t, &l, &v, &u); err != nil {
			return nil, fmt.Errorf("sched: malformed subwarp name %q: %w", name, err)
		}
		s := SubWarp{Threads: t, Lanes: l, Vec: v, UnrollRows: u}
		if err := s.valid(); err != nil {
			return nil, err
		}
		return s, nil

	case strings.HasPrefix(name, "threadpersample("):
		var t, u int
		if _, err := fmt.Sscanf(name, "threadpersample(t%d,u%d)", &t, &u); err != nil {
			return nil, fmt.Errorf("sched: malformed threadpersample name %q: %w", name, err)
		}
		s := ThreadPerSample{Threads: t, Unroll: u}
		if err := s.valid(); err != nil {
			return nil, err
		}
		return s, nil

	case strings.HasPrefix(name, "blockpersample("):
		var t, v int
		if _, err := fmt.Sscanf(name, "blockpersample(t%d,v%d)", &t, &v); err != nil {
			return nil, fmt.Errorf("sched: malformed blockpersample name %q: %w", name, err)
		}
		s := BlockPerSample{Threads: t, Vec: v}
		if err := s.valid(); err != nil {
			return nil, err
		}
		return s, nil

	case strings.HasPrefix(name, "stagedtile("):
		var t, v, st int
		if _, err := fmt.Sscanf(name, "stagedtile(t%d,v%d,s%d)", &t, &v, &st); err != nil {
			return nil, fmt.Errorf("sched: malformed stagedtile name %q: %w", name, err)
		}
		s := StagedTile{Threads: t, Vec: v, StageRows: st}
		if err := s.valid(); err != nil {
			return nil, err
		}
		return s, nil

	case strings.HasPrefix(name, "hybrid("):
		// hybrid(<light>|<heavy>,pf>=N)
		body := strings.TrimSuffix(strings.TrimPrefix(name, "hybrid("), ")")
		bar := strings.Index(body, "|")
		comma := strings.LastIndex(body, ",pf>=")
		if bar < 0 || comma < 0 || comma < bar {
			return nil, fmt.Errorf("sched: malformed hybrid name %q", name)
		}
		light, err := ParseSchedule(body[:bar])
		if err != nil {
			return nil, err
		}
		heavy, err := ParseSchedule(body[bar+1 : comma])
		if err != nil {
			return nil, err
		}
		var threshold int
		if _, err := fmt.Sscanf(body[comma:], ",pf>=%d", &threshold); err != nil {
			return nil, fmt.Errorf("sched: malformed hybrid threshold in %q: %w", name, err)
		}
		sw, ok := light.(SubWarp)
		if !ok {
			return nil, fmt.Errorf("sched: hybrid light component must be subwarp in %q", name)
		}
		bp, ok := heavy.(BlockPerSample)
		if !ok {
			return nil, fmt.Errorf("sched: hybrid heavy component must be blockpersample in %q", name)
		}
		h := HybridSplit{Light: sw, Heavy: bp, ThresholdPF: threshold}
		if err := h.valid(); err != nil {
			return nil, err
		}
		return h, nil
	}
	return nil, fmt.Errorf("sched: unknown schedule name %q", name)
}
