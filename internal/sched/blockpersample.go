package sched

import (
	"fmt"

	"repro/internal/gpusim"
)

// BlockPerSample dedicates one thread block to one sample: the block's warps
// split the sample's rows, each warp sweeps the dimension with Vec-wide
// loads, and a shared-memory tree combines the per-warp partials. This is the
// schedule of choice for huge pooling factors (hundreds of rows per sample),
// where a sub-warp would serialize; for small pooling factors it drowns in
// per-block overhead and shared-memory reduction cost. It is also the
// coarse-grained mapping HugeCTR applies to every feature.
type BlockPerSample struct {
	Threads int // threads per block, multiple of 32
	Vec     int // elements per vector load: 1, 2 or 4
}

var _ Schedule = BlockPerSample{}

// Name implements Schedule.
func (s BlockPerSample) Name() string {
	return fmt.Sprintf("blockpersample(t%d,v%d)", s.Threads, s.Vec)
}

// Resources implements Schedule.
func (s BlockPerSample) Resources(dim int) gpusim.KernelResources {
	smem := s.Threads * 4 * s.Vec // per-warp partials staged in shared memory
	return gpusim.KernelResources{
		ThreadsPerBlock:   s.Threads,
		RegsPerThread:     26 + 4*s.Vec,
		SharedMemPerBlock: smem,
	}
}

func (s BlockPerSample) valid() error {
	switch {
	case s.Threads <= 0 || s.Threads%32 != 0:
		return fmt.Errorf("sched: %s: threads must be a positive multiple of 32", s.Name())
	case s.Vec != 1 && s.Vec != 2 && s.Vec != 4:
		return fmt.Errorf("sched: %s: vec must be 1, 2 or 4", s.Name())
	}
	return nil
}

// Supports implements Schedule.
func (s BlockPerSample) Supports(w *Workload) bool {
	return s.valid() == nil && w.Dim > 0
}

// Plan implements Schedule.
func (s BlockPerSample) Plan(w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	if err := s.valid(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	warps := s.Threads / dev.WarpSize
	colIters := ceilDiv(w.Dim, dev.WarpSize*s.Vec)
	activeLanes := ceilDiv(w.Dim, s.Vec)
	if activeLanes > dev.WarpSize {
		activeLanes = dev.WarpSize
	}
	rowSector := rowSectorBytes(w.RowBytes())
	h := l2.HitFraction(w)
	writeRow := w.RowBytes()
	// Shared-memory tree reduction: log2(warps) combine stages per column
	// iteration.
	reduceStages := 0
	for v := warps; v > 1; v >>= 1 {
		reduceStages++
	}

	fill := func(lo, hi int) gpusim.BlockWork {
		pf := w.PF[lo] // exactly one sample per block
		iters := ceilDiv(pf, warps)
		comp := float64(iters) * float64(colIters) * (instrLoadOverhead + float64(s.Vec)) * float64(warps)
		comp += float64(reduceStages) * float64(colIters) * 4 * float64(warps) // smem combine
		comp += float64(colIters)*(1+float64(s.Vec)) + instrSampleEpilogue
		reads := float64(pf) * rowSector
		reqs := float64(iters*colIters*warps) + float64(colIters)
		return gpusim.BlockWork{
			CompCycles:  comp,
			DRAMBytes:   reads*(1-h) + writeRow,
			L2Bytes:     reads * h,
			MemRequests: reqs,
			Warps:       warps,
			ActiveFrac:  float64(activeLanes) / float64(dev.WarpSize),
			PredOffFrac: 0,
		}
	}
	return contiguousPlan(s, w, 1, fill), nil
}
