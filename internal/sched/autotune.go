package sched

import (
	"sort"

	"repro/internal/gpusim"
)

// Automatic candidate generation — the paper's §VII "Automatic scheduling"
// direction: instead of hand-curated per-dimension candidate sets, enumerate
// the full parameter grid of every template family, score each candidate
// cheaply with the analytic cost model on a sampled workload, and keep a
// small, diverse top set for the expensive interference-simulated tuning.
// The pruning is resource-aware: candidates that would cap the fused kernel's
// occupancy hardest are kept only if their isolated score is exceptional.

// AutoOptions shapes the automatic search.
type AutoOptions struct {
	// MaxCandidates bounds the returned set (default 12).
	MaxCandidates int
	// PerFamilyMin guarantees representation of each template family
	// (default 2), preserving diversity for the interference stage.
	PerFamilyMin int
}

func (o AutoOptions) withDefaults() AutoOptions {
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 12
	}
	if o.PerFamilyMin <= 0 {
		o.PerFamilyMin = 2
	}
	return o
}

// fullGrid enumerates every valid parameter combination of the built-in
// families for one embedding dimension.
func fullGrid(dim int) []Schedule {
	var out []Schedule
	for _, threads := range []int{64, 128, 256} {
		for _, unroll := range []int{1, 2, 4, 8} {
			out = append(out, ThreadPerSample{Threads: threads, Unroll: unroll})
		}
		for _, lanes := range []int{2, 4, 8, 16, 32} {
			for _, vec := range []int{1, 2, 4} {
				if vec > dim {
					continue
				}
				for _, unroll := range []int{1, 4} {
					out = append(out, SubWarp{Threads: threads, Lanes: lanes, Vec: vec, UnrollRows: unroll})
					out = append(out, SortedSubWarp{SubWarp{Threads: threads, Lanes: lanes, Vec: vec, UnrollRows: unroll}})
				}
			}
		}
		for _, vec := range []int{1, 2, 4} {
			if vec > dim {
				continue
			}
			out = append(out, BlockPerSample{Threads: threads, Vec: vec})
			for _, stage := range []int{2, 4, 8} {
				out = append(out, StagedTile{Threads: threads, Vec: vec, StageRows: stage})
			}
		}
	}
	return out
}

// family buckets a schedule for diversity accounting.
func family(s Schedule) string {
	switch s.(type) {
	case ThreadPerSample:
		return "tps"
	case SortedSubWarp:
		return "sorted"
	case SubWarp:
		return "subwarp"
	case BlockPerSample:
		return "bps"
	case StagedTile:
		return "staged"
	case HybridSplit:
		return "hybrid"
	default:
		return "custom"
	}
}

// analyticScore estimates a candidate's isolated quality on workload w: the
// aggregate-resource roofline of its planned blocks (lower is better). It is
// three orders of magnitude cheaper than a simulation and is only used to
// prune the grid; the interference-simulated stage makes the real decision.
func analyticScore(s Schedule, w *Workload, dev *gpusim.Device, l2 L2Context) (float64, bool) {
	if !s.Supports(w) {
		return 0, false
	}
	p, err := s.Plan(w, dev, l2)
	if err != nil {
		return 0, false
	}
	var comp, dram, l2b, latTime float64
	for i := range p.Blocks {
		b := &p.Blocks[i]
		comp += b.CompCycles + dev.BlockOverheadCycles
		dram += b.DRAMBytes
		l2b += b.L2Bytes
		if b.MemRequests > 0 {
			reqBytes := (b.DRAMBytes + b.L2Bytes) / b.MemRequests
			cap := float64(b.Warps) * dev.MemParallelism * reqBytes * dev.ClockHz / dev.DRAMLatencyCycles
			if cap > 0 {
				latTime += (b.DRAMBytes + b.L2Bytes) / cap
			}
		}
	}
	// Aggregate times over one full wave of resident blocks.
	res := s.Resources(w.Dim)
	bps := res.BlocksPerSM(dev)
	if bps == 0 {
		return 0, false
	}
	slots := float64(dev.ParallelBlockSlots(bps))
	peakIssue := float64(dev.NumSMs*dev.IssueSlotsPerSM) * dev.ClockHz
	t := comp / peakIssue
	if m := dram / dev.DRAMBandwidth; m > t {
		t = m
	}
	if m := l2b / dev.L2Bandwidth; m > t {
		t = m
	}
	if m := latTime / slots; m > t {
		t = m
	}
	return t, true
}

// AutoCandidates generates a pruned, diverse candidate set for workload w.
func AutoCandidates(w *Workload, dev *gpusim.Device, l2 L2Context, opts AutoOptions) []Schedule {
	o := opts.withDefaults()
	type scored struct {
		s     Schedule
		score float64
	}
	var all []scored
	seen := make(map[string]struct{})
	for _, s := range fullGrid(w.Dim) {
		if _, dup := seen[s.Name()]; dup {
			continue
		}
		seen[s.Name()] = struct{}{}
		if score, ok := analyticScore(s, w, dev, l2); ok {
			all = append(all, scored{s, score})
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].score < all[b].score })

	// Take the global best, then top off each family to PerFamilyMin.
	var out []Schedule
	famCount := make(map[string]int)
	take := func(sc scored) {
		out = append(out, sc.s)
		famCount[family(sc.s)]++
	}
	taken := make(map[string]struct{})
	for _, sc := range all {
		if len(out) >= o.MaxCandidates {
			break
		}
		take(sc)
		taken[sc.s.Name()] = struct{}{}
	}
	for _, sc := range all {
		if famCount[family(sc.s)] >= o.PerFamilyMin {
			continue
		}
		if _, dup := taken[sc.s.Name()]; dup {
			continue
		}
		take(sc)
		taken[sc.s.Name()] = struct{}{}
	}
	return out
}
