package sched

import (
	"fmt"
	"sort"

	"repro/internal/gpusim"
)

// SortedSubWarp is SubWarp with host-side sample reordering: during the
// host's workload analysis the samples are sorted by pooling factor and then
// dealt to blocks in rank strata. Each warp group receives rank-consecutive
// samples — so the sub-warps of a warp carry near-identical row counts and
// lockstep divergence disappears — while each block receives one group from
// every stratum, so heavy samples spread evenly across blocks instead of
// piling into stragglers (the failure mode of a naive global sort).
//
// This extends the paper's host-side preprocessing idea (§IV-B folds workload
// analysis into CPU preprocessing; sorting is an O(n log n) addition there)
// and is most valuable on features with high pooling-factor variance or
// partial coverage. The output permutation travels in the Plan: every sample
// is still written to its original output slot, so functional results are
// untouched.
type SortedSubWarp struct {
	SubWarp
}

var _ Schedule = SortedSubWarp{}

// Name implements Schedule.
func (s SortedSubWarp) Name() string {
	return fmt.Sprintf("sorted-%s", s.SubWarp.Name())
}

// Plan implements Schedule.
func (s SortedSubWarp) Plan(w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	if err := s.valid(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	// Mirror the inner schedule's block geometry so the dealt strata match
	// the plan's sample ranges exactly.
	warpsPerBlock := s.Threads / dev.WarpSize
	samplesPerWarp := dev.WarpSize / s.Lanes
	spb := adaptiveSamplesPerBlock(dev, w.BatchSize, warpsPerBlock*samplesPerWarp, samplesPerWarp)

	n := w.BatchSize
	sortIdx := make([]int32, n)
	for i := range sortIdx {
		sortIdx[i] = int32(i)
	}
	sort.SliceStable(sortIdx, func(a, b int) bool {
		return w.PF[sortIdx[a]] > w.PF[sortIdx[b]]
	})

	// Deal rank strata: full block b takes warp group j from stratum
	// j*BFull+b, so its groups span the whole rank spectrum. The ragged
	// tail block receives the lightest leftover samples in rank order.
	perm := make([]int32, 0, n)
	groupsPerBlock := spb / samplesPerWarp
	bFull := n / spb
	nFull := bFull * spb
	for b := 0; b < bFull; b++ {
		for j := 0; j < groupsPerBlock; j++ {
			start := (j*bFull + b) * samplesPerWarp
			perm = append(perm, sortIdx[start:start+samplesPerWarp]...)
		}
	}
	perm = append(perm, sortIdx[nFull:]...)

	sorted := Workload{
		Dim:        w.Dim,
		BatchSize:  n,
		PF:         make([]int, n),
		TotalRows:  w.TotalRows,
		UniqueRows: w.UniqueRows,
		TableRows:  w.TableRows,
	}
	for i, src := range perm {
		sorted.PF[i] = w.PF[src]
	}
	p, err := s.SubWarp.Plan(&sorted, dev, l2)
	if err != nil {
		return nil, err
	}
	p.Schedule = s
	p.Perm = perm
	return p, nil
}
