package sched

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

func randomUpstream(rng *rand.Rand, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(rng.NormFloat64())
	}
	return out
}

// Backward executors must reproduce the reference gradient for every
// schedule family, including permuted plans.
func TestBackwardMatchesReference(t *testing.T) {
	dev := gpusim.V100()
	tbl, err := embedding.NewDeterministicTable("t", 256, 8, 29)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	schedules := []Schedule{
		SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1},
		ThreadPerSample{Threads: 128, Unroll: 2},
		BlockPerSample{Threads: 64, Vec: 1},
		SortedSubWarp{SubWarp{Threads: 256, Lanes: 4, Vec: 1, UnrollRows: 1}},
		HybridSplit{
			Light:       SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1},
			Heavy:       BlockPerSample{Threads: 128, Vec: 1},
			ThresholdPF: 10,
		},
	}
	for trial := 0; trial < 10; trial++ {
		fb, w := randomWorkloadBatch(rng, 1+rng.Intn(120), tbl.Rows, tbl.Dim, 20)
		upstream := randomUpstream(rng, w.BatchSize*tbl.Dim)
		for _, mode := range []embedding.PoolMode{embedding.PoolSum, embedding.PoolMean} {
			want, err := embedding.GradCPU(tbl, fb, mode, upstream)
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range schedules {
				if !s.Supports(&w) {
					continue
				}
				fwd, err := s.Plan(&w, dev, testL2())
				if err != nil {
					t.Fatal(err)
				}
				bp, err := BackwardPlan(fwd, &w, dev, testL2())
				if err != nil {
					t.Fatal(err)
				}
				grad := make([]float32, tbl.Rows*tbl.Dim)
				if err := bp.ExecuteBackwardAll(tbl.Rows, tbl.Dim, fb, mode, upstream, grad); err != nil {
					t.Fatal(err)
				}
				for i := range want {
					// Accumulation order differs across plans: tolerate
					// float rounding.
					if math.Abs(float64(want[i]-grad[i])) > 1e-4 {
						t.Fatalf("%s mode %v trial %d: grad[%d] = %g, want %g",
							s.Name(), mode, trial, i, grad[i], want[i])
					}
				}
			}
		}
	}
}

func TestBackwardRejectsMaxPooling(t *testing.T) {
	tbl, _ := embedding.NewTable("t", 8, 2)
	fb := embedding.NewFeatureBatch([][]int32{{1, 2}})
	upstream := []float32{1, 1}
	if _, err := embedding.GradCPU(tbl, &fb, embedding.PoolMax, upstream); err == nil {
		t.Error("max-pooling backward accepted without forward state")
	}
	if _, err := embedding.GradCPU(tbl, &fb, embedding.PoolSum, upstream[:1]); err == nil {
		t.Error("short upstream gradient accepted")
	}
}

func TestGradCPUKnownValues(t *testing.T) {
	tbl, _ := embedding.NewTable("t", 3, 2)
	fb := embedding.NewFeatureBatch([][]int32{{0, 2}, {2}})
	upstream := []float32{1, 2, 10, 20}
	grad, err := embedding.GradCPU(tbl, &fb, embedding.PoolSum, upstream)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 0, 0, 11, 22} // row0 <- s0; row2 <- s0+s1
	for i := range want {
		if grad[i] != want[i] {
			t.Errorf("grad[%d] = %g, want %g", i, grad[i], want[i])
		}
	}
	mean, err := embedding.GradCPU(tbl, &fb, embedding.PoolMean, upstream)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := []float32{0.5, 1, 0, 0, 10.5, 21}
	for i := range wantMean {
		if math.Abs(float64(mean[i]-wantMean[i])) > 1e-6 {
			t.Errorf("mean grad[%d] = %g, want %g", i, mean[i], wantMean[i])
		}
	}
}

// The backward kernel must simulate, and hot-row reuse (captured by the L2
// model) must reduce its DRAM traffic.
func TestBackwardKernelSimulates(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(63))
	_, w := randomWorkloadBatch(rng, 256, 1<<16, 16, 40)
	s := SubWarp{Threads: 256, Lanes: 16, Vec: 4, UnrollRows: 1}
	fwd, err := s.Plan(&w, dev, testL2())
	if err != nil {
		t.Fatal(err)
	}
	bp, err := BackwardPlan(fwd, &w, dev, testL2())
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.Validate(w.BatchSize); err != nil {
		t.Fatal(err)
	}
	k := &gpusim.Kernel{Name: "bwd", Resources: s.Resources(16), Blocks: bp.Blocks}
	r, err := gpusim.Simulate(dev, k)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 {
		t.Error("backward time must be positive")
	}
	// Backward moves more bytes than forward (read-modify-write).
	_, fwdDRAM, fwdL2 := (&gpusim.Kernel{Resources: s.Resources(16), Blocks: fwd.Blocks, Name: "f"}).TotalWork()
	_, bwdDRAM, bwdL2 := k.TotalWork()
	if bwdDRAM+bwdL2 <= fwdDRAM+fwdL2 {
		t.Errorf("backward traffic (%g) should exceed forward (%g)", bwdDRAM+bwdL2, fwdDRAM+fwdL2)
	}
}
