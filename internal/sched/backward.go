package sched

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

// Backward scheduling: the embedding gradient kernel reuses the forward
// plan's thread mapping — each block handles the same samples — but the data
// movement inverts: the block reads its samples' upstream gradients
// (coalesced) and scatters atomic adds into the gradient table. Scattered
// atomics pay a read-modify-write per row and contend when hot rows are
// shared, which the cost model captures through the reuse statistics the L2
// model already tracks.

// atomicCyclesPerElement is the issue cost of one atomicAdd beyond a plain
// store.
const atomicCyclesPerElement = 4.0

// BackwardPlan derives the gradient-kernel blocks from a forward plan. The
// returned plan shares the forward sample partition (and permutation), so
// ExecuteBackward covers every sample exactly once.
func BackwardPlan(p *Plan, w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if p.NumBlocks == 0 {
		return nil, fmt.Errorf("sched: backward of an empty plan")
	}
	rowBytes := w.RowBytes()
	rowSector := rowSectorBytes(rowBytes)
	h := l2.HitFraction(w)
	bp := &Plan{
		Schedule:  p.Schedule,
		NumBlocks: p.NumBlocks,
		Blocks:    make([]gpusim.BlockWork, p.NumBlocks),
		SampleLo:  p.SampleLo,
		SampleHi:  p.SampleHi,
		Perm:      p.Perm,
	}
	for b := 0; b < p.NumBlocks; b++ {
		rows := 0
		samples := 0
		for s := p.SampleLo[b]; s < p.SampleHi[b]; s++ {
			idx := int(s)
			if p.Perm != nil {
				idx = int(p.Perm[s])
			}
			rows += w.PF[idx]
			samples++
		}
		// Upstream gradient read (coalesced) + scattered atomic RMW on the
		// gradient table: every row is read and written back.
		readBytes := float64(samples) * rowBytes
		rmwBytes := float64(rows) * rowSector * 2
		comp := float64(rows)*float64(w.Dim)*(1+atomicCyclesPerElement)/float64(dev.WarpSize)*8 +
			float64(samples)*instrSampleEpilogue
		fwd := p.Blocks[b]
		bp.Blocks[b] = gpusim.BlockWork{
			CompCycles:  comp,
			DRAMBytes:   (readBytes + rmwBytes) * (1 - h),
			L2Bytes:     (readBytes + rmwBytes) * h,
			MemRequests: float64(rows)*2 + float64(samples),
			Warps:       fwd.Warps,
			ActiveFrac:  fwd.ActiveFrac,
			PredOffFrac: fwd.PredOffFrac,
		}
	}
	return bp, nil
}

// ExecuteBackwardBlock accumulates the gradient contributions of plan block
// rel into grad (rows*dim), mirroring ExecuteBlock.
func (p *Plan) ExecuteBackwardBlock(rel int, tblRows, dim int, fb *embedding.FeatureBatch, mode embedding.PoolMode, upstream, grad []float32) error {
	lo, hi := int(p.SampleLo[rel]), int(p.SampleHi[rel])
	if p.Perm == nil {
		return embedding.GradRange(tblRows, dim, fb, mode, upstream, lo, hi, grad)
	}
	for i := lo; i < hi; i++ {
		s := int(p.Perm[i])
		if err := embedding.GradSample(tblRows, dim, fb.Sample(s), mode, upstream[s*dim:(s+1)*dim], grad); err != nil {
			return err
		}
	}
	return nil
}

// ExecuteBackwardAll runs every block of the backward plan.
func (p *Plan) ExecuteBackwardAll(tblRows, dim int, fb *embedding.FeatureBatch, mode embedding.PoolMode, upstream, grad []float32) error {
	for b := 0; b < p.NumBlocks; b++ {
		if err := p.ExecuteBackwardBlock(b, tblRows, dim, fb, mode, upstream, grad); err != nil {
			return err
		}
	}
	return nil
}
