package sched

import (
	"fmt"

	"repro/internal/gpusim"
)

// SubWarp is the lane-partitioned schedule family: each warp is split into
// 32/Lanes sub-warps, each sub-warp pools one sample, and the Lanes lanes of
// a sub-warp cover the embedding dimension with Vec-wide vector loads.
//
// Lanes=32 degenerates to the classic warp-per-sample mapping (what TorchRec
// uses); smaller lane counts pack several samples into one warp, which is the
// winning move for small-dimension multi-hot features where warp-per-sample
// leaves most threads exited. UnrollRows rows are processed per loop
// iteration, trading registers for memory-level parallelism.
type SubWarp struct {
	Threads    int // threads per block, multiple of 32
	Lanes      int // lanes per sample: 1,2,4,8,16 or 32
	Vec        int // elements per vector load: 1, 2 or 4
	UnrollRows int // rows in flight per sub-warp: >= 1
}

var _ Schedule = SubWarp{}

// Name implements Schedule.
func (s SubWarp) Name() string {
	return fmt.Sprintf("subwarp(t%d,l%d,v%d,u%d)", s.Threads, s.Lanes, s.Vec, s.UnrollRows)
}

// Resources implements Schedule.
func (s SubWarp) Resources(int) gpusim.KernelResources {
	return gpusim.KernelResources{
		ThreadsPerBlock: s.Threads,
		// Accumulators (Vec per row in flight) plus addressing state.
		RegsPerThread: 22 + 4*s.Vec + 3*(s.UnrollRows-1)*s.Vec,
	}
}

func (s SubWarp) valid() error {
	switch {
	case s.Threads <= 0 || s.Threads%32 != 0:
		return fmt.Errorf("sched: %s: threads must be a positive multiple of 32", s.Name())
	case s.Lanes != 1 && s.Lanes != 2 && s.Lanes != 4 && s.Lanes != 8 && s.Lanes != 16 && s.Lanes != 32:
		return fmt.Errorf("sched: %s: lanes must be a power of two <= 32", s.Name())
	case s.Vec != 1 && s.Vec != 2 && s.Vec != 4:
		return fmt.Errorf("sched: %s: vec must be 1, 2 or 4", s.Name())
	case s.UnrollRows < 1:
		return fmt.Errorf("sched: %s: unroll must be >= 1", s.Name())
	}
	return nil
}

// Supports implements Schedule.
func (s SubWarp) Supports(w *Workload) bool {
	return s.valid() == nil && w.Dim > 0
}

// Plan implements Schedule.
func (s SubWarp) Plan(w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	if err := s.valid(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	warpsPerBlock := s.Threads / dev.WarpSize
	samplesPerWarp := dev.WarpSize / s.Lanes
	samplesPerBlock := adaptiveSamplesPerBlock(dev, w.BatchSize, warpsPerBlock*samplesPerWarp, samplesPerWarp)

	// Column coverage: how many iterations the Lanes·Vec window needs to
	// sweep the dimension, and how many of the Lanes lanes do useful work.
	colIters := ceilDiv(w.Dim, s.Lanes*s.Vec)
	activeLanes := ceilDiv(w.Dim, s.Vec)
	if activeLanes > s.Lanes {
		activeLanes = s.Lanes
	}

	rowSector := rowSectorBytes(w.RowBytes())
	h := l2.HitFraction(w)
	writeRow := w.RowBytes()

	fill := func(lo, hi int) gpusim.BlockWork {
		var comp, reads, writes, reqs float64
		var sumPF, maxPFSum int
		// Sub-warps within one warp run in lockstep: the warp iterates to
		// the max pooling factor among its samples. Walk the block's
		// samples warp group by warp group.
		for g := lo; g < hi; g += samplesPerWarp {
			end := g + samplesPerWarp
			if end > hi {
				end = hi
			}
			group := w.PF[g:end]
			maxPF := maxIntSlice(group)
			iters := ceilDiv(maxPF, s.UnrollRows)
			// Warp instructions: each iteration loads UnrollRows rows
			// (vec-wide) and accumulates them across colIters column
			// steps, for all sub-warps of the warp simultaneously.
			comp += float64(iters) * float64(colIters) * float64(s.UnrollRows) * (instrLoadOverhead + float64(s.Vec))
			comp += float64(colIters)*(1+float64(s.Vec)) + instrSampleEpilogue // write + epilogue
			sumPF += sumIntSlice(group)
			maxPFSum += maxPF * len(group)
			// Memory: every row of every sample is read exactly once.
			for _, pf := range group {
				reads += float64(pf) * rowSector
				reqs += float64(ceilDiv(pf, s.UnrollRows) * colIters)
			}
			writes += float64(len(group)) * writeRow
			reqs += float64(len(group) * colIters)
		}
		// Divergence: lanes beyond activeLanes are predicated off, and
		// sub-warps whose sample finished early idle until the group max.
		laneUtil := float64(activeLanes) / float64(s.Lanes)
		balance := 1.0
		if maxPFSum > 0 {
			balance = float64(sumPF) / float64(maxPFSum)
		}
		warps := ceilDiv(hi-lo, samplesPerWarp)
		return gpusim.BlockWork{
			CompCycles:  comp,
			DRAMBytes:   reads*(1-h) + writes,
			L2Bytes:     reads * h,
			MemRequests: reqs,
			Warps:       warps,
			ActiveFrac:  laneUtil,
			PredOffFrac: 1 - balance,
		}
	}
	p := contiguousPlan(s, w, samplesPerBlock, fill)
	return p, nil
}
