package sched

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

// Schedule is one code schedule for the embedding operation of a feature:
// a mapping strategy plus its tunable parameters. Implementations are pure
// values (safe for concurrent use).
type Schedule interface {
	// Name identifies the schedule and its parameters, e.g.
	// "subwarp(t256,l8,v4,u1)".
	Name() string

	// Resources returns the static footprint that drives occupancy for a
	// feature of the given embedding dimension.
	Resources(dim int) gpusim.KernelResources

	// Supports reports whether the schedule can execute the workload (e.g.
	// a thread-per-sample schedule cannot keep a 128-wide accumulator in
	// registers).
	Supports(w *Workload) bool

	// Plan computes the thread mapping for workload w: how many blocks the
	// feature needs and what each block costs. The L2 context supplies the
	// grid-level cache pressure estimate.
	Plan(w *Workload, dev *gpusim.Device, l2 L2Context) (*Plan, error)
}

// Plan is the result of mapping one feature's workload onto thread blocks.
// Blocks own contiguous sample ranges; block rel covers samples
// [SampleLo[rel], SampleHi[rel]). When Perm is non-nil, the ranges index the
// permuted sample order (host-side sample reordering, see SortedSubWarp):
// block rel owns the samples Perm[SampleLo[rel]:SampleHi[rel]].
type Plan struct {
	Schedule  Schedule
	NumBlocks int
	Blocks    []gpusim.BlockWork
	SampleLo  []int32
	SampleHi  []int32
	Perm      []int32
}

// Validate checks that the plan partitions the batch exactly.
func (p *Plan) Validate(batchSize int) error {
	if p.NumBlocks != len(p.Blocks) || p.NumBlocks != len(p.SampleLo) || p.NumBlocks != len(p.SampleHi) {
		return fmt.Errorf("sched: plan arrays disagree: %d blocks, %d works, %d los, %d his",
			p.NumBlocks, len(p.Blocks), len(p.SampleLo), len(p.SampleHi))
	}
	if p.NumBlocks == 0 {
		return fmt.Errorf("sched: plan has no blocks")
	}
	next := int32(0)
	for b := 0; b < p.NumBlocks; b++ {
		if p.SampleLo[b] != next {
			return fmt.Errorf("sched: block %d starts at %d, want %d", b, p.SampleLo[b], next)
		}
		if p.SampleHi[b] < p.SampleLo[b] {
			return fmt.Errorf("sched: block %d has negative range [%d,%d)", b, p.SampleLo[b], p.SampleHi[b])
		}
		next = p.SampleHi[b]
	}
	if int(next) != batchSize {
		return fmt.Errorf("sched: plan covers %d samples, batch has %d", next, batchSize)
	}
	if p.Perm != nil {
		if len(p.Perm) != batchSize {
			return fmt.Errorf("sched: permutation length %d, batch %d", len(p.Perm), batchSize)
		}
		seen := make([]bool, batchSize)
		for _, s := range p.Perm {
			if s < 0 || int(s) >= batchSize || seen[s] {
				return fmt.Errorf("sched: Perm is not a permutation of [0,%d)", batchSize)
			}
			seen[s] = true
		}
	}
	return nil
}

// ExecuteBlock functionally computes the output of plan block rel: the pooled
// vectors of exactly the samples that block owns, written into the full
// [batch*dim] buffer out. Running every block reproduces the CPU reference.
func (p *Plan) ExecuteBlock(rel int, tbl *embedding.Table, fb *embedding.FeatureBatch, mode embedding.PoolMode, out []float32) {
	lo, hi := int(p.SampleLo[rel]), int(p.SampleHi[rel])
	if p.Perm == nil {
		embedding.PoolRange(tbl, fb, mode, lo, hi, out)
		return
	}
	dim := tbl.Dim
	for i := lo; i < hi; i++ {
		s := int(p.Perm[i])
		embedding.PoolSample(tbl, fb.Sample(s), mode, out[s*dim:(s+1)*dim])
	}
}

// ExecuteAll runs every block of the plan.
func (p *Plan) ExecuteAll(tbl *embedding.Table, fb *embedding.FeatureBatch, mode embedding.PoolMode, out []float32) {
	for b := 0; b < p.NumBlocks; b++ {
		p.ExecuteBlock(b, tbl, fb, mode, out)
	}
}

// Cost-model constants shared by the templates. They abstract instruction
// counts of the CUDA kernels the paper's templates emit (derived from
// TensorFlow, TorchRec and Thrust kernels).
const (
	// sectorBytes is the DRAM/L2 transaction granularity.
	sectorBytes = 32.0
	// instrLoadOverhead covers index fetch, bounds check, address
	// arithmetic and the load itself.
	instrLoadOverhead = 4.0
	// instrSampleEpilogue covers the per-sample prologue/epilogue: offset
	// reads, pooling-factor computation, predicate setup and the output
	// pointer. Schedules that map one sample per warp pay it per sample;
	// lane-partitioned schedules amortize it across the samples of a warp
	// — the mechanism behind TorchRec's low active-thread counts on
	// one-hot features in the paper's Table II.
	instrSampleEpilogue = 24.0
)

// rowSectorBytes returns the bytes actually transferred to read one row of
// rowBytes contiguously, at sector granularity.
func rowSectorBytes(rowBytes float64) float64 {
	sectors := int((rowBytes + sectorBytes - 1) / sectorBytes)
	if sectors < 1 {
		sectors = 1
	}
	return float64(sectors) * sectorBytes
}

// splitTraffic divides total row-read bytes into an L2-served part and a
// DRAM part using the workload's reuse under the given cache context, and
// adds the (always-DRAM) output-write bytes.
func splitTraffic(w *Workload, l2 L2Context, rowReadBytes, writeBytes float64) (dram, l2Bytes float64) {
	h := l2.HitFraction(w)
	l2Bytes = rowReadBytes * h
	dram = rowReadBytes*(1-h) + writeBytes
	return dram, l2Bytes
}

// ceilDiv is integer ceiling division for positive divisors.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// maxIntSlice returns the maximum of s and 0 for empty s.
func maxIntSlice(s []int) int {
	m := 0
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// sumIntSlice returns the sum of s.
func sumIntSlice(s []int) int {
	n := 0
	for _, v := range s {
		n += v
	}
	return n
}

// adaptiveSamplesPerBlock implements the adaptive side of runtime thread
// mapping (§IV-B: "allocate an adaptive number of GPU thread groups to avoid
// workload imbalance or resource wastage"): when a feature's natural block
// count would leave most of the device idle, the host subdivides the sample
// ranges — halving samples per block, never below the schedule's quantum (the
// sample capacity of one warp) — until the feature alone could occupy every
// SM or the quantum is reached.
func adaptiveSamplesPerBlock(dev *gpusim.Device, batch, full, quantum int) int {
	if quantum < 1 {
		quantum = 1
	}
	spb := full
	for spb > quantum && ceilDiv(batch, spb) < dev.NumSMs {
		spb = (spb + 1) / 2
		if spb < quantum {
			spb = quantum
		}
	}
	return spb
}

// contiguousPlan builds the Plan skeleton for a schedule that assigns
// samplesPerBlock consecutive samples to each block, then lets fill compute
// each block's cost from its sample range.
func contiguousPlan(s Schedule, w *Workload, samplesPerBlock int,
	fill func(lo, hi int) gpusim.BlockWork) *Plan {
	numBlocks := ceilDiv(w.BatchSize, samplesPerBlock)
	p := &Plan{
		Schedule:  s,
		NumBlocks: numBlocks,
		Blocks:    make([]gpusim.BlockWork, numBlocks),
		SampleLo:  make([]int32, numBlocks),
		SampleHi:  make([]int32, numBlocks),
	}
	for b := 0; b < numBlocks; b++ {
		lo := b * samplesPerBlock
		hi := lo + samplesPerBlock
		if hi > w.BatchSize {
			hi = w.BatchSize
		}
		p.SampleLo[b] = int32(lo)
		p.SampleHi[b] = int32(hi)
		p.Blocks[b] = fill(lo, hi)
	}
	return p
}
