package sched

import (
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

func testHybrid() HybridSplit {
	return HybridSplit{
		Light:       SubWarp{Threads: 256, Lanes: 4, Vec: 1, UnrollRows: 1},
		Heavy:       BlockPerSample{Threads: 128, Vec: 1},
		ThresholdPF: 64,
	}
}

func TestHybridMatchesReference(t *testing.T) {
	dev := gpusim.V100()
	tbl, err := embedding.NewDeterministicTable("t", 512, 8, 17)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 25; trial++ {
		// Bimodal pooling factors straddling the threshold.
		perSample := make([][]int32, 1+rng.Intn(150))
		for i := range perSample {
			pf := rng.Intn(8)
			if rng.Intn(5) == 0 {
				pf = 64 + rng.Intn(200)
			}
			ids := make([]int32, pf)
			for j := range ids {
				ids[j] = int32(rng.Intn(tbl.Rows))
			}
			perSample[i] = ids
		}
		fb := embedding.NewFeatureBatch(perSample)
		w := AnalyzeWorkload(&fb, tbl.Dim, tbl.Rows)
		h := testHybrid()
		if !h.Supports(&w) {
			t.Fatal("hybrid should support this workload")
		}
		p, err := h.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Validate(w.BatchSize); err != nil {
			t.Fatal(err)
		}
		for _, mode := range []embedding.PoolMode{embedding.PoolSum, embedding.PoolMean, embedding.PoolMax} {
			want, err := embedding.PoolCPU(tbl, &fb, mode)
			if err != nil {
				t.Fatal(err)
			}
			got := make([]float32, len(want))
			for _, b := range rng.Perm(p.NumBlocks) {
				p.ExecuteBlock(b, tbl, &fb, mode, got)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("trial %d mode %v: out[%d] = %g, want %g", trial, mode, i, got[i], want[i])
				}
			}
		}
	}
}

func TestHybridDegenerateSplits(t *testing.T) {
	dev := gpusim.V100()
	h := testHybrid()
	// All light.
	light := Workload{Dim: 8, BatchSize: 32, PF: make([]int, 32), TableRows: 512}
	for i := range light.PF {
		light.PF[i] = 2
		light.TotalRows += 2
	}
	light.UniqueRows = light.TotalRows
	p, err := h.Plan(&light, dev, testL2())
	if err != nil {
		t.Fatal(err)
	}
	if p.Perm != nil {
		t.Error("all-light split should not need a permutation")
	}
	// All heavy.
	heavy := Workload{Dim: 8, BatchSize: 8, PF: []int{100, 100, 100, 100, 100, 100, 100, 100}, TotalRows: 800, UniqueRows: 800, TableRows: 512}
	p2, err := h.Plan(&heavy, dev, testL2())
	if err != nil {
		t.Fatal(err)
	}
	if p2.NumBlocks != 8 {
		t.Errorf("all-heavy split should be one block per sample, got %d", p2.NumBlocks)
	}
}

// On a bimodal workload the hybrid must beat both of its components used
// uniformly — the intra-feature heterogeneity payoff.
func TestHybridBeatsUniformComponentsOnBimodal(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(53))
	pf := make([]int, 4096)
	total := 0
	for i := range pf {
		if rng.Intn(10) == 0 {
			pf[i] = 150 + rng.Intn(250)
		} else {
			pf[i] = rng.Intn(6)
		}
		total += pf[i]
	}
	w := Workload{Dim: 8, BatchSize: 4096, PF: pf, TotalRows: total, UniqueRows: total, TableRows: 1 << 16}
	h := testHybrid()
	measure := func(s Schedule) float64 {
		p, err := s.Plan(&w, dev, testL2())
		if err != nil {
			t.Fatal(err)
		}
		k := &gpusim.Kernel{Name: "h", Resources: s.Resources(8), Blocks: p.Blocks}
		r, err := gpusim.Simulate(dev, k)
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	tHybrid := measure(h)
	tLight := measure(h.Light)
	tHeavy := measure(h.Heavy)
	if tHybrid >= tLight {
		t.Errorf("hybrid (%g) should beat uniform sub-warp (%g) on bimodal factors", tHybrid, tLight)
	}
	if tHybrid >= tHeavy {
		t.Errorf("hybrid (%g) should beat uniform block-per-sample (%g) on bimodal factors", tHybrid, tHeavy)
	}
}

func TestHybridValidation(t *testing.T) {
	dev := gpusim.V100()
	w := Workload{Dim: 8, BatchSize: 2, PF: []int{1, 1}, TotalRows: 2, UniqueRows: 2, TableRows: 16}
	bad := HybridSplit{
		Light:       SubWarp{Threads: 256, Lanes: 4, Vec: 1, UnrollRows: 1},
		Heavy:       BlockPerSample{Threads: 128, Vec: 1},
		ThresholdPF: 0,
	}
	if bad.Supports(&w) {
		t.Error("zero threshold accepted")
	}
	if _, err := bad.Plan(&w, dev, testL2()); err == nil {
		t.Error("Plan accepted invalid threshold")
	}
	h := testHybrid()
	r := h.Resources(8)
	if r.ThreadsPerBlock != 256 {
		t.Errorf("union threads = %d, want 256", r.ThreadsPerBlock)
	}
	if r.SharedMemPerBlock != h.Heavy.Resources(8).SharedMemPerBlock {
		t.Error("union smem should come from the heavy component")
	}
}
