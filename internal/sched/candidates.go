package sched

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

// DefaultCandidates returns the per-feature schedule candidate set S^(f) for
// a feature of the given embedding dimension. The order is deterministic and
// deliberately places the register-hungry thread-per-sample variants first —
// the paper's Figure 12 sweeps candidates by index and attributes the
// collapse of the early indices to register spilling under constrained
// occupancy.
//
// Users of the public API can extend or replace this set with their own
// Schedule implementations, mirroring the paper's user-provided schedule
// templates.
func DefaultCandidates(dim int) []Schedule {
	var out []Schedule
	// Register-heavy family: dim-wide accumulators per thread.
	for _, unroll := range []int{8, 4, 2, 1} {
		out = append(out, ThreadPerSample{Threads: 256, Unroll: unroll})
	}
	// Lane-partitioned family.
	for _, lanes := range []int{4, 8, 16, 32} {
		for _, vec := range []int{1, 4} {
			if vec > dim {
				continue
			}
			for _, unroll := range []int{1, 4} {
				out = append(out, SubWarp{Threads: 256, Lanes: lanes, Vec: vec, UnrollRows: unroll})
			}
		}
	}
	// Coarse-grained family for huge pooling factors.
	for _, threads := range []int{64, 128, 256} {
		for _, vec := range []int{1, 4} {
			if vec > dim {
				continue
			}
			out = append(out, BlockPerSample{Threads: threads, Vec: vec})
		}
	}
	// Shared-memory staged family: the isolated-latency champion whose
	// staging buffers throttle fused-kernel occupancy (§II-C).
	for _, stage := range []int{4, 8} {
		for _, vec := range []int{1, 4} {
			if vec > dim {
				continue
			}
			out = append(out, StagedTile{Threads: 256, Vec: vec, StageRows: stage})
		}
	}
	// Host-sorted family: eliminates sub-warp lockstep divergence on
	// high-variance pooling factors.
	for _, lanes := range []int{4, 8} {
		vec := 4
		if vec > dim {
			vec = 1
		}
		out = append(out, SortedSubWarp{SubWarp{Threads: 256, Lanes: lanes, Vec: vec, UnrollRows: 1}})
	}
	return out
}

// SupportedCandidates filters candidates to those that can run workload w.
func SupportedCandidates(candidates []Schedule, w *Workload) []Schedule {
	out := make([]Schedule, 0, len(candidates))
	for _, c := range candidates {
		if c.Supports(w) {
			out = append(out, c)
		}
	}
	return out
}

// MaxThreadsPerBlock returns the widest block among the schedules, which
// fixes the launch geometry of a fused kernel.
func MaxThreadsPerBlock(schedules []Schedule, dims []int) int {
	m := 0
	for i, s := range schedules {
		dim := 0
		if i < len(dims) {
			dim = dims[i]
		}
		if t := s.Resources(dim).ThreadsPerBlock; t > m {
			m = t
		}
	}
	return m
}

// PlanForBatch is a convenience wrapper: analyze the feature batch and plan
// it under the given schedule.
func PlanForBatch(s Schedule, fb *embedding.FeatureBatch, dim, tableRows int, dev *gpusim.Device, l2 L2Context) (*Plan, error) {
	w := AnalyzeWorkload(fb, dim, tableRows)
	if !s.Supports(&w) {
		return nil, fmt.Errorf("sched: %s does not support dim-%d workload", s.Name(), dim)
	}
	return s.Plan(&w, dev, l2)
}
