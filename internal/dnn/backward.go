package dnn

import (
	"fmt"

	"repro/internal/gpusim"
)

// Backward pass of the dense tower, completing the training extension: with
// embedding backward (internal/sched) and MLP backward, the whole
// recommendation model trains through the same code paths the inference
// benchmarks exercise.

// LinearGrads holds one layer's parameter gradients.
type LinearGrads struct {
	W []float32 // In*Out
	B []float32 // Out
}

// ForwardCache runs the layer and returns its output, which Backward needs
// for the ReLU mask.
func (l *Linear) ForwardCache(x []float32, batch int) ([]float32, error) {
	return l.Forward(x, batch)
}

// Backward computes the layer gradients: x is the layer input (batch*In), y
// its forward output (batch*Out, used for the ReLU mask), dy the upstream
// gradient (batch*Out). Returns the gradient w.r.t. x plus parameter grads.
func (l *Linear) Backward(x, y, dy []float32, batch int) ([]float32, LinearGrads, error) {
	var g LinearGrads
	if len(x) != batch*l.In || len(y) != batch*l.Out || len(dy) != batch*l.Out {
		return nil, g, fmt.Errorf("dnn: backward shapes: x %d, y %d, dy %d for batch %d (%dx%d)",
			len(x), len(y), len(dy), batch, l.In, l.Out)
	}
	g.W = make([]float32, l.In*l.Out)
	g.B = make([]float32, l.Out)
	dx := make([]float32, batch*l.In)
	for r := 0; r < batch; r++ {
		xi := x[r*l.In : (r+1)*l.In]
		yo := y[r*l.Out : (r+1)*l.Out]
		dyo := dy[r*l.Out : (r+1)*l.Out]
		dxi := dx[r*l.In : (r+1)*l.In]
		for j := 0; j < l.Out; j++ {
			d := dyo[j]
			if l.ReLU && yo[j] <= 0 {
				continue
			}
			g.B[j] += d
			for i := 0; i < l.In; i++ {
				g.W[i*l.Out+j] += xi[i] * d
				dxi[i] += l.W[i*l.Out+j] * d
			}
		}
	}
	return dx, g, nil
}

// ForwardActivations runs the tower and returns every layer's input plus the
// final output: activations[0] is x, activations[i] the output of layer i-1.
func (m *MLP) ForwardActivations(x []float32, batch int) ([][]float32, error) {
	acts := make([][]float32, 0, len(m.Layers)+1)
	acts = append(acts, x)
	cur := x
	for _, l := range m.Layers {
		y, err := l.Forward(cur, batch)
		if err != nil {
			return nil, err
		}
		acts = append(acts, y)
		cur = y
	}
	return acts, nil
}

// Backward backpropagates dy through the tower. activations must come from
// ForwardActivations on the same input. Returns the gradient w.r.t. the
// tower input and per-layer parameter gradients.
func (m *MLP) Backward(activations [][]float32, dy []float32, batch int) ([]float32, []LinearGrads, error) {
	if len(activations) != len(m.Layers)+1 {
		return nil, nil, fmt.Errorf("dnn: %d activations for %d layers", len(activations), len(m.Layers))
	}
	grads := make([]LinearGrads, len(m.Layers))
	cur := dy
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dx, g, err := m.Layers[i].Backward(activations[i], activations[i+1], cur, batch)
		if err != nil {
			return nil, nil, fmt.Errorf("dnn: layer %d: %w", i, err)
		}
		grads[i] = g
		cur = dx
	}
	return cur, grads, nil
}

// SGD applies one gradient step with the given learning rate.
func (m *MLP) SGD(grads []LinearGrads, lr float32) error {
	if len(grads) != len(m.Layers) {
		return fmt.Errorf("dnn: %d gradients for %d layers", len(grads), len(m.Layers))
	}
	for i, l := range m.Layers {
		if len(grads[i].W) != len(l.W) || len(grads[i].B) != len(l.B) {
			return fmt.Errorf("dnn: layer %d gradient shape mismatch", i)
		}
		for j := range l.W {
			l.W[j] -= lr * grads[i].W[j]
		}
		for j := range l.B {
			l.B[j] -= lr * grads[i].B[j]
		}
	}
	return nil
}

// MeasureTowerBackward simulates the GPU cost of the tower's backward pass:
// per layer, two GEMMs (dW = x^T·dy and dx = dy·W^T) of the forward shape.
func MeasureTowerBackward(batch, inDim int, hidden []int, dev *gpusim.Device) (float64, error) {
	total := 0.0
	in := inDim
	for _, h := range hidden {
		for i := 0; i < 2; i++ {
			k := GEMMKernel(batch, in, h, dev)
			k.Name += "_bwd"
			k.IncludeLaunchOverhead = true
			r, err := gpusim.Simulate(dev, &k)
			if err != nil {
				return 0, err
			}
			total += r.Time
		}
		in = h
	}
	return total, nil
}
