// Package dnn implements the dense part of the recommendation model: the
// feature-interaction MLP the paper attaches for the end-to-end evaluation
// (hidden units 1024, 256, 128), a concat operator that joins the per-feature
// embedding outputs, CPU reference forward passes, and a tiled-GEMM GPU cost
// model so end-to-end latency can be simulated on the same device model as
// the embedding kernels.
package dnn

import (
	"fmt"
	"math"

	"repro/internal/gpusim"
)

// Linear is one dense layer: y = relu(x·W + b) with row-major weights.
type Linear struct {
	In, Out int
	W       []float32 // In*Out, W[i*Out+j]
	B       []float32 // Out
	ReLU    bool
}

// NewLinear allocates a deterministic pseudo-random layer.
func NewLinear(in, out int, relu bool, seed uint64) (*Linear, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("dnn: layer shape must be positive, got %dx%d", in, out)
	}
	l := &Linear{In: in, Out: out, W: make([]float32, in*out), B: make([]float32, out), ReLU: relu}
	scale := float32(1 / math.Sqrt(float64(in)))
	for i := range l.W {
		l.W[i] = hashFloat(seed, uint64(i)) * scale
	}
	for j := range l.B {
		l.B[j] = hashFloat(seed^0xB1A5, uint64(j)) * 0.01
	}
	return l, nil
}

// Forward computes the layer for a batch of rows: x is batch*In, the result
// batch*Out.
func (l *Linear) Forward(x []float32, batch int) ([]float32, error) {
	if len(x) != batch*l.In {
		return nil, fmt.Errorf("dnn: input length %d != batch %d * in %d", len(x), batch, l.In)
	}
	y := make([]float32, batch*l.Out)
	for r := 0; r < batch; r++ {
		xi := x[r*l.In : (r+1)*l.In]
		yo := y[r*l.Out : (r+1)*l.Out]
		copy(yo, l.B)
		for i, xv := range xi {
			if xv == 0 {
				continue
			}
			wRow := l.W[i*l.Out : (i+1)*l.Out]
			for j, wv := range wRow {
				yo[j] += xv * wv
			}
		}
		if l.ReLU {
			for j := range yo {
				if yo[j] < 0 {
					yo[j] = 0
				}
			}
		}
	}
	return y, nil
}

// GEMM tiling of the cost model.
const (
	tileM = 64
	tileN = 64
)

// Kernel returns the simulated GEMM kernel of this layer for a batch.
func (l *Linear) Kernel(batch int, dev *gpusim.Device) gpusim.Kernel {
	blocksM := (batch + tileM - 1) / tileM
	blocksN := (l.Out + tileN - 1) / tileN
	k := float64(l.In)
	// Warp instructions per tile: tileM*tileN*K FMAs over 32 lanes with
	// dual-issue FMA pipes, plus shared-memory staging traffic.
	comp := float64(tileM*tileN) * k / (32 * 2)
	aBytes := float64(tileM) * k * 4
	wBytes := k * float64(tileN) * 4
	cBytes := float64(tileM*tileN) * 4
	// Weights are reused across the M dimension: after the first M-block,
	// W tiles come from L2.
	blocks := make([]gpusim.BlockWork, 0, blocksM*blocksN)
	for m := 0; m < blocksM; m++ {
		for n := 0; n < blocksN; n++ {
			b := gpusim.BlockWork{
				CompCycles:  comp,
				DRAMBytes:   aBytes + cBytes,
				L2Bytes:     wBytes,
				MemRequests: (aBytes + wBytes + cBytes) / 128,
				Warps:       4,
				ActiveFrac:  1,
				Tag:         -1,
			}
			if m == 0 {
				b.DRAMBytes += wBytes
				b.L2Bytes -= wBytes
			}
			blocks = append(blocks, b)
		}
	}
	return gpusim.Kernel{
		Name:      fmt.Sprintf("gemm_%dx%dx%d", batch, l.Out, l.In),
		Resources: gpusim.KernelResources{ThreadsPerBlock: 128, RegsPerThread: 64, SharedMemPerBlock: (tileM + tileN) * 32 * 4},
		Blocks:    blocks,
	}
}

// MLP is the dense tower.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds the tower inDim -> hidden[0] -> ... -> hidden[n-1] with ReLU
// between layers and a linear final layer.
func NewMLP(inDim int, hidden []int, seed uint64) (*MLP, error) {
	if len(hidden) == 0 {
		return nil, fmt.Errorf("dnn: MLP needs at least one layer")
	}
	m := &MLP{}
	in := inDim
	for i, h := range hidden {
		relu := i < len(hidden)-1
		l, err := NewLinear(in, h, relu, seed+uint64(i)*7919)
		if err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
		in = h
	}
	return m, nil
}

// PaperMLP builds the evaluation tower of §VI-C: hidden units 1024, 256, 128.
func PaperMLP(inDim int, seed uint64) (*MLP, error) {
	return NewMLP(inDim, []int{1024, 256, 128}, seed)
}

// Forward runs the CPU reference pass.
func (m *MLP) Forward(x []float32, batch int) ([]float32, error) {
	cur := x
	for _, l := range m.Layers {
		y, err := l.Forward(cur, batch)
		if err != nil {
			return nil, err
		}
		cur = y
	}
	return cur, nil
}

// Measure simulates the tower's GEMM kernels for a batch.
func (m *MLP) Measure(batch int, dev *gpusim.Device) (float64, error) {
	total := 0.0
	for _, l := range m.Layers {
		k := l.Kernel(batch, dev)
		k.IncludeLaunchOverhead = true
		r, err := gpusim.Simulate(dev, &k)
		if err != nil {
			return 0, err
		}
		total += r.Time
	}
	return total, nil
}

// Concat joins per-feature embedding outputs (each batch*dims[f]) into one
// batch*(sum dims) row-major matrix, the layout the MLP consumes.
func Concat(outs [][]float32, dims []int, batch int) ([]float32, error) {
	if len(outs) != len(dims) {
		return nil, fmt.Errorf("dnn: %d outputs for %d dims", len(outs), len(dims))
	}
	total := 0
	for f, d := range dims {
		if len(outs[f]) != batch*d {
			return nil, fmt.Errorf("dnn: feature %d output length %d != batch %d * dim %d", f, len(outs[f]), batch, d)
		}
		total += d
	}
	joined := make([]float32, batch*total)
	off := 0
	for f, d := range dims {
		for r := 0; r < batch; r++ {
			copy(joined[r*total+off:r*total+off+d], outs[f][r*d:(r+1)*d])
		}
		off += d
	}
	return joined, nil
}

// ConcatKernel models the GPU concat: a pure bandwidth copy of the joined
// matrix (read + write).
func ConcatKernel(totalDim, batch int) gpusim.Kernel {
	bytes := float64(totalDim*batch) * 4
	numBlocks := (totalDim*batch + 256*4 - 1) / (256 * 4)
	if numBlocks < 1 {
		numBlocks = 1
	}
	per := 2 * bytes / float64(numBlocks)
	blocks := make([]gpusim.BlockWork, numBlocks)
	for i := range blocks {
		blocks[i] = gpusim.BlockWork{
			CompCycles:  64,
			DRAMBytes:   per,
			MemRequests: per / 128,
			Warps:       8,
			ActiveFrac:  1,
			Tag:         -1,
		}
	}
	return gpusim.Kernel{
		Name:      "concat",
		Resources: gpusim.KernelResources{ThreadsPerBlock: 256, RegsPerThread: 16},
		Blocks:    blocks,
	}
}

// hashFloat maps (seed, i) to [-1, 1) deterministically.
func hashFloat(seed, i uint64) float32 {
	x := seed ^ (i * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float32(2*float64(x>>40)/float64(1<<24) - 1)
}
