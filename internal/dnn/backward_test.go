package dnn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gpusim"
)

// Numerical gradient check: perturb every parameter and input and compare
// the finite-difference derivative of a scalar loss with the analytic
// backward pass. The definitive correctness test for backprop.
func TestMLPBackwardNumericalGradientCheck(t *testing.T) {
	const (
		batch = 3
		inDim = 5
		eps   = 1e-2
		tol   = 2e-2
	)
	m, err := NewMLP(inDim, []int{4, 2}, 99)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	x := make([]float32, batch*inDim)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	// Loss = sum of squares of the outputs.
	loss := func() float64 {
		y, err := m.Forward(x, batch)
		if err != nil {
			t.Fatal(err)
		}
		s := 0.0
		for _, v := range y {
			s += float64(v) * float64(v)
		}
		return s
	}
	// Analytic gradients.
	acts, err := m.ForwardActivations(x, batch)
	if err != nil {
		t.Fatal(err)
	}
	out := acts[len(acts)-1]
	dy := make([]float32, len(out))
	for i := range out {
		dy[i] = 2 * out[i]
	}
	dx, grads, err := m.Backward(acts, dy, batch)
	if err != nil {
		t.Fatal(err)
	}

	check := func(param *float32, analytic float32, what string, idx int) {
		t.Helper()
		orig := *param
		*param = orig + eps
		up := loss()
		*param = orig - eps
		down := loss()
		*param = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-float64(analytic)) > tol*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: analytic %g vs numeric %g", what, idx, analytic, numeric)
		}
	}
	for li, l := range m.Layers {
		for i := range l.W {
			check(&l.W[i], grads[li].W[i], "W", li*1000+i)
		}
		for i := range l.B {
			check(&l.B[i], grads[li].B[i], "B", li*1000+i)
		}
	}
	for i := range x {
		check(&x[i], dx[i], "x", i)
	}
}

func TestLinearBackwardShapes(t *testing.T) {
	l := &Linear{In: 2, Out: 3, W: make([]float32, 6), B: make([]float32, 3)}
	x := make([]float32, 4) // batch 2
	y := make([]float32, 6)
	dy := make([]float32, 6)
	if _, _, err := l.Backward(x, y, dy, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Backward(x[:1], y, dy, 2); err == nil {
		t.Error("short x accepted")
	}
	if _, _, err := l.Backward(x, y[:1], dy, 2); err == nil {
		t.Error("short y accepted")
	}
}

func TestReLUMaskInBackward(t *testing.T) {
	l := &Linear{In: 1, Out: 2, W: []float32{1, -1}, B: []float32{0, 0}, ReLU: true}
	x := []float32{2} // y = [2, -2] -> relu [2, 0]
	y, err := l.Forward(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	dy := []float32{1, 1}
	dx, g, err := l.Backward(x, y, dy, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The dead unit (output 0) must contribute nothing.
	if g.W[1] != 0 || g.B[1] != 0 {
		t.Errorf("dead ReLU unit leaked gradient: W %g B %g", g.W[1], g.B[1])
	}
	if dx[0] != 1 { // only the live unit: w=1 * dy=1
		t.Errorf("dx = %g, want 1", dx[0])
	}
}

func TestSGDStep(t *testing.T) {
	m, err := NewMLP(2, []int{2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float32(nil), m.Layers[0].W...)
	grads := []LinearGrads{{W: []float32{1, 1, 1, 1}, B: []float32{1, 1}}}
	if err := m.SGD(grads, 0.1); err != nil {
		t.Fatal(err)
	}
	for i := range before {
		want := before[i] - 0.1
		if math.Abs(float64(m.Layers[0].W[i]-want)) > 1e-6 {
			t.Errorf("W[%d] = %g, want %g", i, m.Layers[0].W[i], want)
		}
	}
	if err := m.SGD(grads[:0], 0.1); err == nil {
		t.Error("gradient count mismatch accepted")
	}
	bad := []LinearGrads{{W: []float32{1}, B: []float32{1, 1}}}
	if err := m.SGD(bad, 0.1); err == nil {
		t.Error("gradient shape mismatch accepted")
	}
}

func TestMeasureTowerBackward(t *testing.T) {
	dev := gpusim.V100()
	fwd, err := MeasureTower(256, 512, []int{1024, 256, 128}, dev)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := MeasureTowerBackward(256, 512, []int{1024, 256, 128}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if bwd <= fwd {
		t.Errorf("backward (%g) should cost more than forward (%g): two GEMMs per layer", bwd, fwd)
	}
}
