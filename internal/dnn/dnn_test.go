package dnn

import (
	"math"
	"testing"

	"repro/internal/gpusim"
)

func TestLinearForwardKnownValues(t *testing.T) {
	l := &Linear{In: 2, Out: 2, W: []float32{1, 2, 3, 4}, B: []float32{0.5, -0.5}}
	y, err := l.Forward([]float32{1, 1, 2, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1*1 + 1*3 + 0.5, 1*2 + 1*4 - 0.5, 2*1 + 0.5, 2*2 - 0.5}
	for i := range want {
		if math.Abs(float64(y[i]-want[i])) > 1e-6 {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}

func TestLinearReLU(t *testing.T) {
	l := &Linear{In: 1, Out: 2, W: []float32{1, -1}, B: []float32{0, 0}, ReLU: true}
	y, err := l.Forward([]float32{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 0 {
		t.Errorf("relu output = %v, want [3 0]", y)
	}
}

func TestLinearShapeErrors(t *testing.T) {
	l := &Linear{In: 2, Out: 2, W: make([]float32, 4), B: make([]float32, 2)}
	if _, err := l.Forward([]float32{1}, 1); err == nil {
		t.Error("bad input length accepted")
	}
	if _, err := NewLinear(0, 2, false, 1); err == nil {
		t.Error("zero input dim accepted")
	}
}

func TestNewLinearDeterministic(t *testing.T) {
	a, err := NewLinear(8, 4, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLinear(8, 4, true, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("weights not deterministic")
		}
	}
	c, _ := NewLinear(8, 4, true, 43)
	same := true
	for i := range a.W {
		if a.W[i] != c.W[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds gave identical weights")
	}
}

func TestMLPForwardShapes(t *testing.T) {
	m, err := NewMLP(16, []int{8, 4, 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 3*16)
	for i := range x {
		x[i] = float32(i%5) - 2
	}
	y, err := m.Forward(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 3*2 {
		t.Errorf("output length %d, want 6", len(y))
	}
	// Hidden layers use ReLU, the final one is linear.
	for i, l := range m.Layers {
		wantReLU := i < len(m.Layers)-1
		if l.ReLU != wantReLU {
			t.Errorf("layer %d ReLU = %v, want %v", i, l.ReLU, wantReLU)
		}
	}
	if _, err := NewMLP(16, nil, 7); err == nil {
		t.Error("empty tower accepted")
	}
}

func TestPaperMLPShape(t *testing.T) {
	m, err := PaperMLP(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{1024, 256, 128}
	if len(m.Layers) != 3 {
		t.Fatalf("%d layers, want 3", len(m.Layers))
	}
	for i, l := range m.Layers {
		if l.Out != dims[i] {
			t.Errorf("layer %d out = %d, want %d", i, l.Out, dims[i])
		}
	}
}

func TestMLPMeasurePositiveAndScales(t *testing.T) {
	dev := gpusim.V100()
	m, err := NewMLP(128, []int{64, 32}, 2)
	if err != nil {
		t.Fatal(err)
	}
	small, err := m.Measure(64, dev)
	if err != nil {
		t.Fatal(err)
	}
	// A batch large enough to need several waves of blocks must take longer
	// (batches inside one wave legitimately tie).
	big, err := m.Measure(1<<17, dev)
	if err != nil {
		t.Fatal(err)
	}
	if small <= 0 || big <= small {
		t.Errorf("MLP times: batch 64 -> %g, batch 128k -> %g", small, big)
	}
}

func TestMeasureTowerMatchesMLPStructure(t *testing.T) {
	dev := gpusim.V100()
	byShapes, err := MeasureTower(256, 512, []int{1024, 256, 128}, dev)
	if err != nil {
		t.Fatal(err)
	}
	if byShapes <= 0 {
		t.Error("tower time must be positive")
	}
}

func TestConcat(t *testing.T) {
	outs := [][]float32{
		{1, 2, 10, 20}, // feature 0: dim 2, batch 2
		{3, 30},        // feature 1: dim 1, batch 2
	}
	joined, err := Concat(outs, []int{2, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 3, 10, 20, 30}
	for i := range want {
		if joined[i] != want[i] {
			t.Errorf("joined[%d] = %g, want %g", i, joined[i], want[i])
		}
	}
	if _, err := Concat(outs, []int{2}, 2); err == nil {
		t.Error("dims mismatch accepted")
	}
	if _, err := Concat(outs, []int{2, 2}, 2); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestConcatKernelSimulates(t *testing.T) {
	dev := gpusim.V100()
	k := ConcatKernel(3000, 256)
	r, err := gpusim.Simulate(dev, &k)
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 {
		t.Error("concat time must be positive")
	}
	// Pure copy: traffic = 2 * matrix bytes.
	wantBytes := 2.0 * 3000 * 256 * 4
	if math.Abs(r.Counters.TotalDRAMBytes-wantBytes) > 1e-6*wantBytes {
		t.Errorf("concat traffic %g, want %g", r.Counters.TotalDRAMBytes, wantBytes)
	}
}

func TestGEMMKernelShape(t *testing.T) {
	dev := gpusim.V100()
	k := GEMMKernel(256, 512, 1024, dev)
	wantBlocks := ((256 + 63) / 64) * ((1024 + 63) / 64)
	if len(k.Blocks) != wantBlocks {
		t.Errorf("%d blocks, want %d", len(k.Blocks), wantBlocks)
	}
	if err := k.Validate(dev); err != nil {
		t.Error(err)
	}
}
