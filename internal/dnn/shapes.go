package dnn

import "repro/internal/gpusim"

// GEMMKernel builds the simulated kernel of one batch×in×out dense layer
// from shapes alone — no weights needed. Linear.Kernel delegates here, and
// the end-to-end pipeline uses it to cost MLP towers whose weight matrices
// would be too large to materialize for every synthetic model.
func GEMMKernel(batch, in, out int, dev *gpusim.Device) gpusim.Kernel {
	l := Linear{In: in, Out: out}
	return l.Kernel(batch, dev)
}

// MeasureTower simulates a dense tower inDim -> hidden... from shapes alone,
// returning the summed kernel time (launch overheads included).
func MeasureTower(batch, inDim int, hidden []int, dev *gpusim.Device) (float64, error) {
	total := 0.0
	in := inDim
	for _, h := range hidden {
		k := GEMMKernel(batch, in, h, dev)
		k.IncludeLaunchOverhead = true
		r, err := gpusim.Simulate(dev, &k)
		if err != nil {
			return 0, err
		}
		total += r.Time
		in = h
	}
	return total, nil
}
