package datasynth

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDistMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dists := []Dist{
		Fixed{K: 7},
		Uniform{Lo: 1, Hi: 99},
		Normal{Mu: 50, Sigma: 10},
		LogNormal{Mu: 2, Sigma: 0.5},
	}
	const n = 200000
	for _, d := range dists {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(d.Sample(rng))
			if v < 0 {
				t.Fatalf("%s: negative sample %g", d, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		std := math.Sqrt(sumSq/n - mean*mean)
		if rel := math.Abs(mean-d.Mean()) / (d.Mean() + 1); rel > 0.05 {
			t.Errorf("%s: empirical mean %.2f vs declared %.2f", d, mean, d.Mean())
		}
		if d.Std() > 1 {
			if rel := math.Abs(std-d.Std()) / d.Std(); rel > 0.15 {
				t.Errorf("%s: empirical std %.2f vs declared %.2f", d, std, d.Std())
			}
		}
	}
}

func TestFixedDistDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := Fixed{K: 3}
	for i := 0; i < 10; i++ {
		if d.Sample(rng) != 3 {
			t.Fatal("Fixed must always return K")
		}
	}
	u := Uniform{Lo: 5, Hi: 5}
	if u.Sample(rng) != 5 {
		t.Error("degenerate uniform must return Lo")
	}
	inv := Uniform{Lo: 9, Hi: 3}
	if u.Sample(rng) != 5 || inv.Sample(rng) != 9 {
		t.Error("inverted uniform must return Lo")
	}
}

func TestLogNormalClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := LogNormal{Mu: 5, Sigma: 2, Max: 100}
	for i := 0; i < 5000; i++ {
		if v := d.Sample(rng); v > 100 {
			t.Fatalf("clamped lognormal returned %d", v)
		}
	}
}

func TestNormalCoverageViaGenerate(t *testing.T) {
	cfg := &ModelConfig{Name: "cov", Seed: 4, Features: []FeatureSpec{{
		Name: "f", Dim: 8, Rows: 100, PF: Fixed{K: 5}, Coverage: 0.3,
	}}}
	rng := rand.New(rand.NewSource(4))
	zeros, total := 0, 0
	for i := 0; i < 20; i++ {
		b, err := GenerateBatch(cfg, 500, rng)
		if err != nil {
			t.Fatal(err)
		}
		fb := &b.Features[0]
		for s := 0; s < fb.BatchSize(); s++ {
			if fb.PoolingFactor(s) == 0 {
				zeros++
			}
			total++
		}
	}
	frac := float64(zeros) / float64(total)
	if math.Abs(frac-0.7) > 0.03 {
		t.Errorf("absent fraction %.3f, want ~0.70", frac)
	}
}

func TestTableIModelShapes(t *testing.T) {
	cases := []struct {
		cfg              *ModelConfig
		features, oneHot int
		dimLo, dimHi     int
	}{
		{ModelA(), 1000, 500, 4, 128},
		{ModelB(), 1200, 1000, 4, 128},
		{ModelC(), 800, 0, 4, 128},
		{ModelD(), 1000, 500, 8, 8},
		{ModelE(), 1000, 500, 32, 32},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err != nil {
			t.Fatalf("model %s: %v", c.cfg.Name, err)
		}
		if got := len(c.cfg.Features); got != c.features {
			t.Errorf("model %s: %d features, want %d", c.cfg.Name, got, c.features)
		}
		oneHot, multiHot := c.cfg.CountHot()
		if oneHot != c.oneHot {
			t.Errorf("model %s: %d one-hot, want %d", c.cfg.Name, oneHot, c.oneHot)
		}
		if oneHot+multiHot != c.features {
			t.Errorf("model %s: hot counts do not sum", c.cfg.Name)
		}
		lo, hi := c.cfg.DimRange()
		if lo < c.dimLo || hi > c.dimHi {
			t.Errorf("model %s: dim range [%d,%d], want within [%d,%d]", c.cfg.Name, lo, hi, c.dimLo, c.dimHi)
		}
	}
}

func TestModelBuildersDeterministic(t *testing.T) {
	a1, a2 := ModelA(), ModelA()
	for i := range a1.Features {
		if a1.Features[i] != a2.Features[i] {
			t.Fatalf("ModelA not deterministic at feature %d", i)
		}
	}
}

func TestScalabilityAndMLPerfConfigs(t *testing.T) {
	s := Scalability10k()
	if len(s.Features) != 10000 {
		t.Errorf("scalability model has %d features, want 10000", len(s.Features))
	}
	m := MLPerfLike()
	if len(m.Features) != 26 {
		t.Errorf("mlperf model has %d features, want 26", len(m.Features))
	}
	for i := range m.Features {
		if m.Features[i].Dim != 128 {
			t.Errorf("mlperf feature %d dim %d, want uniform 128", i, m.Features[i].Dim)
		}
	}
}

func TestScaled(t *testing.T) {
	a := ModelA()
	s := Scaled(a, 10)
	if len(s.Features) != 100 {
		t.Errorf("scaled features = %d, want 100", len(s.Features))
	}
	if same := Scaled(a, 1); same != a {
		t.Error("Scaled with k<=1 should return the original config")
	}
}

func TestGenerateBatchValid(t *testing.T) {
	cfg := Scaled(ModelA(), 20) // 50 features
	rng := rand.New(rand.NewSource(9))
	b, err := GenerateBatch(cfg, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.BatchSize() != 64 || b.NumFeatures() != len(cfg.Features) {
		t.Fatalf("batch shape %dx%d", b.BatchSize(), b.NumFeatures())
	}
	for f := range b.Features {
		if err := b.Features[f].Validate(cfg.Features[f].Rows); err != nil {
			t.Fatalf("feature %d: %v", f, err)
		}
	}
	if _, err := GenerateBatch(cfg, 0, rng); err == nil {
		t.Error("zero batch size accepted")
	}
}

func TestGenerateDatasetDeterministic(t *testing.T) {
	cfg := Scaled(ModelC(), 40)
	d1, err := GenerateDataset(cfg, 4, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := GenerateDataset(cfg, 4, []int{32, 64})
	if err != nil {
		t.Fatal(err)
	}
	for bi := range d1.Batches {
		for f := range d1.Batches[bi].Features {
			a, b := d1.Batches[bi].Features[f], d2.Batches[bi].Features[f]
			if len(a.Indices) != len(b.Indices) {
				t.Fatalf("batch %d feature %d: lengths differ", bi, f)
			}
			for i := range a.Indices {
				if a.Indices[i] != b.Indices[i] {
					t.Fatalf("batch %d feature %d: index %d differs", bi, f, i)
				}
			}
		}
	}
	if _, err := GenerateDataset(cfg, 0, []int{32}); err == nil {
		t.Error("zero batches accepted")
	}
	if _, err := GenerateDataset(cfg, 1, nil); err == nil {
		t.Error("empty sizes accepted")
	}
}

func TestBuildTablesAndCapRows(t *testing.T) {
	cfg := CapRows(Scaled(ModelA(), 100), 2048)
	tables, err := BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(cfg.Features) {
		t.Fatalf("%d tables, want %d", len(tables), len(cfg.Features))
	}
	for i, tbl := range tables {
		if tbl.Rows > 2048 {
			t.Errorf("table %d has %d rows after cap", i, tbl.Rows)
		}
		if tbl.Dim != cfg.Features[i].Dim {
			t.Errorf("table %d dim mismatch", i)
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	cfg := Scaled(ModelB(), 60)
	ds, err := GenerateDataset(cfg, 3, []int{16, 48})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&buf, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Batches) != len(ds.Batches) {
		t.Fatalf("round-trip batch count %d, want %d", len(got.Batches), len(ds.Batches))
	}
	for bi := range ds.Batches {
		for f := range ds.Batches[bi].Features {
			a := &ds.Batches[bi].Features[f]
			b := &got.Batches[bi].Features[f]
			if len(a.Indices) != len(b.Indices) || len(a.Offsets) != len(b.Offsets) {
				t.Fatalf("batch %d feature %d: shape differs", bi, f)
			}
			for i := range a.Indices {
				if a.Indices[i] != b.Indices[i] {
					t.Fatalf("batch %d feature %d: index %d differs", bi, f, i)
				}
			}
			for i := range a.Offsets {
				if a.Offsets[i] != b.Offsets[i] {
					t.Fatalf("batch %d feature %d: offset %d differs", bi, f, i)
				}
			}
		}
	}
}

func TestReadDatasetRejectsCorruption(t *testing.T) {
	cfg := Scaled(ModelB(), 120)
	ds, err := GenerateDataset(cfg, 1, []int{8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadDataset(bytes.NewReader(raw[:3]), cfg); err == nil {
		t.Error("truncated magic accepted")
	}
	bad := append([]byte{}, raw...)
	bad[0] = 'X'
	if _, err := ReadDataset(bytes.NewReader(bad), cfg); err == nil {
		t.Error("bad magic accepted")
	}
	other := Scaled(ModelB(), 60)
	if _, err := ReadDataset(bytes.NewReader(raw), other); err == nil {
		t.Error("feature-count mismatch accepted")
	}
	if _, err := ReadDataset(bytes.NewReader(raw[:len(raw)/2]), cfg); err == nil {
		t.Error("truncated body accepted")
	}
}

func TestRequestSizes(t *testing.T) {
	sizes := RequestSizes(1000, 512, 11)
	for i, s := range sizes {
		if s < 16 || s > 512 {
			t.Fatalf("sizes[%d] = %d outside [16,512]", i, s)
		}
	}
	var sum float64
	for _, s := range sizes {
		sum += float64(s)
	}
	mean := sum / float64(len(sizes))
	if mean < 150 || mean > 350 {
		t.Errorf("mean request size %.1f, want around hundreds", mean)
	}
}

func TestStatsAndHeterogeneity(t *testing.T) {
	cfgHet := Scaled(ModelA(), 20)
	dsHet, err := GenerateDataset(cfgHet, 4, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	hetStats := CollectFeatureStats(cfgHet, dsHet.Batches)
	if len(hetStats) != len(cfgHet.Features) {
		t.Fatalf("stats count %d", len(hetStats))
	}
	cfgFlat := MLPerfLike()
	dsFlat, err := GenerateDataset(cfgFlat, 4, []int{128})
	if err != nil {
		t.Fatal(err)
	}
	flatStats := CollectFeatureStats(cfgFlat, dsFlat.Batches)
	hHet := HeterogeneityIndex(hetStats)
	hFlat := HeterogeneityIndex(flatStats)
	if hHet <= 1 {
		t.Errorf("model A heterogeneity index %.3f, want > 1", hHet)
	}
	if hFlat > 0.05 {
		t.Errorf("MLPerf-like heterogeneity index %.3f, want ~0", hFlat)
	}
	if HeterogeneityIndex(nil) != 0 {
		t.Error("empty stats should score 0")
	}
}

func TestDimHistogram(t *testing.T) {
	cfg := ModelD()
	h := DimHistogram(cfg)
	if len(h) != 1 || h[8] != 1000 {
		t.Errorf("model D histogram = %v, want {8:1000}", h)
	}
	dims := SortedDims(DimHistogram(ModelA()))
	for i := 1; i < len(dims); i++ {
		if dims[i] <= dims[i-1] {
			t.Fatal("SortedDims not sorted")
		}
	}
}

func TestPoolingFactorSeries(t *testing.T) {
	cfg := &ModelConfig{Name: "s", Seed: 5, Features: []FeatureSpec{
		{Name: "a", Dim: 4, Rows: 50, PF: Fixed{K: 2}, Coverage: 1},
	}}
	rng := rand.New(rand.NewSource(5))
	b, err := GenerateBatch(cfg, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	series := PoolingFactorSeries(b, 0)
	if len(series) != 10 {
		t.Fatalf("series length %d", len(series))
	}
	for _, pf := range series {
		if pf != 2 {
			t.Errorf("pf = %d, want 2", pf)
		}
	}
}

// Property: generated CSR batches are always structurally valid.
func TestGeneratedBatchesAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, batchRaw uint8) bool {
		cfg := Scaled(ModelC(), 80)
		rng := rand.New(rand.NewSource(seed))
		batch := 1 + int(batchRaw)%100
		b, err := GenerateBatch(cfg, batch, rng)
		if err != nil {
			return false
		}
		for fi := range b.Features {
			if b.Features[fi].Validate(cfg.Features[fi].Rows) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestZipfIDsSkewed(t *testing.T) {
	cfg := &ModelConfig{Name: "z", Seed: 6, Features: []FeatureSpec{
		{Name: "z", Dim: 4, Rows: 10000, PF: Fixed{K: 20}, Coverage: 1, IDs: IDZipf},
		{Name: "u", Dim: 4, Rows: 10000, PF: Fixed{K: 20}, Coverage: 1, IDs: IDUniform},
	}}
	rng := rand.New(rand.NewSource(6))
	b, err := GenerateBatch(cfg, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	zipfUnique := b.Features[0].UniqueRows()
	unifUnique := b.Features[1].UniqueRows()
	if zipfUnique >= unifUnique {
		t.Errorf("zipf unique rows (%d) should be far below uniform (%d)", zipfUnique, unifUnique)
	}
	if IDZipf.String() != "zipf" || IDUniform.String() != "uniform" {
		t.Error("IDDist.String wrong")
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []FeatureSpec{
		{Name: "d0", Dim: 0, Rows: 10, PF: Fixed{K: 1}, Coverage: 1},
		{Name: "r1", Dim: 4, Rows: 1, PF: Fixed{K: 1}, Coverage: 1},
		{Name: "nil", Dim: 4, Rows: 10, Coverage: 1},
		{Name: "cov", Dim: 4, Rows: 10, PF: Fixed{K: 1}, Coverage: 1.5},
	}
	for _, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %q accepted", spec.Name)
		}
	}
	empty := &ModelConfig{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty model accepted")
	}
}

func TestDrifted(t *testing.T) {
	cfg := &ModelConfig{Name: "d", Seed: 9, Features: []FeatureSpec{
		{Name: "oh", Dim: 4, Rows: 64, PF: Fixed{K: 1}, Coverage: 1},
		{Name: "fx", Dim: 4, Rows: 64, PF: Fixed{K: 10}, Coverage: 1},
		{Name: "un", Dim: 4, Rows: 64, PF: Uniform{Lo: 1, Hi: 20}, Coverage: 1},
		{Name: "nm", Dim: 4, Rows: 64, PF: Normal{Mu: 40, Sigma: 8}, Coverage: 1},
		{Name: "ln", Dim: 4, Rows: 64, PF: LogNormal{Mu: 2, Sigma: 0.5, Max: 100}, Coverage: 1},
	}}
	d := Drifted(cfg, 3)
	// One-hot untouched.
	if !d.Features[0].OneHot() {
		t.Error("one-hot drifted")
	}
	if got := d.Features[1].PF.(Fixed).K; got != 30 {
		t.Errorf("fixed drift = %d, want 30", got)
	}
	if got := d.Features[2].PF.(Uniform).Hi; got != 60 {
		t.Errorf("uniform drift = %d, want 60", got)
	}
	if got := d.Features[3].PF.(Normal).Mu; got != 120 {
		t.Errorf("normal drift = %g, want 120", got)
	}
	ln := d.Features[4].PF.(LogNormal)
	if math.Abs(ln.Mean()-3*(LogNormal{Mu: 2, Sigma: 0.5}).Mean()) > 1e-9 {
		t.Errorf("lognormal mean should scale 3x")
	}
	// Identity and bad-factor cases.
	same := Drifted(cfg, 1)
	if same.Features[1].PF.(Fixed).K != 10 {
		t.Error("factor 1 changed the config")
	}
	neg := Drifted(cfg, -5)
	if neg.Features[1].PF.(Fixed).K != 10 {
		t.Error("negative factor should behave as identity")
	}
	// The original must be untouched.
	if cfg.Features[1].PF.(Fixed).K != 10 {
		t.Error("Drifted mutated its input")
	}
}

// BatchForSize must depend on (cfg.Seed, size) alone: repeated calls agree
// exactly, calls for different sizes differ, and interleaved generation by
// other callers cannot perturb it — the property the serving comparison
// relies on to measure every system on identical inputs.
func TestBatchForSizeDeterministic(t *testing.T) {
	cfg := Scaled(ModelA(), 50)
	a, err := BatchForSize(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave unrelated generation, then regenerate.
	rng := rand.New(rand.NewSource(99))
	if _, err := GenerateBatch(cfg, 128, rng); err != nil {
		t.Fatal(err)
	}
	b, err := BatchForSize(cfg, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Features) != len(b.Features) {
		t.Fatalf("feature counts differ: %d vs %d", len(a.Features), len(b.Features))
	}
	for f := range a.Features {
		fa, fb := a.Features[f], b.Features[f]
		if !bytes.Equal(int32Bytes(fa.Offsets), int32Bytes(fb.Offsets)) {
			t.Fatalf("feature %d offsets differ across calls", f)
		}
		if len(fa.Indices) != len(fb.Indices) {
			t.Fatalf("feature %d index counts differ", f)
		}
		for i := range fa.Indices {
			if fa.Indices[i] != fb.Indices[i] {
				t.Fatalf("feature %d index %d differs", f, i)
			}
		}
	}
	// A different size draws a genuinely different batch.
	c, err := BatchForSize(cfg, 288)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Features[0].Offsets)-1 != 288 {
		t.Fatalf("size 288 batch has %d samples", len(c.Features[0].Offsets)-1)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BatchForSize(cfg, 0); err == nil {
		t.Error("size 0 accepted")
	}
}

// int32Bytes views an int32 slice as comparable bytes.
func int32Bytes(v []int32) []byte {
	out := make([]byte, 0, len(v)*4)
	for _, x := range v {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}
