package datasynth

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseArrival(t *testing.T) {
	p, err := ParseArrival("poisson", 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(Poisson); !ok || p.Mean() != 1.0/200 {
		t.Errorf("ParseArrival(poisson, 200) = %v (mean %g)", p, p.Mean())
	}
	// Empty kind defaults to Poisson — the load generator's default schedule.
	if d, err := ParseArrival("", 50); err != nil {
		t.Fatal(err)
	} else if _, ok := d.(Poisson); !ok {
		t.Errorf("ParseArrival(\"\") = %T, want Poisson", d)
	}
	f, err := ParseArrival("FIXED", 100)
	if err != nil {
		t.Fatal(err)
	}
	if gap := f.Next(nil); gap != 0.01 {
		t.Errorf("fixed gap = %g, want 0.01", gap)
	}

	for _, rate := range []float64{0, -5} {
		if _, err := ParseArrival("poisson", rate); err == nil {
			t.Errorf("ParseArrival(rate=%g) succeeded, want error", rate)
		}
	}
	if _, err := ParseArrival("bursty", 10); err == nil {
		t.Error("ParseArrival(bursty) succeeded, want error")
	}
}

// The Poisson process empirically hits its configured rate, and gaps from one
// seed replay identically — the property the precomputed loadgen schedule
// (and session determinism downstream of it) relies on.
func TestPoissonGapsSeededAndCalibrated(t *testing.T) {
	p := Poisson{Rate: 1000}
	const n = 20000
	sum := 0.0
	rng := rand.New(rand.NewSource(7))
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = p.Next(rng)
		if gaps[i] < 0 {
			t.Fatalf("gap %d negative: %g", i, gaps[i])
		}
		sum += gaps[i]
	}
	if mean := sum / n; math.Abs(mean-p.Mean()) > 0.1*p.Mean() {
		t.Errorf("empirical mean gap %g, want within 10%% of %g", mean, p.Mean())
	}
	rng2 := rand.New(rand.NewSource(7))
	for i := range gaps {
		if g := p.Next(rng2); g != gaps[i] {
			t.Fatalf("gap %d not reproducible from the seed: %g vs %g", i, g, gaps[i])
		}
	}
}

func TestParseSizeDist(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := map[string]func(int) bool{
		"fixed:256":          func(v int) bool { return v == 256 },
		"uniform:16:512":     func(v int) bool { return v >= 16 && v <= 512 },
		"NORMAL:100:10":      func(v int) bool { return v >= 1 },
		"lognormal:3:0.5":    func(v int) bool { return v >= 1 },
		"lognormal:3:0.5:64": func(v int) bool { return v >= 1 && v <= 64 },
	}
	for spec, check := range good {
		d, err := ParseSizeDist(spec)
		if err != nil {
			t.Errorf("ParseSizeDist(%q): %v", spec, err)
			continue
		}
		for i := 0; i < 100; i++ {
			if v := d.Sample(rng); !check(v) {
				t.Errorf("ParseSizeDist(%q) sampled %d out of range", spec, v)
				break
			}
		}
	}
	for _, bad := range []string{
		"", "zipf:2", "fixed", "fixed:0", "fixed:x", "uniform:16",
		"uniform:0:8", "uniform:9:8", "normal:0:1", "normal:100:-1",
		"lognormal:3", "lognormal:3:0.5:-1", "lognormal:3:0.5:x",
	} {
		if _, err := ParseSizeDist(bad); err == nil {
			t.Errorf("ParseSizeDist(%q) succeeded, want error", bad)
		}
	}
}
