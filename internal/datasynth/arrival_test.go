package datasynth

import (
	"math"
	"math/rand"
	"testing"
)

func TestParseArrival(t *testing.T) {
	p, err := ParseArrival("poisson", 200)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.(Poisson); !ok || p.Mean() != 1.0/200 {
		t.Errorf("ParseArrival(poisson, 200) = %v (mean %g)", p, p.Mean())
	}
	// Empty kind defaults to Poisson — the load generator's default schedule.
	if d, err := ParseArrival("", 50); err != nil {
		t.Fatal(err)
	} else if _, ok := d.(Poisson); !ok {
		t.Errorf("ParseArrival(\"\") = %T, want Poisson", d)
	}
	f, err := ParseArrival("FIXED", 100)
	if err != nil {
		t.Fatal(err)
	}
	if gap := f.Next(nil); gap != 0.01 {
		t.Errorf("fixed gap = %g, want 0.01", gap)
	}

	for _, rate := range []float64{0, -5} {
		if _, err := ParseArrival("poisson", rate); err == nil {
			t.Errorf("ParseArrival(rate=%g) succeeded, want error", rate)
		}
	}
	if _, err := ParseArrival("bursty", 10); err == nil {
		t.Error("ParseArrival(bursty) succeeded, want error")
	}
}

// The Poisson process empirically hits its configured rate, and gaps from one
// seed replay identically — the property the precomputed loadgen schedule
// (and session determinism downstream of it) relies on.
func TestPoissonGapsSeededAndCalibrated(t *testing.T) {
	p := Poisson{Rate: 1000}
	const n = 20000
	sum := 0.0
	rng := rand.New(rand.NewSource(7))
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = p.Next(rng)
		if gaps[i] < 0 {
			t.Fatalf("gap %d negative: %g", i, gaps[i])
		}
		sum += gaps[i]
	}
	if mean := sum / n; math.Abs(mean-p.Mean()) > 0.1*p.Mean() {
		t.Errorf("empirical mean gap %g, want within 10%% of %g", mean, p.Mean())
	}
	rng2 := rand.New(rand.NewSource(7))
	for i := range gaps {
		if g := p.Next(rng2); g != gaps[i] {
			t.Fatalf("gap %d not reproducible from the seed: %g vs %g", i, g, gaps[i])
		}
	}
}

func TestParseSizeDist(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	good := map[string]func(int) bool{
		"fixed:256":          func(v int) bool { return v == 256 },
		"uniform:16:512":     func(v int) bool { return v >= 16 && v <= 512 },
		"NORMAL:100:10":      func(v int) bool { return v >= 1 },
		"lognormal:3:0.5":    func(v int) bool { return v >= 1 },
		"lognormal:3:0.5:64": func(v int) bool { return v >= 1 && v <= 64 },
	}
	for spec, check := range good {
		d, err := ParseSizeDist(spec)
		if err != nil {
			t.Errorf("ParseSizeDist(%q): %v", spec, err)
			continue
		}
		for i := 0; i < 100; i++ {
			if v := d.Sample(rng); !check(v) {
				t.Errorf("ParseSizeDist(%q) sampled %d out of range", spec, v)
				break
			}
		}
	}
	for _, bad := range []string{
		"", "zipf:2", "fixed", "fixed:0", "fixed:x", "uniform:16",
		"uniform:0:8", "uniform:9:8", "normal:0:1", "normal:100:-1",
		"lognormal:3", "lognormal:3:0.5:-1", "lognormal:3:0.5:x",
	} {
		if _, err := ParseSizeDist(bad); err == nil {
			t.Errorf("ParseSizeDist(%q) succeeded, want error", bad)
		}
	}
}

func TestParseArrivalSpellings(t *testing.T) {
	good := map[string]string{
		"diurnal":        "diurnal(40/s, period 60s, amplitude 0.5)",
		"DIURNAL:10":     "diurnal(40/s, period 10s, amplitude 0.5)",
		"diurnal:10:0.8": "diurnal(40/s, period 10s, amplitude 0.8)",
		"flash":          "flash(40/s, x8 @ 1s+1s)",
		"flash:0.5:2:4":  "flash(40/s, x4 @ 0.5s+2s)",
	}
	for spec, want := range good {
		p, err := ParseArrival(spec, 40)
		if err != nil {
			t.Errorf("ParseArrival(%q): %v", spec, err)
			continue
		}
		if p.String() != want {
			t.Errorf("ParseArrival(%q) = %s, want %s", spec, p, want)
		}
		if p.Mean() != 1.0/40 {
			t.Errorf("ParseArrival(%q).Mean() = %g, want 1/40", spec, p.Mean())
		}
	}
	for _, bad := range []string{
		"diurnal:x", "diurnal:0", "diurnal:10:1.5", "diurnal:10:-1", "diurnal:1:2:3",
		"flash:1:2", "flash:1:2:0.5", "flash:-1:2:4", "flash:1:0:4", "flash:a:b:c",
		"poisson:5", "fixed:5",
	} {
		if _, err := ParseArrival(bad, 40); err == nil {
			t.Errorf("ParseArrival(%q) succeeded, want error", bad)
		}
	}
}

// TestDiurnalModulation checks the thinning implementation actually shapes the
// rate: arrivals cluster at the sinusoid's crest, thin out at its trough, the
// long-run rate matches the midline, and one seed replays one schedule.
func TestDiurnalModulation(t *testing.T) {
	const rate, period, amp = 1000.0, 10.0, 0.9
	d, err := NewDiurnal(rate, period, amp)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	now := 0.0
	var arrivals []float64
	for now < 5*period {
		g := d.Next(rng)
		if g < 0 {
			t.Fatalf("negative gap %g", g)
		}
		now += g
		arrivals = append(arrivals, now)
	}
	// Crest quarter (sin > 0.7): [period/8, 3*period/8) each cycle; trough
	// quarter: [5*period/8, 7*period/8).
	var crest, trough int
	for _, a := range arrivals {
		switch ph := math.Mod(a, period) / period; {
		case ph >= 0.125 && ph < 0.375:
			crest++
		case ph >= 0.625 && ph < 0.875:
			trough++
		}
	}
	if crest < 5*trough {
		t.Errorf("crest %d arrivals vs trough %d: modulation too weak for amplitude %g", crest, trough, amp)
	}
	if mean := float64(len(arrivals)) / (5 * period); math.Abs(mean-rate) > 0.1*rate {
		t.Errorf("long-run rate %g, want within 10%% of %g", mean, rate)
	}
	// Replay: a fresh process with the same seed draws the same schedule.
	d2, _ := NewDiurnal(rate, period, amp)
	rng2 := rand.New(rand.NewSource(3))
	d3, _ := NewDiurnal(rate, period, amp)
	rng3 := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		if a, b := d2.Next(rng2), d3.Next(rng3); a != b {
			t.Fatalf("gap %d not reproducible: %g vs %g", i, a, b)
		}
	}
}

// TestFlashCrowdBurst checks the burst window multiplies the arrival density
// and the baseline holds outside it.
func TestFlashCrowdBurst(t *testing.T) {
	const rate, start, dur, factor = 500.0, 1.0, 1.0, 8.0
	f, err := NewFlashCrowd(rate, start, dur, factor)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	now := 0.0
	var before, during, after int
	for now < 3 {
		now += f.Next(rng)
		switch {
		case now < start:
			before++
		case now < start+dur:
			during++
		case now < 3:
			after++
		}
	}
	if lo, hi := 0.8*rate, 1.2*rate; float64(before) < lo || float64(before) > hi ||
		float64(after) < lo || float64(after) > hi {
		t.Errorf("baseline windows off: %d before, %d after, want ~%g", before, after, rate)
	}
	if lo, hi := 0.8*rate*factor, 1.2*rate*factor; float64(during) < lo || float64(during) > hi {
		t.Errorf("burst window %d arrivals, want ~%g", during, rate*factor)
	}
}
