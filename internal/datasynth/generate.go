package datasynth

import (
	"fmt"
	"math/rand"

	"repro/internal/embedding"
)

// GenerateBatch draws one batch of batchSize samples for every feature of the
// model. Generation is deterministic given (cfg, batchSize, rng state).
func GenerateBatch(cfg *ModelConfig, batchSize int, rng *rand.Rand) (*embedding.Batch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if batchSize <= 0 {
		return nil, fmt.Errorf("datasynth: batch size must be positive, got %d", batchSize)
	}
	b := &embedding.Batch{Features: make([]embedding.FeatureBatch, len(cfg.Features))}
	for f := range cfg.Features {
		spec := &cfg.Features[f]
		z := newZipf(rng, spec.IDs, spec.Rows)
		fb := embedding.FeatureBatch{Offsets: make([]int32, 1, batchSize+1)}
		for s := 0; s < batchSize; s++ {
			pf := 0
			if spec.Coverage >= 1 || rng.Float64() < spec.Coverage {
				pf = spec.PF.Sample(rng)
			}
			for j := 0; j < pf; j++ {
				fb.Indices = append(fb.Indices, sampleID(rng, spec.IDs, spec.Rows, z))
			}
			fb.Offsets = append(fb.Offsets, int32(len(fb.Indices)))
		}
		b.Features[f] = fb
	}
	return b, nil
}

// BatchForSize draws the canonical batch of the given size for a model: the
// generator is seeded from (cfg.Seed, batchSize) alone, so every caller —
// in particular every system in a serving comparison — observes the exact
// same batch for the same size, no matter how many batches anyone else drew
// in between. Head-to-head latency tables must measure all systems on
// identical inputs; a shared generator advancing across systems breaks that.
func BatchForSize(cfg *ModelConfig, batchSize int) (*embedding.Batch, error) {
	// SplitMix64-style odd multiplier decorrelates neighbouring sizes.
	seed := cfg.Seed ^ (int64(batchSize) * -7046029254386353131)
	return GenerateBatch(cfg, batchSize, rand.New(rand.NewSource(seed)))
}

// Dataset is a sequence of batches drawn from one model config.
type Dataset struct {
	Config  *ModelConfig
	Batches []*embedding.Batch
}

// GenerateDataset draws numBatches batches with sizes drawn from sizes
// (cycled). It seeds its own generator from cfg.Seed so repeated calls agree.
func GenerateDataset(cfg *ModelConfig, numBatches int, sizes []int) (*Dataset, error) {
	if numBatches <= 0 {
		return nil, fmt.Errorf("datasynth: numBatches must be positive, got %d", numBatches)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("datasynth: at least one batch size required")
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5EED))
	ds := &Dataset{Config: cfg, Batches: make([]*embedding.Batch, 0, numBatches)}
	for i := 0; i < numBatches; i++ {
		b, err := GenerateBatch(cfg, sizes[i%len(sizes)], rng)
		if err != nil {
			return nil, err
		}
		ds.Batches = append(ds.Batches, b)
	}
	return ds, nil
}

// BuildTables materializes deterministic embedding tables for every feature.
// rowCap, when positive, truncates the ID space (and remaps indices is NOT
// done — callers must generate batches against the capped config). Use
// CapRows to derive a capped config first.
func BuildTables(cfg *ModelConfig) ([]*embedding.Table, error) {
	tables := make([]*embedding.Table, len(cfg.Features))
	for f := range cfg.Features {
		spec := &cfg.Features[f]
		t, err := embedding.NewDeterministicTable(spec.Name, spec.Rows, spec.Dim, uint64(cfg.Seed)+uint64(f))
		if err != nil {
			return nil, err
		}
		tables[f] = t
	}
	return tables, nil
}

// CapRows returns a copy of cfg with every table's row count clamped to cap,
// keeping materialized-table memory bounded in tests and examples.
func CapRows(cfg *ModelConfig, cap int) *ModelConfig {
	out := &ModelConfig{Name: cfg.Name, Seed: cfg.Seed, Features: append([]FeatureSpec(nil), cfg.Features...)}
	for i := range out.Features {
		if out.Features[i].Rows > cap {
			out.Features[i].Rows = cap
		}
	}
	return out
}

// RequestSizes models online-serving query sizes: "the batch size of most
// queries is around hundreds", capped at maxBatch (512 in the evaluation,
// where serving systems split larger requests).
func RequestSizes(n, maxBatch int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	sizes := make([]int, n)
	for i := range sizes {
		s := int(rng.NormFloat64()*96 + 256)
		if s < 16 {
			s = 16
		}
		if s > maxBatch {
			s = maxBatch
		}
		sizes[i] = s
	}
	return sizes
}

// LongTailRequest returns the batch size of the long-tail experiment of
// §VI-D: serving systems like DeepRecSys that do not split batches can see
// requests of thousands of samples.
const LongTailRequest = 2560
