package datasynth

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ArrivalProcess draws inter-arrival gaps for an open-loop request stream, in
// the style of scylla-bench's composable rate distributions: the load
// generator precomputes every intended send time from one seeded process, so
// a slow server cannot slow the arrival schedule down (that back-pressure is
// exactly the coordinated-omission bug open-loop generation exists to avoid).
type ArrivalProcess interface {
	// Next draws the gap to the next arrival, in seconds (>= 0).
	Next(rng *rand.Rand) float64
	// Mean returns the expected gap in seconds (1/rate).
	Mean() float64
	// String describes the process for logs and docs.
	String() string
}

// FixedInterval spaces arrivals exactly 1/Rate apart — the deterministic
// pacing of a closed benchmark loop, kept for contrast with Poisson.
type FixedInterval struct{ Rate float64 }

// Next implements ArrivalProcess.
func (f FixedInterval) Next(*rand.Rand) float64 { return 1 / f.Rate }

// Mean implements ArrivalProcess.
func (f FixedInterval) Mean() float64 { return 1 / f.Rate }

// String implements ArrivalProcess.
func (f FixedInterval) String() string { return fmt.Sprintf("fixed(%g/s)", f.Rate) }

// Poisson draws exponential gaps with mean 1/Rate — the memoryless arrival
// process of independent users, and the default load-generator schedule.
type Poisson struct{ Rate float64 }

// Next implements ArrivalProcess.
func (p Poisson) Next(rng *rand.Rand) float64 { return rng.ExpFloat64() / p.Rate }

// Mean implements ArrivalProcess.
func (p Poisson) Mean() float64 { return 1 / p.Rate }

// String implements ArrivalProcess.
func (p Poisson) String() string { return fmt.Sprintf("poisson(%g/s)", p.Rate) }

// Diurnal is a sinusoid-modulated Poisson process: the instantaneous rate is
// Rate * (1 + Amplitude * sin(2*pi*t/Period)), the compressed-day traffic
// shape of a production serving fleet. Gaps are drawn by thinning against the
// peak rate, so the schedule stays exact (no discretization of the rate
// curve). The process is stateful — it tracks its own elapsed time — so a
// fresh value (or NewDiurnal) is needed per stream.
type Diurnal struct {
	// Rate is the mean rate in requests per second (the sinusoid's midline).
	Rate float64
	// Period is the modulation period in seconds.
	Period float64
	// Amplitude is the relative swing in [0, 1]: 0 degrades to plain Poisson,
	// 1 idles completely at the trough.
	Amplitude float64

	t float64 // elapsed virtual time
}

// NewDiurnal validates and builds a Diurnal process.
func NewDiurnal(rate, period, amplitude float64) (*Diurnal, error) {
	switch {
	case rate <= 0:
		return nil, fmt.Errorf("datasynth: arrival rate must be positive, got %g", rate)
	case period <= 0:
		return nil, fmt.Errorf("datasynth: diurnal period must be positive, got %g", period)
	case amplitude < 0 || amplitude > 1:
		return nil, fmt.Errorf("datasynth: diurnal amplitude %g outside [0,1]", amplitude)
	}
	return &Diurnal{Rate: rate, Period: period, Amplitude: amplitude}, nil
}

// Next implements ArrivalProcess by thinning: draw candidate gaps at the peak
// rate and accept each with probability rate(t)/peak.
func (d *Diurnal) Next(rng *rand.Rand) float64 {
	peak := d.Rate * (1 + d.Amplitude)
	start := d.t
	for {
		d.t += rng.ExpFloat64() / peak
		lambda := d.Rate * (1 + d.Amplitude*math.Sin(2*math.Pi*d.t/d.Period))
		if rng.Float64()*peak <= lambda {
			return d.t - start
		}
	}
}

// Mean implements ArrivalProcess: the sinusoid averages out over a period, so
// the long-run mean gap is the midline's.
func (d *Diurnal) Mean() float64 { return 1 / d.Rate }

// String implements ArrivalProcess.
func (d *Diurnal) String() string {
	return fmt.Sprintf("diurnal(%g/s, period %gs, amplitude %g)", d.Rate, d.Period, d.Amplitude)
}

// FlashCrowd is a baseline Poisson process with one burst window: during
// [Start, Start+Duration) the rate multiplies by Factor — the flash-crowd /
// breaking-news shape that stresses admission control and cache allocations
// tuned on the baseline. Gaps are drawn by thinning against the burst rate.
// Stateful like Diurnal: one value per stream.
type FlashCrowd struct {
	// Rate is the baseline rate in requests per second.
	Rate float64
	// Start and Duration bound the burst window in seconds.
	Start, Duration float64
	// Factor multiplies the rate inside the window (>= 1).
	Factor float64

	t float64 // elapsed virtual time
}

// NewFlashCrowd validates and builds a FlashCrowd process.
func NewFlashCrowd(rate, start, duration, factor float64) (*FlashCrowd, error) {
	switch {
	case rate <= 0:
		return nil, fmt.Errorf("datasynth: arrival rate must be positive, got %g", rate)
	case start < 0:
		return nil, fmt.Errorf("datasynth: flash start must be >= 0, got %g", start)
	case duration <= 0:
		return nil, fmt.Errorf("datasynth: flash duration must be positive, got %g", duration)
	case factor < 1:
		return nil, fmt.Errorf("datasynth: flash factor must be >= 1, got %g", factor)
	}
	return &FlashCrowd{Rate: rate, Start: start, Duration: duration, Factor: factor}, nil
}

// Next implements ArrivalProcess by thinning against the burst rate.
func (f *FlashCrowd) Next(rng *rand.Rand) float64 {
	peak := f.Rate * f.Factor
	start := f.t
	for {
		f.t += rng.ExpFloat64() / peak
		lambda := f.Rate
		if f.t >= f.Start && f.t < f.Start+f.Duration {
			lambda = peak
		}
		if rng.Float64()*peak <= lambda {
			return f.t - start
		}
	}
}

// Mean implements ArrivalProcess: the burst window is one-shot, so the
// long-run mean gap is the baseline's.
func (f *FlashCrowd) Mean() float64 { return 1 / f.Rate }

// String implements ArrivalProcess.
func (f *FlashCrowd) String() string {
	return fmt.Sprintf("flash(%g/s, x%g @ %gs+%gs)", f.Rate, f.Factor, f.Start, f.Duration)
}

// ParseArrival builds an ArrivalProcess from its CLI spelling, at rate
// requests per second (the Diurnal midline / FlashCrowd baseline):
//
//	poisson                          memoryless arrivals (default)
//	fixed                            deterministic 1/rate spacing
//	diurnal[:PERIOD[:AMPLITUDE]]     sinusoid-modulated Poisson
//	                                 (default period 60s, amplitude 0.5)
//	flash[:START:DURATION:FACTOR]    Poisson with one burst window
//	                                 (default x8 burst over [1s, 2s))
//
// Rate must be positive.
func ParseArrival(kind string, rate float64) (ArrivalProcess, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("datasynth: arrival rate must be positive, got %g", rate)
	}
	parts := strings.Split(strings.ToLower(kind), ":")
	num := func(s string) (float64, bool) {
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil
	}
	switch parts[0] {
	case "poisson", "":
		if len(parts) != 1 {
			return nil, fmt.Errorf("datasynth: arrival process %q takes no parameters", parts[0])
		}
		return Poisson{Rate: rate}, nil
	case "fixed":
		if len(parts) != 1 {
			return nil, fmt.Errorf("datasynth: arrival process %q takes no parameters", parts[0])
		}
		return FixedInterval{Rate: rate}, nil
	case "diurnal":
		period, amplitude := 60.0, 0.5
		if len(parts) > 3 {
			return nil, fmt.Errorf("datasynth: bad arrival spec %q (want diurnal[:PERIOD[:AMPLITUDE]])", kind)
		}
		if len(parts) >= 2 {
			v, ok := num(parts[1])
			if !ok {
				return nil, fmt.Errorf("datasynth: bad diurnal period in %q", kind)
			}
			period = v
		}
		if len(parts) == 3 {
			v, ok := num(parts[2])
			if !ok {
				return nil, fmt.Errorf("datasynth: bad diurnal amplitude in %q", kind)
			}
			amplitude = v
		}
		return NewDiurnal(rate, period, amplitude)
	case "flash":
		start, duration, factor := 1.0, 1.0, 8.0
		switch len(parts) {
		case 1:
		case 4:
			var ok1, ok2, ok3 bool
			start, ok1 = num(parts[1])
			duration, ok2 = num(parts[2])
			factor, ok3 = num(parts[3])
			if !ok1 || !ok2 || !ok3 {
				return nil, fmt.Errorf("datasynth: bad arrival spec %q (want flash[:START:DURATION:FACTOR])", kind)
			}
		default:
			return nil, fmt.Errorf("datasynth: bad arrival spec %q (want flash[:START:DURATION:FACTOR])", kind)
		}
		return NewFlashCrowd(rate, start, duration, factor)
	default:
		return nil, fmt.Errorf("datasynth: unknown arrival process %q (want poisson, fixed, diurnal or flash)", kind)
	}
}

// ParseSizeDist builds a request-size Dist from its CLI spelling:
// "fixed:K", "uniform:LO:HI", "normal:MU:SIGMA" or "lognormal:MU:SIGMA[:MAX]".
func ParseSizeDist(spec string) (Dist, error) {
	parts := strings.Split(spec, ":")
	bad := func() (Dist, error) {
		return nil, fmt.Errorf("datasynth: bad size distribution %q (want fixed:K, uniform:LO:HI, normal:MU:SIGMA or lognormal:MU:SIGMA[:MAX])", spec)
	}
	num := func(s string) (float64, bool) {
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil
	}
	switch strings.ToLower(parts[0]) {
	case "fixed":
		if len(parts) != 2 {
			return bad()
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k <= 0 {
			return bad()
		}
		return Fixed{K: k}, nil
	case "uniform":
		if len(parts) != 3 {
			return bad()
		}
		lo, err1 := strconv.Atoi(parts[1])
		hi, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || lo <= 0 || hi < lo {
			return bad()
		}
		return Uniform{Lo: lo, Hi: hi}, nil
	case "normal":
		if len(parts) != 3 {
			return bad()
		}
		mu, ok1 := num(parts[1])
		sigma, ok2 := num(parts[2])
		if !ok1 || !ok2 || mu <= 0 || sigma < 0 {
			return bad()
		}
		return Normal{Mu: mu, Sigma: sigma}, nil
	case "lognormal":
		if len(parts) != 3 && len(parts) != 4 {
			return bad()
		}
		mu, ok1 := num(parts[1])
		sigma, ok2 := num(parts[2])
		if !ok1 || !ok2 || sigma < 0 {
			return bad()
		}
		max := 0
		if len(parts) == 4 {
			m, err := strconv.Atoi(parts[3])
			if err != nil || m < 0 {
				return bad()
			}
			max = m
		}
		return LogNormal{Mu: mu, Sigma: sigma, Max: max}, nil
	default:
		return bad()
	}
}
