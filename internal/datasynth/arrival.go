package datasynth

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// ArrivalProcess draws inter-arrival gaps for an open-loop request stream, in
// the style of scylla-bench's composable rate distributions: the load
// generator precomputes every intended send time from one seeded process, so
// a slow server cannot slow the arrival schedule down (that back-pressure is
// exactly the coordinated-omission bug open-loop generation exists to avoid).
type ArrivalProcess interface {
	// Next draws the gap to the next arrival, in seconds (>= 0).
	Next(rng *rand.Rand) float64
	// Mean returns the expected gap in seconds (1/rate).
	Mean() float64
	// String describes the process for logs and docs.
	String() string
}

// FixedInterval spaces arrivals exactly 1/Rate apart — the deterministic
// pacing of a closed benchmark loop, kept for contrast with Poisson.
type FixedInterval struct{ Rate float64 }

// Next implements ArrivalProcess.
func (f FixedInterval) Next(*rand.Rand) float64 { return 1 / f.Rate }

// Mean implements ArrivalProcess.
func (f FixedInterval) Mean() float64 { return 1 / f.Rate }

// String implements ArrivalProcess.
func (f FixedInterval) String() string { return fmt.Sprintf("fixed(%g/s)", f.Rate) }

// Poisson draws exponential gaps with mean 1/Rate — the memoryless arrival
// process of independent users, and the default load-generator schedule.
type Poisson struct{ Rate float64 }

// Next implements ArrivalProcess.
func (p Poisson) Next(rng *rand.Rand) float64 { return rng.ExpFloat64() / p.Rate }

// Mean implements ArrivalProcess.
func (p Poisson) Mean() float64 { return 1 / p.Rate }

// String implements ArrivalProcess.
func (p Poisson) String() string { return fmt.Sprintf("poisson(%g/s)", p.Rate) }

// ParseArrival builds an ArrivalProcess from its CLI spelling: "poisson" or
// "fixed", at rate requests per second. Rate must be positive.
func ParseArrival(kind string, rate float64) (ArrivalProcess, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("datasynth: arrival rate must be positive, got %g", rate)
	}
	switch strings.ToLower(kind) {
	case "poisson", "":
		return Poisson{Rate: rate}, nil
	case "fixed":
		return FixedInterval{Rate: rate}, nil
	default:
		return nil, fmt.Errorf("datasynth: unknown arrival process %q (want poisson or fixed)", kind)
	}
}

// ParseSizeDist builds a request-size Dist from its CLI spelling:
// "fixed:K", "uniform:LO:HI", "normal:MU:SIGMA" or "lognormal:MU:SIGMA[:MAX]".
func ParseSizeDist(spec string) (Dist, error) {
	parts := strings.Split(spec, ":")
	bad := func() (Dist, error) {
		return nil, fmt.Errorf("datasynth: bad size distribution %q (want fixed:K, uniform:LO:HI, normal:MU:SIGMA or lognormal:MU:SIGMA[:MAX])", spec)
	}
	num := func(s string) (float64, bool) {
		v, err := strconv.ParseFloat(s, 64)
		return v, err == nil
	}
	switch strings.ToLower(parts[0]) {
	case "fixed":
		if len(parts) != 2 {
			return bad()
		}
		k, err := strconv.Atoi(parts[1])
		if err != nil || k <= 0 {
			return bad()
		}
		return Fixed{K: k}, nil
	case "uniform":
		if len(parts) != 3 {
			return bad()
		}
		lo, err1 := strconv.Atoi(parts[1])
		hi, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || lo <= 0 || hi < lo {
			return bad()
		}
		return Uniform{Lo: lo, Hi: hi}, nil
	case "normal":
		if len(parts) != 3 {
			return bad()
		}
		mu, ok1 := num(parts[1])
		sigma, ok2 := num(parts[2])
		if !ok1 || !ok2 || mu <= 0 || sigma < 0 {
			return bad()
		}
		return Normal{Mu: mu, Sigma: sigma}, nil
	case "lognormal":
		if len(parts) != 3 && len(parts) != 4 {
			return bad()
		}
		mu, ok1 := num(parts[1])
		sigma, ok2 := num(parts[2])
		if !ok1 || !ok2 || sigma < 0 {
			return bad()
		}
		max := 0
		if len(parts) == 4 {
			m, err := strconv.Atoi(parts[3])
			if err != nil || m < 0 {
				return bad()
			}
			max = m
		}
		return LogNormal{Mu: mu, Sigma: sigma, Max: max}, nil
	default:
		return bad()
	}
}
