// Package datasynth synthesizes recommendation-model datasets with
// controlled feature heterogeneity, reproducing the paper's data_synthesis
// artifact: per-feature pooling-factor distributions, embedding-table shapes,
// the five evaluation models A-E of Table I, the 10,000-feature scalability
// set, the MLPerf-like low-heterogeneity set, and a serving-request generator
// with long-tail batches.
package datasynth

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a distribution over non-negative integers, used for per-sample
// pooling factors.
type Dist interface {
	// Sample draws one value using rng.
	Sample(rng *rand.Rand) int
	// Mean returns the expected value.
	Mean() float64
	// Std returns the standard deviation.
	Std() float64
	// String describes the distribution for logs and docs.
	String() string
}

// Fixed always returns K (the one-hot case is Fixed{1}).
type Fixed struct{ K int }

// Sample implements Dist.
func (f Fixed) Sample(*rand.Rand) int { return f.K }

// Mean implements Dist.
func (f Fixed) Mean() float64 { return float64(f.K) }

// Std implements Dist.
func (f Fixed) Std() float64 { return 0 }

// String implements Dist.
func (f Fixed) String() string { return fmt.Sprintf("fixed(%d)", f.K) }

// Uniform draws uniformly from [Lo, Hi].
type Uniform struct{ Lo, Hi int }

// Sample implements Dist.
func (u Uniform) Sample(rng *rand.Rand) int {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Intn(u.Hi-u.Lo+1)
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return float64(u.Lo+u.Hi) / 2 }

// Std implements Dist.
func (u Uniform) Std() float64 {
	n := float64(u.Hi - u.Lo + 1)
	return math.Sqrt((n*n - 1) / 12)
}

// String implements Dist.
func (u Uniform) String() string { return fmt.Sprintf("uniform(%d,%d)", u.Lo, u.Hi) }

// Normal draws from N(Mu, Sigma²), truncated at zero and rounded. This is the
// pooling-factor model of the paper's Figure 3 (N(50,10²)).
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample implements Dist.
func (n Normal) Sample(rng *rand.Rand) int {
	v := rng.NormFloat64()*n.Sigma + n.Mu
	if v < 0 {
		v = 0
	}
	return int(math.Round(v))
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// Std implements Dist.
func (n Normal) Std() float64 { return n.Sigma }

// String implements Dist.
func (n Normal) String() string { return fmt.Sprintf("normal(%.1f,%.1f)", n.Mu, n.Sigma) }

// LogNormal draws heavy-tailed pooling factors: exp(N(Mu, Sigma²)). The paper
// notes per-feature standard deviations "up to hundreds"; this distribution
// provides them.
type LogNormal struct {
	Mu    float64
	Sigma float64
	Max   int // clamp, 0 = unbounded
}

// Sample implements Dist.
func (l LogNormal) Sample(rng *rand.Rand) int {
	v := math.Exp(rng.NormFloat64()*l.Sigma + l.Mu)
	k := int(math.Round(v))
	if l.Max > 0 && k > l.Max {
		k = l.Max
	}
	return k
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

// Std implements Dist.
func (l LogNormal) Std() float64 {
	m := l.Mean()
	return m * math.Sqrt(math.Exp(l.Sigma*l.Sigma)-1)
}

// String implements Dist.
func (l LogNormal) String() string { return fmt.Sprintf("lognormal(%.2f,%.2f)", l.Mu, l.Sigma) }

// IDDist selects how lookup IDs are drawn from the table's row space.
type IDDist int

const (
	// IDUniform draws IDs uniformly: no reuse beyond birthday collisions.
	IDUniform IDDist = iota
	// IDZipf draws IDs Zipf-skewed: hot rows are reused heavily, which the
	// L2 model rewards.
	IDZipf
)

// String implements fmt.Stringer.
func (d IDDist) String() string {
	if d == IDZipf {
		return "zipf"
	}
	return "uniform"
}

// ZipfSkew is the exponent of the Zipf ID generator — exported so serving-side
// consumers (the embedding-cache tier's heat profiles, the uvmcache hit-rate
// analysis) can stay consistent with the data the synthesizer emits.
const ZipfSkew = 1.07

// sampleID draws one row ID in [0, rows).
func sampleID(rng *rand.Rand, kind IDDist, rows int, z *rand.Zipf) int32 {
	if kind == IDZipf && z != nil {
		return int32(z.Uint64())
	}
	return int32(rng.Intn(rows))
}

// newZipf builds the generator for a table with rows entries (nil for the
// uniform case).
func newZipf(rng *rand.Rand, kind IDDist, rows int) *rand.Zipf {
	if kind != IDZipf {
		return nil
	}
	return rand.NewZipf(rng, ZipfSkew, 1, uint64(rows-1))
}
