package datasynth

import (
	"fmt"
	"sort"

	"repro/internal/embedding"
)

// DriftStep is one step of a piecewise-constant drift schedule: from virtual
// time At onward, multi-hot pooling-factor distributions are scaled by
// Factor (see Drifted).
type DriftStep struct {
	At     float64
	Factor float64
}

// DriftSchedule injects distribution shift into a served trace: a
// piecewise-constant, time-varying pooling-factor scale. Before the first
// step the factor is 1 (the unmodified model); each step replaces the factor
// from its time onward. This is the workload-side half of the paper's
// §IV-A3 re-tuning story — the data drifts while the serving loop runs, and
// the supervisor has to notice and re-tune.
type DriftSchedule struct {
	Steps []DriftStep
}

// StepDrift returns the simplest schedule: factor 1 until at, then factor.
func StepDrift(at, factor float64) *DriftSchedule {
	return &DriftSchedule{Steps: []DriftStep{{At: at, Factor: factor}}}
}

// Validate checks that steps are strictly ascending in time with positive
// factors.
func (d *DriftSchedule) Validate() error {
	for i, s := range d.Steps {
		if s.Factor <= 0 {
			return fmt.Errorf("datasynth: drift step %d: factor must be positive, got %g", i, s.Factor)
		}
		if i > 0 && s.At <= d.Steps[i-1].At {
			return fmt.Errorf("datasynth: drift step %d at %g not after step %d at %g",
				i, s.At, i-1, d.Steps[i-1].At)
		}
	}
	return nil
}

// step returns the index of the step in effect at time t, or -1 before the
// first step.
func (d *DriftSchedule) step(t float64) int {
	return sort.Search(len(d.Steps), func(i int) bool { return d.Steps[i].At > t }) - 1
}

// FactorAt returns the pooling-factor scale in effect at virtual time t.
func (d *DriftSchedule) FactorAt(t float64) float64 {
	if i := d.step(t); i >= 0 {
		return d.Steps[i].Factor
	}
	return 1
}

// PhaseStart returns the start time of the drift phase in effect at t (0
// before the first step). It is the canonical phase normalizer for
// trace.MemoTimedService: all times within one phase share batch statistics,
// so one measurement per (phase, size) covers them all.
func (d *DriftSchedule) PhaseStart(t float64) float64 {
	if i := d.step(t); i >= 0 {
		return d.Steps[i].At
	}
	return 0
}

// ConfigAt returns cfg scaled by the drift factor in effect at time t.
func (d *DriftSchedule) ConfigAt(cfg *ModelConfig, t float64) *ModelConfig {
	f := d.FactorAt(t)
	if f == 1 {
		return cfg
	}
	return Drifted(cfg, f)
}

// BatchForSize draws the canonical batch of the given size at virtual time
// t: BatchForSize's determinism per (config, size), extended with the drift
// phase — every caller observing the same (phase, size) sees the exact same
// batch, and batches change precisely at the schedule's steps.
func (d *DriftSchedule) BatchForSize(cfg *ModelConfig, t float64, size int) (*embedding.Batch, error) {
	return BatchForSize(d.ConfigAt(cfg, t), size)
}
