package datasynth

import (
	"math"
	"sort"

	"repro/internal/embedding"
)

// DimHistogram counts features per embedding dimension — the data behind the
// paper's Figure 2(a).
func DimHistogram(cfg *ModelConfig) map[int]int {
	h := make(map[int]int)
	for i := range cfg.Features {
		h[cfg.Features[i].Dim]++
	}
	return h
}

// SortedDims returns the histogram keys in ascending order.
func SortedDims(h map[int]int) []int {
	dims := make([]int, 0, len(h))
	for d := range h {
		dims = append(dims, d)
	}
	sort.Ints(dims)
	return dims
}

// PoolingFactorSeries extracts the per-sample pooling factors of one feature
// from a batch — the data behind Figure 2(b).
func PoolingFactorSeries(b *embedding.Batch, feature int) []int {
	fb := &b.Features[feature]
	out := make([]int, fb.BatchSize())
	for i := range out {
		out[i] = fb.PoolingFactor(i)
	}
	return out
}

// FeatureStats summarizes one feature's workload over a set of batches.
type FeatureStats struct {
	Feature   int
	Dim       int
	MeanPF    float64
	StdPF     float64
	MaxPF     int
	ZeroFrac  float64 // fraction of samples with the feature absent
	TotalRows int
}

// CollectFeatureStats computes workload statistics per feature over batches.
func CollectFeatureStats(cfg *ModelConfig, batches []*embedding.Batch) []FeatureStats {
	stats := make([]FeatureStats, len(cfg.Features))
	for f := range cfg.Features {
		var sum, sumSq float64
		var n, zero, maxPF, rows int
		for _, b := range batches {
			fb := &b.Features[f]
			for i := 0; i < fb.BatchSize(); i++ {
				pf := fb.PoolingFactor(i)
				sum += float64(pf)
				sumSq += float64(pf) * float64(pf)
				n++
				if pf == 0 {
					zero++
				}
				if pf > maxPF {
					maxPF = pf
				}
			}
			rows += fb.TotalRows()
		}
		st := FeatureStats{Feature: f, Dim: cfg.Features[f].Dim, MaxPF: maxPF, TotalRows: rows}
		if n > 0 {
			st.MeanPF = sum / float64(n)
			variance := sumSq/float64(n) - st.MeanPF*st.MeanPF
			if variance > 0 {
				st.StdPF = math.Sqrt(variance)
			}
			st.ZeroFrac = float64(zero) / float64(n)
		}
		stats[f] = st
	}
	return stats
}

// HeterogeneityIndex quantifies inter-feature heterogeneity as the
// coefficient of variation of per-feature mean work (meanPF × dim). Models
// A-E score high; the MLPerf-like set scores near zero.
func HeterogeneityIndex(stats []FeatureStats) float64 {
	if len(stats) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, s := range stats {
		w := s.MeanPF * float64(s.Dim)
		sum += w
		sumSq += w * w
	}
	n := float64(len(stats))
	mean := sum / n
	if mean == 0 {
		return 0
	}
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean
}
