package datasynth_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/preproc"
)

// FuzzBatchRoundTripPreproc drives fuzzed (seed, size, drift, preproc
// knobs) through the full synthetic data path: model config -> drifted
// config -> canonical batch -> preprocessing pipeline. The generator must
// stay deterministic, the CSR invariants must hold at every stage, and each
// preprocessing op must preserve its contract (hash keeps IDs in range,
// clip bounds pooling factors, dedup leaves no within-sample duplicates).
func FuzzBatchRoundTripPreproc(f *testing.F) {
	f.Add(int64(1), uint8(16), float64(1), uint8(4), uint64(0))
	f.Add(int64(1003), uint8(1), float64(4), uint8(1), uint64(0x9E3779B97F4A7C15))
	f.Add(int64(-77), uint8(64), float64(0.25), uint8(32), uint64(42))
	f.Add(int64(7717), uint8(33), float64(7.5), uint8(7), uint64(1))

	base := datasynth.Scaled(datasynth.ModelC(), 100) // 8 multi-hot features
	f.Fuzz(func(t *testing.T, seed int64, rawSize uint8, factor float64, rawClip uint8, hashSeed uint64) {
		size := 1 + int(rawSize)%64
		clip := 1 + int(rawClip)%32
		if math.IsNaN(factor) || math.IsInf(factor, 0) {
			factor = 1
		}
		factor = math.Abs(factor)
		if factor < 1.0/16 || factor > 16 {
			factor = 1 + math.Mod(factor, 15)
		}

		cfg := &datasynth.ModelConfig{Name: base.Name, Features: base.Features, Seed: seed}
		drifted := datasynth.Drifted(cfg, factor)
		if err := drifted.Validate(); err != nil {
			t.Fatalf("drifted config invalid (factor %g): %v", factor, err)
		}

		b, err := datasynth.BatchForSize(drifted, size)
		if err != nil {
			t.Fatalf("BatchForSize(%d): %v", size, err)
		}
		if got := b.BatchSize(); got != size {
			t.Fatalf("batch size %d, want %d", got, size)
		}
		again, err := datasynth.BatchForSize(drifted, size)
		if err != nil {
			t.Fatalf("BatchForSize replay: %v", err)
		}
		if !reflect.DeepEqual(b, again) {
			t.Fatalf("BatchForSize not deterministic for (seed %d, size %d, factor %g)", seed, size, factor)
		}

		ops := []preproc.Op{
			preproc.HashMod{Seed: hashSeed},
			preproc.Clip{MaxPF: clip},
			preproc.Dedup{},
		}
		for fi := range b.Features {
			rows := drifted.Features[fi].Rows
			fb := &b.Features[fi]
			if err := fb.Validate(rows); err != nil {
				t.Fatalf("feature %d: generated batch invalid: %v", fi, err)
			}
			out, err := preproc.ApplyAll(ops, fb, rows)
			if err != nil {
				t.Fatalf("feature %d: ApplyAll: %v", fi, err)
			}
			if err := out.Validate(rows); err != nil {
				t.Fatalf("feature %d: preprocessed batch invalid: %v", fi, err)
			}
			if out.BatchSize() != size {
				t.Fatalf("feature %d: preproc changed batch size %d -> %d", fi, size, out.BatchSize())
			}
			for s := 0; s < size; s++ {
				ids := out.Sample(s)
				if len(ids) > clip {
					t.Fatalf("feature %d sample %d: pooling factor %d exceeds clip %d", fi, s, len(ids), clip)
				}
				if orig := fb.PoolingFactor(s); len(ids) > orig {
					t.Fatalf("feature %d sample %d: preproc grew pooling factor %d -> %d", fi, s, orig, len(ids))
				}
				seen := make(map[int32]bool, len(ids))
				for _, id := range ids {
					if seen[id] {
						t.Fatalf("feature %d sample %d: duplicate id %d survived Dedup", fi, s, id)
					}
					seen[id] = true
				}
			}
			// The pipeline must be a pure function of its input.
			out2, err := preproc.ApplyAll(ops, fb, rows)
			if err != nil {
				t.Fatalf("feature %d: ApplyAll replay: %v", fi, err)
			}
			if !reflect.DeepEqual(out, out2) {
				t.Fatalf("feature %d: ApplyAll not deterministic", fi)
			}
		}
	})
}

// FuzzDriftScheduleBatches pins the phase semantics the continuous serving
// loop depends on: DriftSchedule.BatchForSize must be constant within a
// phase, change exactly at the step boundary, and agree with the plain
// generator before the first step.
func FuzzDriftScheduleBatches(f *testing.F) {
	f.Add(int64(9), uint8(32), float64(0.5), float64(4))
	f.Add(int64(1003), uint8(8), float64(0.01), float64(2))
	f.Add(int64(5), uint8(48), float64(1.5), float64(8))

	base := datasynth.Scaled(datasynth.ModelC(), 100)
	f.Fuzz(func(t *testing.T, seed int64, rawSize uint8, at, factor float64) {
		size := 1 + int(rawSize)%64
		if math.IsNaN(at) || math.IsInf(at, 0) || at <= 0 {
			at = 0.5
		}
		if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
			factor = 4
		}
		if factor > 16 {
			factor = 16
		}

		cfg := &datasynth.ModelConfig{Name: base.Name, Features: base.Features, Seed: seed}
		d := datasynth.StepDrift(at, factor)
		if err := d.Validate(); err != nil {
			t.Fatalf("StepDrift(%g, %g): %v", at, factor, err)
		}

		before, err := d.BatchForSize(cfg, at/2, size)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := datasynth.BatchForSize(cfg, size)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(before, plain) {
			t.Fatalf("pre-drift batch differs from the undrifted generator")
		}

		atStep, err := d.BatchForSize(cfg, at, size)
		if err != nil {
			t.Fatal(err)
		}
		later, err := d.BatchForSize(cfg, at*2, size)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(atStep, later) {
			t.Fatalf("two times inside the drifted phase produced different batches")
		}
		if phase := d.PhaseStart(at * 2); phase != at {
			t.Fatalf("PhaseStart(%g) = %g, want %g", at*2, phase, at)
		}
		if phase := d.PhaseStart(at / 2); phase != 0 {
			t.Fatalf("PhaseStart(%g) = %g, want 0", at/2, phase)
		}
	})
}
