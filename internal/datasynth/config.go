package datasynth

import (
	"fmt"
	"math"
	"math/rand"
)

// FeatureSpec describes one feature field: its embedding-table shape and the
// statistical behaviour of its lookup workload.
type FeatureSpec struct {
	Name string
	Dim  int // embedding dimension
	Rows int // table rows (ID space)

	// PF is the pooling-factor distribution; Fixed{1} denotes one-hot.
	PF Dist

	// Coverage is the probability a sample carries this feature at all.
	// Samples that miss the feature have pooling factor 0 (the "absence of
	// features" dynamics of §II-C).
	Coverage float64

	// IDs selects the row-ID distribution.
	IDs IDDist
}

// OneHot reports whether the feature always has exactly one lookup ID.
func (f *FeatureSpec) OneHot() bool {
	fixed, ok := f.PF.(Fixed)
	return ok && fixed.K == 1 && f.Coverage >= 1
}

// Validate checks the spec.
func (f *FeatureSpec) Validate() error {
	switch {
	case f.Dim <= 0:
		return fmt.Errorf("datasynth: feature %q: dim must be positive, got %d", f.Name, f.Dim)
	case f.Rows <= 1:
		return fmt.Errorf("datasynth: feature %q: rows must be > 1, got %d", f.Name, f.Rows)
	case f.PF == nil:
		return fmt.Errorf("datasynth: feature %q: nil pooling-factor distribution", f.Name)
	case f.Coverage < 0 || f.Coverage > 1:
		return fmt.Errorf("datasynth: feature %q: coverage %g outside [0,1]", f.Name, f.Coverage)
	}
	return nil
}

// ModelConfig is a full synthetic model: a list of feature specs plus the
// seed that makes generation reproducible.
type ModelConfig struct {
	Name     string
	Features []FeatureSpec
	Seed     int64
}

// Validate checks every feature spec.
func (m *ModelConfig) Validate() error {
	if len(m.Features) == 0 {
		return fmt.Errorf("datasynth: model %q has no features", m.Name)
	}
	for i := range m.Features {
		if err := m.Features[i].Validate(); err != nil {
			return fmt.Errorf("datasynth: model %q feature %d: %w", m.Name, i, err)
		}
	}
	return nil
}

// CountHot returns the number of one-hot and multi-hot features (Table I).
func (m *ModelConfig) CountHot() (oneHot, multiHot int) {
	for i := range m.Features {
		if m.Features[i].OneHot() {
			oneHot++
		} else {
			multiHot++
		}
	}
	return oneHot, multiHot
}

// DimRange returns the smallest and largest embedding dimension (Table I).
func (m *ModelConfig) DimRange() (lo, hi int) {
	lo, hi = m.Features[0].Dim, m.Features[0].Dim
	for i := range m.Features {
		d := m.Features[i].Dim
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return lo, hi
}

// dimChoices is the embedding-dimension palette of models A-C, skewed toward
// small dimensions as in the paper's Figure 2(a) ("single digits to
// hundreds").
var dimChoices = []struct {
	dim    int
	weight int
}{
	{4, 25}, {8, 20}, {16, 15}, {32, 15}, {64, 15}, {128, 10},
}

func pickDim(rng *rand.Rand) int {
	total := 0
	for _, c := range dimChoices {
		total += c.weight
	}
	r := rng.Intn(total)
	for _, c := range dimChoices {
		if r < c.weight {
			return c.dim
		}
		r -= c.weight
	}
	return dimChoices[len(dimChoices)-1].dim
}

// pickRows draws a table row count between 2^10 and 2^17.
func pickRows(rng *rand.Rand) int {
	return 1 << (10 + rng.Intn(8))
}

// pickMultiHotPF draws a heterogeneous multi-hot pooling-factor distribution:
// a mix of fixed, uniform, normal-with-coverage and heavy-tailed lognormal
// behaviours so per-feature means span single digits to hundreds.
func pickMultiHotPF(rng *rand.Rand) (Dist, float64) {
	switch rng.Intn(4) {
	case 0:
		return Fixed{K: 2 + rng.Intn(99)}, 1
	case 1:
		return Uniform{Lo: 1, Hi: 2 + rng.Intn(199)}, 1
	case 2:
		mean := 10 + rng.Float64()*190
		sigma := mean * (0.1 + rng.Float64()*0.5)
		coverage := 0.3 + rng.Float64()*0.7
		return Normal{Mu: mean, Sigma: sigma}, coverage
	default:
		mu := 1.0 + rng.Float64()*3.0 // median e..e^4
		sigma := 0.5 + rng.Float64()*1.0
		return LogNormal{Mu: mu, Sigma: sigma, Max: 800}, 1
	}
}

// buildMixedModel constructs a Table-I style model with the given one-hot /
// multi-hot split. fixedDim <= 0 draws dims from the heterogeneous palette.
func buildMixedModel(name string, oneHot, multiHot, fixedDim int, seed int64) *ModelConfig {
	rng := rand.New(rand.NewSource(seed))
	n := oneHot + multiHot
	cfg := &ModelConfig{Name: name, Seed: seed, Features: make([]FeatureSpec, 0, n)}
	for i := 0; i < n; i++ {
		dim := fixedDim
		if dim <= 0 {
			dim = pickDim(rng)
		}
		spec := FeatureSpec{
			Name: fmt.Sprintf("%s_f%04d", name, i),
			Dim:  dim,
			Rows: pickRows(rng),
		}
		if i < oneHot {
			spec.PF = Fixed{K: 1}
			spec.Coverage = 1
		} else {
			spec.PF, spec.Coverage = pickMultiHotPF(rng)
		}
		if rng.Intn(3) == 0 {
			spec.IDs = IDZipf
		}
		cfg.Features = append(cfg.Features, spec)
	}
	// Interleave one-hot and multi-hot features the way production models
	// mix them, so fused-kernel block runs alternate workload types.
	rng.Shuffle(len(cfg.Features), func(i, j int) {
		cfg.Features[i], cfg.Features[j] = cfg.Features[j], cfg.Features[i]
	})
	return cfg
}

// ModelA returns evaluation model A: 1,000 features (500 one-hot, 500
// multi-hot), dims 4-128.
func ModelA() *ModelConfig { return buildMixedModel("A", 500, 500, 0, 1001) }

// ModelB returns evaluation model B: 1,200 features (1,000 one-hot, 200
// multi-hot), dims 4-128.
func ModelB() *ModelConfig { return buildMixedModel("B", 1000, 200, 0, 1002) }

// ModelC returns evaluation model C: 800 features, all multi-hot, dims 4-128.
func ModelC() *ModelConfig { return buildMixedModel("C", 0, 800, 0, 1003) }

// ModelD returns evaluation model D: 1,000 features (500/500) with a fixed
// embedding dimension of 8 (evaluable by HugeCTR).
func ModelD() *ModelConfig { return buildMixedModel("D", 500, 500, 8, 1004) }

// ModelE returns evaluation model E: like D but with dimension 32. D and E
// share their input dataset by construction (same seed and PF draws).
func ModelE() *ModelConfig { return buildMixedModel("E", 500, 500, 32, 1004) }

// Scalability10k returns the extra dataset with an extremely large number of
// features (10,000) used in §VI-B to verify scalability.
func Scalability10k() *ModelConfig { return buildMixedModel("scale10k", 5000, 5000, 0, 1010) }

// MLPerfLike returns a 26-feature multi-hot dataset with low inter-feature
// heterogeneity, mirroring the MLPerf DLRM v2 Criteo-based setup: every
// feature has the same dimension and near-identical pooling behaviour.
func MLPerfLike() *ModelConfig {
	rng := rand.New(rand.NewSource(1026))
	cfg := &ModelConfig{Name: "mlperf", Seed: 1026}
	for i := 0; i < 26; i++ {
		cfg.Features = append(cfg.Features, FeatureSpec{
			Name:     fmt.Sprintf("mlperf_f%02d", i),
			Dim:      128,
			Rows:     1 << (12 + rng.Intn(3)),
			PF:       Fixed{K: 20},
			Coverage: 1,
			IDs:      IDUniform,
		})
	}
	return cfg
}

// Scaled returns a copy of cfg keeping only every k-th feature, preserving
// the one-hot/multi-hot mix. It lets tests and benchmarks run the Table-I
// models at reduced feature counts without changing their character.
func Scaled(cfg *ModelConfig, keepOneIn int) *ModelConfig {
	if keepOneIn <= 1 {
		return cfg
	}
	out := &ModelConfig{Name: fmt.Sprintf("%s/%d", cfg.Name, keepOneIn), Seed: cfg.Seed}
	for i := range cfg.Features {
		if i%keepOneIn == 0 {
			out.Features = append(out.Features, cfg.Features[i])
		}
	}
	return out
}

// StandardModels returns the five Table-I models in order.
func StandardModels() []*ModelConfig {
	return []*ModelConfig{ModelA(), ModelB(), ModelC(), ModelD(), ModelE()}
}

// Drifted returns a copy of cfg whose multi-hot pooling-factor distributions
// are scaled by factor — the workload distribution shift the paper re-tunes
// for periodically (§IV-A3: "we re-tune the schedules periodically (e.g.,
// several days) to handle the distribution shifts"). One-hot features stay
// one-hot; factor 1 returns an identical copy.
func Drifted(cfg *ModelConfig, factor float64) *ModelConfig {
	out := &ModelConfig{
		Name:     fmt.Sprintf("%s*%.2g", cfg.Name, factor),
		Seed:     cfg.Seed,
		Features: append([]FeatureSpec(nil), cfg.Features...),
	}
	if factor <= 0 {
		factor = 1
	}
	for i := range out.Features {
		if out.Features[i].OneHot() {
			continue
		}
		switch d := out.Features[i].PF.(type) {
		case Fixed:
			k := int(math.Round(float64(d.K) * factor))
			if k < 1 {
				k = 1
			}
			out.Features[i].PF = Fixed{K: k}
		case Uniform:
			hi := int(math.Round(float64(d.Hi) * factor))
			if hi < d.Lo {
				hi = d.Lo
			}
			out.Features[i].PF = Uniform{Lo: d.Lo, Hi: hi}
		case Normal:
			out.Features[i].PF = Normal{Mu: d.Mu * factor, Sigma: d.Sigma * factor}
		case LogNormal:
			out.Features[i].PF = LogNormal{Mu: d.Mu + math.Log(factor), Sigma: d.Sigma, Max: d.Max}
		}
	}
	return out
}
