package datasynth

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/embedding"
)

// Binary dataset format:
//
//	magic "RFDS" | version u32 | numFeatures u32 | numBatches u32
//	per batch: per feature: numOffsets u32, offsets []i32, numIndices u32, indices []i32
//
// Little-endian throughout. The format stores only lookup data; model
// configuration travels separately (it is code, not data).

const (
	datasetMagic   = "RFDS"
	datasetVersion = 1
)

// WriteDataset serializes the dataset batches to w.
func WriteDataset(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(datasetMagic); err != nil {
		return err
	}
	hdr := []uint32{datasetVersion, uint32(len(ds.Config.Features)), uint32(len(ds.Batches))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, b := range ds.Batches {
		if len(b.Features) != len(ds.Config.Features) {
			return fmt.Errorf("datasynth: batch has %d features, config %d", len(b.Features), len(ds.Config.Features))
		}
		for f := range b.Features {
			fb := &b.Features[f]
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(fb.Offsets))); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, fb.Offsets); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(fb.Indices))); err != nil {
				return err
			}
			if err := binary.Write(bw, binary.LittleEndian, fb.Indices); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDataset deserializes batches written by WriteDataset. The returned
// dataset carries the provided config (which must match the stored feature
// count).
func ReadDataset(r io.Reader, cfg *ModelConfig) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("datasynth: reading magic: %w", err)
	}
	if string(magic) != datasetMagic {
		return nil, fmt.Errorf("datasynth: bad magic %q", magic)
	}
	var version, numFeatures, numBatches uint32
	for _, p := range []*uint32{&version, &numFeatures, &numBatches} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	if version != datasetVersion {
		return nil, fmt.Errorf("datasynth: unsupported version %d", version)
	}
	if int(numFeatures) != len(cfg.Features) {
		return nil, fmt.Errorf("datasynth: file has %d features, config %q has %d", numFeatures, cfg.Name, len(cfg.Features))
	}
	const sanityMax = 1 << 28
	ds := &Dataset{Config: cfg}
	for bi := uint32(0); bi < numBatches; bi++ {
		b := &embedding.Batch{Features: make([]embedding.FeatureBatch, numFeatures)}
		for f := uint32(0); f < numFeatures; f++ {
			var nOff uint32
			if err := binary.Read(br, binary.LittleEndian, &nOff); err != nil {
				return nil, err
			}
			if nOff == 0 || nOff > sanityMax {
				return nil, fmt.Errorf("datasynth: corrupt offset count %d", nOff)
			}
			offsets := make([]int32, nOff)
			if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
				return nil, err
			}
			var nIdx uint32
			if err := binary.Read(br, binary.LittleEndian, &nIdx); err != nil {
				return nil, err
			}
			if nIdx > sanityMax {
				return nil, fmt.Errorf("datasynth: corrupt index count %d", nIdx)
			}
			indices := make([]int32, nIdx)
			if nIdx > 0 {
				if err := binary.Read(br, binary.LittleEndian, indices); err != nil {
					return nil, err
				}
			}
			b.Features[f] = embedding.FeatureBatch{Indices: indices, Offsets: offsets}
		}
		ds.Batches = append(ds.Batches, b)
	}
	return ds, nil
}

// SaveDataset writes the dataset to path.
func SaveDataset(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteDataset(f, ds); err != nil {
		return err
	}
	return f.Close()
}

// LoadDataset reads a dataset from path.
func LoadDataset(path string, cfg *ModelConfig) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(f, cfg)
}
