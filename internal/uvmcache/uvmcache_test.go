package uvmcache

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

func zipfModel(t *testing.T) ([]fusion.FeatureInfo, *datasynth.ModelConfig, *embedding.Batch) {
	t.Helper()
	cfg := &datasynth.ModelConfig{Name: "uvm", Seed: 15, Features: []datasynth.FeatureSpec{
		{Name: "big", Dim: 32, Rows: 1 << 17, PF: datasynth.Fixed{K: 40}, Coverage: 1, IDs: datasynth.IDZipf},
		{Name: "small", Dim: 8, Rows: 1 << 10, PF: datasynth.Fixed{K: 5}, Coverage: 1, IDs: datasynth.IDZipf},
	}}
	rng := rand.New(rand.NewSource(15))
	batch, err := datasynth.GenerateBatch(cfg, 256, rng)
	if err != nil {
		t.Fatal(err)
	}
	features := make([]fusion.FeatureInfo, len(cfg.Features))
	for f := range features {
		features[f] = fusion.FeatureInfo{
			Name: cfg.Features[f].Name, Dim: cfg.Features[f].Dim,
			TableRows: cfg.Features[f].Rows, Pool: embedding.PoolSum,
		}
	}
	return features, cfg, batch
}

func TestColdFraction(t *testing.T) {
	fb := embedding.NewFeatureBatch([][]int32{{0, 1, 2, 3}, {10, 11}})
	if got := ColdFraction(&fb, Config{HotRows: 4}); math.Abs(got-2.0/6) > 1e-12 {
		t.Errorf("ColdFraction = %g, want %g", got, 2.0/6)
	}
	if got := ColdFraction(&fb, Config{HotRows: 0}); got != 0 {
		t.Errorf("no cache should mean no UVM accounting, got %g", got)
	}
	if got := ColdFraction(&fb, Config{HotRows: 100}); got != 0 {
		t.Errorf("fully resident table should have no cold reads, got %g", got)
	}
	empty := embedding.NewFeatureBatch([][]int32{{}})
	if got := ColdFraction(&empty, Config{HotRows: 4}); got != 0 {
		t.Errorf("empty batch cold fraction %g", got)
	}
}

func TestColdFractionShrinksWithCache(t *testing.T) {
	_, _, batch := zipfModel(t)
	fb := &batch.Features[0]
	prev := 1.1
	for _, hot := range []int{1 << 8, 1 << 11, 1 << 14, 1 << 17} {
		cf := ColdFraction(fb, Config{HotRows: hot})
		if cf >= prev {
			t.Errorf("cold fraction must shrink with cache size: hot=%d -> %g (prev %g)", hot, cf, prev)
		}
		prev = cf
	}
	// Zipf streams concentrate: a 2^11-row cache (1.6% of the table)
	// should already absorb the majority of accesses.
	if cf := ColdFraction(fb, Config{HotRows: 1 << 11}); cf > 0.5 {
		t.Errorf("Zipf hot set absorbs too little: cold fraction %g", cf)
	}
}

func TestAllocateBudget(t *testing.T) {
	features, _, batch := zipfModel(t)
	freq, err := HistoricalFrequency(features, []*embedding.Batch{batch})
	if err != nil {
		t.Fatal(err)
	}
	// Budget for the small table plus part of the big one.
	smallBytes := int64(features[1].TableRows) * int64(features[1].Dim) * 4
	budget := smallBytes + 1<<16
	cfgs, err := AllocateBudget(features, freq, budget)
	if err != nil {
		t.Fatal(err)
	}
	if cfgs[1].HotRows != features[1].TableRows {
		t.Errorf("small hot table should be fully resident, got %d rows", cfgs[1].HotRows)
	}
	if cfgs[0].HotRows <= 0 || cfgs[0].HotRows >= features[0].TableRows {
		t.Errorf("big table should be partially resident, got %d of %d", cfgs[0].HotRows, features[0].TableRows)
	}
	// Budget respected.
	var used int64
	for f, c := range cfgs {
		used += int64(c.HotRows) * int64(features[f].Dim) * 4
	}
	if used > budget {
		t.Errorf("allocator overspent: %d of %d", used, budget)
	}
	if _, err := AllocateBudget(features, freq[:1], budget); err == nil {
		t.Error("frequency length mismatch accepted")
	}
	if _, err := AllocateBudget(features, freq, 0); err == nil {
		t.Error("zero budget accepted")
	}
}

func TestCachedPlanCostMonotoneInColdFraction(t *testing.T) {
	features, _, batch := zipfModel(t)
	dev := gpusim.V100()
	inner := sched.SubWarp{Threads: 256, Lanes: 16, Vec: 4, UnrollRows: 1}
	w := sched.AnalyzeWorkload(&batch.Features[0], features[0].Dim, features[0].TableRows)
	l2 := sched.L2Context{CacheBytes: float64(dev.L2SizeBytes), WorkingSetBytes: 1 << 26}
	prevTime := 0.0
	for _, cold := range []float64{0, 0.05, 0.2, 0.5} {
		c := Cached{Inner: inner, Cfg: Config{HotRows: 1 << 10}, ColdFrac: cold}
		p, err := c.Plan(&w, dev, l2)
		if err != nil {
			t.Fatal(err)
		}
		k := &gpusim.Kernel{Name: "uvm", Resources: c.Resources(features[0].Dim), Blocks: p.Blocks}
		r, err := gpusim.Simulate(dev, k)
		if err != nil {
			t.Fatal(err)
		}
		if r.Time <= prevTime {
			t.Errorf("cold fraction %g should cost more than %g: %g vs %g", cold, cold-0.1, r.Time, prevTime)
		}
		prevTime = r.Time
	}
}

func TestCachedPreservesSemantics(t *testing.T) {
	features, cfg, batch := zipfModel(t)
	dev := gpusim.V100()
	capped := datasynth.CapRows(cfg, 1<<12)
	tables, err := datasynth.BuildTables(capped)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	smallBatch, err := datasynth.GenerateBatch(capped, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	_ = batch
	inner := sched.SubWarp{Threads: 128, Lanes: 8, Vec: 1, UnrollRows: 1}
	c := Cached{Inner: inner, Cfg: Config{HotRows: 64}, ColdFrac: 0.5}
	for f := range features {
		w := sched.AnalyzeWorkload(&smallBatch.Features[f], capped.Features[f].Dim, capped.Features[f].Rows)
		p, err := c.Plan(&w, dev, sched.L2Context{CacheBytes: 1 << 22, WorkingSetBytes: 1 << 22})
		if err != nil {
			t.Fatal(err)
		}
		want, err := embedding.PoolCPU(tables[f], &smallBatch.Features[f], embedding.PoolSum)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float32, len(want))
		p.ExecuteAll(tables[f], &smallBatch.Features[f], embedding.PoolSum, got)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("feature %d: UVM decoration changed semantics at %d", f, i)
			}
		}
	}
	if c.Name() == inner.Name() {
		t.Error("decorated name should differ")
	}
	w := sched.Workload{Dim: 8, BatchSize: 1, PF: []int{1}, TotalRows: 1, UniqueRows: 1, TableRows: 100}
	if c.Supports(&w) != inner.Supports(&w) {
		t.Error("Supports must delegate")
	}
}

func TestAnalyzeCold(t *testing.T) {
	_, _, batch := zipfModel(t)
	cfgs := []Config{{HotRows: 1 << 10}, {HotRows: 0}}
	cold, err := AnalyzeCold(batch, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if cold[0] <= 0 || cold[0] >= 1 {
		t.Errorf("feature 0 cold fraction %g not in (0,1)", cold[0])
	}
	if cold[1] != 0 {
		t.Errorf("uncached feature cold fraction %g", cold[1])
	}
	if _, err := AnalyzeCold(batch, cfgs[:1]); err == nil {
		t.Error("config count mismatch accepted")
	}
}

func TestExpectedHitRate(t *testing.T) {
	if got := ExpectedHitRate(1000, 1000, 1.07); got != 1 {
		t.Errorf("full cache hit rate %g", got)
	}
	if got := ExpectedHitRate(1000, 0, 1.07); got != 0 {
		t.Errorf("no cache hit rate %g", got)
	}
	small := ExpectedHitRate(1<<17, 1<<10, 1.07)
	big := ExpectedHitRate(1<<17, 1<<14, 1.07)
	if !(small > 0.3 && big > small && big < 1) {
		t.Errorf("hit rates implausible: %g, %g", small, big)
	}
	// The analytic estimate should track the empirical cold fraction of
	// the Zipf generator within a reasonable margin.
	_, _, batch := zipfModel(t)
	emp := 1 - ColdFraction(&batch.Features[0], Config{HotRows: 1 << 12})
	ana := ExpectedHitRate(1<<17, 1<<12, 1.07)
	if math.Abs(emp-ana) > 0.2 {
		t.Errorf("empirical hit %g vs analytic %g", emp, ana)
	}
}
