package uvmcache

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// TestExpectedHitRateConvergence is the property test behind the analytic
// accounting the embedding-cache tier relies on: on large synthetic Zipf
// batches, the closed-form ExpectedHitRate must converge to the measured
// 1 - ColdFraction across hot-set sizes spanning the whole table.
func TestExpectedHitRateConvergence(t *testing.T) {
	const rows = 1 << 15
	cfg := &datasynth.ModelConfig{Name: "prop", Seed: 99, Features: []datasynth.FeatureSpec{
		{Name: "z", Dim: 8, Rows: rows, PF: datasynth.Fixed{K: 20}, Coverage: 1, IDs: datasynth.IDZipf},
	}}
	rng := rand.New(rand.NewSource(99))
	// ~80k row draws per batch; average three batches for ~250k draws.
	var batches []*embedding.Batch
	for i := 0; i < 3; i++ {
		b, err := datasynth.GenerateBatch(cfg, 4096, rng)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	for _, k := range []int{1 << 6, 1 << 8, 1 << 10, 1 << 12, 1 << 14} {
		var measured float64
		for _, b := range batches {
			measured += 1 - ColdFraction(&b.Features[0], Config{HotRows: k})
		}
		measured /= float64(len(batches))
		analytic := ExpectedHitRate(rows, k, datasynth.ZipfSkew)
		if math.Abs(measured-analytic) > 0.03 {
			t.Errorf("hot=%d: measured hit rate %.4f vs analytic %.4f (diff %.4f > 0.03)",
				k, measured, analytic, math.Abs(measured-analytic))
		}
	}
}

// TestCachedPlanExtremeColdStaysNonNegative is the regression pin for the
// recosting arithmetic: at extreme (and out-of-range) cold fractions the
// adjusted traffic must never go negative or non-finite — the simulator
// would otherwise produce negative cycle counts.
func TestCachedPlanExtremeColdStaysNonNegative(t *testing.T) {
	features, _, batch := zipfModel(t)
	dev := gpusim.V100()
	inner := sched.SubWarp{Threads: 256, Lanes: 16, Vec: 4, UnrollRows: 1}
	w := sched.AnalyzeWorkload(&batch.Features[0], features[0].Dim, features[0].TableRows)
	l2 := sched.L2Context{CacheBytes: float64(dev.L2SizeBytes), WorkingSetBytes: 1 << 26}
	for _, cold := range []float64{0.999, 1, 1.5, 100} {
		c := Cached{Inner: inner, Cfg: Config{HotRows: 1}, ColdFrac: cold}
		p, err := c.Plan(&w, dev, l2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Blocks {
			b := &p.Blocks[i]
			for _, v := range []struct {
				name string
				val  float64
			}{{"MemRequests", b.MemRequests}, {"DRAMBytes", b.DRAMBytes}, {"L2Bytes", b.L2Bytes}} {
				if v.val < 0 || math.IsNaN(v.val) || math.IsInf(v.val, 0) {
					t.Fatalf("cold=%g block %d: %s = %g", cold, i, v.name, v.val)
				}
			}
		}
		// The recosted plan must still simulate to a finite positive time.
		k := &gpusim.Kernel{Name: "uvm-extreme", Resources: c.Resources(features[0].Dim), Blocks: p.Blocks}
		r, err := gpusim.Simulate(dev, k)
		if err != nil {
			t.Fatal(err)
		}
		if r.Time <= 0 || math.IsInf(r.Time, 0) || math.IsNaN(r.Time) {
			t.Fatalf("cold=%g: simulated time %g", cold, r.Time)
		}
	}
}

// TestPCIePenalty pins the closed-form serving-side fault cost.
func TestPCIePenalty(t *testing.T) {
	if got := PCIePenalty(0, 0); got != 0 {
		t.Errorf("no cold traffic penalty %g", got)
	}
	if got := PCIePenalty(-1, 100); got != 0 {
		t.Errorf("negative rows penalty %g", got)
	}
	rows, bytes := 1024.0, 1024.0*128
	want := bytes/PCIeBandwidth + rows/PCIeFaultConcurrency*PCIeFaultLatency
	if got := PCIePenalty(rows, bytes); math.Abs(got-want) > 1e-15 {
		t.Errorf("PCIePenalty = %g, want %g", got, want)
	}
	// Linear in its inputs: doubling the cold batch doubles the cost.
	if got := PCIePenalty(2*rows, 2*bytes); math.Abs(got-2*want) > 1e-15 {
		t.Errorf("PCIePenalty not linear: %g vs %g", got, 2*want)
	}
}

// TestZipfBucketMass pins the closed-form rank-range mass the cache tier's
// bucket accounting is built on.
func TestZipfBucketMass(t *testing.T) {
	const n = 4096
	for _, s := range []float64{0, 0.5, 1.07} {
		var sum float64
		for lo, hi := 0, 1; lo < n; lo, hi = hi, hi*2 {
			if hi > n {
				hi = n
			}
			sum += ZipfBucketMass(lo, hi, n, s)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("s=%g: bucket masses sum to %g, want 1", s, sum)
		}
	}
	// Uniform mass is proportional to range width.
	if got, want := ZipfBucketMass(0, 1024, n, 0), 0.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("uniform mass %g, want %g", got, want)
	}
	// Zipf front-loads: the first 16 ranks of a skewed table outweigh the
	// uniform share by a wide margin.
	if got := ZipfBucketMass(0, 16, n, datasynth.ZipfSkew); got < 10*ZipfBucketMass(0, 16, n, 0) {
		t.Errorf("skewed head mass %g implausibly small", got)
	}
	// Bounds clamp; degenerate ranges are zero.
	if got := ZipfBucketMass(-5, n+5, n, 1); math.Abs(got-1) > 1e-12 {
		t.Errorf("clamped full range mass %g", got)
	}
	if ZipfBucketMass(8, 8, n, 1) != 0 || ZipfBucketMass(0, 1, 0, 1) != 0 {
		t.Error("degenerate ranges must have zero mass")
	}
}
