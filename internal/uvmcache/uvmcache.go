// Package uvmcache implements the second extension sketched in the paper's
// Discussion (§VII, "Larger model sizes"): serving models whose embedding
// tables exceed GPU memory by keeping a hot subset of rows on the GPU and
// faulting cold rows over the PCIe bus with unified memory (UVM) — "use the
// GPU to serve as the hot-embedding cache of the CPU by developing
// corresponding schedules with unified memory".
//
// The package provides the hot-set budget allocator (frequency-based, exact
// for the Zipf-ordered ID spaces the data synthesizer produces), a schedule
// decorator that recosts any inner schedule's memory traffic by its hot/cold
// split, and the per-batch hit-rate analysis the host performs during
// preprocessing. Functional outputs are unchanged — caching moves bytes, not
// values — so every correctness invariant of the schedule library carries
// over verbatim.
package uvmcache

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// PCIe models the host link cold rows travel over.
const (
	PCIeBandwidth     = 25e9 // bytes/s (PCIe 4.0 x16, effective)
	PCIeLatencyCycles = 1400 // core cycles per UVM fault round trip

	// PCIeFaultLatency is PCIeLatencyCycles expressed in seconds at the
	// ~1.4 GHz core clock of the evaluation devices — the serving-side unit
	// the embedding-cache tier charges per fault round trip.
	PCIeFaultLatency = PCIeLatencyCycles / 1.4e9
	// PCIeFaultConcurrency is how many UVM fault round trips the driver's
	// prefetcher keeps in flight; fault latency amortizes across them.
	PCIeFaultConcurrency = 32
)

// PCIePenalty is the serving-time cost of faulting coldRows embedding rows
// (coldBytes total) over the host link: the bandwidth term of the Cached
// recosting plus the fault latency at the driver's fault concurrency. This is
// the same PCIe model Cached.Plan charges inside the simulator, reduced to a
// closed form the embedding-cache tier can apply per dispatched batch.
func PCIePenalty(coldRows, coldBytes float64) float64 {
	if coldRows <= 0 || coldBytes <= 0 {
		return 0
	}
	return coldBytes/PCIeBandwidth + coldRows/PCIeFaultConcurrency*PCIeFaultLatency
}

// ZipfBucketMass returns the probability that a Zipf(s) row access over an
// n-row frequency-ranked table lands in rows [lo, hi) (0-indexed ranks).
// s = 0 degrades to the uniform distribution. Out-of-range bounds clamp.
func ZipfBucketMass(lo, hi, n int, s float64) float64 {
	if n <= 0 {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi > n {
		hi = n
	}
	if hi <= lo {
		return 0
	}
	return (harmonic(hi, s) - harmonic(lo, s)) / harmonic(n, s)
}

// Config is the cache setting of one feature: the leading HotRows rows of its
// table are GPU-resident. Zero means the whole table is GPU-resident (no UVM
// involvement); the analysis treats HotRows >= TableRows the same way.
type Config struct {
	HotRows int
}

// ColdFraction returns the fraction of the batch's row reads that miss the
// hot set. The ID generators of datasynth produce frequency-ranked IDs (Zipf
// hot rows are the low IDs), so "first HotRows rows" is the optimal hot set.
func ColdFraction(fb *embedding.FeatureBatch, cfg Config) float64 {
	if cfg.HotRows <= 0 || len(fb.Indices) == 0 {
		return 0
	}
	cold := 0
	for _, id := range fb.Indices {
		if int(id) >= cfg.HotRows {
			cold++
		}
	}
	return float64(cold) / float64(len(fb.Indices))
}

// AllocateBudget distributes budgetBytes of GPU embedding memory across
// features, greedily giving rows to the features with the highest access
// frequency per byte. accessFreq[f] is the feature's historical row-access
// count; rowBytes[f] its row size. Features whose whole table fits are fully
// resident. Returns one Config per feature.
func AllocateBudget(features []fusion.FeatureInfo, accessFreq []float64, budgetBytes int64) ([]Config, error) {
	if len(accessFreq) != len(features) {
		return nil, fmt.Errorf("uvmcache: %d frequencies for %d features", len(accessFreq), len(features))
	}
	if budgetBytes <= 0 {
		return nil, fmt.Errorf("uvmcache: budget must be positive, got %d", budgetBytes)
	}
	// Value density: accesses per byte of table. Features accessed more
	// per byte get cached first, whole tables at a time when possible.
	type cand struct {
		f       int
		density float64
		bytes   int64
	}
	cands := make([]cand, len(features))
	for f := range features {
		bytes := int64(features[f].TableRows) * int64(features[f].Dim) * 4
		density := 0.0
		if bytes > 0 {
			density = accessFreq[f] / float64(bytes)
		}
		cands[f] = cand{f: f, density: density, bytes: bytes}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].density > cands[b].density })

	out := make([]Config, len(features))
	remaining := budgetBytes
	for _, c := range cands {
		fi := features[c.f]
		rowBytes := int64(fi.Dim) * 4
		if c.bytes <= remaining {
			out[c.f] = Config{HotRows: fi.TableRows}
			remaining -= c.bytes
			continue
		}
		rows := remaining / rowBytes
		if rows > 0 {
			out[c.f] = Config{HotRows: int(rows)}
			remaining -= rows * rowBytes
		}
	}
	return out, nil
}

// HistoricalFrequency sums per-feature row accesses over batches.
func HistoricalFrequency(features []fusion.FeatureInfo, batches []*embedding.Batch) ([]float64, error) {
	freq := make([]float64, len(features))
	for _, b := range batches {
		if len(b.Features) != len(features) {
			return nil, fmt.Errorf("uvmcache: batch has %d features, model %d", len(b.Features), len(features))
		}
		for f := range features {
			freq[f] += float64(b.Features[f].TotalRows())
		}
	}
	return freq, nil
}

// Cached decorates an inner schedule with UVM cost accounting: the cold
// fraction of the row-read traffic is recosted at PCIe bandwidth and latency.
// The thread mapping, resources and functional semantics are the inner
// schedule's.
type Cached struct {
	Inner sched.Schedule
	Cfg   Config
	// ColdFrac is the batch's measured cold fraction, set by the host
	// analysis (AnalyzeCold) before planning.
	ColdFrac float64
}

var _ sched.Schedule = Cached{}

// Name implements sched.Schedule.
func (c Cached) Name() string {
	return fmt.Sprintf("uvm(%s,hot%d)", c.Inner.Name(), c.Cfg.HotRows)
}

// Resources implements sched.Schedule.
func (c Cached) Resources(dim int) gpusim.KernelResources { return c.Inner.Resources(dim) }

// Supports implements sched.Schedule.
func (c Cached) Supports(w *sched.Workload) bool { return c.Inner.Supports(w) }

// Plan implements sched.Schedule: plan with the inner schedule, then recost
// the cold share of the read traffic. PCIe bytes are expressed in
// DRAM-equivalent units (scaled by the bandwidth ratio) so the simulator's
// single DRAM resource bounds them correctly, and the fault latency enters
// through the request count.
func (c Cached) Plan(w *sched.Workload, dev *gpusim.Device, l2 sched.L2Context) (*sched.Plan, error) {
	p, err := c.Inner.Plan(w, dev, l2)
	if err != nil {
		return nil, err
	}
	cold := c.ColdFrac
	if cold <= 0 || c.Cfg.HotRows >= w.TableRows {
		return p, nil
	}
	if cold > 1 {
		cold = 1
	}
	bwScale := dev.DRAMBandwidth / PCIeBandwidth
	latScale := PCIeLatencyCycles / dev.DRAMLatencyCycles
	writeBytes := w.RowBytes() // output write per sample stays on-GPU
	for i := range p.Blocks {
		b := &p.Blocks[i]
		samples := float64(p.SampleHi[i] - p.SampleLo[i])
		reads := b.DRAMBytes + b.L2Bytes - samples*writeBytes
		if reads < 0 {
			reads = 0
		}
		coldBytes := reads * cold
		// Cold reads leave both DRAM and L2 proportionally.
		totalReads := b.DRAMBytes + b.L2Bytes
		if totalReads > 0 {
			b.DRAMBytes -= coldBytes * (b.DRAMBytes / totalReads)
			b.L2Bytes -= coldBytes * (b.L2Bytes / totalReads)
		}
		// ...and return as PCIe traffic in DRAM-equivalent bytes, with
		// the fault latency inflating the request count (lower MLP).
		b.DRAMBytes += coldBytes * bwScale
		b.MemRequests += (b.MemRequests*cold)*(latScale-1) + coldBytes*bwScale/128
		if b.L2Bytes < 0 {
			b.L2Bytes = 0
		}
		if b.DRAMBytes < 0 {
			b.DRAMBytes = 0
		}
	}
	return p, nil
}

// AnalyzeCold computes the per-feature cold fractions of one batch under the
// given cache configs — part of the host-side preprocessing.
func AnalyzeCold(batch *embedding.Batch, cfgs []Config) ([]float64, error) {
	if len(batch.Features) != len(cfgs) {
		return nil, fmt.Errorf("uvmcache: %d configs for %d features", len(cfgs), len(batch.Features))
	}
	out := make([]float64, len(cfgs))
	for f := range cfgs {
		out[f] = ColdFraction(&batch.Features[f], cfgs[f])
	}
	return out, nil
}

// ExpectedHitRate estimates the steady-state hit rate of a Zipf(s) access
// stream over a table of n rows with k hot rows: H_k(s)/H_n(s) via the
// generalized harmonic numbers.
func ExpectedHitRate(n, k int, s float64) float64 {
	if k <= 0 || n <= 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	return harmonic(k, s) / harmonic(n, s)
}

func harmonic(n int, s float64) float64 {
	// Exact for small n; integral approximation beyond.
	const exact = 4096
	sum := 0.0
	lim := n
	if lim > exact {
		lim = exact
	}
	for i := 1; i <= lim; i++ {
		sum += math.Pow(float64(i), -s)
	}
	if n > exact {
		// ∫ x^-s dx from exact to n.
		if s == 1 {
			sum += math.Log(float64(n) / exact)
		} else {
			sum += (math.Pow(float64(n), 1-s) - math.Pow(exact, 1-s)) / (1 - s)
		}
	}
	return sum
}
