package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
)

func benchModel(t *testing.T, uniformDim int) ([]fusion.FeatureInfo, *embedding.Batch) {
	t.Helper()
	specs := []datasynth.FeatureSpec{
		{Name: "f0", Dim: 4, Rows: 4096, PF: datasynth.Fixed{K: 1}, Coverage: 1},
		{Name: "f1", Dim: 8, Rows: 8192, PF: datasynth.Normal{Mu: 40, Sigma: 8}, Coverage: 1},
		{Name: "f2", Dim: 32, Rows: 16384, PF: datasynth.Uniform{Lo: 1, Hi: 50}, Coverage: 0.7},
		{Name: "f3", Dim: 64, Rows: 32768, PF: datasynth.Fixed{K: 80}, Coverage: 1},
	}
	if uniformDim > 0 {
		for i := range specs {
			specs[i].Dim = uniformDim
		}
	}
	// Replicate to the many-features regime the baselines are compared in
	// (HugeCTR's per-feature block reduction overhead and TensorFlow's
	// launch overhead both scale with the feature count).
	var reps []datasynth.FeatureSpec
	for r := 0; r < 10; r++ {
		for _, s := range specs {
			c := s
			c.Name = c.Name + string(rune('a'+r))
			reps = append(reps, c)
		}
	}
	specs = reps
	cfg := &datasynth.ModelConfig{Name: "bl", Seed: 51, Features: specs}
	rng := rand.New(rand.NewSource(51))
	batch, err := datasynth.GenerateBatch(cfg, 256, rng)
	if err != nil {
		t.Fatal(err)
	}
	features := make([]fusion.FeatureInfo, len(specs))
	for f := range specs {
		features[f] = fusion.FeatureInfo{Name: specs[f].Name, Dim: specs[f].Dim, TableRows: specs[f].Rows, Pool: embedding.PoolSum}
	}
	return features, batch
}

func TestAllBaselinesMeasure(t *testing.T) {
	features, batch := benchModel(t, 8) // uniform dim so HugeCTR runs too
	dev := gpusim.V100()
	for _, b := range All() {
		if err := b.Supports(features); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		sec, err := b.Measure(dev, features, batch)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if sec <= 0 {
			t.Errorf("%s: non-positive time %g", b.Name(), sec)
		}
	}
}

func TestHugeCTRRequiresUniformDim(t *testing.T) {
	features, batch := benchModel(t, 0)
	dev := gpusim.V100()
	h := HugeCTR{}
	if err := h.Supports(features); err == nil {
		t.Error("heterogeneous dims accepted by HugeCTR")
	}
	if _, err := h.Measure(dev, features, batch); err == nil {
		t.Error("HugeCTR measured a heterogeneous-dim model")
	}
}

// TensorFlow (no fusion) must be the slowest system on a many-feature model:
// it pays per-feature launch overhead and underutilizes the device.
func TestTensorFlowSlowest(t *testing.T) {
	features, batch := benchModel(t, 8)
	dev := gpusim.V100()
	tf, err := TensorFlow{}.Measure(dev, features, batch)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := TorchRec{}.Measure(dev, features, batch)
	if err != nil {
		t.Fatal(err)
	}
	if tf <= tr {
		t.Errorf("TensorFlow (%g) should be slower than TorchRec (%g)", tf, tr)
	}
}

// TorchRec is the best baseline in the paper; it should beat RECom's static
// even distribution and HugeCTR's sequential blocks on this workload.
func TestBaselineOrderingMatchesPaper(t *testing.T) {
	features, batch := benchModel(t, 8)
	dev := gpusim.V100()
	tr, err := TorchRec{}.Measure(dev, features, batch)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := HugeCTR{}.Measure(dev, features, batch)
	if err != nil {
		t.Fatal(err)
	}
	if tr >= hc {
		t.Errorf("TorchRec (%g) should beat HugeCTR (%g)", tr, hc)
	}
}

func TestVecForDim(t *testing.T) {
	cases := map[int]int{4: 4, 8: 4, 6: 2, 3: 1, 128: 4, 2: 2}
	for dim, want := range cases {
		if got := vecForDim(dim); got != want {
			t.Errorf("vecForDim(%d) = %d, want %d", dim, got, want)
		}
	}
}

func TestMaxDim(t *testing.T) {
	features, _ := benchModel(t, 0)
	if got := maxDim(features); got != 64 {
		t.Errorf("maxDim = %d, want 64", got)
	}
}

func TestBaselineNames(t *testing.T) {
	want := []string{"TensorFlow", "RECom", "HugeCTR", "TorchRec"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("All() returned %d systems", len(all))
	}
	for i, b := range all {
		if b.Name() != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, b.Name(), want[i])
		}
	}
}

func TestTorchRecCompileExposesKernel(t *testing.T) {
	features, batch := benchModel(t, 8)
	dev := gpusim.V100()
	fu, err := TorchRec{}.Compile(dev, features, batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(fu.Kernel.Blocks) == 0 {
		t.Error("TorchRec fused kernel has no blocks")
	}
	// All features share the same uniform schedule.
	names := map[string]bool{}
	for _, c := range fu.Choices {
		names[c.Name()] = true
	}
	if len(names) != 1 {
		t.Errorf("TorchRec should use one uniform schedule, got %v", names)
	}
}
