// Package baselines reimplements the embedding-execution strategies of the
// four systems the paper compares against, on top of the same GPU simulator
// RecFlex runs on, so Figure 9/10 comparisons measure scheduling strategy
// rather than framework plumbing:
//
//   - TensorFlow: no fusion — one kernel launch sequence per feature
//     (gather + segment pooling), paying launch overhead and leaving the GPU
//     underutilized on small features.
//   - RECom: all embedding operations fused into a single kernel, but with a
//     uniform schedule and static thread mapping that distributes blocks
//     evenly across features regardless of their workloads.
//   - TorchRec (FBGEMM): fused kernel with fine-grained warp-per-sample
//     parallelism, its kernel variant selected by the maximum embedding
//     dimension across tables — the strongest baseline, but blind to
//     feature heterogeneity.
//   - HugeCTR: fused kernel with coarse sample-per-block parallelism that
//     walks all features sequentially inside each block; requires a uniform
//     embedding dimension across tables.
package baselines

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// Baseline is one comparison system.
type Baseline interface {
	// Name is the system's display name.
	Name() string
	// Supports reports whether the system can run the model at all.
	Supports(features []fusion.FeatureInfo) error
	// Measure returns the simulated embedding execution time of one batch.
	Measure(dev *gpusim.Device, features []fusion.FeatureInfo, batch *embedding.Batch) (float64, error)
}

// genericSchedule is the one-size-fits-all schedule the non-RecFlex systems
// apply to every feature: classic warp-per-sample.
func genericSchedule(vec int) sched.Schedule {
	return sched.SubWarp{Threads: 256, Lanes: 32, Vec: vec, UnrollRows: 1}
}

// maxDim returns the largest embedding dimension of the model.
func maxDim(features []fusion.FeatureInfo) int {
	m := 0
	for i := range features {
		if features[i].Dim > m {
			m = features[i].Dim
		}
	}
	return m
}

// vecForDim picks the widest vector load that divides the dimension.
func vecForDim(dim int) int {
	switch {
	case dim%4 == 0:
		return 4
	case dim%2 == 0:
		return 2
	default:
		return 1
	}
}

// TensorFlow executes every feature's embedding operation as separate kernel
// launches.
type TensorFlow struct{}

// Name implements Baseline.
func (TensorFlow) Name() string { return "TensorFlow" }

// Supports implements Baseline.
func (TensorFlow) Supports([]fusion.FeatureInfo) error { return nil }

// launchesPerFeature models TensorFlow's unfused op granularity: a gather
// kernel plus a segment-pooling kernel per feature.
const launchesPerFeature = 2

// Measure implements Baseline.
func (TensorFlow) Measure(dev *gpusim.Device, features []fusion.FeatureInfo, batch *embedding.Batch) (float64, error) {
	ws, err := fusion.AnalyzeBatch(features, batch)
	if err != nil {
		return 0, err
	}
	total := 0.0
	for f := range features {
		s := genericSchedule(vecForDim(features[f].Dim))
		// Each kernel sees only its own feature's working set.
		l2 := sched.L2Context{
			CacheBytes:      float64(dev.L2SizeBytes),
			WorkingSetBytes: float64(ws[f].UniqueRows) * ws[f].RowBytes(),
		}
		p, err := s.Plan(&ws[f], dev, l2)
		if err != nil {
			return 0, err
		}
		k := &gpusim.Kernel{
			Name:      fmt.Sprintf("tf_f%d", f),
			Resources: s.Resources(features[f].Dim),
			Blocks:    p.Blocks,
		}
		r, err := gpusim.Simulate(dev, k)
		if err != nil {
			return 0, err
		}
		total += r.Time + launchesPerFeature*dev.KernelLaunchOverhead
	}
	return total, nil
}

// RECom fuses everything with a uniform schedule and an even static block
// distribution across features.
type RECom struct{}

// Name implements Baseline.
func (RECom) Name() string { return "RECom" }

// Supports implements Baseline.
func (RECom) Supports([]fusion.FeatureInfo) error { return nil }

// Measure implements Baseline.
func (RECom) Measure(dev *gpusim.Device, features []fusion.FeatureInfo, batch *embedding.Batch) (float64, error) {
	choices := make([]sched.Schedule, len(features))
	for f := range features {
		choices[f] = genericSchedule(1)
	}
	// First pass to learn the total block need, then distribute evenly:
	// every feature gets the same allocation, workloads be damned.
	probe, err := fusion.Compile(dev, features, choices, batch, fusion.Options{})
	if err != nil {
		return 0, err
	}
	totalNeed := 0
	for _, n := range probe.BlockUsage() {
		totalNeed += n
	}
	per := (totalNeed + len(features) - 1) / len(features)
	if per < 1 {
		per = 1
	}
	static := make([]int, len(features))
	for f := range static {
		static[f] = per
	}
	fu, err := fusion.Compile(dev, features, choices, batch, fusion.Options{
		Mapping:      fusion.MapStaticAvg,
		StaticBlocks: static,
	})
	if err != nil {
		return 0, err
	}
	r, err := fu.Simulate()
	if err != nil {
		return 0, err
	}
	return r.Time + dev.KernelLaunchOverhead, nil
}

// TorchRec fuses everything with warp-per-sample parallelism sized by the
// maximum embedding dimension.
type TorchRec struct{}

// Name implements Baseline.
func (TorchRec) Name() string { return "TorchRec" }

// Supports implements Baseline.
func (TorchRec) Supports([]fusion.FeatureInfo) error { return nil }

// Compile builds TorchRec's fused kernel for a batch; exposed so the Table II
// counter comparison can inspect it.
func (TorchRec) Compile(dev *gpusim.Device, features []fusion.FeatureInfo, batch *embedding.Batch) (*fusion.Fused, error) {
	vec := vecForDim(maxDim(features))
	choices := make([]sched.Schedule, len(features))
	for f := range features {
		choices[f] = genericSchedule(vec)
	}
	return fusion.Compile(dev, features, choices, batch, fusion.Options{})
}

// Measure implements Baseline.
func (tr TorchRec) Measure(dev *gpusim.Device, features []fusion.FeatureInfo, batch *embedding.Batch) (float64, error) {
	fu, err := tr.Compile(dev, features, batch)
	if err != nil {
		return 0, err
	}
	r, err := fu.Simulate()
	if err != nil {
		return 0, err
	}
	return r.Time + dev.KernelLaunchOverhead, nil
}

// HugeCTR fuses everything with one block per sample, features processed
// sequentially inside the block. Embedding dimensions must be uniform.
type HugeCTR struct{}

// Name implements Baseline.
func (HugeCTR) Name() string { return "HugeCTR" }

// Supports implements Baseline.
func (HugeCTR) Supports(features []fusion.FeatureInfo) error {
	if len(features) == 0 {
		return fmt.Errorf("baselines: HugeCTR: no features")
	}
	dim := features[0].Dim
	for f := range features {
		if features[f].Dim != dim {
			return fmt.Errorf("baselines: HugeCTR requires a uniform embedding dimension, got %d and %d",
				dim, features[f].Dim)
		}
	}
	return nil
}

// Measure implements Baseline.
func (h HugeCTR) Measure(dev *gpusim.Device, features []fusion.FeatureInfo, batch *embedding.Batch) (float64, error) {
	if err := h.Supports(features); err != nil {
		return 0, err
	}
	ws, err := fusion.AnalyzeBatch(features, batch)
	if err != nil {
		return 0, err
	}
	l2 := sched.L2Context{
		CacheBytes:      float64(dev.L2SizeBytes),
		WorkingSetBytes: fusion.WorkingSetBytes(features, ws),
	}
	inner := sched.BlockPerSample{Threads: 256, Vec: vecForDim(features[0].Dim)}
	// One plan per feature (one block per sample each), then merge across
	// features per sample: block s runs feature 0's sample s, then feature
	// 1's, and so on — the sequential walk of HugeCTR's fused layer.
	plans := make([]*sched.Plan, len(features))
	for f := range features {
		p, err := inner.Plan(&ws[f], dev, l2)
		if err != nil {
			return 0, err
		}
		plans[f] = p
	}
	n := batch.BatchSize()
	blocks := make([]gpusim.BlockWork, n)
	for s := 0; s < n; s++ {
		var merged gpusim.BlockWork
		var weight float64
		for f := range plans {
			b := plans[f].Blocks[s]
			merged.CompCycles += b.CompCycles
			merged.DRAMBytes += b.DRAMBytes
			merged.L2Bytes += b.L2Bytes
			merged.MemRequests += b.MemRequests
			if b.Warps > merged.Warps {
				merged.Warps = b.Warps
			}
			w := b.CompCycles
			if w <= 0 {
				w = 1
			}
			merged.ActiveFrac += b.ActiveFrac * w
			merged.PredOffFrac += b.PredOffFrac * w
			weight += w
		}
		if weight > 0 {
			merged.ActiveFrac /= weight
			merged.PredOffFrac /= weight
		}
		if merged.Warps == 0 {
			merged.Warps = 1
		}
		// The block walks its features strictly sequentially, with a
		// block-wide barrier and at least one exposed memory round trip
		// per feature segment — the serialization that makes HugeCTR
		// "rely on large embedding dimensions and batch sizes to saturate
		// the GPU" (§VI-B). The stall is charged in issue-work units so
		// the simulator's rate division recovers wall-clock stall time.
		stallPerSegment := dev.DRAMLatencyCycles + 64
		merged.CompCycles += float64(len(features)) * stallPerSegment *
			float64(merged.Warps) * dev.PerWarpIssue
		merged.Tag = -1
		blocks[s] = merged
	}
	k := &gpusim.Kernel{
		Name:      "hugectr_fused",
		Resources: inner.Resources(features[0].Dim),
		Blocks:    blocks,
	}
	r, err := gpusim.Simulate(dev, k)
	if err != nil {
		return 0, err
	}
	return r.Time + dev.KernelLaunchOverhead, nil
}

// All returns the four baselines in the paper's comparison order.
func All() []Baseline {
	return []Baseline{TensorFlow{}, RECom{}, HugeCTR{}, TorchRec{}}
}
