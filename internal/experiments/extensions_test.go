package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestExtensions(t *testing.T) {
	s := testSuite()
	res, err := s.Extensions()
	if err != nil {
		t.Fatal(err)
	}
	// Placement: LPT must not lose to the capacity-only straw man.
	if res.PlacementMakespan["lpt"] > res.PlacementMakespan["capacity-only"]*1.02 {
		t.Errorf("LPT (%g) lost to capacity-only (%g)",
			res.PlacementMakespan["lpt"], res.PlacementMakespan["capacity-only"])
	}
	// UVM: kernel time must fall monotonically as the hot cache grows.
	for i := 1; i < len(res.UVMTimes); i++ {
		if res.UVMTimes[i] > res.UVMTimes[i-1]*1.001 {
			t.Errorf("UVM sweep not monotone at fraction %.3f: %g -> %g",
				res.UVMFractions[i], res.UVMTimes[i-1], res.UVMTimes[i])
		}
	}
	// The fully-resident point must be far faster than the 0.1% cache.
	if res.UVMTimes[len(res.UVMTimes)-1]*2 > res.UVMTimes[0] {
		t.Errorf("cache sweep too flat: %g .. %g", res.UVMTimes[0], res.UVMTimes[len(res.UVMTimes)-1])
	}
	// Preprocess fusion wins.
	if res.PreprocFused >= res.PreprocSeparate {
		t.Errorf("fused preproc (%g) should beat separate kernels (%g)", res.PreprocFused, res.PreprocSeparate)
	}
	// The hybrid split wins on bimodal pooling factors (intra-feature
	// heterogeneity). Host sorting alone trades divergence for per-warp
	// memory concentration and may not win on time.
	if res.HybridTime >= res.UnsortedTime {
		t.Errorf("hybrid split (%g) should beat uniform sub-warp (%g)", res.HybridTime, res.UnsortedTime)
	}
	if res.SortedTime <= 0 {
		t.Error("sorted variant not measured")
	}
}

func TestPrintExtensions(t *testing.T) {
	s := testSuite()
	var buf bytes.Buffer
	if err := s.PrintExtensions(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"multi-GPU placement", "UVM", "preprocess fusion", "intra-feature"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// Equation 2 must hold within a modest band on the tuned kernels: the whole
// local-stage ranking depends on it.
func TestEq2FidelityOnTunedKernels(t *testing.T) {
	s := testSuite()
	rows, err := s.Eq2Fidelity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Ratio < 0.85 || r.Ratio > 1.7 {
			t.Errorf("model %s: Eq.2 ratio %.3f outside the credible band (blocks %d, slots %d)",
				r.Model, r.Ratio, r.Blocks, r.Slots)
		}
	}
}

// The §IV-A3 lifecycle: drift is detected and re-tuning recovers latency.
func TestDriftStudy(t *testing.T) {
	s := testSuite()
	res, err := s.DriftStudy()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected {
		t.Error("4x pooling-factor drift not detected")
	}
	if res.Improvement < 1.0 {
		t.Errorf("re-tuning made things worse: %.3f", res.Improvement)
	}
	// The fleet-speed act: at this scale (~40 features) the warm-started,
	// memo-shared fleet re-tune must cut the measured drift-detect→hot-swap
	// wall time at least 3x against the serial reference, without changing
	// the selected schedule set (pruning stays off in this arm, so the match
	// is required exactly).
	if res.RetuneWallSerial <= 0 || res.RetuneWallWarm <= 0 || res.RetuneWallFleet <= 0 {
		t.Fatalf("re-tune wall times not measured: serial %g warm %g fleet %g",
			res.RetuneWallSerial, res.RetuneWallWarm, res.RetuneWallFleet)
	}
	if res.RetuneSpeedup < 3 {
		t.Errorf("fleet-speed re-tune only %.2fx faster (serial %.0fms, fleet %.0fms), want >= 3x",
			res.RetuneSpeedup, res.RetuneWallSerial*1e3, res.RetuneWallFleet*1e3)
	}
	if !res.FastScheduleMatch {
		t.Error("fleet-speed re-tune selected a different schedule set than the serial reference")
	}
	if res.RetuneWallFleet >= res.RetuneWallWarm {
		t.Errorf("memo-warm fleet re-tune %.0fms did not beat the cold-memo warm re-tune %.0fms",
			res.RetuneWallFleet*1e3, res.RetuneWallWarm*1e3)
	}
	t.Logf("re-tune wall: serial %.0fms, warm-start %.0fms, fleet-shared memo %.0fms (%.1fx)",
		res.RetuneWallSerial*1e3, res.RetuneWallWarm*1e3, res.RetuneWallFleet*1e3, res.RetuneSpeedup)

	// The poisoned-retune act: the canary guard must catch the 3x-slower
	// promotion, roll it back, and latency must recover after the revert.
	if res.PoisonRollbacks != 1 {
		t.Fatalf("canary rollbacks %d, want the poisoned promotion caught exactly once", res.PoisonRollbacks)
	}
	if res.PoisonCanaryMean <= res.PoisonBaselineMean {
		t.Errorf("poisoned canary %g not worse than baseline %g — nothing to catch",
			res.PoisonCanaryMean, res.PoisonBaselineMean)
	}
	if res.RollbackAt <= 0 {
		t.Errorf("rollback time not recorded: t=%g", res.RollbackAt)
	}
	if res.PostRollbackMean <= 0 || res.PostRollbackMean >= res.PoisonCanaryMean {
		t.Errorf("post-rollback mean %g did not recover below the poisoned canary mean %g",
			res.PostRollbackMean, res.PoisonCanaryMean)
	}
}
