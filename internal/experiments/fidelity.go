package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasynth"
	"repro/internal/gpusim"
	"repro/internal/report"
)

// Eq2Row validates the paper's Equation 2 on one tuned fused kernel: the
// closed-form approximation L ~= sum(block times) / (#SM * blocks-per-SM)
// against the event-driven simulation that resolves scheduling exactly.
// The tuner's local stage rests on this approximation (it ranks candidates
// by summed block time), so its accuracy on realistic kernels is a
// load-bearing property of the whole system.
type Eq2Row struct {
	Model     string
	Simulated float64
	Approx    float64
	Ratio     float64 // Simulated / Approx; ~1 when Eq. 2 holds
	Blocks    int
	Slots     int
}

// Eq2Fidelity measures the approximation across the tuned Table-I kernels.
func (s *Suite) Eq2Fidelity() ([]Eq2Row, error) {
	return memo(s, "eq2", s.eq2Fidelity)
}

func (s *Suite) eq2Fidelity() ([]Eq2Row, error) {
	dev := gpusim.V100()
	var rows []Eq2Row
	for _, base := range datasynth.StandardModels() {
		cfg := s.ScaledModel(base)
		ds, err := s.Dataset(cfg)
		if err != nil {
			return nil, err
		}
		_, eval := s.Split(ds)
		rf, err := s.TunedRecFlex(dev, cfg)
		if err != nil {
			return nil, err
		}
		fu, err := rf.CompileBatch(eval[0])
		if err != nil {
			return nil, err
		}
		r, err := fu.Simulate()
		if err != nil {
			return nil, err
		}
		var sum float64
		for _, bt := range r.BlockTime {
			sum += bt
		}
		slots := dev.ParallelBlockSlots(r.BlocksPerSM)
		approx := sum / float64(slots)
		rows = append(rows, Eq2Row{
			Model:     base.Name,
			Simulated: r.Time,
			Approx:    approx,
			Ratio:     r.Time / approx,
			Blocks:    len(fu.Kernel.Blocks),
			Slots:     slots,
		})
	}
	return rows, nil
}

// PrintEq2Fidelity renders the validation.
func (s *Suite) PrintEq2Fidelity(w io.Writer) error {
	rows, err := s.Eq2Fidelity()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Equation 2 fidelity: closed-form approximation vs event-driven simulation (tuned kernels, V100)",
		Header: []string{"Model", "Simulated", "Eq.2 approx", "Ratio", "Blocks", "Slots"},
	}
	for _, r := range rows {
		t.AddRow(r.Model, report.FmtUS(r.Simulated), report.FmtUS(r.Approx),
			fmt.Sprintf("%.3f", r.Ratio), fmt.Sprintf("%d", r.Blocks), fmt.Sprintf("%d", r.Slots))
	}
	return t.Write(w)
}
