package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/datasynth"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/report"
)

// ScalabilityResult is the §VI-B study with an extremely large number of
// features: RecFlex vs TorchRec on the 10,000-feature dataset.
type ScalabilityResult struct {
	Features int
	RecFlex  float64
	TorchRec float64
	Speedup  float64
}

// Scalability runs the 10k-feature comparison on the V100 (scaled by the
// suite's Scale, like the Table-I models).
func (s *Suite) Scalability() (*ScalabilityResult, error) {
	return memo(s, "scale", s.scalability)
}

func (s *Suite) scalability() (*ScalabilityResult, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.Scalability10k())
	row, err := s.fig9Row(dev, cfg, cfg.Name)
	if err != nil {
		return nil, err
	}
	res := &ScalabilityResult{
		Features: len(cfg.Features),
		RecFlex:  row.Times["RecFlex"],
		TorchRec: row.Times["TorchRec"],
	}
	res.Speedup = res.TorchRec / res.RecFlex
	return res, nil
}

// PrintScalability renders the 10k-feature study.
func (s *Suite) PrintScalability(w io.Writer) error {
	res, err := s.Scalability()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\n== Scalability (extremely large number of features) ==\n%d features: RecFlex %s, TorchRec %s -> speedup %s (paper: 4.2x at 10,000 features)\n",
		res.Features, report.FmtUS(res.RecFlex), report.FmtUS(res.TorchRec), report.FmtRatio(res.Speedup))
	return err
}

// MLPerfResult is the low-heterogeneity parity check of §VI-B.
type MLPerfResult struct {
	RecFlex   float64
	TorchRec  float64
	Speedup   float64
	Heterogen float64
}

// MLPerf runs the 26-feature MLPerf-like dataset (never scaled: it is already
// tiny) on the V100.
func (s *Suite) MLPerf() (*MLPerfResult, error) {
	return memo(s, "mlperf", s.mlperf)
}

func (s *Suite) mlperf() (*MLPerfResult, error) {
	dev := gpusim.V100()
	cfg := datasynth.MLPerfLike()
	row, err := s.fig9Row(dev, cfg, cfg.Name)
	if err != nil {
		return nil, err
	}
	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	stats := datasynth.CollectFeatureStats(cfg, ds.Batches)
	res := &MLPerfResult{
		RecFlex:   row.Times["RecFlex"],
		TorchRec:  row.Times["TorchRec"],
		Heterogen: datasynth.HeterogeneityIndex(stats),
	}
	res.Speedup = res.TorchRec / res.RecFlex
	return res, nil
}

// PrintMLPerf renders the parity check.
func (s *Suite) PrintMLPerf(w io.Writer) error {
	res, err := s.MLPerf()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\n== MLPerf-like dataset (26 features, low heterogeneity %.3f) ==\nRecFlex %s vs TorchRec %s -> %s (paper: nearly the same performance)\n",
		res.Heterogen, report.FmtUS(res.RecFlex), report.FmtUS(res.TorchRec), report.FmtRatio(res.Speedup))
	return err
}

// OverheadResult quantifies §VI-E: the host-side runtime thread-mapping cost
// relative to data loading, plus the tuning wall-clock.
type OverheadResult struct {
	DataLoad time.Duration // deserialize the eval batches from bytes

	// HostAnalysis is the paper's "extra workload analysis per data
	// reading": per-feature workload statistics (the input of the runtime
	// task map).
	HostAnalysis time.Duration

	// FullCompile additionally includes what only the simulator needs —
	// per-block cost-model construction — and therefore overstates the
	// production overhead.
	FullCompile time.Duration

	RatioPct   float64
	TuningWall time.Duration
}

// Overhead measures the real (wall-clock) costs on model A.
func (s *Suite) Overhead() (*OverheadResult, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelA())
	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	_, eval := s.Split(ds)
	features := Features(cfg)
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}
	tuned := rf.Tuned()

	// Data loading: serialize the eval batches once, then time reading.
	one := &datasynth.Dataset{Config: cfg, Batches: eval}
	var buf bytes.Buffer
	if err := datasynth.WriteDataset(&buf, one); err != nil {
		return nil, err
	}
	raw := buf.Bytes()
	// Wall-clock audit: the time.Now reads below measure real host costs
	// (dataset decode, workload analysis) for the overhead table only. None
	// of them feed virtual time, a session log, or any deterministic-replay
	// pin — keep it that way; replayed results must never depend on host
	// speed.
	const reps = 5
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := datasynth.ReadDataset(bytes.NewReader(raw), cfg); err != nil {
			return nil, err
		}
	}
	load := time.Since(start) / reps

	// Host-side workload analysis alone (the paper's per-read addition).
	start = time.Now()
	for i := 0; i < reps; i++ {
		for _, b := range eval {
			if _, err := fusion.AnalyzeBatch(features, b); err != nil {
				return nil, err
			}
		}
	}
	host := time.Since(start) / reps

	// Full compilation, including the simulator-only cost-model build.
	start = time.Now()
	for i := 0; i < reps; i++ {
		for _, b := range eval {
			if _, err := fusion.Compile(dev, features, tuned.Choices, b, fusion.Options{
				TargetBlocksPerSM: tuned.Occupancy,
			}); err != nil {
				return nil, err
			}
		}
	}
	full := time.Since(start) / reps

	res := &OverheadResult{DataLoad: load, HostAnalysis: host, FullCompile: full}
	if load > 0 {
		res.RatioPct = 100 * float64(host) / float64(load)
	}
	return res, nil
}

// PrintOverhead renders the overhead analysis.
func (s *Suite) PrintOverhead(w io.Writer) error {
	res, err := s.Overhead()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\n== Overhead analysis ==\ndata loading: %v, host-side workload analysis: %v (%.1f%% of loading; paper: <0.1%% against heavyweight production preprocess), full compile incl. simulator cost models: %v\n",
		res.DataLoad, res.HostAnalysis, res.RatioPct, res.FullCompile)
	return err
}

// RunAll executes every experiment and prints the full report.
func (s *Suite) RunAll(w io.Writer) error {
	if err := PrintTable1(w); err != nil {
		return err
	}
	if err := s.PrintFig2(w); err != nil {
		return err
	}
	if err := PrintFig3(w); err != nil {
		return err
	}
	if err := s.PrintFig9(w); err != nil {
		return err
	}
	if err := s.PrintFig10(w); err != nil {
		return err
	}
	if err := s.PrintTable2(w); err != nil {
		return err
	}
	if err := s.PrintFig11(w); err != nil {
		return err
	}
	if err := s.PrintFig12(w); err != nil {
		return err
	}
	if err := s.PrintFig13(w); err != nil {
		return err
	}
	if err := s.PrintScalability(w); err != nil {
		return err
	}
	if err := s.PrintMLPerf(w); err != nil {
		return err
	}
	return s.PrintOverhead(w)
}
