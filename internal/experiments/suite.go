// Package experiments implements the paper's full evaluation harness: one
// entry point per table and figure of the evaluation section (Tables I-II,
// Figures 2-3 and 9-13) plus the scalability, MLPerf-parity and overhead
// studies of §VI. The cmd/recflex-bench binary and the repository's
// bench_test.go both drive these entry points; they print the same rows and
// series the paper reports, with EXPERIMENTS.md recording paper-vs-measured.
package experiments

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

// Config scales the harness. The paper's full setting (1,000+ features, 128
// evaluation batches, a DGX for tuning) is reachable with Scale=1; the
// default runs the same experiments at reduced feature counts so the whole
// suite completes on a laptop in minutes. Scaling keeps every model's
// one-hot/multi-hot mix and dimension palette, so the qualitative shape of
// the results is preserved.
type Config struct {
	// Scale divides the feature count of each Table-I model (1 = full).
	Scale int
	// TuneBatches is the number of historical batches the tuner samples.
	TuneBatches int
	// EvalBatches is the number of batches measured per experiment
	// (the paper samples 128).
	EvalBatches int
	// BatchCap is the serving batch-size limit (512 in the paper).
	BatchCap int
	// Occupancies passed to the tuner (nil = derive all levels).
	Occupancies []int
	// Parallelism for the tuner's local stage.
	Parallelism int
}

// DefaultConfig returns a laptop-scale configuration.
func DefaultConfig() Config {
	return Config{
		Scale:       10,
		TuneBatches: 2,
		EvalBatches: 8,
		BatchCap:    512,
		Occupancies: []int{1, 2, 3, 4, 6, 8},
	}
}

// PaperConfig returns the full-scale configuration of the evaluation section.
func PaperConfig() Config {
	return Config{
		Scale:       1,
		TuneBatches: 4,
		EvalBatches: 128,
		BatchCap:    512,
	}
}

// Suite caches datasets and tuned RecFlex instances across experiments so one
// harness run tunes each (device, model) pair exactly once.
type Suite struct {
	Cfg Config

	mu      sync.Mutex
	data    map[string]*datasynth.Dataset
	tuned   map[string]*core.RecFlex
	results map[string]any
}

// NewSuite creates a harness with the given configuration.
func NewSuite(cfg Config) *Suite {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.TuneBatches < 1 {
		cfg.TuneBatches = 1
	}
	if cfg.EvalBatches < 1 {
		cfg.EvalBatches = 1
	}
	if cfg.BatchCap < 1 {
		cfg.BatchCap = 512
	}
	return &Suite{
		Cfg:     cfg,
		data:    make(map[string]*datasynth.Dataset),
		tuned:   make(map[string]*core.RecFlex),
		results: make(map[string]any),
	}
}

// memo caches an experiment's result so printing and CSV export do not
// re-measure (the suite is deterministic, so caching is sound).
func memo[T any](s *Suite, key string, compute func() (T, error)) (T, error) {
	s.mu.Lock()
	if v, ok := s.results[key]; ok {
		s.mu.Unlock()
		return v.(T), nil
	}
	s.mu.Unlock()
	v, err := compute()
	if err != nil {
		var zero T
		return zero, err
	}
	s.mu.Lock()
	s.results[key] = v
	s.mu.Unlock()
	return v, nil
}

// Features converts a dataset config into the fusion feature descriptions.
func Features(cfg *datasynth.ModelConfig) []fusion.FeatureInfo {
	out := make([]fusion.FeatureInfo, len(cfg.Features))
	for f := range cfg.Features {
		out[f] = fusion.FeatureInfo{
			Name:      cfg.Features[f].Name,
			Dim:       cfg.Features[f].Dim,
			TableRows: cfg.Features[f].Rows,
			Pool:      embedding.PoolSum,
		}
	}
	return out
}

// ScaledModel returns one of the Table-I models at the suite's scale.
func (s *Suite) ScaledModel(cfg *datasynth.ModelConfig) *datasynth.ModelConfig {
	return datasynth.Scaled(cfg, s.Cfg.Scale)
}

// Dataset returns (generating on first use) the evaluation dataset of a
// model: TuneBatches+EvalBatches batches with serving-sized request batches.
func (s *Suite) Dataset(cfg *datasynth.ModelConfig) (*datasynth.Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds, ok := s.data[cfg.Name]; ok {
		return ds, nil
	}
	n := s.Cfg.TuneBatches + s.Cfg.EvalBatches
	sizes := datasynth.RequestSizes(n, s.Cfg.BatchCap, cfg.Seed^0xBA7C4)
	ds, err := datasynth.GenerateDataset(cfg, n, sizes)
	if err != nil {
		return nil, err
	}
	s.data[cfg.Name] = ds
	return ds, nil
}

// Split divides a dataset into tuning and evaluation batches.
func (s *Suite) Split(ds *datasynth.Dataset) (tune, eval []*embedding.Batch) {
	return ds.Batches[:s.Cfg.TuneBatches], ds.Batches[s.Cfg.TuneBatches:]
}

// TunedRecFlex returns (tuning on first use) the RecFlex instance for a
// (device, model) pair.
func (s *Suite) TunedRecFlex(dev *gpusim.Device, cfg *datasynth.ModelConfig) (*core.RecFlex, error) {
	key := dev.Name + "/" + cfg.Name
	s.mu.Lock()
	if rf, ok := s.tuned[key]; ok {
		s.mu.Unlock()
		return rf, nil
	}
	s.mu.Unlock()

	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	tune, _ := s.Split(ds)
	rf := core.New(dev, Features(cfg))
	if err := rf.Tune(tune, tuner.Options{
		Occupancies: s.Cfg.Occupancies,
		Parallelism: s.Cfg.Parallelism,
	}); err != nil {
		return nil, fmt.Errorf("experiments: tuning %s on %s: %w", cfg.Name, dev.Name, err)
	}
	s.mu.Lock()
	s.tuned[key] = rf
	s.mu.Unlock()
	return rf, nil
}

// Devices returns the two evaluation platforms.
func Devices() []*gpusim.Device {
	return []*gpusim.Device{gpusim.V100(), gpusim.A100()}
}
