package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/datasynth"
)

// CacheHeat mirrors the synthesizer: rows-per-sample is coverage times mean
// pooling factor, skew follows the ID distribution, bytes follow the dim.
func TestCacheHeat(t *testing.T) {
	cfg := datasynth.ModelA()
	heats := CacheHeat(cfg)
	if len(heats) != len(cfg.Features) {
		t.Fatalf("got %d heats for %d features", len(heats), len(cfg.Features))
	}
	sawZipf, sawUniform := false, false
	for i, h := range heats {
		f := &cfg.Features[i]
		if h.Rows != f.Rows {
			t.Errorf("feature %d rows = %d, want %d", i, h.Rows, f.Rows)
		}
		if h.RowBytes != int64(f.Dim)*4 {
			t.Errorf("feature %d row bytes = %d, want %d", i, h.RowBytes, int64(f.Dim)*4)
		}
		want := f.Coverage * f.PF.Mean()
		if math.Abs(h.RowsPerSample-want) > 1e-12 {
			t.Errorf("feature %d rows/sample = %g, want %g", i, h.RowsPerSample, want)
		}
		switch {
		case f.IDs == datasynth.IDZipf:
			sawZipf = true
			if h.Skew != datasynth.ZipfSkew {
				t.Errorf("zipf feature %d skew = %g, want %g", i, h.Skew, datasynth.ZipfSkew)
			}
		default:
			sawUniform = true
			if h.Skew != 0 {
				t.Errorf("uniform feature %d skew = %g, want 0", i, h.Skew)
			}
		}
	}
	if !sawZipf || !sawUniform {
		t.Errorf("model A should exercise both ID distributions (zipf=%v uniform=%v)", sawZipf, sawUniform)
	}
}

// The cache study's acceptance criteria: under the skew shift at least one
// adaptive discipline (eviction or re-tiering) beats the frozen static
// allocation measurably on the post-shift interactive p99, the re-tiering
// variant actually re-tiers and recovers hit rate, and the eviction variants
// actually churn residency.
func TestCacheStudy(t *testing.T) {
	s := testSuite()
	res, err := s.CacheStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.InteractiveService <= 0 {
		t.Fatalf("probed interactive service %g", res.InteractiveService)
	}
	if len(res.Variants) != 4 || res.Variants[0].Name != "static" {
		t.Fatalf("variants = %+v", res.Variants)
	}

	static := res.Variants[0]
	if static.HitRate <= 0 || static.HitRate >= 1 {
		t.Errorf("static hit rate %g should be partial: full hits or full misses means the drift scenario collapsed", static.HitRate)
	}
	if static.PostShiftP99 <= static.PreShiftP99 {
		t.Errorf("the shift did not hurt static: pre p99 %g, post p99 %g", static.PreShiftP99, static.PostShiftP99)
	}

	// The tentpole assertion: some eviction/re-tiering discipline is
	// measurably better than static on the interactive tail after the shift.
	if !res.EvictionWins {
		t.Errorf("no adaptive discipline beat static measurably: best %s gain %.3fx (static post p99 %g)",
			res.BestEviction, res.EvictionGain, static.PostShiftP99)
	}
	if res.EvictionGain < 1.1 {
		t.Errorf("eviction gain %.3fx below the 1.1x bar", res.EvictionGain)
	}

	byName := map[string]CachePolicyAct{}
	for _, v := range res.Variants {
		byName[v.Name] = v
	}
	rt := byName["static+retier"]
	if rt.Retiers == 0 {
		t.Error("re-tiering variant never re-tiered")
	}
	if !res.RetierRecovers {
		t.Errorf("re-tiering did not recover hit rate: retier %g vs static %g", rt.HitRate, static.HitRate)
	}
	if static.Fills != 0 || static.Evictions != 0 || static.Retiers != 0 {
		t.Errorf("frozen static churned residency (fills %d, evictions %d, retiers %d); its allocation must stay pinned",
			static.Fills, static.Evictions, static.Retiers)
	}
	for _, name := range []string{"lru", "clock"} {
		v := byName[name]
		if v.Fills == 0 || v.Evictions == 0 {
			t.Errorf("%s churned nothing (fills %d, evictions %d); the drift scenario never exercised eviction", name, v.Fills, v.Evictions)
		}
		if v.HitRate <= static.HitRate {
			t.Errorf("%s hit rate %g did not beat static %g", name, v.HitRate, static.HitRate)
		}
	}

	// The flash of cold batch traffic is charged to the batch tenant, and
	// every variant pays something for it — the 16384-row uniform table never
	// fully fits the budget.
	for _, v := range res.Variants {
		if v.BatchPenalty <= 0 {
			t.Errorf("%s batch penalty %g; the flash paid nothing", v.Name, v.BatchPenalty)
		}
		if !(v.Penalty > 0) || math.IsInf(v.Penalty, 0) {
			t.Errorf("%s total penalty %g", v.Name, v.Penalty)
		}
	}
}

func TestPrintCacheStudy(t *testing.T) {
	s := testSuite()
	var buf bytes.Buffer
	if err := s.PrintCacheStudy(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Embedding cache tier", "static+retier", "lru", "clock",
		"best adaptive discipline", "wins=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
