package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasynth"
	"repro/internal/report"
)

// Table1Row is one row of Table I (basic statistics of the models).
type Table1Row struct {
	Model    string
	Features int
	OneHot   int
	MultiHot int
	DimLo    int
	DimHi    int
}

// Table1 reproduces Table I from the dataset generator configs (always at
// full scale — it characterizes the datasets, not the run).
func Table1() []Table1Row {
	rows := make([]Table1Row, 0, 5)
	for _, cfg := range datasynth.StandardModels() {
		oneHot, multiHot := cfg.CountHot()
		lo, hi := cfg.DimRange()
		rows = append(rows, Table1Row{
			Model:    cfg.Name,
			Features: len(cfg.Features),
			OneHot:   oneHot,
			MultiHot: multiHot,
			DimLo:    lo,
			DimHi:    hi,
		})
	}
	return rows
}

// PrintTable1 renders Table I.
func PrintTable1(w io.Writer) error {
	t := &report.Table{
		Title:  "Table I: basic statistics of evaluated models and datasets",
		Header: []string{"Model", "# Features", "# One-hot", "# Multi-hot", "Emb. Dim."},
	}
	for _, r := range Table1() {
		dim := fmt.Sprintf("%d-%d", r.DimLo, r.DimHi)
		if r.DimLo == r.DimHi {
			dim = fmt.Sprintf("%d", r.DimLo)
		}
		t.AddRow(r.Model, fmt.Sprintf("%d", r.Features), fmt.Sprintf("%d", r.OneHot),
			fmt.Sprintf("%d", r.MultiHot), dim)
	}
	return t.Write(w)
}

// Fig2Result is the data behind Figure 2: the embedding-dimension
// distribution of a model and the pooling factors of four features over 50
// samples.
type Fig2Result struct {
	Dims      []int
	DimCounts []int
	Features  []int
	PFSeries  [][]int
	Heterogen float64
}

// Fig2 characterizes feature heterogeneity on model A.
func (s *Suite) Fig2() (*Fig2Result, error) {
	cfg := s.ScaledModel(datasynth.ModelA())
	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	hist := datasynth.DimHistogram(cfg)
	dims := datasynth.SortedDims(hist)
	res := &Fig2Result{Dims: dims}
	for _, d := range dims {
		res.DimCounts = append(res.DimCounts, hist[d])
	}

	// Four multi-hot features with visibly different pooling behaviour.
	batch := ds.Batches[0]
	picked := 0
	for f := range cfg.Features {
		if picked == 4 {
			break
		}
		if cfg.Features[f].OneHot() {
			continue
		}
		series := datasynth.PoolingFactorSeries(batch, f)
		if len(series) > 50 {
			series = series[:50]
		}
		res.Features = append(res.Features, f)
		res.PFSeries = append(res.PFSeries, series)
		picked++
	}
	stats := datasynth.CollectFeatureStats(cfg, ds.Batches)
	res.Heterogen = datasynth.HeterogeneityIndex(stats)
	return res, nil
}

// PrintFig2 renders the Figure 2 data.
func (s *Suite) PrintFig2(w io.Writer) error {
	res, err := s.Fig2()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Figure 2(a): embedding dimension distribution (model A)",
		Header: []string{"Dim", "# Features"},
	}
	for i, d := range res.Dims {
		t.AddRow(fmt.Sprintf("%d", d), fmt.Sprintf("%d", res.DimCounts[i]))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	t2 := &report.Table{
		Title:  "Figure 2(b): pooling factors of 4 multi-hot features over 50 samples",
		Header: []string{"Feature", "min", "max", "first 10 samples"},
	}
	for i, f := range res.Features {
		lo, hi := res.PFSeries[i][0], res.PFSeries[i][0]
		for _, v := range res.PFSeries[i] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		head := ""
		for j := 0; j < 10 && j < len(res.PFSeries[i]); j++ {
			head += fmt.Sprintf("%d ", res.PFSeries[i][j])
		}
		t2.AddRow(fmt.Sprintf("f%d", f), fmt.Sprintf("%d", lo), fmt.Sprintf("%d", hi), head)
	}
	if err := t2.Write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "heterogeneity index (CV of per-feature mean work): %.2f\n", res.Heterogen)
	return err
}
