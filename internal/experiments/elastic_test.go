package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// testFreshSuite builds a second Suite with the shared test configuration,
// for determinism checks that must not read the package-shared memo.
func testFreshSuite() *Suite {
	return NewSuite(Config{
		Scale:       25,
		TuneBatches: 2,
		EvalBatches: 3,
		BatchCap:    512,
		Occupancies: []int{1, 2, 3, 4, 6, 8},
		Parallelism: 4,
	})
}

// The elastic study's acceptance criteria: the elastic heterogeneous pool
// (chunk-boundary preemption + A100-class autoscaling) beats the static
// homogeneous pool measurably on the burst-window interactive p99, the
// autoscaler actually scaled out and drained back, preemption actually
// fired, and the A100 class is genuinely faster.
func TestElasticStudy(t *testing.T) {
	s := testSuite()
	res, err := s.ElasticStudy()
	if err != nil {
		t.Fatal(err)
	}
	if res.InteractiveService <= 0 {
		t.Fatalf("probed interactive service %g", res.InteractiveService)
	}
	if res.A100Speedup <= 1 {
		t.Errorf("A100 speedup %.3fx should exceed 1x: the heterogeneous pool's faster class is not faster", res.A100Speedup)
	}

	st, el := res.Static, res.Elastic
	if st.Preemptions != 0 || st.ScaleOuts != 0 || st.Drains != 0 {
		t.Errorf("static pool reported elastic activity: %+v", st)
	}
	if st.PeakWorkers != 2 {
		t.Errorf("static pool peaked at %d workers, want the fixed 2", st.PeakWorkers)
	}
	if el.Preemptions == 0 {
		t.Error("elastic pool never preempted a batch chunk although interactive requests queued behind chunk trains")
	}
	if el.ScaleOuts == 0 {
		t.Error("elastic pool never scaled out although the burst tripled the interactive rate")
	}
	if el.Drains == 0 {
		t.Error("elastic pool never drained back although the burst ends mid-trace")
	}
	if el.PeakWorkers <= 2 {
		t.Errorf("elastic pool peaked at %d workers, want more than the initial 2", el.PeakWorkers)
	}
	if st.Served == 0 || el.Served == 0 {
		t.Fatalf("variants served nothing: static %d, elastic %d", st.Served, el.Served)
	}

	// The tentpole assertion: the elastic heterogeneous pool wins the burst
	// tail measurably.
	if !res.ElasticWins {
		t.Errorf("elastic pool did not win measurably: gain %.3fx (static burst p99 %g, elastic %g)",
			res.P99Gain, st.BurstP99, el.BurstP99)
	}

	// Determinism: a fresh suite reproduces the identical result.
	res2, err := testFreshSuite().ElasticStudy()
	if err != nil {
		t.Fatal(err)
	}
	if *res2 != *res {
		t.Errorf("elastic study is not deterministic:\nfirst:  %+v\nsecond: %+v", res, res2)
	}
}

func TestPrintElasticStudy(t *testing.T) {
	var buf bytes.Buffer
	if err := testSuite().PrintElasticStudy(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Elastic heterogeneous pool", "static", "elastic",
		"preemptions", "scale-outs", "drains", "wins=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("elastic study output missing %q in:\n%s", want, out)
		}
	}
}
