package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasynth"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/sched"
)

// Fig12Curve is the performance-variation curve of one feature: the fused
// kernel's time as that feature's schedule is swapped through every candidate
// while all other features keep their tuned schedules.
type Fig12Curve struct {
	Feature   int
	Name      string
	Chosen    int       // candidate index the tuner picked
	Times     []float64 // per candidate; 0 = unsupported
	BestIdx   int
	ChosenGap float64 // chosen time / best time
}

// Fig12 sweeps three multi-hot features of model A on the V100.
func (s *Suite) Fig12() ([]Fig12Curve, error) {
	return memo(s, "fig12", s.fig12)
}

func (s *Suite) fig12() ([]Fig12Curve, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelA())
	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	_, eval := s.Split(ds)
	batch := eval[0]
	features := Features(cfg)
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}
	tuned := rf.Tuned()

	// Three multi-hot features, spread across the model.
	var picked []int
	for f := range cfg.Features {
		if !cfg.Features[f].OneHot() {
			picked = append(picked, f)
		}
	}
	if len(picked) > 3 {
		stride := len(picked) / 3
		picked = []int{picked[0], picked[stride], picked[2*stride]}
	}

	var curves []Fig12Curve
	for _, f := range picked {
		candidates := sched.DefaultCandidates(features[f].Dim)
		curve := Fig12Curve{
			Feature: f,
			Name:    features[f].Name,
			Chosen:  tuned.ChoiceIdx[f],
			Times:   make([]float64, len(candidates)),
			BestIdx: -1,
		}
		for ci, cand := range candidates {
			choices := append([]sched.Schedule(nil), tuned.Choices...)
			choices[f] = cand
			fu, err := fusion.Compile(dev, features, choices, batch, fusion.Options{
				TargetBlocksPerSM: tuned.Occupancy,
			})
			if err != nil {
				continue // candidate unsupported under this workload/occupancy
			}
			r, err := fu.Simulate()
			if err != nil {
				return nil, err
			}
			curve.Times[ci] = r.Time
			if curve.BestIdx < 0 || r.Time < curve.Times[curve.BestIdx] {
				curve.BestIdx = ci
			}
		}
		if curve.BestIdx >= 0 && curve.Times[curve.Chosen] > 0 {
			curve.ChosenGap = curve.Times[curve.Chosen] / curve.Times[curve.BestIdx]
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

// PrintFig12 renders the sweep.
func (s *Suite) PrintFig12(w io.Writer) error {
	curves, err := s.Fig12()
	if err != nil {
		return err
	}
	for _, c := range curves {
		t := &report.Table{
			Title:  fmt.Sprintf("Figure 12: schedule sweep of feature %d (%s); tuner chose candidate %d", c.Feature, c.Name, c.Chosen),
			Header: []string{"Candidate", "Time", "Normalized", ""},
		}
		best := 0.0
		if c.BestIdx >= 0 {
			best = c.Times[c.BestIdx]
		}
		for ci, tm := range c.Times {
			if tm == 0 {
				continue
			}
			mark := ""
			if ci == c.Chosen {
				mark = " o (chosen)"
			}
			t.AddRow(fmt.Sprintf("%d", ci), report.FmtUS(tm), fmt.Sprintf("%.3f%s", best/tm, mark), report.Bar(best/tm, 24))
		}
		if err := t.Write(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "chosen-vs-best gap: %.1f%%\n", (c.ChosenGap-1)*100); err != nil {
			return err
		}
	}
	return nil
}
