package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// DriftResult is the §IV-A3 re-tuning lifecycle study, run end-to-end through
// the continuous serving loop: a drifting request trace (pooling factors
// scale by DriftFactor mid-stream) is replayed through trace.Supervisor,
// which detects the shift online, re-tunes in the background on a worker
// slot, and hot-swaps the fresh schedule set. The same trace replayed with
// the detector pinned off gives the stale-schedule baseline, so the
// latency split compares identical post-drift requests under old vs new
// schedules.
type DriftResult struct {
	DriftFactor float64
	// Detected reports whether the supervisor's drift check fired (at least
	// one swap happened).
	Detected bool
	// Generation is the final schedule-set generation (number of swaps).
	Generation int
	// DetectedAt and SwappedAt are the virtual times of the (first) drift
	// detection and its hot-swap going live.
	DetectedAt, SwappedAt float64
	// TuneBusy is the simulated worker time the background tunes occupied.
	TuneBusy float64
	// StaleLatency is the mean post-swap-window sojourn when the drifted
	// requests are served by the original (stale) schedules.
	StaleLatency float64
	// FreshLatency is the mean sojourn of the same requests under the
	// re-tuned generation.
	FreshLatency float64
	Improvement  float64
	// Guarded-promotion stress: the same drifted trace replayed with a
	// deliberately poisoned re-tune (3x the live generation's service — a
	// tune that overfit a noisy window) behind the canary guard.
	// PoisonRollbacks counts the promotions the canary reverted (1 when the
	// guard caught the poison), PoisonCanaryMean / PoisonBaselineMean record
	// the verdict, RollbackAt the virtual time of the revert, and
	// PostRollbackMean the mean sojourn on the reinstated schedules after it.
	PoisonRollbacks                      int
	PoisonCanaryMean, PoisonBaselineMean float64
	RollbackAt                           float64
	PostRollbackMean                     float64
	// Fleet-speed act: the same drift-detect→hot-swap lifecycle timed under
	// the serial reference tuner and under the fleet-speed engine. The wall
	// times are measured host seconds spent inside the background re-tune
	// (trace.Metrics.TuneWall). The fleet arms keep pruning OFF, so the
	// re-tuned schedule set is bit-identical to the serial reference by the
	// equivalence pin; the speed comes from warm-starting the search from
	// the outgoing generation and from a fleet-shared simulation memo.
	RetuneWallSerial float64
	// RetuneWallWarm is the first fleet replica's re-tune: warm-started from
	// the outgoing generation (occupancies that cannot beat the incumbent
	// abandon early) against a still-cold shared memo.
	RetuneWallWarm float64
	// RetuneWallFleet is the second replica's re-tune over the shared drift
	// profile window: every candidate simulation hits the memo the first
	// replica populated, so the drift-detect→hot-swap wall time collapses.
	// This is the steady-state per-replica cost of rolling a re-tune across
	// a fleet.
	RetuneWallFleet float64
	// RetuneSpeedup is RetuneWallSerial / RetuneWallFleet.
	RetuneSpeedup float64
	// FastScheduleMatch reports whether both fleet re-tunes selected exactly
	// the serial re-tune's schedules and occupancy.
	FastScheduleMatch bool
}

// DriftStudy runs the lifecycle on model C (all multi-hot: every feature
// drifts).
func (s *Suite) DriftStudy() (*DriftResult, error) {
	return memo(s, "drift", s.driftStudy)
}

func (s *Suite) driftStudy() (*DriftResult, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelC())
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}

	const factor = 4.0
	const n = 128
	reqs, err := trace.Generate(n, trace.GeneratorConfig{
		QPS:      40,
		MaxBatch: s.Cfg.BatchCap,
		Seed:     cfg.Seed ^ 0xD81F7,
	})
	if err != nil {
		return nil, err
	}
	// The shift lands a third of the way in, so the supervisor tunes up on
	// stable traffic first and has plenty of post-swap trace to measure.
	drift := datasynth.StepDrift(reqs[n/3].Arrival, factor)
	src := func(t float64, size int) (*embedding.Batch, error) {
		return drift.BatchForSize(cfg, t, size)
	}
	opts := core.ContinuousOptions{
		Supervisor: trace.SupervisorConfig{
			Server:     trace.ServerConfig{Workers: 2},
			Window:     16,
			CheckEvery: 8,
			MaxRetunes: 1,
		},
		// Coarser quantization than the serving default: the study measures
		// three schedule sets (two generations plus the stale baseline), so
		// fewer distinct (phase, size) keys keep it laptop-fast.
		Quantum:       64,
		PhaseOf:       drift.PhaseStart,
		RetuneBatches: s.Cfg.TuneBatches,
		Tune: tuner.Options{
			Occupancies: s.Cfg.Occupancies,
			Parallelism: s.Cfg.Parallelism,
		},
	}

	// The continuous run re-tunes and adopts the final generation; run it on
	// a clone so the suite's cached instance keeps its original tuning.
	live := rf.Clone()
	rep, err := live.ServeContinuous(reqs, src, opts)
	if err != nil {
		return nil, err
	}

	// Stale baseline: the identical loop with drift control disabled, i.e.
	// every request served by generation 0. Same engine, same trace, same
	// virtual clock — the only difference is the schedules.
	staleRep, err := rf.ServeFrozen(reqs, src, opts)
	if err != nil {
		return nil, err
	}

	res := &DriftResult{
		DriftFactor: factor,
		Detected:    len(rep.Metrics.Swaps) > 0,
		Generation:  rep.Metrics.Generation,
		TuneBusy:    rep.Metrics.TuneBusy,
	}
	if !res.Detected {
		return res, nil
	}
	res.DetectedAt = rep.Metrics.Swaps[0].Detected
	res.SwappedAt = rep.Metrics.Swaps[0].Swapped

	// Post-swap latency split over the exact same request indices.
	freshMean, staleMean, count := core.PostSwapSplit(rep, staleRep)
	if count == 0 {
		return nil, fmt.Errorf("experiments: drift study swapped at t=%g but served no post-swap requests", res.SwappedAt)
	}
	res.FreshLatency = freshMean
	res.StaleLatency = staleMean
	res.Improvement = res.StaleLatency / res.FreshLatency

	// Fleet-speed act: time the drift-detect→hot-swap path — the wall time
	// the background re-tune actually takes — under the serial reference
	// tuner and under the fleet-speed engine. Same trace, same drift, same
	// supervisor; only the tuner engine differs. The serial arm replays the
	// lifecycle with Options.Serial pinning the pre-fleet-speed reference.
	// The fleet arm models two replicas of the model hitting the same drift
	// and re-tuning from the shared drift profile window: both warm-start
	// from the outgoing generation, keep pruning OFF (so the schedule set is
	// bit-identical to the serial arm by construction), and share one
	// simulation memo. The first replica pays for the simulations once; the
	// second replica's re-tune — the fleet steady state — runs almost
	// entirely out of the memo.
	serialOpts := opts
	serialOpts.Tune.Serial = true
	serialLive := rf.Clone()
	serialRep, err := serialLive.ServeContinuous(reqs, src, serialOpts)
	if err != nil {
		return nil, err
	}
	res.RetuneWallSerial = serialRep.Metrics.TuneWall

	fleetOpts := opts
	fleetOpts.WarmStart = true
	fleetOpts.Tune.Memo = tuner.NewMemo()
	warmLive := rf.Clone()
	warmRep, err := warmLive.ServeContinuous(reqs, src, fleetOpts)
	if err != nil {
		return nil, err
	}
	res.RetuneWallWarm = warmRep.Metrics.TuneWall

	fleetLive := rf.Clone()
	fleetRep, err := fleetLive.ServeContinuous(reqs, src, fleetOpts)
	if err != nil {
		return nil, err
	}
	res.RetuneWallFleet = fleetRep.Metrics.TuneWall
	if res.RetuneWallFleet > 0 {
		res.RetuneSpeedup = res.RetuneWallSerial / res.RetuneWallFleet
	}
	res.FastScheduleMatch = sameTuning(serialLive, warmLive) && sameTuning(serialLive, fleetLive)

	// Guarded-promotion stress: replay the same trace, but make the re-tune
	// poisoned — 3x slower than the live schedules, the worst case of a tune
	// overfitting a noisy drift window. The canary guard must measure the
	// promotion worse than the pre-swap baseline and roll it back. This act
	// drives the trace-level supervisor directly: the poison is injected at
	// the service layer, below core's real tuner.
	base := rf.TimedService(src, opts.Quantum, opts.PhaseOf)
	driftAt := reqs[n/3].Arrival
	detect := func(win []trace.WindowEntry) (bool, error) {
		return win[len(win)-1].Time >= driftAt, nil
	}
	poisoned := func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return func(t float64, size int) (float64, error) {
			sv, err := base(t, size)
			return sv * 3, err
		}, nil
	}
	pcfg := opts.Supervisor
	pcfg.CanaryWindow = 8
	pcfg.RollbackMargin = 0.25
	pcfg.MaxRetunes = 1
	guard, err := trace.NewSupervisor(pcfg, base, detect, poisoned)
	if err != nil {
		return nil, err
	}
	prep, err := guard.Run(reqs)
	if err != nil {
		return nil, err
	}
	pm := prep.Metrics
	res.PoisonRollbacks = pm.Rollbacks
	for _, s := range pm.Swaps {
		if s.Rollback {
			res.RollbackAt = s.Swapped
			// Mean sojourn on the reinstated generation's traffic.
			var sum float64
			var cnt int
			for i, g := range prep.Generations {
				if g == s.Generation && !math.IsNaN(prep.Sojourn[i]) {
					sum += prep.Sojourn[i]
					cnt++
				}
			}
			if cnt > 0 {
				res.PostRollbackMean = sum / float64(cnt)
			}
		} else {
			res.PoisonCanaryMean = s.CanaryMean
			res.PoisonBaselineMean = s.BaselineMean
		}
	}
	return res, nil
}

// sameTuning reports whether two instances adopted the same schedule set:
// identical winning occupancy and per-feature schedule choices.
func sameTuning(a, b *core.RecFlex) bool {
	ta, tb := a.Tuned(), b.Tuned()
	if ta == nil || tb == nil || ta.Occupancy != tb.Occupancy || len(ta.Choices) != len(tb.Choices) {
		return false
	}
	for f := range ta.Choices {
		if ta.Choices[f].Name() != tb.Choices[f].Name() {
			return false
		}
	}
	return true
}

// PrintDriftStudy renders the lifecycle study.
func (s *Suite) PrintDriftStudy(w io.Writer) error {
	res, err := s.DriftStudy()
	if err != nil {
		return err
	}
	if !res.Detected {
		_, err = fmt.Fprintf(w, "\n== Re-tuning lifecycle (§IV-A3, model C, pooling factors x%.0f) ==\ndrift not detected; schedules kept\n", res.DriftFactor)
		return err
	}
	if _, err = fmt.Fprintf(w, "\n== Re-tuning lifecycle (§IV-A3, model C, pooling factors x%.0f) ==\ndrift detected at t=%s, re-tuned in background (%s busy), hot-swapped at t=%s (generation %d)\npost-swap: stale schedules %s vs re-tuned %s -> hot-swap recovers %s\n",
		res.DriftFactor,
		report.FmtUS(res.DetectedAt), report.FmtUS(res.TuneBusy), report.FmtUS(res.SwappedAt), res.Generation,
		report.FmtUS(res.StaleLatency), report.FmtUS(res.FreshLatency),
		report.FmtRatio(res.Improvement)); err != nil {
		return err
	}
	match := "schedules unchanged"
	if !res.FastScheduleMatch {
		match = "schedules differ"
	}
	if _, err = fmt.Fprintf(w, "fleet-speed re-tune: serial %.0fms, warm-start %.0fms, fleet-shared memo %.0fms (%.1fx faster, %s)\n",
		res.RetuneWallSerial*1e3, res.RetuneWallWarm*1e3, res.RetuneWallFleet*1e3, res.RetuneSpeedup, match); err != nil {
		return err
	}
	if res.PoisonRollbacks > 0 {
		_, err = fmt.Fprintf(w, "poisoned re-tune: canary measured %s vs baseline %s -> rolled back at t=%s, post-rollback %s (%d rollback)\n",
			report.FmtUS(res.PoisonCanaryMean), report.FmtUS(res.PoisonBaselineMean),
			report.FmtUS(res.RollbackAt), report.FmtUS(res.PostRollbackMean), res.PoisonRollbacks)
	} else {
		_, err = fmt.Fprintf(w, "poisoned re-tune: canary did not roll back (canary %s vs baseline %s)\n",
			report.FmtUS(res.PoisonCanaryMean), report.FmtUS(res.PoisonBaselineMean))
	}
	return err
}
