package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/tuner"
)

// DriftResult is the §IV-A3 re-tuning lifecycle study: the paper tunes on
// recent historical data and re-tunes periodically "to handle the
// distribution shifts". This experiment creates the shift (pooling factors
// scale by DriftFactor), and compares serving the drifted workload with the
// stale schedules against re-tuned ones, alongside the drift detector's
// verdict.
type DriftResult struct {
	DriftFactor  float64
	Detected     bool
	StaleLatency float64 // drifted batches under the original schedules
	FreshLatency float64 // drifted batches after re-tuning
	Improvement  float64
}

// DriftStudy runs the lifecycle on model C (all multi-hot: every feature
// drifts).
func (s *Suite) DriftStudy() (*DriftResult, error) {
	return memo(s, "drift", s.driftStudy)
}

func (s *Suite) driftStudy() (*DriftResult, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelC())
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}

	const factor = 4.0
	drifted := datasynth.Drifted(cfg, factor)
	driftedDS, err := datasynth.GenerateDataset(drifted, s.Cfg.TuneBatches+s.Cfg.EvalBatches,
		datasynth.RequestSizes(s.Cfg.TuneBatches+s.Cfg.EvalBatches, s.Cfg.BatchCap, drifted.Seed^0xD81F7))
	if err != nil {
		return nil, err
	}
	newTune := driftedDS.Batches[:s.Cfg.TuneBatches]
	newEval := driftedDS.Batches[s.Cfg.TuneBatches:]

	res := &DriftResult{DriftFactor: factor}
	if res.Detected, err = rf.ShouldRetune(newTune); err != nil {
		return nil, err
	}

	// Serve the drifted workload with the stale schedules.
	features := rf.Features()
	for _, b := range newEval {
		sec, err := rf.Measure(dev, features, b)
		if err != nil {
			return nil, err
		}
		res.StaleLatency += sec
	}

	// Re-tune on the drifted history (a fresh instance; the production
	// system would swap the compiled kernel atomically).
	fresh := core.New(dev, features)
	if err := fresh.Tune(newTune, tuner.Options{
		Occupancies: s.Cfg.Occupancies,
		Parallelism: s.Cfg.Parallelism,
	}); err != nil {
		return nil, err
	}
	for _, b := range newEval {
		sec, err := fresh.Measure(dev, features, b)
		if err != nil {
			return nil, err
		}
		res.FreshLatency += sec
	}
	res.Improvement = res.StaleLatency / res.FreshLatency
	return res, nil
}

// PrintDriftStudy renders the lifecycle study.
func (s *Suite) PrintDriftStudy(w io.Writer) error {
	res, err := s.DriftStudy()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "\n== Re-tuning lifecycle (§IV-A3, model C, pooling factors x%.0f) ==\ndrift detected: %v; stale schedules %s vs re-tuned %s -> re-tuning recovers %s\n",
		res.DriftFactor, res.Detected, report.FmtUS(res.StaleLatency), report.FmtUS(res.FreshLatency),
		report.FmtRatio(res.Improvement))
	return err
}
