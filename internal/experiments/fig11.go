package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/tuner"
)

// Fig11Row compares the two-stage interference-simulated tuning against the
// direct separate-combine straw man on one model: fused-kernel time over the
// evaluation batches under each tuner's choices.
type Fig11Row struct {
	Model       string
	TwoStage    float64
	Separate    float64
	Improvement float64 // Separate / TwoStage
}

// Fig11 runs the tuning ablation on the V100 across models A-E.
func (s *Suite) Fig11() ([]Fig11Row, error) {
	return memo(s, "fig11", s.fig11)
}

func (s *Suite) fig11() ([]Fig11Row, error) {
	dev := gpusim.V100()
	var rows []Fig11Row
	for _, base := range datasynth.StandardModels() {
		cfg := s.ScaledModel(base)
		ds, err := s.Dataset(cfg)
		if err != nil {
			return nil, err
		}
		tune, eval := s.Split(ds)
		features := Features(cfg)

		rf, err := s.TunedRecFlex(dev, cfg)
		if err != nil {
			return nil, err
		}
		tuned := rf.Tuned()
		two, err := evalChoices(dev, features, tuned.Choices, tuned.Occupancy, eval)
		if err != nil {
			return nil, err
		}

		m := tuner.DefaultModel(features)
		sep, err := tuner.SeparateCombine(dev, m, tune, tuner.Options{Parallelism: s.Cfg.Parallelism})
		if err != nil {
			return nil, err
		}
		sepTime, err := evalChoices(dev, features, sep.Choices, 0, eval)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig11Row{
			Model:       base.Name,
			TwoStage:    two,
			Separate:    sepTime,
			Improvement: sepTime / two,
		})
	}
	return rows, nil
}

// evalChoices measures the fused kernel built from the given choices over the
// evaluation batches. occupancy 0 means natural.
func evalChoices(dev *gpusim.Device, features []fusion.FeatureInfo, choices []sched.Schedule, occupancy int, eval []*embedding.Batch) (float64, error) {
	total := 0.0
	for _, b := range eval {
		fu, err := fusion.Compile(dev, features, choices, b, fusion.Options{TargetBlocksPerSM: occupancy})
		if err != nil {
			return 0, err
		}
		r, err := fu.Simulate()
		if err != nil {
			return 0, err
		}
		total += r.Time
	}
	return total, nil
}

// PrintFig11 renders the tuning ablation.
func (s *Suite) PrintFig11(w io.Writer) error {
	rows, err := s.Fig11()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Figure 11: two-stage tuning vs direct separate-combine (V100)",
		Header: []string{"Model", "Two-stage", "Separate-combine", "Improvement"},
	}
	var imps []float64
	for _, r := range rows {
		t.AddRow(r.Model, report.FmtUS(r.TwoStage), report.FmtUS(r.Separate), report.FmtRatio(r.Improvement))
		imps = append(imps, r.Improvement)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "average improvement: %s (paper: 4.82x)\n", report.FmtRatio(report.GeoMean(imps)))
	return err
}
