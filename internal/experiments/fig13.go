package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/report"
)

// Fig13Row compares runtime thread mapping with the two static strategies on
// one model, including the long-tail request study of §VI-D.
type Fig13Row struct {
	Model     string
	Runtime   float64
	StaticAvg float64
	StaticMax float64
	// Long-tail request (2,560 samples) times.
	TailRuntime   float64
	TailStaticAvg float64
	TailStaticMax float64
}

// Fig13 runs the thread-mapping ablation on the V100 across models A-E.
func (s *Suite) Fig13() ([]Fig13Row, error) {
	return memo(s, "fig13", s.fig13)
}

func (s *Suite) fig13() ([]Fig13Row, error) {
	dev := gpusim.V100()
	var rows []Fig13Row
	for _, base := range datasynth.StandardModels() {
		cfg := s.ScaledModel(base)
		ds, err := s.Dataset(cfg)
		if err != nil {
			return nil, err
		}
		tune, eval := s.Split(ds)
		features := Features(cfg)
		rf, err := s.TunedRecFlex(dev, cfg)
		if err != nil {
			return nil, err
		}
		tuned := rf.Tuned()

		// Collect per-feature block usage over the tuning batches (the
		// "first run the runtime thread mapping kernels to collect the
		// thread block usages" step of the paper).
		var history [][]int
		for _, b := range tune {
			fu, err := fusion.Compile(dev, features, tuned.Choices, b, fusion.Options{
				TargetBlocksPerSM: tuned.Occupancy,
			})
			if err != nil {
				return nil, err
			}
			history = append(history, fu.BlockUsage())
		}
		avgAlloc, err := fusion.StaticAllocation(history, false)
		if err != nil {
			return nil, err
		}
		maxAlloc, err := fusion.StaticAllocation(history, true)
		if err != nil {
			return nil, err
		}

		measure := func(batches []*embedding.Batch, mapping fusion.MappingMode, static []int) (float64, error) {
			total := 0.0
			for _, b := range batches {
				fu, err := fusion.Compile(dev, features, tuned.Choices, b, fusion.Options{
					TargetBlocksPerSM: tuned.Occupancy,
					Mapping:           mapping,
					StaticBlocks:      static,
				})
				if err != nil {
					return 0, err
				}
				r, err := fu.Simulate()
				if err != nil {
					return 0, err
				}
				total += r.Time
			}
			return total, nil
		}

		row := Fig13Row{Model: base.Name}
		if row.Runtime, err = measure(eval, fusion.MapRuntime, nil); err != nil {
			return nil, err
		}
		if row.StaticAvg, err = measure(eval, fusion.MapStaticAvg, avgAlloc); err != nil {
			return nil, err
		}
		if row.StaticMax, err = measure(eval, fusion.MapStaticMax, maxAlloc); err != nil {
			return nil, err
		}

		// Long-tail request: a serving system that does not split batches
		// (DeepRecSys-style) sees a 2,560-sample request while the static
		// allocations were sized for <= BatchCap.
		rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7A17))
		tail, err := datasynth.GenerateBatch(cfg, datasynth.LongTailRequest, rng)
		if err != nil {
			return nil, err
		}
		tailBatch := []*embedding.Batch{tail}
		if row.TailRuntime, err = measure(tailBatch, fusion.MapRuntime, nil); err != nil {
			return nil, err
		}
		if row.TailStaticAvg, err = measure(tailBatch, fusion.MapStaticAvg, avgAlloc); err != nil {
			return nil, err
		}
		if row.TailStaticMax, err = measure(tailBatch, fusion.MapStaticMax, maxAlloc); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig13 renders the thread-mapping ablation.
func (s *Suite) PrintFig13(w io.Writer) error {
	rows, err := s.Fig13()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Figure 13: runtime vs static thread mapping (V100)",
		Header: []string{"Model", "Runtime", "Static-avg", "Static-max", "Gain vs avg", "Gain vs max"},
	}
	for _, r := range rows {
		t.AddRow(r.Model, report.FmtUS(r.Runtime), report.FmtUS(r.StaticAvg), report.FmtUS(r.StaticMax),
			report.FmtRatio(r.StaticAvg/r.Runtime), report.FmtRatio(r.StaticMax/r.Runtime))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	t2 := &report.Table{
		Title:  "Figure 13 (cont.): long-tail request (2,560 samples)",
		Header: []string{"Model", "Runtime", "Static-avg degr.", "Static-max degr."},
	}
	for _, r := range rows {
		t2.AddRow(r.Model, report.FmtUS(r.TailRuntime),
			fmt.Sprintf("%.1f%%", (r.TailStaticAvg/r.TailRuntime-1)*100),
			fmt.Sprintf("%.1f%%", (r.TailStaticMax/r.TailRuntime-1)*100))
	}
	return t2.Write(w)
}
