package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/datasynth"
	"repro/internal/gpusim"
	"repro/internal/report"
)

// Fig9Row is the kernel-time comparison of one (device, model) pair: summed
// embedding execution seconds over the evaluation batches per system.
type Fig9Row struct {
	Device string
	Model  string
	Times  map[string]float64
}

// systems returns all comparison systems for a model, RecFlex last.
func (s *Suite) systems(dev *gpusim.Device, cfg *datasynth.ModelConfig) ([]baselines.Baseline, error) {
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}
	out := append([]baselines.Baseline{}, baselines.All()...)
	return append(out, rf), nil
}

// Fig9 reproduces the embedding kernel performance comparison on both GPUs
// across models A-E.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	return memo(s, "fig9", s.fig9)
}

func (s *Suite) fig9() ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, dev := range Devices() {
		for _, base := range datasynth.StandardModels() {
			cfg := s.ScaledModel(base)
			row, err := s.fig9Row(dev, cfg, base.Name)
			if err != nil {
				return nil, err
			}
			rows = append(rows, *row)
		}
	}
	return rows, nil
}

func (s *Suite) fig9Row(dev *gpusim.Device, cfg *datasynth.ModelConfig, displayName string) (*Fig9Row, error) {
	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	_, eval := s.Split(ds)
	systems, err := s.systems(dev, cfg)
	if err != nil {
		return nil, err
	}
	features := Features(cfg)
	row := &Fig9Row{Device: dev.Name, Model: displayName, Times: make(map[string]float64)}
	for _, sys := range systems {
		if err := sys.Supports(features); err != nil {
			continue // HugeCTR skips heterogeneous-dim models
		}
		total := 0.0
		for _, b := range eval {
			sec, err := sys.Measure(dev, features, b)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s on %s/%s: %w", sys.Name(), dev.Name, displayName, err)
			}
			total += sec
		}
		row.Times[sys.Name()] = total
	}
	return row, nil
}

// AverageSpeedups returns the geometric-mean speedup of RecFlex over each
// baseline across all rows where both ran (the paper's headline numbers:
// 35.40x / 11.31x / 20.77x / 2.64x over TF / RECom / HugeCTR / TorchRec).
func AverageSpeedups(rows []Fig9Row) map[string]float64 {
	ratios := make(map[string][]float64)
	for _, row := range rows {
		rf, ok := row.Times["RecFlex"]
		if !ok || rf <= 0 {
			continue
		}
		for name, t := range row.Times {
			if name == "RecFlex" || t <= 0 {
				continue
			}
			ratios[name] = append(ratios[name], t/rf)
		}
	}
	out := make(map[string]float64, len(ratios))
	for name, rs := range ratios {
		out[name] = report.GeoMean(rs)
	}
	return out
}

// PrintFig9 renders the comparison with normalized performance bars.
func (s *Suite) PrintFig9(w io.Writer) error {
	rows, err := s.Fig9()
	if err != nil {
		return err
	}
	return printComparison(w, "Figure 9: embedding kernel performance (normalized, higher is better)", rows)
}

func printComparison(w io.Writer, title string, rows []Fig9Row) error {
	t := &report.Table{
		Title:  title,
		Header: []string{"Device", "Model", "System", "Time", "Normalized", ""},
	}
	for _, row := range rows {
		norm := report.Normalize(row.Times)
		for _, name := range report.SortedKeys(row.Times) {
			t.AddRow(row.Device, row.Model, name,
				report.FmtUS(row.Times[name]),
				fmt.Sprintf("%.3f", norm[name]),
				report.Bar(norm[name], 24))
		}
	}
	if err := t.Write(w); err != nil {
		return err
	}
	sp := AverageSpeedups(rows)
	for _, name := range report.SortedKeys(sp) {
		if _, err := fmt.Fprintf(w, "RecFlex average speedup over %-11s %s\n", name+":", report.FmtRatio(sp[name])); err != nil {
			return err
		}
	}
	return nil
}
