package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/report"
)

// ExportCSV writes the data series of the main figures as CSV files into
// dir, the artifact-style output that plotting scripts consume ('kern.csv',
// 'e2e.csv', 'tuning.csv', 'mapping.csv' mirroring the artifact's kern.pdf /
// e2e.pdf outputs).
func (s *Suite) ExportCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	kern, err := s.Fig9()
	if err != nil {
		return err
	}
	if err := writeComparisonCSV(filepath.Join(dir, "kern.csv"), kern); err != nil {
		return err
	}
	e2e, err := s.Fig10()
	if err != nil {
		return err
	}
	if err := writeComparisonCSV(filepath.Join(dir, "e2e.csv"), e2e); err != nil {
		return err
	}
	tuning, err := s.Fig11()
	if err != nil {
		return err
	}
	if err := writeCSV(filepath.Join(dir, "tuning.csv"),
		[]string{"model", "two_stage_s", "separate_s", "improvement"},
		func(w *csv.Writer) error {
			for _, r := range tuning {
				if err := w.Write([]string{r.Model, fmtF(r.TwoStage), fmtF(r.Separate), fmtF(r.Improvement)}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
		return err
	}
	mapping, err := s.Fig13()
	if err != nil {
		return err
	}
	return writeCSV(filepath.Join(dir, "mapping.csv"),
		[]string{"model", "runtime_s", "static_avg_s", "static_max_s", "tail_runtime_s", "tail_static_avg_s", "tail_static_max_s"},
		func(w *csv.Writer) error {
			for _, r := range mapping {
				if err := w.Write([]string{r.Model, fmtF(r.Runtime), fmtF(r.StaticAvg), fmtF(r.StaticMax),
					fmtF(r.TailRuntime), fmtF(r.TailStaticAvg), fmtF(r.TailStaticMax)}); err != nil {
					return err
				}
			}
			return nil
		})
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }

func writeComparisonCSV(path string, rows []Fig9Row) error {
	return writeCSV(path, []string{"device", "model", "system", "seconds", "normalized"},
		func(w *csv.Writer) error {
			for _, row := range rows {
				norm := report.Normalize(row.Times)
				for _, name := range report.SortedKeys(row.Times) {
					if err := w.Write([]string{row.Device, row.Model, name,
						fmtF(row.Times[name]), fmtF(norm[name])}); err != nil {
						return err
					}
				}
			}
			return nil
		})
}

func writeCSV(path string, header []string, body func(*csv.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := body(w); err != nil {
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

// WriteCSVTo streams one comparison's CSV to an io.Writer (used by tests).
func WriteCSVTo(w io.Writer, rows []Fig9Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"device", "model", "system", "seconds", "normalized"}); err != nil {
		return err
	}
	for _, row := range rows {
		norm := report.Normalize(row.Times)
		for _, name := range report.SortedKeys(row.Times) {
			if err := cw.Write([]string{row.Device, row.Model, name,
				fmt.Sprintf("%g", row.Times[name]), fmt.Sprintf("%g", norm[name])}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
