package experiments

import (
	"bytes"
	"encoding/csv"
	"os"
	"strings"
	"testing"
)

func TestWriteCSVTo(t *testing.T) {
	rows := []Fig9Row{
		{Device: "V100", Model: "A", Times: map[string]float64{"RecFlex": 1e-5, "TorchRec": 2e-5}},
		{Device: "A100", Model: "B", Times: map[string]float64{"RecFlex": 3e-5}},
	}
	var buf bytes.Buffer
	if err := WriteCSVTo(&buf, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 { // header + 3 data rows
		t.Fatalf("%d records, want 4", len(records))
	}
	if records[0][2] != "system" {
		t.Errorf("header = %v", records[0])
	}
	// RecFlex on V100/A is the fastest system -> normalized 1.
	found := false
	for _, r := range records[1:] {
		if r[0] == "V100" && r[2] == "RecFlex" {
			found = true
			if r[4] != "1" {
				t.Errorf("normalized = %q, want 1", r[4])
			}
		}
	}
	if !found {
		t.Error("V100 RecFlex row missing")
	}
}

func TestExportCSVFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("export runs the full figure set")
	}
	s := NewSuite(Config{
		Scale:       100, // tiny: 8-12 features
		TuneBatches: 1,
		EvalBatches: 1,
		BatchCap:    256,
		Occupancies: []int{4, 8},
		Parallelism: 4,
	})
	dir := t.TempDir()
	if err := s.ExportCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"kern.csv", "e2e.csv", "tuning.csv", "mapping.csv"} {
		rows := readCSVFile(t, dir+"/"+name)
		if len(rows) < 2 {
			t.Errorf("%s has %d rows, want header + data", name, len(rows))
		}
	}
}

func readCSVFile(t *testing.T, path string) [][]string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}
