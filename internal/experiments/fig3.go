package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/datasynth"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/sched"
)

// Fig3Result holds the microbenchmark of §II-B: normalized performance of
// every schedule candidate on two dim-32 features with different workloads
// (feature 0: pooling factors ~ N(50,10²) with 0.3 coverage; feature 1:
// fixed pooling factor 50).
type Fig3Result struct {
	Schedules []string
	// Perf[f][c] is the normalized performance of candidate c on feature f
	// (1.0 = that feature's best schedule).
	Perf [][]float64
	// Best[f] is the best candidate index of feature f.
	Best []int
	// MaxGapPct is the largest performance gap between the best and worst
	// schedule of a single feature, in percent.
	MaxGapPct float64
}

// Fig3 runs the motivation microbenchmark on a V100.
func Fig3() (*Fig3Result, error) {
	dev := gpusim.V100()
	cfg := &datasynth.ModelConfig{Name: "fig3", Seed: 303, Features: []datasynth.FeatureSpec{
		{Name: "f0", Dim: 32, Rows: 1 << 17, PF: datasynth.Normal{Mu: 50, Sigma: 10}, Coverage: 0.3},
		{Name: "f1", Dim: 32, Rows: 1 << 17, PF: datasynth.Fixed{K: 50}, Coverage: 1},
	}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// A serving-sized batch: large batches saturate DRAM bandwidth for
	// every schedule and hide the per-schedule differences the figure
	// demonstrates.
	batch, err := datasynth.GenerateBatch(cfg, 128, rng)
	if err != nil {
		return nil, err
	}
	features := Features(cfg)
	ws, err := fusion.AnalyzeBatch(features, batch)
	if err != nil {
		return nil, err
	}
	candidates := sched.DefaultCandidates(32)
	res := &Fig3Result{
		Perf: make([][]float64, len(features)),
		Best: make([]int, len(features)),
	}
	for _, c := range candidates {
		res.Schedules = append(res.Schedules, c.Name())
	}
	for f := range features {
		times := make([]float64, len(candidates))
		l2 := sched.L2Context{
			CacheBytes:      float64(dev.L2SizeBytes),
			WorkingSetBytes: fusion.WorkingSetBytes(features, ws),
		}
		for ci, c := range candidates {
			if !c.Supports(&ws[f]) {
				times[ci] = 0
				continue
			}
			p, err := c.Plan(&ws[f], dev, l2)
			if err != nil {
				return nil, err
			}
			k := &gpusim.Kernel{
				Name:      fmt.Sprintf("fig3_f%d_c%d", f, ci),
				Resources: c.Resources(32),
				Blocks:    p.Blocks,
			}
			r, err := gpusim.Simulate(dev, k)
			if err != nil {
				return nil, err
			}
			times[ci] = r.Time
		}
		best := -1
		for ci, t := range times {
			if t > 0 && (best < 0 || t < times[best]) {
				best = ci
			}
		}
		res.Best[f] = best
		perf := make([]float64, len(candidates))
		var worst float64
		for ci, t := range times {
			if t > 0 {
				perf[ci] = times[best] / t
				if worst == 0 || perf[ci] < worst {
					worst = perf[ci]
				}
			}
		}
		res.Perf[f] = perf
		if gap := (1 - worst) * 100; gap > res.MaxGapPct {
			res.MaxGapPct = gap
		}
	}
	return res, nil
}

// PrintFig3 renders the microbenchmark.
func PrintFig3(w io.Writer) error {
	res, err := Fig3()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Figure 3: normalized performance of schedules on two dim-32 features",
		Header: []string{"Schedule", "feature 0 (N(50,10^2), cov 0.3)", "feature 1 (fixed 50)"},
	}
	for ci, name := range res.Schedules {
		row := []string{name}
		for f := 0; f < 2; f++ {
			if res.Perf[f][ci] == 0 {
				row = append(row, "n/a")
			} else {
				mark := ""
				if res.Best[f] == ci {
					mark = " <- best"
				}
				row = append(row, fmt.Sprintf("%.3f%s", res.Perf[f][ci], mark))
			}
		}
		t.AddRow(row...)
	}
	if err := t.Write(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "optimal schedules differ: %v; max per-feature gap: %.1f%% (paper: up to 86.4%%)\n",
		res.Best[0] != res.Best[1], res.MaxGapPct)
	return err
}
