package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// The fleet study's acceptance criteria: priority admission keeps the
// interactive p99 within the non-preemptive-blocking bound under a bursty
// low-priority neighbor (and FIFO demonstrably does not), and two supervised
// models sharing the pool drift, re-tune and hot-swap independently with
// per-model metrics proving each recovery.
func TestFleetStudy(t *testing.T) {
	s := testSuite()
	res, err := s.FleetStudy()
	if err != nil {
		t.Fatal(err)
	}

	nn := res.NoisyNeighbor
	if nn.InteractiveService <= 0 || nn.BulkService <= nn.InteractiveService {
		t.Fatalf("probed services out of order: interactive %g, bulk %g", nn.InteractiveService, nn.BulkService)
	}
	if !nn.WithinBound {
		t.Errorf("priority admission broke the bound: p99 %g > bound %g (alone %g)",
			nn.P99Priority, nn.Bound, nn.P99Alone)
	}
	if nn.P99FIFO <= nn.P99Priority {
		t.Errorf("the burst did not hurt FIFO: fifo p99 %g vs priority p99 %g — the act lost its teeth",
			nn.P99FIFO, nn.P99Priority)
	}
	if nn.P99FIFO <= nn.Bound {
		t.Errorf("FIFO stayed within the bound (%g <= %g); the contrast proves nothing", nn.P99FIFO, nn.Bound)
	}
	if nn.BulkShedPriority == 0 {
		t.Error("priority policy shed no bulk traffic; quota/load shedding untested")
	}
	if nn.BulkServedFIFO != nn.BulkServedPriority+nn.BulkShedPriority {
		t.Errorf("bulk accounting leaks: fifo served %d, priority served %d + shed %d",
			nn.BulkServedFIFO, nn.BulkServedPriority, nn.BulkShedPriority)
	}
	if math.IsNaN(nn.InterferenceFIFO) || math.IsNaN(nn.InterferencePriority) ||
		nn.InterferencePriority > nn.InterferenceFIFO {
		t.Errorf("interference did not shrink under priority admission: fifo %g, priority %g",
			nn.InterferenceFIFO, nn.InterferencePriority)
	}

	st := res.Starvation
	if st.Service <= 0 || st.WeightShare != 0.25 {
		t.Fatalf("starvation act malformed: service %g, weight share %g", st.Service, st.WeightShare)
	}
	if !st.GuaranteeMet {
		t.Errorf("weighted-fair missed the batch guarantee: share %.3f < 0.9 * %.3f",
			st.BatchShareWeighted, st.WeightShare)
	}
	if !st.StarvedUnderPriority {
		t.Errorf("strict priority did not starve the batch class (share %.3f); the contrast proves nothing",
			st.BatchSharePriority)
	}
	if st.BatchServedWeighted <= st.BatchServedPriority {
		t.Errorf("weighted-fair served no more batch requests than strict priority: %d vs %d",
			st.BatchServedWeighted, st.BatchServedPriority)
	}
	if math.IsNaN(st.BatchP99Weighted) || st.BatchP99Weighted >= st.BatchP99Priority {
		t.Errorf("weighted-fair did not bound the batch p99: %g vs %g under strict priority",
			st.BatchP99Weighted, st.BatchP99Priority)
	}

	if len(res.Drift) != 2 {
		t.Fatalf("%d drift acts, want 2", len(res.Drift))
	}
	for _, d := range res.Drift {
		if !d.Detected || d.Generation != 1 {
			t.Errorf("model %s: detected=%v generation=%d, want one independent swap", d.Name, d.Detected, d.Generation)
			continue
		}
		if d.DetectedAt < d.DriftAt {
			t.Errorf("model %s detected at %g before its drift at %g", d.Name, d.DetectedAt, d.DriftAt)
		}
		if d.Improvement < 1.0 {
			t.Errorf("model %s: re-tuning on the shared pool made things worse: %.3fx", d.Name, d.Improvement)
		}
		if math.IsNaN(d.Interference) || d.Interference < 0.99 {
			t.Errorf("model %s interference %g not a sane ratio", d.Name, d.Interference)
		}
	}
	if res.Drift[0].SwappedAt >= res.Drift[1].SwappedAt {
		t.Errorf("swaps not independent: early model swapped at %g, late model at %g",
			res.Drift[0].SwappedAt, res.Drift[1].SwappedAt)
	}

	// Reproducibility from the fixed seed: the noisy-neighbor act recomputed
	// on the same suite produces identical numbers (services are memoized,
	// the replay is exact).
	var again FleetNeighborAct
	if err := s.fleetNoisyNeighbor(&again); err != nil {
		t.Fatal(err)
	}
	if again != nn {
		t.Errorf("noisy-neighbor act is not reproducible:\n%+v\n%+v", nn, again)
	}
	var starveAgain FleetStarvationAct
	if err := s.fleetStarvation(&starveAgain); err != nil {
		t.Fatal(err)
	}
	if starveAgain != st {
		t.Errorf("starvation act is not reproducible:\n%+v\n%+v", st, starveAgain)
	}
}

func TestPrintFleetStudy(t *testing.T) {
	s := testSuite()
	var buf bytes.Buffer
	if err := s.PrintFleetStudy(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fleet serving", "noisy neighbor", "priority-edf", "weighted-fair", "starved under strict priority", "model early", "model late", "interference"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q in:\n%s", want, out)
		}
	}
}
