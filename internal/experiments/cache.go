package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasynth"
	"repro/internal/emcache"
	"repro/internal/embedding"
	"repro/internal/fleet"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/trace"
)

// CacheHeat derives one emcache.FeatureHeat per feature of a synthesized
// model config — the static access profile the serving-side cache tier is
// provisioned from. Rows-per-sample is the feature's coverage times its mean
// pooling factor, and the skew is the synthesizer's Zipf exponent for
// Zipf-ranked ID spaces (uniform features get skew 0), so the analytic
// bucket accounting in emcache matches the batches datasynth would emit.
func CacheHeat(cfg *datasynth.ModelConfig) []emcache.FeatureHeat {
	out := make([]emcache.FeatureHeat, len(cfg.Features))
	for i := range cfg.Features {
		f := &cfg.Features[i]
		skew := 0.0
		if f.IDs == datasynth.IDZipf {
			skew = datasynth.ZipfSkew
		}
		out[i] = emcache.FeatureHeat{
			Rows:          f.Rows,
			RowBytes:      int64(f.Dim) * 4,
			RowsPerSample: f.Coverage * f.PF.Mean(),
			Skew:          skew,
		}
	}
	return out
}

// CachePolicyAct is one tier configuration's outcome in the cache study: the
// same two-model trace served over the same pool, with only the tier's
// eviction/re-tiering discipline varied.
type CachePolicyAct struct {
	// Name labels the variant: "static", "static+retier", "lru" or "clock".
	Name string
	// HitRate is the tier-wide expected-row hit rate over the whole trace.
	HitRate float64
	// Penalty is the total service-time inflation the tier charged (s).
	Penalty float64
	// PreShiftP99 is the interactive tenant's served sojourn p99 before the
	// skew shift. PostShiftP99 is its steady-state p99 after the shift: the
	// window starts one settle margin past the shift (so an adaptive tier
	// has had one warm-up dispatch and one re-tier period) and ends at the
	// flash — a frozen static allocation pays the cold-group penalty on
	// every dispatch in this window, an adaptive one only during warm-up.
	PreShiftP99, PostShiftP99 float64
	// BatchPenalty is the batch tenant's share of the inflation — the flash
	// of cold traffic lands here.
	BatchPenalty float64
	// Fills, Evictions and Retiers count the tier's residency churn.
	Fills, Evictions, Retiers int
}

// CacheStudyResult is the embedding-cache-tier study: two models share one
// GPU-memory tier under the fleet while the interactive model's row heat
// migrates to a previously-cold feature group and the batch tenant fires a
// flash of cold traffic. A static frequency-optimal allocation is provably
// best for the heat it was provisioned from and provably wrong after the
// shift; the study measures what online eviction (LRU/CLOCK) and windowed
// budget re-tiering buy back on the interactive tail.
type CacheStudyResult struct {
	// InteractiveService is the probed per-request service time of the
	// interactive size with a fully warm tier.
	InteractiveService float64
	// BudgetBytes is the shared tier budget (sized to hold exactly one of
	// the interactive model's two feature groups).
	BudgetBytes int64
	// ShiftAt is when the interactive model's hot group swaps; SettleDur is
	// the warm-up margin excluded from the post-shift window; FlashAt and
	// FlashDur bound the batch tenant's cold burst window.
	ShiftAt, SettleDur, FlashAt, FlashDur float64
	// Variants holds one act per tier discipline, static first.
	Variants []CachePolicyAct
	// BestEviction names the non-static variant with the lowest post-shift
	// interactive p99; EvictionGain is static's post-shift p99 over its.
	BestEviction string
	EvictionGain float64
	// EvictionWins reports EvictionGain >= 1.1 — some adaptive discipline
	// beat the static allocation measurably on the interactive tail.
	EvictionWins bool
	// RetierRecovers reports that the re-tiering variant both re-tiered and
	// ended with a higher tier-wide hit rate than frozen static.
	RetierRecovers bool
}

// CacheStudy runs the cache-tier study on the shared suite.
func (s *Suite) CacheStudy() (*CacheStudyResult, error) {
	return memo(s, "cache", s.cacheStudy)
}

// cacheStudy builds the drift-and-flash scenario. All times are multiples of
// the probed interactive service time so the regime is scale-independent:
// interactive requests arrive every 4 service times (25% utilization of the
// two workers), the skew shift lands a third of the way in, and the flash
// burst opens two thirds of the way in. The tier profiles are synthetic and
// exact — two 4096-row Zipf groups for the interactive model with the
// per-sample row mass swapping between them at the shift, and one 16384-row
// uniform table for the batch model whose mass spikes 16x inside the flash
// window — so every variant sees identical heat and identical requests, and
// only the residency discipline differs.
func (s *Suite) cacheStudy() (*CacheStudyResult, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelA())
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rf.TimedService(src, 64, nil)
	const iaSize, flashSize = 256, 64
	iaSvc, err := svc(0, iaSize)
	if err != nil {
		return nil, err
	}

	res := &CacheStudyResult{InteractiveService: iaSvc}
	const nInteractive = 160
	res.ShiftAt = 216 * iaSvc
	res.SettleDur = 24 * iaSvc
	res.FlashAt = 428 * iaSvc
	res.FlashDur = 60 * iaSvc

	var reqs []fleet.Request
	for i := 0; i < nInteractive; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 4 * iaSvc, Size: iaSize, Model: 0, Tenant: 0})
	}
	for i := 0; i < 20; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 32 * iaSvc, Size: flashSize, Model: 1, Tenant: 1})
	}
	for i := 0; i < 30; i++ {
		reqs = append(reqs, fleet.Request{Arrival: res.FlashAt + float64(i)*2*iaSvc, Size: flashSize, Model: 1, Tenant: 1})
	}
	reqs = fleet.Merge(fleetToStreams(reqs)...)

	// Interactive model: hot group A carries 4 rows/sample until the shift,
	// then group B does; budget holds exactly one group.
	const groupRows, rowBytes = 4096, 256
	res.BudgetBytes = groupRows * rowBytes
	group := func(aRPS, bRPS float64) []emcache.FeatureHeat {
		return []emcache.FeatureHeat{
			{Rows: groupRows, RowBytes: rowBytes, RowsPerSample: aRPS, Skew: datasynth.ZipfSkew},
			{Rows: groupRows, RowBytes: rowBytes, RowsPerSample: bRPS, Skew: datasynth.ZipfSkew},
		}
	}
	interactiveProfile := emcache.ModelProfile{Phases: []emcache.ProfilePhase{
		{Features: group(4, 0)},
		{Start: res.ShiftAt, Features: group(0, 4)},
	}}
	batch := func(rps float64) []emcache.FeatureHeat {
		return []emcache.FeatureHeat{{Rows: 16384, RowBytes: rowBytes, RowsPerSample: rps}}
	}
	batchProfile := emcache.ModelProfile{Phases: []emcache.ProfilePhase{
		{Features: batch(0.5)},
		{Start: res.FlashAt, Features: batch(8)},
		{Start: res.FlashAt + res.FlashDur, Features: batch(0.5)},
	}}

	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "batch", Priority: 0},
	}
	models := []fleet.Model{
		{Name: "rank", Service: svc},
		{Name: "score", Service: svc},
	}

	variants := []struct {
		name   string
		policy emcache.Policy
		retier float64
	}{
		{"static", emcache.PolicyStatic, 0},
		{"static+retier", emcache.PolicyStatic, 16 * iaSvc},
		{"lru", emcache.PolicyLRU, 0},
		{"clock", emcache.PolicyClock, 0},
	}
	for _, v := range variants {
		tier, err := emcache.New(emcache.Config{
			BudgetBytes: res.BudgetBytes,
			Policy:      v.policy,
			RetierEvery: v.retier,
			Models:      []emcache.ModelProfile{interactiveProfile, batchProfile},
			Tenants:     len(tenants),
		})
		if err != nil {
			return nil, err
		}
		pool, err := fleet.NewPool(fleet.Config{
			Queue: trace.QueuePolicy{Workers: 2, QueueDepth: 32},
			Cache: tier,
		}, models, tenants)
		if err != nil {
			return nil, err
		}
		rep, err := pool.Serve(reqs)
		if err != nil {
			return nil, err
		}
		snap := rep.Metrics.Cache
		if snap == nil {
			return nil, fmt.Errorf("experiments: cache study pool reported no tier snapshot")
		}
		var pre, post []float64
		for i, r := range reqs {
			if r.Model != 0 || rep.Outcomes[i] != fleet.OutcomeServed {
				continue
			}
			switch {
			case r.Arrival < res.ShiftAt:
				pre = append(pre, rep.Sojourn[i])
			case r.Arrival >= res.ShiftAt+res.SettleDur && r.Arrival < res.FlashAt:
				post = append(post, rep.Sojourn[i])
			}
		}
		act := CachePolicyAct{
			Name:         v.name,
			HitRate:      snap.HitRate,
			Penalty:      snap.Penalty,
			BatchPenalty: snap.Tenants[1].Penalty,
			Fills:        snap.Fills,
			Evictions:    snap.Evictions,
			Retiers:      snap.Retiers,
		}
		var q trace.Quantiler
		_, _, act.PreShiftP99 = q.P50P95P99(pre)
		_, _, act.PostShiftP99 = q.P50P95P99(post)
		res.Variants = append(res.Variants, act)
	}

	static := res.Variants[0]
	for _, v := range res.Variants[1:] {
		if res.BestEviction == "" || v.PostShiftP99 < res.bestPostShiftP99() {
			res.BestEviction = v.Name
		}
	}
	res.EvictionGain = static.PostShiftP99 / res.bestPostShiftP99()
	res.EvictionWins = res.EvictionGain >= 1.1
	for _, v := range res.Variants {
		if v.Name == "static+retier" {
			res.RetierRecovers = v.Retiers > 0 && v.HitRate > static.HitRate
		}
	}
	return res, nil
}

// bestPostShiftP99 returns the BestEviction variant's post-shift p99.
func (r *CacheStudyResult) bestPostShiftP99() float64 {
	for _, v := range r.Variants {
		if v.Name == r.BestEviction {
			return v.PostShiftP99
		}
	}
	return 0
}

// PrintCacheStudy renders the cache study.
func (s *Suite) PrintCacheStudy(w io.Writer) error {
	res, err := s.CacheStudy()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\n== Embedding cache tier: hot/cold row tiering under heat drift (budget %d KiB, shift t=%s settle %s, flash t=%s+%s) ==\n",
		res.BudgetBytes>>10, report.FmtUS(res.ShiftAt), report.FmtUS(res.SettleDur), report.FmtUS(res.FlashAt), report.FmtUS(res.FlashDur)); err != nil {
		return err
	}
	for _, v := range res.Variants {
		if _, err := fmt.Fprintf(w, "  %-14s hit %5.1f%%  penalty %s  batch-flash %s  interactive p99 pre %s -> post %s  (fills %d, evictions %d, retiers %d)\n",
			v.Name, 100*v.HitRate, report.FmtUS(v.Penalty), report.FmtUS(v.BatchPenalty),
			report.FmtUS(v.PreShiftP99), report.FmtUS(v.PostShiftP99),
			v.Fills, v.Evictions, v.Retiers); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "  best adaptive discipline: %s, %s better post-shift interactive p99 than frozen static (wins=%v); retier recovers hit rate=%v\n",
		res.BestEviction, report.FmtRatio(res.EvictionGain), res.EvictionWins, res.RetierRecovers)
	return err
}
