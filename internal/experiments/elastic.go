package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fleet"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/trace"
)

// ElasticVariant is one pool configuration's outcome in the elastic study:
// the same merged trace served over the same initial two workers, with only
// the pool's elasticity varied.
type ElasticVariant struct {
	// Name labels the variant: "static" or "elastic".
	Name string
	// BurstP99 is the interactive tenant's served sojourn p99 over requests
	// arriving inside the burst window — where the two pools diverge.
	BurstP99 float64
	// Served and Timeouts are pool-wide counts.
	Served, Timeouts int
	// Preemptions counts chunk-boundary preemptions (0 for static).
	Preemptions int
	// ScaleOuts and Drains count applied autoscaling decisions (0 for
	// static).
	ScaleOuts, Drains int
	// PeakWorkers is the largest active worker count the pool reached.
	PeakWorkers int
}

// ElasticStudyResult is the elastic heterogeneous pool study: an interactive
// ranking tenant and a batch re-scoring tenant share two V100-class workers
// while the interactive rate triples inside a burst window and the batch
// tenant keeps feeding long-tail requests that split into chunk trains. The
// static homogeneous pool rides the burst out on fixed capacity; the elastic
// pool preempts queued batch chunks at chunk boundaries when interactive
// requests are waiting, and autoscales A100-class workers in (with a boot
// lag) while the backlog lasts, draining them afterwards. Both serve the
// identical merged stream, so the burst-window p99 split is the measured
// value of elasticity.
type ElasticStudyResult struct {
	// InteractiveService is the probed per-request service time of the
	// interactive size on a V100-class worker.
	InteractiveService float64
	// A100Speedup is the probed V100/A100 service ratio of the interactive
	// size: how much faster the A100-tuned schedule serves the same batch.
	A100Speedup float64
	// BurstAt and BurstDur bound the interactive rate burst.
	BurstAt, BurstDur float64
	// Static and Elastic are the two variants' outcomes.
	Static, Elastic ElasticVariant
	// P99Gain is the static burst-window p99 over the elastic one.
	P99Gain float64
	// ElasticWins reports P99Gain >= 1.1 — the elastic heterogeneous pool
	// beat the static homogeneous one measurably on the burst tail.
	ElasticWins bool
}

// ElasticStudy runs the elastic-pool study on the shared suite.
func (s *Suite) ElasticStudy() (*ElasticStudyResult, error) {
	return memo(s, "elastic", s.elasticStudy)
}

// elasticStudy builds the burst-and-tails scenario. All times are multiples
// of the probed interactive service time u so the regime is scale-independent:
// interactive requests arrive every 2u (50% utilization of the two workers),
// the rate triples inside the burst window, and the batch tenant's long-tail
// requests split into chunk trains of roughly u-long chunks throughout.
func (s *Suite) elasticStudy() (*ElasticStudyResult, error) {
	cfg := s.ScaledModel(datasynth.ModelA())
	rfV, err := s.TunedRecFlex(gpusim.V100(), cfg)
	if err != nil {
		return nil, err
	}
	rfA, err := s.TunedRecFlex(gpusim.A100(), cfg)
	if err != nil {
		return nil, err
	}
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rfV.TimedService(src, 64, nil)
	svcA := rfA.TimedService(src, 64, nil)
	const iaSize, tailSize, chunkCap = 256, 2048, 256
	u, err := svc(0, iaSize)
	if err != nil {
		return nil, err
	}
	uA, err := svcA(0, iaSize)
	if err != nil {
		return nil, err
	}
	if !(u > 0) || !(uA > 0) {
		return nil, fmt.Errorf("experiments: elastic study probed non-positive service times (V100 %g, A100 %g)", u, uA)
	}

	res := &ElasticStudyResult{
		InteractiveService: u,
		A100Speedup:        u / uA,
		BurstAt:            300 * u,
		BurstDur:           72 * u,
	}

	// The merged stream: steady interactive arrivals, a tripled-rate burst,
	// and periodic long-tail batch requests whose chunk trains the elastic
	// pool may preempt.
	var reqs []fleet.Request
	for i := 0; i < 400; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 2 * u, Size: iaSize, Model: 0, Tenant: 0})
	}
	for i := 0; i < 120; i++ {
		reqs = append(reqs, fleet.Request{Arrival: res.BurstAt + float64(i)*0.6*u, Size: iaSize, Model: 0, Tenant: 0})
	}
	for i := 0; i < 16; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 40 * u, Size: tailSize, Model: 1, Tenant: 1})
	}
	reqs = fleet.Merge(fleetToStreams(reqs)...)

	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "batch", Priority: 0},
	}
	queue := trace.QueuePolicy{
		Workers:  2,
		Deadline: 6 * u,
		Policy:   trace.DegradeSplitTail,
		SplitCap: chunkCap,
	}
	// The A100 class serves every size at the probed interactive ratio — the
	// same single-point approximation recflex-serve's -worker-classes applies.
	classScale := []float64{1, uA / u}

	run := func(name string, cfgF fleet.Config, withScale bool) (ElasticVariant, error) {
		models := []fleet.Model{
			{Name: "rank", Service: svc},
			{Name: "bulk", Service: svc},
		}
		if withScale {
			models[0].ClassScale = classScale
			models[1].ClassScale = classScale
		}
		pool, err := fleet.NewPool(cfgF, models, tenants)
		if err != nil {
			return ElasticVariant{}, err
		}
		rep, err := pool.Serve(reqs)
		if err != nil {
			return ElasticVariant{}, err
		}
		m := rep.Metrics
		v := ElasticVariant{
			Name:        name,
			Served:      m.Served,
			Timeouts:    m.Timeouts,
			Preemptions: m.Preemptions,
			PeakWorkers: queue.Workers,
		}
		for _, e := range m.ScaleEvents {
			if e.Delta > 0 {
				v.ScaleOuts++
			} else {
				v.Drains++
			}
			if e.Workers > v.PeakWorkers {
				v.PeakWorkers = e.Workers
			}
		}
		var burst []float64
		for i, r := range reqs {
			if r.Model != 0 || rep.Outcomes[i] != fleet.OutcomeServed {
				continue
			}
			if r.Arrival >= res.BurstAt && r.Arrival < res.BurstAt+res.BurstDur {
				burst = append(burst, rep.Sojourn[i])
			}
		}
		var q trace.Quantiler
		_, _, v.BurstP99 = q.P50P95P99(burst)
		return v, nil
	}

	if res.Static, err = run("static", fleet.Config{Queue: queue}, false); err != nil {
		return nil, err
	}
	elasticCfg := fleet.Config{
		Queue:         queue,
		Preempt:       true,
		WorkerClasses: []int{0, 0},
		ClassNames:    []string{"V100", "A100"},
		// Poll every 2u over a 2-snapshot window: the burst must still build
		// visible backlog (~4u) before the first A100 is even requested, and
		// the boot lag delays its first dispatch another 2u on top.
		Autoscale: &fleet.AutoscaleConfig{
			Every:       2 * u,
			Max:         4,
			ScaleOutLag: 2 * u,
			Class:       1,
			Window:      2,
		},
	}
	if res.Elastic, err = run("elastic", elasticCfg, true); err != nil {
		return nil, err
	}

	res.P99Gain = res.Static.BurstP99 / res.Elastic.BurstP99
	res.ElasticWins = res.P99Gain >= 1.1
	return res, nil
}

// PrintElasticStudy renders the elastic study.
func (s *Suite) PrintElasticStudy(w io.Writer) error {
	res, err := s.ElasticStudy()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\n== Elastic heterogeneous pool: preemption + autoscaling under an interactive burst (burst t=%s+%s, A100 %s faster) ==\n",
		report.FmtUS(res.BurstAt), report.FmtUS(res.BurstDur), report.FmtRatio(res.A100Speedup)); err != nil {
		return err
	}
	for _, v := range []ElasticVariant{res.Static, res.Elastic} {
		if _, err := fmt.Fprintf(w, "  %-8s burst p99 %s  served %d  timeouts %d  preemptions %d  scale-outs %d  drains %d  peak workers %d\n",
			v.Name, report.FmtUS(v.BurstP99), v.Served, v.Timeouts,
			v.Preemptions, v.ScaleOuts, v.Drains, v.PeakWorkers); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(w, "  elastic pool serves the burst tail %s better than the static homogeneous pool (wins=%v)\n",
		report.FmtRatio(res.P99Gain), res.ElasticWins)
	return err
}
