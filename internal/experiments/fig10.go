package experiments

import (
	"fmt"
	"io"

	"repro/internal/datasynth"
	"repro/internal/model"
)

// Fig10 reproduces the end-to-end comparison: the embedding stage under each
// system plus the shared concat + MLP (1024/256/128) tower.
func (s *Suite) Fig10() ([]Fig9Row, error) {
	return memo(s, "fig10", s.fig10)
}

func (s *Suite) fig10() ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, dev := range Devices() {
		for _, base := range datasynth.StandardModels() {
			cfg := s.ScaledModel(base)
			ds, err := s.Dataset(cfg)
			if err != nil {
				return nil, err
			}
			_, eval := s.Split(ds)
			systems, err := s.systems(dev, cfg)
			if err != nil {
				return nil, err
			}
			features := Features(cfg)
			pipe, err := model.NewPipeline(dev, features)
			if err != nil {
				return nil, err
			}
			row := Fig9Row{Device: dev.Name, Model: base.Name, Times: make(map[string]float64)}
			for _, sys := range systems {
				if err := sys.Supports(features); err != nil {
					continue
				}
				total := 0.0
				for _, b := range eval {
					r, err := pipe.MeasureE2E(sys, b)
					if err != nil {
						return nil, fmt.Errorf("experiments: e2e %s on %s/%s: %w", sys.Name(), dev.Name, base.Name, err)
					}
					total += r.Total()
				}
				row.Times[sys.Name()] = total
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// PrintFig10 renders the end-to-end comparison.
func (s *Suite) PrintFig10(w io.Writer) error {
	rows, err := s.Fig10()
	if err != nil {
		return err
	}
	return printComparison(w, "Figure 10: end-to-end model performance (normalized, higher is better)", rows)
}
