package experiments

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// testSuite returns the package-shared test suite: small enough for CI but
// still in the many-features regime. All tests read through one Suite so the
// memoized tuned instances and study results are computed once per package
// run instead of once per test — tuning dominates this package's wall-clock,
// and the per-test suites used to push `go test ./...` past the default
// 10-minute per-package timeout.
var (
	testSuiteOnce sync.Once
	testSuiteInst *Suite
)

func testSuite() *Suite {
	testSuiteOnce.Do(func() {
		testSuiteInst = NewSuite(Config{
			Scale:       25, // models A-E at 32-48 features
			TuneBatches: 2,
			EvalBatches: 3,
			BatchCap:    512,
			Occupancies: []int{1, 2, 3, 4, 6, 8},
			Parallelism: 4,
		})
	})
	return testSuiteInst
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := []Table1Row{
		{Model: "A", Features: 1000, OneHot: 500, MultiHot: 500, DimLo: 4, DimHi: 128},
		{Model: "B", Features: 1200, OneHot: 1000, MultiHot: 200, DimLo: 4, DimHi: 128},
		{Model: "C", Features: 800, OneHot: 0, MultiHot: 800, DimLo: 4, DimHi: 128},
		{Model: "D", Features: 1000, OneHot: 500, MultiHot: 500, DimLo: 8, DimHi: 8},
		{Model: "E", Features: 1000, OneHot: 500, MultiHot: 500, DimLo: 32, DimHi: 32},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i := range want {
		if rows[i] != want[i] {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], want[i])
		}
	}
}

func TestFig2ShowsHeterogeneity(t *testing.T) {
	s := testSuite()
	res, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Dims) < 3 {
		t.Errorf("only %d distinct dims; model A should span 4-128", len(res.Dims))
	}
	if len(res.Features) != 4 {
		t.Errorf("%d pooling-factor series, want 4", len(res.Features))
	}
	if res.Heterogen <= 1 {
		t.Errorf("heterogeneity index %.2f, want > 1 for model A", res.Heterogen)
	}
}

func TestFig3OptimalSchedulesDiffer(t *testing.T) {
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if res.Best[0] == res.Best[1] {
		t.Errorf("both features picked candidate %d; heterogeneous workloads should prefer different schedules", res.Best[0])
	}
	if res.MaxGapPct < 20 {
		t.Errorf("max schedule gap %.1f%%, want a substantial spread (paper: 86.4%%)", res.MaxGapPct)
	}
}

func TestFig9RecFlexWins(t *testing.T) {
	s := testSuite()
	rows, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 { // 5 models x 2 devices
		t.Fatalf("%d rows, want 10", len(rows))
	}
	for _, row := range rows {
		rf, ok := row.Times["RecFlex"]
		if !ok {
			t.Fatalf("%s/%s: RecFlex missing", row.Device, row.Model)
		}
		for name, tm := range row.Times {
			if name == "RecFlex" {
				continue
			}
			// At this reduced scale the light one-hot models are
			// fixed-cost dominated and the strongest baseline can tie;
			// RecFlex must never lose materially on any row (and must
			// win on average, asserted below).
			if rf > tm*1.06 {
				t.Errorf("%s/%s: RecFlex (%g) slower than %s (%g)", row.Device, row.Model, rf, name, tm)
			}
		}
		// HugeCTR only runs on the uniform-dim models D and E.
		_, hasHC := row.Times["HugeCTR"]
		wantHC := row.Model == "D" || row.Model == "E"
		if hasHC != wantHC {
			t.Errorf("%s/%s: HugeCTR presence = %v, want %v", row.Device, row.Model, hasHC, wantHC)
		}
	}
	sp := AverageSpeedups(rows)
	for _, base := range []string{"TensorFlow", "RECom", "HugeCTR", "TorchRec"} {
		if sp[base] < 1 {
			t.Errorf("average speedup over %s = %.2f, want >= 1", base, sp[base])
		}
	}
	// Paper ordering: TensorFlow is by far the weakest baseline, TorchRec
	// the strongest.
	if sp["TensorFlow"] < sp["TorchRec"] {
		t.Errorf("speedup over TensorFlow (%.2f) should exceed speedup over TorchRec (%.2f)",
			sp["TensorFlow"], sp["TorchRec"])
	}
}

func TestFig10E2ESpeedupsSmallerThanKernel(t *testing.T) {
	s := testSuite()
	kernelRows, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	e2eRows, err := s.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	kernelSp := AverageSpeedups(kernelRows)
	e2eSp := AverageSpeedups(e2eRows)
	for name, k := range kernelSp {
		e := e2eSp[name]
		if e <= 0 {
			t.Fatalf("missing e2e speedup for %s", name)
		}
		if e > k*1.02 {
			t.Errorf("%s: e2e speedup %.2f exceeds kernel speedup %.2f", name, e, k)
		}
		if e < 1 {
			t.Errorf("%s: e2e speedup %.2f below 1", name, e)
		}
	}
}

func TestTable2RecFlexBetterCounters(t *testing.T) {
	s := testSuite()
	res, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if res.RecFlex.MemoryThroughput <= res.TorchRec.MemoryThroughput {
		t.Errorf("RecFlex memory throughput (%.1f GB/s) should beat TorchRec (%.1f GB/s)",
			res.RecFlex.MemoryThroughput/1e9, res.TorchRec.MemoryThroughput/1e9)
	}
	if res.RecFlex.AvgActiveThreadsPerWarp <= res.TorchRec.AvgActiveThreadsPerWarp {
		t.Errorf("RecFlex active threads/warp (%.1f) should beat TorchRec (%.1f)",
			res.RecFlex.AvgActiveThreadsPerWarp, res.TorchRec.AvgActiveThreadsPerWarp)
	}
}

func TestFig11TwoStageNeverLoses(t *testing.T) {
	s := testSuite()
	rows, err := s.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	// At this reduced scale individual models can tie (the paper's effect
	// grows with feature count — the scale-10 harness shows 1.5-3x wins per
	// model); the robust shape is: never lose materially, win on average.
	var imps []float64
	for _, r := range rows {
		if r.Improvement < 0.95 {
			t.Errorf("model %s: two-stage lost to separate-combine by >5%% (%.3f)", r.Model, r.Improvement)
		}
		imps = append(imps, r.Improvement)
	}
	if g := geoMean(imps); g < 1.05 {
		t.Errorf("average two-stage improvement %.3f, want >= 1.05", g)
	}
}

func geoMean(v []float64) float64 {
	p := 1.0
	for _, x := range v {
		p *= x
	}
	return math.Pow(p, 1/float64(len(v)))
}

func TestFig12ChosenNearOptimal(t *testing.T) {
	s := testSuite()
	curves, err := s.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("%d curves, want 3", len(curves))
	}
	for _, c := range curves {
		if c.ChosenGap > 1.30 {
			t.Errorf("feature %d: tuner's choice %.1f%% off optimal", c.Feature, (c.ChosenGap-1)*100)
		}
		nonzero := 0
		for _, tm := range c.Times {
			if tm > 0 {
				nonzero++
			}
		}
		if nonzero < 5 {
			t.Errorf("feature %d: only %d candidates measured", c.Feature, nonzero)
		}
	}
}

func TestFig13RuntimeMappingWins(t *testing.T) {
	s := testSuite()
	rows, err := s.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.StaticAvg < r.Runtime*0.98 || r.StaticMax < r.Runtime*0.98 {
			t.Errorf("model %s: a static mapping beat runtime mapping (rt %g, avg %g, max %g)",
				r.Model, r.Runtime, r.StaticAvg, r.StaticMax)
		}
		// On bandwidth/latency-saturated long-tail kernels the fluid model
		// prices block folding at roughly the per-block overhead it saves,
		// so static-avg can tie runtime mapping within a few percent (the
		// paper's 40-50% long-tail degradation does not fully reproduce;
		// see EXPERIMENTS.md). Runtime mapping must never lose materially.
		if r.TailStaticAvg < r.TailRuntime*0.95 {
			t.Errorf("model %s: static-avg beat runtime on the long-tail request by >5%%", r.Model)
		}
	}
}

func TestMLPerfParity(t *testing.T) {
	s := testSuite()
	res, err := s.MLPerf()
	if err != nil {
		t.Fatal(err)
	}
	if res.Heterogen > 0.05 {
		t.Errorf("MLPerf-like heterogeneity %.3f, want ~0", res.Heterogen)
	}
	if res.Speedup < 0.95 {
		t.Errorf("RecFlex slower than TorchRec on the homogeneous dataset: %.2fx", res.Speedup)
	}
	if res.Speedup > 1.6 {
		t.Errorf("speedup %.2fx on a homogeneous dataset; paper reports near parity", res.Speedup)
	}
}

func TestOverheadSmall(t *testing.T) {
	s := testSuite()
	res, err := s.Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if res.HostAnalysis <= 0 || res.DataLoad <= 0 {
		t.Fatalf("non-positive durations: %+v", res)
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	s := testSuite()
	var buf bytes.Buffer
	if err := PrintTable1(&buf); err != nil {
		t.Fatal(err)
	}
	if err := s.PrintFig2(&buf); err != nil {
		t.Fatal(err)
	}
	if err := PrintFig3(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Figure 2(a)", "Figure 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
