package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/datasynth"
	"repro/internal/gpusim"
	"repro/internal/placement"
	"repro/internal/preproc"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/tuner"
	"repro/internal/uvmcache"
)

// ExtensionResults bundles the Discussion-section (§VII) extension studies
// that go beyond the paper's evaluation: multi-GPU placement, the UVM
// hot-embedding cache, preprocess-operator fusion and host-sorted schedules.
type ExtensionResults struct {
	// Multi-GPU placement: makespan per strategy (2 GPUs, model A).
	PlacementMakespan map[string]float64

	// UVM cache sweep: kernel time per hot-cache fraction of the total
	// table bytes.
	UVMFractions []float64
	UVMTimes     []float64

	// Preprocess fusion: fused vs separate pipeline time on one feature.
	PreprocFused    float64
	PreprocSeparate float64

	// Intra-feature heterogeneity ablation on a bimodal model: a uniform
	// sub-warp schedule, the host-sorted variant, and the hybrid split
	// that routes heavy samples to block-per-sample.
	SortedTime   float64
	UnsortedTime float64
	HybridTime   float64
}

// Extensions runs all four extension studies at the suite's scale.
func (s *Suite) Extensions() (*ExtensionResults, error) {
	return memo(s, "ext", s.extensions)
}

func (s *Suite) extensions() (*ExtensionResults, error) {
	res := &ExtensionResults{PlacementMakespan: make(map[string]float64)}
	dev := gpusim.V100()

	// --- Multi-GPU placement (model A, 2 GPUs) ---
	cfg := s.ScaledModel(datasynth.ModelA())
	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	tune, eval := s.Split(ds)
	features := Features(cfg)
	stats, err := placement.CollectStats(features, tune)
	if err != nil {
		return nil, err
	}
	for _, strat := range []placement.Strategy{placement.LPT, placement.RoundRobin, placement.CapacityOnly} {
		p, err := placement.Place(stats, 2, 0, strat)
		if err != nil {
			return nil, err
		}
		m, err := placement.NewMultiGPU(dev, features, p)
		if err != nil {
			return nil, err
		}
		if err := m.Tune(tune, tuner.Options{Occupancies: s.Cfg.Occupancies, Parallelism: s.Cfg.Parallelism}); err != nil {
			return nil, err
		}
		total := 0.0
		for _, b := range eval {
			r, err := m.Measure(b)
			if err != nil {
				return nil, err
			}
			total += r.Total()
		}
		res.PlacementMakespan[strat.String()] = total
	}

	// --- UVM hot-cache sweep (one Zipf feature with a huge table) ---
	uvmCfg := &datasynth.ModelConfig{Name: "uvm-ext", Seed: 21, Features: []datasynth.FeatureSpec{
		{Name: "huge", Dim: 32, Rows: 1 << 20, PF: datasynth.Fixed{K: 40}, Coverage: 1, IDs: datasynth.IDZipf},
	}}
	rng := rand.New(rand.NewSource(uvmCfg.Seed))
	uvmBatch, err := datasynth.GenerateBatch(uvmCfg, 256, rng)
	if err != nil {
		return nil, err
	}
	inner := sched.SubWarp{Threads: 256, Lanes: 32, Vec: 4, UnrollRows: 1}
	w := sched.AnalyzeWorkload(&uvmBatch.Features[0], 32, 1<<20)
	l2 := sched.L2Context{CacheBytes: float64(dev.L2SizeBytes), WorkingSetBytes: float64(w.UniqueRows) * w.RowBytes()}
	for _, frac := range []float64{0.001, 0.01, 0.1, 1.0} {
		hot := int(frac * float64(1<<20))
		c := uvmcache.Cached{Inner: inner, Cfg: uvmcache.Config{HotRows: hot}}
		c.ColdFrac = uvmcache.ColdFraction(&uvmBatch.Features[0], c.Cfg)
		p, err := c.Plan(&w, dev, l2)
		if err != nil {
			return nil, err
		}
		k := &gpusim.Kernel{Name: "uvm", Resources: c.Resources(32), Blocks: p.Blocks}
		r, err := gpusim.Simulate(dev, k)
		if err != nil {
			return nil, err
		}
		res.UVMFractions = append(res.UVMFractions, frac)
		res.UVMTimes = append(res.UVMTimes, r.Time)
	}

	// --- Preprocess fusion on a multi-hot feature ---
	ppBatch, err := datasynth.GenerateBatch(uvmCfg, 512, rng)
	if err != nil {
		return nil, err
	}
	ops := []preproc.Op{preproc.HashMod{Seed: 3}, preproc.Clip{MaxPF: 32}}
	wPP := sched.AnalyzeWorkload(&ppBatch.Features[0], 32, 1<<20)
	fusedPlan, err := inner.Plan(&wPP, dev, l2)
	if err != nil {
		return nil, err
	}
	preproc.FuseIntoPlan(fusedPlan, &wPP, ops)
	fk := &gpusim.Kernel{Name: "pp-fused", Resources: inner.Resources(32), Blocks: fusedPlan.Blocks}
	fr, err := gpusim.Simulate(dev, fk)
	if err != nil {
		return nil, err
	}
	res.PreprocFused = fr.Time
	sepPlan, err := inner.Plan(&wPP, dev, l2)
	if err != nil {
		return nil, err
	}
	sk := preproc.SeparateKernel(dev, &wPP, ops)
	sr, err := gpusim.Simulate(dev, &sk)
	if err != nil {
		return nil, err
	}
	ek := &gpusim.Kernel{Name: "pp-emb", Resources: inner.Resources(32), Blocks: sepPlan.Blocks, IncludeLaunchOverhead: true}
	er, err := gpusim.Simulate(dev, ek)
	if err != nil {
		return nil, err
	}
	res.PreprocSeparate = sr.Time + er.Time

	// --- Sorted-schedule ablation on a bimodal-variance feature ---
	sortCfg := &datasynth.ModelConfig{Name: "sort-ext", Seed: 23, Features: []datasynth.FeatureSpec{
		{Name: "bimodal", Dim: 8, Rows: 1 << 16, PF: datasynth.LogNormal{Mu: 1.5, Sigma: 1.4, Max: 400}, Coverage: 0.6},
	}}
	// A batch large enough that blocks keep several warp groups, so the
	// stratified dealing has room to balance.
	sortBatch, err := datasynth.GenerateBatch(sortCfg, 4096, rand.New(rand.NewSource(sortCfg.Seed)))
	if err != nil {
		return nil, err
	}
	wS := sched.AnalyzeWorkload(&sortBatch.Features[0], 8, 1<<16)
	base := sched.SubWarp{Threads: 256, Lanes: 4, Vec: 1, UnrollRows: 1}
	variants := map[string]sched.Schedule{
		"unsorted": base,
		"sorted":   sched.SortedSubWarp{SubWarp: base},
		"hybrid": sched.HybridSplit{
			Light:       base,
			Heavy:       sched.BlockPerSample{Threads: 128, Vec: 1},
			ThresholdPF: 64,
		},
	}
	for name, sc := range variants {
		p, err := sc.Plan(&wS, dev, l2)
		if err != nil {
			return nil, err
		}
		k := &gpusim.Kernel{Name: "intra", Resources: sc.Resources(8), Blocks: p.Blocks}
		r, err := gpusim.Simulate(dev, k)
		if err != nil {
			return nil, err
		}
		switch name {
		case "unsorted":
			res.UnsortedTime = r.Time
		case "sorted":
			res.SortedTime = r.Time
		case "hybrid":
			res.HybridTime = r.Time
		}
	}
	return res, nil
}

// PrintExtensions renders the extension studies.
func (s *Suite) PrintExtensions(w io.Writer) error {
	res, err := s.Extensions()
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\n== Extensions (paper Discussion, §VII) ==\n"); err != nil {
		return err
	}
	t := &report.Table{
		Title:  "multi-GPU placement (model A, 2 GPUs, makespan + gather)",
		Header: []string{"Strategy", "Time"},
	}
	for _, name := range report.SortedKeys(res.PlacementMakespan) {
		t.AddRow(name, report.FmtUS(res.PlacementMakespan[name]))
	}
	if err := t.Write(w); err != nil {
		return err
	}
	t2 := &report.Table{
		Title:  "UVM hot-embedding cache sweep (1M-row Zipf table)",
		Header: []string{"GPU-resident fraction", "Kernel time"},
	}
	for i := range res.UVMFractions {
		t2.AddRow(fmt.Sprintf("%.1f%%", res.UVMFractions[i]*100), report.FmtUS(res.UVMTimes[i]))
	}
	if err := t2.Write(w); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "preprocess fusion: fused %s vs separate kernels %s (%s)\n",
		report.FmtUS(res.PreprocFused), report.FmtUS(res.PreprocSeparate),
		report.FmtRatio(res.PreprocSeparate/res.PreprocFused)); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "intra-feature heterogeneity on bimodal pooling factors: uniform sub-warp %s, host-sorted %s, hybrid split %s (hybrid %s vs uniform)\n",
		report.FmtUS(res.UnsortedTime), report.FmtUS(res.SortedTime), report.FmtUS(res.HybridTime),
		report.FmtRatio(res.UnsortedTime/res.HybridTime))
	return err
}
