package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fleet"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// FleetNeighborAct is the noisy-neighbor act of the fleet study: a
// latency-critical interactive tenant shares the pool with a bursty bulk
// tenant, and the question is what admission policy the interactive tail
// needs. P99Alone is the interactive tenant's p99 with the neighbor absent;
// P99FIFO and P99Priority are its p99 with the neighbor present under
// priority-blind FIFO and under PriorityEDF with a bulk queue quota and
// load-aware early shedding. Bound is the non-preemptive-blocking budget the
// study holds the priority pool to: the alone p99 plus two bulk service
// times (one bulk request can be in flight per worker when an interactive
// request arrives; it cannot be preempted).
type FleetNeighborAct struct {
	// InteractiveService and BulkService are the probed per-request service
	// times of the two traffic classes.
	InteractiveService, BulkService float64
	P99Alone, P99FIFO, P99Priority  float64
	Bound                           float64
	// WithinBound reports P99Priority <= Bound.
	WithinBound bool
	// BulkServedFIFO/Priority and BulkShedPriority account the bulk tenant:
	// the priority policy sheds its overflow (quota + load shedding) instead
	// of letting it queue ahead of interactive traffic.
	BulkServedFIFO, BulkServedPriority, BulkShedPriority int
	// InterferenceFIFO and InterferencePriority are the interactive model's
	// sojourn-inflation ratios versus serving alone, under each policy.
	InterferenceFIFO, InterferencePriority float64
}

// FleetStarvationAct is the batch-starvation act of the fleet study: an
// interactive class that alone overloads the pool shares it with a steady
// batch class. Under strict PriorityEDF the batch class starves — it
// dispatches only in the end-of-trace drain — while WeightedFair's deficit
// round-robin guarantees it its configured share of dispatches at a bounded
// p99. Shares are fractions of all served requests attributed to the batch
// class; WeightShare is the share the weights promise it.
type FleetStarvationAct struct {
	// Service is the probed per-request service time of the common size.
	Service float64
	// WeightShare is the batch class's configured dispatch share.
	WeightShare float64
	// BatchOffered counts batch arrivals in the trace.
	BatchOffered int
	// BatchServedPriority/Weighted count batch completions per policy.
	BatchServedPriority, BatchServedWeighted int
	// BatchSharePriority/Weighted are the batch fraction of all served
	// requests per policy.
	BatchSharePriority, BatchShareWeighted float64
	// BatchP99Priority/Weighted are the batch sojourn p99s per policy.
	BatchP99Priority, BatchP99Weighted float64
	// InteractiveP99Priority/Weighted are the interactive p99s per policy.
	InteractiveP99Priority, InteractiveP99Weighted float64
	// GuaranteeMet reports BatchShareWeighted >= 0.9 * WeightShare.
	GuaranteeMet bool
	// StarvedUnderPriority reports BatchSharePriority < WeightShare / 2 —
	// the contrast that gives the act its teeth.
	StarvedUnderPriority bool
}

// FleetDriftAct is one model's slice of the independent-drift act: two
// supervised models share the pool, drift at different times with different
// factors, and each must detect, re-tune in the background and hot-swap on
// its own — with per-model metrics proving its recovery.
type FleetDriftAct struct {
	Name        string
	DriftFactor float64
	// DriftAt is when the model's pooling factors shift.
	DriftAt float64
	// Detected, Generation, DetectedAt, SwappedAt mirror DriftResult.
	Detected              bool
	Generation            int
	DetectedAt, SwappedAt float64
	// StaleLatency and FreshLatency are the mean post-swap sojourns of the
	// same requests in the all-frozen fleet replay vs the supervised one;
	// Improvement is their ratio.
	StaleLatency, FreshLatency, Improvement float64
	// Interference is the model's sojourn inflation vs serving alone on its
	// assigned workers, in the supervised run.
	Interference float64
}

// FleetStudyResult is the multi-model, multi-tenant serving study: the
// serving-layer counterpart of the paper's heterogeneity argument. Feature
// heterogeneity made one schedule per model insufficient; fleet heterogeneity
// — models and tenants with different latency needs on one GPU pool — makes
// one queue discipline insufficient, and the study quantifies what placement
// plus priority admission buy.
type FleetStudyResult struct {
	NoisyNeighbor FleetNeighborAct
	Starvation    FleetStarvationAct
	Drift         []FleetDriftAct
}

// FleetStudy runs both acts on the shared simulated pool.
func (s *Suite) FleetStudy() (*FleetStudyResult, error) {
	return memo(s, "fleet", s.fleetStudy)
}

func (s *Suite) fleetStudy() (*FleetStudyResult, error) {
	res := &FleetStudyResult{}
	if err := s.fleetNoisyNeighbor(&res.NoisyNeighbor); err != nil {
		return nil, err
	}
	if err := s.fleetStarvation(&res.Starvation); err != nil {
		return nil, err
	}
	drift, err := s.fleetIndependentDrift()
	if err != nil {
		return nil, err
	}
	res.Drift = drift
	return res, nil
}

// fleetNoisyNeighbor runs act one on model A's tuned kernels. All traffic is
// frozen-schedule (drift is act two's business); the contest is purely about
// admission. The trace is built from probed service times so the burst
// pressure is the same regime at any suite scale: interactive requests
// arrive every 4 service times (25% utilization of the two workers alone),
// and every 40 service times the bulk tenant dumps a 12-request burst of
// 4x-sized batches — about 24 service times of work, enough to flood the
// window between bursts.
func (s *Suite) fleetNoisyNeighbor(act *FleetNeighborAct) error {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelA())
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return err
	}
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rf.TimedService(src, 64, nil)
	const iaSize, bulkSize = 256, 1024
	iaSvc, err := svc(0, iaSize)
	if err != nil {
		return err
	}
	bulkSvc, err := svc(0, bulkSize)
	if err != nil {
		return err
	}
	act.InteractiveService, act.BulkService = iaSvc, bulkSvc

	const nInteractive, bursts, burstLen = 160, 15, 12
	interactive := make([]fleet.Request, nInteractive)
	for i := range interactive {
		interactive[i] = fleet.Request{Arrival: float64(i) * 4 * iaSvc, Size: iaSize, Model: 0, Tenant: 0}
	}
	var bulk []fleet.Request
	for b := 1; b <= bursts; b++ {
		start := float64(b) * 40 * iaSvc
		for i := 0; i < burstLen; i++ {
			bulk = append(bulk, fleet.Request{Arrival: start + float64(i)*iaSvc*0.01, Size: bulkSize, Model: 1, Tenant: 1})
		}
	}
	merged := append(append([]fleet.Request(nil), interactive...), bulk...)
	// Re-sort through Merge semantics: arrival order, stable.
	merged = fleet.Merge(fleetToStreams(merged)...)

	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "bulk", Priority: 0, Quota: 8},
	}
	models := []fleet.Model{
		{Name: "rank", Service: svc},
		{Name: "score", Service: svc},
	}
	run := func(reqs []fleet.Request, admission fleet.AdmissionPolicy, shedFraction float64) (*fleet.Report, []float64, error) {
		pool, err := fleet.NewPool(fleet.Config{
			Queue:        trace.QueuePolicy{Workers: 2, QueueDepth: 16},
			Admission:    admission,
			ShedFraction: shedFraction,
		}, models, tenants)
		if err != nil {
			return nil, nil, err
		}
		rep, err := pool.Serve(reqs)
		if err != nil {
			return nil, nil, err
		}
		ratios, err := pool.Interference(reqs, rep)
		if err != nil {
			return nil, nil, err
		}
		return rep, ratios, nil
	}

	alone, _, err := run(interactive, nil, 0)
	if err != nil {
		return err
	}
	fifo, fifoRatios, err := run(merged, fleet.FIFO{}, 0)
	if err != nil {
		return err
	}
	prio, prioRatios, err := run(merged, nil, 0.5)
	if err != nil {
		return err
	}

	act.P99Alone = alone.Metrics.Tenants[0].P99
	act.P99FIFO = fifo.Metrics.Tenants[0].P99
	act.P99Priority = prio.Metrics.Tenants[0].P99
	act.Bound = act.P99Alone + 2*bulkSvc
	act.WithinBound = act.P99Priority <= act.Bound
	act.BulkServedFIFO = fifo.Metrics.Tenants[1].Served
	act.BulkServedPriority = prio.Metrics.Tenants[1].Served
	act.BulkShedPriority = prio.Metrics.Tenants[1].Shed()
	act.InterferenceFIFO = fifoRatios[0]
	act.InterferencePriority = prioRatios[0]
	return nil
}

// fleetStarvation runs the weighted-fair act on model A's tuned kernels. The
// interactive class alone offers ~111% of the two workers' capacity (one
// arrival every 0.45 service times), so its backlog never clears; the batch
// class offers another ~67% on top. Strict PriorityEDF therefore starves the
// batch queue until the drain, while WeightedFair with weights 3:1 must hand
// the batch class a quarter of the dispatches at a bounded p99. Both runs use
// the same admission protections: queue depth 16 and a batch queue quota of
// 8, so stuck batch requests can cap out at admission but never clog the
// whole queue. (Load shedding would defeat the act: under sustained
// interactive backlog the occupancy threshold sheds every batch arrival, and
// the dispatch policy never gets a batch request to be fair to.)
func (s *Suite) fleetStarvation(act *FleetStarvationAct) error {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelA())
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return err
	}
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rf.TimedService(src, 64, nil)
	const size = 256
	sv, err := svc(0, size)
	if err != nil {
		return err
	}
	act.Service = sv

	const nInteractive, nBatch = 240, 144
	act.BatchOffered = nBatch
	var reqs []fleet.Request
	for i := 0; i < nInteractive; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 0.45 * sv, Size: size, Model: 0, Tenant: 0})
	}
	for i := 0; i < nBatch; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 0.75 * sv, Size: size, Model: 0, Tenant: 1})
	}
	reqs = fleet.Merge(fleetToStreams(reqs)...)

	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "batch", Priority: 0, Quota: 8},
	}
	models := []fleet.Model{{Name: "rank", Service: svc}}
	weights := map[int]float64{1: 3, 0: 1}

	run := func(admission fleet.AdmissionPolicy) (*fleet.Report, error) {
		pool, err := fleet.NewPool(fleet.Config{
			Queue:     trace.QueuePolicy{Workers: 2, QueueDepth: 16},
			Admission: admission,
		}, models, tenants)
		if err != nil {
			return nil, err
		}
		return pool.Serve(reqs)
	}
	prio, err := run(nil)
	if err != nil {
		return err
	}
	wf, err := fleet.NewWeightedFair(tenants, fleet.WeightedFairConfig{Weights: weights})
	if err != nil {
		return err
	}
	weighted, err := run(wf)
	if err != nil {
		return err
	}

	act.WeightShare = wf.WeightShare(0)
	act.BatchServedPriority = prio.Metrics.Tenants[1].Served
	act.BatchServedWeighted = weighted.Metrics.Tenants[1].Served
	act.BatchSharePriority = float64(act.BatchServedPriority) / float64(prio.Metrics.Served)
	act.BatchShareWeighted = float64(act.BatchServedWeighted) / float64(weighted.Metrics.Served)
	act.BatchP99Priority = prio.Metrics.Tenants[1].P99
	act.BatchP99Weighted = weighted.Metrics.Tenants[1].P99
	act.InteractiveP99Priority = prio.Metrics.Tenants[0].P99
	act.InteractiveP99Weighted = weighted.Metrics.Tenants[0].P99
	act.GuaranteeMet = act.BatchShareWeighted >= 0.9*act.WeightShare
	act.StarvedUnderPriority = act.BatchSharePriority < act.WeightShare/2
	return nil
}

// fleetToStreams regroups a request list by (model, tenant) for Merge.
func fleetToStreams(reqs []fleet.Request) []fleet.Stream {
	byKey := map[[2]int]int{}
	var streams []fleet.Stream
	for _, r := range reqs {
		k := [2]int{r.Model, r.Tenant}
		i, ok := byKey[k]
		if !ok {
			i = len(streams)
			byKey[k] = i
			streams = append(streams, fleet.Stream{Model: r.Model, Tenant: r.Tenant})
		}
		streams[i].Reqs = append(streams[i].Reqs, trace.Request{Arrival: r.Arrival, Size: r.Size, Deadline: r.Deadline})
	}
	return streams
}

// fleetIndependentDrift runs act two on model C (all multi-hot, so every
// feature drifts): two supervised clones share two workers; model "early"
// drifts 4x a third of the way in, model "late" drifts 6x past the midpoint.
// The all-frozen replay of the identical fleet gives the per-model stale
// baseline for the post-swap latency split.
func (s *Suite) fleetIndependentDrift() ([]FleetDriftAct, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelC())
	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}
	const n = 96
	gen := func(seed int64) ([]trace.Request, error) {
		return trace.Generate(n, trace.GeneratorConfig{
			QPS: 40, MaxBatch: s.Cfg.BatchCap, Seed: seed,
		})
	}
	reqsA, err := gen(cfg.Seed ^ 0x51EE7)
	if err != nil {
		return nil, err
	}
	reqsB, err := gen(cfg.Seed ^ 0xF00D5)
	if err != nil {
		return nil, err
	}
	specs := []struct {
		name    string
		factor  float64
		driftAt float64
		reqs    []trace.Request
	}{
		{"early", 4, reqsA[n/3].Arrival, reqsA},
		{"late", 6, reqsB[3*n/5].Arrival, reqsB},
	}

	opts := func(d *datasynth.DriftSchedule) core.ContinuousOptions {
		return core.ContinuousOptions{
			Supervisor: trace.SupervisorConfig{
				Window:     16,
				CheckEvery: 8,
				MaxRetunes: 1,
			},
			Quantum:       64,
			PhaseOf:       d.PhaseStart,
			RetuneBatches: s.Cfg.TuneBatches,
			Tune: tuner.Options{
				Occupancies: s.Cfg.Occupancies,
				Parallelism: s.Cfg.Parallelism,
			},
		}
	}
	buildModels := func(frozen bool) []core.FleetModel {
		models := make([]core.FleetModel, len(specs))
		for i, sp := range specs {
			drift := datasynth.StepDrift(sp.driftAt, sp.factor)
			src := func(t float64, size int) (*embedding.Batch, error) {
				return drift.BatchForSize(cfg, t, size)
			}
			models[i] = core.FleetModel{
				Name:   sp.name,
				Rec:    rf.Clone(),
				Source: src,
				Opts:   opts(drift),
				Frozen: frozen,
			}
		}
		return models
	}
	tenants := []fleet.TenantSpec{{Name: "online"}}
	stream := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: reqsA},
		fleet.Stream{Model: 1, Tenant: 0, Reqs: reqsB},
	)
	poolCfg := fleet.Config{Queue: trace.QueuePolicy{Workers: 2}}

	fresh, err := core.ServeFleet(poolCfg, buildModels(false), tenants, stream)
	if err != nil {
		return nil, err
	}
	stale, err := core.ServeFleet(poolCfg, buildModels(true), tenants, stream)
	if err != nil {
		return nil, err
	}

	out := make([]FleetDriftAct, len(specs))
	for m, sp := range specs {
		mm := fresh.Report.ModelReports[m].Metrics
		act := FleetDriftAct{
			Name:         sp.name,
			DriftFactor:  sp.factor,
			DriftAt:      sp.driftAt,
			Detected:     len(mm.Swaps) > 0,
			Generation:   mm.Generation,
			Interference: fresh.Interference[m],
		}
		if act.Detected {
			act.DetectedAt = mm.Swaps[0].Detected
			act.SwappedAt = mm.Swaps[0].Swapped
			freshMean, staleMean, count := core.PostSwapSplit(
				fresh.Report.ModelReports[m], stale.Report.ModelReports[m])
			if count == 0 {
				return nil, fmt.Errorf("experiments: fleet model %s swapped at t=%g but served no post-swap requests", sp.name, act.SwappedAt)
			}
			act.FreshLatency = freshMean
			act.StaleLatency = staleMean
			act.Improvement = staleMean / freshMean
		}
		out[m] = act
	}
	return out, nil
}

// PrintFleetStudy renders the fleet study.
func (s *Suite) PrintFleetStudy(w io.Writer) error {
	res, err := s.FleetStudy()
	if err != nil {
		return err
	}
	nn := res.NoisyNeighbor
	if _, err := fmt.Fprintf(w, "\n== Fleet serving: multi-model, multi-tenant pool (2 simulated GPUs) ==\n"+
		"noisy neighbor (model A kernels, interactive %s vs bulk %s bursts):\n"+
		"  interactive p99: alone %s | fifo %s | priority-edf %s (bound %s, within=%v)\n"+
		"  bulk under priority: %d served, %d shed (quota + load shedding); fifo serves all %d\n"+
		"  interactive interference vs alone: fifo %s, priority-edf %s\n",
		report.FmtUS(nn.InteractiveService), report.FmtUS(nn.BulkService),
		report.FmtUS(nn.P99Alone), report.FmtUS(nn.P99FIFO), report.FmtUS(nn.P99Priority),
		report.FmtUS(nn.Bound), nn.WithinBound,
		nn.BulkServedPriority, nn.BulkShedPriority, nn.BulkServedFIFO,
		report.FmtRatio(nn.InterferenceFIFO), report.FmtRatio(nn.InterferencePriority)); err != nil {
		return err
	}
	st := res.Starvation
	if _, err := fmt.Fprintf(w, "weighted-fair vs starvation (sustained overload, weights 3:1, batch share %.0f%%):\n"+
		"  batch served: priority-edf %d/%d (%.1f%% of dispatches, p99 %s) | weighted-fair %d/%d (%.1f%%, p99 %s)\n"+
		"  guarantee met=%v (>= 90%% of weight share), starved under strict priority=%v; interactive p99 %s -> %s\n",
		100*st.WeightShare,
		st.BatchServedPriority, st.BatchOffered, 100*st.BatchSharePriority, report.FmtUS(st.BatchP99Priority),
		st.BatchServedWeighted, st.BatchOffered, 100*st.BatchShareWeighted, report.FmtUS(st.BatchP99Weighted),
		st.GuaranteeMet, st.StarvedUnderPriority,
		report.FmtUS(st.InteractiveP99Priority), report.FmtUS(st.InteractiveP99Weighted)); err != nil {
		return err
	}
	for _, d := range res.Drift {
		if !d.Detected {
			if _, err := fmt.Fprintf(w, "model %s (x%.0f at t=%s): drift not detected\n",
				d.Name, d.DriftFactor, report.FmtUS(d.DriftAt)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "model %s (x%.0f at t=%s): detected t=%s, swapped t=%s (generation %d); post-swap stale %s vs re-tuned %s -> %s; interference %s\n",
			d.Name, d.DriftFactor, report.FmtUS(d.DriftAt),
			report.FmtUS(d.DetectedAt), report.FmtUS(d.SwappedAt), d.Generation,
			report.FmtUS(d.StaleLatency), report.FmtUS(d.FreshLatency),
			report.FmtRatio(d.Improvement), report.FmtRatio(d.Interference)); err != nil {
			return err
		}
	}
	return nil
}
