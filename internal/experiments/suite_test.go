package experiments

import (
	"testing"

	"repro/internal/datasynth"
)

func TestNewSuiteNormalizesConfig(t *testing.T) {
	s := NewSuite(Config{Scale: 0, TuneBatches: 0, EvalBatches: 0, BatchCap: 0})
	if s.Cfg.Scale != 1 || s.Cfg.TuneBatches != 1 || s.Cfg.EvalBatches != 1 || s.Cfg.BatchCap != 512 {
		t.Errorf("config not normalized: %+v", s.Cfg)
	}
}

func TestDefaultAndPaperConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.Scale != 10 || d.EvalBatches != 8 {
		t.Errorf("default config changed unexpectedly: %+v", d)
	}
	p := PaperConfig()
	if p.Scale != 1 || p.EvalBatches != 128 {
		t.Errorf("paper config must match §VI-A: %+v", p)
	}
}

func TestFeaturesProjection(t *testing.T) {
	cfg := datasynth.Scaled(datasynth.ModelA(), 100)
	features := Features(cfg)
	if len(features) != len(cfg.Features) {
		t.Fatalf("%d features for %d specs", len(features), len(cfg.Features))
	}
	for i := range features {
		if features[i].Dim != cfg.Features[i].Dim || features[i].TableRows != cfg.Features[i].Rows {
			t.Errorf("feature %d projection wrong", i)
		}
	}
}

func TestDatasetCachingAndSplit(t *testing.T) {
	s := NewSuite(Config{Scale: 100, TuneBatches: 2, EvalBatches: 3, BatchCap: 128})
	cfg := s.ScaledModel(datasynth.ModelD())
	a, err := s.Dataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Dataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("dataset not cached")
	}
	if len(a.Batches) != 5 {
		t.Errorf("%d batches, want tune+eval = 5", len(a.Batches))
	}
	tune, eval := s.Split(a)
	if len(tune) != 2 || len(eval) != 3 {
		t.Errorf("split %d/%d, want 2/3", len(tune), len(eval))
	}
}

func TestTunedRecFlexCaching(t *testing.T) {
	s := NewSuite(Config{Scale: 100, TuneBatches: 1, EvalBatches: 1, BatchCap: 128,
		Occupancies: []int{4, 8}, Parallelism: 2})
	cfg := s.ScaledModel(datasynth.ModelE())
	dev := Devices()[0]
	a, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("tuned instance not cached")
	}
}

func TestDevicesList(t *testing.T) {
	devs := Devices()
	if len(devs) != 2 || devs[0].Name != "V100" || devs[1].Name != "A100" {
		t.Errorf("Devices() = %v", devs)
	}
}
