package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/datasynth"
	"repro/internal/gpusim"
	"repro/internal/report"
)

// Table2Result compares the detailed hardware counters of RecFlex and
// TorchRec on one batch of model A on the V100 (the paper's Table II).
type Table2Result struct {
	TorchRec gpusim.Counters
	RecFlex  gpusim.Counters
}

// Table2 runs the counter comparison.
func (s *Suite) Table2() (*Table2Result, error) {
	return memo(s, "table2", s.table2)
}

func (s *Suite) table2() (*Table2Result, error) {
	dev := gpusim.V100()
	cfg := s.ScaledModel(datasynth.ModelA())
	ds, err := s.Dataset(cfg)
	if err != nil {
		return nil, err
	}
	_, eval := s.Split(ds)
	batch := eval[0]
	features := Features(cfg)

	trFused, err := baselines.TorchRec{}.Compile(dev, features, batch)
	if err != nil {
		return nil, err
	}
	trRes, err := trFused.Simulate()
	if err != nil {
		return nil, err
	}

	rf, err := s.TunedRecFlex(dev, cfg)
	if err != nil {
		return nil, err
	}
	rfFused, err := rf.CompileBatch(batch)
	if err != nil {
		return nil, err
	}
	rfRes, err := rfFused.Simulate()
	if err != nil {
		return nil, err
	}
	return &Table2Result{TorchRec: trRes.Counters, RecFlex: rfRes.Counters}, nil
}

// PrintTable2 renders the counter comparison.
func (s *Suite) PrintTable2(w io.Writer) error {
	res, err := s.Table2()
	if err != nil {
		return err
	}
	t := &report.Table{
		Title:  "Table II: detailed V100 kernel analysis (model A)",
		Header: []string{"Metric Name", "TorchRec", "RecFlex"},
	}
	add := func(name string, a, b float64, format string) {
		t.AddRow(name, fmt.Sprintf(format, a), fmt.Sprintf(format, b))
	}
	add("Memory Throughput (GB/s)", res.TorchRec.MemoryThroughput/1e9, res.RecFlex.MemoryThroughput/1e9, "%.2f")
	add("Memory Busy (%)", res.TorchRec.MemoryBusyPct, res.RecFlex.MemoryBusyPct, "%.2f")
	add("Max Bandwidth (%)", res.TorchRec.MaxBandwidthPct, res.RecFlex.MaxBandwidthPct, "%.2f")
	add("L1 Cache Throughput (%)", res.TorchRec.L1CacheThroughputPct, res.RecFlex.L1CacheThroughputPct, "%.2f")
	add("L2 Cache Throughput (%)", res.TorchRec.L2CacheThroughputPct, res.RecFlex.L2CacheThroughputPct, "%.2f")
	add("Avg. Active Threads Per Warp", res.TorchRec.AvgActiveThreadsPerWarp, res.RecFlex.AvgActiveThreadsPerWarp, "%.2f")
	add("Avg. Not Predicated Off Threads per Warp", res.TorchRec.AvgNotPredOffThreadsPerWarp, res.RecFlex.AvgNotPredOffThreadsPerWarp, "%.2f")
	return t.Write(w)
}
