package perf

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// Schema identifies the BENCH_*.json layout; bump on incompatible change.
const Schema = "recflex-bench-perf/v1"

// Measurement is one benchmark's figures, in go-test units.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// ReqPerSec is simulated requests replayed per wall-clock second; 0 for
	// kernel-simulation benchmarks, which have no request stream.
	ReqPerSec float64 `json:"req_per_sec,omitempty"`
}

// Entry is one benchmark's point on the perf trajectory. Baseline, when
// present, is the previous trajectory point (for a bugfix PR: the pre-fix
// numbers) measured on the same machine as Current, and Speedup is their
// ns/op ratio.
type Entry struct {
	Name     string       `json:"name"`
	Baseline *Measurement `json:"baseline,omitempty"`
	Current  Measurement  `json:"current"`
	Speedup  float64      `json:"speedup,omitempty"`
}

// File is the committed BENCH_*.json document: the machine the numbers were
// taken on and one entry per hot-path benchmark.
type File struct {
	Schema    string  `json:"schema"`
	Note      string  `json:"note,omitempty"`
	GoVersion string  `json:"go_version"`
	GoOS      string  `json:"goos"`
	GoArch    string  `json:"goarch"`
	CPUs      int     `json:"cpus"`
	Entries   []Entry `json:"benchmarks"`
}

// Measure runs every hot-path case count times through testing.Benchmark
// and keeps each benchmark's fastest run — the standard way to strip
// scheduling noise from a shared machine.
func Measure(count int) []Entry {
	if count < 1 {
		count = 1
	}
	entries := make([]Entry, 0, len(Cases()))
	for _, c := range Cases() {
		var best Measurement
		for i := 0; i < count; i++ {
			r := testing.Benchmark(c.Bench)
			m := Measurement{
				NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
				BytesPerOp:  r.AllocedBytesPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
			}
			if c.ReqsPerIter > 0 && m.NsPerOp > 0 {
				m.ReqPerSec = float64(c.ReqsPerIter) * 1e9 / m.NsPerOp
			}
			if i == 0 || m.NsPerOp < best.NsPerOp {
				best = m
			}
		}
		entries = append(entries, Entry{Name: c.Name, Current: best})
	}
	return entries
}

// NewFile wraps measured entries with the machine fingerprint the numbers
// are only comparable on.
func NewFile(note string, entries []Entry) *File {
	return &File{
		Schema:    Schema,
		Note:      note,
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Entries:   entries,
	}
}

// AttachBaseline copies the baseline file's current measurements into
// matching entries as their baseline trajectory point and fills in the
// speedups, so each emitted file carries its own before/after pair.
func AttachBaseline(entries []Entry, baseline *File) {
	byName := make(map[string]*Entry, len(baseline.Entries))
	for i := range baseline.Entries {
		byName[baseline.Entries[i].Name] = &baseline.Entries[i]
	}
	for i := range entries {
		if prev, ok := byName[entries[i].Name]; ok {
			m := prev.Current
			entries[i].Baseline = &m
			if entries[i].Current.NsPerOp > 0 {
				entries[i].Speedup = m.NsPerOp / entries[i].Current.NsPerOp
			}
		}
	}
}

// Compare gates fresh measurements against a committed baseline file:
// every baseline benchmark that regressed by more than maxRegress
// (e.g. 0.25 for +25% ns/op) is reported; benchmarks missing from the fresh
// run are reported too, so the suite cannot silently shrink.
func Compare(baseline *File, entries []Entry, maxRegress float64) []string {
	byName := make(map[string]Measurement, len(entries))
	for _, e := range entries {
		byName[e.Name] = e.Current
	}
	var bad []string
	for _, b := range baseline.Entries {
		cur, ok := byName[b.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: present in baseline but not measured", b.Name))
			continue
		}
		if b.Current.NsPerOp <= 0 {
			continue
		}
		ratio := cur.NsPerOp / b.Current.NsPerOp
		if ratio > 1+maxRegress {
			bad = append(bad, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f (%.0f%% regression, limit %.0f%%)",
				b.Name, cur.NsPerOp, b.Current.NsPerOp, (ratio-1)*100, maxRegress*100))
		}
	}
	return bad
}

// WriteFile writes the document as indented JSON with a trailing newline.
func (f *File) WriteFile(path string) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// ReadFile loads and schema-checks a BENCH_*.json document.
func ReadFile(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, f.Schema, Schema)
	}
	return &f, nil
}
