// Package perf defines the hot-path benchmark suite and the BENCH_*.json
// perf-trajectory format of ROADMAP item 2. The same benchmark bodies back
// the go-test benchmarks (bench_test.go, the fleet package) and the
// recflex-bench -perf emitter, so the committed trajectory and the test
// suite can never drift apart and measure different code.
package perf

import (
	"testing"

	"repro/internal/fleet"
	"repro/internal/gpusim"
	"repro/internal/trace"
)

// Case is one hot-path benchmark: a name as it appears in BENCH_*.json and
// CI output, the standard testing.B body, and the request count that scales
// ns/op into simulated requests replayed per wall-clock second (0 for
// kernel-simulation benchmarks, which have no request stream).
type Case struct {
	Name        string
	ReqsPerIter int
	Bench       func(*testing.B)
}

const (
	replayRequests = 4096
	fleetRequests  = 512
)

// Cases returns the hot-path suite the perf gate tracks: the two simulator
// regimes (wide launch, saturated retire/backfill), the three replay engines
// (single-model server, multi-tenant fleet pool, elastic heterogeneous pool
// with preemption and autoscaling), the embedding-cache tier's per-dispatch
// path, and the three tuner engines (serial reference, cold fleet-speed,
// warm-started re-tune).
func Cases() []Case {
	return []Case{
		{Name: "SimulateKernel640Blocks", Bench: SimulateKernel640Blocks},
		{Name: "SimulateSaturated", Bench: SimulateSaturated},
		{Name: "ReplayHotPath", ReqsPerIter: replayRequests, Bench: ReplayHotPath},
		{Name: "FleetServe", ReqsPerIter: fleetRequests, Bench: FleetServe},
		{Name: "ElasticServe", ReqsPerIter: fleetRequests, Bench: ElasticServe},
		{Name: "CacheDispatch", ReqsPerIter: 1, Bench: CacheDispatch},
		{Name: "TuneSerial", Bench: TuneSerial},
		{Name: "TuneParallel", Bench: TuneParallel},
		{Name: "RetuneWarm", Bench: RetuneWarm},
	}
}

// SimulateKernel640Blocks measures the simulator's wide-launch regime: 640
// homogeneous blocks over 640 parallel slots, so the whole grid dispatches
// at t=0 and the event loop never backfills.
func SimulateKernel640Blocks(b *testing.B) {
	dev := gpusim.V100()
	blocks := make([]gpusim.BlockWork, 640)
	for i := range blocks {
		blocks[i] = gpusim.BlockWork{
			CompCycles: 20000, DRAMBytes: 64 << 10, L2Bytes: 16 << 10,
			MemRequests: 640, Warps: 8, ActiveFrac: 1, Tag: -1,
		}
	}
	k := &gpusim.Kernel{Name: "bench", Resources: gpusim.KernelResources{ThreadsPerBlock: 256}, Blocks: blocks}
	sim := gpusim.NewSimulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(dev, k); err != nil {
			b.Fatal(err)
		}
	}
}

// SimulateSaturated drives the retire/backfill path hard: one block per SM
// (80 slots) against a 640-block grid with heterogeneous work, so the event
// loop spends the whole run in the saturated len(active)==cap regime where
// every retirement backfills a fresh block.
func SimulateSaturated(b *testing.B) {
	dev := gpusim.V100()
	blocks := make([]gpusim.BlockWork, 640)
	for i := range blocks {
		blocks[i] = gpusim.BlockWork{
			CompCycles: 10000 + float64(i%7)*3000, DRAMBytes: float64(32<<10) + float64(i%5)*8192,
			L2Bytes: 8 << 10, MemRequests: 320, Warps: 8, ActiveFrac: 1, Tag: i % 16,
		}
	}
	k := &gpusim.Kernel{
		Name:      "bench-saturated",
		Resources: gpusim.KernelResources{ThreadsPerBlock: 256, SharedMemPerBlock: 96 * 1024},
		Blocks:    blocks,
	}
	sim := gpusim.NewSimulator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(dev, k); err != nil {
			b.Fatal(err)
		}
	}
}

// ReplayHotPath measures the virtual-clock replay engine end to end on a
// reused server: bounded queue, deadlines, split-at-cap tails and four
// workers, with a cheap deterministic service so the numbers isolate the
// replay bookkeeping (queueing, dispatch, percentile aggregation) rather
// than kernel simulation.
func ReplayHotPath(b *testing.B) {
	reqs, err := trace.Generate(replayRequests, trace.GeneratorConfig{
		QPS: 4000, MaxBatch: 512, TailProb: 0.05, TailSize: 2560, Seed: 42,
	})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 4, QueueDepth: 64, Deadline: 0.05, SplitCap: 512,
	}, func(size int) (float64, error) { return float64(size) * 2e-6, nil })
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := srv.Serve(reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// FleetServe measures the multi-model, multi-tenant pool: two models, two
// tenants with priorities and a per-tenant deadline, load-aware shedding and
// a bounded shared queue.
func FleetServe(b *testing.B) {
	mk := func(seed int64) []trace.Request {
		reqs, err := trace.Generate(fleetRequests/2, trace.GeneratorConfig{QPS: 800, MaxBatch: 256, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		return reqs
	}
	reqs := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: mk(1)},
		fleet.Stream{Model: 1, Tenant: 1, Reqs: mk(2)},
	)
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1, Deadline: 0.05},
	}
	sizeSvc := func(per float64) trace.TimedServiceFunc {
		return func(_ float64, size int) (float64, error) { return float64(size) * per, nil }
	}
	models := []fleet.Model{
		{Name: "a", Service: sizeSvc(4e-6)},
		{Name: "b", Service: sizeSvc(2e-6)},
	}
	p, err := fleet.NewPool(fleet.Config{
		Queue:        trace.QueuePolicy{Workers: 2, QueueDepth: 128},
		ShedFraction: 0.9,
	}, models, tenants)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Serve(reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// ElasticServe measures the elastic heterogeneous pool's extra machinery on
// top of FleetServe's replay loop: chunk-boundary preemption over split-tail
// chunk trains, the autoscaler's windowed backlog polling with scale-out lag
// and drain-before-remove, and per-class service scaling on a mixed
// V100/A100 pool.
func ElasticServe(b *testing.B) {
	mk := func(seed int64, tail float64) []trace.Request {
		reqs, err := trace.Generate(fleetRequests/2, trace.GeneratorConfig{
			QPS: 4000, MaxBatch: 256, TailProb: tail, TailSize: 2560, Seed: seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		return reqs
	}
	reqs := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: mk(1, 0)},
		fleet.Stream{Model: 1, Tenant: 1, Reqs: mk(2, 0.1)},
	)
	tenants := []fleet.TenantSpec{
		{Name: "hi", Priority: 1, Deadline: 0.05},
		{Name: "lo", Priority: 0},
	}
	sizeSvc := func(per float64) trace.TimedServiceFunc {
		return func(_ float64, size int) (float64, error) { return float64(size) * per, nil }
	}
	classScale := []float64{1, 0.5}
	models := []fleet.Model{
		{Name: "a", Service: sizeSvc(4e-6), ClassScale: classScale},
		{Name: "b", Service: sizeSvc(2e-6), ClassScale: classScale},
	}
	p, err := fleet.NewPool(fleet.Config{
		Queue: trace.QueuePolicy{
			Workers: 2, QueueDepth: 128, Deadline: 0.01,
			Policy: trace.DegradeSplitTail, SplitCap: 256,
		},
		Preempt:       true,
		WorkerClasses: []int{0, 0},
		ClassNames:    []string{"V100", "A100"},
		Autoscale: &fleet.AutoscaleConfig{
			Every: 0.005, Max: 4, ScaleOutLag: 0.002, Class: 1,
		},
	}, models, tenants)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Serve(reqs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(reqs))*float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
