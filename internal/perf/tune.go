package perf

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

// The tuner benchmarks replicate a heterogeneous six-feature core twice
// (12 features, two sampled batches) — big enough that the two-stage search
// dominates, small enough that a serial tune fits in a benchtime iteration.
var (
	tuneOnce    sync.Once
	tuneModel   *tuner.Model
	tuneBatches []*embedding.Batch
	tuneErr     error
)

func tuneFixture(b *testing.B) (*tuner.Model, []*embedding.Batch) {
	tuneOnce.Do(func() {
		core := []datasynth.FeatureSpec{
			{Name: "onehot4", Dim: 4, Rows: 4096, PF: datasynth.Fixed{K: 1}, Coverage: 1},
			{Name: "onehot8", Dim: 8, Rows: 8192, PF: datasynth.Fixed{K: 1}, Coverage: 1},
			{Name: "multi8", Dim: 8, Rows: 16384, PF: datasynth.Normal{Mu: 50, Sigma: 10}, Coverage: 1},
			{Name: "multi32", Dim: 32, Rows: 32768, PF: datasynth.Uniform{Lo: 1, Hi: 60}, Coverage: 0.8},
			{Name: "heavy128", Dim: 128, Rows: 32768, PF: datasynth.Fixed{K: 150}, Coverage: 1},
			{Name: "sparse16", Dim: 16, Rows: 8192, PF: datasynth.Fixed{K: 5}, Coverage: 0.3},
		}
		cfg := &datasynth.ModelConfig{Name: "tune-bench", Seed: 77}
		for rep := 0; rep < 2; rep++ {
			for _, spec := range core {
				s := spec
				s.Name = s.Name + string(rune('a'+rep))
				cfg.Features = append(cfg.Features, s)
			}
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < 2; i++ {
			batch, err := datasynth.GenerateBatch(cfg, 256, rng)
			if err != nil {
				tuneErr = err
				return
			}
			tuneBatches = append(tuneBatches, batch)
		}
		features := make([]fusion.FeatureInfo, len(cfg.Features))
		for f := range features {
			features[f] = fusion.FeatureInfo{
				Name:      cfg.Features[f].Name,
				Dim:       cfg.Features[f].Dim,
				TableRows: cfg.Features[f].Rows,
				Pool:      embedding.PoolSum,
			}
		}
		tuneModel = tuner.DefaultModel(features)
	})
	if tuneErr != nil {
		b.Fatal(tuneErr)
	}
	return tuneModel, tuneBatches
}

func tuneBenchOpts() tuner.Options {
	return tuner.Options{Occupancies: []int{1, 2, 4}, Parallelism: 4}
}

// TuneSerial measures the pre-fleet-speed reference: the exhaustive serial
// two-stage search, every candidate at full block budget, occupancies one at
// a time.
func TuneSerial(b *testing.B) {
	dev := gpusim.V100()
	model, batches := tuneFixture(b)
	opts := tuneBenchOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.TuneSerial(dev, model, batches, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// TuneParallel measures the fleet-speed engine cold: worker-pool dispatch
// across occupancies with grouped successive-halving pruning, no memo and no
// warm start, so every iteration pays for its own simulations.
func TuneParallel(b *testing.B) {
	dev := gpusim.V100()
	model, batches := tuneFixture(b)
	opts := tuneBenchOpts()
	opts.Prune = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.Tune(dev, model, batches, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// RetuneWarm measures the fleet steady state: a re-tune warm-started from the
// incumbent result against a memo populated by a previous tune of the same
// window, the configuration core.ServeContinuous/ServeFleet run re-tunes in.
func RetuneWarm(b *testing.B) {
	dev := gpusim.V100()
	model, batches := tuneFixture(b)
	opts := tuneBenchOpts()
	opts.Memo = tuner.NewMemo()
	base, err := tuner.Tune(dev, model, batches, opts)
	if err != nil {
		b.Fatal(err)
	}
	opts.Warm = tuner.WarmFrom(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tuner.Tune(dev, model, batches, opts); err != nil {
			b.Fatal(err)
		}
	}
}
