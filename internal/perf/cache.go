package perf

import (
	"testing"

	"repro/internal/emcache"
)

// CacheDispatch measures the embedding-cache tier's per-dispatch hot path —
// the accounting, recency, admission and amortized re-tier work the fleet
// adds to every dispatch event when a tier is armed. Two models share the
// tier: one with a two-phase drifting profile (crossed early in the run, so
// the steady state includes eviction churn on the drifted heat) and one
// steady, with online re-tiering enabled — a re-tier lands every 100
// dispatches and is amortized into the per-dispatch number. One benchmark
// iteration is one dispatch; tier construction and the phase rebuild are
// off-clock.
func CacheDispatch(b *testing.B) {
	group := func(hot, cold float64) []emcache.FeatureHeat {
		return []emcache.FeatureHeat{
			{Rows: 4096, RowBytes: 256, RowsPerSample: hot, Skew: 1.07},
			{Rows: 4096, RowBytes: 256, RowsPerSample: cold, Skew: 1.07},
		}
	}
	tier, err := emcache.New(emcache.Config{
		BudgetBytes: 1 << 20,
		Policy:      emcache.PolicyLRU,
		RetierEvery: 0.002,
		Models: []emcache.ModelProfile{
			{Phases: []emcache.ProfilePhase{
				{Features: group(4, 0)},
				{Start: 0.04, Features: group(0, 4)},
			}},
			emcache.Steady([]emcache.FeatureHeat{{Rows: 16384, RowBytes: 256, RowsPerSample: 1}}),
		},
		Tenants: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Cross the drift phase and warm the post-drift residency off-clock so
	// every timed dispatch runs the steady-state path.
	now := 0.0
	for j := 0; j < 4096; j++ {
		now += 2e-5
		tier.Dispatch(j&1, (j>>1)&1, now, 64+(j&31))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 2e-5
		tier.Dispatch(i&1, (i>>1)&1, now, 64+(i&31))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
