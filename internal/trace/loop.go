package trace

import (
	"fmt"
	"math"
	"time"
)

// wallNow is the wall-clock read behind SwapEvent.TuneWall — the *host* cost
// of a background re-tune, measurement-only by contract. It must never feed
// anything a deterministic replay pins: not virtual time, not the session
// log, not Metrics.String (TuneWall is excluded there). The seam exists so
// replay-purity tests can substitute a fake clock and prove the engine's
// virtual-time outputs do not depend on it.
var wallNow = time.Now

// Occupier books background (non-serving) work on a replay loop's worker
// capacity: Occupy charges dur seconds starting no earlier than virtual time
// now on some worker slot and returns the chosen slot and the booked
// interval. The single-model replay's replayState implements it; the fleet
// pool implements it per model over that model's placed workers.
type Occupier interface {
	Occupy(now, dur float64) (worker int, start, end float64)
}

// LoopControl is one supervised model's continuous-serving control state,
// factored out of Supervisor.Run so any replay loop can drive it per
// admission: the sliding window, drift-check pacing, background-tune
// booking, hot-swap application, canary evaluation and rollback. The
// single-model Supervisor.Run wires it into the trace replay engine; the
// fleet pool wires several of them — one per model — into its shared-pool
// replay, which is how each model keeps its drift-detect/hot-swap/canary
// semantics while sharing capacity with other models.
//
// A LoopControl holds its supervisor's run lock from BeginRun until Finalize
// or Abort, preserving the monotone-generation guarantee on the shared
// LiveSet; it is not safe for concurrent use within one run (replay loops
// are single-threaded over virtual time by construction).
type LoopControl struct {
	sv *Supervisor

	// Generation history: in-flight entries resolve against the generation
	// stamped at their admission even after later swaps. compl parallels
	// gens with each generation's served completions — the raw material of
	// canary verdicts.
	gens  []TimedServiceFunc
	compl [][]completion
	cur   int

	// A tune in flight, waiting for its completion time to pass.
	pendingSvc TimedServiceFunc
	pendingAt  float64

	swaps     []SwapEvent
	canary    *canaryRun
	retunes   int
	rollbacks int
	tuneWall  float64

	window        []WindowEntry
	winFull       bool
	sinceCheck    int
	cooldownUntil float64

	done bool
}

// BeginRun acquires the supervisor's run lock and returns a fresh control
// for one replay. The caller must drive every admission through Admit, every
// dispatch through Resolve, every served completion through Observe, and
// must end the run with exactly one Finalize (success) or Abort (error) —
// both release the run lock.
func (sv *Supervisor) BeginRun() *LoopControl {
	sv.runMu.Lock()
	return &LoopControl{
		sv:            sv,
		gens:          []TimedServiceFunc{sv.service},
		compl:         [][]completion{nil},
		window:        make([]WindowEntry, 0, sv.cfg.window()),
		cooldownUntil: math.Inf(-1),
	}
}

// Admit observes one arrival of the given size at virtual time now — in
// arrival order, before any queue placement or shedding — and returns the
// schedule-set generation to stamp on it. It applies a completed background
// tune (the hot-swap), evaluates an open canary window (possibly rolling the
// promotion back), slides the drift window, and may launch a background
// re-tune booked on oc's capacity.
func (lc *LoopControl) Admit(oc Occupier, size int, now float64) (int, error) {
	sv := lc.sv
	// Apply a completed background tune: the swap is live for this and
	// every later admission, and — with the guard on — opens a canary
	// window against the outgoing generation's recent completions.
	if lc.pendingSvc != nil && now >= lc.pendingAt {
		prev := lc.cur
		lc.gens = append(lc.gens, lc.pendingSvc)
		lc.compl = append(lc.compl, nil)
		lc.cur = len(lc.gens) - 1
		sv.live.Swap(lc.pendingSvc, lc.pendingAt)
		if sv.cfg.canaryEnabled() {
			lc.canary = &canaryRun{
				swapIdx:  len(lc.swaps) - 1,
				gen:      lc.cur,
				prev:     prev,
				openedAt: lc.pendingAt,
				baseline: canaryBaseline(lc.compl[prev], lc.pendingAt, sv.cfg.CanaryWindow, sv.cfg.CanaryDuration),
			}
		}
		lc.pendingSvc = nil
	}

	// Evaluate an open canary: the window closes once enough of the new
	// generation's admissions have completed (or the time cap passes),
	// and a verdict worse than the baseline by more than the margin
	// rolls the promotion back — a forward swap to a fresh generation id
	// reusing the previous service, live from this admission on.
	if lc.canary != nil {
		done := completedBy(lc.compl[lc.canary.gen], now)
		closed := (sv.cfg.CanaryWindow > 0 && len(done) >= sv.cfg.CanaryWindow) ||
			(sv.cfg.CanaryDuration > 0 && now >= lc.canary.openedAt+sv.cfg.CanaryDuration)
		if closed {
			cm, bm, matched := canaryVerdict(lc.canary.baseline, done)
			lc.swaps[lc.canary.swapIdx].CanaryMean = cm
			lc.swaps[lc.canary.swapIdx].BaselineMean = bm
			if matched > 0 && cm > bm*(1+sv.cfg.RollbackMargin) {
				svc := lc.gens[lc.canary.prev]
				lc.gens = append(lc.gens, svc)
				lc.compl = append(lc.compl, nil)
				lc.cur = len(lc.gens) - 1
				sv.live.Swap(svc, now)
				lc.swaps = append(lc.swaps, SwapEvent{
					Generation: lc.cur,
					Rollback:   true,
					Reinstated: lc.canary.prev,
					Detected:   now,
					Start:      now,
					Swapped:    now,
					Worker:     -1,
				})
				lc.rollbacks++
				lc.cooldownUntil = now + sv.cfg.Cooldown
				if sv.onRollback != nil {
					sv.onRollback(lc.cur, lc.canary.prev)
				}
			}
			lc.canary = nil
		}
	}

	// Slide the window and pace the drift checks.
	if len(lc.window) == cap(lc.window) {
		copy(lc.window, lc.window[1:])
		lc.window = lc.window[:len(lc.window)-1]
		lc.winFull = true
	}
	lc.window = append(lc.window, WindowEntry{Time: now, Size: size})
	lc.sinceCheck++

	if lc.pendingSvc == nil && lc.canary == nil && (lc.winFull || len(lc.window) == cap(lc.window)) &&
		lc.sinceCheck >= sv.cfg.checkEvery() && now >= lc.cooldownUntil &&
		(sv.cfg.MaxRetunes == 0 || lc.retunes < sv.cfg.MaxRetunes) {
		lc.sinceCheck = 0
		drifted, err := sv.detect(lc.window)
		if err != nil {
			return 0, fmt.Errorf("trace: drift detector: %w", err)
		}
		if drifted {
			// Launch the background tune on the least-loaded worker:
			// the slot is booked for the tune's duration, so serving
			// capacity drops by one worker until the swap.
			newGen := len(lc.swaps) + 1
			tuneStart := wallNow()
			svc, err := sv.retune(newGen, lc.window)
			tuneWall := wallNow().Sub(tuneStart).Seconds()
			if err != nil {
				return 0, fmt.Errorf("trace: re-tune for generation %d: %w", newGen, err)
			}
			if svc == nil {
				return 0, fmt.Errorf("trace: re-tune for generation %d returned nil service", newGen)
			}
			lc.retunes++
			worker, start, end := oc.Occupy(now, sv.cfg.tuneDuration())
			lc.swaps = append(lc.swaps, SwapEvent{
				Generation:   newGen,
				Detected:     now,
				Start:        start,
				Swapped:      end,
				Worker:       worker,
				TuneDuration: end - start,
				TuneWall:     tuneWall,
			})
			lc.tuneWall += tuneWall
			lc.pendingSvc = svc
			lc.pendingAt = end
			lc.cooldownUntil = end + sv.cfg.Cooldown
		}
	}
	return lc.cur, nil
}

// Resolve returns the service time of a request of the given size that
// arrived at the given virtual time, under the generation it was admitted
// on — in-flight requests keep the schedule set they arrived under across a
// hot-swap.
func (lc *LoopControl) Resolve(gen int, arrival float64, size int) (float64, error) {
	if gen < 0 || gen >= len(lc.gens) {
		return 0, fmt.Errorf("trace: request resolved against unknown generation %d (have %d)", gen, len(lc.gens))
	}
	return lc.gens[gen](arrival, size)
}

// Observe records one served completion for canary evaluation: the request's
// size, the generation it was admitted on, its completion time and sojourn.
func (lc *LoopControl) Observe(size, gen int, end, sojourn float64) {
	lc.compl[gen] = append(lc.compl[gen], completion{size: size, end: end, sojourn: sojourn})
}

// Finalize ends the run: a tune still pending when the trace ended is
// published (its swap went live at its completion time — serving just ended
// first), the pre/post-swap latency split is computed over rep's generation
// stamps and served sojourns, the swap history lands in rep.Metrics, the
// metrics snapshot is installed on the supervisor, and the run lock is
// released.
func (lc *LoopControl) Finalize(rep *Report) {
	if lc.done {
		return
	}
	lc.done = true
	sv := lc.sv
	defer sv.runMu.Unlock()

	if lc.pendingSvc != nil {
		sv.live.Swap(lc.pendingSvc, lc.pendingAt)
		lc.pendingSvc = nil
	}

	// Pre/post-swap latency split: mean served sojourn per generation.
	sums := make([]float64, len(lc.swaps)+1)
	counts := make([]int, len(lc.swaps)+1)
	for i, g := range rep.Generations {
		if !math.IsNaN(rep.Sojourn[i]) {
			sums[g] += rep.Sojourn[i]
			counts[g]++
		}
	}
	meanOf := func(g int) float64 {
		if g < 0 || g >= len(counts) || counts[g] == 0 {
			return math.NaN()
		}
		return sums[g] / float64(counts[g])
	}
	for i := range lc.swaps {
		lc.swaps[i].PreMean = meanOf(lc.swaps[i].Generation - 1)
		lc.swaps[i].PostMean = meanOf(lc.swaps[i].Generation)
	}

	met := rep.Metrics
	met.Generation = len(lc.swaps)
	met.Swaps = lc.swaps
	met.Rollbacks = lc.rollbacks
	met.TuneWall = lc.tuneWall

	sv.mu.Lock()
	sv.last = met
	sv.mu.Unlock()
}

// Abort releases the run lock without publishing anything — the error path's
// counterpart to Finalize.
func (lc *LoopControl) Abort() {
	if lc.done {
		return
	}
	lc.done = true
	lc.sv.runMu.Unlock()
}
