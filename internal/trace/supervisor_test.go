package trace_test

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// eqNaN compares floats treating NaN as equal to NaN.
func eqNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// reportsEqual is reflect.DeepEqual with NaN-tolerant float comparison on
// the fields that legitimately hold NaN (shed sojourns, empty-side swap
// means); everything else must match exactly.
func reportsEqual(a, b *trace.Report) bool {
	if len(a.Sojourn) != len(b.Sojourn) {
		return false
	}
	for i := range a.Sojourn {
		if !eqNaN(a.Sojourn[i], b.Sojourn[i]) {
			return false
		}
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) || !reflect.DeepEqual(a.Generations, b.Generations) {
		return false
	}
	if a.P50 != b.P50 || a.P95 != b.P95 || a.P99 != b.P99 ||
		a.MeanService != b.MeanService || a.Utilization != b.Utilization {
		return false
	}
	return metricsEqual(a.Metrics, b.Metrics)
}

// metricsEqual compares snapshots with NaN-tolerant swap means, ignoring the
// wall-clock TuneWall fields (host time differs across identical replays).
func metricsEqual(a, b *trace.Metrics) bool {
	if len(a.Swaps) != len(b.Swaps) {
		return false
	}
	for i := range a.Swaps {
		sa, sb := a.Swaps[i], b.Swaps[i]
		if !eqNaN(sa.PreMean, sb.PreMean) || !eqNaN(sa.PostMean, sb.PostMean) {
			return false
		}
		sa.PreMean, sa.PostMean = 0, 0
		sb.PreMean, sb.PostMean = 0, 0
		sa.TuneWall, sb.TuneWall = 0, 0
		if sa != sb {
			return false
		}
	}
	ca, cb := a.Clone(), b.Clone()
	ca.Swaps, cb.Swaps = nil, nil
	ca.TuneWall, cb.TuneWall = 0, 0
	return reflect.DeepEqual(ca, cb)
}

// constTimed is a time- and size-invariant service.
func constTimed(v float64) trace.TimedServiceFunc {
	return func(float64, int) (float64, error) { return v, nil }
}

// neverDrift pins the detector off.
func neverDrift([]trace.WindowEntry) (bool, error) { return false, nil }

// noRetune fails the test if the supervisor ever tunes.
func noRetune(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) {
	return nil, errors.New("retuner must not run")
}

// With the detector pinned off, a supervised run IS a plain Server run: the
// whole Report — sojourns, outcomes, percentiles, worker stats, histogram —
// must be deeply equal, and the swap-related fields must stay zero.
func TestSupervisorNoDriftEqualsServer(t *testing.T) {
	reqs, err := trace.Generate(400, trace.GeneratorConfig{
		QPS: 2500, MaxBatch: 512, TailProb: 0.05, TailSize: 2560, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	service := sizeService(4e-5)
	for _, k := range []int{1, 3} {
		cfg := trace.ServerConfig{Workers: k, SplitCap: 512}
		srv, err := trace.NewServer(cfg, service)
		if err != nil {
			t.Fatal(err)
		}
		want, err := srv.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := trace.NewSupervisor(trace.SupervisorConfig{Server: cfg},
			trace.Untimed(service), neverDrift, noRetune)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sv.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		// No deadline -> nothing sheds -> no NaN sojourns, so DeepEqual is
		// exact over the full report (NaN would defeat ==).
		if !reflect.DeepEqual(rep, want) {
			t.Fatalf("k=%d: supervised no-drift report differs from plain server", k)
		}
		if g := sv.Live().Current(); g.ID != 0 || g.Swapped != 0 {
			t.Errorf("k=%d: live generation %d swapped at %g, want pristine generation 0", k, g.ID, g.Swapped)
		}
	}
}

// A scripted drift: one worker, service 1ms on generation 0 and 0.5ms on
// generation 1, drift fires at t=10 with a 0.5s tune. Every observable —
// generation stamps, swap-event fields, the tune's capacity cost on the
// worker, the serving-only utilization split, the pre/post latency means and
// the live-set publication — is checked against hand-computed values.
func TestSupervisorSwapSemantics(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 16},
		{Arrival: 1, Size: 16},
		{Arrival: 10, Size: 16},   // triggers detection; delayed by the tune
		{Arrival: 10.2, Size: 16}, // admitted during the tune -> generation 0
		{Arrival: 12, Size: 32},   // after the swap -> generation 1
	}
	var gotTuneGen int
	var gotWindow []trace.WindowEntry
	var gen1T atomic.Value
	gen0 := constTimed(1e-3)
	gen1 := func(tt float64, size int) (float64, error) {
		gen1T.Store([2]float64{tt, float64(size)})
		return 5e-4, nil
	}
	detect := func(win []trace.WindowEntry) (bool, error) {
		return win[len(win)-1].Time >= 10, nil
	}
	retune := func(gen int, win []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		gotTuneGen = gen
		gotWindow = append([]trace.WindowEntry(nil), win...)
		time.Sleep(2 * time.Millisecond) // make the measured tune wall time visible
		return gen1, nil
	}
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 1},
		Window:       2,
		CheckEvery:   1,
		TuneDuration: 0.5,
		MaxRetunes:   1,
	}, gen0, detect, retune)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	if gotTuneGen != 1 {
		t.Errorf("retuner saw generation %d, want 1", gotTuneGen)
	}
	if len(gotWindow) != 2 || gotWindow[1].Time != 10 || gotWindow[0].Time != 1 {
		t.Errorf("retuner window %+v, want the sliding window [t=1, t=10]", gotWindow)
	}
	if want := []int{0, 0, 0, 0, 1}; !reflect.DeepEqual(rep.Generations, want) {
		t.Fatalf("generation stamps %v, want %v", rep.Generations, want)
	}

	m := rep.Metrics
	if len(m.Swaps) != 1 || m.Generation != 1 {
		t.Fatalf("swaps %d generation %d, want 1/1", len(m.Swaps), m.Generation)
	}
	s := m.Swaps[0]
	if s.Generation != 1 || s.Detected != 10 || s.Start != 10 || s.Swapped != 10.5 ||
		s.Worker != 0 || s.TuneDuration != 0.5 {
		t.Errorf("swap event %+v, want gen 1 detected/start 10, swapped 10.5 on worker 0", s)
	}
	if m.TuneBusy != 0.5 {
		t.Errorf("TuneBusy %g, want 0.5", m.TuneBusy)
	}
	// TuneWall is host time: the retuner slept 2ms, so both the swap event
	// and the run total must record at least that much real time.
	if s.TuneWall < 2e-3 {
		t.Errorf("swap TuneWall %g, want >= 2ms of measured retuner wall time", s.TuneWall)
	}
	if m.TuneWall != s.TuneWall {
		t.Errorf("metrics TuneWall %g, want the single swap's %g", m.TuneWall, s.TuneWall)
	}

	// The tune occupies the only worker 10 -> 10.5, so the t=10 arrival waits
	// for it, the t=10.2 arrival queues behind, and the t=12 arrival runs on
	// the faster generation-1 kernel immediately.
	wantSoj := []float64{1e-3, 1e-3, 0.501, 10.502 - 10.2, 5e-4}
	for i, w := range wantSoj {
		if math.Abs(rep.Sojourn[i]-w) > 1e-9 {
			t.Errorf("sojourn[%d] = %g, want %g", i, rep.Sojourn[i], w)
		}
	}
	// The generation-1 service resolves against the entry's arrival time.
	if got := gen1T.Load().([2]float64); got[0] != 12 || got[1] != 32 {
		t.Errorf("generation-1 service called with (t=%g, size=%g), want (12, 32)", got[0], got[1])
	}

	// Utilization counts serving only; the tune's 0.5s lives in TuneBusy.
	busy := 4*1e-3 + 5e-4
	makespan := 12.0005
	if math.Abs(m.Makespan-makespan) > 1e-9 {
		t.Errorf("makespan %g, want %g", m.Makespan, makespan)
	}
	if math.Abs(rep.Utilization-busy/makespan) > 1e-9 {
		t.Errorf("utilization %g, want %g (serving busy only)", rep.Utilization, busy/makespan)
	}
	// The tune's occupancy is attributed to the worker slot that held it:
	// the only worker serves 4.5ms, tunes 0.5s, and reports the split — it
	// was occupied, not idle, during the tune.
	ws := m.Workers[0]
	if ws.TuneBusy != 0.5 {
		t.Errorf("worker TuneBusy %g, want 0.5", ws.TuneBusy)
	}
	if math.Abs(ws.Busy-busy) > 1e-12 {
		t.Errorf("worker Busy %g, want serving-only %g", ws.Busy, busy)
	}
	if want := (busy + 0.5) / makespan; math.Abs(ws.Utilization-want) > 1e-9 {
		t.Errorf("worker utilization %g, want serving+tune %g", ws.Utilization, want)
	}

	wantPre := (1e-3 + 1e-3 + 0.501 + (10.502 - 10.2)) / 4
	if math.Abs(s.PreMean-wantPre) > 1e-9 {
		t.Errorf("PreMean %g, want %g", s.PreMean, wantPre)
	}
	if math.Abs(s.PostMean-5e-4) > 1e-12 {
		t.Errorf("PostMean %g, want 5e-4", s.PostMean)
	}

	if g := sv.Live().Current(); g.ID != 1 || g.Swapped != 10.5 {
		t.Errorf("live generation %d swapped %g, want 1 at 10.5", g.ID, g.Swapped)
	}
	if snap := sv.Metrics(); snap == nil || snap.Generation != 1 || len(snap.Swaps) != 1 {
		t.Errorf("metrics snapshot %+v", snap)
	}
}

// A tune that outlives the trace still counts: the swap is recorded and
// published to the live set, no request is stamped with it, and its PostMean
// is NaN because no request was admitted on the new generation.
func TestSupervisorTrailingSwap(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 16}, {Arrival: 1, Size: 16}, {Arrival: 2, Size: 16},
	}
	always := func([]trace.WindowEntry) (bool, error) { return true, nil }
	retune := func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return constTimed(5e-4), nil
	}
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 1},
		Window:       2,
		CheckEvery:   1,
		TuneDuration: 100,
		MaxRetunes:   1,
	}, constTimed(1e-3), always, retune)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if len(m.Swaps) != 1 || m.Generation != 1 {
		t.Fatalf("swaps %d generation %d, want 1/1", len(m.Swaps), m.Generation)
	}
	if s := m.Swaps[0]; s.Detected != 1 || s.Start != 1 || s.Swapped != 101 {
		t.Errorf("swap %+v, want detected/start at 1, swapped at 101", s)
	}
	for i, g := range rep.Generations {
		if g != 0 {
			t.Errorf("request %d stamped generation %d; the swap landed after the last arrival", i, g)
		}
	}
	if !math.IsNaN(m.Swaps[0].PostMean) {
		t.Errorf("PostMean %g, want NaN (nobody was admitted on generation 1)", m.Swaps[0].PostMean)
	}
	if m.Swaps[0].PreMean <= 0 {
		t.Errorf("PreMean %g, want positive", m.Swaps[0].PreMean)
	}
	// The tune books the only worker 1 -> 101, so the t=1 arrival dispatches
	// at 101 and the t=2 arrival right behind it: 101.001 + 1ms - 2.
	if math.Abs(rep.Sojourn[2]-99.002) > 1e-9 {
		t.Errorf("sojourn[2] = %g, want 99.002 (tune holds the worker)", rep.Sojourn[2])
	}
	if g := sv.Live().Current(); g.ID != 1 || g.Swapped != 101 {
		t.Errorf("live generation %d at %g: a trailing tune must still publish", g.ID, g.Swapped)
	}
}

// MaxRetunes caps the number of background tunes; Cooldown spaces drift
// checks from the previous swap.
func TestSupervisorCooldownAndMaxRetunes(t *testing.T) {
	reqs, err := trace.Generate(300, trace.GeneratorConfig{QPS: 1000, MaxBatch: 512, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	always := func([]trace.WindowEntry) (bool, error) { return true, nil }
	retune := func(gen int, _ []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return constTimed(1e-5), nil
	}
	const cooldown = 0.02
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 2},
		Window:       4,
		CheckEvery:   2,
		TuneDuration: 1e-3,
		Cooldown:     cooldown,
		MaxRetunes:   3,
	}, constTimed(1e-5), always, retune)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if len(m.Swaps) != 3 || m.Generation != 3 {
		t.Fatalf("swaps %d generation %d, want exactly MaxRetunes=3", len(m.Swaps), m.Generation)
	}
	for i, s := range m.Swaps {
		if s.Generation != i+1 {
			t.Errorf("swap %d carries generation %d, want %d", i, s.Generation, i+1)
		}
		if i > 0 && s.Detected < m.Swaps[i-1].Swapped+cooldown {
			t.Errorf("swap %d detected at %g, inside the cooldown after %g",
				i, s.Detected, m.Swaps[i-1].Swapped)
		}
	}
	if math.Abs(m.TuneBusy-3e-3) > 1e-12 {
		t.Errorf("TuneBusy %g, want 3 tunes x 1ms", m.TuneBusy)
	}
	if g := sv.Live().Current(); g.ID != 3 {
		t.Errorf("live generation %d, want 3", g.ID)
	}
}

// Property over random traces with an always-hot detector: generation stamps
// are monotone in arrival order, every request is accounted for (zero lost),
// swap times are ordered, and the whole run is bit-deterministic when
// repeated from scratch.
func TestSupervisorGenerationsMonotoneZeroLostProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		reqs, err := trace.Generate(250, trace.GeneratorConfig{
			QPS:      800 + float64(seed)*400,
			MaxBatch: 512,
			TailProb: 0.05,
			TailSize: 2560,
			Seed:     seed * 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		run := func() (*trace.Report, *trace.Metrics) {
			always := func([]trace.WindowEntry) (bool, error) { return true, nil }
			retune := func(gen int, _ []trace.WindowEntry) (trace.TimedServiceFunc, error) {
				perSample := 2e-5 / float64(gen)
				return func(_ float64, size int) (float64, error) {
					return float64(size) * perSample, nil
				}, nil
			}
			sv, err := trace.NewSupervisor(trace.SupervisorConfig{
				Server:       trace.ServerConfig{Workers: 1 + int(seed)%3, SplitCap: 512},
				Window:       8,
				CheckEvery:   4,
				TuneDuration: 1e-3,
			}, trace.Untimed(sizeService(2e-5)), always, retune)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := sv.Run(reqs)
			if err != nil {
				t.Fatal(err)
			}
			return rep, sv.Metrics()
		}
		rep, met := run()

		// trace.Generate emits arrival order, so caller order is arrival order.
		for i := 1; i < len(rep.Generations); i++ {
			if rep.Generations[i] < rep.Generations[i-1] {
				t.Fatalf("seed %d: generation stamp regressed at request %d: %d -> %d",
					seed, i, rep.Generations[i-1], rep.Generations[i])
			}
		}
		served := 0
		for i := range reqs {
			if rep.Outcomes[i].Shed() {
				t.Fatalf("seed %d: request %d shed with deadlines off", seed, i)
			}
			if math.IsNaN(rep.Sojourn[i]) {
				t.Fatalf("seed %d: request %d lost (served but no sojourn)", seed, i)
			}
			served++
		}
		if met.Served != served || served != len(reqs) {
			t.Fatalf("seed %d: %d of %d requests accounted", seed, met.Served, len(reqs))
		}
		if len(met.Swaps) == 0 || met.Generation != len(met.Swaps) {
			t.Fatalf("seed %d: generation %d with %d swaps", seed, met.Generation, len(met.Swaps))
		}
		for i := 1; i < len(met.Swaps); i++ {
			if met.Swaps[i].Swapped < met.Swaps[i-1].Swapped {
				t.Fatalf("seed %d: swap times regressed: %g -> %g",
					seed, met.Swaps[i-1].Swapped, met.Swaps[i].Swapped)
			}
		}
		if want := float64(len(met.Swaps)) * 1e-3; math.Abs(met.TuneBusy-want) > 1e-9 {
			t.Errorf("seed %d: TuneBusy %g, want %g", seed, met.TuneBusy, want)
		}
		var workerTune float64
		for _, w := range met.Workers {
			workerTune += w.TuneBusy
		}
		if math.Abs(workerTune-met.TuneBusy) > 1e-9 {
			t.Errorf("seed %d: per-worker TuneBusy sums to %g, metrics say %g",
				seed, workerTune, met.TuneBusy)
		}

		// Determinism: a fresh supervisor over the same inputs reproduces the
		// run bit for bit.
		rep2, met2 := run()
		if !reportsEqual(rep, rep2) {
			t.Errorf("seed %d: repeated run produced a different report", seed)
		}
		if !metricsEqual(met, met2) {
			t.Errorf("seed %d: repeated run produced different metrics", seed)
		}
	}
}

func TestSupervisorErrors(t *testing.T) {
	ok := constTimed(1e-3)
	okDetect := neverDrift
	okRetune := func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) { return ok, nil }
	if _, err := trace.NewSupervisor(trace.SupervisorConfig{}, nil, okDetect, okRetune); err == nil {
		t.Error("nil service accepted")
	}
	if _, err := trace.NewSupervisor(trace.SupervisorConfig{}, ok, nil, okRetune); err == nil {
		t.Error("nil detector accepted")
	}
	if _, err := trace.NewSupervisor(trace.SupervisorConfig{}, ok, okDetect, nil); err == nil {
		t.Error("nil retuner accepted")
	}
	for _, bad := range []trace.SupervisorConfig{
		{Window: -1},
		{CheckEvery: -1},
		{TuneDuration: -1},
		{Cooldown: -1},
		{MaxRetunes: -1},
		{Server: trace.ServerConfig{Workers: -2}},
	} {
		if _, err := trace.NewSupervisor(bad, ok, okDetect, okRetune); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{}, ok, okDetect, okRetune)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Run(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if sv.Metrics() != nil {
		t.Error("metrics snapshot before first Run should be nil")
	}

	steady := make([]trace.Request, 64)
	for i := range steady {
		steady[i] = trace.Request{Arrival: float64(i) * 1e-3, Size: 16}
	}
	boom := errors.New("detector exploded")
	failDetect, err := trace.NewSupervisor(trace.SupervisorConfig{Window: 4}, ok,
		func([]trace.WindowEntry) (bool, error) { return false, boom }, okRetune)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failDetect.Run(steady); !errors.Is(err, boom) {
		t.Errorf("detector error not propagated: %v", err)
	}
	tuneErr := errors.New("tuner exploded")
	always := func([]trace.WindowEntry) (bool, error) { return true, nil }
	failRetune, err := trace.NewSupervisor(trace.SupervisorConfig{Window: 4}, ok, always,
		func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) { return nil, tuneErr })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := failRetune.Run(steady); !errors.Is(err, tuneErr) {
		t.Errorf("retuner error not propagated: %v", err)
	}
	nilSvc, err := trace.NewSupervisor(trace.SupervisorConfig{Window: 4}, ok, always,
		func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nilSvc.Run(steady); err == nil || !strings.Contains(err.Error(), "nil service") {
		t.Errorf("nil re-tuned service accepted: %v", err)
	}
}

// Hot-swap under load: concurrent readers spin on the live set while a
// writer swaps generations as fast as it can. Run with -race. Each reader
// must observe (a) monotonically non-decreasing generation ids and (b) a
// service that belongs to the id — the immutable-Generation pointer swap
// makes a torn (ID, Service) pair impossible.
func TestLiveSetHotSwapUnderLoad(t *testing.T) {
	mkSvc := func(id int) trace.TimedServiceFunc {
		v := float64(id)
		return func(float64, int) (float64, error) { return v, nil }
	}
	ls := trace.NewLiveSet(mkSvc(0))
	const swaps = 2000
	const readers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := ls.Current()
				if g == nil || g.Service == nil {
					t.Error("live set returned a torn generation")
					return
				}
				if g.ID < last {
					t.Errorf("generation went backwards: %d after %d", g.ID, last)
					return
				}
				last = g.ID
				v, err := g.Service(0, 1)
				if err != nil || v != float64(g.ID) {
					t.Errorf("generation %d carries service of generation %g (torn swap)", g.ID, v)
					return
				}
			}
		}()
	}
	for i := 1; i <= swaps; i++ {
		g := ls.Swap(mkSvc(i), float64(i))
		if g.ID != i {
			t.Fatalf("swap %d installed id %d", i, g.ID)
		}
	}
	close(stop)
	wg.Wait()
	if g := ls.Current(); g.ID != swaps {
		t.Fatalf("final generation %d, want %d", g.ID, swaps)
	}
}

// The full loop under concurrent observation: Run hot-swaps repeatedly while
// observer goroutines read the published live set. Run with -race. After the
// run, every request must be accounted for and the observers must have seen
// only monotone generations.
func TestSupervisorHotSwapUnderLoad(t *testing.T) {
	reqs, err := trace.Generate(500, trace.GeneratorConfig{QPS: 2000, MaxBatch: 512, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	always := func([]trace.WindowEntry) (bool, error) { return true, nil }
	retune := func(gen int, _ []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return constTimed(1e-5 * float64(1+gen%3)), nil
	}
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 2},
		Window:       4,
		CheckEvery:   2,
		TuneDuration: 1e-4,
	}, constTimed(1e-5), always, retune)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := sv.Live().Current()
				if g == nil || g.Service == nil {
					t.Error("torn generation observed mid-run")
					return
				}
				if g.ID < last {
					t.Errorf("observer saw generation regress: %d after %d", g.ID, last)
					return
				}
				last = g.ID
			}
		}()
	}
	rep, err := sv.Run(reqs)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if math.IsNaN(rep.Sojourn[i]) || rep.Outcomes[i] != trace.OutcomeServed {
			t.Fatalf("request %d lost across %d swaps", i, len(rep.Metrics.Swaps))
		}
	}
	if len(rep.Metrics.Swaps) < 10 {
		t.Errorf("only %d swaps; the stress run should swap repeatedly", len(rep.Metrics.Swaps))
	}
	if got := sv.Live().Current().ID; got != rep.Metrics.Generation {
		t.Errorf("live generation %d, metrics say %d", got, rep.Metrics.Generation)
	}
}

// MemoTimedService collapses time onto drift phases: one inner call per
// (phase, size), the inner service receives the phase (not the raw time),
// and a nil phaseOf makes the service time-invariant.
func TestMemoTimedServicePhases(t *testing.T) {
	var calls int32
	var lastT atomic.Value
	inner := func(tt float64, size int) (float64, error) {
		atomic.AddInt32(&calls, 1)
		lastT.Store(tt)
		return tt*1000 + float64(size), nil
	}
	svc := trace.MemoTimedService(inner, math.Floor)
	for _, tt := range []float64{0.1, 0.7, 0.999} { // same phase 0
		v, err := svc(tt, 8)
		if err != nil || v != 8 {
			t.Fatalf("phase 0: got %g, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("inner called %d times for one (phase, size), want 1", calls)
	}
	v, err := svc(1.5, 8) // phase 1
	if err != nil || v != 1008 {
		t.Fatalf("phase 1: got %g, %v", v, err)
	}
	if got := lastT.Load().(float64); got != 1 {
		t.Errorf("inner received t=%g, want the phase start 1", got)
	}
	if calls != 2 {
		t.Errorf("inner called %d times, want 2", calls)
	}

	calls = 0
	invariant := trace.MemoTimedService(inner, nil)
	if _, err := invariant(0.3, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := invariant(99, 8); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("nil phaseOf: inner called %d times, want 1 (time-invariant)", calls)
	}
}

// canaryTrace builds the guarded-promotion scenario shared by the canary
// tests: 100 evenly spaced arrivals cycling through four sizes, a size-
// proportional generation-0 service fast enough that nothing queues, and a
// detector that fires once traffic passes t=0.2. The retuner installs
// factor x the generation-0 per-sample time — factor > 1 is a poisoned tune
// the canary must catch, factor < 1 a genuinely better one it must keep.
func canaryTrace(factor float64, cfg trace.SupervisorConfig) (*trace.Supervisor, []trace.Request, error) {
	sizes := []int{16, 64, 256, 512}
	reqs := make([]trace.Request, 100)
	for i := range reqs {
		reqs[i] = trace.Request{Arrival: float64(i) * 0.01, Size: sizes[i%4]}
	}
	gen0 := func(_ float64, size int) (float64, error) { return float64(size) * 1e-6, nil }
	detect := func(win []trace.WindowEntry) (bool, error) {
		return win[len(win)-1].Time >= 0.2, nil
	}
	retune := func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return func(_ float64, size int) (float64, error) {
			return float64(size) * 1e-6 * factor, nil
		}, nil
	}
	sv, err := trace.NewSupervisor(cfg, gen0, detect, retune)
	return sv, reqs, err
}

// meanSojournByGen averages the served sojourns stamped with each generation.
func meanSojournByGen(rep *trace.Report) map[int]float64 {
	sums := map[int]float64{}
	counts := map[int]int{}
	for i, g := range rep.Generations {
		if !math.IsNaN(rep.Sojourn[i]) {
			sums[g] += rep.Sojourn[i]
			counts[g]++
		}
	}
	for g := range sums {
		sums[g] /= float64(counts[g])
	}
	return sums
}

// The e2e acceptance path of the guarded promotion: a poisoned re-tune (3x
// slower per sample) goes live, the canary window measures it worse than the
// matched pre-swap baseline, the supervisor rolls back to a fresh generation
// reusing the old service, and post-rollback latency returns to the pre-swap
// level — all under exact deterministic replay.
func TestSupervisorCanaryRollbackEndToEnd(t *testing.T) {
	cfg := trace.SupervisorConfig{
		Server:         trace.ServerConfig{Workers: 2},
		Window:         4,
		CheckEvery:     2,
		TuneDuration:   0.03,
		MaxRetunes:     1,
		CanaryWindow:   6,
		RollbackMargin: 0.25,
	}
	run := func() (*trace.Report, *trace.Supervisor) {
		sv, reqs, err := canaryTrace(3, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sv.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return rep, sv
	}
	rep, sv := run()
	m := rep.Metrics

	if len(m.Swaps) != 2 || m.Generation != 2 || m.Rollbacks != 1 {
		t.Fatalf("want poisoned promotion + rollback (2 swaps, generation 2, 1 rollback), got %d swaps generation %d rollbacks %d",
			len(m.Swaps), m.Generation, m.Rollbacks)
	}
	promo, rb := m.Swaps[0], m.Swaps[1]
	if promo.Rollback || promo.Generation != 1 {
		t.Errorf("first swap %+v, want the generation-1 promotion", promo)
	}
	if promo.CanaryMean <= 0 || promo.BaselineMean <= 0 {
		t.Fatalf("canary verdict not recorded: canary %g baseline %g", promo.CanaryMean, promo.BaselineMean)
	}
	// The matched-quartile reweighting compares like sizes with like: the
	// verdict must recover the poisoned generation's exact 3x degradation
	// even though the baseline window's size mix differs from the canary's.
	if ratio := promo.CanaryMean / promo.BaselineMean; math.Abs(ratio-3) > 1e-9 {
		t.Errorf("canary/baseline ratio %g, want exactly the 3x poison", ratio)
	}
	if !rb.Rollback || rb.Generation != 2 || rb.Reinstated != 0 || rb.Worker != -1 {
		t.Errorf("rollback event %+v, want generation 2 reinstating 0 with no worker", rb)
	}
	if rb.TuneDuration != 0 || rb.Detected != rb.Swapped || rb.Start != rb.Swapped {
		t.Errorf("rollback event %+v, want an instantaneous swap (no tune)", rb)
	}
	if rb.Swapped <= promo.Swapped {
		t.Errorf("rollback at %g not after the promotion at %g", rb.Swapped, promo.Swapped)
	}

	// Generation stamps stay monotone and every cohort served traffic: 0
	// before the swap, 1 for the canary cohort, 2 after the rollback.
	counts := map[int]int{}
	for i, g := range rep.Generations {
		if i > 0 && g < rep.Generations[i-1] {
			t.Fatalf("generation stamp regressed at %d: %d -> %d", i, rep.Generations[i-1], g)
		}
		counts[g]++
	}
	if counts[0] == 0 || counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("generation cohorts %v, want all of 0/1/2 populated", counts)
	}
	if counts[1] < cfg.CanaryWindow {
		t.Errorf("canary cohort of %d smaller than the window %d", counts[1], cfg.CanaryWindow)
	}

	// Post-rollback recovery: the mean sojourn on the rollback generation is
	// back within the margin of the pre-swap baseline (identical service, so
	// it matches up to the size-mix difference between cohorts).
	means := meanSojournByGen(rep)
	if diff := math.Abs(means[2]-means[0]) / means[0]; diff > cfg.RollbackMargin {
		t.Errorf("post-rollback mean %g vs pre-swap %g: %.0f%% apart, want within the %g margin",
			means[2], means[0], diff*100, cfg.RollbackMargin)
	}
	if means[1] <= means[0]*2 {
		t.Errorf("poisoned cohort mean %g not measurably worse than baseline %g", means[1], means[0])
	}
	if !eqNaN(rb.PostMean, means[2]) || !eqNaN(rb.PreMean, means[1]) {
		t.Errorf("rollback pre/post means (%g, %g), want (%g, %g)",
			rb.PreMean, rb.PostMean, means[1], means[2])
	}

	// The rollback is published forward: the live set ends on generation 2,
	// having never regressed.
	if g := sv.Live().Current(); g.ID != 2 {
		t.Errorf("live generation %d, want 2 (rollback is a forward swap)", g.ID)
	}
	if snap := sv.Metrics(); snap == nil || snap.Rollbacks != 1 {
		t.Errorf("metrics snapshot missing the rollback: %+v", snap)
	}

	// Exact determinism, rollback timing included: a fresh supervisor over
	// the same inputs reproduces the run bit for bit.
	rep2, _ := run()
	if !reportsEqual(rep, rep2) {
		t.Error("repeated guarded run produced a different report")
	}
	if rep2.Metrics.Swaps[0].CanaryMean != promo.CanaryMean ||
		rep2.Metrics.Swaps[0].BaselineMean != promo.BaselineMean {
		t.Error("canary verdict not deterministic across runs")
	}
}

// A genuinely better re-tune survives its canary: the verdict is recorded,
// no rollback happens, and serving stays on the promoted generation.
func TestSupervisorCanaryConfirmsGoodSwap(t *testing.T) {
	cfg := trace.SupervisorConfig{
		Server:         trace.ServerConfig{Workers: 2},
		Window:         4,
		CheckEvery:     2,
		TuneDuration:   0.03,
		MaxRetunes:     1,
		CanaryWindow:   6,
		RollbackMargin: 0.25,
	}
	sv, reqs, err := canaryTrace(0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if len(m.Swaps) != 1 || m.Generation != 1 || m.Rollbacks != 0 {
		t.Fatalf("want one kept promotion, got %d swaps generation %d rollbacks %d",
			len(m.Swaps), m.Generation, m.Rollbacks)
	}
	s := m.Swaps[0]
	if s.CanaryMean <= 0 || s.BaselineMean <= 0 {
		t.Fatalf("canary verdict not recorded on a kept promotion: %+v", s)
	}
	if ratio := s.CanaryMean / s.BaselineMean; math.Abs(ratio-0.5) > 1e-9 {
		t.Errorf("canary/baseline ratio %g, want the 0.5x improvement", ratio)
	}
	if g := sv.Live().Current(); g.ID != 1 {
		t.Errorf("live generation %d, want the promotion kept at 1", g.ID)
	}
}

// A purely time-bound canary (CanaryWindow 0, CanaryDuration set) closes by
// the virtual clock and still rolls a poisoned promotion back.
func TestSupervisorCanaryDurationCloses(t *testing.T) {
	cfg := trace.SupervisorConfig{
		Server:         trace.ServerConfig{Workers: 2},
		Window:         4,
		CheckEvery:     2,
		TuneDuration:   0.03,
		MaxRetunes:     1,
		CanaryDuration: 0.05,
		RollbackMargin: 0.25,
	}
	sv, reqs, err := canaryTrace(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m.Rollbacks != 1 || len(m.Swaps) != 2 {
		t.Fatalf("time-bound canary missed the poison: %d rollbacks, %d swaps", m.Rollbacks, len(m.Swaps))
	}
	promo, rb := m.Swaps[0], m.Swaps[1]
	if rb.Swapped < promo.Swapped+cfg.CanaryDuration {
		t.Errorf("verdict at %g, before the canary duration elapsed (swap %g + %g)",
			rb.Swapped, promo.Swapped, cfg.CanaryDuration)
	}
}

// A canary window still open when the trace ends reaches no verdict: the
// promotion stands, no rollback happens, and the unevaluated verdict fields
// stay zero.
func TestSupervisorCanaryOpenAtTraceEnd(t *testing.T) {
	cfg := trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 2},
		Window:       4,
		CheckEvery:   2,
		TuneDuration: 0.03,
		MaxRetunes:   1,
		CanaryWindow: 1000, // can never fill on a 100-request trace
	}
	sv, reqs, err := canaryTrace(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if len(m.Swaps) != 1 || m.Rollbacks != 0 {
		t.Fatalf("open canary must not decide: %d swaps, %d rollbacks", len(m.Swaps), m.Rollbacks)
	}
	if s := m.Swaps[0]; s.CanaryMean != 0 || s.BaselineMean != 0 {
		t.Errorf("unclosed canary recorded a verdict: %+v", s)
	}
	if g := sv.Live().Current(); g.ID != 1 {
		t.Errorf("live generation %d, want the promotion still live", g.ID)
	}
}

// Rollback rearms drift control: after the canary reverts a poisoned
// promotion, a later drift check may launch a fresh tune (subject to
// MaxRetunes), and generation ids keep climbing monotonically.
func TestSupervisorRetuneAfterRollback(t *testing.T) {
	cfg := trace.SupervisorConfig{
		Server:         trace.ServerConfig{Workers: 2},
		Window:         4,
		CheckEvery:     2,
		TuneDuration:   0.03,
		MaxRetunes:     2,
		CanaryWindow:   4,
		RollbackMargin: 0.25,
	}
	sizes := []int{16, 64, 256, 512}
	reqs := make([]trace.Request, 120)
	for i := range reqs {
		reqs[i] = trace.Request{Arrival: float64(i) * 0.01, Size: sizes[i%4]}
	}
	gen0 := func(_ float64, size int) (float64, error) { return float64(size) * 1e-6, nil }
	always := func([]trace.WindowEntry) (bool, error) { return true, nil }
	// First tune is poisoned (3x), the second is a real improvement (0.5x).
	tunes := 0
	retune := func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		tunes++
		factor := 3.0
		if tunes > 1 {
			factor = 0.5
		}
		return func(_ float64, size int) (float64, error) {
			return float64(size) * 1e-6 * factor, nil
		}, nil
	}
	sv, err := trace.NewSupervisor(cfg, gen0, always, retune)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if tunes != 2 {
		t.Fatalf("ran %d tunes, want the rollback to leave budget for a second", tunes)
	}
	// Four swaps: poisoned promotion, rollback, good promotion, kept.
	if len(m.Swaps) != 3 || m.Rollbacks != 1 || m.Generation != 3 {
		t.Fatalf("swaps %d rollbacks %d generation %d, want 3/1/3", len(m.Swaps), m.Rollbacks, m.Generation)
	}
	if !m.Swaps[1].Rollback || m.Swaps[0].Rollback || m.Swaps[2].Rollback {
		t.Fatalf("rollback flags off: %+v", m.Swaps)
	}
	if m.Swaps[2].CanaryMean <= 0 || m.Swaps[2].CanaryMean >= m.Swaps[2].BaselineMean {
		t.Errorf("second promotion's canary %+v, want a confirmed improvement", m.Swaps[2])
	}
	for i := 1; i < len(rep.Generations); i++ {
		if rep.Generations[i] < rep.Generations[i-1] {
			t.Fatalf("generation stamp regressed at %d", i)
		}
	}
	if g := sv.Live().Current(); g.ID != 3 {
		t.Errorf("live generation %d, want 3", g.ID)
	}
}

// Concurrent Run calls on one Supervisor are serialized on the shared
// LiveSet: run with -race. Two overlapping runs must produce exactly the
// reports a sequential run produces, observers must never see a generation
// regress, and the live set must end at the sum of both runs' swaps.
func TestSupervisorConcurrentRunsHotSwapUnderLoad(t *testing.T) {
	reqs, err := trace.Generate(300, trace.GeneratorConfig{QPS: 2000, MaxBatch: 512, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	always := func([]trace.WindowEntry) (bool, error) { return true, nil }
	retune := func(gen int, _ []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return constTimed(1e-5 * float64(1+gen%3)), nil
	}
	cfg := trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 2},
		Window:       4,
		CheckEvery:   2,
		TuneDuration: 1e-4,
	}
	// Sequential reference: what any single run over these inputs yields.
	ref, err := trace.NewSupervisor(cfg, constTimed(1e-5), always, retune)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	sv, err := trace.NewSupervisor(cfg, constTimed(1e-5), always, retune)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var obs sync.WaitGroup
	for r := 0; r < 4; r++ {
		obs.Add(1)
		go func() {
			defer obs.Done()
			last := -1
			for {
				select {
				case <-stop:
					return
				default:
				}
				g := sv.Live().Current()
				if g == nil || g.Service == nil {
					t.Error("torn generation observed")
					return
				}
				if g.ID < last {
					t.Errorf("observer saw generation regress: %d after %d", g.ID, last)
					return
				}
				last = g.ID
			}
		}()
	}
	reports := make([]*trace.Report, 2)
	errs := make([]error, 2)
	var runs sync.WaitGroup
	for i := 0; i < 2; i++ {
		runs.Add(1)
		go func(i int) {
			defer runs.Done()
			reports[i], errs[i] = sv.Run(reqs)
		}(i)
	}
	runs.Wait()
	close(stop)
	obs.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !reportsEqual(reports[i], want) {
			t.Errorf("concurrent run %d differs from the sequential reference", i)
		}
	}
	if got, want := sv.Live().Current().ID, 2*want.Metrics.Generation; got != want {
		t.Errorf("live generation %d after two serialized runs, want %d", got, want)
	}
}

// MemoTimedService memoizes errors and is a singleflight under contention:
// the inner measurement runs at most once per (phase, size) even when many
// engine workers ask at once. Run with -race.
func TestMemoTimedServiceErrorSingleflight(t *testing.T) {
	boom := errors.New("simulator exploded")
	var calls int32
	gate := make(chan struct{})
	svc := trace.MemoTimedService(func(float64, int) (float64, error) {
		atomic.AddInt32(&calls, 1)
		<-gate
		return 0, boom
	}, nil)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc(0, 7); !errors.Is(err, boom) {
				t.Errorf("got %v, want the memoized error", err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Errorf("inner called %d times, want 1 (error singleflight)", calls)
	}
	if _, err := svc(123, 7); !errors.Is(err, boom) {
		t.Error("error not memoized on a later call")
	}
}
