// Package trace implements an online-serving substrate around the embedding
// systems: a request-stream generator (Poisson arrivals, serving-sized
// batches, DeepRecSys-style unsplit long-tail requests) and a FIFO
// single-GPU queueing simulator that turns per-batch kernel times into
// end-to-end request latencies with tail percentiles. The paper's §VI-D
// discusses exactly this setting when motivating runtime thread mapping;
// this package lets the repository evaluate it as a served workload rather
// than isolated kernels.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Request is one inference request in the stream.
type Request struct {
	// Arrival is the arrival time in seconds from stream start.
	Arrival float64
	// Size is the batch size (samples).
	Size int
}

// GeneratorConfig shapes the request stream.
type GeneratorConfig struct {
	// QPS is the mean arrival rate (Poisson).
	QPS float64
	// MaxBatch caps normal request sizes (the serving system's split
	// threshold, 512 in the paper).
	MaxBatch int
	// TailProb is the probability a request is an unsplit long-tail batch.
	TailProb float64
	// TailSize is the long-tail batch size (2,560 in the paper).
	TailSize int
	// Seed makes the stream reproducible.
	Seed int64
}

// Validate checks the generator configuration.
func (c *GeneratorConfig) Validate() error {
	switch {
	case c.QPS <= 0:
		return fmt.Errorf("trace: QPS must be positive, got %g", c.QPS)
	case c.MaxBatch <= 0:
		return fmt.Errorf("trace: MaxBatch must be positive, got %d", c.MaxBatch)
	case c.TailProb < 0 || c.TailProb > 1:
		return fmt.Errorf("trace: TailProb %g outside [0,1]", c.TailProb)
	case c.TailProb > 0 && c.TailSize <= 0:
		return fmt.Errorf("trace: TailSize must be positive when TailProb > 0")
	}
	return nil
}

// Generate produces n requests with exponential inter-arrival times and
// serving-sized batches.
func Generate(n int, cfg GeneratorConfig) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: n must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]Request, n)
	now := 0.0
	for i := range reqs {
		now += rng.ExpFloat64() / cfg.QPS
		size := int(rng.NormFloat64()*96 + 256)
		if size < 16 {
			size = 16
		}
		if size > cfg.MaxBatch {
			size = cfg.MaxBatch
		}
		if cfg.TailProb > 0 && rng.Float64() < cfg.TailProb {
			size = cfg.TailSize
		}
		reqs[i] = Request{Arrival: now, Size: size}
	}
	return reqs, nil
}

// ServiceFunc returns the GPU service time of a request of the given size.
type ServiceFunc func(size int) (float64, error)

// Result summarizes one served trace.
type Result struct {
	// Sojourn[i] is request i's end-to-end latency (queueing + service).
	Sojourn []float64
	// P50, P95 and P99 are sojourn percentiles in seconds.
	P50, P95, P99 float64
	// MeanService is the average service time.
	MeanService float64
	// Utilization is busy time over makespan.
	Utilization float64
}

// Serve runs the request stream through a single-GPU FIFO queue.
func Serve(reqs []Request, service ServiceFunc) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request stream")
	}
	res := &Result{Sojourn: make([]float64, len(reqs))}
	free := 0.0
	busy := 0.0
	var totalService float64
	for i, r := range reqs {
		s, err := service(r.Size)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d (size %d): %w", i, r.Size, err)
		}
		if s < 0 {
			return nil, fmt.Errorf("trace: negative service time %g for request %d", s, i)
		}
		start := math.Max(r.Arrival, free)
		free = start + s
		res.Sojourn[i] = free - r.Arrival
		busy += s
		totalService += s
	}
	res.P50 = Percentile(res.Sojourn, 0.50)
	res.P95 = Percentile(res.Sojourn, 0.95)
	res.P99 = Percentile(res.Sojourn, 0.99)
	res.MeanService = totalService / float64(len(reqs))
	makespan := free - reqs[0].Arrival
	if makespan > 0 {
		res.Utilization = busy / makespan
	}
	return res, nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of values by nearest-rank
// on a sorted copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// ServeMultiGPU runs the request stream through k identical GPUs with
// least-loaded dispatch (each request goes to the server that frees up
// first — the standard M/G/k router of inference serving tiers).
func ServeMultiGPU(reqs []Request, k int, service ServiceFunc) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request stream")
	}
	if k <= 0 {
		return nil, fmt.Errorf("trace: need at least one GPU, got %d", k)
	}
	free := make([]float64, k)
	res := &Result{Sojourn: make([]float64, len(reqs))}
	var busy, totalService, makespanEnd float64
	for i, r := range reqs {
		// Least-loaded: the earliest-free server.
		best := 0
		for g := 1; g < k; g++ {
			if free[g] < free[best] {
				best = g
			}
		}
		s, err := service(r.Size)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d (size %d): %w", i, r.Size, err)
		}
		if s < 0 {
			return nil, fmt.Errorf("trace: negative service time %g for request %d", s, i)
		}
		start := math.Max(r.Arrival, free[best])
		free[best] = start + s
		if free[best] > makespanEnd {
			makespanEnd = free[best]
		}
		res.Sojourn[i] = free[best] - r.Arrival
		busy += s
		totalService += s
	}
	res.P50 = Percentile(res.Sojourn, 0.50)
	res.P95 = Percentile(res.Sojourn, 0.95)
	res.P99 = Percentile(res.Sojourn, 0.99)
	res.MeanService = totalService / float64(len(reqs))
	if span := makespanEnd - reqs[0].Arrival; span > 0 {
		res.Utilization = busy / (span * float64(k))
	}
	return res, nil
}

// MemoService caches service times by batch size, so repeated sizes in a
// trace do not re-run the (expensive) kernel simulation.
func MemoService(inner ServiceFunc) ServiceFunc {
	memo := make(map[int]float64)
	return func(size int) (float64, error) {
		if s, ok := memo[size]; ok {
			return s, nil
		}
		s, err := inner(size)
		if err != nil {
			return 0, err
		}
		memo[size] = s
		return s, nil
	}
}
