// Package trace implements an online-serving substrate around the embedding
// systems: a request-stream generator (Poisson arrivals, serving-sized
// batches, DeepRecSys-style unsplit long-tail requests) and a FIFO
// single-GPU queueing simulator that turns per-batch kernel times into
// end-to-end request latencies with tail percentiles. The paper's §VI-D
// discusses exactly this setting when motivating runtime thread mapping;
// this package lets the repository evaluate it as a served workload rather
// than isolated kernels.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Request is one inference request in the stream.
type Request struct {
	// Arrival is the arrival time in seconds from stream start.
	Arrival float64
	// Size is the batch size (samples).
	Size int
	// Deadline is an optional per-request completion deadline in seconds
	// after Arrival. Zero means "use the server's default deadline" (or no
	// deadline at all for the closed-form Serve/ServeMultiGPU replays, which
	// never shed).
	Deadline float64
}

// GeneratorConfig shapes the request stream.
type GeneratorConfig struct {
	// QPS is the mean arrival rate (Poisson).
	QPS float64
	// MaxBatch caps normal request sizes (the serving system's split
	// threshold, 512 in the paper).
	MaxBatch int
	// TailProb is the probability a request is an unsplit long-tail batch.
	TailProb float64
	// TailSize is the long-tail batch size (2,560 in the paper).
	TailSize int
	// Seed makes the stream reproducible.
	Seed int64
}

// MinBatch is the smallest serving batch size the generator emits. Serving
// systems batch at least a warp's worth of samples; the generator floors the
// size distribution here, so MaxBatch below this floor cannot be honored.
const MinBatch = 16

// Validate checks the generator configuration.
func (c *GeneratorConfig) Validate() error {
	switch {
	case c.QPS <= 0:
		return fmt.Errorf("trace: QPS must be positive, got %g", c.QPS)
	case c.MaxBatch <= 0:
		return fmt.Errorf("trace: MaxBatch must be positive, got %d", c.MaxBatch)
	case c.MaxBatch < MinBatch:
		return fmt.Errorf("trace: MaxBatch %d below the generator floor MinBatch=%d", c.MaxBatch, MinBatch)
	case c.TailProb < 0 || c.TailProb > 1:
		return fmt.Errorf("trace: TailProb %g outside [0,1]", c.TailProb)
	case c.TailProb > 0 && c.TailSize <= 0:
		return fmt.Errorf("trace: TailSize must be positive when TailProb > 0")
	}
	return nil
}

// Generate produces n requests with exponential inter-arrival times and
// serving-sized batches.
func Generate(n int, cfg GeneratorConfig) ([]Request, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("trace: n must be positive, got %d", n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	reqs := make([]Request, n)
	now := 0.0
	for i := range reqs {
		now += rng.ExpFloat64() / cfg.QPS
		// Cap before flooring so MaxBatch is always honored; Validate has
		// already rejected MaxBatch < MinBatch, so the floor cannot undo the
		// cap.
		size := int(rng.NormFloat64()*96 + 256)
		if size > cfg.MaxBatch {
			size = cfg.MaxBatch
		}
		if size < MinBatch {
			size = MinBatch
		}
		if cfg.TailProb > 0 && rng.Float64() < cfg.TailProb {
			size = cfg.TailSize
		}
		reqs[i] = Request{Arrival: now, Size: size}
	}
	return reqs, nil
}

// ServiceFunc returns the GPU service time of a request of the given size.
type ServiceFunc func(size int) (float64, error)

// arrivalOrder returns reqs sorted by arrival time together with a mapping
// from sorted position to original index, so results can be reported in the
// caller's order. FIFO queueing math silently produces negative waits on
// out-of-order input, so every serve entry point normalizes through here.
// When the input is already sorted (the common case — Generate emits
// monotone arrivals) the input slice itself and a nil mapping are returned
// and no allocation happens. The sort is stable: simultaneous arrivals keep
// their input order.
func arrivalOrder(reqs []Request) ([]Request, []int) {
	sorted := true
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			sorted = false
			break
		}
	}
	if sorted {
		return reqs, nil
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Arrival < reqs[order[b]].Arrival
	})
	out := make([]Request, len(reqs))
	for pos, idx := range order {
		out[pos] = reqs[idx]
	}
	return out, order
}

// originalIndex maps a sorted position back to the caller's index.
func originalIndex(order []int, pos int) int {
	if order == nil {
		return pos
	}
	return order[pos]
}

// Result summarizes one served trace.
type Result struct {
	// Sojourn[i] is request i's end-to-end latency (queueing + service).
	Sojourn []float64
	// Served is the number of completed requests the percentiles are computed
	// over. When it is 0 (everything shed), P50/P95/P99 are clamped to 0
	// rather than NaN; check Served to tell "no data" from a real zero.
	Served int
	// P50, P95 and P99 are sojourn percentiles in seconds over served
	// requests.
	P50, P95, P99 float64
	// MeanService is the average service time.
	MeanService float64
	// Utilization is busy time over makespan.
	Utilization float64
}

// Serve runs the request stream through a single-GPU FIFO queue. Requests
// are served in arrival order; out-of-order input is sorted on entry (stable,
// without mutating the caller's slice) and Sojourn stays aligned with the
// caller's indices.
func Serve(reqs []Request, service ServiceFunc) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request stream")
	}
	reqs, order := arrivalOrder(reqs)
	res := &Result{Sojourn: make([]float64, len(reqs))}
	free := 0.0
	busy := 0.0
	var totalService float64
	for i, r := range reqs {
		s, err := service(r.Size)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d (size %d): %w", i, r.Size, err)
		}
		if s < 0 {
			return nil, fmt.Errorf("trace: negative service time %g for request %d", s, i)
		}
		start := math.Max(r.Arrival, free)
		free = start + s
		res.Sojourn[originalIndex(order, i)] = free - r.Arrival
		busy += s
		totalService += s
	}
	var q Quantiler
	res.Served = len(reqs)
	res.P50, res.P95, res.P99 = q.P50P95P99(res.Sojourn)
	res.MeanService = totalService / float64(len(reqs))
	makespan := free - reqs[0].Arrival
	if makespan > 0 {
		res.Utilization = busy / makespan
	}
	return res, nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of values by nearest-rank
// on a sorted copy. An empty sample yields 0, not NaN, matching
// Quantiler.P50P95P99 — NaN here used to leak into Metrics.String and JSON
// reports (where NaN is unencodable) whenever a trace shed everything.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// ServeMultiGPU runs the request stream through k identical GPUs with
// least-loaded dispatch (each request goes to the server that frees up
// first — the standard M/G/k router of inference serving tiers). Like Serve
// it normalizes out-of-order input through arrivalOrder.
func ServeMultiGPU(reqs []Request, k int, service ServiceFunc) (*Result, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request stream")
	}
	if k <= 0 {
		return nil, fmt.Errorf("trace: need at least one GPU, got %d", k)
	}
	reqs, order := arrivalOrder(reqs)
	free := make([]float64, k)
	res := &Result{Sojourn: make([]float64, len(reqs))}
	var busy, totalService, makespanEnd float64
	for i, r := range reqs {
		// Least-loaded: the earliest-free server.
		best := 0
		for g := 1; g < k; g++ {
			if free[g] < free[best] {
				best = g
			}
		}
		s, err := service(r.Size)
		if err != nil {
			return nil, fmt.Errorf("trace: request %d (size %d): %w", i, r.Size, err)
		}
		if s < 0 {
			return nil, fmt.Errorf("trace: negative service time %g for request %d", s, i)
		}
		start := math.Max(r.Arrival, free[best])
		free[best] = start + s
		if free[best] > makespanEnd {
			makespanEnd = free[best]
		}
		res.Sojourn[originalIndex(order, i)] = free[best] - r.Arrival
		busy += s
		totalService += s
	}
	var q Quantiler
	res.Served = len(reqs)
	res.P50, res.P95, res.P99 = q.P50P95P99(res.Sojourn)
	res.MeanService = totalService / float64(len(reqs))
	if span := makespanEnd - reqs[0].Arrival; span > 0 {
		res.Utilization = busy / (span * float64(k))
	}
	return res, nil
}

// MemoService caches service times by batch size, so repeated sizes in a
// trace do not re-run the (expensive) kernel simulation. The returned
// ServiceFunc is safe for concurrent use from the Server's worker pool:
// lookups are guarded by a mutex and each size's inner simulation runs at
// most once (singleflight), with concurrent callers for that size blocking
// on its completion. Distinct sizes simulate in parallel. Errors are
// memoized alongside successes — a failing kernel simulation is
// deterministic here, so retrying it would only repeat the failure.
func MemoService(inner ServiceFunc) ServiceFunc {
	type entry struct {
		once sync.Once
		s    float64
		err  error
	}
	var mu sync.Mutex
	memo := make(map[int]*entry)
	return func(size int) (float64, error) {
		mu.Lock()
		e := memo[size]
		if e == nil {
			e = &entry{}
			memo[size] = e
		}
		mu.Unlock()
		e.once.Do(func() { e.s, e.err = inner(size) })
		return e.s, e.err
	}
}
