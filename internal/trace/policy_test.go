package trace

import (
	"math"
	"strings"
	"testing"
)

// TestQueuePolicyValidate covers every rejection path of the shared
// queue-policy validation, plus the accepting boundary cases, so neither
// ServerConfig nor the fleet configuration can drift away from the contract.
func TestQueuePolicyValidate(t *testing.T) {
	cases := []struct {
		name    string
		p       QueuePolicy
		wantErr string // "" = accept
	}{
		{"zero value", QueuePolicy{}, ""},
		{"all set", QueuePolicy{Workers: 4, QueueDepth: 64, Deadline: 1.5, Policy: DegradeShed, SplitCap: 512}, ""},
		{"negative workers", QueuePolicy{Workers: -1}, "Workers"},
		{"negative queue depth", QueuePolicy{QueueDepth: -2}, "QueueDepth"},
		{"negative deadline", QueuePolicy{Deadline: -0.5}, "Deadline"},
		{"negative split cap", QueuePolicy{SplitCap: -3}, "SplitCap"},
		{"policy below range", QueuePolicy{Policy: DegradePolicy(-1)}, "unknown policy"},
		{"policy above range", QueuePolicy{Policy: DegradeShed + 1}, "unknown policy"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// ServerConfig validation must reject exactly what the shared queue policy
// rejects, plus its own histogram shape checks.
func TestServerConfigValidateDelegates(t *testing.T) {
	bad := []struct {
		name string
		cfg  ServerConfig
		want string
	}{
		{"queue policy", ServerConfig{Workers: -1}, "Workers"},
		{"negative hist", ServerConfig{HistMin: -1}, "histogram"},
		{"negative buckets", ServerConfig{HistBuckets: -1}, "histogram"},
		{"inverted hist bounds", ServerConfig{HistMin: 2, HistMax: 1}, "HistMax"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	// Regression: shapes that are only inverted after zero-value defaults
	// resolve (HistMax=0 -> 10, HistMin=0 -> 1e-6) used to pass Validate and
	// then panic inside NewHistogram mid-Serve. Validate must apply the same
	// resolution histogram() does and reject them up front.
	afterDefaults := []struct {
		name string
		cfg  ServerConfig
	}{
		{"min above defaulted max", ServerConfig{HistMin: 20}},          // max defaults to 10
		{"max below defaulted min", ServerConfig{HistMax: 1e-9}},        // min defaults to 1e-6
		{"min equals defaulted max", ServerConfig{HistMin: 10}},         // max <= min after defaults
		{"explicit equal bounds", ServerConfig{HistMin: 5, HistMax: 5}}, // no defaults involved
	}
	for _, tc := range afterDefaults {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil || !strings.Contains(err.Error(), "HistMax") {
				t.Fatalf("Validate() = %v, want histogram-shape error", err)
			}
			// NewServer must surface the same error instead of deferring the
			// blow-up to the first Serve.
			if _, err := NewServer(tc.cfg, func(size int) (float64, error) { return 1e-3, nil }); err == nil {
				t.Fatalf("NewServer accepted a histogram shape that panics at Serve time")
			}
		})
	}

	good := ServerConfig{Workers: 2, QueueDepth: 8, Deadline: 1, SplitCap: 512, HistMin: 1e-6, HistMax: 1, HistBuckets: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
	q := good.Queue()
	if q.Workers != 2 || q.QueueDepth != 8 || q.Deadline != 1 || q.SplitCap != 512 || q.Policy != DegradeSplitTail {
		t.Fatalf("Queue() = %+v, does not mirror the server config", q)
	}
}

func TestQueuePolicyEffectiveWorkers(t *testing.T) {
	p := QueuePolicy{}
	if got := p.EffectiveWorkers(); got != 1 {
		t.Fatalf("EffectiveWorkers() = %d, want 1 for the zero value", got)
	}
	p.Workers = 5
	if got := p.EffectiveWorkers(); got != 5 {
		t.Fatalf("EffectiveWorkers() = %d, want 5", got)
	}
}

func TestQueuePolicyDeadlineFor(t *testing.T) {
	p := QueuePolicy{Deadline: 2}
	if got := p.DeadlineFor(Request{Arrival: 1}); got != 3 {
		t.Fatalf("default deadline: got %g, want 3", got)
	}
	if got := p.DeadlineFor(Request{Arrival: 1, Deadline: 0.5}); got != 1.5 {
		t.Fatalf("per-request deadline: got %g, want 1.5", got)
	}
	none := QueuePolicy{}
	if got := none.DeadlineFor(Request{Arrival: 1}); !math.IsInf(got, 1) {
		t.Fatalf("no deadline: got %g, want +Inf", got)
	}
}

func TestParseDegradePolicy(t *testing.T) {
	for s, want := range map[string]DegradePolicy{
		"split-tail": DegradeSplitTail, "split": DegradeSplitTail,
		"serve-all": DegradeServe, "serve": DegradeServe,
		"shed": DegradeShed,
	} {
		got, err := ParseDegradePolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseDegradePolicy(%q) = %v, %v; want %v", s, got, err, want)
		}
		if back, err := ParseDegradePolicy(got.String()); err != nil || back != got {
			t.Fatalf("round-trip of %v through String failed: %v, %v", got, back, err)
		}
	}
	if _, err := ParseDegradePolicy("bogus"); err == nil {
		t.Fatal("ParseDegradePolicy(bogus) accepted")
	}
}
