package trace

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

func TestGenerateShape(t *testing.T) {
	cfg := GeneratorConfig{QPS: 100, MaxBatch: 512, TailProb: 0.05, TailSize: 2560, Seed: 1}
	reqs, err := Generate(5000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5000 {
		t.Fatalf("%d requests", len(reqs))
	}
	tails := 0
	prev := 0.0
	for i, r := range reqs {
		if r.Arrival < prev {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		prev = r.Arrival
		if r.Size == 2560 {
			tails++
		} else if r.Size < 16 || r.Size > 512 {
			t.Fatalf("request %d size %d outside [16,512]", i, r.Size)
		}
	}
	// Empirical arrival rate ~ QPS.
	rate := float64(len(reqs)) / reqs[len(reqs)-1].Arrival
	if math.Abs(rate-100)/100 > 0.1 {
		t.Errorf("empirical rate %.1f, want ~100", rate)
	}
	// Tail probability ~ 5%.
	frac := float64(tails) / float64(len(reqs))
	if math.Abs(frac-0.05) > 0.02 {
		t.Errorf("tail fraction %.3f, want ~0.05", frac)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []GeneratorConfig{
		{QPS: 0, MaxBatch: 512},
		{QPS: 10, MaxBatch: 0},
		{QPS: 10, MaxBatch: 512, TailProb: 2},
		{QPS: 10, MaxBatch: 512, TailProb: 0.1, TailSize: 0},
	}
	for i, cfg := range bad {
		if _, err := Generate(10, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Generate(0, GeneratorConfig{QPS: 10, MaxBatch: 512}); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestServeQueueingMath(t *testing.T) {
	// Two requests, fixed 1s service, back-to-back arrivals: the second
	// waits for the first.
	reqs := []Request{{Arrival: 0, Size: 1}, {Arrival: 0.5, Size: 1}}
	res, err := Serve(reqs, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sojourn[0]-1) > 1e-12 {
		t.Errorf("first sojourn %g, want 1", res.Sojourn[0])
	}
	if math.Abs(res.Sojourn[1]-1.5) > 1e-12 {
		t.Errorf("second sojourn %g, want 1.5 (0.5 queueing + 1 service)", res.Sojourn[1])
	}
	if math.Abs(res.Utilization-1) > 1e-12 {
		t.Errorf("utilization %g, want 1 (no idle)", res.Utilization)
	}
	if res.MeanService != 1 {
		t.Errorf("mean service %g", res.MeanService)
	}
}

func TestServeErrors(t *testing.T) {
	if _, err := Serve(nil, func(int) (float64, error) { return 1, nil }); err == nil {
		t.Error("empty stream accepted")
	}
	reqs := []Request{{Arrival: 0, Size: 1}}
	if _, err := Serve(reqs, func(int) (float64, error) { return -1, nil }); err == nil {
		t.Error("negative service accepted")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := Percentile(vals, 0.5); got != 3 {
		t.Errorf("p50 = %g, want 3", got)
	}
	if got := Percentile(vals, 1); got != 5 {
		t.Errorf("p100 = %g, want 5", got)
	}
	if got := Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile should be NaN")
	}
	// Input must remain unsorted (copy semantics).
	if vals[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestServeMultiGPUQueueingMath(t *testing.T) {
	// Three simultaneous 1s requests on 2 GPUs: two start immediately, the
	// third queues behind one of them.
	reqs := []Request{{Arrival: 0, Size: 1}, {Arrival: 0, Size: 1}, {Arrival: 0, Size: 1}}
	res, err := ServeMultiGPU(reqs, 2, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Sojourn[0] != 1 || res.Sojourn[1] != 1 || res.Sojourn[2] != 2 {
		t.Errorf("sojourns = %v, want [1 1 2]", res.Sojourn)
	}
	// Busy 3s over a 2s makespan x 2 GPUs = 75%.
	if math.Abs(res.Utilization-0.75) > 1e-12 {
		t.Errorf("utilization %g, want 0.75", res.Utilization)
	}
}

// More GPUs must never worsen any request's latency under least-loaded FIFO
// dispatch with identical service times.
func TestServeMultiGPUScalesDown(t *testing.T) {
	reqs, err := Generate(400, GeneratorConfig{QPS: 500, MaxBatch: 512, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	service := func(size int) (float64, error) { return float64(size) * 1e-5, nil }
	one, err := ServeMultiGPU(reqs, 1, service)
	if err != nil {
		t.Fatal(err)
	}
	four, err := ServeMultiGPU(reqs, 4, service)
	if err != nil {
		t.Fatal(err)
	}
	if four.P99 > one.P99 {
		t.Errorf("4 GPUs p99 (%g) worse than 1 GPU (%g)", four.P99, one.P99)
	}
	single, err := Serve(reqs, service)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.P99-one.P99) > 1e-12 {
		t.Errorf("ServeMultiGPU(1) != Serve: %g vs %g", one.P99, single.P99)
	}
	if _, err := ServeMultiGPU(reqs, 0, service); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := ServeMultiGPU(nil, 2, service); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestMemoService(t *testing.T) {
	calls := 0
	svc := MemoService(func(size int) (float64, error) {
		calls++
		return float64(size), nil
	})
	for i := 0; i < 5; i++ {
		if s, _ := svc(128); s != 128 {
			t.Fatal("memo returned wrong value")
		}
	}
	if _, err := svc(256); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("inner called %d times, want 2", calls)
	}
}

// Integration: serve a trace through a tuned RecFlex instance; long-tail
// requests must dominate the p99 while p50 stays near the typical service
// time.
func TestServeTunedSystem(t *testing.T) {
	dev := gpusim.V100()
	mcfg := datasynth.Scaled(datasynth.ModelB(), 40)
	features := experiments.Features(mcfg)
	rng := rand.New(rand.NewSource(3))
	var hist []*embedding.Batch
	for i := 0; i < 2; i++ {
		b, err := datasynth.GenerateBatch(mcfg, 256, rng)
		if err != nil {
			t.Fatal(err)
		}
		hist = append(hist, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(hist, tuner.Options{Occupancies: []int{2, 4, 8}, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	service := MemoService(func(size int) (float64, error) {
		// Quantize sizes so the memo keeps the test fast; the queueing
		// behaviour under test is unaffected.
		size = (size + 63) / 64 * 64
		b, err := datasynth.GenerateBatch(mcfg, size, rng)
		if err != nil {
			return 0, err
		}
		return rf.Measure(dev, features, b)
	})
	reqs, err := Generate(120, GeneratorConfig{QPS: 2000, MaxBatch: 512, TailProb: 0.03, TailSize: 2560, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Serve(reqs, service)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 > 0 && res.P95 >= res.P50 && res.P99 >= res.P95) {
		t.Errorf("percentiles not ordered: %g %g %g", res.P50, res.P95, res.P99)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %g", res.Utilization)
	}
}
