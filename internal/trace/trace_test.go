// External test package: internal/core imports trace for its serving entry
// point, so these tests (which drive a tuned core.RecFlex through the trace
// layer) must live outside package trace to avoid an import cycle.
package trace_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func TestGenerateShape(t *testing.T) {
	cfg := trace.GeneratorConfig{QPS: 100, MaxBatch: 512, TailProb: 0.05, TailSize: 2560, Seed: 1}
	reqs, err := trace.Generate(5000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 5000 {
		t.Fatalf("%d requests", len(reqs))
	}
	tails := 0
	prev := 0.0
	for i, r := range reqs {
		if r.Arrival < prev {
			t.Fatalf("arrivals not monotone at %d", i)
		}
		prev = r.Arrival
		if r.Size == 2560 {
			tails++
		} else if r.Size < 16 || r.Size > 512 {
			t.Fatalf("request %d size %d outside [16,512]", i, r.Size)
		}
	}
	// Empirical arrival rate ~ QPS.
	rate := float64(len(reqs)) / reqs[len(reqs)-1].Arrival
	if math.Abs(rate-100)/100 > 0.1 {
		t.Errorf("empirical rate %.1f, want ~100", rate)
	}
	// Tail probability ~ 5%.
	frac := float64(tails) / float64(len(reqs))
	if math.Abs(frac-0.05) > 0.02 {
		t.Errorf("tail fraction %.3f, want ~0.05", frac)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []trace.GeneratorConfig{
		{QPS: 0, MaxBatch: 512},
		{QPS: 10, MaxBatch: 0},
		{QPS: 10, MaxBatch: 512, TailProb: 2},
		{QPS: 10, MaxBatch: 512, TailProb: 0.1, TailSize: 0},
		// MaxBatch below the generator's MinBatch floor cannot be honored
		// (the floor used to silently override the cap).
		{QPS: 10, MaxBatch: trace.MinBatch - 1},
	}
	for i, cfg := range bad {
		if _, err := trace.Generate(10, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := trace.Generate(0, trace.GeneratorConfig{QPS: 10, MaxBatch: 512}); err == nil {
		t.Error("n=0 accepted")
	}
}

// A MaxBatch at the floor must be honored exactly: every request is clamped
// to precisely MinBatch, not left above the cap.
func TestGenerateHonorsMaxBatchAtFloor(t *testing.T) {
	reqs, err := trace.Generate(500, trace.GeneratorConfig{QPS: 100, MaxBatch: trace.MinBatch, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if r.Size != trace.MinBatch {
			t.Fatalf("request %d size %d, want exactly %d", i, r.Size, trace.MinBatch)
		}
	}
}

func TestServeQueueingMath(t *testing.T) {
	// Two requests, fixed 1s service, back-to-back arrivals: the second
	// waits for the first.
	reqs := []trace.Request{{Arrival: 0, Size: 1}, {Arrival: 0.5, Size: 1}}
	res, err := trace.Serve(reqs, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Sojourn[0]-1) > 1e-12 {
		t.Errorf("first sojourn %g, want 1", res.Sojourn[0])
	}
	if math.Abs(res.Sojourn[1]-1.5) > 1e-12 {
		t.Errorf("second sojourn %g, want 1.5 (0.5 queueing + 1 service)", res.Sojourn[1])
	}
	if math.Abs(res.Utilization-1) > 1e-12 {
		t.Errorf("utilization %g, want 1 (no idle)", res.Utilization)
	}
	if res.MeanService != 1 {
		t.Errorf("mean service %g", res.MeanService)
	}
}

// Out-of-order input must be served in arrival order (no negative queueing
// math), without mutating the caller's slice, and with sojourns reported at
// the caller's indices.
func TestServeUnsortedInput(t *testing.T) {
	sorted, err := trace.Generate(200, trace.GeneratorConfig{QPS: 800, MaxBatch: 512, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	service := func(size int) (float64, error) { return float64(size) * 2e-5, nil }
	want, err := trace.Serve(sorted, service)
	if err != nil {
		t.Fatal(err)
	}

	shuffled := append([]trace.Request(nil), sorted...)
	rand.New(rand.NewSource(1)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	backup := append([]trace.Request(nil), shuffled...)
	got, err := trace.Serve(shuffled, service)
	if err != nil {
		t.Fatal(err)
	}
	for i := range shuffled {
		if shuffled[i] != backup[i] {
			t.Fatal("Serve mutated its input slice")
		}
	}
	// Same request (identified by arrival; arrivals are distinct almost
	// surely) must see the same sojourn regardless of input order.
	byArrival := make(map[float64]float64, len(sorted))
	for i, r := range sorted {
		byArrival[r.Arrival] = want.Sojourn[i]
	}
	for i, r := range shuffled {
		if w := byArrival[r.Arrival]; math.Abs(got.Sojourn[i]-w) > 1e-15 {
			t.Fatalf("request at %g: sojourn %g via shuffled input, want %g", r.Arrival, got.Sojourn[i], w)
		}
		if got.Sojourn[i] < 0 {
			t.Fatalf("negative sojourn %g at %d", got.Sojourn[i], i)
		}
	}
	if math.Abs(got.P99-want.P99) > 1e-15 {
		t.Errorf("p99 differs: %g vs %g", got.P99, want.P99)
	}

	multi, err := trace.ServeMultiGPU(shuffled, 2, service)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range multi.Sojourn {
		if v < 0 {
			t.Fatalf("ServeMultiGPU negative sojourn %g at %d", v, i)
		}
	}
}

func TestServeErrors(t *testing.T) {
	if _, err := trace.Serve(nil, func(int) (float64, error) { return 1, nil }); err == nil {
		t.Error("empty stream accepted")
	}
	reqs := []trace.Request{{Arrival: 0, Size: 1}}
	if _, err := trace.Serve(reqs, func(int) (float64, error) { return -1, nil }); err == nil {
		t.Error("negative service accepted")
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 3, 2, 4}
	if got := trace.Percentile(vals, 0.5); got != 3 {
		t.Errorf("p50 = %g, want 3", got)
	}
	if got := trace.Percentile(vals, 1); got != 5 {
		t.Errorf("p100 = %g, want 5", got)
	}
	if got := trace.Percentile(vals, 0); got != 1 {
		t.Errorf("p0 = %g, want 1", got)
	}
	// Regression: an empty sample used to return NaN, which leaked into
	// Metrics.String and JSON reports whenever a trace shed every request.
	if got := trace.Percentile(nil, 0.5); got != 0 {
		t.Errorf("empty percentile = %g, want 0 (NaN must not leak into reports)", got)
	}
	// Input must remain unsorted (copy semantics).
	if vals[0] != 5 {
		t.Error("Percentile mutated its input")
	}
}

func TestServeMultiGPUQueueingMath(t *testing.T) {
	// Three simultaneous 1s requests on 2 GPUs: two start immediately, the
	// third queues behind one of them.
	reqs := []trace.Request{{Arrival: 0, Size: 1}, {Arrival: 0, Size: 1}, {Arrival: 0, Size: 1}}
	res, err := trace.ServeMultiGPU(reqs, 2, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if res.Sojourn[0] != 1 || res.Sojourn[1] != 1 || res.Sojourn[2] != 2 {
		t.Errorf("sojourns = %v, want [1 1 2]", res.Sojourn)
	}
	// Busy 3s over a 2s makespan x 2 GPUs = 75%.
	if math.Abs(res.Utilization-0.75) > 1e-12 {
		t.Errorf("utilization %g, want 0.75", res.Utilization)
	}
}

// More GPUs must never worsen any request's latency under least-loaded FIFO
// dispatch with identical service times.
func TestServeMultiGPUScalesDown(t *testing.T) {
	reqs, err := trace.Generate(400, trace.GeneratorConfig{QPS: 500, MaxBatch: 512, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	service := func(size int) (float64, error) { return float64(size) * 1e-5, nil }
	one, err := trace.ServeMultiGPU(reqs, 1, service)
	if err != nil {
		t.Fatal(err)
	}
	four, err := trace.ServeMultiGPU(reqs, 4, service)
	if err != nil {
		t.Fatal(err)
	}
	if four.P99 > one.P99 {
		t.Errorf("4 GPUs p99 (%g) worse than 1 GPU (%g)", four.P99, one.P99)
	}
	single, err := trace.Serve(reqs, service)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(single.P99-one.P99) > 1e-12 {
		t.Errorf("ServeMultiGPU(1) != Serve: %g vs %g", one.P99, single.P99)
	}
	if _, err := trace.ServeMultiGPU(reqs, 0, service); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := trace.ServeMultiGPU(nil, 2, service); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestMemoService(t *testing.T) {
	calls := 0
	svc := trace.MemoService(func(size int) (float64, error) {
		calls++
		return float64(size), nil
	})
	for i := 0; i < 5; i++ {
		if s, _ := svc(128); s != 128 {
			t.Fatal("memo returned wrong value")
		}
	}
	if _, err := svc(256); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("inner called %d times, want 2", calls)
	}
}

// MemoService must be safe for concurrent use (the concurrent server's
// worker pool shares one memo) and must run the inner simulation at most
// once per size even under contention. Run with -race.
func TestMemoServiceConcurrent(t *testing.T) {
	var calls [8]int64
	svc := trace.MemoService(func(size int) (float64, error) {
		atomic.AddInt64(&calls[size], 1)
		return float64(size) * 3, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				size := (g + i) % len(calls)
				s, err := svc(size)
				if err != nil {
					t.Error(err)
					return
				}
				if s != float64(size)*3 {
					t.Errorf("size %d: got %g", size, s)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for size, c := range calls {
		if c != 1 {
			t.Errorf("inner called %d times for size %d, want 1 (singleflight)", c, size)
		}
	}
}

// MemoService is a singleflight for failures too: when the underlying
// simulation errors, concurrent callers of the same size all receive that
// one memoized error and the inner function still runs exactly once — a
// failing size must not be retried by every engine worker in turn. Run with
// -race.
func TestMemoServiceErrorSingleflight(t *testing.T) {
	wantErr := fmt.Errorf("simulator exploded")
	var calls int64
	gate := make(chan struct{})
	svc := trace.MemoService(func(size int) (float64, error) {
		atomic.AddInt64(&calls, 1)
		<-gate // hold every contender at the decision point
		if size == 13 {
			return 0, wantErr
		}
		return float64(size), nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			size := 13
			if g%3 == 0 {
				size = 64
			}
			s, err := svc(size)
			if size == 13 {
				if !errors.Is(err, wantErr) {
					t.Errorf("size 13: got (%g, %v), want the memoized error", s, err)
				}
			} else if err != nil || s != 64 {
				t.Errorf("size 64: got (%g, %v)", s, err)
			}
		}(g)
	}
	close(gate)
	wg.Wait()
	if calls != 2 {
		t.Errorf("inner ran %d times, want 2 (one per size, errors included)", calls)
	}
	if _, err := svc(13); !errors.Is(err, wantErr) {
		t.Error("error not memoized on a later sequential call")
	}
}

// Integration: serve a trace through a tuned RecFlex instance; long-tail
// requests must dominate the p99 while p50 stays near the typical service
// time.
func TestServeTunedSystem(t *testing.T) {
	dev := gpusim.V100()
	mcfg := datasynth.Scaled(datasynth.ModelB(), 40)
	features := experiments.Features(mcfg)
	rng := rand.New(rand.NewSource(3))
	var hist []*embedding.Batch
	for i := 0; i < 2; i++ {
		b, err := datasynth.GenerateBatch(mcfg, 256, rng)
		if err != nil {
			t.Fatal(err)
		}
		hist = append(hist, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(hist, tuner.Options{Occupancies: []int{2, 4, 8}, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	service := trace.MemoService(func(size int) (float64, error) {
		// Quantize sizes so the memo keeps the test fast; the queueing
		// behaviour under test is unaffected.
		size = (size + 63) / 64 * 64
		b, err := datasynth.BatchForSize(mcfg, size)
		if err != nil {
			return 0, err
		}
		return rf.Measure(dev, features, b)
	})
	reqs, err := trace.Generate(120, trace.GeneratorConfig{QPS: 2000, MaxBatch: 512, TailProb: 0.03, TailSize: 2560, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Serve(reqs, service)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50 > 0 && res.P95 >= res.P50 && res.P99 >= res.P95) {
		t.Errorf("percentiles not ordered: %g %g %g", res.P50, res.P95, res.P99)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Errorf("utilization %g", res.Utilization)
	}
}
