package trace_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// Property: with deadlines off, the concurrent engine's virtual-clock replay
// is not merely close to the closed-form models — it IS them. Across
// randomized traces (rate, tail mix, seed) and worker counts, every sojourn,
// percentile and utilization figure must match trace.Serve (k=1) and
// trace.ServeMultiGPU (k>1) with exact float equality: the engine performs
// the same sequence of floating-point operations, so any drift is a real
// queueing-logic divergence, not rounding.
func TestServerReplayEqualsClosedFormProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed * 1009))
		n := 100 + rng.Intn(400)
		reqs, err := trace.Generate(n, trace.GeneratorConfig{
			QPS:      300 + rng.Float64()*5000,
			MaxBatch: 512,
			TailProb: rng.Float64() * 0.15,
			TailSize: 2560,
			Seed:     seed * 7717,
		})
		if err != nil {
			t.Fatal(err)
		}
		perSample := 1e-6 * (1 + rng.Float64()*80)
		service := sizeService(perSample)
		k := 1 + rng.Intn(4)

		var wantSoj []float64
		var wantUtil float64
		if k == 1 {
			want, err := trace.Serve(reqs, service)
			if err != nil {
				t.Fatal(err)
			}
			wantSoj, wantUtil = want.Sojourn, want.Utilization
		} else {
			want, err := trace.ServeMultiGPU(reqs, k, service)
			if err != nil {
				t.Fatal(err)
			}
			wantSoj, wantUtil = want.Sojourn, want.Utilization
		}

		srv, err := trace.NewServer(trace.ServerConfig{Workers: k}, service)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if rep.Sojourn[i] != wantSoj[i] {
				t.Fatalf("seed %d k=%d: sojourn %d: engine %g, closed-form %g",
					seed, k, i, rep.Sojourn[i], wantSoj[i])
			}
			if rep.Outcomes[i] != trace.OutcomeServed {
				t.Fatalf("seed %d k=%d: request %d outcome %v, want served (deadlines are off)",
					seed, k, i, rep.Outcomes[i])
			}
			if rep.Generations[i] != 0 {
				t.Fatalf("seed %d k=%d: request %d stamped generation %d on a plain server",
					seed, k, i, rep.Generations[i])
			}
		}
		if math.Abs(rep.Utilization-wantUtil) > 1e-12 {
			t.Errorf("seed %d k=%d: utilization %g vs %g", seed, k, rep.Utilization, wantUtil)
		}
		m := rep.Metrics
		if m.Served != n || m.Shed() != 0 || m.Timeouts != 0 {
			t.Errorf("seed %d k=%d: counters off: %s", seed, k, m)
		}
		if m.Generation != 0 || len(m.Swaps) != 0 || m.TuneBusy != 0 {
			t.Errorf("seed %d k=%d: plain server reports swap state: gen=%d swaps=%d tuneBusy=%g",
				seed, k, m.Generation, len(m.Swaps), m.TuneBusy)
		}
	}
}

// eqFloat treats NaN == NaN (shed requests carry NaN sojourns).
func eqFloat(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// requireReportsIdentical asserts two reports of the same stream are
// bit-identical: every per-request figure, every aggregate, every
// observability series. Used to pin that replay scratch reuse (the pooled
// queue, split slab, percentile scratch and histogram) never leaks state
// between runs.
func requireReportsIdentical(t *testing.T, label string, got, want *trace.Report) {
	t.Helper()
	if len(got.Sojourn) != len(want.Sojourn) {
		t.Fatalf("%s: sojourn lengths %d vs %d", label, len(got.Sojourn), len(want.Sojourn))
	}
	for i := range want.Sojourn {
		if !eqFloat(got.Sojourn[i], want.Sojourn[i]) {
			t.Fatalf("%s: sojourn[%d] = %x, want %x", label, i, got.Sojourn[i], want.Sojourn[i])
		}
		if got.Outcomes[i] != want.Outcomes[i] {
			t.Fatalf("%s: outcome[%d] = %v, want %v", label, i, got.Outcomes[i], want.Outcomes[i])
		}
		if got.Generations[i] != want.Generations[i] {
			t.Fatalf("%s: generation[%d] = %d, want %d", label, i, got.Generations[i], want.Generations[i])
		}
	}
	if !eqFloat(got.P50, want.P50) || !eqFloat(got.P95, want.P95) || !eqFloat(got.P99, want.P99) {
		t.Errorf("%s: percentiles (%x, %x, %x), want (%x, %x, %x)",
			label, got.P50, got.P95, got.P99, want.P50, want.P95, want.P99)
	}
	if !eqFloat(got.MeanService, want.MeanService) || !eqFloat(got.Utilization, want.Utilization) {
		t.Errorf("%s: mean/util (%x, %x), want (%x, %x)",
			label, got.MeanService, got.Utilization, want.MeanService, want.Utilization)
	}
	gm, wm := got.Metrics, want.Metrics
	type counters struct {
		served, split, timeouts, dsheds, qsheds, maxDepth int
	}
	gc := counters{gm.Served, gm.SplitServed, gm.Timeouts, gm.DeadlineSheds, gm.QueueSheds, gm.MaxQueueDepth}
	wc := counters{wm.Served, wm.SplitServed, wm.Timeouts, wm.DeadlineSheds, wm.QueueSheds, wm.MaxQueueDepth}
	if gc != wc {
		t.Errorf("%s: counters %+v, want %+v", label, gc, wc)
	}
	if gm.Makespan != wm.Makespan {
		t.Errorf("%s: makespan %x, want %x", label, gm.Makespan, wm.Makespan)
	}
	if len(gm.Workers) != len(wm.Workers) {
		t.Fatalf("%s: %d workers, want %d", label, len(gm.Workers), len(wm.Workers))
	}
	for w := range wm.Workers {
		if gm.Workers[w] != wm.Workers[w] {
			t.Errorf("%s: worker %d stats %+v, want %+v", label, w, gm.Workers[w], wm.Workers[w])
		}
	}
	if len(gm.QueueDepth) != len(wm.QueueDepth) {
		t.Fatalf("%s: %d queue samples, want %d", label, len(gm.QueueDepth), len(wm.QueueDepth))
	}
	for i := range wm.QueueDepth {
		if gm.QueueDepth[i] != wm.QueueDepth[i] {
			t.Fatalf("%s: queue sample %d = %+v, want %+v", label, i, gm.QueueDepth[i], wm.QueueDepth[i])
		}
	}
	gh, wh := gm.Latency, wm.Latency
	if gh.Total != wh.Total || gh.Sum != wh.Sum || !eqFloat(gh.LowValue, wh.LowValue) || !eqFloat(gh.HighValue, wh.HighValue) {
		t.Errorf("%s: histogram summary (%d, %x) vs (%d, %x)", label, gh.Total, gh.Sum, wh.Total, wh.Sum)
	}
	for b := range wh.Counts {
		if gh.Counts[b] != wh.Counts[b] {
			t.Fatalf("%s: histogram bucket %d = %d, want %d", label, b, gh.Counts[b], wh.Counts[b])
		}
	}
}

// Property: replays are deterministic ACROSS server reuse. The replay engine
// pools its working set (queue, split slab, chunk deque, percentile scratch)
// and memoizes resolved service times, so the test drives one server through
// interleaved repeats of two differently-shaped streams — deadline sheds,
// bounded-queue sheds and split tails all active — and requires every repeat
// to be bit-identical to a fresh server's run of the same stream.
func TestServerReuseDeterminismProperty(t *testing.T) {
	cfg := trace.ServerConfig{
		Workers: 3, QueueDepth: 12, Deadline: 0.02,
		Policy: trace.DegradeSplitTail, SplitCap: 128,
	}
	service := sizeService(25e-6)

	streamA, err := trace.Generate(600, trace.GeneratorConfig{
		QPS: 2500, MaxBatch: 512, TailProb: 0.12, TailSize: 2560, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	streamB, err := trace.Generate(350, trace.GeneratorConfig{
		QPS: 900, MaxBatch: 256, TailProb: 0.03, TailSize: 1400, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Reference reports from fresh single-use servers.
	want := make(map[string]*trace.Report)
	for name, reqs := range map[string][]trace.Request{"A": streamA, "B": streamB} {
		fresh, err := trace.NewServer(cfg, service)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := fresh.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = rep
	}

	srv, err := trace.NewServer(cfg, service)
	if err != nil {
		t.Fatal(err)
	}
	for round, name := range []string{"A", "B", "A", "A", "B"} {
		reqs := streamA
		if name == "B" {
			reqs = streamB
		}
		rep, err := srv.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		requireReportsIdentical(t, fmt.Sprintf("round %d stream %s", round, name), rep, want[name])
	}
}
