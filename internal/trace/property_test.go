package trace_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// Property: with deadlines off, the concurrent engine's virtual-clock replay
// is not merely close to the closed-form models — it IS them. Across
// randomized traces (rate, tail mix, seed) and worker counts, every sojourn,
// percentile and utilization figure must match trace.Serve (k=1) and
// trace.ServeMultiGPU (k>1) with exact float equality: the engine performs
// the same sequence of floating-point operations, so any drift is a real
// queueing-logic divergence, not rounding.
func TestServerReplayEqualsClosedFormProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(seed * 1009))
		n := 100 + rng.Intn(400)
		reqs, err := trace.Generate(n, trace.GeneratorConfig{
			QPS:      300 + rng.Float64()*5000,
			MaxBatch: 512,
			TailProb: rng.Float64() * 0.15,
			TailSize: 2560,
			Seed:     seed * 7717,
		})
		if err != nil {
			t.Fatal(err)
		}
		perSample := 1e-6 * (1 + rng.Float64()*80)
		service := sizeService(perSample)
		k := 1 + rng.Intn(4)

		var wantSoj []float64
		var wantUtil float64
		if k == 1 {
			want, err := trace.Serve(reqs, service)
			if err != nil {
				t.Fatal(err)
			}
			wantSoj, wantUtil = want.Sojourn, want.Utilization
		} else {
			want, err := trace.ServeMultiGPU(reqs, k, service)
			if err != nil {
				t.Fatal(err)
			}
			wantSoj, wantUtil = want.Sojourn, want.Utilization
		}

		srv, err := trace.NewServer(trace.ServerConfig{Workers: k}, service)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if rep.Sojourn[i] != wantSoj[i] {
				t.Fatalf("seed %d k=%d: sojourn %d: engine %g, closed-form %g",
					seed, k, i, rep.Sojourn[i], wantSoj[i])
			}
			if rep.Outcomes[i] != trace.OutcomeServed {
				t.Fatalf("seed %d k=%d: request %d outcome %v, want served (deadlines are off)",
					seed, k, i, rep.Outcomes[i])
			}
			if rep.Generations[i] != 0 {
				t.Fatalf("seed %d k=%d: request %d stamped generation %d on a plain server",
					seed, k, i, rep.Generations[i])
			}
		}
		if math.Abs(rep.Utilization-wantUtil) > 1e-12 {
			t.Errorf("seed %d k=%d: utilization %g vs %g", seed, k, rep.Utilization, wantUtil)
		}
		m := rep.Metrics
		if m.Served != n || m.Shed() != 0 || m.Timeouts != 0 {
			t.Errorf("seed %d k=%d: counters off: %s", seed, k, m)
		}
		if m.Generation != 0 || len(m.Swaps) != 0 || m.TuneBusy != 0 {
			t.Errorf("seed %d k=%d: plain server reports swap state: gen=%d swaps=%d tuneBusy=%g",
				seed, k, m.Generation, len(m.Swaps), m.TuneBusy)
		}
	}
}
