package trace_test

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// sizeService is a deterministic stand-in for the kernel simulator.
func sizeService(perSample float64) trace.ServiceFunc {
	return func(size int) (float64, error) { return float64(size) * perSample, nil }
}

// The concurrent engine with one worker, no deadline and an unbounded queue
// must reproduce the closed-form Serve sojourn-for-sojourn (exact float
// equality: the queueing math is the same sequence of operations).
func TestServerFIFOEquivalence(t *testing.T) {
	reqs, err := trace.Generate(600, trace.GeneratorConfig{
		QPS: 1500, MaxBatch: 512, TailProb: 0.05, TailSize: 2560, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	service := sizeService(3e-5)
	want, err := trace.Serve(reqs, service)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := trace.NewServer(trace.ServerConfig{Workers: 1}, service)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if rep.Sojourn[i] != want.Sojourn[i] {
			t.Fatalf("sojourn %d: server %g, closed-form %g", i, rep.Sojourn[i], want.Sojourn[i])
		}
		if rep.Outcomes[i] != trace.OutcomeServed {
			t.Fatalf("request %d outcome %v, want served", i, rep.Outcomes[i])
		}
	}
	if rep.P50 != want.P50 || rep.P95 != want.P95 || rep.P99 != want.P99 {
		t.Errorf("percentiles differ: %g/%g/%g vs %g/%g/%g",
			rep.P50, rep.P95, rep.P99, want.P50, want.P95, want.P99)
	}
	if rep.MeanService != want.MeanService {
		t.Errorf("mean service %g vs %g", rep.MeanService, want.MeanService)
	}
	if math.Abs(rep.Utilization-want.Utilization) > 1e-12 {
		t.Errorf("utilization %g vs %g", rep.Utilization, want.Utilization)
	}
	m := rep.Metrics
	if m.Served != len(reqs) || m.Shed() != 0 || m.Timeouts != 0 || m.SplitServed != 0 {
		t.Errorf("counters off: %s", m)
	}
	if m.Latency.Total != int64(len(reqs)) {
		t.Errorf("histogram holds %d samples, want %d", m.Latency.Total, len(reqs))
	}
}

// With k workers and no deadlines the engine must match ServeMultiGPU's
// least-loaded routing exactly.
func TestServerMatchesMultiGPUClosedForm(t *testing.T) {
	reqs, err := trace.Generate(400, trace.GeneratorConfig{QPS: 3000, MaxBatch: 512, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	service := sizeService(5e-5)
	for _, k := range []int{2, 3, 5} {
		want, err := trace.ServeMultiGPU(reqs, k, service)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := trace.NewServer(trace.ServerConfig{Workers: k}, service)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if rep.Sojourn[i] != want.Sojourn[i] {
				t.Fatalf("k=%d sojourn %d: %g vs %g", k, i, rep.Sojourn[i], want.Sojourn[i])
			}
		}
		if math.Abs(rep.Utilization-want.Utilization) > 1e-12 {
			t.Errorf("k=%d utilization %g vs %g", k, rep.Utilization, want.Utilization)
		}
		var perWorker float64
		for _, w := range rep.Metrics.Workers {
			perWorker += w.Utilization
		}
		if math.Abs(perWorker/float64(k)-rep.Utilization) > 1e-9 {
			t.Errorf("k=%d per-worker utilizations sum %g, aggregate %g", k, perWorker/float64(k), rep.Utilization)
		}
	}
}

// DegradeShed drops any request whose deadline cannot be met and accounts
// for it; served requests keep exact sojourns.
func TestServerDeadlineShed(t *testing.T) {
	// 1s service each; second request arrives immediately and would wait 1s
	// against a 1.5s deadline -> completion at 2s misses it -> shed. Third
	// arrives late enough to be served.
	reqs := []trace.Request{
		{Arrival: 0, Size: 10},
		{Arrival: 0.1, Size: 10},
		{Arrival: 1.5, Size: 10},
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, Deadline: 1.5, Policy: trace.DegradeShed,
	}, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[0] != trace.OutcomeServed || rep.Outcomes[2] != trace.OutcomeServed {
		t.Fatalf("outcomes %v, want first and third served", rep.Outcomes)
	}
	if rep.Outcomes[1] != trace.OutcomeShedDeadline {
		t.Fatalf("outcome[1] = %v, want shed-deadline", rep.Outcomes[1])
	}
	if !math.IsNaN(rep.Sojourn[1]) {
		t.Errorf("shed request has sojourn %g, want NaN", rep.Sojourn[1])
	}
	m := rep.Metrics
	if m.Served != 2 || m.DeadlineSheds != 1 || m.Timeouts != 0 {
		t.Errorf("counters: %s", m)
	}
}

// DegradeServe never sheds; late completions are only counted.
func TestServerDegradeServeCountsTimeouts(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 10},
		{Arrival: 0, Size: 10},
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, Deadline: 1.5, Policy: trace.DegradeServe,
	}, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[0] != trace.OutcomeServed || rep.Outcomes[1] != trace.OutcomeServed {
		t.Fatalf("outcomes %v", rep.Outcomes)
	}
	if rep.Metrics.Timeouts != 1 || rep.Metrics.Shed() != 0 {
		t.Errorf("counters: %s", rep.Metrics)
	}
}

// The split-at-cap fallback: a long-tail request that would miss its
// deadline unsplit is served as capped chunks, which can spread over
// several workers and finish sooner than the unsplit kernel.
func TestServerSplitTailFallback(t *testing.T) {
	reqs := []trace.Request{{Arrival: 0, Size: 250}}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 2, Deadline: 0.2, SplitCap: 100, Policy: trace.DegradeSplitTail,
	}, func(size int) (float64, error) { return float64(size) * 1e-3, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[0] != trace.OutcomeSplit {
		t.Fatalf("outcome %v, want split", rep.Outcomes[0])
	}
	// Chunks 100/100/50 on two workers: w0 runs 100 then 50 (done 0.15),
	// w1 runs 100 (done 0.1). Sojourn = 0.15 < 0.25 unsplit.
	if math.Abs(rep.Sojourn[0]-0.15) > 1e-12 {
		t.Errorf("split sojourn %g, want 0.15", rep.Sojourn[0])
	}
	m := rep.Metrics
	if m.SplitServed != 1 || m.Served != 1 || m.Shed() != 0 {
		t.Errorf("counters: %s", m)
	}
	if m.Timeouts != 0 {
		t.Errorf("split request met its 0.2s deadline but counted as timeout")
	}
	// Without the deadline the same request is served unsplit.
	relaxed, err := trace.NewServer(trace.ServerConfig{
		Workers: 2, SplitCap: 100, Policy: trace.DegradeSplitTail,
	}, func(size int) (float64, error) { return float64(size) * 1e-3, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := relaxed.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Outcomes[0] != trace.OutcomeServed || math.Abs(rep2.Sojourn[0]-0.25) > 1e-12 {
		t.Errorf("no-deadline run: outcome %v sojourn %g, want served/0.25", rep2.Outcomes[0], rep2.Sojourn[0])
	}
}

// Property: under the default policy, shedding never drops a non-tail
// request — across random traces, worker counts, queue bounds and deadline
// pressure, every request at or below the split cap is served.
func TestServerDefaultPolicyNeverShedsNonTail(t *testing.T) {
	const cap = 512
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		reqs, err := trace.Generate(300, trace.GeneratorConfig{
			QPS:      500 + rng.Float64()*4000,
			MaxBatch: cap,
			TailProb: 0.05 + rng.Float64()*0.15,
			TailSize: 2560,
			Seed:     seed * 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		cfg := trace.ServerConfig{
			Workers:    1 + rng.Intn(3),
			QueueDepth: 1 + rng.Intn(8),
			Deadline:   1e-4 + rng.Float64()*1e-2, // tight: forces degradation
			SplitCap:   cap,
			Policy:     trace.DegradeSplitTail,
		}
		srv, err := trace.NewServer(cfg, sizeService(2e-5))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := srv.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		shedTails := 0
		for i, r := range reqs {
			if rep.Outcomes[i].Shed() {
				if r.Size <= cap {
					t.Fatalf("seed %d: non-tail request %d (size %d) shed with outcome %v under default policy",
						seed, i, r.Size, rep.Outcomes[i])
				}
				shedTails++
			} else if math.IsNaN(rep.Sojourn[i]) {
				t.Fatalf("seed %d: request %d not shed but has NaN sojourn", seed, i)
			}
		}
		if got := rep.Metrics.Shed(); got != shedTails {
			t.Errorf("seed %d: metrics count %d sheds, outcomes say %d", seed, got, shedTails)
		}
	}
}

// A full bounded queue under the default policy evicts the youngest queued
// tail to admit a normal request; under DegradeShed it sheds the arrival.
func TestServerQueueBoundTailEviction(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 10},     // occupies the worker for 1s
		{Arrival: 0.1, Size: 2000}, // tail, queued
		{Arrival: 0.2, Size: 20},   // arrives at a full queue
	}
	service := func(int) (float64, error) { return 1, nil }
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, QueueDepth: 1, SplitCap: 512, Policy: trace.DegradeSplitTail,
	}, service)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[1] != trace.OutcomeShedQueue {
		t.Errorf("queued tail outcome %v, want shed-queue (evicted)", rep.Outcomes[1])
	}
	if rep.Outcomes[0] != trace.OutcomeServed || rep.Outcomes[2] != trace.OutcomeServed {
		t.Errorf("outcomes %v: normal requests must be served", rep.Outcomes)
	}
	if rep.Metrics.QueueSheds != 1 {
		t.Errorf("counters: %s", rep.Metrics)
	}

	hard, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, QueueDepth: 1, SplitCap: 512, Policy: trace.DegradeShed,
	}, service)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := hard.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Outcomes[2] != trace.OutcomeShedQueue {
		t.Errorf("DegradeShed: arriving request outcome %v, want shed-queue", rep2.Outcomes[2])
	}
}

// Request.Deadline overrides the server default per request.
func TestServerPerRequestDeadline(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 10},
		{Arrival: 0, Size: 10, Deadline: 5}, // would be shed under the 1.5s default
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, Deadline: 1.5, Policy: trace.DegradeShed,
	}, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[1] != trace.OutcomeServed {
		t.Errorf("outcome %v: the relaxed per-request deadline must keep it served", rep.Outcomes[1])
	}
}

// The engine's service-time resolution genuinely runs on multiple worker
// goroutines: two concurrent service calls must be in flight at once. Run
// with -race; a serial engine would deadlock on the barrier and fail the
// watchdog.
func TestServerResolvesServiceConcurrently(t *testing.T) {
	barrier := make(chan struct{})
	var inFlight int32
	service := func(size int) (float64, error) {
		if atomic.AddInt32(&inFlight, 1) == 2 {
			close(barrier) // the second concurrent caller releases everyone
		}
		select {
		case <-barrier:
			return float64(size) * 1e-4, nil
		case <-time.After(10 * time.Second):
			return 0, errors.New("no second service call arrived: worker pool is serial")
		}
	}
	reqs := []trace.Request{
		{Arrival: 0, Size: 64}, {Arrival: 0.001, Size: 128},
		{Arrival: 0.002, Size: 192}, {Arrival: 0.003, Size: 256},
	}
	srv, err := trace.NewServer(trace.ServerConfig{Workers: 4}, service)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve(reqs); err != nil {
		t.Fatal(err)
	}
}

func TestServerErrors(t *testing.T) {
	ok := func(int) (float64, error) { return 1, nil }
	if _, err := trace.NewServer(trace.ServerConfig{Workers: -1}, ok); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := trace.NewServer(trace.ServerConfig{QueueDepth: -1}, ok); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := trace.NewServer(trace.ServerConfig{Deadline: -1}, ok); err == nil {
		t.Error("negative deadline accepted")
	}
	if _, err := trace.NewServer(trace.ServerConfig{HistMin: 2, HistMax: 1}, ok); err == nil {
		t.Error("inverted histogram bounds accepted")
	}
	if _, err := trace.NewServer(trace.ServerConfig{}, nil); err == nil {
		t.Error("nil service accepted")
	}
	srv, err := trace.NewServer(trace.ServerConfig{}, ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve(nil); err == nil {
		t.Error("empty stream accepted")
	}
	if srv.Metrics() != nil {
		t.Error("metrics snapshot before first Serve should be nil")
	}
	bad, err := trace.NewServer(trace.ServerConfig{}, func(int) (float64, error) { return -1, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bad.Serve([]trace.Request{{Arrival: 0, Size: 8}}); err == nil {
		t.Error("negative service time accepted")
	}
}

// The metrics snapshot is a deep copy and survives concurrent reads while
// new traces are served (run with -race).
func TestServerMetricsSnapshot(t *testing.T) {
	reqs, err := trace.Generate(200, trace.GeneratorConfig{QPS: 2000, MaxBatch: 512, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := trace.NewServer(trace.ServerConfig{Workers: 2}, sizeService(4e-5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Serve(reqs); err != nil {
		t.Fatal(err)
	}
	snap := srv.Metrics()
	if snap == nil || snap.Served != len(reqs) {
		t.Fatalf("snapshot %+v", snap)
	}
	if len(snap.QueueDepth) == 0 {
		t.Error("no queue-depth samples recorded")
	}
	if got := snap.Latency.Render(30); !strings.Contains(got, "#") {
		t.Errorf("histogram render has no bars:\n%s", got)
	}
	// Mutate the snapshot; the server's copy must be unaffected.
	snap.Latency.Counts[0] += 100
	snap.Workers[0].Busy = -1
	again := srv.Metrics()
	if again.Latency.Counts[0] == snap.Latency.Counts[0] || again.Workers[0].Busy == -1 {
		t.Error("Metrics() returned a shallow copy")
	}
	// Concurrent snapshot reads during a second run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = srv.Metrics()
		}
	}()
	if _, err := srv.Serve(reqs); err != nil {
		t.Fatal(err)
	}
	<-done
}

// Out-of-order input: outcomes and sojourns stay aligned to caller indices.
func TestServerUnsortedInput(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0.2, Size: 20},
		{Arrival: 0.0, Size: 10},
		{Arrival: 0.1, Size: 2000},
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, QueueDepth: 1, SplitCap: 512,
	}, func(int) (float64, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Same scenario as TestServerQueueBoundTailEviction, but the caller's
	// order is scrambled: index 2 holds the tail.
	if rep.Outcomes[2] != trace.OutcomeShedQueue {
		t.Errorf("tail at caller index 2: outcome %v, want shed-queue", rep.Outcomes[2])
	}
	if rep.Outcomes[0] != trace.OutcomeServed || rep.Outcomes[1] != trace.OutcomeServed {
		t.Errorf("outcomes %v", rep.Outcomes)
	}
}

// A trace where every request is shed must report a zero makespan, not a
// negative one: lastEnd never moves off zero when nothing is served, and
// Makespan = lastEnd - firstArrival would go to -5s here (regression for the
// negative-utilization bug that followed from it).
func TestServerAllShedMakespanZero(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 5, Size: 100},
		{Arrival: 6, Size: 100},
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, Policy: trace.DegradeShed, Deadline: 0.1,
	}, func(int) (float64, error) { return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m.DeadlineSheds != 2 || m.Served != 0 {
		t.Fatalf("want both requests deadline-shed, got %s", m)
	}
	if m.Makespan != 0 {
		t.Errorf("all-shed makespan %g, want 0", m.Makespan)
	}
	if rep.Utilization != 0 {
		t.Errorf("all-shed run utilization %g, want 0", rep.Utilization)
	}
	for i, w := range m.Workers {
		if w.Utilization != 0 {
			t.Errorf("worker %d utilization %g on an all-shed run, want 0", i, w.Utilization)
		}
	}
}

// The three DegradeSplitTail full-queue paths, each pinned separately.

// Path 1: a long-tail request arriving at a full queue is shed outright.
func TestServerQueueFullArrivingTailShed(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 64},       // dispatched immediately, holds the worker
		{Arrival: 0.001, Size: 64},   // queued: the queue is now at its bound
		{Arrival: 0.002, Size: 2560}, // tail arriving at a full queue
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, QueueDepth: 1, SplitCap: 512,
	}, func(int) (float64, error) { return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[2] != trace.OutcomeShedQueue {
		t.Errorf("arriving tail outcome %v, want shed-queue", rep.Outcomes[2])
	}
	if rep.Outcomes[0] != trace.OutcomeServed || rep.Outcomes[1] != trace.OutcomeServed {
		t.Errorf("outcomes %v: non-tail requests must be served", rep.Outcomes)
	}
	if m := rep.Metrics; m.QueueSheds != 1 || m.Served != 2 {
		t.Errorf("counters: %s", m)
	}
}

// Path 2: a non-tail request arriving at a full queue evicts the YOUNGEST
// queued whole tail — with two tails queued, the later one goes and the
// earlier keeps its place.
func TestServerQueueFullEvictsYoungestTail(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 64},       // dispatched immediately
		{Arrival: 0.001, Size: 2560}, // older queued tail
		{Arrival: 0.002, Size: 2560}, // younger queued tail
		{Arrival: 0.003, Size: 64},   // non-tail at a full queue
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, QueueDepth: 2, SplitCap: 512,
	}, func(int) (float64, error) { return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[2] != trace.OutcomeShedQueue {
		t.Errorf("younger queued tail outcome %v, want shed-queue (evicted)", rep.Outcomes[2])
	}
	if rep.Outcomes[1] != trace.OutcomeServed {
		t.Errorf("older queued tail outcome %v, want served — eviction must take the youngest", rep.Outcomes[1])
	}
	if rep.Outcomes[0] != trace.OutcomeServed || rep.Outcomes[3] != trace.OutcomeServed {
		t.Errorf("outcomes %v: non-tail requests must be served", rep.Outcomes)
	}
	if m := rep.Metrics; m.QueueSheds != 1 || m.Served != 3 {
		t.Errorf("counters: %s", m)
	}
}

// Path 3: with no queued tail to make room, the non-tail arrival is admitted
// past the bound — the queue depth is soft for non-tail traffic by design.
func TestServerQueueFullSoftBoundAdmit(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, Size: 64},     // dispatched immediately
		{Arrival: 0.001, Size: 64}, // queued: bound reached
		{Arrival: 0.002, Size: 64}, // non-tail at a full all-non-tail queue
	}
	srv, err := trace.NewServer(trace.ServerConfig{
		Workers: 1, QueueDepth: 1, SplitCap: 512,
	}, func(int) (float64, error) { return 10, nil })
	if err != nil {
		t.Fatal(err)
	}
	rep, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range rep.Outcomes {
		if o != trace.OutcomeServed {
			t.Errorf("request %d outcome %v, want served (soft bound admits)", i, o)
		}
	}
	m := rep.Metrics
	if m.QueueSheds != 0 || m.Served != 3 {
		t.Errorf("counters: %s", m)
	}
	if m.MaxQueueDepth != 2 {
		t.Errorf("max queue depth %d, want 2 — the soft admit exceeds the bound of 1", m.MaxQueueDepth)
	}
}
