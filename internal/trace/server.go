package trace

import (
	"fmt"
	"math"
	"sync"
)

// Outcome records how the engine resolved one request.
type Outcome uint8

const (
	// OutcomeServed: served whole, on time or late (see Metrics.Timeouts).
	OutcomeServed Outcome = iota
	// OutcomeSplit: served through the split-at-cap degradation fallback.
	OutcomeSplit
	// OutcomeShedDeadline: dropped at dispatch, deadline unreachable.
	OutcomeShedDeadline
	// OutcomeShedQueue: dropped on arrival at a full admission queue.
	OutcomeShedQueue
	// OutcomeShedQuota: dropped on arrival over a per-tenant queue quota.
	// Never produced by the single-model engine; the fleet pool's per-model
	// report views carry it through so shed causes survive the translation.
	OutcomeShedQuota
	// OutcomeShedLoad: dropped on arrival by load-aware early shedding.
	// Never produced by the single-model engine; see OutcomeShedQuota.
	OutcomeShedLoad
)

func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeSplit:
		return "split"
	case OutcomeShedDeadline:
		return "shed-deadline"
	case OutcomeShedQueue:
		return "shed-queue"
	case OutcomeShedQuota:
		return "shed-quota"
	case OutcomeShedLoad:
		return "shed-load"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Shed reports whether the request was dropped without service.
func (o Outcome) Shed() bool {
	switch o {
	case OutcomeShedDeadline, OutcomeShedQueue, OutcomeShedQuota, OutcomeShedLoad:
		return true
	}
	return false
}

// ServerConfig shapes the concurrent serving engine.
type ServerConfig struct {
	// Workers is the number of simulated GPUs (k in M/G/k); 0 means 1.
	Workers int
	// QueueDepth bounds the admission queue; 0 means unbounded. Under the
	// default DegradeSplitTail policy a full queue sheds only long-tail
	// requests (the arriving tail, or the youngest queued tail to make room
	// for a normal arrival); if no tail can make room, the normal request is
	// admitted anyway — the bound is soft for non-tail traffic by design, so
	// interactive requests are never dropped by a burst of batch traffic.
	// Other policies shed the arriving request, whatever its size.
	QueueDepth int
	// Deadline is the default per-request completion deadline in seconds
	// after arrival; 0 disables deadlines. Request.Deadline overrides it
	// per request.
	Deadline float64
	// Policy is the degradation policy (default DegradeSplitTail).
	Policy DegradePolicy
	// SplitCap is the size above which a request counts as an unsplit
	// long-tail batch and may be split by DegradeSplitTail; 0 disables
	// splitting and tail special-casing (every request is then "normal").
	SplitCap int
	// HistMin, HistMax, HistBuckets shape the latency histogram; zero
	// values default to 1us..10s across 28 log-spaced buckets.
	HistMin, HistMax float64
	HistBuckets      int
}

// Queue returns the configuration's queue-policy view — the fields shared
// with the fleet pool configuration, validated in one place (QueuePolicy).
func (c *ServerConfig) Queue() QueuePolicy {
	return QueuePolicy{
		Workers:    c.Workers,
		QueueDepth: c.QueueDepth,
		Deadline:   c.Deadline,
		Policy:     c.Policy,
		SplitCap:   c.SplitCap,
	}
}

// Validate checks the server configuration. The histogram shape is checked
// after default resolution — the same resolution histogram() applies — so a
// shape that only turns invalid once defaults kick in (HistMin=20 with
// HistMax=0, which defaults to 10) fails here, at configuration time, instead
// of panicking inside NewHistogram mid-Serve.
func (c *ServerConfig) Validate() error {
	q := c.Queue()
	if err := q.Validate(); err != nil {
		return err
	}
	if c.HistMin < 0 || c.HistMax < 0 || c.HistBuckets < 0 {
		return fmt.Errorf("trace: histogram shape must be non-negative")
	}
	if min, max, _ := c.histShape(); max <= min {
		return fmt.Errorf("trace: HistMax %g must exceed HistMin %g after defaults (HistMin=1e-6, HistMax=10)", max, min)
	}
	return nil
}

// histShape resolves the configured histogram shape with zero-value defaults
// applied: 1us..10s across 28 log-spaced buckets.
func (c *ServerConfig) histShape() (min, max float64, n int) {
	min, max, n = c.HistMin, c.HistMax, c.HistBuckets
	if min == 0 {
		min = 1e-6
	}
	if max == 0 {
		max = 10
	}
	if n == 0 {
		n = 28
	}
	return min, max, n
}

// workers returns the effective GPU count.
func (c *ServerConfig) workers() int {
	q := c.Queue()
	return q.EffectiveWorkers()
}

// histogram builds the configured latency histogram.
func (c *ServerConfig) histogram() *Histogram {
	return NewHistogram(c.histShape())
}

// Report is the outcome of one trace served by the engine: the classic
// closed-form Result (percentiles over served requests, sojourns aligned to
// the caller's request order, NaN for shed requests) plus per-request
// outcomes and the observability snapshot.
type Report struct {
	Result
	// Outcomes[i] resolves the caller's request i.
	Outcomes []Outcome
	// Generations[i] is the schedule-set generation the caller's request i
	// was admitted on. All zeros for a plain Server run; a Supervisor run
	// stamps each admission with the generation live at its arrival, so the
	// pre/post-swap latency split can be computed per request.
	Generations []int
	// Metrics is the observability snapshot of this run.
	Metrics *Metrics
}

// Server is the concurrent serving engine: requests are admitted from the
// stream in arrival order through a bounded admission queue and dispatched
// to k simulated-GPU workers by least-loaded routing (subsuming
// ServeMultiGPU's router), with per-request deadlines, timeout/shed
// accounting and graceful degradation of unsplit long-tail requests.
//
// Execution is split into a physically concurrent phase and a deterministic
// one. Service times are resolved by k worker goroutines draining a bounded
// admission channel in arrival order — this is where the expensive fused
// kernel simulations run, genuinely in parallel, which is why the service
// function must be safe for concurrent use (MemoService is). Queueing,
// routing, deadlines and shedding are then replayed on a virtual clock, so
// reported latencies are exact and reproducible rather than subject to host
// scheduling jitter: the same trace always yields the same Report, and with
// one worker, no deadline and no queue bound it reproduces the closed-form
// Serve sojourn-for-sojourn.
//
// The service function must be size-deterministic (same size, same time);
// wrap expensive measurements in MemoService.
type Server struct {
	cfg     ServerConfig
	service ServiceFunc

	mu   sync.Mutex
	last *Metrics

	// svcMu guards svcCache, the cross-Serve memo of resolved service times.
	// The service function is size-deterministic by contract, so a size
	// resolved by an earlier Serve is reused without re-invoking the service
	// function — or spinning up the resolution worker pool at all when every
	// size hits.
	svcMu    sync.Mutex
	svcCache map[int]float64
}

// NewServer creates a serving engine over the given service function.
func NewServer(cfg ServerConfig, service ServiceFunc) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if service == nil {
		return nil, fmt.Errorf("trace: nil service function")
	}
	return &Server{cfg: cfg, service: service}, nil
}

// Config returns the server configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// Metrics returns a snapshot of the most recent run's observability data,
// or nil before the first Serve.
func (s *Server) Metrics() *Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return nil
	}
	return s.last.Clone()
}

// isTail reports whether a request of this size is an unsplit long-tail
// batch under the configured cap.
func (c *ServerConfig) isTail(size int) bool {
	q := c.Queue()
	return q.IsTail(size)
}

// chunkSizes returns the split-at-cap decomposition of a tail size.
func (c *ServerConfig) chunkSizes(size int) []int {
	q := c.Queue()
	return q.ChunkSizes(size)
}

// denseSizeLimit bounds the dense size-indexed fast paths: up to this maximum
// batch size, per-size tables are flat arrays instead of maps. Serving batch
// sizes (hundreds to a few thousand samples) sit far below it.
const denseSizeLimit = 1 << 16

// maxRequestSize returns the largest request size in the stream. Split-at-cap
// chunk sizes never exceed it: a chunk is the cap (below its parent's size)
// or the remainder (below the cap).
func maxRequestSize(reqs []Request) int {
	max := 0
	for i := range reqs {
		if reqs[i].Size > max {
			max = reqs[i].Size
		}
	}
	return max
}

// resolveServiceTimes runs the concurrent phase: an admission goroutine
// walks the stream in arrival order pushing each not-yet-seen size into a
// bounded channel, and k worker goroutines drain it, invoking the service
// function in parallel. Returns the size -> service time table.
func (s *Server) resolveServiceTimes(reqs []Request) (map[int]float64, error) {
	// Sizes in first-need order: request sizes, plus the chunk sizes their
	// split fallback could dispatch. Serving batch sizes are small, so the
	// dedup set is a dense bitmap when the largest size allows it (the common
	// case) and a map otherwise; either way the needed order — which fixes
	// the deterministic error selection below — is identical.
	var needed []int
	var seenDense []bool
	var seenMap map[int]bool
	if max := maxRequestSize(reqs); max <= denseSizeLimit {
		seenDense = make([]bool, max+1)
	} else {
		seenMap = make(map[int]bool)
	}
	need := func(size int) {
		if seenDense != nil {
			if !seenDense[size] {
				seenDense[size] = true
				needed = append(needed, size)
			}
		} else if !seenMap[size] {
			seenMap[size] = true
			needed = append(needed, size)
		}
	}
	splitCap := s.cfg.SplitCap
	for _, r := range reqs {
		need(r.Size)
		if s.cfg.Policy == DegradeSplitTail && splitCap > 0 && r.Size > splitCap {
			// The distinct chunk sizes of a split-at-cap decomposition: the
			// cap, plus the remainder when the size is not a multiple of it.
			need(splitCap)
			if rem := r.Size % splitCap; rem > 0 {
				need(rem)
			}
		}
	}

	// Serve the memo first: only sizes no earlier Serve resolved go to the
	// worker pool. Failures are never cached, so a size that errored once is
	// retried on the next call.
	times := make(map[int]float64, len(needed))
	toResolve := needed
	s.svcMu.Lock()
	if len(s.svcCache) > 0 {
		toResolve = nil
		for _, size := range needed {
			if t, ok := s.svcCache[size]; ok {
				times[size] = t
			} else {
				toResolve = append(toResolve, size)
			}
		}
	}
	s.svcMu.Unlock()
	if len(toResolve) == 0 {
		return times, nil
	}

	depth := s.cfg.QueueDepth
	if depth == 0 {
		depth = len(toResolve)
	}
	admit := make(chan int, depth)
	errs := make(map[int]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for size := range admit {
				t, err := s.service(size)
				if err == nil && t < 0 {
					err = fmt.Errorf("trace: negative service time %g for size %d", t, size)
				}
				mu.Lock()
				if err != nil {
					errs[size] = err
				} else {
					times[size] = t
				}
				mu.Unlock()
			}
		}()
	}
	for _, size := range toResolve {
		admit <- size
	}
	close(admit)
	wg.Wait()
	// Deterministic error selection: first failing size in admission order.
	for _, size := range needed {
		if err := errs[size]; err != nil {
			return nil, fmt.Errorf("trace: size %d: %w", size, err)
		}
	}
	s.svcMu.Lock()
	if s.svcCache == nil {
		s.svcCache = make(map[int]float64, len(toResolve))
	}
	for _, size := range toResolve {
		s.svcCache[size] = times[size]
	}
	s.svcMu.Unlock()
	return times, nil
}

// qentry is one admission-queue slot: a whole request or one split chunk.
type qentry struct {
	pos      int     // position in the sorted stream
	arrival  float64 // request arrival time
	deadline float64 // absolute completion deadline (+Inf if none)
	size     int
	gen      int  // schedule-set generation stamped at admission
	chunk    bool // split chunk of a tail request
}

// splitState tracks an in-flight split request until its last chunk lands.
type splitState struct {
	remaining int
	end       float64
	service   float64
}

// resolveFunc returns the service time of one queue entry. The plain Server
// reads a pre-resolved per-size table; the Supervisor resolves against the
// generation and arrival time stamped on the entry, so in-flight requests
// keep the schedule set they were admitted on across a hot-swap.
type resolveFunc func(e *qentry) (float64, error)

// admitHook observes every arrival at its admission time, in arrival order,
// before queue placement or shedding. It returns the schedule-set generation
// to stamp on the entry. The hook may book background work on a worker slot
// through replayState.Occupy — this is how the Supervisor charges a
// background re-tune against serving capacity.
type admitHook func(st *replayState, r Request, now float64) (gen int, err error)

// finishHook observes every served completion as the replay resolves it:
// the request's size, the generation it was admitted on, its completion time
// and its sojourn. The Supervisor feeds its canary evaluation through this —
// a guarded promotion needs served latencies, not just admissions.
type finishHook func(size, gen int, end, sojourn float64)

// replayState is the mutable state of one virtual-clock replay, exposed to
// the admission hook so supervised runs can interact with worker capacity.
type replayState struct {
	cfg     ServerConfig
	free    []float64 // free[g] is when worker g next becomes idle
	workers []WorkerStats
	met     *Metrics
}

// replayScratch is the reusable per-replay working set: everything a replay
// allocates that does not escape into its Report. Pooled across replays so a
// reused server (or supervisor, or back-to-back benchmark iterations) runs
// its event loop out of warm memory instead of re-growing the queue, split
// table and percentile scratch every time.
type replayScratch struct {
	state     replayState
	queue     []qentry
	servedSoj []float64
	depths    depthSeries
	quant     Quantiler
	// Split bookkeeping: splitState values live in a slab so back-to-back
	// replays reuse the entries; the map only holds pointers into it. Pointers
	// stay valid across slab growth (they keep addressing the backing they
	// were taken from) and the map is cleared, not reallocated, between runs.
	splits    map[int]*splitState
	splitSlab []splitState
	chunkBuf  []qentry
}

var replayPool = sync.Pool{
	New: func() any {
		return &replayScratch{splits: make(map[int]*splitState)}
	},
}

// grab prepares the scratch for one replay over n requests and k workers.
func (sc *replayScratch) grab(k int) {
	if cap(sc.state.free) < k {
		sc.state.free = make([]float64, k)
		sc.state.workers = make([]WorkerStats, k)
	}
	sc.state.free = sc.state.free[:k]
	sc.state.workers = sc.state.workers[:k]
	for g := 0; g < k; g++ {
		sc.state.free[g] = 0
		sc.state.workers[g] = WorkerStats{}
	}
	sc.queue = sc.queue[:0]
	sc.servedSoj = sc.servedSoj[:0]
	sc.depths = depthSeries{samples: sc.depths.samples[:0]}
	sc.splitSlab = sc.splitSlab[:0]
	sc.chunkBuf = sc.chunkBuf[:0]
	clear(sc.splits)
}

// Occupy books dur seconds of background work on the least-loaded worker at
// virtual time now, returning the chosen slot and the booked start/end. The
// booked interval delays every later dispatch routed to that worker, so the
// capacity a background tune consumes is explicitly accounted rather than
// assumed free; the duration accrues to Metrics.TuneBusy and to the chosen
// worker's WorkerStats.TuneBusy, so the tuning worker reports occupied
// rather than idle.
func (st *replayState) Occupy(now, dur float64) (worker int, start, end float64) {
	best := 0
	for g := 1; g < len(st.free); g++ {
		if st.free[g] < st.free[best] {
			best = g
		}
	}
	start = st.free[best]
	if now > start {
		start = now
	}
	end = start + dur
	st.free[best] = end
	st.met.TuneBusy += dur
	st.workers[best].TuneBusy += dur
	return best, start, end
}

// runReplay is the deterministic virtual-clock event loop shared by
// Server.Serve and Supervisor.Run: FIFO admission with the configured queue
// bound and degradation policy, least-loaded dispatch over cfg.workers()
// simulated GPUs, per-request deadlines and split-at-cap fallback. sorted
// must be in arrival order; order maps sorted positions back to the caller's
// indices (nil = identity).
func runReplay(cfg ServerConfig, sorted []Request, order []int, resolve resolveFunc, admit admitHook, onFinish finishHook) (*Report, error) {
	k := cfg.workers()
	n := len(sorted)
	met := &Metrics{Latency: cfg.histogram()}
	sc := replayPool.Get().(*replayScratch)
	sc.grab(k)
	queue := sc.queue
	chunks := sc.chunkBuf
	defer func() {
		// Hand the (possibly grown) buffers back to the scratch so the pool
		// keeps their capacity, and drop the Metrics reference so pooling the
		// scratch does not pin the returned snapshot.
		sc.queue = queue
		sc.chunkBuf = chunks
		sc.state.met = nil
		replayPool.Put(sc)
	}()
	state := &sc.state
	state.cfg = cfg
	state.met = met
	free := state.free
	workerStats := state.workers
	rep := &Report{
		Result:      Result{Sojourn: make([]float64, n)},
		Outcomes:    make([]Outcome, n),
		Generations: make([]int, n),
		Metrics:     met,
	}
	for i := range rep.Sojourn {
		rep.Sojourn[i] = math.NaN()
	}

	// Hot-loop constants, hoisted so the per-event checks are plain compares
	// instead of repeated config-struct construction.
	splitTail := cfg.Policy == DegradeSplitTail
	shedPolicy := cfg.Policy == DegradeShed
	splitCap := cfg.SplitCap
	isTail := func(size int) bool { return splitCap > 0 && size > splitCap }
	defDeadline := cfg.Deadline
	deadlineOf := func(r Request) float64 {
		d := r.Deadline
		if d == 0 {
			d = defDeadline
		}
		if d == 0 {
			return math.Inf(1)
		}
		return r.Arrival + d
	}

	// FIFO queue over a sliding window of a slice, plus a chunk deque that
	// dispatches strictly ahead of it — equivalent to the former front
	// insertion of split chunks (chunks inherit their parent's arrival, which
	// precedes every later admission), without re-copying the queued suffix
	// on every split.
	head := 0
	chead := 0
	qlen := func() int { return (len(queue) - head) + (len(chunks) - chead) }
	observeDepth := func(t float64) {
		d := qlen()
		if d > met.MaxQueueDepth {
			met.MaxQueueDepth = d
		}
		sc.depths.observe(t, d)
	}

	splits := sc.splits
	var busy, totalService, lastEnd float64
	served := 0

	finish := func(pos int, end, svc float64, out Outcome) {
		idx := originalIndex(order, pos)
		soj := end - sorted[pos].Arrival
		rep.Sojourn[idx] = soj
		rep.Outcomes[idx] = out
		met.Served++
		met.Latency.Observe(soj)
		if end > deadlineOf(sorted[pos]) {
			met.Timeouts++
		}
		if out == OutcomeSplit {
			met.SplitServed++
		}
		totalService += svc
		if end > lastEnd {
			lastEnd = end
		}
		served++
		if onFinish != nil {
			onFinish(sorted[pos].Size, rep.Generations[idx], end, soj)
		}
	}
	shed := func(pos int, out Outcome) {
		idx := originalIndex(order, pos)
		rep.Outcomes[idx] = out
		if out == OutcomeShedQueue {
			met.QueueSheds++
		} else {
			met.DeadlineSheds++
		}
	}

	next := 0 // next arrival in sorted order
	// The dispatched entry lives outside the loop: its address is passed to
	// the indirect resolve func, so an in-loop declaration escapes and costs
	// one heap allocation per dispatch.
	var e qentry
	for next < n || qlen() > 0 {
		// Next event: dispatch the queue head as soon as a worker can take
		// it, unless an arrival happens strictly first. Ties dispatch first,
		// so a slot freed at time t is visible to an arrival at time t.
		tArr := math.Inf(1)
		if next < n {
			tArr = sorted[next].Arrival
		}
		tDisp := math.Inf(1)
		best := 0
		if qlen() > 0 {
			for g := 1; g < k; g++ {
				if free[g] < free[best] {
					best = g
				}
			}
			headArr := 0.0
			if chead < len(chunks) {
				headArr = chunks[chead].arrival
			} else {
				headArr = queue[head].arrival
			}
			// Plain compare instead of math.Max: both operands are finite
			// non-negative virtual times, so the NaN/signed-zero handling
			// math.Max pays for cannot matter here.
			tDisp = free[best]
			if headArr > tDisp {
				tDisp = headArr
			}
		}

		if tDisp > tArr { // admit the next arrival
			r := sorted[next]
			e := qentry{pos: next, arrival: r.Arrival, deadline: deadlineOf(r), size: r.Size}
			if admit != nil {
				gen, err := admit(state, r, r.Arrival)
				if err != nil {
					return nil, err
				}
				e.gen = gen
			}
			rep.Generations[originalIndex(order, next)] = e.gen
			next++
			if cfg.QueueDepth > 0 && qlen() >= cfg.QueueDepth {
				if splitTail {
					switch {
					case isTail(e.size):
						shed(e.pos, OutcomeShedQueue)
						observeDepth(r.Arrival)
						continue
					default:
						// Evict the youngest queued whole tail request to
						// make room; if none, admit anyway (soft bound for
						// non-tail traffic). Chunks live in their own deque,
						// so every queue entry here is a whole request.
						for j := len(queue) - 1; j >= head; j-- {
							if isTail(queue[j].size) {
								shed(queue[j].pos, OutcomeShedQueue)
								queue = append(queue[:j], queue[j+1:]...)
								break
							}
						}
					}
				} else {
					shed(e.pos, OutcomeShedQueue)
					observeDepth(r.Arrival)
					continue
				}
			}
			queue = append(queue, e)
			observeDepth(r.Arrival)
			continue
		}

		// Dispatch the head — pending split chunks first, then the FIFO
		// queue — on the least-loaded worker.
		if chead < len(chunks) {
			e = chunks[chead]
			chead++
			if chead == len(chunks) {
				chunks = chunks[:0]
				chead = 0
			}
		} else {
			e = queue[head]
			head++
			// Reclaim the consumed prefix so the queue slice cannot grow
			// unboundedly across a long trace.
			if head > 256 && head*2 > len(queue) {
				queue = append(queue[:0], queue[head:]...)
				head = 0
			}
		}
		st := tDisp
		observeDepth(st)

		sv, err := resolve(&e)
		if err != nil {
			return nil, err
		}
		if sv < 0 {
			return nil, fmt.Errorf("trace: negative service time %g for size %d", sv, e.size)
		}

		if e.chunk {
			free[best] = st + sv
			busy += sv
			workerStats[best].Served++
			workerStats[best].Busy += sv
			sp := splits[e.pos]
			sp.remaining--
			sp.service += sv
			if free[best] > sp.end {
				sp.end = free[best]
			}
			if sp.remaining == 0 {
				finish(e.pos, sp.end, sp.service, OutcomeSplit)
				delete(splits, e.pos)
			}
			continue
		}

		switch {
		case shedPolicy && st+sv > e.deadline:
			shed(e.pos, OutcomeShedDeadline)
			continue
		case splitTail && isTail(e.size) && st > e.deadline:
			// The tail request cannot even start before its deadline.
			shed(e.pos, OutcomeShedDeadline)
			continue
		case splitTail && isTail(e.size) && st+sv > e.deadline:
			// Split-at-cap fallback: re-admit the request as capped chunks
			// that dispatch ahead of the queue; each chunk routes
			// independently, so chunks of one tail request can run on several
			// GPUs at once. Chunks inherit the parent's generation: a split
			// request is still one admission and finishes on the schedule set
			// it arrived under. The split state lives in the pooled slab; the
			// map only ever holds pointers into it.
			cnt := 0
			for sz := e.size; sz > 0; {
				c := sz
				if c > splitCap {
					c = splitCap
				}
				chunks = append(chunks, qentry{pos: e.pos, arrival: e.arrival, deadline: e.deadline, size: c, gen: e.gen, chunk: true})
				sz -= c
				cnt++
			}
			sc.splitSlab = append(sc.splitSlab, splitState{remaining: cnt})
			splits[e.pos] = &sc.splitSlab[len(sc.splitSlab)-1]
			continue
		}
		free[best] = st + sv
		busy += sv
		workerStats[best].Served++
		workerStats[best].Busy += sv
		finish(e.pos, free[best], sv, OutcomeServed)
	}

	// Aggregate statistics over served requests through the pooled scratch:
	// one reused sojourn buffer, one partially-ordered percentile pass.
	servedSoj := sc.servedSoj[:0]
	for _, v := range rep.Sojourn {
		if !math.IsNaN(v) {
			servedSoj = append(servedSoj, v)
		}
	}
	sc.servedSoj = servedSoj
	rep.Served = len(servedSoj)
	rep.P50, rep.P95, rep.P99 = sc.quant.P50P95P99(servedSoj)
	if served > 0 {
		rep.MeanService = totalService / float64(served)
	}
	met.Makespan = lastEnd - sorted[0].Arrival
	if met.Makespan < 0 {
		// Nothing was served (every request shed), so lastEnd never advanced
		// past its zero value; a span of "before the first arrival" is
		// meaningless, and propagating it would turn utilizations negative.
		met.Makespan = 0
	}
	if met.Makespan > 0 {
		rep.Utilization = busy / (met.Makespan * float64(k))
		for g := range workerStats {
			// A worker occupied by a background tune was not idle: its
			// utilization covers serving plus tuning, while the run-level
			// Utilization above stays serving-only (the tune's cost is
			// reported separately in Metrics.TuneBusy).
			workerStats[g].Utilization = (workerStats[g].Busy + workerStats[g].TuneBusy) / met.Makespan
		}
	}
	// Copy the per-worker and queue-depth views out of the pooled scratch —
	// the Report outlives this replay, so nothing it holds may alias memory
	// the next replay will overwrite.
	met.Workers = append([]WorkerStats(nil), workerStats...)
	met.QueueDepth = append([]QueueSample(nil), sc.depths.samples...)
	return rep, nil
}

// Serve runs the request stream through the engine and returns the exact
// virtual-time Report. It also installs the run's Metrics as the server's
// current snapshot. Out-of-order input is sorted on entry; Sojourn and
// Outcomes stay aligned with the caller's indices.
func (s *Server) Serve(reqs []Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request stream")
	}
	sorted, order := arrivalOrder(reqs)
	times, err := s.resolveServiceTimes(sorted)
	if err != nil {
		return nil, err
	}
	// Pre-resolve each position's service time so the replay's per-dispatch
	// resolve is an indexed load; split chunks (whose sizes need not match
	// any request's) go through a dense size table when sizes are small, the
	// size map otherwise.
	svc := make([]float64, len(sorted))
	var bySize []float64
	if max := maxRequestSize(sorted); max <= denseSizeLimit {
		bySize = make([]float64, max+1)
		for size, t := range times {
			bySize[size] = t
		}
		for i, r := range sorted {
			svc[i] = bySize[r.Size]
		}
	} else {
		for i, r := range sorted {
			svc[i] = times[r.Size]
		}
	}
	rep, err := runReplay(s.cfg, sorted, order, func(e *qentry) (float64, error) {
		if e.chunk {
			if bySize != nil {
				return bySize[e.size], nil
			}
			return times[e.size], nil
		}
		return svc[e.pos], nil
	}, nil, nil)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.last = rep.Metrics
	s.mu.Unlock()
	return rep, nil
}
