// White-box tests for the observability layer (histogram bucketing and the
// bounded queue-depth series); the engine-level tests live in the external
// trace_test package.
package trace

import (
	"math"
	"strings"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(1e-6, 1, 24)
	values := []float64{1e-7, 1e-6, 5e-4, 0.02, 0.999, 1, 50}
	for _, v := range values {
		h.Observe(v)
	}
	if h.Total != int64(len(values)) {
		t.Fatalf("total %d", h.Total)
	}
	var sum int64
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Errorf("bucket counts sum %d != total %d", sum, h.Total)
	}
	if h.Counts[0] != 1 {
		t.Errorf("underflow count %d, want 1 (for 1e-7)", h.Counts[0])
	}
	if h.Counts[len(h.Counts)-1] != 2 {
		t.Errorf("overflow count %d, want 2 (for 1 and 50)", h.Counts[len(h.Counts)-1])
	}
	if h.LowValue != 1e-7 || h.HighValue != 50 {
		t.Errorf("extremes %g/%g", h.LowValue, h.HighValue)
	}
	if m := h.Mean(); math.Abs(m-h.Sum/7) > 1e-15 {
		t.Errorf("mean %g", m)
	}
	// Every in-range value must land in the bucket whose bounds contain it.
	for _, v := range []float64{1e-6, 3e-6, 1e-4, 0.5, 0.9999} {
		i := h.bucketOf(v)
		lo, hi := h.BucketBounds(i)
		if v < lo || v >= hi {
			t.Errorf("value %g in bucket %d with bounds [%g, %g)", v, i, lo, hi)
		}
	}
	// Bounds tile the range without gaps.
	for i := 1; i < len(h.Counts)-2; i++ {
		_, hi := h.BucketBounds(i)
		lo, _ := h.BucketBounds(i + 1)
		if math.Abs(hi-lo)/hi > 1e-9 {
			t.Errorf("gap between bucket %d and %d: %g vs %g", i, i+1, hi, lo)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1e-6, 1, 40)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
	for i := 0; i < 1000; i++ {
		h.Observe(1e-5 + float64(i)*1e-5) // 10us .. ~10ms
	}
	p50 := h.Quantile(0.5)
	if p50 < 3e-3 || p50 > 8e-3 {
		t.Errorf("p50 estimate %g outside the plausible band around 5ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %g below p50 %g", p99, p50)
	}
	if q := h.Quantile(1); q < p99 {
		t.Errorf("p100 %g below p99 %g", q, p99)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(1e-6, 1, 12)
	if got := h.Render(20); !strings.Contains(got, "empty") {
		t.Errorf("empty render: %q", got)
	}
	for i := 0; i < 100; i++ {
		h.Observe(1e-4)
	}
	h.Observe(10) // overflow
	got := h.Render(20)
	if !strings.Contains(got, "#") || !strings.Contains(got, ">=") {
		t.Errorf("render missing bars or overflow row:\n%s", got)
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for inverted bounds")
		}
	}()
	NewHistogram(1, 0.5, 4)
}

func TestDepthSeriesDecimation(t *testing.T) {
	var d depthSeries
	n := maxQueueSamples*4 + 17
	for i := 0; i < n; i++ {
		d.observe(float64(i), i%7)
	}
	if len(d.samples) > maxQueueSamples {
		t.Fatalf("series kept %d samples, cap %d", len(d.samples), maxQueueSamples)
	}
	if d.stride < 4 {
		t.Errorf("stride %d after 4x overflow", d.stride)
	}
	// Samples must stay in time order and span the run.
	for i := 1; i < len(d.samples); i++ {
		if d.samples[i].Time <= d.samples[i-1].Time {
			t.Fatalf("series not increasing at %d", i)
		}
	}
	if d.samples[0].Time != 0 {
		t.Errorf("first sample at %g", d.samples[0].Time)
	}
	if last := d.samples[len(d.samples)-1].Time; last < float64(n)/2 {
		t.Errorf("last sample at %g, series truncated early", last)
	}
}

func TestMetricsString(t *testing.T) {
	m := &Metrics{Served: 10, SplitServed: 2, Timeouts: 1, DeadlineSheds: 3, QueueSheds: 4, MaxQueueDepth: 9}
	s := m.String()
	for _, want := range []string{"served=10", "split=2", "timeouts=1", "shed=7", "max-queue=9"} {
		if !strings.Contains(s, want) {
			t.Errorf("%q missing from %q", want, s)
		}
	}
}

// A rank landing in the underflow bucket must answer with the exact observed
// minimum, not the histogram's Min bound: every observation down there is
// below Min, so Min would overstate the quantile (regression — Quantile
// returned 1ms for a run whose slowest request took 20us).
func TestHistogramQuantileUnderflow(t *testing.T) {
	h := NewHistogram(1e-3, 1, 10)
	h.Observe(1e-5)
	h.Observe(2e-5)
	if got := h.Quantile(0.5); got != 1e-5 {
		t.Errorf("median of all-underflow observations = %g, want the observed low 1e-5", got)
	}
	if got := h.Quantile(0.99); got != 1e-5 {
		t.Errorf("p99 of all-underflow observations = %g, want 1e-5 (bucket granularity)", got)
	}

	// Mixed: one observation below Min, the rest in range — only ranks that
	// land in the underflow bucket answer with LowValue.
	m := NewHistogram(1e-3, 1, 10)
	m.Observe(1e-5)
	m.Observe(0.5)
	m.Observe(0.6)
	m.Observe(0.7)
	if got := m.Quantile(0.25); got != 1e-5 {
		t.Errorf("p25 = %g, want the underflow low 1e-5", got)
	}
	if got := m.Quantile(0.75); got < 0.5 {
		t.Errorf("p75 = %g, want an in-range bucket bound", got)
	}
}
