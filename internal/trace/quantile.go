package trace

import (
	"math"
	"sort"
)

// Quantiler computes the serving tail percentiles P50/P95/P99 of a sample
// with exactly Percentile's nearest-rank semantics, but from one reused
// scratch copy partially ordered by introselect instead of three
// independently sorted copies. Every replay engine aggregates tail latency
// through one of these; on a 4k-request trace the three full sorts were the
// single largest cost of the replay hot path.
//
// The zero value is ready to use. A Quantiler is not safe for concurrent use;
// give each replay its own (the replay scratch pool does).
type Quantiler struct {
	scratch []float64
}

// P50P95P99 returns the three serving tail percentiles of values. An empty
// sample yields 0, 0, 0 — not NaN — so an all-shed trace produces JSON-safe,
// printable percentiles; consumers distinguish "no data" from a real zero by
// the sample count they already carry (Result.Served, GroupMetrics.Served).
// values is never mutated; it must not contain NaN — served sojourns never
// do, and shed requests are filtered out before aggregation.
func (q *Quantiler) P50P95P99(values []float64) (p50, p95, p99 float64) {
	n := len(values)
	if n == 0 {
		return 0, 0, 0
	}
	if cap(q.scratch) < n {
		q.scratch = make([]float64, n)
	}
	s := q.scratch[:n]
	copy(s, values)

	i50 := rankIndex(0.50, n)
	i95 := rankIndex(0.95, n)
	i99 := rankIndex(0.99, n)
	// Ascending ranks: after selecting rank k, positions [0,k] hold the k+1
	// smallest elements, so each subsequent rank only needs to select within
	// the suffix s[k:], whose elements are exactly ranks k..n-1.
	lo := 0
	for _, k := range [3]int{i50, i95, i99} {
		nthElement(s[lo:], k-lo)
		lo = k
	}
	return s[i50], s[i95], s[i99]
}

// rankIndex is Percentile's nearest-rank index for 0 < p < 1.
func rankIndex(p float64, n int) int {
	idx := int(math.Ceil(p*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return idx
}

// nthElement partially orders s so that s[k] holds its k-th smallest element,
// everything before it is <= s[k] and everything after is >= s[k] —
// introselect: quickselect with median-of-three pivots, falling back to a
// full sort if the recursion degenerates, so the worst case stays O(n log n).
func nthElement(s []float64, k int) {
	limit := 2 * bitsLen(len(s))
	for len(s) > 12 {
		if limit == 0 {
			sort.Float64s(s)
			return
		}
		limit--
		pivot := medianOfThree(s[0], s[len(s)/2], s[len(s)-1])
		// Three-way partition around pivot: [0,lt) < pivot, [lt,gt) == pivot,
		// [gt,n) > pivot. Ties collapse into the middle band in one pass, so
		// heavily tied samples (identical sojourns) terminate immediately.
		lt, i, gt := 0, 0, len(s)
		for i < gt {
			switch {
			case s[i] < pivot:
				s[lt], s[i] = s[i], s[lt]
				lt++
				i++
			case s[i] > pivot:
				gt--
				s[i], s[gt] = s[gt], s[i]
			default:
				i++
			}
		}
		switch {
		case k < lt:
			s = s[:lt]
		case k >= gt:
			s = s[gt:]
			k -= gt
		default:
			return // s[k] is in the pivot band, already in place
		}
	}
	insertionSortFloat64(s)
}

func medianOfThree(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

func insertionSortFloat64(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// bitsLen returns the bit length of n (floor(log2(n))+1, 0 for n<=0).
func bitsLen(n int) int {
	l := 0
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}
