package trace

import (
	"math/rand"
	"strconv"
	"testing"
)

// quantileCases enumerates the shapes that stress a selection-based
// percentile: tie-heavy samples (the three-way partition's middle band),
// already-ordered and adversarially-ordered inputs (pivot degeneration),
// lengths on both sides of the insertion-sort cutoff, and rank collisions
// where i50 == i95 == i99 on short inputs.
func quantileCases(rng *rand.Rand) map[string][]float64 {
	cases := map[string][]float64{
		"single":          {3.5},
		"pair":            {2, 1},
		"pair equal":      {7, 7},
		"all equal":       make([]float64, 100),
		"tiny magnitudes": {1e-300, 2e-300, 5e-301},
	}
	for i := range cases["all equal"] {
		cases["all equal"][i] = 0.25
	}
	sizes := []int{3, 5, 11, 12, 13, 20, 64, 100, 101, 997}
	for _, n := range sizes {
		asc := make([]float64, n)
		desc := make([]float64, n)
		organ := make([]float64, n)
		ties := make([]float64, n)
		uni := make([]float64, n)
		for i := 0; i < n; i++ {
			asc[i] = float64(i) * 1e-3
			desc[i] = float64(n-i) * 1e-3
			if i < n/2 {
				organ[i] = float64(i)
			} else {
				organ[i] = float64(n - i)
			}
			ties[i] = float64(rng.Intn(4)) // four distinct values: massive tie bands
			uni[i] = rng.Float64()
		}
		cases["asc "+strconv.Itoa(n)] = asc
		cases["desc "+strconv.Itoa(n)] = desc
		cases["organ "+strconv.Itoa(n)] = organ
		cases["ties "+strconv.Itoa(n)] = ties
		cases["uniform "+strconv.Itoa(n)] = uni
	}
	return cases
}

// TestQuantilerMatchesPercentile pins the exactness claim of the selection
// rewrite: one reused Quantiler must return bit-for-bit what three independent
// Percentile sorts return, across tie-heavy, ordered, adversarial and random
// samples — and must never mutate its input. The single Quantiler is reused
// across all cases so stale scratch from a larger previous sample is part of
// what is tested.
func TestQuantilerMatchesPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	var q Quantiler
	for name, vals := range quantileCases(rng) {
		orig := append([]float64(nil), vals...)
		p50, p95, p99 := q.P50P95P99(vals)
		w50 := Percentile(vals, 0.50)
		w95 := Percentile(vals, 0.95)
		w99 := Percentile(vals, 0.99)
		if p50 != w50 || p95 != w95 || p99 != w99 {
			t.Errorf("%s: Quantiler = (%g, %g, %g), Percentile = (%g, %g, %g)",
				name, p50, p95, p99, w50, w95, w99)
		}
		for i := range vals {
			if vals[i] != orig[i] {
				t.Fatalf("%s: input mutated at %d: %g -> %g", name, i, orig[i], vals[i])
			}
		}
	}
}

// Empty input clamps all three percentiles to 0, matching Percentile —
// regression for the NaN leak where an all-shed trace propagated NaN
// P50/P95/P99 into Metrics.String and JSON reports. Consumers tell "no data"
// from a real zero via the sample count (Result.Served).
func TestQuantilerEmpty(t *testing.T) {
	var q Quantiler
	p50, p95, p99 := q.P50P95P99(nil)
	if p50 != 0 || p95 != 0 || p99 != 0 {
		t.Fatalf("empty input: got (%g, %g, %g), want zeros", p50, p95, p99)
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Fatalf("Percentile reference drifted: empty input = %g, want 0", got)
	}
}

// A warm Quantiler allocates nothing: the scratch copy is the only buffer and
// it is reused once grown.
func TestQuantilerSteadyStateAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]float64, 4096)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	var q Quantiler
	q.P50P95P99(vals) // warm-up: grows scratch
	allocs := testing.AllocsPerRun(20, func() {
		q.P50P95P99(vals)
	})
	if allocs != 0 {
		t.Errorf("warm P50P95P99 allocates %.1f objects/run, want 0", allocs)
	}
}

// nthElement's depth-limit fallback must still place the k-th element
// correctly. A median-of-three killer sequence drives the pivot toward
// degeneration; whether or not the sort fallback triggers, the selected rank
// must equal the fully sorted reference.
func TestNthElementAdversarial(t *testing.T) {
	n := 500
	s := make([]float64, n)
	// Interleaved extremes: median-of-three picks poor pivots on this layout.
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			s[i] = float64(i)
		} else {
			s[i] = float64(n*2 - i)
		}
	}
	for _, k := range []int{0, 1, n / 4, n / 2, n - 2, n - 1} {
		work := append([]float64(nil), s...)
		nthElement(work, k)
		want := append([]float64(nil), s...)
		insertionSortFloat64(want)
		if work[k] != want[k] {
			t.Errorf("nthElement(k=%d) = %g, want %g", k, work[k], want[k])
		}
	}
}
