package trace

import (
	"fmt"
	"math"
	"strings"
	"sync"
)

// Histogram is a log-spaced latency histogram. Buckets cover [Min, Max) in
// geometrically equal steps, with implicit underflow and overflow buckets at
// the ends, so a single configuration spans microsecond kernel times and
// second-scale queueing collapse without losing resolution at either end.
type Histogram struct {
	// Min and Max bound the log-spaced range in seconds.
	Min, Max float64
	// Counts has one entry per bucket plus underflow (first) and overflow
	// (last).
	Counts []int64
	// Total is the number of observations.
	Total int64
	// Sum is the sum of observed values (for the mean).
	Sum float64
	// LowValue / HighValue track the exact observed extremes.
	LowValue, HighValue float64

	// logRange caches log(Max/Min) so the per-observation bucket lookup costs
	// one log, not two. Zero on histograms not built by NewHistogram (e.g.
	// decoded ones); bucketOf falls back to computing it on demand.
	logRange float64

	// bounds[i] is the exact smallest in-range value belonging to bucket i+1,
	// precomputed so the per-observation lookup is a short binary search with
	// no logarithm at all. The thresholds are found by bit-level binary search
	// against the log formula itself, so search and formula agree on every
	// float64 — including values one ulp either side of a boundary. Nil on
	// histograms not built by NewHistogram; bucketOf falls back to the log.
	bounds []float64
}

// NewHistogram creates a histogram with n log-spaced buckets between min and
// max seconds. It panics on invalid bounds — histogram shape is a programming
// decision, not an input.
func NewHistogram(min, max float64, n int) *Histogram {
	if !(min > 0) || !(max > min) || n <= 0 {
		panic(fmt.Sprintf("trace: invalid histogram shape min=%g max=%g n=%d", min, max, n))
	}
	return &Histogram{
		Min:       min,
		Max:       max,
		Counts:    make([]int64, n+2),
		LowValue:  math.Inf(1),
		HighValue: math.Inf(-1),
		logRange:  math.Log(max / min),
		bounds:    cachedBucketBounds(min, max, n),
	}
}

// histShape keys the process-wide bucket-boundary cache. Serving runs create
// one histogram per replay but use a handful of shapes, so the boundary table
// is computed once per shape per process.
type histShape struct {
	min, max float64
	n        int
}

var boundsCache sync.Map // histShape -> []float64

func cachedBucketBounds(min, max float64, n int) []float64 {
	key := histShape{min, max, n}
	if b, ok := boundsCache.Load(key); ok {
		return b.([]float64)
	}
	b := newBucketBounds(min, max, n)
	boundsCache.Store(key, b)
	return b
}

// newBucketBounds computes, for each interior bucket edge, the exact smallest
// float64 that the log formula assigns to the bucket above it. Each threshold
// is found by binary search over the float bit space (positive float64s order
// identically as bits), evaluating the same clamped formula bucketOf would
// use — so the table reproduces the formula bit for bit without assuming
// anything about where log's rounding lands.
func newBucketBounds(min, max float64, n int) []float64 {
	lr := math.Log(max / min)
	raw := func(v float64) int {
		i := int(math.Log(v/min) / lr * float64(n))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		return i
	}
	bounds := make([]float64, n-1)
	for i := range bounds {
		lo, hi := math.Float64bits(min), math.Float64bits(max)
		for lo < hi {
			mid := lo + (hi-lo)/2
			if raw(math.Float64frombits(mid)) >= i+1 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		bounds[i] = math.Float64frombits(lo)
	}
	return bounds
}

// buckets returns the number of in-range buckets.
func (h *Histogram) buckets() int { return len(h.Counts) - 2 }

// Observe records one latency.
func (h *Histogram) Observe(v float64) {
	h.Total++
	h.Sum += v
	if v < h.LowValue {
		h.LowValue = v
	}
	if v > h.HighValue {
		h.HighValue = v
	}
	h.Counts[h.bucketOf(v)]++
}

// bucketOf maps a value to its slot in Counts (0 = underflow, len-1 =
// overflow).
func (h *Histogram) bucketOf(v float64) int {
	if v < h.Min {
		return 0
	}
	if v >= h.Max {
		return len(h.Counts) - 1
	}
	if b := h.bounds; b != nil {
		// Rank of v among the precomputed thresholds = the formula's bucket.
		lo, hi := 0, len(b)
		for lo < hi {
			mid := (lo + hi) / 2
			if v >= b[mid] {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo + 1
	}
	n := h.buckets()
	lr := h.logRange
	if lr == 0 {
		lr = math.Log(h.Max / h.Min)
	}
	i := int(math.Log(v/h.Min) / lr * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i + 1
}

// BucketBounds returns the [lo, hi) range of bucket i in Counts' indexing.
// The underflow bucket reports (0, Min) and the overflow bucket (Max, +Inf).
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	n := h.buckets()
	switch {
	case i <= 0:
		return 0, h.Min
	case i >= n+1:
		return h.Max, math.Inf(1)
	}
	ratio := math.Pow(h.Max/h.Min, 1/float64(n))
	lo = h.Min * math.Pow(ratio, float64(i-1))
	return lo, lo * ratio
}

// Quantile returns the p-quantile (0..1) estimated from bucket upper bounds,
// NaN when empty. Exact percentiles of the served trace live in Result; this
// estimator exists so long-running servers can drop raw samples and still
// answer tail questions from the histogram alone.
func (h *Histogram) Quantile(p float64) float64 {
	if h.Total == 0 {
		return math.NaN()
	}
	rank := int64(math.Ceil(p * float64(h.Total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.Counts {
		seen += c
		if seen >= rank {
			_, hi := h.BucketBounds(i)
			if math.IsInf(hi, 1) {
				return h.HighValue
			}
			if i == 0 {
				// The rank lands in the underflow bucket: every observation
				// there is below Min, and LowValue tracks the smallest one
				// exactly, so Min would overstate the quantile.
				return h.LowValue
			}
			return hi
		}
	}
	return h.HighValue
}

// Mean returns the mean observed value, NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.Total == 0 {
		return math.NaN()
	}
	return h.Sum / float64(h.Total)
}

// Render writes an ASCII view of the non-empty buckets, one row per bucket
// with a proportional bar — the serving engine's replacement for the bare
// three-percentile summary.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	var max int64
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		lo, hi := h.BucketBounds(i)
		var label string
		switch {
		case i == 0:
			label = fmt.Sprintf("%12s < %-9s", "", fmtDur(hi))
		case i == len(h.Counts)-1:
			label = fmt.Sprintf("%12s >= %-8s", "", fmtDur(lo))
		default:
			label = fmt.Sprintf("%12s - %-9s", fmtDur(lo), fmtDur(hi))
		}
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(max)*float64(width))))
		if bar == "" {
			bar = "."
		}
		fmt.Fprintf(&b, "%s %6d %s\n", label, c, bar)
	}
	return b.String()
}

// fmtDur renders a duration in seconds with a natural unit.
func fmtDur(sec float64) string {
	switch {
	case sec < 1e-3:
		return fmt.Sprintf("%.1fus", sec*1e6)
	case sec < 1:
		return fmt.Sprintf("%.2fms", sec*1e3)
	default:
		return fmt.Sprintf("%.2fs", sec)
	}
}

// WorkerStats is the per-simulated-GPU view of one served trace.
type WorkerStats struct {
	// Served counts requests (or split chunks) the worker executed.
	Served int
	// Busy is the worker's total service time in seconds.
	Busy float64
	// TuneBusy is the time this worker spent occupied by background re-tunes
	// rather than serving. The per-run total lives in Metrics.TuneBusy; this
	// field attributes it to the slot that actually held the tune.
	TuneBusy float64
	// Utilization is (Busy + TuneBusy) over the trace makespan: the fraction
	// of the run this worker was occupied, serving or tuning.
	Utilization float64
}

// QueueSample is one point of the admission-queue depth time series.
type QueueSample struct {
	// Time is the virtual timestamp in seconds.
	Time float64
	// Depth is the queue occupancy just after the event at Time.
	Depth int
}

// maxQueueSamples bounds the retained queue-depth series; past it the series
// is decimated 2x so long traces keep a bounded, evenly thinned profile.
const maxQueueSamples = 2048

// depthSeries records queue occupancy over virtual time with bounded memory.
type depthSeries struct {
	samples []QueueSample
	stride  int
	tick    int
	// next is the first tick at or after which a sample may be recorded, so
	// the common skipped observation is one compare instead of a modulo. The
	// recorded tick set — ticks with (tick-1) % stride == 0, stride doubling
	// on decimation — is exactly the modulo formulation's.
	next int
}

func (d *depthSeries) observe(t float64, depth int) {
	d.tick++
	if d.tick < d.next {
		return
	}
	if d.stride == 0 {
		d.stride = 1
	}
	if r := (d.tick - 1) % d.stride; r != 0 {
		d.next = d.tick - r + d.stride
		return
	}
	if len(d.samples) >= maxQueueSamples {
		kept := d.samples[:0]
		for i := 0; i < len(d.samples); i += 2 {
			kept = append(kept, d.samples[i])
		}
		d.samples = kept
		d.stride *= 2
	}
	d.samples = append(d.samples, QueueSample{Time: t, Depth: depth})
	d.next = d.tick - (d.tick-1)%d.stride + d.stride
}

// SwapEvent records one schedule hot-swap of a supervised serving run: the
// drift detection, the background tune booked on a worker slot, and the
// virtual time the new generation went live. Admissions at or after Swapped
// are served on Generation; earlier admissions — including ones still
// in flight at the swap — finish on the generation they arrived under.
//
// With the canary guard enabled (SupervisorConfig.CanaryWindow or
// CanaryDuration), a promotion event additionally carries the canary verdict
// (CanaryMean vs BaselineMean), and a rolled-back promotion is followed by a
// second event with Rollback set: the rollback is itself a hot-swap that
// installs a new, strictly higher generation id reusing the service of
// Reinstated — generation ids never go backwards.
type SwapEvent struct {
	// Generation is the schedule-set generation id this swap installed.
	Generation int
	// Detected is the virtual time the drift detector fired (for a rollback
	// event, the time the canary verdict was reached).
	Detected float64
	// Start is the virtual time the background tune began on its worker
	// (equal to Detected for a rollback, which needs no tune).
	Start float64
	// Swapped is the virtual time the new generation went live (tune end).
	Swapped float64
	// Worker is the simulated-GPU slot the background tune occupied, or -1
	// for a rollback event (reinstating a service occupies no worker).
	Worker int
	// TuneDuration is the simulated seconds the tune held its worker slot.
	TuneDuration float64
	// TuneWall is the measured wall-clock seconds the retuner ran for (zero
	// for rollback events, which need no tune). Unlike every other field it
	// reflects host time, not virtual time: it is the real cost of producing
	// the next generation, the number the fleet-speed tuner drives down.
	// Deterministic-replay comparisons must ignore it.
	TuneWall float64
	// PreMean / PostMean split served latency around the swap: the mean
	// sojourn of requests admitted on the previous generation vs on this
	// one. NaN when a side served no requests.
	PreMean, PostMean float64
	// Rollback marks this event as a canary rollback: the generation it
	// installed reuses the service of generation Reinstated instead of a
	// fresh tune.
	Rollback bool
	// Reinstated is the generation whose service a rollback reinstated.
	// Meaningful only when Rollback is true.
	Reinstated int
	// CanaryMean / BaselineMean record the canary verdict for the promotion
	// this event installed: the mean served sojourn over the canary window's
	// completions on the new generation, against the outgoing generation's
	// most recent pre-swap completions matched over the same size quartiles.
	// Both are zero when the guard is disabled, when the window never closed
	// before the trace ended, or when no matched completions existed.
	CanaryMean, BaselineMean float64
}

// Metrics is the first-class observability snapshot of one served trace:
// everything recflex-serve prints beyond the latency table, and the contract
// future scaling PRs (sharding, caching, multi-tenant) report through.
type Metrics struct {
	// Served counts requests that completed service (including split and
	// late ones).
	Served int
	// SplitServed counts long-tail requests served through the split-at-cap
	// graceful-degradation fallback.
	SplitServed int
	// Timeouts counts served requests that completed after their deadline.
	Timeouts int
	// DeadlineSheds counts requests dropped at dispatch because their
	// deadline could not be met.
	DeadlineSheds int
	// QueueSheds counts requests dropped on arrival at a full admission
	// queue.
	QueueSheds int
	// QuotaSheds counts requests dropped on arrival over a per-tenant queue
	// quota. Always 0 for the single-model engine; the fleet pool's per-model
	// report views populate it (see OutcomeShedQuota).
	QuotaSheds int
	// LoadSheds counts requests dropped on arrival by load-aware early
	// shedding. Always 0 for the single-model engine; see QuotaSheds.
	LoadSheds int
	// MaxQueueDepth is the peak admission-queue occupancy.
	MaxQueueDepth int
	// Latency is the sojourn histogram of served requests.
	Latency *Histogram
	// Workers holds per-simulated-GPU utilization.
	Workers []WorkerStats
	// QueueDepth is the (possibly decimated) queue-occupancy time series.
	QueueDepth []QueueSample
	// Makespan is the span from first arrival to last completion in seconds.
	Makespan float64
	// Generation is the schedule-set generation live at the end of the run:
	// the number of hot-swaps a Supervisor performed (0 for a plain Server).
	// Rollbacks count too — a rollback is a forward swap to a new id.
	Generation int
	// Swaps records each schedule hot-swap of a supervised run, in order,
	// including rollback events (SwapEvent.Rollback).
	Swaps []SwapEvent
	// Rollbacks counts promotions the canary guard measured worse than the
	// pre-swap baseline and rolled back (see SwapEvent.Rollback).
	Rollbacks int
	// TuneBusy is the total simulated worker time background re-tunes
	// occupied — serving capacity spent on tuning rather than requests.
	TuneBusy float64
	// TuneWall is the total measured wall-clock seconds spent inside the
	// retuner across this run's background tunes (sum of SwapEvent.TuneWall).
	// Host time, not virtual time; deterministic-replay comparisons must
	// ignore it.
	TuneWall float64
}

// Shed returns the total number of dropped requests.
func (m *Metrics) Shed() int {
	return m.DeadlineSheds + m.QueueSheds + m.QuotaSheds + m.LoadSheds
}

// Clone returns a deep copy of the snapshot, safe to mutate independently.
func (m *Metrics) Clone() *Metrics {
	cp := *m
	cp.Workers = append([]WorkerStats(nil), m.Workers...)
	cp.QueueDepth = append([]QueueSample(nil), m.QueueDepth...)
	cp.Swaps = append([]SwapEvent(nil), m.Swaps...)
	if m.Latency != nil {
		h := *m.Latency
		h.Counts = append([]int64(nil), m.Latency.Counts...)
		cp.Latency = &h
	}
	return &cp
}

// String summarizes the counters in one line.
func (m *Metrics) String() string {
	causes := fmt.Sprintf("deadline=%d queue-full=%d", m.DeadlineSheds, m.QueueSheds)
	if m.QuotaSheds > 0 || m.LoadSheds > 0 {
		causes += fmt.Sprintf(" quota=%d load=%d", m.QuotaSheds, m.LoadSheds)
	}
	return fmt.Sprintf("served=%d split=%d timeouts=%d shed=%d (%s) max-queue=%d",
		m.Served, m.SplitServed, m.Timeouts, m.Shed(), causes, m.MaxQueueDepth)
}
