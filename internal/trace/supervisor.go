package trace

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// TimedServiceFunc returns the GPU service time of a request of the given
// size arriving at virtual time t. Time matters when the workload drifts:
// the same batch size retrieves more embedding rows after a pooling-factor
// shift, so a schedule set tuned before the shift serves it slower. A
// time-invariant workload can ignore t.
type TimedServiceFunc func(t float64, size int) (float64, error)

// Untimed adapts a plain ServiceFunc to the timed signature.
func Untimed(inner ServiceFunc) TimedServiceFunc {
	return func(_ float64, size int) (float64, error) { return inner(size) }
}

// MemoTimedService caches a timed service by (phase, size), where phaseOf
// collapses virtual time onto the workload's drift phases — e.g. the start
// time of the piecewise-constant drift step in effect at t — so one
// expensive kernel measurement per (phase, size) serves the whole trace.
// nil phaseOf means the workload is time-invariant and t is ignored.
// Same singleflight semantics as MemoService: safe for concurrent use, the
// inner measurement runs at most once per key, errors are memoized.
func MemoTimedService(inner TimedServiceFunc, phaseOf func(t float64) float64) TimedServiceFunc {
	type key struct {
		phase float64
		size  int
	}
	type entry struct {
		once sync.Once
		s    float64
		err  error
	}
	var mu sync.Mutex
	memo := make(map[key]*entry)
	return func(t float64, size int) (float64, error) {
		k := key{size: size}
		if phaseOf != nil {
			k.phase = phaseOf(t)
		}
		mu.Lock()
		e := memo[k]
		if e == nil {
			e = &entry{}
			memo[k] = e
		}
		mu.Unlock()
		e.once.Do(func() { e.s, e.err = inner(k.phase, size) })
		return e.s, e.err
	}
}

// WindowEntry is one admitted request in the supervisor's sliding window:
// what arrived and when, which is all a drift detector needs to reconstruct
// the recent workload (the batch content of a size at a time is
// deterministic in this system).
type WindowEntry struct {
	// Time is the request's arrival time in virtual seconds.
	Time float64
	// Size is the request's batch size.
	Size int
}

// DriftDetector inspects the sliding window of admitted requests and reports
// whether the workload has drifted far enough from the live schedule set's
// tuning-time profile that a re-tune is due. Serving callers back it with
// core.RecFlex.ShouldRetune over the window's batches.
type DriftDetector func(window []WindowEntry) (bool, error)

// Retuner builds the schedule set of the next generation from the recent
// window: the background tune. gen is the id the new generation will carry.
// It runs logically in the background — the supervisor books its simulated
// duration on a worker slot — but is invoked synchronously and must be
// deterministic for replays to be reproducible.
type Retuner func(gen int, window []WindowEntry) (TimedServiceFunc, error)

// Generation is one immutable schedule set installed in the serving loop.
type Generation struct {
	// ID is the generation counter: 0 for the initial tune, +1 per swap.
	ID int
	// Swapped is the virtual time this generation went live (0 for ID 0).
	Swapped float64
	// Service measures the fused kernel compiled with this generation's
	// schedules.
	Service TimedServiceFunc
}

// LiveSet publishes the serving loop's current schedule-set generation for
// concurrent readers. A hot-swap is a single atomic pointer store of an
// immutable Generation, so a reader can never observe a torn (ID, Service)
// pair, and IDs are strictly monotone: once a reader has seen generation g,
// no later read returns an older one. Writers are serialized internally;
// readers are lock-free.
type LiveSet struct {
	mu  sync.Mutex // serializes Swap
	cur atomic.Pointer[Generation]
}

// NewLiveSet creates a live set holding generation 0.
func NewLiveSet(service TimedServiceFunc) *LiveSet {
	l := &LiveSet{}
	l.cur.Store(&Generation{ID: 0, Service: service})
	return l
}

// Current returns the live generation. The returned value is immutable.
func (l *LiveSet) Current() *Generation { return l.cur.Load() }

// Swap atomically installs service as the next generation, live from virtual
// time at, and returns it. In-flight work holding the previous *Generation
// keeps using it — hot-swap never invalidates a schedule set mid-request.
func (l *LiveSet) Swap(service TimedServiceFunc, at float64) *Generation {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := &Generation{ID: l.cur.Load().ID + 1, Swapped: at, Service: service}
	l.cur.Store(next)
	return next
}

// SupervisorConfig shapes the continuous serving loop.
type SupervisorConfig struct {
	// Server shapes the underlying engine (workers, queue, deadlines,
	// degradation policy).
	Server ServerConfig
	// Window is the sliding window length in admitted requests the drift
	// detector sees; 0 means 32.
	Window int
	// CheckEvery runs the drift detector every this many admissions once
	// the window is full; 0 means every Window admissions.
	CheckEvery int
	// TuneDuration is the simulated seconds a background re-tune occupies
	// its worker slot; 0 means 0.05 (50ms — roughly the paper's few-second
	// tuning budget scaled to the reproduction's microsecond kernels).
	TuneDuration float64
	// Cooldown is the minimum virtual time between a swap going live and
	// the next drift check; 0 disables the cooldown.
	Cooldown float64
	// MaxRetunes caps the number of background tunes per run; 0 means
	// unlimited.
	MaxRetunes int
}

// Validate checks the supervisor configuration.
func (c *SupervisorConfig) Validate() error {
	if err := c.Server.Validate(); err != nil {
		return err
	}
	switch {
	case c.Window < 0:
		return fmt.Errorf("trace: Window must be >= 0, got %d", c.Window)
	case c.CheckEvery < 0:
		return fmt.Errorf("trace: CheckEvery must be >= 0, got %d", c.CheckEvery)
	case c.TuneDuration < 0:
		return fmt.Errorf("trace: TuneDuration must be >= 0, got %g", c.TuneDuration)
	case c.Cooldown < 0:
		return fmt.Errorf("trace: Cooldown must be >= 0, got %g", c.Cooldown)
	case c.MaxRetunes < 0:
		return fmt.Errorf("trace: MaxRetunes must be >= 0, got %d", c.MaxRetunes)
	}
	return nil
}

func (c *SupervisorConfig) window() int {
	if c.Window == 0 {
		return 32
	}
	return c.Window
}

func (c *SupervisorConfig) checkEvery() int {
	if c.CheckEvery == 0 {
		return c.window()
	}
	return c.CheckEvery
}

func (c *SupervisorConfig) tuneDuration() float64 {
	if c.TuneDuration == 0 {
		return 0.05
	}
	return c.TuneDuration
}

// Supervisor is the continuous serving loop: the concurrent engine's replay
// plus online drift control. It watches a sliding window of admitted
// requests, runs the drift detector every CheckEvery admissions, launches a
// background re-tune on a simulated-GPU worker slot when drift is detected
// (serving keeps running on the remaining capacity), and hot-swaps the new
// schedule set in when the tune completes: admissions from the swap time on
// are served by the new generation, while earlier admissions — queued or in
// flight — finish on the generation they arrived under. Every swap is
// recorded in Metrics.Swaps with its generation id, tune duration and
// pre/post-swap latency split.
//
// Like Server, the replay is exact and deterministic: the same trace,
// detector and retuner always produce the same Report, which is what makes
// drifting-workload experiments reproducible and the deterministic-seed
// regression tests possible.
type Supervisor struct {
	cfg     SupervisorConfig
	service TimedServiceFunc
	detect  DriftDetector
	retune  Retuner
	live    *LiveSet

	mu   sync.Mutex
	last *Metrics
}

// NewSupervisor creates a continuous serving loop over generation-0 service.
// detect decides when the live schedule set is stale; retune builds the next
// generation when it is.
func NewSupervisor(cfg SupervisorConfig, service TimedServiceFunc, detect DriftDetector, retune Retuner) (*Supervisor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if service == nil {
		return nil, fmt.Errorf("trace: nil service function")
	}
	if detect == nil {
		return nil, fmt.Errorf("trace: nil drift detector")
	}
	if retune == nil {
		return nil, fmt.Errorf("trace: nil retuner")
	}
	return &Supervisor{
		cfg:     cfg,
		service: service,
		detect:  detect,
		retune:  retune,
		live:    NewLiveSet(service),
	}, nil
}

// Config returns the supervisor configuration.
func (sv *Supervisor) Config() SupervisorConfig { return sv.cfg }

// Live returns the generation store the supervisor publishes hot-swaps
// through. Concurrent observers (dashboards, co-serving admission paths) can
// read the current generation at any time; see LiveSet for the guarantees.
func (sv *Supervisor) Live() *LiveSet { return sv.live }

// Metrics returns a snapshot of the most recent run's observability data,
// or nil before the first Run.
func (sv *Supervisor) Metrics() *Metrics {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.last == nil {
		return nil
	}
	return sv.last.Clone()
}

// Run replays the request stream through the continuous loop and returns the
// exact virtual-time Report, with Generations stamping each request's
// schedule-set generation and Metrics.Swaps recording every hot-swap. It
// also installs the run's Metrics as the supervisor's current snapshot.
func (sv *Supervisor) Run(reqs []Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request stream")
	}
	sorted, order := arrivalOrder(reqs)

	// The generation history: in-flight entries resolve against the
	// generation stamped at their admission even after later swaps.
	gens := []TimedServiceFunc{sv.service}
	cur := 0
	// A tune in flight, waiting for its completion time to pass.
	var pendingSvc TimedServiceFunc
	var pendingAt float64
	var swaps []SwapEvent

	window := make([]WindowEntry, 0, sv.cfg.window())
	winFull := false
	sinceCheck := 0
	cooldownUntil := math.Inf(-1)

	admit := func(st *replayState, r Request, now float64) (int, error) {
		// Apply a completed background tune: the swap is live for this and
		// every later admission.
		if pendingSvc != nil && now >= pendingAt {
			gens = append(gens, pendingSvc)
			cur = len(gens) - 1
			sv.live.Swap(pendingSvc, pendingAt)
			pendingSvc = nil
		}

		// Slide the window and pace the drift checks.
		if len(window) == cap(window) {
			copy(window, window[1:])
			window = window[:len(window)-1]
			winFull = true
		}
		window = append(window, WindowEntry{Time: now, Size: r.Size})
		sinceCheck++

		if pendingSvc == nil && (winFull || len(window) == cap(window)) &&
			sinceCheck >= sv.cfg.checkEvery() && now >= cooldownUntil &&
			(sv.cfg.MaxRetunes == 0 || len(swaps) < sv.cfg.MaxRetunes) {
			sinceCheck = 0
			drifted, err := sv.detect(window)
			if err != nil {
				return 0, fmt.Errorf("trace: drift detector: %w", err)
			}
			if drifted {
				// Launch the background tune on the least-loaded worker:
				// the slot is booked for the tune's duration, so serving
				// capacity drops by one worker until the swap.
				newGen := len(swaps) + 1
				svc, err := sv.retune(newGen, window)
				if err != nil {
					return 0, fmt.Errorf("trace: re-tune for generation %d: %w", newGen, err)
				}
				if svc == nil {
					return 0, fmt.Errorf("trace: re-tune for generation %d returned nil service", newGen)
				}
				worker, start, end := st.Occupy(now, sv.cfg.tuneDuration())
				swaps = append(swaps, SwapEvent{
					Generation:   newGen,
					Detected:     now,
					Start:        start,
					Swapped:      end,
					Worker:       worker,
					TuneDuration: end - start,
				})
				pendingSvc = svc
				pendingAt = end
				cooldownUntil = end + sv.cfg.Cooldown
			}
		}
		return cur, nil
	}

	resolve := func(e *qentry) (float64, error) {
		return gens[e.gen](e.arrival, e.size)
	}

	rep, err := runReplay(sv.cfg.Server, sorted, order, resolve, admit)
	if err != nil {
		return nil, err
	}

	// A tune still pending at the end of the trace did complete — its swap
	// went live at pendingAt, serving just ended first — so it still counts
	// toward the final generation and is published.
	if pendingSvc != nil {
		sv.live.Swap(pendingSvc, pendingAt)
		pendingSvc = nil
	}

	// Pre/post-swap latency split: mean served sojourn per generation.
	sums := make([]float64, len(swaps)+1)
	counts := make([]int, len(swaps)+1)
	for i, g := range rep.Generations {
		if !math.IsNaN(rep.Sojourn[i]) {
			sums[g] += rep.Sojourn[i]
			counts[g]++
		}
	}
	meanOf := func(g int) float64 {
		if g < 0 || g >= len(counts) || counts[g] == 0 {
			return math.NaN()
		}
		return sums[g] / float64(counts[g])
	}
	for i := range swaps {
		swaps[i].PreMean = meanOf(swaps[i].Generation - 1)
		swaps[i].PostMean = meanOf(swaps[i].Generation)
	}

	met := rep.Metrics
	met.Generation = len(swaps)
	met.Swaps = swaps

	sv.mu.Lock()
	sv.last = met
	sv.mu.Unlock()
	return rep, nil
}
