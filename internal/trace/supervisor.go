package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// TimedServiceFunc returns the GPU service time of a request of the given
// size arriving at virtual time t. Time matters when the workload drifts:
// the same batch size retrieves more embedding rows after a pooling-factor
// shift, so a schedule set tuned before the shift serves it slower. A
// time-invariant workload can ignore t.
type TimedServiceFunc func(t float64, size int) (float64, error)

// Untimed adapts a plain ServiceFunc to the timed signature.
func Untimed(inner ServiceFunc) TimedServiceFunc {
	return func(_ float64, size int) (float64, error) { return inner(size) }
}

// MemoTimedService caches a timed service by (phase, size), where phaseOf
// collapses virtual time onto the workload's drift phases — e.g. the start
// time of the piecewise-constant drift step in effect at t — so one
// expensive kernel measurement per (phase, size) serves the whole trace.
// nil phaseOf means the workload is time-invariant and t is ignored.
// Same singleflight semantics as MemoService: safe for concurrent use, the
// inner measurement runs at most once per key, errors are memoized.
func MemoTimedService(inner TimedServiceFunc, phaseOf func(t float64) float64) TimedServiceFunc {
	type key struct {
		phase float64
		size  int
	}
	type entry struct {
		once sync.Once
		s    float64
		err  error
	}
	var mu sync.Mutex
	memo := make(map[key]*entry)
	return func(t float64, size int) (float64, error) {
		k := key{size: size}
		if phaseOf != nil {
			k.phase = phaseOf(t)
		}
		mu.Lock()
		e := memo[k]
		if e == nil {
			e = &entry{}
			memo[k] = e
		}
		mu.Unlock()
		e.once.Do(func() { e.s, e.err = inner(k.phase, size) })
		return e.s, e.err
	}
}

// WindowEntry is one admitted request in the supervisor's sliding window:
// what arrived and when, which is all a drift detector needs to reconstruct
// the recent workload (the batch content of a size at a time is
// deterministic in this system).
type WindowEntry struct {
	// Time is the request's arrival time in virtual seconds.
	Time float64
	// Size is the request's batch size.
	Size int
}

// DriftDetector inspects the sliding window of admitted requests and reports
// whether the workload has drifted far enough from the live schedule set's
// tuning-time profile that a re-tune is due. Serving callers back it with
// core.RecFlex.ShouldRetune over the window's batches.
type DriftDetector func(window []WindowEntry) (bool, error)

// Retuner builds the schedule set of the next generation from the recent
// window: the background tune. gen is the id the new generation will carry.
// It runs logically in the background — the supervisor books its simulated
// duration on a worker slot — but is invoked synchronously and must be
// deterministic for replays to be reproducible.
type Retuner func(gen int, window []WindowEntry) (TimedServiceFunc, error)

// Generation is one immutable schedule set installed in the serving loop.
type Generation struct {
	// ID is the generation counter: 0 for the initial tune, +1 per swap.
	ID int
	// Swapped is the virtual time this generation went live (0 for ID 0).
	Swapped float64
	// Service measures the fused kernel compiled with this generation's
	// schedules.
	Service TimedServiceFunc
}

// LiveSet publishes the serving loop's current schedule-set generation for
// concurrent readers. A hot-swap is a single atomic pointer store of an
// immutable Generation, so a reader can never observe a torn (ID, Service)
// pair, and IDs are strictly monotone: once a reader has seen generation g,
// no later read returns an older one. Writers are serialized internally;
// readers are lock-free.
type LiveSet struct {
	mu  sync.Mutex // serializes Swap
	cur atomic.Pointer[Generation]
}

// NewLiveSet creates a live set holding generation 0.
func NewLiveSet(service TimedServiceFunc) *LiveSet {
	l := &LiveSet{}
	l.cur.Store(&Generation{ID: 0, Service: service})
	return l
}

// Current returns the live generation. The returned value is immutable.
func (l *LiveSet) Current() *Generation { return l.cur.Load() }

// Swap atomically installs service as the next generation, live from virtual
// time at, and returns it. In-flight work holding the previous *Generation
// keeps using it — hot-swap never invalidates a schedule set mid-request.
func (l *LiveSet) Swap(service TimedServiceFunc, at float64) *Generation {
	l.mu.Lock()
	defer l.mu.Unlock()
	next := &Generation{ID: l.cur.Load().ID + 1, Swapped: at, Service: service}
	l.cur.Store(next)
	return next
}

// SupervisorConfig shapes the continuous serving loop.
type SupervisorConfig struct {
	// Server shapes the underlying engine (workers, queue, deadlines,
	// degradation policy).
	Server ServerConfig
	// Window is the sliding window length in admitted requests the drift
	// detector sees; 0 means 32.
	Window int
	// CheckEvery runs the drift detector every this many admissions once
	// the window is full; 0 means every Window admissions.
	CheckEvery int
	// TuneDuration is the simulated seconds a background re-tune occupies
	// its worker slot; 0 means 0.05 (50ms — roughly the paper's few-second
	// tuning budget scaled to the reproduction's microsecond kernels).
	TuneDuration float64
	// Cooldown is the minimum virtual time between a swap going live and
	// the next drift check; 0 disables the cooldown. A rollback arms the
	// same cooldown from the time its verdict lands.
	Cooldown float64
	// MaxRetunes caps the number of background tunes per run; 0 means
	// unlimited. Rollbacks do not count against the cap — they consume no
	// tune.
	MaxRetunes int
	// CanaryWindow enables the guarded-promotion canary: after a swap goes
	// live, the verdict is computed once this many requests admitted on the
	// new generation have completed. The baseline is the outgoing
	// generation's most recent CanaryWindow pre-swap completions. 0 leaves
	// the count-based closure off (promotions are unguarded unless
	// CanaryDuration is set).
	CanaryWindow int
	// CanaryDuration caps the canary window in virtual seconds after the
	// swap: when it expires the verdict is computed from the completions
	// seen so far (and the baseline covers the outgoing generation's
	// completions within the same span before the swap, when CanaryWindow
	// is 0). 0 disables the time cap. A canary still open when the trace
	// ends reaches no verdict and the promotion stands.
	CanaryDuration float64
	// RollbackMargin is the fractional degradation the canary tolerates:
	// the promotion is rolled back when the canary mean sojourn exceeds the
	// matched baseline mean by more than this factor (0 rolls back on any
	// measured degradation). Only meaningful with the canary enabled.
	RollbackMargin float64
}

// Validate checks the supervisor configuration.
func (c *SupervisorConfig) Validate() error {
	if err := c.Server.Validate(); err != nil {
		return err
	}
	switch {
	case c.Window < 0:
		return fmt.Errorf("trace: Window must be >= 0, got %d", c.Window)
	case c.CheckEvery < 0:
		return fmt.Errorf("trace: CheckEvery must be >= 0, got %d", c.CheckEvery)
	case c.TuneDuration < 0:
		return fmt.Errorf("trace: TuneDuration must be >= 0, got %g", c.TuneDuration)
	case c.Cooldown < 0:
		return fmt.Errorf("trace: Cooldown must be >= 0, got %g", c.Cooldown)
	case c.MaxRetunes < 0:
		return fmt.Errorf("trace: MaxRetunes must be >= 0, got %d", c.MaxRetunes)
	case c.CanaryWindow < 0:
		return fmt.Errorf("trace: CanaryWindow must be >= 0, got %d", c.CanaryWindow)
	case c.CanaryDuration < 0:
		return fmt.Errorf("trace: CanaryDuration must be >= 0, got %g", c.CanaryDuration)
	case c.RollbackMargin < 0:
		return fmt.Errorf("trace: RollbackMargin must be >= 0, got %g", c.RollbackMargin)
	}
	return nil
}

// canaryEnabled reports whether promotions are guarded.
func (c *SupervisorConfig) canaryEnabled() bool {
	return c.CanaryWindow > 0 || c.CanaryDuration > 0
}

func (c *SupervisorConfig) window() int {
	if c.Window == 0 {
		return 32
	}
	return c.Window
}

func (c *SupervisorConfig) checkEvery() int {
	if c.CheckEvery == 0 {
		return c.window()
	}
	return c.CheckEvery
}

func (c *SupervisorConfig) tuneDuration() float64 {
	if c.TuneDuration == 0 {
		return 0.05
	}
	return c.TuneDuration
}

// Supervisor is the continuous serving loop: the concurrent engine's replay
// plus online drift control. It watches a sliding window of admitted
// requests, runs the drift detector every CheckEvery admissions, launches a
// background re-tune on a simulated-GPU worker slot when drift is detected
// (serving keeps running on the remaining capacity), and hot-swaps the new
// schedule set in when the tune completes: admissions from the swap time on
// are served by the new generation, while earlier admissions — queued or in
// flight — finish on the generation they arrived under. Every swap is
// recorded in Metrics.Swaps with its generation id, tune duration and
// pre/post-swap latency split.
//
// With the canary guard enabled (SupervisorConfig.CanaryWindow or
// CanaryDuration), every promotion is revocable: after the swap goes live a
// canary window opens, the new generation's served sojourns are compared
// against the outgoing generation's most recent pre-swap completions over
// matched size quartiles, and a promotion measuring worse than the baseline
// by more than RollbackMargin is atomically rolled back — a forward
// LiveSet.Swap to a new, strictly higher generation id that reuses the
// previous service, so observers never see an id regress.
//
// Like Server, the replay is exact and deterministic: the same trace,
// detector and retuner always produce the same Report — including canary
// verdicts and rollback timing — which is what makes drifting-workload
// experiments reproducible and the deterministic-seed regression tests
// possible.
//
// Concurrent Run calls on one Supervisor are serialized: overlapping replays
// would interleave their hot-swaps on the shared LiveSet and break the
// monotone-generation guarantee observers rely on.
type Supervisor struct {
	cfg     SupervisorConfig
	service TimedServiceFunc
	detect  DriftDetector
	retune  Retuner
	live    *LiveSet

	// runMu serializes Run (see the type comment); mu only guards the
	// metrics snapshot, matching Server's locking split.
	runMu      sync.Mutex
	onRollback func(rollbackGen, reinstated int)

	mu   sync.Mutex
	last *Metrics
}

// NewSupervisor creates a continuous serving loop over generation-0 service.
// detect decides when the live schedule set is stale; retune builds the next
// generation when it is.
func NewSupervisor(cfg SupervisorConfig, service TimedServiceFunc, detect DriftDetector, retune Retuner) (*Supervisor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if service == nil {
		return nil, fmt.Errorf("trace: nil service function")
	}
	if detect == nil {
		return nil, fmt.Errorf("trace: nil drift detector")
	}
	if retune == nil {
		return nil, fmt.Errorf("trace: nil retuner")
	}
	return &Supervisor{
		cfg:     cfg,
		service: service,
		detect:  detect,
		retune:  retune,
		live:    NewLiveSet(service),
	}, nil
}

// Config returns the supervisor configuration.
func (sv *Supervisor) Config() SupervisorConfig { return sv.cfg }

// Live returns the generation store the supervisor publishes hot-swaps
// through. Concurrent observers (dashboards, co-serving admission paths) can
// read the current generation at any time; see LiveSet for the guarantees.
func (sv *Supervisor) Live() *LiveSet { return sv.live }

// OnRollback registers fn to be called synchronously from Run whenever a
// canary verdict rolls a promotion back: rollbackGen is the new generation
// id the rollback installed, reinstated the generation whose service it
// reuses. Serving callers use it to keep their per-generation state (e.g.
// which tuned instance is live) in step with the supervisor. Must be set
// before Run; a nil fn clears it.
func (sv *Supervisor) OnRollback(fn func(rollbackGen, reinstated int)) {
	sv.onRollback = fn
}

// Metrics returns a snapshot of the most recent run's observability data,
// or nil before the first Run.
func (sv *Supervisor) Metrics() *Metrics {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.last == nil {
		return nil
	}
	return sv.last.Clone()
}

// completion is one served request as the canary sees it: what size
// finished, when, and how long it took end to end.
type completion struct {
	size    int
	end     float64
	sojourn float64
}

// completedBy returns the completions with end <= t. Completions are
// recorded in dispatch order, so end times are not monotone and a filter
// (not a prefix) is required.
func completedBy(cs []completion, t float64) []completion {
	var out []completion
	for _, c := range cs {
		if c.end <= t {
			out = append(out, c)
		}
	}
	return out
}

// canaryBaseline selects the outgoing generation's pre-swap completions the
// canary verdict compares against: the newest n by completion time when the
// count-based window is configured, otherwise everything completing within
// dur seconds before the swap. Recency matters — after a drift, only the
// recent completions reflect the workload the new generation actually
// serves, so an older baseline would conflate workload change with schedule
// quality.
func canaryBaseline(cs []completion, swapAt float64, n int, dur float64) []completion {
	pre := completedBy(cs, swapAt)
	sort.SliceStable(pre, func(a, b int) bool { return pre[a].end < pre[b].end })
	if n > 0 {
		if len(pre) > n {
			pre = pre[len(pre)-n:]
		}
		return pre
	}
	cut := swapAt - dur
	for len(pre) > 0 && pre[0].end < cut {
		pre = pre[1:]
	}
	return pre
}

// canaryVerdict compares canary completions against the baseline over
// matched size quartiles: baseline sizes define four quartile bins, each
// bin's baseline mean sojourn is weighted by the canary's traffic in that
// bin, and only bins populated on both sides count. The result is the
// canary's mean sojourn over matched bins and the baseline mean re-weighted
// to the canary's size mix — an apples-to-apples answer to "would the old
// generation have served these sizes faster?". matched is the number of
// canary completions compared; 0 means no verdict (either side empty or no
// overlapping bins).
func canaryVerdict(baseline, canary []completion) (canaryMean, baselineMean float64, matched int) {
	if len(baseline) == 0 || len(canary) == 0 {
		return 0, 0, 0
	}
	sizes := make([]int, len(baseline))
	for i, c := range baseline {
		sizes[i] = c.size
	}
	sort.Ints(sizes)
	// Nearest-rank quartile boundaries of the baseline size distribution.
	bound := func(p float64) int {
		idx := int(math.Ceil(p*float64(len(sizes)))) - 1
		if idx < 0 {
			idx = 0
		}
		return sizes[idx]
	}
	q1, q2, q3 := bound(0.25), bound(0.50), bound(0.75)
	binOf := func(size int) int {
		switch {
		case size <= q1:
			return 0
		case size <= q2:
			return 1
		case size <= q3:
			return 2
		default:
			return 3
		}
	}
	var bSum, cSum [4]float64
	var bCnt, cCnt [4]int
	for _, c := range baseline {
		b := binOf(c.size)
		bSum[b] += c.sojourn
		bCnt[b]++
	}
	for _, c := range canary {
		b := binOf(c.size)
		cSum[b] += c.sojourn
		cCnt[b]++
	}
	var cs, bs float64
	for b := 0; b < 4; b++ {
		if bCnt[b] == 0 || cCnt[b] == 0 {
			continue
		}
		cs += cSum[b]
		bs += bSum[b] / float64(bCnt[b]) * float64(cCnt[b])
		matched += cCnt[b]
	}
	if matched == 0 {
		return 0, 0, 0
	}
	return cs / float64(matched), bs / float64(matched), matched
}

// canaryRun is one open canary window: the promotion under evaluation and
// the baseline snapshotted when it went live.
type canaryRun struct {
	swapIdx  int // index into swaps of the promotion being evaluated
	gen      int // generation under canary
	prev     int // generation to reinstate on rollback
	openedAt float64
	baseline []completion
}

// Run replays the request stream through the continuous loop and returns the
// exact virtual-time Report, with Generations stamping each request's
// schedule-set generation and Metrics.Swaps recording every hot-swap
// (rollbacks included). It also installs the run's Metrics as the
// supervisor's current snapshot. Concurrent calls are serialized; see the
// type comment.
//
// The run's per-admission drift control lives in LoopControl, shared with
// the fleet pool's multi-model replay; Run is the single-model wiring of
// that control into the trace replay engine.
func (sv *Supervisor) Run(reqs []Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("trace: empty request stream")
	}
	lc := sv.BeginRun()
	sorted, order := arrivalOrder(reqs)

	admit := func(st *replayState, r Request, now float64) (int, error) {
		return lc.Admit(st, r.Size, now)
	}
	resolve := func(e *qentry) (float64, error) {
		return lc.Resolve(e.gen, e.arrival, e.size)
	}

	rep, err := runReplay(sv.cfg.Server, sorted, order, resolve, admit, lc.Observe)
	if err != nil {
		lc.Abort()
		return nil, err
	}
	lc.Finalize(rep)
	return rep, nil
}
