package trace

import (
	"fmt"
	"math"
)

// DegradePolicy selects what the serving engine does with a request whose
// deadline cannot be met at dispatch time.
type DegradePolicy int

const (
	// DegradeSplitTail is the default serving policy. An unsplit long-tail
	// request (Size > SplitCap) that would miss its deadline as one kernel
	// is split at the cap into chunks — the split-at-cap fallback. Each
	// chunk re-enters least-loaded dispatch as its own unit of work, reusing
	// the fused kernel's runtime thread mapping at the (well-tuned) capped
	// size, so a 2,560-sample DeepRecSys-style request degrades into five
	// 512-sample kernels instead of monopolizing one GPU. Requests at or
	// below the cap are never shed: they are served even if late (counted
	// as Timeouts). A tail request is shed only when it cannot even start
	// before its deadline, or when it must make room in a full admission
	// queue.
	DegradeSplitTail DegradePolicy = iota
	// DegradeServe serves every admitted request to completion; deadline
	// misses are only counted (Timeouts), never acted on.
	DegradeServe
	// DegradeShed sheds any request that would complete after its deadline,
	// regardless of size.
	DegradeShed
)

func (p DegradePolicy) String() string {
	switch p {
	case DegradeSplitTail:
		return "split-tail"
	case DegradeServe:
		return "serve-all"
	case DegradeShed:
		return "shed"
	default:
		return fmt.Sprintf("DegradePolicy(%d)", int(p))
	}
}

// ParseDegradePolicy maps a policy's String form back to its value — the
// flag-parsing inverse used by recflex-serve's -degrade flag.
func ParseDegradePolicy(s string) (DegradePolicy, error) {
	switch s {
	case "split-tail", "split":
		return DegradeSplitTail, nil
	case "serve-all", "serve":
		return DegradeServe, nil
	case "shed":
		return DegradeShed, nil
	}
	return 0, fmt.Errorf("trace: unknown degrade policy %q (want split-tail, serve-all or shed)", s)
}

// QueuePolicy is the queue-shaping half of a serving configuration: worker
// count, admission-queue bound, default deadline, degradation policy and
// split threshold. It is the single home of the queue-policy constants and
// validation shared by the single-model ServerConfig and the multi-model
// fleet pool configuration — both compose it rather than re-declaring (and
// re-validating) the same fields.
type QueuePolicy struct {
	// Workers is the number of simulated GPUs (k in M/G/k); 0 means 1.
	Workers int
	// QueueDepth bounds the admission queue; 0 means unbounded.
	QueueDepth int
	// Deadline is the default per-request completion deadline in seconds
	// after arrival; 0 disables deadlines.
	Deadline float64
	// Policy is the degradation policy (default DegradeSplitTail).
	Policy DegradePolicy
	// SplitCap is the size above which a request counts as an unsplit
	// long-tail batch; 0 disables splitting and tail special-casing.
	SplitCap int
}

// Validate checks the queue policy.
func (p *QueuePolicy) Validate() error {
	switch {
	case p.Workers < 0:
		return fmt.Errorf("trace: Workers must be >= 0, got %d", p.Workers)
	case p.QueueDepth < 0:
		return fmt.Errorf("trace: QueueDepth must be >= 0, got %d", p.QueueDepth)
	case p.Deadline < 0:
		return fmt.Errorf("trace: Deadline must be >= 0, got %g", p.Deadline)
	case p.SplitCap < 0:
		return fmt.Errorf("trace: SplitCap must be >= 0, got %d", p.SplitCap)
	case p.Policy < DegradeSplitTail || p.Policy > DegradeShed:
		return fmt.Errorf("trace: unknown policy %d", int(p.Policy))
	}
	return nil
}

// EffectiveWorkers returns the worker count with the zero-value default
// applied (0 means one simulated GPU).
func (p *QueuePolicy) EffectiveWorkers() int {
	if p.Workers == 0 {
		return 1
	}
	return p.Workers
}

// IsTail reports whether a request of this size is an unsplit long-tail
// batch under the configured cap — the precondition for the DegradeSplitTail
// fallback. False whenever SplitCap is 0 (splitting disabled).
func (p *QueuePolicy) IsTail(size int) bool {
	return p.SplitCap > 0 && size > p.SplitCap
}

// ChunkSizes returns the split-at-cap decomposition of a tail size: SplitCap
// repeated, plus the remainder. Both the single-model engine and the fleet
// pool dispatch these chunks as independent units of work.
func (p *QueuePolicy) ChunkSizes(size int) []int {
	cap := p.SplitCap
	var out []int
	for size > cap {
		out = append(out, cap)
		size -= cap
	}
	if size > 0 {
		out = append(out, size)
	}
	return out
}

// DeadlineFor resolves a request's absolute completion deadline under this
// policy: the request's own deadline when set, otherwise the policy default;
// +Inf when neither applies.
func (p *QueuePolicy) DeadlineFor(r Request) float64 {
	d := r.Deadline
	if d == 0 {
		d = p.Deadline
	}
	if d == 0 {
		return math.Inf(1)
	}
	return r.Arrival + d
}
