// Package preproc implements the "larger fusion scopes" extension of the
// paper's Discussion (§VII): numerical preprocess operators that run on the
// lookup IDs before the embedding operation — hashing raw IDs into the table
// space, clipping pooling factors, deduplicating IDs. RECom-style models
// carry such operators in their embedding subgraphs; fusing them into the
// embedding kernel removes kernel launches and a full round trip of the ID
// stream through device memory.
//
// The package provides the operators themselves (exact functional semantics
// over CSR feature batches), the cost of executing them fused into an
// embedding plan (extra compute per ID), and the cost of the unfused
// alternative (a standalone transform kernel per feature), so the benefit of
// fusion is measurable on the simulator.
package preproc

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// Op transforms the lookup-ID stream of one feature.
type Op interface {
	// Name identifies the operator.
	Name() string
	// Apply returns the transformed feature batch. tableRows bounds the
	// output ID space.
	Apply(fb *embedding.FeatureBatch, tableRows int) embedding.FeatureBatch
	// CyclesPerID is the warp-instruction cost of transforming one ID.
	CyclesPerID() float64
	// Validate checks the operator parameters.
	Validate() error
}

// HashMod maps raw IDs into [0, tableRows) with a multiplicative hash — the
// standard string-hash → table-index step of production feature pipelines.
type HashMod struct {
	Seed uint64
}

// Name implements Op.
func (h HashMod) Name() string { return fmt.Sprintf("hashmod(%d)", h.Seed) }

// Validate implements Op.
func (HashMod) Validate() error { return nil }

// CyclesPerID implements Op.
func (HashMod) CyclesPerID() float64 { return 6 }

// Apply implements Op.
func (h HashMod) Apply(fb *embedding.FeatureBatch, tableRows int) embedding.FeatureBatch {
	out := embedding.FeatureBatch{
		Indices: make([]int32, len(fb.Indices)),
		Offsets: append([]int32(nil), fb.Offsets...),
	}
	for i, id := range fb.Indices {
		x := uint64(id) ^ h.Seed
		x *= 0x9E3779B97F4A7C15
		x ^= x >> 29
		out.Indices[i] = int32(x % uint64(tableRows))
	}
	return out
}

// Clip truncates every sample's ID list to at most MaxPF entries — the
// pooling-factor cap production pipelines apply to runaway multi-hot
// features.
type Clip struct {
	MaxPF int
}

// Name implements Op.
func (c Clip) Name() string { return fmt.Sprintf("clip(%d)", c.MaxPF) }

// Validate implements Op.
func (c Clip) Validate() error {
	if c.MaxPF < 1 {
		return fmt.Errorf("preproc: clip bound must be >= 1, got %d", c.MaxPF)
	}
	return nil
}

// CyclesPerID implements Op.
func (Clip) CyclesPerID() float64 { return 1 }

// Apply implements Op.
func (c Clip) Apply(fb *embedding.FeatureBatch, _ int) embedding.FeatureBatch {
	out := embedding.FeatureBatch{Offsets: make([]int32, 1, len(fb.Offsets))}
	for s := 0; s < fb.BatchSize(); s++ {
		ids := fb.Sample(s)
		if len(ids) > c.MaxPF {
			ids = ids[:c.MaxPF]
		}
		out.Indices = append(out.Indices, ids...)
		out.Offsets = append(out.Offsets, int32(len(out.Indices)))
	}
	return out
}

// Dedup removes duplicate IDs within each sample (keeping first occurrence),
// turning sum pooling over repeated IDs into set semantics.
type Dedup struct{}

// Name implements Op.
func (Dedup) Name() string { return "dedup" }

// Validate implements Op.
func (Dedup) Validate() error { return nil }

// CyclesPerID implements Op.
func (Dedup) CyclesPerID() float64 { return 8 }

// Apply implements Op.
func (Dedup) Apply(fb *embedding.FeatureBatch, _ int) embedding.FeatureBatch {
	out := embedding.FeatureBatch{Offsets: make([]int32, 1, len(fb.Offsets))}
	seen := make(map[int32]struct{})
	for s := 0; s < fb.BatchSize(); s++ {
		clear(seen)
		for _, id := range fb.Sample(s) {
			if _, ok := seen[id]; ok {
				continue
			}
			seen[id] = struct{}{}
			out.Indices = append(out.Indices, id)
		}
		out.Offsets = append(out.Offsets, int32(len(out.Indices)))
	}
	return out
}

// ApplyAll runs a pipeline of operators.
func ApplyAll(ops []Op, fb *embedding.FeatureBatch, tableRows int) (embedding.FeatureBatch, error) {
	cur := *fb
	for _, op := range ops {
		if err := op.Validate(); err != nil {
			return embedding.FeatureBatch{}, err
		}
		cur = op.Apply(&cur, tableRows)
	}
	return cur, nil
}

// PipelineCyclesPerID sums the per-ID cost of a pipeline.
func PipelineCyclesPerID(ops []Op) float64 {
	total := 0.0
	for _, op := range ops {
		total += op.CyclesPerID()
	}
	return total
}

// FuseIntoPlan charges the pipeline's transform cost to the embedding plan's
// blocks, each block paying for the IDs of the samples it owns. The ID
// stream stays in registers — no extra memory traffic, no extra kernel.
func FuseIntoPlan(p *sched.Plan, w *sched.Workload, ops []Op) {
	cost := PipelineCyclesPerID(ops)
	if cost == 0 {
		return
	}
	for b := 0; b < p.NumBlocks; b++ {
		ids := 0
		for s := p.SampleLo[b]; s < p.SampleHi[b]; s++ {
			idx := int(s)
			if p.Perm != nil {
				idx = int(p.Perm[s])
			}
			ids += w.PF[idx]
		}
		p.Blocks[b].CompCycles += float64(ids) * cost
	}
}

// SeparateKernel models the unfused alternative: a standalone elementwise
// transform kernel that reads the ID stream from device memory, applies the
// pipeline and writes it back, before the embedding kernel runs.
func SeparateKernel(dev *gpusim.Device, w *sched.Workload, ops []Op) gpusim.Kernel {
	const idsPerBlock = 256 * 4
	numBlocks := (w.TotalRows + idsPerBlock - 1) / idsPerBlock
	if numBlocks < 1 {
		numBlocks = 1
	}
	cost := PipelineCyclesPerID(ops)
	bytes := float64(w.TotalRows) * 4 * 2 / float64(numBlocks) // read + write IDs
	blocks := make([]gpusim.BlockWork, numBlocks)
	for i := range blocks {
		blocks[i] = gpusim.BlockWork{
			CompCycles:  float64(w.TotalRows) * (cost + 2) / float64(numBlocks),
			DRAMBytes:   bytes,
			MemRequests: bytes / 128,
			Warps:       8,
			ActiveFrac:  1,
			Tag:         -1,
		}
	}
	return gpusim.Kernel{
		Name:                  "preproc_separate",
		Resources:             gpusim.KernelResources{ThreadsPerBlock: 256, RegsPerThread: 24},
		Blocks:                blocks,
		IncludeLaunchOverhead: true,
	}
}
