package preproc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

func randomFB(rng *rand.Rand, batch, rows, maxPF int) embedding.FeatureBatch {
	perSample := make([][]int32, batch)
	for i := range perSample {
		pf := rng.Intn(maxPF + 1)
		ids := make([]int32, pf)
		for j := range ids {
			ids[j] = int32(rng.Intn(rows))
		}
		perSample[i] = ids
	}
	return embedding.NewFeatureBatch(perSample)
}

func TestHashModInRangeAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	fb := randomFB(rng, 50, 1<<20, 12)
	h := HashMod{Seed: 7}
	a := h.Apply(&fb, 1000)
	b := h.Apply(&fb, 1000)
	if err := a.Validate(1000); err != nil {
		t.Fatalf("hashed batch invalid: %v", err)
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] {
			t.Fatal("hash not deterministic")
		}
	}
	if a.BatchSize() != fb.BatchSize() || a.TotalRows() != fb.TotalRows() {
		t.Error("hash must preserve shape")
	}
	other := HashMod{Seed: 8}.Apply(&fb, 1000)
	same := true
	for i := range a.Indices {
		if a.Indices[i] != other.Indices[i] {
			same = false
			break
		}
	}
	if same && len(a.Indices) > 10 {
		t.Error("different seeds should hash differently")
	}
}

func TestClipBoundsPoolingFactors(t *testing.T) {
	fb := embedding.NewFeatureBatch([][]int32{{1, 2, 3, 4, 5}, {9}, {}})
	c := Clip{MaxPF: 2}
	out := c.Apply(&fb, 100)
	if out.PoolingFactor(0) != 2 || out.PoolingFactor(1) != 1 || out.PoolingFactor(2) != 0 {
		t.Errorf("clip wrong: %d %d %d", out.PoolingFactor(0), out.PoolingFactor(1), out.PoolingFactor(2))
	}
	// First entries kept.
	if got := out.Sample(0); got[0] != 1 || got[1] != 2 {
		t.Errorf("clip must keep leading IDs, got %v", got)
	}
	if err := (Clip{MaxPF: 0}).Validate(); err == nil {
		t.Error("clip bound 0 accepted")
	}
}

func TestDedupRemovesWithinSampleDuplicates(t *testing.T) {
	fb := embedding.NewFeatureBatch([][]int32{{1, 1, 2, 1, 3}, {5, 5}, {}})
	out := Dedup{}.Apply(&fb, 100)
	if got := out.Sample(0); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("dedup sample 0 = %v", got)
	}
	if out.PoolingFactor(1) != 1 || out.PoolingFactor(2) != 0 {
		t.Errorf("dedup wrong on samples 1/2")
	}
	// Duplicates across samples must survive.
	fb2 := embedding.NewFeatureBatch([][]int32{{7}, {7}})
	out2 := Dedup{}.Apply(&fb2, 100)
	if out2.TotalRows() != 2 {
		t.Error("dedup must be per-sample, not global")
	}
}

// Property: pipelines always produce structurally valid CSR batches.
func TestPipelineValidityProperty(t *testing.T) {
	f := func(seed int64, batchRaw, clipRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		batch := 1 + int(batchRaw)%60
		fb := randomFB(rng, batch, 1<<16, 20)
		ops := []Op{HashMod{Seed: uint64(seed)}, Clip{MaxPF: 1 + int(clipRaw)%10}, Dedup{}}
		out, err := ApplyAll(ops, &fb, 512)
		if err != nil {
			return false
		}
		return out.Validate(512) == nil && out.BatchSize() == batch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestApplyAllValidates(t *testing.T) {
	fb := embedding.NewFeatureBatch([][]int32{{1}})
	if _, err := ApplyAll([]Op{Clip{MaxPF: 0}}, &fb, 10); err == nil {
		t.Error("invalid op accepted")
	}
}

func TestFuseIntoPlanChargesPerID(t *testing.T) {
	dev := gpusim.V100()
	pf := []int{4, 0, 2, 6, 1, 3, 5, 7}
	w := sched.Workload{Dim: 8, BatchSize: 8, PF: pf, TotalRows: 28, UniqueRows: 28, TableRows: 1 << 12}
	s := sched.SubWarp{Threads: 64, Lanes: 8, Vec: 1, UnrollRows: 1}
	l2 := sched.L2Context{CacheBytes: 1 << 22, WorkingSetBytes: 1 << 22}
	base, err := s.Plan(&w, dev, l2)
	if err != nil {
		t.Fatal(err)
	}
	fused, err := s.Plan(&w, dev, l2)
	if err != nil {
		t.Fatal(err)
	}
	ops := []Op{HashMod{Seed: 1}, Dedup{}}
	FuseIntoPlan(fused, &w, ops)
	var baseComp, fusedComp float64
	for b := 0; b < base.NumBlocks; b++ {
		baseComp += base.Blocks[b].CompCycles
		fusedComp += fused.Blocks[b].CompCycles
	}
	wantDelta := float64(w.TotalRows) * PipelineCyclesPerID(ops)
	if got := fusedComp - baseComp; got != wantDelta {
		t.Errorf("fused delta %g, want %g", got, wantDelta)
	}
	// Memory work untouched: IDs stay in registers.
	for b := 0; b < base.NumBlocks; b++ {
		if base.Blocks[b].DRAMBytes != fused.Blocks[b].DRAMBytes {
			t.Error("fusion must not add memory traffic")
		}
	}
}

// Fusing the pipeline must beat the separate transform kernel: no extra
// launch, no ID-stream round trip.
func TestFusionBeatsSeparateKernel(t *testing.T) {
	dev := gpusim.V100()
	rng := rand.New(rand.NewSource(9))
	fb := randomFB(rng, 512, 1<<16, 60)
	w := sched.AnalyzeWorkload(&fb, 32, 1<<16)
	s := sched.SubWarp{Threads: 256, Lanes: 16, Vec: 4, UnrollRows: 1}
	l2 := sched.L2Context{CacheBytes: float64(dev.L2SizeBytes), WorkingSetBytes: 1 << 24}
	ops := []Op{HashMod{Seed: 3}, Clip{MaxPF: 40}}

	measure := func(p *sched.Plan) float64 {
		k := &gpusim.Kernel{Name: "emb", Resources: s.Resources(32), Blocks: p.Blocks}
		r, err := gpusim.Simulate(dev, k)
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	fusedPlan, err := s.Plan(&w, dev, l2)
	if err != nil {
		t.Fatal(err)
	}
	FuseIntoPlan(fusedPlan, &w, ops)
	fusedTime := measure(fusedPlan)

	sepPlan, err := s.Plan(&w, dev, l2)
	if err != nil {
		t.Fatal(err)
	}
	sepKernel := SeparateKernel(dev, &w, ops)
	sepRes, err := gpusim.Simulate(dev, &sepKernel)
	if err != nil {
		t.Fatal(err)
	}
	sepTime := sepRes.Time + measure(sepPlan)
	if fusedTime >= sepTime {
		t.Errorf("fused pipeline (%g) should beat separate kernels (%g)", fusedTime, sepTime)
	}
}

// End-to-end semantics: pooling the transformed batch equals the reference
// on the transformed batch (transform exactness), for a full pipeline.
func TestTransformedPoolingCorrect(t *testing.T) {
	dev := gpusim.V100()
	tbl, err := embedding.NewDeterministicTable("t", 512, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	raw := randomFB(rng, 64, 1<<20, 15)
	ops := []Op{HashMod{Seed: 5}, Clip{MaxPF: 8}, Dedup{}}
	fb, err := ApplyAll(ops, &raw, tbl.Rows)
	if err != nil {
		t.Fatal(err)
	}
	w := sched.AnalyzeWorkload(&fb, tbl.Dim, tbl.Rows)
	s := sched.ThreadPerSample{Threads: 64, Unroll: 2}
	p, err := s.Plan(&w, dev, sched.L2Context{CacheBytes: 1 << 22, WorkingSetBytes: 1 << 22})
	if err != nil {
		t.Fatal(err)
	}
	FuseIntoPlan(p, &w, ops)
	want, err := embedding.PoolCPU(tbl, &fb, embedding.PoolSum)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float32, len(want))
	p.ExecuteAll(tbl, &fb, embedding.PoolSum, got)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("out[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestOpNames(t *testing.T) {
	h := HashMod{Seed: 7}
	c := Clip{MaxPF: 3}
	if h.Name() == "" || c.Name() == "" || (Dedup{}).Name() == "" {
		t.Error("empty op names")
	}
	if PipelineCyclesPerID(nil) != 0 {
		t.Error("empty pipeline should cost 0")
	}
}
