// Package embedding implements the embedding-layer substrate of a deep
// recommendation model: embedding tables, CSR-encoded lookup batches, and the
// pooling operations (sum / mean / max elementwise reduction) that turn the
// rows retrieved for one sample into a single output vector.
//
// The package also provides a straightforward CPU reference executor. Every
// GPU schedule template in internal/sched must produce output identical to
// this reference — schedules change how work maps to hardware, never what is
// computed — and the property tests enforce exactly that.
package embedding

import (
	"fmt"
	"math"
)

// Table is one embedding table: Rows vectors of Dim float32 values stored in
// row-major order.
type Table struct {
	Name string
	Rows int
	Dim  int
	Data []float32
}

// NewTable allocates a zero-initialized table.
func NewTable(name string, rows, dim int) (*Table, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("embedding: table %q: rows and dim must be positive, got %d x %d", name, rows, dim)
	}
	return &Table{Name: name, Rows: rows, Dim: dim, Data: make([]float32, rows*dim)}, nil
}

// NewDeterministicTable allocates a table whose contents are a pure function
// of (seed, row, col), so tests and experiments are reproducible without
// storing gigabytes of weights.
func NewDeterministicTable(name string, rows, dim int, seed uint64) (*Table, error) {
	t, err := NewTable(name, rows, dim)
	if err != nil {
		return nil, err
	}
	for r := 0; r < rows; r++ {
		base := r * dim
		for c := 0; c < dim; c++ {
			t.Data[base+c] = hashFloat(seed, uint64(r), uint64(c))
		}
	}
	return t, nil
}

// Row returns the r-th embedding vector as a slice aliasing the table data.
func (t *Table) Row(r int) []float32 {
	return t.Data[r*t.Dim : (r+1)*t.Dim]
}

// SizeBytes returns the table footprint in bytes.
func (t *Table) SizeBytes() int64 { return int64(len(t.Data)) * 4 }

// Validate checks structural invariants.
func (t *Table) Validate() error {
	if t.Rows <= 0 || t.Dim <= 0 {
		return fmt.Errorf("embedding: table %q: invalid shape %dx%d", t.Name, t.Rows, t.Dim)
	}
	if len(t.Data) != t.Rows*t.Dim {
		return fmt.Errorf("embedding: table %q: data length %d != %d*%d", t.Name, len(t.Data), t.Rows, t.Dim)
	}
	return nil
}

// hashFloat maps (seed,row,col) to a float32 in [-1, 1) via splitmix64.
func hashFloat(seed, r, c uint64) float32 {
	x := seed ^ (r * 0x9E3779B97F4A7C15) ^ (c * 0xBF58476D1CE4E5B9)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	// Take 24 mantissa bits for an exact float32 in [0,1), then shift.
	f := float64(x>>40) / float64(1<<24)
	return float32(2*f - 1)
}

// MaxNegative is the identity element of max pooling.
const MaxNegative = float32(-math.MaxFloat32)
