package embedding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustTable(t *testing.T, rows, dim int, seed uint64) *Table {
	t.Helper()
	tbl, err := NewDeterministicTable("t", rows, dim, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randomFeatureBatch(rng *rand.Rand, batch, rows, maxPF int) FeatureBatch {
	perSample := make([][]int32, batch)
	for i := range perSample {
		pf := rng.Intn(maxPF + 1)
		ids := make([]int32, pf)
		for j := range ids {
			ids[j] = int32(rng.Intn(rows))
		}
		perSample[i] = ids
	}
	return NewFeatureBatch(perSample)
}

func TestNewTableRejectsBadShapes(t *testing.T) {
	for _, c := range [][2]int{{0, 8}, {8, 0}, {-1, 4}, {4, -1}} {
		if _, err := NewTable("bad", c[0], c[1]); err == nil {
			t.Errorf("NewTable(%d,%d) accepted", c[0], c[1])
		}
	}
}

func TestDeterministicTableReproducible(t *testing.T) {
	a := mustTable(t, 100, 16, 42)
	b := mustTable(t, 100, 16, 42)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatalf("data diverges at %d", i)
		}
	}
	c := mustTable(t, 100, 16, 43)
	same := true
	for i := range a.Data {
		if a.Data[i] != c.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical tables")
	}
}

func TestDeterministicTableValueRange(t *testing.T) {
	tbl := mustTable(t, 500, 32, 7)
	for i, v := range tbl.Data {
		if v < -1 || v >= 1 || math.IsNaN(float64(v)) {
			t.Fatalf("Data[%d] = %g outside [-1,1)", i, v)
		}
	}
}

func TestTableRowAliasing(t *testing.T) {
	tbl := mustTable(t, 10, 4, 1)
	row := tbl.Row(3)
	row[0] = 99
	if tbl.Data[12] != 99 {
		t.Error("Row must alias table storage")
	}
	if tbl.SizeBytes() != 10*4*4 {
		t.Errorf("SizeBytes = %d, want 160", tbl.SizeBytes())
	}
}

func TestFeatureBatchAccessors(t *testing.T) {
	fb := NewFeatureBatch([][]int32{{1, 2, 3}, {}, {5}})
	if fb.BatchSize() != 3 {
		t.Errorf("BatchSize = %d", fb.BatchSize())
	}
	if fb.PoolingFactor(0) != 3 || fb.PoolingFactor(1) != 0 || fb.PoolingFactor(2) != 1 {
		t.Errorf("pooling factors wrong: %d %d %d", fb.PoolingFactor(0), fb.PoolingFactor(1), fb.PoolingFactor(2))
	}
	if fb.TotalRows() != 4 {
		t.Errorf("TotalRows = %d, want 4", fb.TotalRows())
	}
	if fb.MaxPoolingFactor() != 3 {
		t.Errorf("MaxPoolingFactor = %d, want 3", fb.MaxPoolingFactor())
	}
	if got := fb.Sample(0); len(got) != 3 || got[2] != 3 {
		t.Errorf("Sample(0) = %v", got)
	}
	if got := fb.UniqueRows(); got != 4 {
		t.Errorf("UniqueRows = %d, want 4", got)
	}
	dup := NewFeatureBatch([][]int32{{1, 1, 2}, {2}})
	if got := dup.UniqueRows(); got != 2 {
		t.Errorf("UniqueRows with duplicates = %d, want 2", got)
	}
}

func TestFeatureBatchValidate(t *testing.T) {
	fb := NewFeatureBatch([][]int32{{0, 1}, {2}})
	if err := fb.Validate(3); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if err := fb.Validate(2); err == nil {
		t.Error("out-of-range index accepted")
	}
	bad := FeatureBatch{Indices: []int32{0}, Offsets: []int32{0, 2}}
	if err := bad.Validate(10); err == nil {
		t.Error("mismatched final offset accepted")
	}
	neg := FeatureBatch{Indices: []int32{-1}, Offsets: []int32{0, 1}}
	if err := neg.Validate(10); err == nil {
		t.Error("negative index accepted")
	}
	nonMono := FeatureBatch{Indices: []int32{0, 1}, Offsets: []int32{0, 2, 1}}
	if err := nonMono.Validate(10); err == nil {
		t.Error("non-monotone offsets accepted")
	}
	empty := FeatureBatch{Offsets: nil}
	if err := empty.Validate(10); err == nil {
		t.Error("missing offsets accepted")
	}
}

func TestBatchValidate(t *testing.T) {
	t1 := mustTable(t, 10, 4, 1)
	t2 := mustTable(t, 20, 8, 2)
	b := &Batch{Features: []FeatureBatch{
		NewFeatureBatch([][]int32{{1}, {2, 3}}),
		NewFeatureBatch([][]int32{{4}, {}}),
	}}
	if err := b.Validate([]*Table{t1, t2}); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
	if b.BatchSize() != 2 || b.NumFeatures() != 2 || b.TotalRows() != 4 {
		t.Errorf("accessors wrong: %d %d %d", b.BatchSize(), b.NumFeatures(), b.TotalRows())
	}
	mismatch := &Batch{Features: []FeatureBatch{
		NewFeatureBatch([][]int32{{1}, {2}}),
		NewFeatureBatch([][]int32{{4}}),
	}}
	if err := mismatch.Validate([]*Table{t1, t2}); err == nil {
		t.Error("mismatched batch sizes accepted")
	}
	if err := b.Validate([]*Table{t1}); err == nil {
		t.Error("table count mismatch accepted")
	}
}

func TestPoolSumKnownValues(t *testing.T) {
	tbl, _ := NewTable("t", 3, 2)
	copy(tbl.Data, []float32{1, 2, 3, 4, 5, 6})
	fb := NewFeatureBatch([][]int32{{0, 2}, {1}})
	out, err := PoolCPU(tbl, &fb, PoolSum)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 3, 4}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestPoolMeanKnownValues(t *testing.T) {
	tbl, _ := NewTable("t", 2, 2)
	copy(tbl.Data, []float32{2, 4, 6, 8})
	fb := NewFeatureBatch([][]int32{{0, 1}})
	out, err := PoolCPU(tbl, &fb, PoolMean)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 6 {
		t.Errorf("mean pooling = %v, want [4 6]", out)
	}
}

func TestPoolMaxKnownValues(t *testing.T) {
	tbl, _ := NewTable("t", 3, 2)
	copy(tbl.Data, []float32{1, 9, 5, 2, 3, 7})
	fb := NewFeatureBatch([][]int32{{0, 1, 2}})
	out, err := PoolCPU(tbl, &fb, PoolMax)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 5 || out[1] != 9 {
		t.Errorf("max pooling = %v, want [5 9]", out)
	}
}

func TestPoolEmptySampleIdentity(t *testing.T) {
	tbl := mustTable(t, 5, 3, 9)
	fb := NewFeatureBatch([][]int32{{}})
	for _, mode := range []PoolMode{PoolSum, PoolMean, PoolMax} {
		out, err := PoolCPU(tbl, &fb, mode)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != 0 {
				t.Errorf("%v: empty sample out[%d] = %g, want 0", mode, i, v)
			}
		}
	}
}

func TestPoolCPURejectsInvalid(t *testing.T) {
	tbl := mustTable(t, 5, 3, 9)
	fb := NewFeatureBatch([][]int32{{7}})
	if _, err := PoolCPU(tbl, &fb, PoolSum); err == nil {
		t.Error("out-of-range id accepted")
	}
	ok := NewFeatureBatch([][]int32{{1}})
	if _, err := PoolCPU(tbl, &ok, PoolMode(99)); err == nil {
		t.Error("invalid mode accepted")
	}
}

// Property: PoolRange over any partition of [0, batch) reconstructs PoolCPU.
func TestPoolRangePartitionProperty(t *testing.T) {
	tbl := mustTable(t, 64, 8, 3)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		batch := 1 + rng.Intn(40)
		fb := randomFeatureBatch(rng, batch, tbl.Rows, 12)
		mode := PoolMode(rng.Intn(3))
		want, err := PoolCPU(tbl, &fb, mode)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float32, len(want))
		lo := 0
		for lo < batch {
			hi := lo + 1 + rng.Intn(batch-lo)
			PoolRange(tbl, &fb, mode, lo, hi, got)
			lo = hi
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("trial %d mode %v: out[%d] = %g, want %g", trial, mode, i, got[i], want[i])
			}
		}
	}
}

// Property: sum pooling is additive over sample ID concatenation.
func TestPoolSumAdditiveProperty(t *testing.T) {
	tbl := mustTable(t, 32, 4, 8)
	f := func(aRaw, bRaw []uint8) bool {
		toIDs := func(raw []uint8) []int32 {
			ids := make([]int32, len(raw))
			for i, v := range raw {
				ids[i] = int32(v) % int32(tbl.Rows)
			}
			return ids
		}
		a, b := toIDs(aRaw), toIDs(bRaw)
		outA := make([]float32, tbl.Dim)
		outB := make([]float32, tbl.Dim)
		outAB := make([]float32, tbl.Dim)
		PoolSample(tbl, a, PoolSum, outA)
		PoolSample(tbl, b, PoolSum, outB)
		PoolSample(tbl, append(append([]int32{}, a...), b...), PoolSum, outAB)
		for c := 0; c < tbl.Dim; c++ {
			if math.Abs(float64(outAB[c]-(outA[c]+outB[c]))) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: max pooling is idempotent and order-independent.
func TestPoolMaxOrderInvariantProperty(t *testing.T) {
	tbl := mustTable(t, 32, 4, 8)
	f := func(raw []uint8, seed int64) bool {
		if len(raw) == 0 {
			return true
		}
		ids := make([]int32, len(raw))
		for i, v := range raw {
			ids[i] = int32(v) % int32(tbl.Rows)
		}
		shuffled := append([]int32{}, ids...)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		a := make([]float32, tbl.Dim)
		b := make([]float32, tbl.Dim)
		PoolSample(tbl, ids, PoolMax, a)
		PoolSample(tbl, shuffled, PoolMax, b)
		for c := range a {
			if a[c] != b[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPoolModeString(t *testing.T) {
	cases := map[PoolMode]string{PoolSum: "sum", PoolMean: "mean", PoolMax: "max", PoolMode(9): "PoolMode(9)"}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
	if PoolMode(9).Valid() {
		t.Error("PoolMode(9) should be invalid")
	}
}

func TestUniqueRowsEstimate(t *testing.T) {
	// Small batches: exact.
	small := NewFeatureBatch([][]int32{{1, 1, 2}, {3}})
	if got := small.UniqueRowsEstimate(); got != 3 {
		t.Errorf("small estimate = %d, want exact 3", got)
	}
	// Large batch with heavy reuse: the estimate must land near the truth.
	rng := rand.New(rand.NewSource(99))
	ids := make([]int32, 100000)
	for i := range ids {
		ids[i] = int32(rng.Intn(500)) // ~500 distinct
	}
	fb := FeatureBatch{Indices: ids, Offsets: []int32{0, int32(len(ids))}}
	exact := fb.UniqueRows()
	est := fb.UniqueRowsEstimate()
	// The collision-model inversion should land close to the truth.
	if est < exact/2 || est > exact*2 {
		t.Errorf("estimate %d too far from exact %d", est, exact)
	}
	// Large batch with no reuse: estimate ~= n.
	for i := range ids {
		ids[i] = int32(i)
	}
	fb2 := FeatureBatch{Indices: ids, Offsets: []int32{0, int32(len(ids))}}
	if est := fb2.UniqueRowsEstimate(); est < len(ids)*9/10 {
		t.Errorf("no-reuse estimate %d, want ~%d", est, len(ids))
	}
}
