package embedding

import (
	"fmt"
	"math"
)

// FeatureBatch holds the lookup IDs of one feature field for one batch of
// samples in CSR form: sample i owns Indices[Offsets[i]:Offsets[i+1]]. A
// sample with an empty range is an absent feature (pooling factor 0), which
// pools to the identity element of the pooling mode.
type FeatureBatch struct {
	Indices []int32
	Offsets []int32 // len = batch size + 1; Offsets[0] == 0
}

// NewFeatureBatch builds a FeatureBatch from per-sample ID lists.
func NewFeatureBatch(perSample [][]int32) FeatureBatch {
	fb := FeatureBatch{Offsets: make([]int32, 1, len(perSample)+1)}
	for _, ids := range perSample {
		fb.Indices = append(fb.Indices, ids...)
		fb.Offsets = append(fb.Offsets, int32(len(fb.Indices)))
	}
	return fb
}

// BatchSize returns the number of samples.
func (fb *FeatureBatch) BatchSize() int { return len(fb.Offsets) - 1 }

// PoolingFactor returns the number of lookup IDs of sample i.
func (fb *FeatureBatch) PoolingFactor(i int) int {
	return int(fb.Offsets[i+1] - fb.Offsets[i])
}

// Sample returns the ID slice of sample i, aliasing the batch storage.
func (fb *FeatureBatch) Sample(i int) []int32 {
	return fb.Indices[fb.Offsets[i]:fb.Offsets[i+1]]
}

// TotalRows returns the total number of embedding rows the batch retrieves.
func (fb *FeatureBatch) TotalRows() int { return len(fb.Indices) }

// UniqueRows counts the distinct IDs referenced by the batch. The L2 model
// uses it to estimate reuse.
func (fb *FeatureBatch) UniqueRows() int {
	if len(fb.Indices) == 0 {
		return 0
	}
	seen := make(map[int32]struct{}, len(fb.Indices))
	for _, id := range fb.Indices {
		seen[id] = struct{}{}
	}
	return len(seen)
}

// uniqueSampleCap bounds the work of UniqueRowsEstimate: beyond this many
// IDs the distinct count is extrapolated from a strided sample.
const uniqueSampleCap = 2048

// UniqueRowsEstimate approximates UniqueRows in O(min(n, uniqueSampleCap))
// time: exact counting over a strided sample with a small open-addressed
// probe table (no map allocations), extrapolated to the full stream. The
// host-side workload analysis runs per batch on the serving path, where this
// estimate is accurate enough for the L2 reuse model and far cheaper than
// the exact count.
func (fb *FeatureBatch) UniqueRowsEstimate() int {
	n := len(fb.Indices)
	if n == 0 {
		return 0
	}
	stride := 1
	sampled := n
	if n > uniqueSampleCap {
		stride = n / uniqueSampleCap
		sampled = (n + stride - 1) / stride
	}
	// Open-addressed probe table sized 2x the sample (power of two).
	const tableSize = 4096 // >= 2*uniqueSampleCap
	var table [tableSize]int32
	for i := range table {
		table[i] = -1
	}
	distinct := 0
	for i := 0; i < n; i += stride {
		id := fb.Indices[i]
		h := uint32(id) * 2654435761 % tableSize
		for {
			switch table[h] {
			case -1:
				table[h] = id
				distinct++
			case id:
			default:
				h = (h + 1) % tableSize
				continue
			}
			break
		}
	}
	if stride == 1 {
		return distinct
	}
	// Invert the collision model: a uniform sample of m draws from a stream
	// with D distinct values yields E[d] = D·(1-(1-1/D)^m) distinct sample
	// values. Binary-search D so the expectation matches the observed d —
	// far more faithful on heavy-reuse streams than linear extrapolation.
	m := float64(sampled)
	d := float64(distinct)
	lo, hi := d, float64(n)
	if d >= m*(1-1e-9) {
		// Every sampled ID was new: the stream is (near) duplicate-free.
		return n
	}
	expect := func(D float64) float64 {
		return D * (1 - math.Pow(1-1/D, m))
	}
	for i := 0; i < 40; i++ {
		mid := (lo + hi) / 2
		if expect(mid) < d {
			lo = mid
		} else {
			hi = mid
		}
	}
	est := int(hi)
	if est > n {
		est = n
	}
	if est < distinct {
		est = distinct
	}
	return est
}

// MaxPoolingFactor returns the largest per-sample pooling factor.
func (fb *FeatureBatch) MaxPoolingFactor() int {
	m := 0
	for i := 0; i < fb.BatchSize(); i++ {
		if pf := fb.PoolingFactor(i); pf > m {
			m = pf
		}
	}
	return m
}

// Validate checks CSR invariants against a table with `rows` rows.
func (fb *FeatureBatch) Validate(rows int) error {
	if len(fb.Offsets) == 0 || fb.Offsets[0] != 0 {
		return fmt.Errorf("embedding: offsets must start with 0")
	}
	for i := 1; i < len(fb.Offsets); i++ {
		if fb.Offsets[i] < fb.Offsets[i-1] {
			return fmt.Errorf("embedding: offsets not monotone at %d: %d < %d", i, fb.Offsets[i], fb.Offsets[i-1])
		}
	}
	if int(fb.Offsets[len(fb.Offsets)-1]) != len(fb.Indices) {
		return fmt.Errorf("embedding: last offset %d != len(indices) %d", fb.Offsets[len(fb.Offsets)-1], len(fb.Indices))
	}
	for i, id := range fb.Indices {
		if id < 0 || int(id) >= rows {
			return fmt.Errorf("embedding: index %d at position %d outside table with %d rows", id, i, rows)
		}
	}
	return nil
}

// Batch groups the per-feature lookup batches of one inference request. All
// features must agree on the sample count.
type Batch struct {
	Features []FeatureBatch
}

// BatchSize returns the shared sample count (0 for an empty batch).
func (b *Batch) BatchSize() int {
	if len(b.Features) == 0 {
		return 0
	}
	return b.Features[0].BatchSize()
}

// NumFeatures returns the number of feature fields.
func (b *Batch) NumFeatures() int { return len(b.Features) }

// Validate checks that every feature batch is well-formed and that all agree
// on the sample count. tables[f] supplies the row bound of feature f.
func (b *Batch) Validate(tables []*Table) error {
	if len(tables) != len(b.Features) {
		return fmt.Errorf("embedding: %d feature batches vs %d tables", len(b.Features), len(tables))
	}
	size := b.BatchSize()
	for f := range b.Features {
		if got := b.Features[f].BatchSize(); got != size {
			return fmt.Errorf("embedding: feature %d batch size %d != %d", f, got, size)
		}
		if err := b.Features[f].Validate(tables[f].Rows); err != nil {
			return fmt.Errorf("embedding: feature %d: %w", f, err)
		}
	}
	return nil
}

// TotalRows sums retrieved rows over all features.
func (b *Batch) TotalRows() int {
	n := 0
	for f := range b.Features {
		n += b.Features[f].TotalRows()
	}
	return n
}
