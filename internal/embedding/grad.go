package embedding

import "fmt"

// Backward pass of the embedding operation: given the upstream gradient of
// the pooled outputs (batch x dim), accumulate gradients into a table-shaped
// buffer. Sum pooling routes the sample's gradient to every looked-up row;
// mean pooling scales it by 1/pooling-factor. Max pooling requires forward
// state (argmax indices) and is not part of the training extension. The paper
// notes RecFlex extends to training "except the manual efforts to support
// more operators" — this is that operator.

// GradSample accumulates one sample's contribution into grad (rows*dim).
func GradSample(tblRows, dim int, ids []int32, mode PoolMode, upstream []float32, grad []float32) error {
	if mode != PoolSum && mode != PoolMean {
		return fmt.Errorf("embedding: backward unsupported for %v pooling (needs forward state)", mode)
	}
	if len(ids) == 0 {
		return nil
	}
	scale := float32(1)
	if mode == PoolMean {
		scale = 1 / float32(len(ids))
	}
	for _, id := range ids {
		row := grad[int(id)*dim : (int(id)+1)*dim]
		for c := 0; c < dim; c++ {
			row[c] += upstream[c] * scale
		}
	}
	return nil
}

// GradRange accumulates the gradients of samples [lo, hi) — the backward
// counterpart of PoolRange, used by schedule executors.
func GradRange(tblRows, dim int, fb *FeatureBatch, mode PoolMode, upstream []float32, lo, hi int, grad []float32) error {
	for i := lo; i < hi; i++ {
		if err := GradSample(tblRows, dim, fb.Sample(i), mode, upstream[i*dim:(i+1)*dim], grad); err != nil {
			return err
		}
	}
	return nil
}

// GradCPU is the reference backward executor: the full table gradient of one
// feature batch.
func GradCPU(t *Table, fb *FeatureBatch, mode PoolMode, upstream []float32) ([]float32, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := fb.Validate(t.Rows); err != nil {
		return nil, err
	}
	if len(upstream) != fb.BatchSize()*t.Dim {
		return nil, fmt.Errorf("embedding: upstream gradient length %d != batch %d * dim %d",
			len(upstream), fb.BatchSize(), t.Dim)
	}
	grad := make([]float32, t.Rows*t.Dim)
	if err := GradRange(t.Rows, t.Dim, fb, mode, upstream, 0, fb.BatchSize(), grad); err != nil {
		return nil, err
	}
	return grad, nil
}
