package embedding

import (
	"math"
	"testing"
)

func TestGradSampleEdgeCases(t *testing.T) {
	grad := make([]float32, 3*2)
	// Empty sample: no contribution, no error.
	if err := GradSample(3, 2, nil, PoolSum, []float32{1, 1}, grad); err != nil {
		t.Fatal(err)
	}
	for i, v := range grad {
		if v != 0 {
			t.Errorf("grad[%d] = %g after empty sample", i, v)
		}
	}
	// Max pooling needs forward state.
	if err := GradSample(3, 2, []int32{0}, PoolMax, []float32{1, 1}, grad); err == nil {
		t.Error("max pooling backward accepted")
	}
	// Repeated IDs accumulate.
	if err := GradSample(3, 2, []int32{1, 1}, PoolSum, []float32{3, 4}, grad); err != nil {
		t.Fatal(err)
	}
	if grad[2] != 6 || grad[3] != 8 {
		t.Errorf("repeated-ID grad = %v", grad[2:4])
	}
}

func TestGradRangeMeanScaling(t *testing.T) {
	fb := NewFeatureBatch([][]int32{{0, 1}, {2}})
	upstream := []float32{2, 4, 6, 8}
	grad := make([]float32, 3*2)
	if err := GradRange(3, 2, &fb, PoolMean, upstream, 0, 2, grad); err != nil {
		t.Fatal(err)
	}
	want := []float32{1, 2, 1, 2, 6, 8} // sample 0 split over 2 rows, sample 1 whole
	for i := range want {
		if math.Abs(float64(grad[i]-want[i])) > 1e-6 {
			t.Errorf("grad[%d] = %g, want %g", i, grad[i], want[i])
		}
	}
}

func TestGradCPUValidation(t *testing.T) {
	tbl, _ := NewTable("t", 4, 2)
	fb := NewFeatureBatch([][]int32{{9}}) // out of range
	if _, err := GradCPU(tbl, &fb, PoolSum, []float32{1, 1}); err == nil {
		t.Error("out-of-range index accepted")
	}
	ok := NewFeatureBatch([][]int32{{1}})
	if _, err := GradCPU(tbl, &ok, PoolSum, []float32{1, 1}); err != nil {
		t.Errorf("valid batch rejected: %v", err)
	}
}
