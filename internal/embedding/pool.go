package embedding

import "fmt"

// PoolMode selects the elementwise reduction applied to the embedding rows of
// one sample.
type PoolMode int

const (
	// PoolSum adds the retrieved rows elementwise.
	PoolSum PoolMode = iota
	// PoolMean averages the retrieved rows elementwise.
	PoolMean
	// PoolMax takes the elementwise maximum of the retrieved rows.
	PoolMax
)

// String implements fmt.Stringer.
func (m PoolMode) String() string {
	switch m {
	case PoolSum:
		return "sum"
	case PoolMean:
		return "mean"
	case PoolMax:
		return "max"
	default:
		return fmt.Sprintf("PoolMode(%d)", int(m))
	}
}

// Valid reports whether m is a known pooling mode.
func (m PoolMode) Valid() bool { return m >= PoolSum && m <= PoolMax }

// PoolSample pools the rows of one sample into out (length table.Dim).
// An empty sample yields the identity: zeros for sum/mean, MaxNegative for
// max. This is the semantic ground truth every schedule must reproduce.
func PoolSample(t *Table, ids []int32, mode PoolMode, out []float32) {
	dim := t.Dim
	switch mode {
	case PoolMax:
		for c := 0; c < dim; c++ {
			out[c] = MaxNegative
		}
	default:
		for c := 0; c < dim; c++ {
			out[c] = 0
		}
	}
	if len(ids) == 0 {
		if mode == PoolMax {
			// Absent feature: emit zeros rather than -inf sentinels so
			// downstream DNN layers see a neutral input.
			for c := 0; c < dim; c++ {
				out[c] = 0
			}
		}
		return
	}
	switch mode {
	case PoolSum, PoolMean:
		for _, id := range ids {
			row := t.Row(int(id))
			for c := 0; c < dim; c++ {
				out[c] += row[c]
			}
		}
		if mode == PoolMean {
			inv := float32(1) / float32(len(ids))
			for c := 0; c < dim; c++ {
				out[c] *= inv
			}
		}
	case PoolMax:
		for _, id := range ids {
			row := t.Row(int(id))
			for c := 0; c < dim; c++ {
				if row[c] > out[c] {
					out[c] = row[c]
				}
			}
		}
	}
}

// PoolCPU is the reference executor: it pools every sample of fb against t
// and returns a [batch*dim] row-major result.
func PoolCPU(t *Table, fb *FeatureBatch, mode PoolMode) ([]float32, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := fb.Validate(t.Rows); err != nil {
		return nil, err
	}
	if !mode.Valid() {
		return nil, fmt.Errorf("embedding: invalid pool mode %d", int(mode))
	}
	batch := fb.BatchSize()
	out := make([]float32, batch*t.Dim)
	for i := 0; i < batch; i++ {
		PoolSample(t, fb.Sample(i), mode, out[i*t.Dim:(i+1)*t.Dim])
	}
	return out, nil
}

// PoolRange pools samples [lo, hi) of fb into out, where out is the full
// [batch*dim] buffer. Schedule executors use it to compute exactly the
// partition a thread block owns.
func PoolRange(t *Table, fb *FeatureBatch, mode PoolMode, lo, hi int, out []float32) {
	for i := lo; i < hi; i++ {
		PoolSample(t, fb.Sample(i), mode, out[i*t.Dim:(i+1)*t.Dim])
	}
}
