package tuner

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/gpusim"
	"repro/internal/sched"
)

// errInfeasible marks an occupancy value no candidate of a feature can meet
// (e.g. the shared-memory budget is too small). The global stage skips such
// occupancies.
var errInfeasible = errors.New("tuner: occupancy infeasible for feature")

// paddingPool plans the whole model's workloads under a neutral schedule,
// one pool per batch. The local stage draws its padding blocks from here so
// the simulated interference matches the fused kernel's real traffic mix.
func paddingPool(dev *gpusim.Device, model *Model, ws [][]sched.Workload, l2 []sched.L2Context) ([][]gpusim.BlockWork, error) {
	neutral := sched.SubWarp{Threads: 256, Lanes: 32, Vec: 1, UnrollRows: 1}
	pool := make([][]gpusim.BlockWork, len(ws))
	for bi := range ws {
		var blocks []gpusim.BlockWork
		for f := range model.Features {
			w := &ws[bi][f]
			if !neutral.Supports(w) {
				continue
			}
			p, err := neutral.Plan(w, dev, l2[bi])
			if err != nil {
				return nil, fmt.Errorf("tuner: padding pool feature %d: %w", f, err)
			}
			for i := range p.Blocks {
				b := p.Blocks[i]
				b.Tag = -1
				blocks = append(blocks, b)
			}
		}
		if len(blocks) == 0 {
			return nil, fmt.Errorf("tuner: empty padding pool for batch %d", bi)
		}
		pool[bi] = blocks
	}
	return pool, nil
}

// tuneFeature runs the interference-simulated per-feature tuning of the
// local stage (the paper's Figure 7): all candidates of feature f are
// co-executed in one kernel under explicitly controlled occupancy, the grid
// is padded with redundant embedding blocks to fill the SMs, and the
// candidate with the lowest summed block time across the historical batches
// wins.
func tuneFeature(dev *gpusim.Device, model *Model, f, occ, warpsPerBlock int,
	ws [][]sched.Workload, l2 []sched.L2Context, pool [][]gpusim.BlockWork, o Options) (int, error) {

	candidates := model.Candidates[f]
	kernelThreads := warpsPerBlock * dev.WarpSize
	regBudget := dev.RegistersPerSM / (occ * kernelThreads)
	if regBudget < 1 {
		regBudget = 1
	}
	if regBudget > dev.MaxRegsPerThread {
		regBudget = dev.MaxRegsPerThread
	}
	smemBudget := dev.SharedMemPerSM / occ

	// Determine per-candidate feasibility and resources once.
	type cand struct {
		feasible bool
		spilled  int
		smem     int
	}
	cands := make([]cand, len(candidates))
	maxSmem := 0
	anyFeasible := false
	for ci, s := range candidates {
		r := s.Resources(model.Features[f].Dim)
		c := cand{feasible: true, smem: r.SharedMemPerBlock}
		if r.SharedMemPerBlock > smemBudget {
			c.feasible = false
		}
		if r.RegsPerThread > regBudget {
			c.spilled = r.RegsPerThread - regBudget
		}
		cands[ci] = c
		if c.feasible {
			anyFeasible = true
			if c.smem > maxSmem {
				maxSmem = c.smem
			}
		}
	}
	if !anyFeasible {
		return 0, errInfeasible
	}

	res := gpusim.KernelResources{
		ThreadsPerBlock:   kernelThreads,
		RegsPerThread:     regBudget,
		SharedMemPerBlock: maxSmem,
	}
	controlled, _, err := res.ControlOccupancy(dev, occ)
	if err != nil {
		return 0, errInfeasible
	}

	scores := make([]float64, len(candidates))
	counted := make([]bool, len(candidates))
	slots := dev.ParallelBlockSlots(occ)
	padTarget := int(float64(slots) * o.PaddingFactor)

	// Per-candidate scale factors: when a plan is stride-sampled, the
	// measured block-time sum is scaled back to the full plan.
	scale := make([]float64, len(candidates))

	// One reused simulator across the tuning batches: each iteration only
	// reads TagTime before the next Run overwrites the result.
	sim := gpusim.NewSimulator()
	for bi := range ws {
		w := &ws[bi][f]
		var blocks []gpusim.BlockWork
		for ci, s := range candidates {
			if !cands[ci].feasible || !s.Supports(w) {
				continue
			}
			p, err := s.Plan(w, dev, l2[bi])
			if err != nil {
				return 0, fmt.Errorf("planning %s: %w", s.Name(), err)
			}
			// Stride-sample large plans: co-executing a representative
			// subset keeps the co-execution kernel small while the sum
			// of block times stays an unbiased estimate of Equation 3.
			stride := 1
			if p.NumBlocks > o.MaxBlocksPerCandidate {
				stride = (p.NumBlocks + o.MaxBlocksPerCandidate - 1) / o.MaxBlocksPerCandidate
			}
			sampled := 0
			for i := 0; i < p.NumBlocks; i += stride {
				b := p.Blocks[i]
				chargeSpill(dev, &b, cands[ci].spilled, o.SpillReuse)
				b.Tag = ci
				blocks = append(blocks, b)
				sampled++
			}
			scale[ci] = float64(p.NumBlocks) / float64(sampled)
			counted[ci] = true
		}
		if len(blocks) == 0 {
			return 0, errInfeasible
		}
		// Pad with redundant embedding operations drawn from the model's
		// full workload mix so the SMs are full and grid-level memory
		// pressure matches the fused kernel's.
		pad := pool[bi]
		for i := 0; len(blocks) < padTarget; i++ {
			blocks = append(blocks, pad[i%len(pad)])
		}
		k := &gpusim.Kernel{
			Name:                fmt.Sprintf("local_f%d_occ%d_b%d", f, occ, bi),
			Resources:           controlled,
			Blocks:              blocks,
			BlocksPerSMOverride: occ,
		}
		r, err := sim.Run(dev, k)
		if err != nil {
			return 0, err
		}
		for ci := range candidates {
			scores[ci] += r.TagTime[ci] * scale[ci]
		}
	}

	best, bestScore := -1, math.Inf(1)
	for ci := range candidates {
		if !counted[ci] {
			continue
		}
		if scores[ci] < bestScore {
			best, bestScore = ci, scores[ci]
		}
	}
	if best < 0 {
		return 0, errInfeasible
	}
	return best, nil
}

// chargeSpill adds the local-memory traffic of spilled registers to a block,
// matching the fusion compiler's accounting (mostly cache-resident).
func chargeSpill(dev *gpusim.Device, b *gpusim.BlockWork, spilledRegs int, reuse float64) {
	if spilledRegs <= 0 || b.Warps <= 0 {
		return
	}
	threads := float64(b.Warps * dev.WarpSize)
	bytes := gpusim.SpillBytesPerThread(spilledRegs, reuse) * threads
	b.L2Bytes += bytes * 0.8
	b.DRAMBytes += bytes * 0.2
	b.MemRequests += bytes / 128
}
