package tuner

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/gpusim"
	"repro/internal/sched"
)

// errInfeasible marks an occupancy value no candidate of a feature can meet
// (e.g. the shared-memory budget is too small). The global stage skips such
// occupancies.
var errInfeasible = errors.New("tuner: occupancy infeasible for feature")

// paddingPool plans the whole model's workloads under a neutral schedule,
// one pool per batch. The local stage draws its padding blocks from here so
// the simulated interference matches the fused kernel's real traffic mix.
func paddingPool(dev *gpusim.Device, model *Model, ws [][]sched.Workload, l2 []sched.L2Context) ([][]gpusim.BlockWork, error) {
	neutral := sched.SubWarp{Threads: 256, Lanes: 32, Vec: 1, UnrollRows: 1}
	pool := make([][]gpusim.BlockWork, len(ws))
	for bi := range ws {
		var blocks []gpusim.BlockWork
		for f := range model.Features {
			w := &ws[bi][f]
			if !neutral.Supports(w) {
				continue
			}
			p, err := neutral.Plan(w, dev, l2[bi])
			if err != nil {
				return nil, fmt.Errorf("tuner: padding pool feature %d: %w", f, err)
			}
			for i := range p.Blocks {
				b := p.Blocks[i]
				b.Tag = -1
				blocks = append(blocks, b)
			}
		}
		if len(blocks) == 0 {
			return nil, fmt.Errorf("tuner: empty padding pool for batch %d", bi)
		}
		pool[bi] = blocks
	}
	return pool, nil
}

// featureEnv is the once-per-(feature, occupancy) precomputation of the local
// stage: which candidates fit the occupancy's register and shared-memory
// budgets, how many registers each spills, and the occupancy-controlled
// kernel resources the co-execution kernel runs under.
type featureEnv struct {
	f          int
	candidates []sched.Schedule
	feasible   []bool
	spilled    []int
	maxSmem    int // max shared memory over feasible candidates
	controlled gpusim.KernelResources
}

// newFeatureEnv computes the environment of feature f at occupancy occ.
// Returns errInfeasible when no candidate fits or the occupancy cannot be
// pinned.
func newFeatureEnv(dev *gpusim.Device, model *Model, f, occ, warpsPerBlock int) (*featureEnv, error) {
	candidates := model.Candidates[f]
	kernelThreads := warpsPerBlock * dev.WarpSize
	regBudget := dev.RegistersPerSM / (occ * kernelThreads)
	if regBudget < 1 {
		regBudget = 1
	}
	if regBudget > dev.MaxRegsPerThread {
		regBudget = dev.MaxRegsPerThread
	}
	smemBudget := dev.SharedMemPerSM / occ

	e := &featureEnv{
		f:          f,
		candidates: candidates,
		feasible:   make([]bool, len(candidates)),
		spilled:    make([]int, len(candidates)),
	}
	anyFeasible := false
	for ci, s := range candidates {
		r := s.Resources(model.Features[f].Dim)
		feasible := r.SharedMemPerBlock <= smemBudget
		e.feasible[ci] = feasible
		if r.RegsPerThread > regBudget {
			e.spilled[ci] = r.RegsPerThread - regBudget
		}
		if feasible {
			anyFeasible = true
			if r.SharedMemPerBlock > e.maxSmem {
				e.maxSmem = r.SharedMemPerBlock
			}
		}
	}
	if !anyFeasible {
		return nil, errInfeasible
	}

	res := gpusim.KernelResources{
		ThreadsPerBlock:   kernelThreads,
		RegsPerThread:     regBudget,
		SharedMemPerBlock: e.maxSmem,
	}
	controlled, _, err := res.ControlOccupancy(dev, occ)
	if err != nil {
		return nil, errInfeasible
	}
	e.controlled = controlled
	return e, nil
}

// appendCandidateBlocks plans candidate ci of the environment's feature for
// one batch, stride-samples the plan down to at most budget blocks, charges
// register spill, tags every block with tag, and appends the blocks to dst.
// It returns the extended slice and the scale factor that maps the sampled
// block-time sum back to the full plan.
func (e *featureEnv) appendCandidateBlocks(dst []gpusim.BlockWork, dev *gpusim.Device, ci int,
	w *sched.Workload, l2 sched.L2Context, budget, tag int, spillReuse float64) ([]gpusim.BlockWork, float64, error) {

	s := e.candidates[ci]
	p, err := s.Plan(w, dev, l2)
	if err != nil {
		return dst, 0, fmt.Errorf("planning %s: %w", s.Name(), err)
	}
	// Stride-sample large plans: co-executing a representative subset keeps
	// the co-execution kernel small while the sum of block times stays an
	// unbiased estimate of Equation 3.
	stride := 1
	if p.NumBlocks > budget {
		stride = (p.NumBlocks + budget - 1) / budget
	}
	sampled := 0
	for i := 0; i < p.NumBlocks; i += stride {
		b := p.Blocks[i]
		chargeSpill(dev, &b, e.spilled[ci], spillReuse)
		b.Tag = tag
		dst = append(dst, b)
		sampled++
	}
	return dst, float64(p.NumBlocks) / float64(sampled), nil
}

// scoreFeatureBatch co-executes the feasible candidates of one feature for
// one batch under controlled occupancy, padded from the pool, and returns the
// per-candidate score contributions of this batch (Equation 3 terms, scaled
// back to the full plan). The returned localScore is safe to memoize: it
// depends only on the simulated inputs.
func scoreFeatureBatch(dev *gpusim.Device, e *featureEnv, occ int, w *sched.Workload,
	l2 sched.L2Context, pad []gpusim.BlockWork, budget int, o Options, sim *gpusim.Simulator) (*localScore, error) {

	ls := &localScore{
		contrib: make([]float64, len(e.candidates)),
		counted: make([]bool, len(e.candidates)),
	}
	scale := make([]float64, len(e.candidates))
	var blocks []gpusim.BlockWork
	var err error
	for ci, s := range e.candidates {
		if !e.feasible[ci] || !s.Supports(w) {
			continue
		}
		blocks, scale[ci], err = e.appendCandidateBlocks(blocks, dev, ci, w, l2, budget, ci, o.SpillReuse)
		if err != nil {
			return nil, err
		}
		ls.counted[ci] = true
	}
	if len(blocks) == 0 {
		ls.empty = true
		return ls, nil
	}
	// Pad with redundant embedding operations drawn from the model's full
	// workload mix so the SMs are full and grid-level memory pressure
	// matches the fused kernel's.
	padTarget := int(float64(dev.ParallelBlockSlots(occ)) * o.PaddingFactor)
	for i := 0; len(blocks) < padTarget; i++ {
		blocks = append(blocks, pad[i%len(pad)])
	}
	k := &gpusim.Kernel{
		Name:                fmt.Sprintf("local_f%d_occ%d", e.f, occ),
		Resources:           e.controlled,
		Blocks:              blocks,
		BlocksPerSMOverride: occ,
	}
	r, err := sim.Run(dev, k)
	if err != nil {
		return nil, err
	}
	for ci := range e.candidates {
		ls.contrib[ci] = r.TagTime[ci] * scale[ci]
	}
	return ls, nil
}

// tuneFeature runs the interference-simulated per-feature tuning of the
// local stage (the paper's Figure 7): all candidates of feature f are
// co-executed in one kernel under explicitly controlled occupancy, the grid
// is padded with redundant embedding blocks to fill the SMs, and the
// candidate with the lowest summed block time across the historical batches
// wins. When memo is non-nil, per-batch simulations are served from the
// cache; hits return the exact values a fresh simulation would produce.
func tuneFeature(dev *gpusim.Device, model *Model, f, occ, warpsPerBlock int,
	ws [][]sched.Workload, l2 []sched.L2Context, pool [][]gpusim.BlockWork,
	o Options, memo *Memo, fps *fingerprints) (int, error) {

	env, err := newFeatureEnv(dev, model, f, occ, warpsPerBlock)
	if err != nil {
		return 0, err
	}

	scores := make([]float64, len(env.candidates))
	counted := make([]bool, len(env.candidates))

	// One reused simulator across the tuning batches: each iteration only
	// reads TagTime before the next Run overwrites the result.
	sim := gpusim.NewSimulator()
	for bi := range ws {
		compute := func() (any, error) {
			return scoreFeatureBatch(dev, env, occ, &ws[bi][f], l2[bi], pool[bi], o.MaxBlocksPerCandidate, o, sim)
		}
		var v any
		if memo != nil {
			v, err = memo.do(fps.localKey(occ, warpsPerBlock, o.MaxBlocksPerCandidate, f, bi), compute)
		} else {
			v, err = compute()
		}
		if err != nil {
			return 0, err
		}
		ls := v.(*localScore)
		if ls.empty {
			return 0, errInfeasible
		}
		for ci := range scores {
			scores[ci] += ls.contrib[ci]
			counted[ci] = counted[ci] || ls.counted[ci]
		}
	}

	best, bestScore := -1, math.Inf(1)
	for ci := range env.candidates {
		if !counted[ci] {
			continue
		}
		if scores[ci] < bestScore {
			best, bestScore = ci, scores[ci]
		}
	}
	if best < 0 {
		return 0, errInfeasible
	}
	return best, nil
}

// scoreGroupedBatch co-executes the eval-masked candidates of every feature
// in one padded kernel for a single batch. Grouping amortizes the padded
// grid — by far the dominant local-stage simulation cost — across all
// features, and the mixed environment (every feature's candidates compete at
// once) is if anything closer to the fused kernel the global stage measures.
// The per-feature relative ranking it produces drives successive-halving
// pruning; it is an approximation of the per-feature exact scoring, not a
// bit-identical replacement. Tags are allocated as tagBase[f]+ci.
func scoreGroupedBatch(dev *gpusim.Device, model *Model, envs []*featureEnv, occ int,
	controlled gpusim.KernelResources, ws []sched.Workload, l2 sched.L2Context,
	pad []gpusim.BlockWork, eval [][]bool, budget int, o Options, sim *gpusim.Simulator) (*groupScore, error) {

	gs := &groupScore{
		contrib: make([][]float64, len(envs)),
		counted: make([][]bool, len(envs)),
		empty:   make([]bool, len(envs)),
	}
	scale := make([][]float64, len(envs))
	tagBase := make([]int, len(envs))
	next := 0
	for f, e := range envs {
		tagBase[f] = next
		next += len(e.candidates)
		gs.contrib[f] = make([]float64, len(e.candidates))
		gs.counted[f] = make([]bool, len(e.candidates))
		scale[f] = make([]float64, len(e.candidates))
	}

	var blocks []gpusim.BlockWork
	var err error
	for f, e := range envs {
		w := &ws[f]
		added := false
		for ci, s := range e.candidates {
			if !eval[f][ci] || !e.feasible[ci] || !s.Supports(w) {
				continue
			}
			blocks, scale[f][ci], err = e.appendCandidateBlocks(blocks, dev, ci, w, l2, budget, tagBase[f]+ci, o.SpillReuse)
			if err != nil {
				return nil, err
			}
			gs.counted[f][ci] = true
			added = true
		}
		if !added {
			gs.empty[f] = true
		}
	}
	if len(blocks) == 0 {
		return gs, nil
	}
	padTarget := int(float64(dev.ParallelBlockSlots(occ)) * o.PaddingFactor)
	for i := 0; len(blocks) < padTarget; i++ {
		blocks = append(blocks, pad[i%len(pad)])
	}
	k := &gpusim.Kernel{
		Name:                fmt.Sprintf("grouped_occ%d", occ),
		Resources:           controlled,
		Blocks:              blocks,
		BlocksPerSMOverride: occ,
	}
	r, err := sim.Run(dev, k)
	if err != nil {
		return nil, err
	}
	for f, e := range envs {
		for ci := range e.candidates {
			gs.contrib[f][ci] = r.TagTime[tagBase[f]+ci] * scale[f][ci]
		}
	}
	return gs, nil
}

// halve is one successive-halving round: it returns the surviving candidate
// indices — the best-scoring half (ceil(n/2)) of the counted candidates, ties
// broken toward the lower index — in ascending index order. protect (a
// warm-start incumbent; pass a negative value for none) always survives when
// counted. Uncounted candidates never survive. With two or fewer counted
// candidates everyone counted survives. The selection is a pure function of
// its arguments, so replays are deterministic.
func halve(scores []float64, counted []bool, protect int) []int {
	idx := make([]int, 0, len(scores))
	for ci := range scores {
		if counted[ci] {
			idx = append(idx, ci)
		}
	}
	if len(idx) <= 2 {
		return idx
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if scores[a] != scores[b] {
			return scores[a] < scores[b]
		}
		return a < b
	})
	keep := (len(idx) + 1) / 2
	surv := idx[:keep]
	if protect >= 0 && protect < len(counted) && counted[protect] {
		found := false
		for _, ci := range surv {
			if ci == protect {
				found = true
				break
			}
		}
		if !found {
			surv = append(surv, protect)
		}
	}
	sort.Ints(surv)
	return surv
}

// chargeSpill adds the local-memory traffic of spilled registers to a block,
// matching the fusion compiler's accounting (mostly cache-resident).
func chargeSpill(dev *gpusim.Device, b *gpusim.BlockWork, spilledRegs int, reuse float64) {
	if spilledRegs <= 0 || b.Warps <= 0 {
		return
	}
	threads := float64(b.Warps * dev.WarpSize)
	bytes := gpusim.SpillBytesPerThread(spilledRegs, reuse) * threads
	b.L2Bytes += bytes * 0.8
	b.DRAMBytes += bytes * 0.2
	b.MemRequests += bytes / 128
}
