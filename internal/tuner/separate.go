package tuner

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// SeparateCombine is the straw-man tuner of §II-C: each feature's candidates
// are measured in isolation — a separate, non-padded kernel per candidate at
// its natural occupancy, with a per-feature (rather than grid-level) cache
// estimate — and the per-feature winners are combined into one fused kernel.
// It ignores inter-feature interference entirely, which is exactly why the
// paper's Figure 11 shows it losing to the two-stage tuner.
func SeparateCombine(dev *gpusim.Device, model *Model, batches []*embedding.Batch, opts Options) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("tuner: no historical batches")
	}
	o := opts.withDefaults()

	ws := make([][]sched.Workload, len(batches))
	for bi, b := range batches {
		w, err := fusion.AnalyzeBatch(model.Features, b)
		if err != nil {
			return nil, err
		}
		ws[bi] = w
	}

	choiceIdx := make([]int, len(model.Features))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < o.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := range jobs {
				idx, err := tuneFeatureSeparate(dev, model, f, ws)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("tuner: separate-combine feature %d (%s): %w", f, model.Features[f].Name, err)
				}
				choiceIdx[f] = idx
				mu.Unlock()
			}
		}()
	}
	for f := range model.Features {
		jobs <- f
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Combine: fuse the winners at natural occupancy and measure.
	choices := choicesFor(model, choiceIdx)
	total := 0.0
	for _, b := range batches {
		fu, err := fusion.Compile(dev, model.Features, choices, b, fusion.Options{SpillReuse: o.SpillReuse})
		if err != nil {
			return nil, err
		}
		r, err := fu.Simulate()
		if err != nil {
			return nil, err
		}
		total += r.Time
	}
	return &Result{
		Choices:   choices,
		ChoiceIdx: choiceIdx,
		Occupancy: 0, // natural
		Latency:   total,
	}, nil
}

// tuneFeatureSeparate picks the candidate with the lowest isolated kernel
// latency, the "lower separate latencies" criterion the paper warns about.
func tuneFeatureSeparate(dev *gpusim.Device, model *Model, f int, ws [][]sched.Workload) (int, error) {
	candidates := model.Candidates[f]
	best, bestScore := -1, math.Inf(1)
	// One reused simulator across candidates: only the scalar Time is read
	// from each run.
	sim := gpusim.NewSimulator()
	for ci, s := range candidates {
		total := 0.0
		supported := false
		for bi := range ws {
			w := &ws[bi][f]
			if !s.Supports(w) {
				break
			}
			supported = true
			// Naive per-feature cache view: the feature alone on the GPU.
			naiveL2 := sched.L2Context{
				CacheBytes:      float64(dev.L2SizeBytes),
				WorkingSetBytes: float64(w.UniqueRows) * w.RowBytes(),
			}
			p, err := s.Plan(w, dev, naiveL2)
			if err != nil {
				return 0, err
			}
			res := s.Resources(model.Features[f].Dim)
			k := &gpusim.Kernel{
				Name:                  fmt.Sprintf("sep_f%d_c%d", f, ci),
				Resources:             res,
				Blocks:                p.Blocks,
				IncludeLaunchOverhead: true,
			}
			r, err := sim.Run(dev, k)
			if err != nil {
				return 0, err
			}
			total += r.Time
		}
		if !supported {
			continue
		}
		if total < bestScore {
			best, bestScore = ci, total
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("no supported candidate")
	}
	return best, nil
}
