package tuner

import (
	"math/rand"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// tuneTestModel builds a small but strongly heterogeneous model.
func tuneTestModel(t *testing.T) (*Model, []*embedding.Batch, *datasynth.ModelConfig) {
	t.Helper()
	return buildTuneModel(t, 6, 2, 256, 77)
}

// buildTuneModel replicates a heterogeneous feature core reps times and
// samples nbatches batches. The tuner targets the many-features regime of
// the paper (hundreds to thousands of embedding tables), where the fused
// grid is deep enough for Equation 2 to hold; replication gets there while
// keeping tests fast.
func buildTuneModel(t *testing.T, reps, nbatches, batchSize int, seed int64) (*Model, []*embedding.Batch, *datasynth.ModelConfig) {
	t.Helper()
	core := []datasynth.FeatureSpec{
		{Name: "onehot4", Dim: 4, Rows: 4096, PF: datasynth.Fixed{K: 1}, Coverage: 1},
		{Name: "onehot8", Dim: 8, Rows: 8192, PF: datasynth.Fixed{K: 1}, Coverage: 1},
		{Name: "multi8", Dim: 8, Rows: 16384, PF: datasynth.Normal{Mu: 50, Sigma: 10}, Coverage: 1},
		{Name: "multi32", Dim: 32, Rows: 32768, PF: datasynth.Uniform{Lo: 1, Hi: 60}, Coverage: 0.8},
		{Name: "heavy128", Dim: 128, Rows: 32768, PF: datasynth.Fixed{K: 150}, Coverage: 1},
		{Name: "sparse16", Dim: 16, Rows: 8192, PF: datasynth.Fixed{K: 5}, Coverage: 0.3},
	}
	cfg := &datasynth.ModelConfig{Name: "tune", Seed: seed}
	for rep := 0; rep < reps; rep++ {
		for _, spec := range core {
			s := spec
			s.Name = s.Name + string(rune('a'+rep))
			cfg.Features = append(cfg.Features, s)
		}
	}
	var batches []*embedding.Batch
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < nbatches; i++ {
		b, err := datasynth.GenerateBatch(cfg, batchSize, rng)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	features := make([]fusion.FeatureInfo, len(cfg.Features))
	for f := range features {
		features[f] = fusion.FeatureInfo{
			Name:      cfg.Features[f].Name,
			Dim:       cfg.Features[f].Dim,
			TableRows: cfg.Features[f].Rows,
			Pool:      embedding.PoolSum,
		}
	}
	return DefaultModel(features), batches, cfg
}

func fastOpts() Options {
	return Options{Occupancies: []int{1, 2, 3, 4, 6, 8}, Parallelism: 4}
}

func TestTuneProducesValidResult(t *testing.T) {
	model, batches, _ := tuneTestModel(t)
	dev := gpusim.V100()
	res, err := Tune(dev, model, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Choices) != len(model.Features) {
		t.Fatalf("%d choices for %d features", len(res.Choices), len(model.Features))
	}
	for f, idx := range res.ChoiceIdx {
		if idx < 0 || idx >= len(model.Candidates[f]) {
			t.Errorf("feature %d: choice index %d out of range", f, idx)
		}
		if res.Choices[f].Name() != model.Candidates[f][idx].Name() {
			t.Errorf("feature %d: choice/index disagree", f)
		}
	}
	found := false
	for _, occ := range fastOpts().Occupancies {
		if res.Occupancy == occ {
			found = true
		}
	}
	if !found {
		t.Errorf("selected occupancy %d not in the candidate list", res.Occupancy)
	}
	if res.Latency <= 0 {
		t.Error("latency must be positive")
	}
	for i := 1; i < len(res.PerOccupancy); i++ {
		if res.PerOccupancy[i].Latency < res.PerOccupancy[i-1].Latency {
			t.Error("PerOccupancy not sorted best-first")
		}
	}
	// The whole point: heterogeneous features get heterogeneous schedules.
	names := make(map[string]bool)
	for _, c := range res.Choices {
		names[c.Name()] = true
	}
	if len(names) < 2 {
		t.Errorf("tuner picked a single schedule %v for strongly heterogeneous features", names)
	}
}

func TestTuneDeterministic(t *testing.T) {
	model, batches, _ := tuneTestModel(t)
	dev := gpusim.V100()
	a, err := Tune(dev, model, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(dev, model, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Occupancy != b.Occupancy || a.Latency != b.Latency {
		t.Errorf("nondeterministic: occ %d/%d latency %g/%g", a.Occupancy, b.Occupancy, a.Latency, b.Latency)
	}
	for f := range a.ChoiceIdx {
		if a.ChoiceIdx[f] != b.ChoiceIdx[f] {
			t.Errorf("feature %d: choice %d vs %d", f, a.ChoiceIdx[f], b.ChoiceIdx[f])
		}
	}
}

// The Figure 11 direction: the two-stage interference-simulated tuner must
// not lose to the separate-combine straw man on the same candidate sets.
func TestTwoStageBeatsSeparateCombine(t *testing.T) {
	model, batches, _ := tuneTestModel(t)
	dev := gpusim.V100()
	two, err := Tune(dev, model, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	sep, err := SeparateCombine(dev, model, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Sub-percent differences are measurement-level ties at this model
	// size; the two-stage tuner must never lose materially.
	if two.Latency > sep.Latency*1.01 {
		t.Errorf("two-stage (%g) lost to separate-combine (%g)", two.Latency, sep.Latency)
	}
}

func TestTuneErrorPaths(t *testing.T) {
	model, batches, _ := tuneTestModel(t)
	dev := gpusim.V100()
	if _, err := Tune(dev, model, nil, fastOpts()); err == nil {
		t.Error("no batches accepted")
	}
	if _, err := Tune(dev, &Model{}, batches, fastOpts()); err == nil {
		t.Error("empty model accepted")
	}
	bad := &Model{Features: model.Features, Candidates: make([][]sched.Schedule, len(model.Features))}
	if _, err := Tune(dev, bad, batches, fastOpts()); err == nil {
		t.Error("empty candidate set accepted")
	}
	// Occupancy 32 is unreachable for 256-thread blocks (8 warps, 64 slots).
	if _, err := Tune(dev, model, batches, Options{Occupancies: []int{32}, Parallelism: 2}); err == nil {
		t.Error("unreachable occupancy list accepted")
	}
	if _, err := SeparateCombine(dev, model, nil, fastOpts()); err == nil {
		t.Error("separate-combine without batches accepted")
	}
}

func TestDefaultModel(t *testing.T) {
	features := []fusion.FeatureInfo{
		{Name: "a", Dim: 4, TableRows: 100},
		{Name: "b", Dim: 128, TableRows: 100},
	}
	m := DefaultModel(features)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(m.Candidates[0]) == 0 || len(m.Candidates[1]) == 0 {
		t.Error("default candidates missing")
	}
}

func TestOccupancyCandidatesDerived(t *testing.T) {
	model, _, _ := tuneTestModel(t)
	dev := gpusim.V100()
	defaults := Options{}
	occ, warps, err := occupancyCandidates(dev, model, defaults.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if warps != 8 {
		t.Errorf("warps = %d, want 8 (256-thread candidates)", warps)
	}
	if len(occ) == 0 || len(occ) > 8 {
		t.Errorf("derived %d occupancy levels, want 1..8", len(occ))
	}
	if occ[0] != 1 || occ[len(occ)-1] != 8 {
		t.Errorf("occupancy extremes %v, want 1..8 kept", occ)
	}
}

// The tuned kernel must still compute correct outputs end to end.
func TestTunedKernelCorrect(t *testing.T) {
	model, batches, cfg := tuneTestModel(t)
	dev := gpusim.V100()
	res, err := Tune(dev, model, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	capped := datasynth.CapRows(cfg, 4096)
	tables, err := datasynth.BuildTables(capped)
	if err != nil {
		t.Fatal(err)
	}
	// Regenerate a batch against the capped config so IDs stay in range.
	rng := rand.New(rand.NewSource(5))
	batch, err := datasynth.GenerateBatch(capped, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	features := make([]fusion.FeatureInfo, len(model.Features))
	copy(features, model.Features)
	for f := range features {
		features[f].TableRows = capped.Features[f].Rows
	}
	fu, err := fusion.Compile(dev, features, res.Choices, batch, fusion.Options{TargetBlocksPerSM: res.Occupancy})
	if err != nil {
		t.Fatal(err)
	}
	want, err := fusion.ReferenceOutputs(features, tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fu.Execute(tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	for f := range want {
		for i := range want[f] {
			if want[f][i] != got[f][i] {
				t.Fatalf("feature %d out[%d]: %g != %g", f, i, got[f][i], want[f][i])
			}
		}
	}
}

// AutoModel candidates must feed the two-stage tuner end to end and produce
// a result competitive with the hand-curated default sets.
func TestAutoModelTunes(t *testing.T) {
	model, batches, _ := tuneTestModel(t)
	dev := gpusim.V100()
	auto, err := AutoModel(dev, model.Features, batches[0], sched.AutoOptions{MaxCandidates: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := auto.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Tune(dev, auto, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	def, err := Tune(dev, model, batches, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Auto candidates should be in the same league as the curated sets.
	if res.Latency > def.Latency*1.5 {
		t.Errorf("auto-tuned latency %g vs default %g (>1.5x worse)", res.Latency, def.Latency)
	}
}
