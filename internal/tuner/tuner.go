// Package tuner implements RecFlex's interference-aware feature schedule
// tuner: the two-stage, interference-simulated search of §IV-A that picks one
// schedule per feature for the fused kernel.
//
//   - Local stage: for every achievable occupancy value O_k, tune each
//     feature independently under explicitly controlled occupancy. All of a
//     feature's candidates are co-executed inside one kernel (so they compete
//     in the same environment) and the grid is padded with redundant blocks
//     to fill every SM, simulating the SM-level and grid-level contention of
//     the final fused kernel. The candidate with the lowest summed block time
//     (the paper's Equation 3) wins.
//   - Global stage: for every O_k, the fusion compiler builds the fused
//     kernel from the stage-one winners with occupancy pinned to O_k; the
//     best-measuring occupancy and its schedule set are the result
//     (Equation 4).
//
// Complexity is O(F·K + K) kernel compilations, the paper's polynomial bound.
//
// Two engines implement the search. Tune (parallel.go) is the production
// engine: it runs both stages on a shared worker pool with deterministic
// error selection, and optionally prunes with successive halving
// (Options.Prune), warm-starts from an incumbent result (Options.Warm), and
// serves repeated simulations from a shared cache (Options.Memo). With all
// of those off, Tune returns a bit-identical Result to TuneSerial — the
// frozen reference engine kept as the equivalence oracle and benchmark
// baseline (see the equivalence property tests).
//
// The straw-man separate-combine tuner of §II-C (tune each feature's latency
// in isolation, no padding, no occupancy control) lives in separate.go and
// exists to reproduce the Figure 11 ablation.
package tuner

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// Model bundles what the tuner needs to know about the recommendation model.
type Model struct {
	Features   []fusion.FeatureInfo
	Candidates [][]sched.Schedule // Candidates[f] is S^(f)
}

// Validate checks the model description.
func (m *Model) Validate() error {
	if len(m.Features) == 0 {
		return fmt.Errorf("tuner: model has no features")
	}
	if len(m.Candidates) != len(m.Features) {
		return fmt.Errorf("tuner: %d candidate sets for %d features", len(m.Candidates), len(m.Features))
	}
	for f, set := range m.Candidates {
		if len(set) == 0 {
			return fmt.Errorf("tuner: feature %d (%s) has no schedule candidates", f, m.Features[f].Name)
		}
	}
	return nil
}

// DefaultModel builds a Model with the stock candidate sets for each feature.
func DefaultModel(features []fusion.FeatureInfo) *Model {
	m := &Model{Features: features, Candidates: make([][]sched.Schedule, len(features))}
	for f := range features {
		m.Candidates[f] = sched.DefaultCandidates(features[f].Dim)
	}
	return m
}

// AutoModel builds a Model whose candidate sets are generated automatically
// from a sampled batch (the §VII "Automatic scheduling" direction): the full
// template parameter grid is pruned per feature by the analytic cost model
// before the expensive interference-simulated search runs.
func AutoModel(dev *gpusim.Device, features []fusion.FeatureInfo, sample *embedding.Batch, opts sched.AutoOptions) (*Model, error) {
	ws, err := fusion.AnalyzeBatch(features, sample)
	if err != nil {
		return nil, err
	}
	l2 := sched.L2Context{
		CacheBytes:      float64(dev.L2SizeBytes),
		WorkingSetBytes: fusion.WorkingSetBytes(features, ws),
	}
	m := &Model{Features: features, Candidates: make([][]sched.Schedule, len(features))}
	for f := range features {
		m.Candidates[f] = sched.AutoCandidates(&ws[f], dev, l2, opts)
		if len(m.Candidates[f]) == 0 {
			return nil, fmt.Errorf("tuner: automatic search found no candidates for feature %d (%s)", f, features[f].Name)
		}
	}
	return m, nil
}

// Warm seeds a re-tune from an incumbent tuning result (typically the
// outgoing generation of a continuous-serving hot swap). The parallel engine
// uses it two ways: the incumbent candidate of every feature always survives
// successive-halving rounds (so pruning can never discard the proven
// schedule), and the incumbent occupancy is measured first in the global
// stage so every other occupancy can stop measuring as soon as its partial
// latency sum proves it cannot beat the incumbent.
type Warm struct {
	// ChoiceIdx[f] is the incumbent candidate index of feature f. It must
	// cover every feature of the model being tuned.
	ChoiceIdx []int
	// Occupancy is the incumbent blocks-per-SM value.
	Occupancy int
}

// WarmFrom derives a warm-start seed from a previous tuning result. A nil
// result yields a nil seed (cold start), so it is safe to call unguarded.
func WarmFrom(res *Result) *Warm {
	if res == nil {
		return nil
	}
	return &Warm{
		ChoiceIdx: append([]int(nil), res.ChoiceIdx...),
		Occupancy: res.Occupancy,
	}
}

// Options configures the tuner.
type Options struct {
	// Occupancies lists the blocks-per-SM values to try in the local
	// stage. Nil derives every achievable level from the model's widest
	// block, thinned to at most MaxOccupancies values.
	Occupancies []int

	// MaxOccupancies bounds the derived occupancy list (default 8 — "the
	// count is often less than ten").
	MaxOccupancies int

	// Parallelism is the number of concurrent feature-tuning workers
	// (default GOMAXPROCS).
	Parallelism int

	// PaddingFactor scales the padded grid relative to one full wave of
	// resident blocks (default 2: blocks experience both intra-SM and
	// successor contention).
	PaddingFactor float64

	// MaxBlocksPerCandidate caps how many of a candidate's planned blocks
	// the local stage co-executes (stride-sampled; the score scales the
	// measured sum back to the full plan). Default 16. Zero or negative
	// keeps the default; set very large to measure every block.
	MaxBlocksPerCandidate int

	// SpillReuse matches fusion.Options.SpillReuse.
	SpillReuse float64

	// Prune enables successive-halving pruning in the local stage. All
	// candidates are first scored on a cheap pass — stride-sampled down to
	// PruneSampleBlocks blocks each and co-scheduled across features so the
	// padded grid is paid once per (occupancy, batch) instead of once per
	// (occupancy, feature, batch) — the best half per feature survives, and
	// survivors are re-scored on the full block budget. Pruned selections
	// are validated by the exact global stage, so the reported Latency is
	// always a true fused measurement; only the local-stage candidate
	// ranking is approximate. With Prune false the local stage is
	// exhaustive and Tune is bit-identical to TuneSerial.
	Prune bool

	// PruneSampleBlocks is the per-candidate block budget of the cheap
	// first pass when Prune is on (default MaxBlocksPerCandidate/4,
	// minimum 1).
	PruneSampleBlocks int

	// Warm seeds the search from an incumbent result; see Warm. Nil means
	// a cold search. Ignored by TuneSerial.
	Warm *Warm

	// Memo, when non-nil, serves repeated local- and global-stage
	// simulations from a shared cache instead of re-simulating. Hits are
	// bit-identical to fresh simulations, so a memoized run returns
	// exactly the cold-run Result. The cache is concurrency-safe and
	// meant to be shared across occupancies, batches, successive re-tunes
	// and fleet models. Ignored by TuneSerial.
	Memo *Memo

	// Serial routes Tune to TuneSerial, the frozen reference engine
	// (exhaustive two-stage search, serial global stage, no pruning, no
	// warm start, no memoization). Useful for A/B measurements against
	// the fleet-speed engine.
	Serial bool
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxOccupancies <= 0 {
		out.MaxOccupancies = 8
	}
	if out.Parallelism <= 0 {
		out.Parallelism = runtime.GOMAXPROCS(0)
	}
	if out.PaddingFactor <= 0 {
		out.PaddingFactor = 2
	}
	if out.MaxBlocksPerCandidate <= 0 {
		out.MaxBlocksPerCandidate = 16
	}
	if out.SpillReuse <= 0 {
		out.SpillReuse = 4
	}
	if out.PruneSampleBlocks <= 0 {
		out.PruneSampleBlocks = out.MaxBlocksPerCandidate / 4
		if out.PruneSampleBlocks < 1 {
			out.PruneSampleBlocks = 1
		}
	}
	return out
}

// OccupancyResult records the outcome of one global-stage trial.
type OccupancyResult struct {
	BlocksPerSM int
	ChoiceIdx   []int
	Latency     float64 // summed fused latency over tuning batches, seconds
	// Abandoned marks a warm-started trial that stopped measuring early:
	// its partial latency sum already exceeded the incumbent's complete
	// latency, so the occupancy cannot win and Latency holds the partial
	// sum (a lower bound on the true value). Always false without
	// Options.Warm. Abandoned trials sort after complete ones.
	Abandoned bool
}

// Result is the tuner's output.
type Result struct {
	// Choices[f] is the selected schedule of feature f.
	Choices []sched.Schedule
	// ChoiceIdx[f] is its index within Candidates[f].
	ChoiceIdx []int
	// Occupancy is the selected blocks-per-SM value.
	Occupancy int
	// Latency is the fused-kernel latency sum over the tuning batches at
	// the selected occupancy.
	Latency float64
	// PerOccupancy holds every global-stage trial, best first.
	PerOccupancy []OccupancyResult
}

// analyzeBatches runs the host-side workload analysis once per batch, shared
// by all tuning workers.
func analyzeBatches(dev *gpusim.Device, model *Model, batches []*embedding.Batch) ([][]sched.Workload, []sched.L2Context, error) {
	ws := make([][]sched.Workload, len(batches))
	l2 := make([]sched.L2Context, len(batches))
	for bi, b := range batches {
		w, err := fusion.AnalyzeBatch(model.Features, b)
		if err != nil {
			return nil, nil, err
		}
		ws[bi] = w
		l2[bi] = sched.L2Context{
			CacheBytes:      float64(dev.L2SizeBytes),
			WorkingSetBytes: fusion.WorkingSetBytes(model.Features, w),
		}
	}
	return ws, l2, nil
}

// TuneSerial runs the reference two-stage interference-simulated search over
// the historical batches (Equation 5: the winner minimizes summed time over
// sampled data). It is the pre-fleet-speed engine, kept verbatim in behavior:
// exhaustive local stage, one occupancy at a time in the global stage, and
// none of the fleet-speed options (Prune, Warm, Memo) honored. Tune with
// those options off is pinned bit-identical to this function by the
// equivalence property tests, which is what licenses the fast path.
func TuneSerial(dev *gpusim.Device, model *Model, batches []*embedding.Batch, opts Options) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("tuner: no historical batches")
	}
	o := opts.withDefaults()

	occupancies, warpsPerBlock, err := occupancyCandidates(dev, model, o)
	if err != nil {
		return nil, err
	}

	ws, l2, err := analyzeBatches(dev, model, batches)
	if err != nil {
		return nil, err
	}

	// Padding pool: redundant embedding operations over the whole model's
	// workloads (planned with a neutral schedule). Filling SMs with these
	// blocks reproduces the fused kernel's mixed SM-level and grid-level
	// traffic — light one-hot blocks and heavy multi-hot blocks alike —
	// rather than oversaturating the device with copies of the feature
	// under tuning.
	pool, err := paddingPool(dev, model, ws, l2)
	if err != nil {
		return nil, err
	}

	// Local stage: per-occupancy, per-feature interference-simulated
	// tuning, parallel across (occupancy, feature) pairs. runJobs cancels
	// outstanding work on the first failure and reports the failed job
	// with the lowest (occupancy, feature) index deterministically.
	perOcc := make([][]int, len(occupancies)) // [k][f] -> candidate index
	for k := range perOcc {
		perOcc[k] = make([]int, len(model.Features))
	}
	// Atomic because several features of one occupancy may prove it
	// infeasible concurrently.
	infeasibleOcc := make([]atomic.Bool, len(occupancies))
	nf := len(model.Features)
	err = runJobs(len(occupancies)*nf, o.Parallelism, func(i int) error {
		k, f := i/nf, i%nf
		idx, err := tuneFeature(dev, model, f, occupancies[k], warpsPerBlock, ws, l2, pool, o, nil, nil)
		switch {
		case errors.Is(err, errInfeasible):
			// A feature that cannot meet this occupancy rules the
			// occupancy out globally.
			infeasibleOcc[k].Store(true)
			return nil
		case err != nil:
			return fmt.Errorf("tuner: occupancy %d, feature %d (%s): %w",
				occupancies[k], f, model.Features[f].Name, err)
		default:
			perOcc[k][f] = idx
			return nil
		}
	})
	if err != nil {
		return nil, err
	}

	// Global stage: measure the fused kernel per occupancy.
	res := &Result{}
	for k, occ := range occupancies {
		if infeasibleOcc[k].Load() {
			continue
		}
		choices := choicesFor(model, perOcc[k])
		total := 0.0
		ok := true
		for _, b := range batches {
			fu, err := fusion.Compile(dev, model.Features, choices, b, fusion.Options{
				TargetBlocksPerSM: occ,
				SpillReuse:        o.SpillReuse,
			})
			if err != nil {
				ok = false
				break
			}
			r, err := fu.Simulate()
			if err != nil {
				return nil, fmt.Errorf("tuner: global stage occupancy %d: %w", occ, err)
			}
			total += r.Time
		}
		if !ok {
			continue
		}
		res.PerOccupancy = append(res.PerOccupancy, OccupancyResult{
			BlocksPerSM: occ,
			ChoiceIdx:   append([]int(nil), perOcc[k]...),
			Latency:     total,
		})
	}
	return finishResult(model, res)
}

// finishResult orders the global-stage trials (complete trials first, then by
// latency) and adopts the winner. Abandoned trials carry partial latency
// sums that already exceed the incumbent's complete latency, so they can
// never win; sorting them last keeps PerOccupancy readable.
func finishResult(model *Model, res *Result) (*Result, error) {
	if len(res.PerOccupancy) == 0 {
		return nil, fmt.Errorf("tuner: no feasible occupancy value")
	}
	sort.Slice(res.PerOccupancy, func(i, j int) bool {
		a, b := &res.PerOccupancy[i], &res.PerOccupancy[j]
		if a.Abandoned != b.Abandoned {
			return !a.Abandoned
		}
		return a.Latency < b.Latency
	})
	best := res.PerOccupancy[0]
	if best.Abandoned {
		return nil, fmt.Errorf("tuner: no feasible occupancy value")
	}
	res.Occupancy = best.BlocksPerSM
	res.ChoiceIdx = best.ChoiceIdx
	res.Latency = best.Latency
	res.Choices = choicesFor(model, best.ChoiceIdx)
	return res, nil
}

// choicesFor maps candidate indices to schedules.
func choicesFor(model *Model, idx []int) []sched.Schedule {
	out := make([]sched.Schedule, len(idx))
	for f, i := range idx {
		out[f] = model.Candidates[f][i]
	}
	return out
}

// occupancyCandidates derives the K occupancy levels to sweep from the
// model's widest candidate block.
func occupancyCandidates(dev *gpusim.Device, model *Model, o Options) ([]int, int, error) {
	maxThreads := 0
	for f := range model.Candidates {
		for _, s := range model.Candidates[f] {
			if t := s.Resources(model.Features[f].Dim).ThreadsPerBlock; t > maxThreads {
				maxThreads = t
			}
		}
	}
	if maxThreads == 0 {
		return nil, 0, fmt.Errorf("tuner: candidates declare no threads")
	}
	warps := (maxThreads + dev.WarpSize - 1) / dev.WarpSize
	if len(o.Occupancies) > 0 {
		return o.Occupancies, warps, nil
	}
	levels := gpusim.OccupancyLevels(dev, warps)
	if len(levels) > o.MaxOccupancies {
		// Thin evenly, always keeping the extremes.
		thinned := make([]int, 0, o.MaxOccupancies)
		step := float64(len(levels)-1) / float64(o.MaxOccupancies-1)
		for i := 0; i < o.MaxOccupancies; i++ {
			thinned = append(thinned, levels[int(float64(i)*step+0.5)])
		}
		levels = thinned
	}
	return levels, warps, nil
}
