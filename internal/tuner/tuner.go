// Package tuner implements RecFlex's interference-aware feature schedule
// tuner: the two-stage, interference-simulated search of §IV-A that picks one
// schedule per feature for the fused kernel.
//
//   - Local stage: for every achievable occupancy value O_k, tune each
//     feature independently under explicitly controlled occupancy. All of a
//     feature's candidates are co-executed inside one kernel (so they compete
//     in the same environment) and the grid is padded with redundant blocks
//     to fill every SM, simulating the SM-level and grid-level contention of
//     the final fused kernel. The candidate with the lowest summed block time
//     (the paper's Equation 3) wins.
//   - Global stage: for every O_k, the fusion compiler builds the fused
//     kernel from the stage-one winners with occupancy pinned to O_k; the
//     best-measuring occupancy and its schedule set are the result
//     (Equation 4).
//
// Complexity is O(F·K + K) kernel compilations, the paper's polynomial bound,
// and the local stage parallelizes across features (the paper uses eight
// GPUs; we use a worker pool).
//
// The straw-man separate-combine tuner of §II-C (tune each feature's latency
// in isolation, no padding, no occupancy control) lives in separate.go and
// exists to reproduce the Figure 11 ablation.
package tuner

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// Model bundles what the tuner needs to know about the recommendation model.
type Model struct {
	Features   []fusion.FeatureInfo
	Candidates [][]sched.Schedule // Candidates[f] is S^(f)
}

// Validate checks the model description.
func (m *Model) Validate() error {
	if len(m.Features) == 0 {
		return fmt.Errorf("tuner: model has no features")
	}
	if len(m.Candidates) != len(m.Features) {
		return fmt.Errorf("tuner: %d candidate sets for %d features", len(m.Candidates), len(m.Features))
	}
	for f, set := range m.Candidates {
		if len(set) == 0 {
			return fmt.Errorf("tuner: feature %d (%s) has no schedule candidates", f, m.Features[f].Name)
		}
	}
	return nil
}

// DefaultModel builds a Model with the stock candidate sets for each feature.
func DefaultModel(features []fusion.FeatureInfo) *Model {
	m := &Model{Features: features, Candidates: make([][]sched.Schedule, len(features))}
	for f := range features {
		m.Candidates[f] = sched.DefaultCandidates(features[f].Dim)
	}
	return m
}

// AutoModel builds a Model whose candidate sets are generated automatically
// from a sampled batch (the §VII "Automatic scheduling" direction): the full
// template parameter grid is pruned per feature by the analytic cost model
// before the expensive interference-simulated search runs.
func AutoModel(dev *gpusim.Device, features []fusion.FeatureInfo, sample *embedding.Batch, opts sched.AutoOptions) (*Model, error) {
	ws, err := fusion.AnalyzeBatch(features, sample)
	if err != nil {
		return nil, err
	}
	l2 := sched.L2Context{
		CacheBytes:      float64(dev.L2SizeBytes),
		WorkingSetBytes: fusion.WorkingSetBytes(features, ws),
	}
	m := &Model{Features: features, Candidates: make([][]sched.Schedule, len(features))}
	for f := range features {
		m.Candidates[f] = sched.AutoCandidates(&ws[f], dev, l2, opts)
		if len(m.Candidates[f]) == 0 {
			return nil, fmt.Errorf("tuner: automatic search found no candidates for feature %d (%s)", f, features[f].Name)
		}
	}
	return m, nil
}

// Options configures the tuner.
type Options struct {
	// Occupancies lists the blocks-per-SM values to try in the local
	// stage. Nil derives every achievable level from the model's widest
	// block, thinned to at most MaxOccupancies values.
	Occupancies []int

	// MaxOccupancies bounds the derived occupancy list (default 8 — "the
	// count is often less than ten").
	MaxOccupancies int

	// Parallelism is the number of concurrent feature-tuning workers
	// (default GOMAXPROCS).
	Parallelism int

	// PaddingFactor scales the padded grid relative to one full wave of
	// resident blocks (default 2: blocks experience both intra-SM and
	// successor contention).
	PaddingFactor float64

	// MaxBlocksPerCandidate caps how many of a candidate's planned blocks
	// the local stage co-executes (stride-sampled; the score scales the
	// measured sum back to the full plan). Default 16. Zero or negative
	// keeps the default; set very large to measure every block.
	MaxBlocksPerCandidate int

	// SpillReuse matches fusion.Options.SpillReuse.
	SpillReuse float64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxOccupancies <= 0 {
		out.MaxOccupancies = 8
	}
	if out.Parallelism <= 0 {
		out.Parallelism = runtime.GOMAXPROCS(0)
	}
	if out.PaddingFactor <= 0 {
		out.PaddingFactor = 2
	}
	if out.MaxBlocksPerCandidate <= 0 {
		out.MaxBlocksPerCandidate = 16
	}
	if out.SpillReuse <= 0 {
		out.SpillReuse = 4
	}
	return out
}

// OccupancyResult records the outcome of one global-stage trial.
type OccupancyResult struct {
	BlocksPerSM int
	ChoiceIdx   []int
	Latency     float64 // summed fused latency over tuning batches, seconds
}

// Result is the tuner's output.
type Result struct {
	// Choices[f] is the selected schedule of feature f.
	Choices []sched.Schedule
	// ChoiceIdx[f] is its index within Candidates[f].
	ChoiceIdx []int
	// Occupancy is the selected blocks-per-SM value.
	Occupancy int
	// Latency is the fused-kernel latency sum over the tuning batches at
	// the selected occupancy.
	Latency float64
	// PerOccupancy holds every global-stage trial, best first.
	PerOccupancy []OccupancyResult
}

// Tune runs the two-stage interference-simulated search over the historical
// batches (Equation 5: the winner minimizes summed time over sampled data).
func Tune(dev *gpusim.Device, model *Model, batches []*embedding.Batch, opts Options) (*Result, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("tuner: no historical batches")
	}
	o := opts.withDefaults()

	occupancies, warpsPerBlock, err := occupancyCandidates(dev, model, o)
	if err != nil {
		return nil, err
	}

	// Host-side workload analysis once per batch, shared by all workers.
	ws := make([][]sched.Workload, len(batches))
	l2 := make([]sched.L2Context, len(batches))
	for bi, b := range batches {
		w, err := fusion.AnalyzeBatch(model.Features, b)
		if err != nil {
			return nil, err
		}
		ws[bi] = w
		l2[bi] = sched.L2Context{
			CacheBytes:      float64(dev.L2SizeBytes),
			WorkingSetBytes: fusion.WorkingSetBytes(model.Features, w),
		}
	}

	// Padding pool: redundant embedding operations over the whole model's
	// workloads (planned with a neutral schedule). Filling SMs with these
	// blocks reproduces the fused kernel's mixed SM-level and grid-level
	// traffic — light one-hot blocks and heavy multi-hot blocks alike —
	// rather than oversaturating the device with copies of the feature
	// under tuning.
	pool, err := paddingPool(dev, model, ws, l2)
	if err != nil {
		return nil, err
	}

	// Local stage: per-occupancy, per-feature interference-simulated
	// tuning, parallel across (occupancy, feature) pairs.
	perOcc := make([][]int, len(occupancies)) // [k][f] -> candidate index
	for k := range perOcc {
		perOcc[k] = make([]int, len(model.Features))
	}
	infeasibleOcc := make([]bool, len(occupancies))
	type job struct{ k, f int }
	jobs := make(chan job)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < o.Parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				idx, err := tuneFeature(dev, model, j.f, occupancies[j.k], warpsPerBlock, ws, l2, pool, o)
				mu.Lock()
				switch {
				case errors.Is(err, errInfeasible):
					// A feature that cannot meet this occupancy rules
					// the occupancy out globally.
					infeasibleOcc[j.k] = true
				case err != nil:
					if firstErr == nil {
						firstErr = fmt.Errorf("tuner: occupancy %d, feature %d (%s): %w",
							occupancies[j.k], j.f, model.Features[j.f].Name, err)
					}
				default:
					perOcc[j.k][j.f] = idx
				}
				mu.Unlock()
			}
		}()
	}
	for k := range occupancies {
		for f := range model.Features {
			jobs <- job{k, f}
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Global stage: measure the fused kernel per occupancy.
	res := &Result{}
	for k, occ := range occupancies {
		if infeasibleOcc[k] {
			continue
		}
		choices := choicesFor(model, perOcc[k])
		total := 0.0
		ok := true
		for _, b := range batches {
			fu, err := fusion.Compile(dev, model.Features, choices, b, fusion.Options{
				TargetBlocksPerSM: occ,
				SpillReuse:        o.SpillReuse,
			})
			if err != nil {
				ok = false
				break
			}
			r, err := fu.Simulate()
			if err != nil {
				return nil, fmt.Errorf("tuner: global stage occupancy %d: %w", occ, err)
			}
			total += r.Time
		}
		if !ok {
			continue
		}
		res.PerOccupancy = append(res.PerOccupancy, OccupancyResult{
			BlocksPerSM: occ,
			ChoiceIdx:   append([]int(nil), perOcc[k]...),
			Latency:     total,
		})
	}
	if len(res.PerOccupancy) == 0 {
		return nil, fmt.Errorf("tuner: no feasible occupancy value")
	}
	sort.Slice(res.PerOccupancy, func(i, j int) bool {
		return res.PerOccupancy[i].Latency < res.PerOccupancy[j].Latency
	})
	best := res.PerOccupancy[0]
	res.Occupancy = best.BlocksPerSM
	res.ChoiceIdx = best.ChoiceIdx
	res.Latency = best.Latency
	res.Choices = choicesFor(model, best.ChoiceIdx)
	return res, nil
}

// choicesFor maps candidate indices to schedules.
func choicesFor(model *Model, idx []int) []sched.Schedule {
	out := make([]sched.Schedule, len(idx))
	for f, i := range idx {
		out[f] = model.Candidates[f][i]
	}
	return out
}

// occupancyCandidates derives the K occupancy levels to sweep from the
// model's widest candidate block.
func occupancyCandidates(dev *gpusim.Device, model *Model, o Options) ([]int, int, error) {
	maxThreads := 0
	for f := range model.Candidates {
		for _, s := range model.Candidates[f] {
			if t := s.Resources(model.Features[f].Dim).ThreadsPerBlock; t > maxThreads {
				maxThreads = t
			}
		}
	}
	if maxThreads == 0 {
		return nil, 0, fmt.Errorf("tuner: candidates declare no threads")
	}
	warps := (maxThreads + dev.WarpSize - 1) / dev.WarpSize
	if len(o.Occupancies) > 0 {
		return o.Occupancies, warps, nil
	}
	levels := gpusim.OccupancyLevels(dev, warps)
	if len(levels) > o.MaxOccupancies {
		// Thin evenly, always keeping the extremes.
		thinned := make([]int, 0, o.MaxOccupancies)
		step := float64(len(levels)-1) / float64(o.MaxOccupancies-1)
		for i := 0; i < o.MaxOccupancies; i++ {
			thinned = append(thinned, levels[int(float64(i)*step+0.5)])
		}
		levels = thinned
	}
	return levels, warps, nil
}
