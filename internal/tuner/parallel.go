package tuner

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// Tune runs the two-stage interference-simulated search over the historical
// batches (Equation 5: the winner minimizes summed time over sampled data).
//
// This is the fleet-speed engine: both stages run on a shared worker pool
// (Options.Parallelism) with cancellation on first error, and three optional
// accelerations trade none of the final measurement's exactness — the global
// stage always reports true fused latencies:
//
//   - Options.Memo serves repeated simulations from a shared cache;
//     hits are bit-identical to fresh runs.
//   - Options.Prune replaces the exhaustive local stage with successive
//     halving: one cheap co-scheduled pass over all features ranks every
//     candidate, the best half per feature is re-scored on the full block
//     budget.
//   - Options.Warm protects the incumbent schedule from pruning, measures
//     the incumbent occupancy first, and abandons any other occupancy as
//     soon as its partial latency sum exceeds the incumbent's total (such an
//     occupancy cannot win, so dropping it never changes the selection).
//
// With Prune and Warm off and Memo nil, Tune returns a bit-identical Result
// to TuneSerial (pinned by the equivalence property tests). Options.Serial
// forces the reference engine.
func Tune(dev *gpusim.Device, model *Model, batches []*embedding.Batch, opts Options) (*Result, error) {
	if opts.Serial {
		return TuneSerial(dev, model, batches, opts)
	}
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if len(batches) == 0 {
		return nil, fmt.Errorf("tuner: no historical batches")
	}
	o := opts.withDefaults()

	occupancies, warpsPerBlock, err := occupancyCandidates(dev, model, o)
	if err != nil {
		return nil, err
	}

	warmIdx, err := warmChoices(model, o.Warm)
	if err != nil {
		return nil, err
	}

	ws, l2, err := analyzeBatches(dev, model, batches)
	if err != nil {
		return nil, err
	}

	// See TuneSerial: the padding pool reproduces the fused kernel's mixed
	// traffic when the local stage fills the SMs around the candidates.
	pool, err := paddingPool(dev, model, ws, l2)
	if err != nil {
		return nil, err
	}

	var fps *fingerprints
	if o.Memo != nil {
		fps = newFingerprints(dev, model, ws, l2, o)
	}

	// Local stage. infeasibleOcc is atomic because several features of one
	// occupancy may prove it infeasible concurrently.
	nf := len(model.Features)
	perOcc := make([][]int, len(occupancies))
	infeasibleOcc := make([]atomic.Bool, len(occupancies))
	if o.Prune {
		// One job per occupancy: the grouped passes inside already
		// amortize across features, and the two halving passes must see
		// scores summed over every batch before selecting survivors.
		err = runJobs(len(occupancies), o.Parallelism, func(k int) error {
			choice, infeasible, err := tuneOccupancyPruned(dev, model, occupancies[k], warpsPerBlock, ws, l2, pool, o, warmIdx, fps)
			if err != nil {
				return fmt.Errorf("tuner: occupancy %d: %w", occupancies[k], err)
			}
			infeasibleOcc[k].Store(infeasible)
			perOcc[k] = choice
			return nil
		})
	} else {
		for k := range perOcc {
			perOcc[k] = make([]int, nf)
		}
		err = runJobs(len(occupancies)*nf, o.Parallelism, func(i int) error {
			k, f := i/nf, i%nf
			idx, err := tuneFeature(dev, model, f, occupancies[k], warpsPerBlock, ws, l2, pool, o, o.Memo, fps)
			switch {
			case errors.Is(err, errInfeasible):
				infeasibleOcc[k].Store(true)
				return nil
			case err != nil:
				return fmt.Errorf("tuner: occupancy %d, feature %d (%s): %w",
					occupancies[k], f, model.Features[f].Name, err)
			default:
				perOcc[k][f] = idx
				return nil
			}
		})
	}
	if err != nil {
		return nil, err
	}

	// Global stage: measure the fused kernel per occupancy, in parallel.
	// With a warm start the incumbent occupancy is measured to completion
	// first; its total latency then bounds every other trial, which may
	// abandon as soon as its partial sum exceeds the bound.
	entries := make([]*OccupancyResult, len(occupancies))
	measure := func(k int, bound float64) error {
		occ := occupancies[k]
		choices := choicesFor(model, perOcc[k])
		total := 0.0
		abandoned := false
		for bi, b := range batches {
			compute := func() (any, error) {
				fu, err := fusion.Compile(dev, model.Features, choices, b, fusion.Options{
					TargetBlocksPerSM: occ,
					SpillReuse:        o.SpillReuse,
				})
				if err != nil {
					// A fused-compile failure rules the occupancy out
					// (matching TuneSerial); it is a result, not an error.
					return &globalScore{skip: true}, nil
				}
				r, err := fu.Simulate()
				if err != nil {
					return nil, err
				}
				return &globalScore{time: r.Time}, nil
			}
			var v any
			var err error
			if o.Memo != nil {
				v, err = o.Memo.do(fps.globalKey(occ, bi, perOcc[k]), compute)
			} else {
				v, err = compute()
			}
			if err != nil {
				return fmt.Errorf("tuner: global stage occupancy %d: %w", occ, err)
			}
			g := v.(*globalScore)
			if g.skip {
				return nil
			}
			total += g.time
			if total > bound && bi < len(batches)-1 {
				abandoned = true
				break
			}
		}
		entries[k] = &OccupancyResult{
			BlocksPerSM: occ,
			ChoiceIdx:   append([]int(nil), perOcc[k]...),
			Latency:     total,
			Abandoned:   abandoned,
		}
		return nil
	}

	bound := math.Inf(1)
	warmK := -1
	if o.Warm != nil {
		for k, occ := range occupancies {
			if occ == o.Warm.Occupancy && !infeasibleOcc[k].Load() {
				warmK = k
				break
			}
		}
		if warmK >= 0 {
			if err := measure(warmK, math.Inf(1)); err != nil {
				return nil, err
			}
			if e := entries[warmK]; e != nil {
				bound = e.Latency
			}
		}
	}
	err = runJobs(len(occupancies), o.Parallelism, func(k int) error {
		if k == warmK || infeasibleOcc[k].Load() {
			return nil
		}
		return measure(k, bound)
	})
	if err != nil {
		return nil, err
	}

	res := &Result{}
	for k := range occupancies {
		if entries[k] != nil {
			res.PerOccupancy = append(res.PerOccupancy, *entries[k])
		}
	}
	return finishResult(model, res)
}

// warmChoices validates a warm-start seed against the model and returns the
// per-feature incumbent candidate indices (nil for a cold start).
func warmChoices(model *Model, w *Warm) ([]int, error) {
	if w == nil {
		return nil, nil
	}
	if len(w.ChoiceIdx) != len(model.Features) {
		return nil, fmt.Errorf("tuner: warm start covers %d features, model has %d", len(w.ChoiceIdx), len(model.Features))
	}
	for f, ci := range w.ChoiceIdx {
		if ci < 0 || ci >= len(model.Candidates[f]) {
			return nil, fmt.Errorf("tuner: warm start candidate %d out of range for feature %d (%s)", ci, f, model.Features[f].Name)
		}
	}
	return w.ChoiceIdx, nil
}

// tuneOccupancyPruned runs the successive-halving local stage for one
// occupancy: a cheap grouped pass scores every feasible candidate of every
// feature on a reduced block budget, halve keeps the best half per feature
// (plus the warm incumbent), and a full-budget grouped pass re-scores the
// survivors. When every feature is down to one survivor the second pass is
// skipped — there is nothing left to discriminate.
func tuneOccupancyPruned(dev *gpusim.Device, model *Model, occ, warpsPerBlock int,
	ws [][]sched.Workload, l2 []sched.L2Context, pool [][]gpusim.BlockWork,
	o Options, warmIdx []int, fps *fingerprints) (choice []int, infeasible bool, err error) {

	nf := len(model.Features)
	envs := make([]*featureEnv, nf)
	maxSmem := 0
	kernelThreads := warpsPerBlock * dev.WarpSize
	for f := 0; f < nf; f++ {
		env, err := newFeatureEnv(dev, model, f, occ, warpsPerBlock)
		if errors.Is(err, errInfeasible) {
			return nil, true, nil
		}
		if err != nil {
			return nil, false, err
		}
		envs[f] = env
		if env.maxSmem > maxSmem {
			maxSmem = env.maxSmem
		}
	}
	// One controlled resource footprint for the grouped kernel: the
	// shared-memory union over features, exactly like the fused kernel.
	res := gpusim.KernelResources{
		ThreadsPerBlock:   kernelThreads,
		RegsPerThread:     envs[0].controlled.RegsPerThread,
		SharedMemPerBlock: maxSmem,
	}
	controlled, _, err := res.ControlOccupancy(dev, occ)
	if err != nil {
		return nil, true, nil
	}

	runPass := func(eval [][]bool, budget int) (scores [][]float64, counted [][]bool, infeasible bool, err error) {
		scores = make([][]float64, nf)
		counted = make([][]bool, nf)
		for f := range envs {
			scores[f] = make([]float64, len(envs[f].candidates))
			counted[f] = make([]bool, len(envs[f].candidates))
		}
		sim := gpusim.NewSimulator()
		for bi := range ws {
			compute := func() (any, error) {
				return scoreGroupedBatch(dev, model, envs, occ, controlled, ws[bi], l2[bi], pool[bi], eval, budget, o, sim)
			}
			var v any
			var err error
			if o.Memo != nil {
				v, err = o.Memo.do(fps.groupKey(occ, warpsPerBlock, budget, bi, eval), compute)
			} else {
				v, err = compute()
			}
			if err != nil {
				return nil, nil, false, err
			}
			gs := v.(*groupScore)
			for f := range envs {
				if gs.empty[f] {
					// A feature with no runnable candidate in some batch
					// rules the occupancy out (matching tuneFeature).
					return nil, nil, true, nil
				}
				for ci := range scores[f] {
					scores[f][ci] += gs.contrib[f][ci]
					counted[f][ci] = counted[f][ci] || gs.counted[f][ci]
				}
			}
		}
		return scores, counted, false, nil
	}

	// Pass 1: every feasible candidate, cheap budget.
	eval := make([][]bool, nf)
	for f := range envs {
		eval[f] = append([]bool(nil), envs[f].feasible...)
	}
	scores, counted, infeasible, err := runPass(eval, o.PruneSampleBlocks)
	if err != nil || infeasible {
		return nil, infeasible, err
	}

	// Halve per feature, protecting the warm incumbent.
	choice = make([]int, nf)
	multi := false
	for f := range envs {
		protect := -1
		if warmIdx != nil {
			protect = warmIdx[f]
		}
		surv := halve(scores[f], counted[f], protect)
		if len(surv) == 0 {
			return nil, true, nil
		}
		for ci := range eval[f] {
			eval[f][ci] = false
		}
		for _, ci := range surv {
			eval[f][ci] = true
		}
		choice[f] = surv[0]
		if len(surv) > 1 {
			multi = true
		}
	}
	if !multi {
		return choice, false, nil
	}

	// Pass 2: survivors only, full budget.
	scores, counted, infeasible, err = runPass(eval, o.MaxBlocksPerCandidate)
	if err != nil || infeasible {
		return nil, infeasible, err
	}
	for f := range envs {
		best, bestScore := -1, math.Inf(1)
		for ci := range envs[f].candidates {
			if !eval[f][ci] || !counted[f][ci] {
				continue
			}
			if scores[f][ci] < bestScore {
				best, bestScore = ci, scores[f][ci]
			}
		}
		if best < 0 {
			return nil, true, nil
		}
		choice[f] = best
	}
	return choice, false, nil
}

// runJobs dispatches jobs 0..n-1 in index order to a pool of workers. Once
// any job fails, no further jobs are handed out (cancellation); jobs already
// dispatched run to completion. The returned error is the failed job with
// the lowest index — deterministic regardless of goroutine scheduling,
// because jobs are dispatched in index order over an unbuffered channel:
// when job j fails, every job i < j has already been handed to a worker and
// will record its own outcome, so the minimum over recorded failures cannot
// depend on timing.
func runJobs(n, workers int, run func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, n)
	var stop atomic.Bool
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := run(i); err != nil {
					errs[i] = err
					stop.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		if stop.Load() {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
