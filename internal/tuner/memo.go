package tuner

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/gpusim"
	"repro/internal/sched"
)

// Memo is a concurrency-safe simulation cache shared across Tune calls. Keys
// fingerprint everything a simulation's outcome depends on — device, feature
// workloads, candidate set, occupancy, block budget and tuning options — so a
// hit returns the exact float values a fresh simulation would produce: cached
// and cold runs are bit-identical. Entries are computed once (singleflight): a
// second goroutine asking for an in-flight key blocks until the first finishes
// and then shares its result, so concurrent re-tunes never duplicate work and
// never observe a torn entry.
//
// The cache grows without bound; it is meant to be scoped to a serving
// lifetime (one fleet, successive re-tunes) where repeated window batches make
// hits common. Call Reset to drop everything.
//
// A nil *Memo is valid and disables caching.
type Memo struct {
	mu     sync.Mutex
	m      map[string]*memoEntry
	hits   atomic.Int64
	misses atomic.Int64
}

type memoEntry struct {
	once sync.Once
	val  any
	err  error
}

// NewMemo returns an empty cache.
func NewMemo() *Memo {
	return &Memo{m: make(map[string]*memoEntry)}
}

// do returns the memoized value for key, computing it at most once. Results
// (including errors) are cached. Callers must treat returned values as
// immutable — they are shared across all hits.
func (m *Memo) do(key string, compute func() (any, error)) (any, error) {
	if m == nil {
		return compute()
	}
	m.mu.Lock()
	e, ok := m.m[key]
	if !ok {
		e = &memoEntry{}
		m.m[key] = e
	}
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Stats reports cache hits and misses since creation (or the last Reset).
func (m *Memo) Stats() (hits, misses int64) {
	if m == nil {
		return 0, 0
	}
	return m.hits.Load(), m.misses.Load()
}

// Len reports the number of cached entries.
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}

// Reset drops every cached entry and zeroes the counters.
func (m *Memo) Reset() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.m = make(map[string]*memoEntry)
	m.mu.Unlock()
	m.hits.Store(0)
	m.misses.Store(0)
}

// localScore is the memoized outcome of one per-feature local-stage batch:
// the per-candidate score contributions (TagTime scaled back to the full
// plan) for a single batch, to be summed across batches by the caller.
type localScore struct {
	contrib []float64
	counted []bool
	// empty marks a batch in which no candidate produced a runnable block,
	// which rules the occupancy out for this feature.
	empty bool
}

// groupScore is the memoized outcome of one grouped (pruned) local-stage
// batch covering every feature at once.
type groupScore struct {
	contrib [][]float64
	counted [][]bool
	empty   []bool // per feature: no runnable candidate block this batch
}

// globalScore is the memoized outcome of one global-stage (occupancy, batch)
// fused measurement.
type globalScore struct {
	time float64
	// skip marks a fused-compile failure, which rules the occupancy out
	// (matching the serial tuner's behavior).
	skip bool
}

// fingerprints holds the per-Tune key material for Memo lookups. All parts
// are digests of the underlying values (FNV-128a), so keys are stable across
// processes and collide only if the simulated inputs are identical — in which
// case sharing the cached result is exactly what we want (e.g. two features
// with identical candidate sets and workloads dedupe to one simulation).
type fingerprints struct {
	dev        string
	feature    []string   // static per-feature identity: dim, table, candidates
	batch      []string   // per-batch identity: every feature's workload + L2
	workload   [][]string // [batch][feature] workload digest
	optsLocal  string     // options that shape local-stage simulations
	optsGlobal string     // options that shape global-stage simulations
}

type fpHash struct {
	h   hash.Hash
	buf [8]byte
}

func newFP() *fpHash { return &fpHash{h: fnv.New128a()} }

func (p *fpHash) i64(v int64) {
	binary.LittleEndian.PutUint64(p.buf[:], uint64(v))
	p.h.Write(p.buf[:])
}

func (p *fpHash) f64(v float64) {
	binary.LittleEndian.PutUint64(p.buf[:], math.Float64bits(v))
	p.h.Write(p.buf[:])
}

func (p *fpHash) str(s string) {
	p.i64(int64(len(s)))
	p.h.Write([]byte(s))
}

func (p *fpHash) sum() string { return string(p.h.Sum(nil)) }

// newFingerprints digests the tuning inputs once per Tune call.
func newFingerprints(dev *gpusim.Device, model *Model, ws [][]sched.Workload, l2 []sched.L2Context, o Options) *fingerprints {
	fp := &fingerprints{}

	d := newFP()
	// The device struct is flat scalars; its printed form identifies it.
	fmt.Fprintf(d.h, "%+v", *dev)
	fp.dev = d.sum()

	fp.feature = make([]string, len(model.Features))
	for f := range model.Features {
		p := newFP()
		p.i64(int64(model.Features[f].Dim))
		p.i64(int64(model.Features[f].TableRows))
		p.i64(int64(model.Features[f].Pool))
		for _, s := range model.Candidates[f] {
			p.str(s.Name())
			r := s.Resources(model.Features[f].Dim)
			p.i64(int64(r.ThreadsPerBlock))
			p.i64(int64(r.RegsPerThread))
			p.i64(int64(r.SharedMemPerBlock))
		}
		fp.feature[f] = p.sum()
	}

	fp.batch = make([]string, len(ws))
	fp.workload = make([][]string, len(ws))
	for bi := range ws {
		fp.workload[bi] = make([]string, len(ws[bi]))
		p := newFP()
		p.f64(l2[bi].CacheBytes)
		p.f64(l2[bi].WorkingSetBytes)
		for f := range ws[bi] {
			// The padding pool and grouped kernels depend on every
			// feature's workload, so the batch digest covers them all;
			// the per-feature digest keys the per-feature local stage.
			q := newFP()
			w := &ws[bi][f]
			q.i64(int64(w.Dim))
			q.i64(int64(w.BatchSize))
			q.i64(int64(w.TotalRows))
			q.i64(int64(w.UniqueRows))
			q.i64(int64(w.TableRows))
			for _, pfv := range w.PF {
				q.i64(int64(pfv))
			}
			fp.workload[bi][f] = q.sum()
			p.str(fp.feature[f])
			p.str(fp.workload[bi][f])
		}
		fp.batch[bi] = p.sum()
	}

	lo := newFP()
	lo.f64(o.PaddingFactor)
	lo.f64(o.SpillReuse)
	fp.optsLocal = lo.sum()

	gl := newFP()
	gl.f64(o.SpillReuse)
	fp.optsGlobal = gl.sum()

	return fp
}

// localKey keys one per-feature local-stage batch simulation. It includes
// the feature's own workload digest on top of its static identity, so two
// replicated features share an entry only when their sampled workloads — and
// therefore their simulations — are identical.
func (fp *fingerprints) localKey(occ, warps, budget, f, bi int) string {
	return fmt.Sprintf("L1|%d|%d|%d|%s%s%s%s%s", occ, warps, budget, fp.dev, fp.feature[f], fp.workload[bi][f], fp.batch[bi], fp.optsLocal)
}

// groupKey keys one grouped local-stage batch simulation over all features
// with the given per-feature candidate eval masks.
func (fp *fingerprints) groupKey(occ, warps, budget, bi int, eval [][]bool) string {
	p := newFP()
	for f := range eval {
		for ci := range eval[f] {
			b := int64(0)
			if eval[f][ci] {
				b = 1
			}
			p.i64(b)
		}
		p.i64(-1)
	}
	return fmt.Sprintf("L2|%d|%d|%d|%s%s%s%s", occ, warps, budget, fp.dev, fp.batch[bi], fp.optsLocal, p.sum())
}

// globalKey keys one global-stage fused measurement of the given choice
// vector at the given occupancy.
func (fp *fingerprints) globalKey(occ, bi int, choice []int) string {
	p := newFP()
	for _, ci := range choice {
		p.i64(int64(ci))
	}
	return fmt.Sprintf("G|%d|%s%s%s", occ, fp.dev, fp.batch[bi], fp.optsGlobal+p.sum())
}
