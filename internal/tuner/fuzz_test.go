package tuner

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzSuccessiveHalving fuzzes the halving selection at the heart of the
// pruned local stage. Invariants, per the fleet-speed contract:
//
//   - the survivor set is a subset of the counted input candidates;
//   - a candidate whose sampled score ranks in the kept top half (ties
//     toward lower index) always survives — in particular the full-budget
//     winner is never pruned when its sampled rank is in the top half;
//   - the protected (warm incumbent) candidate always survives when counted;
//   - replaying the same inputs returns the same survivors (determinism);
//   - survivor count is bounded by ceil(n/2)+1 and survivors are sorted.
func FuzzSuccessiveHalving(f *testing.F) {
	f.Add(int64(1), uint8(8), int8(-1))
	f.Add(int64(2), uint8(3), int8(0))
	f.Add(int64(3), uint8(1), int8(5))
	f.Add(int64(42), uint8(32), int8(31))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, protect int8) {
		if n == 0 {
			n = 1
		}
		rng := rand.New(rand.NewSource(seed))
		scores := make([]float64, n)
		counted := make([]bool, n)
		for i := range scores {
			// Coarse quantization provokes score ties; uncounted
			// candidates keep whatever garbage score they carry.
			scores[i] = math.Floor(rng.Float64()*8) / 8
			counted[i] = rng.Intn(4) != 0
		}
		p := int(protect)

		surv := halve(scores, counted, p)
		again := halve(scores, counted, p)
		if len(surv) != len(again) {
			t.Fatalf("replay returned %d survivors, want %d", len(again), len(surv))
		}
		for i := range surv {
			if surv[i] != again[i] {
				t.Fatalf("replay diverged at %d: %d vs %d", i, again[i], surv[i])
			}
		}

		nCounted := 0
		for _, c := range counted {
			if c {
				nCounted++
			}
		}
		maxSurv := (nCounted+1)/2 + 1
		if nCounted <= 2 {
			maxSurv = nCounted
		}
		if len(surv) > maxSurv {
			t.Fatalf("%d survivors from %d counted, want <= %d", len(surv), nCounted, maxSurv)
		}
		if nCounted > 0 && len(surv) == 0 {
			t.Fatal("counted candidates but no survivors")
		}

		seen := make(map[int]bool)
		prev := -1
		for _, ci := range surv {
			if ci < 0 || ci >= int(n) {
				t.Fatalf("survivor %d out of range", ci)
			}
			if !counted[ci] {
				t.Fatalf("uncounted candidate %d survived", ci)
			}
			if ci <= prev {
				t.Fatalf("survivors not strictly ascending: %v", surv)
			}
			prev = ci
			seen[ci] = true
		}

		if p >= 0 && p < int(n) && counted[p] && !seen[p] {
			t.Fatalf("protected candidate %d pruned", p)
		}

		// Rank check: every candidate whose (score, index) rank among
		// counted candidates is within the kept half must survive. The
		// full-budget winner is a special case of this: if its sampled
		// score ranks top-half it is guaranteed a full-budget re-score.
		if nCounted > 2 {
			type sc struct {
				ci int
				s  float64
			}
			ranked := make([]sc, 0, nCounted)
			for ci := range scores {
				if counted[ci] {
					ranked = append(ranked, sc{ci, scores[ci]})
				}
			}
			for i := 0; i < len(ranked); i++ {
				for j := i + 1; j < len(ranked); j++ {
					less := ranked[j].s < ranked[i].s ||
						(ranked[j].s == ranked[i].s && ranked[j].ci < ranked[i].ci)
					if less {
						ranked[i], ranked[j] = ranked[j], ranked[i]
					}
				}
			}
			keep := (nCounted + 1) / 2
			for _, r := range ranked[:keep] {
				if !seen[r.ci] {
					t.Fatalf("top-half candidate %d (score %g) pruned; survivors %v", r.ci, r.s, surv)
				}
			}
		}
	})
}
