package tuner

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/gpusim"
)

// resultsBitIdentical compares two tuning results field by field, requiring
// exact float equality (bit-identical latencies) and identical PerOccupancy
// order.
func resultsBitIdentical(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Occupancy != want.Occupancy {
		t.Errorf("%s: occupancy %d, want %d", label, got.Occupancy, want.Occupancy)
	}
	if math.Float64bits(got.Latency) != math.Float64bits(want.Latency) {
		t.Errorf("%s: latency %v (bits %016x), want %v (bits %016x)",
			label, got.Latency, math.Float64bits(got.Latency), want.Latency, math.Float64bits(want.Latency))
	}
	if len(got.ChoiceIdx) != len(want.ChoiceIdx) {
		t.Fatalf("%s: %d choices, want %d", label, len(got.ChoiceIdx), len(want.ChoiceIdx))
	}
	for f := range want.ChoiceIdx {
		if got.ChoiceIdx[f] != want.ChoiceIdx[f] {
			t.Errorf("%s: feature %d choice %d, want %d", label, f, got.ChoiceIdx[f], want.ChoiceIdx[f])
		}
		if got.Choices[f].Name() != want.Choices[f].Name() {
			t.Errorf("%s: feature %d schedule %s, want %s", label, f, got.Choices[f].Name(), want.Choices[f].Name())
		}
	}
	if len(got.PerOccupancy) != len(want.PerOccupancy) {
		t.Fatalf("%s: %d per-occupancy trials, want %d", label, len(got.PerOccupancy), len(want.PerOccupancy))
	}
	for i := range want.PerOccupancy {
		w, g := &want.PerOccupancy[i], &got.PerOccupancy[i]
		if g.BlocksPerSM != w.BlocksPerSM {
			t.Errorf("%s: trial %d occupancy %d, want %d", label, i, g.BlocksPerSM, w.BlocksPerSM)
		}
		if math.Float64bits(g.Latency) != math.Float64bits(w.Latency) {
			t.Errorf("%s: trial %d latency bits %016x, want %016x", label, i, math.Float64bits(g.Latency), math.Float64bits(w.Latency))
		}
		if g.Abandoned != w.Abandoned {
			t.Errorf("%s: trial %d abandoned %v, want %v", label, i, g.Abandoned, w.Abandoned)
		}
		for f := range w.ChoiceIdx {
			if g.ChoiceIdx[f] != w.ChoiceIdx[f] {
				t.Errorf("%s: trial %d feature %d choice %d, want %d", label, i, f, g.ChoiceIdx[f], w.ChoiceIdx[f])
			}
		}
	}
}

// TestParallelTuneBitIdenticalToSerial is the equivalence pin of the
// fleet-speed engine: across seeded models and datasets, the parallel tuner
// with pruning off returns a bit-identical Result — Choices, ChoiceIdx,
// Occupancy, Latency and PerOccupancy order — to the reference serial Tune,
// at any worker count, with or without the shared memo cache.
func TestParallelTuneBitIdenticalToSerial(t *testing.T) {
	dev := gpusim.V100()
	for _, seed := range []int64{77, 1234, 9001} {
		model, batches, _ := buildTuneModel(t, 2, 2, 128, seed)
		opts := Options{Occupancies: []int{1, 2, 4, 8}, Parallelism: 1}
		want, err := TuneSerial(dev, model, batches, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 4} {
			o := opts
			o.Parallelism = par
			got, err := Tune(dev, model, batches, o)
			if err != nil {
				t.Fatal(err)
			}
			resultsBitIdentical(t, labelSeedPar("parallel", seed, par), want, got)
		}

		// Memoized runs are bit-identical too: a cold-cache run and a
		// fully warm re-run both reproduce the serial result exactly.
		memo := NewMemo()
		o := opts
		o.Parallelism = 4
		o.Memo = memo
		cold, err := Tune(dev, model, batches, o)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, labelSeedPar("memo-cold", seed, 4), want, cold)
		if _, misses := memo.Stats(); misses == 0 {
			t.Fatalf("seed %d: cold memo run recorded no misses", seed)
		}
		warm, err := Tune(dev, model, batches, o)
		if err != nil {
			t.Fatal(err)
		}
		resultsBitIdentical(t, labelSeedPar("memo-warm", seed, 4), want, warm)
		hits, _ := memo.Stats()
		if hits == 0 {
			t.Fatalf("seed %d: warm memo run recorded no hits", seed)
		}
	}
}

func labelSeedPar(kind string, seed int64, par int) string {
	return fmt.Sprintf("%s/seed=%d/par=%d", kind, seed, par)
}

// pruneLatencyBound is the stated selection-quality bound of successive
// halving: the pruned search's selected schedule set, measured by the exact
// global stage, must be within 10% of the exhaustive winner's fused latency.
// The global stage itself is never approximated, so the comparison is
// between two true fused measurements.
const pruneLatencyBound = 1.10

// TestPrunedTuneWithinBound pins the pruning-on half of the equivalence
// satellite: the pruned tuner's result is deterministic, identical across
// worker counts, and its selected schedule's fused latency is within
// pruneLatencyBound of the exhaustive serial winner.
func TestPrunedTuneWithinBound(t *testing.T) {
	dev := gpusim.V100()
	for _, seed := range []int64{77, 1234, 9001} {
		model, batches, _ := buildTuneModel(t, 2, 2, 128, seed)
		opts := Options{Occupancies: []int{1, 2, 4, 8}, Parallelism: 1}
		exhaustive, err := TuneSerial(dev, model, batches, opts)
		if err != nil {
			t.Fatal(err)
		}
		o := opts
		o.Prune = true
		o.Parallelism = 4
		pruned, err := Tune(dev, model, batches, o)
		if err != nil {
			t.Fatal(err)
		}
		if pruned.Latency > exhaustive.Latency*pruneLatencyBound {
			t.Errorf("seed %d: pruned latency %g exceeds bound %g (exhaustive %g)",
				seed, pruned.Latency, exhaustive.Latency*pruneLatencyBound, exhaustive.Latency)
		}
		// Pruned runs replay deterministically at any worker count.
		for _, par := range []int{1, 4} {
			o2 := o
			o2.Parallelism = par
			again, err := Tune(dev, model, batches, o2)
			if err != nil {
				t.Fatal(err)
			}
			resultsBitIdentical(t, labelSeedPar("prune-replay", seed, par), pruned, again)
		}
	}
}

// TestWarmStartMatchesCold pins warm-started re-tunes: seeding the search
// with the incumbent result must not change the selection — the winning
// occupancy, choices and latency are bit-identical to a cold search — and
// every abandoned trial's partial latency provably exceeds the winner's.
func TestWarmStartMatchesCold(t *testing.T) {
	dev := gpusim.V100()
	model, batches, _ := buildTuneModel(t, 2, 3, 128, 77)
	opts := Options{Occupancies: []int{1, 2, 4, 8}, Parallelism: 4}
	cold, err := Tune(dev, model, batches, opts)
	if err != nil {
		t.Fatal(err)
	}
	o := opts
	o.Warm = WarmFrom(cold)
	warm, err := Tune(dev, model, batches, o)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Occupancy != cold.Occupancy {
		t.Errorf("warm winner occupancy %d, want %d", warm.Occupancy, cold.Occupancy)
	}
	if math.Float64bits(warm.Latency) != math.Float64bits(cold.Latency) {
		t.Errorf("warm winner latency %g, want %g exactly", warm.Latency, cold.Latency)
	}
	for f := range cold.ChoiceIdx {
		if warm.ChoiceIdx[f] != cold.ChoiceIdx[f] {
			t.Errorf("feature %d: warm choice %d, want %d", f, warm.ChoiceIdx[f], cold.ChoiceIdx[f])
		}
	}
	for _, po := range warm.PerOccupancy {
		if po.Abandoned {
			if po.Latency <= warm.Latency {
				t.Errorf("abandoned occupancy %d has partial latency %g <= winner %g",
					po.BlocksPerSM, po.Latency, warm.Latency)
			}
		} else if cpo := cpoFor(cold, po.BlocksPerSM); cpo != nil {
			// Complete trials must match the cold run's measurement.
			if math.Float64bits(po.Latency) != math.Float64bits(cpo.Latency) {
				t.Errorf("occupancy %d: warm latency bits differ from cold", po.BlocksPerSM)
			}
		}
	}

	// Warm seeds that do not describe the model are rejected.
	if _, err := Tune(dev, model, batches, Options{
		Occupancies: opts.Occupancies, Parallelism: 1,
		Warm: &Warm{ChoiceIdx: []int{0}, Occupancy: 2},
	}); err == nil {
		t.Error("short warm seed accepted")
	}
	bad := WarmFrom(cold)
	bad.ChoiceIdx[0] = 999
	if _, err := Tune(dev, model, batches, Options{
		Occupancies: opts.Occupancies, Parallelism: 1, Warm: bad,
	}); err == nil {
		t.Error("out-of-range warm choice accepted")
	}
}

func cpoFor(res *Result, occ int) *OccupancyResult {
	for i := range res.PerOccupancy {
		if res.PerOccupancy[i].BlocksPerSM == occ {
			return &res.PerOccupancy[i]
		}
	}
	return nil
}

// TestOptionsSerialDispatch pins that Options.Serial routes Tune to the
// reference engine.
func TestOptionsSerialDispatch(t *testing.T) {
	dev := gpusim.V100()
	model, batches, _ := buildTuneModel(t, 1, 1, 64, 5)
	opts := Options{Occupancies: []int{2, 4}, Parallelism: 2, Serial: true}
	a, err := Tune(dev, model, batches, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TuneSerial(dev, model, batches, opts)
	if err != nil {
		t.Fatal(err)
	}
	resultsBitIdentical(t, "serial-dispatch", b, a)
}
