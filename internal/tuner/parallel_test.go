package tuner

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gpusim"
	"repro/internal/sched"
)

// countingSched wraps a schedule and counts Plan calls.
type countingSched struct {
	sched.Schedule
	calls *atomic.Int64
}

func (c countingSched) Plan(w *sched.Workload, dev *gpusim.Device, l2 sched.L2Context) (*sched.Plan, error) {
	c.calls.Add(1)
	return c.Schedule.Plan(w, dev, l2)
}

// failingSched wraps a schedule and fails every Plan call.
type failingSched struct {
	sched.Schedule
	calls *atomic.Int64
}

func (f failingSched) Plan(*sched.Workload, *gpusim.Device, sched.L2Context) (*sched.Plan, error) {
	f.calls.Add(1)
	return nil, errors.New("injected plan failure")
}

// TestLocalStageCancelsOnFirstError is the regression test for the
// pre-fleet-speed worker pool, which recorded only the first *completed*
// error (scheduling-dependent) and kept simulating every queued job after
// the failure. The fixed pool must (a) stop handing out local-stage jobs
// promptly once a job fails, and (b) return the error of the failed job with
// the lowest (occupancy, feature) index, deterministically across runs and
// worker counts.
func TestLocalStageCancelsOnFirstError(t *testing.T) {
	dev := gpusim.V100()
	model, batches, _ := buildTuneModel(t, 2, 2, 128, 77)

	// Feature 1's only candidate fails instantly; every other feature gets
	// its normal candidate set wrapped with a call counter. Feature 1
	// appears early in job order, so with cancellation only a small prefix
	// of the (occupancy × feature) grid may ever plan.
	var planCalls, failCalls atomic.Int64
	for f := range model.Candidates {
		if f == 1 {
			model.Candidates[f] = []sched.Schedule{failingSched{model.Candidates[f][0], &failCalls}}
			continue
		}
		wrapped := make([]sched.Schedule, len(model.Candidates[f]))
		for ci, s := range model.Candidates[f] {
			wrapped[ci] = countingSched{s, &planCalls}
		}
		model.Candidates[f] = wrapped
	}

	occupancies := []int{1, 2, 4, 8}
	nf := len(model.Features)
	wantPrefix := fmt.Sprintf("tuner: occupancy %d, feature 1 (", occupancies[0])
	for run := 0; run < 3; run++ {
		for _, par := range []int{1, 4} {
			planCalls.Store(0)
			_, err := Tune(dev, model, batches, Options{Occupancies: occupancies, Parallelism: par})
			if err == nil {
				t.Fatal("injected failure did not surface")
			}
			// Deterministic first-in-job-order error: always occupancy
			// occupancies[0], feature 1 — never a later job's failure.
			if !strings.HasPrefix(err.Error(), wantPrefix) {
				t.Fatalf("run %d par %d: error %q, want prefix %q", run, par, err.Error(), wantPrefix)
			}
			if !strings.Contains(err.Error(), "injected plan failure") {
				t.Fatalf("run %d par %d: error %q does not wrap the injected failure", run, par, err.Error())
			}
			// Cancellation: the failing job is job index 1 of
			// len(occupancies)*nf. Without cancellation every job plans
			// (candidates × batches) times; with it, only jobs dispatched
			// before the failure registered may run. Allow generous
			// scheduling slack (workers racing ahead) but pin that the
			// sweep stopped long before the full grid.
			jobs := len(occupancies) * nf
			maxJobs := int64(2 + par + 2) // dispatched before fail + in-flight slack
			perJob := int64(len(batches) * 30)
			if got := planCalls.Load(); got > maxJobs*perJob {
				t.Fatalf("run %d par %d: %d plan calls after failure, want <= %d (full grid would be ~%d jobs)",
					run, par, got, maxJobs*perJob, jobs)
			}
		}
	}
}

// TestRunJobsDeterministicError pins runJobs directly: the lowest-index
// failure wins regardless of worker count, and dispatch stops promptly after
// the failure instead of sweeping all n jobs. Jobs past the failing index
// block on a gate the failing job closes, so the started count is bounded by
// the in-flight window rather than by goroutine scheduling luck.
func TestRunJobsDeterministicError(t *testing.T) {
	const n = 100
	for _, workers := range []int{1, 3, 8} {
		var started atomic.Int64
		gate := make(chan struct{})
		err := runJobs(n, workers, func(i int) error {
			started.Add(1)
			switch {
			case i == 5:
				close(gate)
				return fmt.Errorf("job %d failed", i)
			case i > 5:
				<-gate
				if i == 7 || i == 20 {
					return fmt.Errorf("job %d failed", i)
				}
			}
			return nil
		})
		if err == nil || err.Error() != "job 5 failed" {
			t.Fatalf("workers=%d: error %v, want job 5's", workers, err)
		}
		if s := started.Load(); s > int64(6+4*workers) {
			t.Errorf("workers=%d: %d jobs started after early failure", workers, s)
		}
	}
	if err := runJobs(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("clean run returned %v", err)
	}
	// Degenerate worker counts are clamped.
	if err := runJobs(3, 0, func(int) error { return nil }); err != nil {
		t.Fatalf("workers=0 run returned %v", err)
	}
}

// TestMemoSingleflightUnderRace hammers one Memo from many goroutines
// computing overlapping keys: every key's compute must run exactly once, all
// callers of a key must observe the same value (no torn entries), and the
// hit/miss counters must add up.
func TestMemoSingleflightUnderRace(t *testing.T) {
	memo := NewMemo()
	const keys = 16
	const goroutines = 8
	var computes [keys]atomic.Int64
	var wg sync.WaitGroup
	vals := make([][]any, goroutines)
	for g := 0; g < goroutines; g++ {
		vals[g] = make([]any, keys)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				key := fmt.Sprintf("key-%d", k)
				v, err := memo.do(key, func() (any, error) {
					computes[k].Add(1)
					return &localScore{contrib: []float64{float64(k)}}, nil
				})
				if err != nil {
					t.Errorf("goroutine %d key %d: %v", g, k, err)
					return
				}
				vals[g][k] = v
			}
		}(g)
	}
	wg.Wait()
	for k := 0; k < keys; k++ {
		if c := computes[k].Load(); c != 1 {
			t.Errorf("key %d computed %d times, want 1", k, c)
		}
		for g := 1; g < goroutines; g++ {
			if vals[g][k] != vals[0][k] {
				t.Errorf("key %d: goroutine %d observed a different entry", k, g)
			}
		}
		if got := vals[0][k].(*localScore).contrib[0]; got != float64(k) {
			t.Errorf("key %d: torn value %v", k, got)
		}
	}
	hits, misses := memo.Stats()
	if misses != keys {
		t.Errorf("%d misses, want %d", misses, keys)
	}
	if hits != int64(keys*(goroutines-1)) {
		t.Errorf("%d hits, want %d", hits, keys*(goroutines-1))
	}
	if memo.Len() != keys {
		t.Errorf("len %d, want %d", memo.Len(), keys)
	}
	memo.Reset()
	if memo.Len() != 0 {
		t.Error("reset left entries behind")
	}

	// Errors are memoized too (singleflight on failures).
	var fails atomic.Int64
	for i := 0; i < 3; i++ {
		_, err := memo.do("bad", func() (any, error) {
			fails.Add(1)
			return nil, errors.New("boom")
		})
		if err == nil || err.Error() != "boom" {
			t.Fatalf("iteration %d: err %v", i, err)
		}
	}
	if fails.Load() != 1 {
		t.Errorf("failing compute ran %d times, want 1", fails.Load())
	}

	// A nil memo is a pass-through.
	var nilMemo *Memo
	ran := 0
	if _, err := nilMemo.do("x", func() (any, error) { ran++; return nil, nil }); err != nil || ran != 1 {
		t.Errorf("nil memo: ran=%d err=%v", ran, err)
	}
	nilMemo.Reset()
	if h, m := nilMemo.Stats(); h != 0 || m != 0 || nilMemo.Len() != 0 {
		t.Error("nil memo stats not empty")
	}
}

// TestFinishResultNeverPicksAbandoned pins the winner-selection invariant
// the warm-start early exit relies on: abandoned trials sort after complete
// ones and can never be adopted as the result.
func TestFinishResultNeverPicksAbandoned(t *testing.T) {
	m, _, _ := buildTuneModel(t, 1, 1, 64, 5)
	res := &Result{PerOccupancy: []OccupancyResult{
		{BlocksPerSM: 8, ChoiceIdx: zeroChoices(m), Latency: 0.5, Abandoned: true},
		{BlocksPerSM: 4, ChoiceIdx: zeroChoices(m), Latency: 2.0},
		{BlocksPerSM: 2, ChoiceIdx: zeroChoices(m), Latency: 3.0, Abandoned: true},
		{BlocksPerSM: 1, ChoiceIdx: zeroChoices(m), Latency: 1.0},
	}}
	out, err := finishResult(m, res)
	if err != nil {
		t.Fatal(err)
	}
	if out.Occupancy != 1 || out.Latency != 1.0 {
		t.Fatalf("picked occupancy %d latency %g, want complete trial occ=1 lat=1", out.Occupancy, out.Latency)
	}
	for i, po := range out.PerOccupancy[:2] {
		if po.Abandoned {
			t.Errorf("trial %d is abandoned but sorted before complete trials", i)
		}
	}

	// All-abandoned input cannot produce a winner.
	res = &Result{PerOccupancy: []OccupancyResult{
		{BlocksPerSM: 8, ChoiceIdx: zeroChoices(m), Latency: 0.5, Abandoned: true},
	}}
	if _, err := finishResult(m, res); err == nil {
		t.Error("all-abandoned trials produced a winner")
	}
}

func zeroChoices(m *Model) []int { return make([]int, len(m.Features)) }
