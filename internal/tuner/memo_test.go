package tuner

import (
	"testing"

	"repro/internal/gpusim"
)

// Memo keys are device-aware: in a heterogeneous pool the same model tunes
// once per worker class, and a V100-keyed entry must never answer an
// A100-class lookup. This pins the device digest that every local/group/
// global key embeds.
func TestMemoFingerprintsDeviceAware(t *testing.T) {
	m := &Model{}
	v := newFingerprints(gpusim.V100(), m, nil, nil, Options{})
	a := newFingerprints(gpusim.A100(), m, nil, nil, Options{})
	if v.dev == a.dev {
		t.Fatal("V100 and A100 fingerprints collide; per-class tunes would share memo entries")
	}
	if v2 := newFingerprints(gpusim.V100(), m, nil, nil, Options{}); v.dev != v2.dev {
		t.Fatal("same-device fingerprint is unstable across calls; memo hits would never occur")
	}
}
