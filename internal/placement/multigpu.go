package placement

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

// InterconnectGBps is the per-GPU all-gather bandwidth of the output
// exchange (NVLink-class).
const InterconnectGBps = 150e9

// MultiGPU runs one tuned RecFlex instance per device shard. Embedding
// execution is data-parallel over tables: each GPU owns a subset of the
// embedding tables, runs its fused kernel on its shard of the batch, and the
// pooled outputs are gathered for the DNN.
type MultiGPU struct {
	Placement *Placement
	Features  []fusion.FeatureInfo
	Shards    [][]fusion.FeatureInfo
	Instances []*core.RecFlex
}

// NewMultiGPU creates per-shard RecFlex instances on copies of the device.
func NewMultiGPU(dev *gpusim.Device, features []fusion.FeatureInfo, p *Placement) (*MultiGPU, error) {
	if err := p.Validate(len(features)); err != nil {
		return nil, err
	}
	m := &MultiGPU{
		Placement: p,
		Features:  features,
		Shards:    ShardFeatures(p, features),
	}
	for g := 0; g < p.NumGPUs; g++ {
		if len(m.Shards[g]) == 0 {
			return nil, fmt.Errorf("placement: GPU %d received no features", g)
		}
		m.Instances = append(m.Instances, core.New(dev, m.Shards[g]))
	}
	return m, nil
}

// Tune tunes every shard on its slice of the historical batches. The paper
// tunes shards on independent GPUs; here they tune sequentially but share
// nothing, so the result is identical.
func (m *MultiGPU) Tune(batches []*embedding.Batch, opts tuner.Options) error {
	for g, inst := range m.Instances {
		shardBatches := make([]*embedding.Batch, len(batches))
		for i, b := range batches {
			shardBatches[i] = ShardBatch(m.Placement, b)[g]
		}
		if err := inst.Tune(shardBatches, opts); err != nil {
			return fmt.Errorf("placement: tuning shard %d: %w", g, err)
		}
	}
	return nil
}

// MultiGPUResult decomposes one multi-GPU embedding execution.
type MultiGPUResult struct {
	// PerGPU is the fused-kernel time of each shard.
	PerGPU []float64
	// Makespan is the slowest shard (shards run concurrently).
	Makespan float64
	// Gather is the output-exchange time over the interconnect.
	Gather float64
}

// Total returns makespan + gather.
func (r *MultiGPUResult) Total() float64 { return r.Makespan + r.Gather }

// Measure executes one batch across all shards.
func (m *MultiGPU) Measure(batch *embedding.Batch) (*MultiGPUResult, error) {
	shards := ShardBatch(m.Placement, batch)
	res := &MultiGPUResult{PerGPU: make([]float64, len(m.Instances))}
	var outBytes float64
	for g, inst := range m.Instances {
		fu, err := inst.CompileBatch(shards[g])
		if err != nil {
			return nil, fmt.Errorf("placement: shard %d: %w", g, err)
		}
		r, err := fu.Simulate()
		if err != nil {
			return nil, err
		}
		res.PerGPU[g] = r.Time
		if r.Time > res.Makespan {
			res.Makespan = r.Time
		}
		for _, fi := range m.Shards[g] {
			outBytes += float64(fi.Dim) * float64(batch.BatchSize()) * 4
		}
	}
	// All-gather of the pooled outputs to the GPU running the DNN.
	res.Gather = outBytes / InterconnectGBps
	return res, nil
}

// Execute computes the functional outputs in the ORIGINAL feature order.
func (m *MultiGPU) Execute(tables []*embedding.Table, batch *embedding.Batch) ([][]float32, error) {
	if len(tables) != len(m.Features) {
		return nil, fmt.Errorf("placement: %d tables for %d features", len(tables), len(m.Features))
	}
	shards := ShardBatch(m.Placement, batch)
	featShards := m.Placement.Shards()
	outs := make([][]float32, len(m.Features))
	for g, inst := range m.Instances {
		shardTables := make([]*embedding.Table, len(featShards[g]))
		for i, f := range featShards[g] {
			shardTables[i] = tables[f]
		}
		fu, err := inst.CompileBatch(shards[g])
		if err != nil {
			return nil, err
		}
		shardOuts, err := fu.Execute(shardTables, shards[g])
		if err != nil {
			return nil, err
		}
		for i, f := range featShards[g] {
			outs[f] = shardOuts[i]
		}
	}
	return outs, nil
}
