package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

func placementModel(t testing.TB) ([]fusion.FeatureInfo, *datasynth.ModelConfig, []*embedding.Batch) {
	t.Helper()
	core := []datasynth.FeatureSpec{
		{Name: "oh", Dim: 8, Rows: 4096, PF: datasynth.Fixed{K: 1}, Coverage: 1},
		{Name: "mid", Dim: 16, Rows: 8192, PF: datasynth.Fixed{K: 20}, Coverage: 1},
		{Name: "heavy", Dim: 64, Rows: 8192, PF: datasynth.Fixed{K: 120}, Coverage: 1},
	}
	cfg := &datasynth.ModelConfig{Name: "place", Seed: 5}
	for r := 0; r < 6; r++ {
		for _, s := range core {
			c := s
			c.Name = c.Name + string(rune('a'+r))
			cfg.Features = append(cfg.Features, c)
		}
	}
	features := make([]fusion.FeatureInfo, len(cfg.Features))
	for f := range features {
		features[f] = fusion.FeatureInfo{
			Name: cfg.Features[f].Name, Dim: cfg.Features[f].Dim,
			TableRows: cfg.Features[f].Rows, Pool: embedding.PoolSum,
		}
	}
	rng := rand.New(rand.NewSource(5))
	var batches []*embedding.Batch
	for i := 0; i < 3; i++ {
		b, err := datasynth.GenerateBatch(cfg, 96, rng)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	return features, cfg, batches
}

func TestCollectStats(t *testing.T) {
	features, _, batches := placementModel(t)
	stats, err := CollectStats(features, batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(features) {
		t.Fatalf("%d stats for %d features", len(stats), len(features))
	}
	// heavy features (pf 120 x dim 64) must dominate one-hot dim-8 ones.
	var oh, heavy float64
	for f := range features {
		switch features[f].Dim {
		case 8:
			oh += stats[f].Work
		case 64:
			heavy += stats[f].Work
		}
	}
	if heavy < oh*50 {
		t.Errorf("heavy work %g should dwarf one-hot work %g", heavy, oh)
	}
	for f := range stats {
		wantBytes := int64(features[f].TableRows) * int64(features[f].Dim) * 4
		if stats[f].Bytes != wantBytes {
			t.Errorf("feature %d bytes %d, want %d", f, stats[f].Bytes, wantBytes)
		}
	}
	if _, err := CollectStats(features, nil); err == nil {
		t.Error("no batches accepted")
	}
}

func TestPlaceStrategies(t *testing.T) {
	features, _, batches := placementModel(t)
	stats, err := CollectStats(features, batches)
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{LPT, RoundRobin, CapacityOnly} {
		p, err := Place(stats, 4, 0, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if err := p.Validate(len(features)); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		shards := p.Shards()
		total := 0
		for _, s := range shards {
			total += len(s)
		}
		if total != len(features) {
			t.Errorf("%v: shards cover %d of %d features", strat, total, len(features))
		}
	}
}

func TestLPTBalancesBetterThanRoundRobin(t *testing.T) {
	// Skewed stats: a few giants among many ants.
	stats := make([]Stats, 24)
	for i := range stats {
		stats[i] = Stats{Work: 1, Bytes: 1000}
	}
	stats[0].Work, stats[1].Work, stats[2].Work = 100, 90, 80
	lpt, err := Place(stats, 4, 0, LPT)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Place(stats, 4, 0, RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if li, ri := LoadImbalance(lpt, stats), LoadImbalance(rr, stats); li > ri {
		t.Errorf("LPT imbalance %.3f should not exceed round-robin %.3f", li, ri)
	}
	if LoadImbalance(lpt, stats) > 1.6 {
		t.Errorf("LPT imbalance %.3f too high", LoadImbalance(lpt, stats))
	}
}

func TestPlaceRespectsCapacity(t *testing.T) {
	stats := []Stats{
		{Work: 1, Bytes: 600}, {Work: 1, Bytes: 600}, {Work: 1, Bytes: 600}, {Work: 1, Bytes: 600},
	}
	p, err := Place(stats, 2, 1200, LPT)
	if err != nil {
		t.Fatal(err)
	}
	used := make([]int64, 2)
	for f, g := range p.GPUOf {
		used[g] += stats[f].Bytes
	}
	for g, u := range used {
		if u > 1200 {
			t.Errorf("GPU %d over capacity: %d", g, u)
		}
	}
	// Impossible capacity must error, for every strategy.
	for _, strat := range []Strategy{LPT, RoundRobin, CapacityOnly} {
		if _, err := Place(stats, 2, 500, strat); err == nil {
			t.Errorf("%v: capacity violation accepted", strat)
		}
	}
}

func TestPlaceErrors(t *testing.T) {
	if _, err := Place(nil, 2, 0, LPT); err == nil {
		t.Error("empty stats accepted")
	}
	if _, err := Place([]Stats{{Work: 1}}, 0, 0, LPT); err == nil {
		t.Error("zero GPUs accepted")
	}
	if _, err := Place([]Stats{{Work: 1}}, 1, 0, Strategy(99)); err == nil {
		t.Error("unknown strategy accepted")
	}
}

// Property: ShardBatch partitions the features exactly, preserving data.
func TestShardBatchPartitionProperty(t *testing.T) {
	features, _, batches := placementModel(t)
	stats, err := CollectStats(features, batches)
	if err != nil {
		t.Fatal(err)
	}
	f := func(gpusRaw uint8, seed int64) bool {
		numGPUs := 1 + int(gpusRaw)%6
		strat := Strategy(int(seed&0xff) % 3)
		p, err := Place(stats, numGPUs, 0, strat)
		if err != nil {
			return false
		}
		shards := ShardBatch(p, batches[0])
		featShards := p.Shards()
		seen := 0
		for g := range shards {
			if len(shards[g].Features) != len(featShards[g]) {
				return false
			}
			for i, fIdx := range featShards[g] {
				orig := &batches[0].Features[fIdx]
				got := &shards[g].Features[i]
				if got.BatchSize() != orig.BatchSize() || got.TotalRows() != orig.TotalRows() {
					return false
				}
				seen++
			}
		}
		return seen == len(features)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMultiGPUTuneMeasureExecute(t *testing.T) {
	features, cfg, batches := placementModel(t)
	stats, err := CollectStats(features, batches)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Place(stats, 2, 0, LPT)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMultiGPU(gpusim.V100(), features, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Tune(batches[:2], tuner.Options{Occupancies: []int{2, 4, 8}, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Measure(batches[2])
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || res.Gather <= 0 || res.Total() < res.Makespan {
		t.Errorf("bad result %+v", res)
	}
	for g, tm := range res.PerGPU {
		if tm <= 0 || tm > res.Makespan {
			t.Errorf("GPU %d time %g outside (0, makespan]", g, tm)
		}
	}

	// Functional correctness across the shards, in original feature order.
	tables, err := datasynth.BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := m.Execute(tables, batches[2])
	if err != nil {
		t.Fatal(err)
	}
	want, err := fusion.ReferenceOutputs(features, tables, batches[2])
	if err != nil {
		t.Fatal(err)
	}
	for f := range want {
		for i := range want[f] {
			if outs[f][i] != want[f][i] {
				t.Fatalf("feature %d out[%d] = %g, want %g", f, i, outs[f][i], want[f][i])
			}
		}
	}
}

// Balanced placement must yield a lower makespan than a pathologically
// unbalanced one on the same model.
func TestBalancedPlacementLowersMakespan(t *testing.T) {
	features, _, batches := placementModel(t)
	stats, err := CollectStats(features, batches)
	if err != nil {
		t.Fatal(err)
	}
	lpt, err := Place(stats, 2, 0, LPT)
	if err != nil {
		t.Fatal(err)
	}
	// Adversarial: all heavy features on GPU 0.
	bad := &Placement{NumGPUs: 2, GPUOf: make([]int, len(features))}
	for f := range features {
		if features[f].Dim == 64 {
			bad.GPUOf[f] = 0
		} else {
			bad.GPUOf[f] = 1
		}
	}
	measure := func(p *Placement) float64 {
		m, err := NewMultiGPU(gpusim.V100(), features, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Tune(batches[:1], tuner.Options{Occupancies: []int{4, 8}, Parallelism: 4}); err != nil {
			t.Fatal(err)
		}
		r, err := m.Measure(batches[2])
		if err != nil {
			t.Fatal(err)
		}
		return r.Makespan
	}
	if mLPT, mBad := measure(lpt), measure(bad); mLPT >= mBad {
		t.Errorf("LPT makespan (%g) should beat the adversarial placement (%g)", mLPT, mBad)
	}
}

func TestStrategyString(t *testing.T) {
	if LPT.String() != "lpt" || RoundRobin.String() != "round-robin" || CapacityOnly.String() != "capacity-only" {
		t.Error("strategy names wrong")
	}
}
