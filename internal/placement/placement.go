// Package placement implements the multi-GPU extension sketched in the
// paper's Discussion (§VII, "Larger model sizes"): models whose embedding
// tables exceed one GPU's memory are sharded across devices — "place
// different embedding tables on multiple GPUs through heuristics and then use
// RecFlex to optimize the embedding operations on each GPU".
//
// The package provides the placement heuristics (workload-balancing LPT,
// plus round-robin and capacity-only baselines), batch sharding, and a
// MultiGPU runner that tunes one RecFlex instance per device and reports the
// makespan (max over GPUs) plus a gather cost for the concatenated outputs.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/embedding"
	"repro/internal/fusion"
)

// Stats is the per-feature workload summary placement decisions use.
type Stats struct {
	// Work is the expected per-sample cost proxy: mean pooling factor x
	// embedding dimension.
	Work float64
	// Bytes is the table's memory footprint.
	Bytes int64
}

// CollectStats derives placement stats from historical batches.
func CollectStats(features []fusion.FeatureInfo, batches []*embedding.Batch) ([]Stats, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("placement: no batches")
	}
	stats := make([]Stats, len(features))
	var samples float64
	for _, b := range batches {
		if len(b.Features) != len(features) {
			return nil, fmt.Errorf("placement: batch has %d features, model %d", len(b.Features), len(features))
		}
		samples += float64(b.BatchSize())
		for f := range features {
			stats[f].Work += float64(b.Features[f].TotalRows())
		}
	}
	for f := range features {
		if samples > 0 {
			stats[f].Work = stats[f].Work / samples * float64(features[f].Dim)
		}
		stats[f].Bytes = int64(features[f].TableRows) * int64(features[f].Dim) * 4
	}
	return stats, nil
}

// Strategy selects a placement heuristic.
type Strategy int

const (
	// LPT is longest-processing-time greedy balancing on expected work,
	// respecting per-GPU memory capacity.
	LPT Strategy = iota
	// RoundRobin assigns features cyclically, capacity permitting.
	RoundRobin
	// CapacityOnly packs by table size alone (first fit decreasing),
	// ignoring workload — the memory-only straw man.
	CapacityOnly
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case LPT:
		return "lpt"
	case RoundRobin:
		return "round-robin"
	case CapacityOnly:
		return "capacity-only"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Placement maps every feature to a GPU.
type Placement struct {
	NumGPUs int
	GPUOf   []int // feature -> gpu
}

// Shards returns the feature indices of each GPU, in ascending order.
func (p *Placement) Shards() [][]int {
	out := make([][]int, p.NumGPUs)
	for f, g := range p.GPUOf {
		out[g] = append(out[g], f)
	}
	return out
}

// Validate checks structural invariants against the model size.
func (p *Placement) Validate(numFeatures int) error {
	if p.NumGPUs <= 0 {
		return fmt.Errorf("placement: NumGPUs must be positive, got %d", p.NumGPUs)
	}
	if len(p.GPUOf) != numFeatures {
		return fmt.Errorf("placement: %d assignments for %d features", len(p.GPUOf), numFeatures)
	}
	for f, g := range p.GPUOf {
		if g < 0 || g >= p.NumGPUs {
			return fmt.Errorf("placement: feature %d assigned to GPU %d of %d", f, g, p.NumGPUs)
		}
	}
	return nil
}

// Place assigns features to numGPUs devices with capacityBytes of embedding
// memory each (0 = unlimited).
func Place(stats []Stats, numGPUs int, capacityBytes int64, strategy Strategy) (*Placement, error) {
	if numGPUs <= 0 {
		return nil, fmt.Errorf("placement: need at least one GPU, got %d", numGPUs)
	}
	if len(stats) == 0 {
		return nil, fmt.Errorf("placement: no features")
	}
	p := &Placement{NumGPUs: numGPUs, GPUOf: make([]int, len(stats))}
	used := make([]int64, numGPUs)
	load := make([]float64, numGPUs)

	fits := func(g, f int) bool {
		return capacityBytes <= 0 || used[g]+stats[f].Bytes <= capacityBytes
	}
	assign := func(g, f int) {
		p.GPUOf[f] = g
		used[g] += stats[f].Bytes
		load[g] += stats[f].Work
	}

	switch strategy {
	case RoundRobin:
		g := 0
		for f := range stats {
			placed := false
			for try := 0; try < numGPUs; try++ {
				cand := (g + try) % numGPUs
				if fits(cand, f) {
					assign(cand, f)
					g = (cand + 1) % numGPUs
					placed = true
					break
				}
			}
			if !placed {
				return nil, fmt.Errorf("placement: feature %d (%d bytes) fits no GPU", f, stats[f].Bytes)
			}
		}
	case LPT, CapacityOnly:
		order := make([]int, len(stats))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if strategy == CapacityOnly {
				return stats[order[a]].Bytes > stats[order[b]].Bytes
			}
			return stats[order[a]].Work > stats[order[b]].Work
		})
		for _, f := range order {
			best := -1
			for g := 0; g < numGPUs; g++ {
				if !fits(g, f) {
					continue
				}
				if best < 0 {
					best = g
					continue
				}
				if strategy == CapacityOnly {
					if used[g] < used[best] {
						best = g
					}
				} else if load[g] < load[best] {
					best = g
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("placement: feature %d (%d bytes) fits no GPU", f, stats[f].Bytes)
			}
			assign(best, f)
		}
	default:
		return nil, fmt.Errorf("placement: unknown strategy %d", int(strategy))
	}
	return p, nil
}

// LoadImbalance returns max/mean of per-GPU expected work (1.0 = perfect).
func LoadImbalance(p *Placement, stats []Stats) float64 {
	load := make([]float64, p.NumGPUs)
	for f, g := range p.GPUOf {
		load[g] += stats[f].Work
	}
	var max, sum float64
	for _, l := range load {
		if l > max {
			max = l
		}
		sum += l
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(p.NumGPUs))
}

// ShardBatch splits a batch by placement: the returned batches[g] holds the
// feature batches of GPU g's shard, in shard order.
func ShardBatch(p *Placement, batch *embedding.Batch) []*embedding.Batch {
	shards := p.Shards()
	out := make([]*embedding.Batch, p.NumGPUs)
	for g, fs := range shards {
		b := &embedding.Batch{Features: make([]embedding.FeatureBatch, len(fs))}
		for i, f := range fs {
			b.Features[i] = batch.Features[f]
		}
		out[g] = b
	}
	return out
}

// ShardFeatures projects the feature descriptions of one shard.
func ShardFeatures(p *Placement, features []fusion.FeatureInfo) [][]fusion.FeatureInfo {
	shards := p.Shards()
	out := make([][]fusion.FeatureInfo, p.NumGPUs)
	for g, fs := range shards {
		fi := make([]fusion.FeatureInfo, len(fs))
		for i, f := range fs {
			fi[i] = features[f]
		}
		out[g] = fi
	}
	return out
}
