package gpusim

import (
	"math"
	"math/rand"
	"testing"
)

// buildState assembles a simState with the given residents for direct rate
// checks.
func buildState(d *Device, blocks []BlockWork) (*simState, *Kernel) {
	k := &Kernel{Name: "rates", Resources: KernelResources{ThreadsPerBlock: 256}, Blocks: blocks}
	st := &simState{
		smWarps:    make([]float64, d.NumSMs),
		smLoad:     make([]int, d.NumSMs),
		demandIdx:  make([]int32, 0, len(blocks)),
		demandCap:  make([]float64, 0, len(blocks)),
		keepIdx:    make([]int32, 0, len(blocks)),
		demandIdx2: make([]int32, 0, len(blocks)),
		demandCap2: make([]float64, 0, len(blocks)),
		keepIdx2:   make([]int32, 0, len(blocks)),
	}
	for i := range blocks {
		b := &blocks[i]
		reqBytes := 32.0
		if b.MemRequests > 0 {
			reqBytes = (b.DRAMBytes + b.L2Bytes) / b.MemRequests
		}
		st.active = append(st.active, resident{
			remComp: b.CompCycles, remDRAM: b.DRAMBytes, remL2: b.L2Bytes,
		})
		st.meta = append(st.meta, residentMeta{
			idx: int32(i), sm: int32(i % d.NumSMs), warps: float64(b.Warps),
			capFactor: float64(b.Warps) * reqBytes,
		})
		// The event loop maintains the per-SM warp totals incrementally;
		// direct-rate tests mirror that bookkeeping here.
		st.smWarps[i%d.NumSMs] += float64(b.Warps)
		st.smLoad[i%d.NumSMs]++
	}
	return st, k
}

// Property: allocated DRAM rates never exceed the device bandwidth, every
// demander gets a positive rate, and no block exceeds its latency cap.
func TestWaterFillingConservationProperty(t *testing.T) {
	d := V100()
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		blocks := make([]BlockWork, n)
		for i := range blocks {
			blocks[i] = BlockWork{
				CompCycles:  float64(rng.Intn(10000)),
				DRAMBytes:   float64(rng.Intn(1 << 18)),
				L2Bytes:     float64(rng.Intn(1 << 16)),
				MemRequests: float64(1 + rng.Intn(2000)),
				Warps:       1 + rng.Intn(8),
				ActiveFrac:  1,
			}
		}
		st, _ := buildState(d, blocks)
		computeRates(d, st)
		var sumDRAM, sumL2 float64
		for i := range st.active {
			rb := &st.active[i]
			sumDRAM += rb.rateDRAM
			sumL2 += rb.rateL2
			if rb.remDRAM > simEps && rb.rateDRAM <= 0 {
				t.Fatalf("trial %d: DRAM demander %d starved", trial, i)
			}
			if rb.remDRAM <= simEps && rb.rateDRAM != 0 {
				t.Fatalf("trial %d: non-demander %d got DRAM rate", trial, i)
			}
			cap := st.meta[i].capFactor * d.MemParallelism * d.ClockHz / d.DRAMLatencyCycles
			if rb.rateDRAM > cap*(1+1e-9) {
				t.Fatalf("trial %d: block %d above latency cap: %g > %g", trial, i, rb.rateDRAM, cap)
			}
			if rb.remComp > simEps && rb.rateComp <= 0 {
				t.Fatalf("trial %d: block %d has no compute rate", trial, i)
			}
		}
		if sumDRAM > d.DRAMBandwidth*(1+1e-9) {
			t.Fatalf("trial %d: DRAM oversubscribed: %g > %g", trial, sumDRAM, d.DRAMBandwidth)
		}
		if sumL2 > d.L2Bandwidth*(1+1e-9) {
			t.Fatalf("trial %d: L2 oversubscribed: %g > %g", trial, sumL2, d.L2Bandwidth)
		}
	}
}

// Water-filling must be work-conserving: when aggregate demand caps exceed
// the bandwidth, the full bandwidth is handed out.
func TestWaterFillingWorkConserving(t *testing.T) {
	d := V100()
	blocks := make([]BlockWork, 600)
	for i := range blocks {
		blocks[i] = BlockWork{
			CompCycles:  1000,
			DRAMBytes:   1 << 20,
			MemRequests: 1 << 20 / 128, // large coalesced requests: high caps
			Warps:       8,
			ActiveFrac:  1,
		}
	}
	st, _ := buildState(d, blocks)
	computeRates(d, st)
	var sum float64
	for i := range st.active {
		sum += st.active[i].rateDRAM
	}
	if math.Abs(sum-d.DRAMBandwidth)/d.DRAMBandwidth > 1e-9 {
		t.Errorf("allocated %g of %g despite oversubscription", sum, d.DRAMBandwidth)
	}
}

// Capped blocks surrender bandwidth that uncapped blocks pick up.
func TestWaterFillingRedistribution(t *testing.T) {
	d := V100()
	blocks := []BlockWork{
		// Tiny requests: harshly latency-capped.
		{CompCycles: 1, DRAMBytes: 1 << 20, MemRequests: 1 << 20 / 4, Warps: 1, ActiveFrac: 1},
		// Huge requests: effectively uncapped.
		{CompCycles: 1, DRAMBytes: 1 << 20, MemRequests: 1, Warps: 8, ActiveFrac: 1},
	}
	st, _ := buildState(d, blocks)
	computeRates(d, st)
	capped := st.active[0].rateDRAM
	uncapped := st.active[1].rateDRAM
	fair := d.DRAMBandwidth / 2
	if capped >= fair {
		t.Errorf("latency-capped block got %g, at or above fair share %g", capped, fair)
	}
	if uncapped <= fair {
		t.Errorf("uncapped block got %g, should exceed fair share %g with redistribution", uncapped, fair)
	}
}

// Compute issue shares: a lone warp cannot saturate an SM, and shares scale
// with warp counts under contention.
func TestComputeIssueShares(t *testing.T) {
	d := V100()
	lone := []BlockWork{{CompCycles: 1000, Warps: 1, ActiveFrac: 1}}
	st, _ := buildState(d, lone)
	computeRates(d, st)
	want := d.PerWarpIssue * d.ClockHz
	if math.Abs(st.active[0].rateComp-want) > 1e-6*want {
		t.Errorf("lone warp rate %g, want per-warp ceiling %g", st.active[0].rateComp, want)
	}

	// Two blocks on the same SM: 2 and 6 warps; issue shared 1:3.
	pair := []BlockWork{
		{CompCycles: 1000, Warps: 2, ActiveFrac: 1},
		{CompCycles: 1000, Warps: 6, ActiveFrac: 1},
	}
	st2, _ := buildState(d, pair)
	// Move block 1 onto block 0's SM, mirroring the incremental warp-total
	// bookkeeping the event loop would perform.
	st2.smWarps[st2.meta[1].sm] -= st2.meta[1].warps
	st2.meta[1].sm = st2.meta[0].sm
	st2.smWarps[st2.meta[1].sm] += st2.meta[1].warps
	computeRates(d, st2)
	r0, r1 := st2.active[0].rateComp, st2.active[1].rateComp
	if math.Abs(r1/r0-3) > 1e-9 {
		t.Errorf("issue shares %g:%g, want 1:3", r0, r1)
	}
	total := (r0 + r1) / d.ClockHz
	if total > float64(d.IssueSlotsPerSM)*(1+1e-9) {
		t.Errorf("SM issue oversubscribed: %g slots", total)
	}
}
