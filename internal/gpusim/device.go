// Package gpusim provides a deterministic, event-driven performance simulator
// of a CUDA-class GPU. It models the mechanisms that RecFlex's schedule tuner
// reasons about: streaming multiprocessors (SMs) with warp-slot, register and
// shared-memory occupancy limits; non-preemptive round-robin thread-block
// scheduling; processor-shared DRAM and L2 bandwidth; latency hiding that
// scales with resident warps; warp divergence; and per-block launch overhead.
//
// The simulator is a fluid (rate-based) model: between scheduling events every
// resident block drains three work dimensions — compute cycles, DRAM bytes and
// L2 bytes — at rates derived from the current global contention state. A
// block completes when all three dimensions are empty. This reproduces the
// kernel-latency mechanism of RecFlex's Equation 2 (sum of block times divided
// by parallel block slots) while also capturing tail effects and imbalance
// that the closed-form approximation ignores.
package gpusim

import "fmt"

// Device describes the static hardware configuration of a simulated GPU.
// All bandwidths are in bytes per second and all latencies in core cycles.
type Device struct {
	Name string

	// SM geometry.
	NumSMs             int
	WarpSize           int
	MaxWarpsPerSM      int
	MaxBlocksPerSM     int
	MaxThreadsPerBlock int

	// Per-SM resources that bound occupancy.
	RegistersPerSM    int
	MaxRegsPerThread  int
	SharedMemPerSM    int
	SharedMemPerBlock int

	// Issue model. ClockHz is the core clock. IssueSlotsPerSM is the number
	// of warp instructions an SM can issue per cycle across its schedulers.
	// PerWarpIssue is the sustained per-warp issue rate (instructions per
	// cycle) once dependency stalls are accounted for; values below 1 mean a
	// single warp cannot saturate an issue slot, so compute throughput also
	// benefits from occupancy.
	ClockHz         float64
	IssueSlotsPerSM int
	PerWarpIssue    float64

	// Memory system.
	DRAMBandwidth     float64 // bytes/s
	DRAMLatencyCycles float64
	L2SizeBytes       int
	L2Bandwidth       float64 // bytes/s
	L2LatencyCycles   float64

	// MemParallelism is the number of outstanding memory requests a warp can
	// sustain. Together with the request size and latency it caps a block's
	// achievable memory rate, which is how low occupancy becomes
	// latency-bound.
	MemParallelism float64

	// Fixed overheads.
	KernelLaunchOverhead float64 // seconds, per kernel launch
	BlockOverheadCycles  float64 // cycles to schedule/drain one block
}

// Validate checks the device configuration for internally consistent values.
func (d *Device) Validate() error {
	switch {
	case d.NumSMs <= 0:
		return fmt.Errorf("gpusim: device %q: NumSMs must be positive, got %d", d.Name, d.NumSMs)
	case d.WarpSize <= 0:
		return fmt.Errorf("gpusim: device %q: WarpSize must be positive, got %d", d.Name, d.WarpSize)
	case d.MaxWarpsPerSM <= 0:
		return fmt.Errorf("gpusim: device %q: MaxWarpsPerSM must be positive, got %d", d.Name, d.MaxWarpsPerSM)
	case d.MaxBlocksPerSM <= 0:
		return fmt.Errorf("gpusim: device %q: MaxBlocksPerSM must be positive, got %d", d.Name, d.MaxBlocksPerSM)
	case d.MaxThreadsPerBlock <= 0:
		return fmt.Errorf("gpusim: device %q: MaxThreadsPerBlock must be positive, got %d", d.Name, d.MaxThreadsPerBlock)
	case d.RegistersPerSM <= 0:
		return fmt.Errorf("gpusim: device %q: RegistersPerSM must be positive, got %d", d.Name, d.RegistersPerSM)
	case d.SharedMemPerSM <= 0:
		return fmt.Errorf("gpusim: device %q: SharedMemPerSM must be positive, got %d", d.Name, d.SharedMemPerSM)
	case d.ClockHz <= 0:
		return fmt.Errorf("gpusim: device %q: ClockHz must be positive, got %g", d.Name, d.ClockHz)
	case d.IssueSlotsPerSM <= 0:
		return fmt.Errorf("gpusim: device %q: IssueSlotsPerSM must be positive, got %d", d.Name, d.IssueSlotsPerSM)
	case d.PerWarpIssue <= 0 || d.PerWarpIssue > 1:
		return fmt.Errorf("gpusim: device %q: PerWarpIssue must be in (0,1], got %g", d.Name, d.PerWarpIssue)
	case d.DRAMBandwidth <= 0:
		return fmt.Errorf("gpusim: device %q: DRAMBandwidth must be positive, got %g", d.Name, d.DRAMBandwidth)
	case d.L2Bandwidth <= 0:
		return fmt.Errorf("gpusim: device %q: L2Bandwidth must be positive, got %g", d.Name, d.L2Bandwidth)
	case d.DRAMLatencyCycles <= 0 || d.L2LatencyCycles <= 0:
		return fmt.Errorf("gpusim: device %q: memory latencies must be positive", d.Name)
	case d.MemParallelism <= 0:
		return fmt.Errorf("gpusim: device %q: MemParallelism must be positive, got %g", d.Name, d.MemParallelism)
	}
	return nil
}

// V100 returns the simulated configuration of an NVIDIA Tesla V100 (SXM2
// 32GB), the first evaluation platform of the paper.
func V100() *Device {
	return &Device{
		Name:                 "V100",
		NumSMs:               80,
		WarpSize:             32,
		MaxWarpsPerSM:        64,
		MaxBlocksPerSM:       32,
		MaxThreadsPerBlock:   1024,
		RegistersPerSM:       64 * 1024,
		MaxRegsPerThread:     255,
		SharedMemPerSM:       96 * 1024,
		SharedMemPerBlock:    96 * 1024,
		ClockHz:              1.38e9,
		IssueSlotsPerSM:      4,
		PerWarpIssue:         0.5,
		DRAMBandwidth:        900e9,
		DRAMLatencyCycles:    440,
		L2SizeBytes:          6 * 1024 * 1024,
		L2Bandwidth:          2150e9,
		L2LatencyCycles:      200,
		MemParallelism:       2,
		KernelLaunchOverhead: 4e-6,
		BlockOverheadCycles:  600,
	}
}

// A100 returns the simulated configuration of an NVIDIA A100 (SXM4 40GB), the
// second evaluation platform of the paper.
func A100() *Device {
	return &Device{
		Name:                 "A100",
		NumSMs:               108,
		WarpSize:             32,
		MaxWarpsPerSM:        64,
		MaxBlocksPerSM:       32,
		MaxThreadsPerBlock:   1024,
		RegistersPerSM:       64 * 1024,
		MaxRegsPerThread:     255,
		SharedMemPerSM:       164 * 1024,
		SharedMemPerBlock:    164 * 1024,
		ClockHz:              1.41e9,
		IssueSlotsPerSM:      4,
		PerWarpIssue:         0.5,
		DRAMBandwidth:        1555e9,
		DRAMLatencyCycles:    470,
		L2SizeBytes:          40 * 1024 * 1024,
		L2Bandwidth:          4800e9,
		L2LatencyCycles:      210,
		MemParallelism:       2,
		KernelLaunchOverhead: 4e-6,
		BlockOverheadCycles:  600,
	}
}

// CycleSeconds returns the duration of one core cycle.
func (d *Device) CycleSeconds() float64 { return 1.0 / d.ClockHz }

// ParallelBlockSlots returns the number of blocks the whole device can hold
// concurrently for a kernel limited to blocksPerSM resident blocks per SM.
func (d *Device) ParallelBlockSlots(blocksPerSM int) int {
	if blocksPerSM <= 0 {
		return 0
	}
	return d.NumSMs * blocksPerSM
}
