package gpusim

import "fmt"

// KernelResources is the static resource footprint of one kernel, the inputs
// of the CUDA occupancy calculation. RecFlex controls occupancy explicitly by
// adjusting these values (register capping with spill, shared-memory padding).
type KernelResources struct {
	ThreadsPerBlock   int
	RegsPerThread     int
	SharedMemPerBlock int // bytes
}

// WarpsPerBlock returns the number of warp slots one block occupies.
func (r KernelResources) WarpsPerBlock(d *Device) int {
	return (r.ThreadsPerBlock + d.WarpSize - 1) / d.WarpSize
}

// Validate checks the resource footprint against device limits.
func (r KernelResources) Validate(d *Device) error {
	switch {
	case r.ThreadsPerBlock <= 0:
		return fmt.Errorf("gpusim: ThreadsPerBlock must be positive, got %d", r.ThreadsPerBlock)
	case r.ThreadsPerBlock > d.MaxThreadsPerBlock:
		return fmt.Errorf("gpusim: ThreadsPerBlock %d exceeds device limit %d", r.ThreadsPerBlock, d.MaxThreadsPerBlock)
	case r.RegsPerThread < 0 || r.RegsPerThread > d.MaxRegsPerThread:
		return fmt.Errorf("gpusim: RegsPerThread %d outside [0,%d]", r.RegsPerThread, d.MaxRegsPerThread)
	case r.SharedMemPerBlock < 0:
		return fmt.Errorf("gpusim: SharedMemPerBlock must be non-negative, got %d", r.SharedMemPerBlock)
	case r.SharedMemPerBlock > d.SharedMemPerBlock:
		return fmt.Errorf("gpusim: SharedMemPerBlock %d exceeds device limit %d", r.SharedMemPerBlock, d.SharedMemPerBlock)
	case r.RegsPerThread*r.ThreadsPerBlock > d.RegistersPerSM:
		return fmt.Errorf("gpusim: one block needs %d registers, SM has %d", r.RegsPerThread*r.ThreadsPerBlock, d.RegistersPerSM)
	}
	return nil
}

// BlocksPerSM computes the CUDA occupancy in resident blocks per SM: the
// minimum over the warp-slot, block-slot, register-file and shared-memory
// constraints. A zero register or shared-memory usage does not constrain.
func (r KernelResources) BlocksPerSM(d *Device) int {
	warps := r.WarpsPerBlock(d)
	if warps == 0 {
		return 0
	}
	blocks := d.MaxBlocksPerSM
	if byWarps := d.MaxWarpsPerSM / warps; byWarps < blocks {
		blocks = byWarps
	}
	if r.RegsPerThread > 0 {
		perBlock := r.RegsPerThread * r.ThreadsPerBlock
		if byRegs := d.RegistersPerSM / perBlock; byRegs < blocks {
			blocks = byRegs
		}
	}
	if r.SharedMemPerBlock > 0 {
		if bySmem := d.SharedMemPerSM / r.SharedMemPerBlock; bySmem < blocks {
			blocks = bySmem
		}
	}
	return blocks
}

// OccupancyWarps returns the occupancy in active warps per SM, the quantity
// the paper calls O.
func (r KernelResources) OccupancyWarps(d *Device) int {
	return r.BlocksPerSM(d) * r.WarpsPerBlock(d)
}

// OccupancyLevels enumerates the achievable blocks-per-SM values for a kernel
// with the given warps per block on device d, from 1 up to the warp-slot
// bound. These are the K candidate occupancy values of the tuner's local
// stage ("the count is often less than ten" for realistic block sizes).
func OccupancyLevels(d *Device, warpsPerBlock int) []int {
	if warpsPerBlock <= 0 {
		return nil
	}
	maxBlocks := d.MaxWarpsPerSM / warpsPerBlock
	if maxBlocks > d.MaxBlocksPerSM {
		maxBlocks = d.MaxBlocksPerSM
	}
	levels := make([]int, 0, maxBlocks)
	for b := 1; b <= maxBlocks; b++ {
		levels = append(levels, b)
	}
	return levels
}

// ControlOccupancy returns an adjusted resource footprint whose natural
// occupancy equals target blocks per SM, together with the number of
// registers per thread that had to be spilled to reach it (0 when the target
// is reached by shared-memory padding alone).
//
// This mirrors RecFlex's explicit occupancy control: kernels whose natural
// occupancy is above the target get their shared memory padded; kernels whose
// register usage forbids the target get registers capped, with the overflow
// spilled to local (global) memory. The caller is responsible for charging
// the spill traffic to the block work (see SpillBytesPerThread).
func (r KernelResources) ControlOccupancy(d *Device, target int) (KernelResources, int, error) {
	if target <= 0 {
		return r, 0, fmt.Errorf("gpusim: occupancy target must be positive, got %d", target)
	}
	warps := r.WarpsPerBlock(d)
	maxByWarps := d.MaxWarpsPerSM / warps
	if maxByWarps > d.MaxBlocksPerSM {
		maxByWarps = d.MaxBlocksPerSM
	}
	if target > maxByWarps {
		return r, 0, fmt.Errorf("gpusim: occupancy target %d blocks/SM unreachable with %d warps/block (max %d)", target, warps, maxByWarps)
	}
	adjusted := r
	spilled := 0

	// Cap registers so that `target` blocks fit in the register file.
	regBudget := d.RegistersPerSM / (target * r.ThreadsPerBlock)
	if regBudget < 1 {
		regBudget = 1
	}
	if adjusted.RegsPerThread > regBudget {
		spilled = adjusted.RegsPerThread - regBudget
		adjusted.RegsPerThread = regBudget
	}

	// Shared memory must also fit `target` blocks.
	smemBudget := d.SharedMemPerSM / target
	if adjusted.SharedMemPerBlock > smemBudget {
		return r, 0, fmt.Errorf("gpusim: occupancy target %d blocks/SM unreachable: block needs %dB shared memory, budget %dB",
			target, adjusted.SharedMemPerBlock, smemBudget)
	}

	// Pad shared memory to force occupancy *down* to the target if the
	// kernel would naturally run wider.
	if natural := adjusted.BlocksPerSM(d); natural > target {
		pad := d.SharedMemPerSM / target
		if pad > d.SharedMemPerBlock {
			pad = d.SharedMemPerBlock
		}
		if pad > adjusted.SharedMemPerBlock {
			adjusted.SharedMemPerBlock = pad
		}
	}

	if got := adjusted.BlocksPerSM(d); got != target {
		return r, 0, fmt.Errorf("gpusim: occupancy control failed: wanted %d blocks/SM, achieved %d", target, got)
	}
	return adjusted, spilled, nil
}

// SpillBytesPerThread converts a per-thread spilled register count into the
// local-memory traffic it induces: each spilled register is stored and
// reloaded spillReuse times over the block lifetime, 4 bytes per access.
// RecFlex's Figure 12 attributes the collapse of schedules 0-20 on features 0
// and 2 to exactly this traffic.
func SpillBytesPerThread(spilledRegs int, spillReuse float64) float64 {
	if spilledRegs <= 0 {
		return 0
	}
	return float64(spilledRegs) * 4 * 2 * spillReuse // store + load per reuse
}
