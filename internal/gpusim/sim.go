package gpusim

import (
	"fmt"
	"math"
)

// SimResult reports the outcome of one kernel simulation.
type SimResult struct {
	// Time is the kernel wall-clock time in seconds, including the launch
	// overhead when the kernel requests it.
	Time float64

	// BlockTime[i] is the residency time of kernel block i (dispatch to
	// drain), the l_b of the paper's Equation 2.
	BlockTime []float64

	// BlockStart[i] is block i's dispatch time and BlockSM[i] the SM it ran
	// on — the scheduling trace behind Figure 5, used by tests to verify
	// the residency invariants and by tools to render timelines.
	BlockStart []float64
	BlockSM    []int32

	// TagTime sums BlockTime over blocks sharing a non-negative Tag. The
	// tuner's local stage reads per-candidate sums from here; the fusion
	// compiler reads per-feature sums.
	TagTime map[int]float64

	// TagBlocks counts blocks per non-negative tag.
	TagBlocks map[int]int

	// BlocksPerSM is the resident-block limit the simulation honored.
	BlocksPerSM int

	// Counters holds the Nsight-style hardware counters (Table II).
	Counters Counters
}

const simEps = 1e-15

// eventBatchTol batches dimension completions within 5% of the earliest one
// into a single scheduling event. It bounds the timing error of any single
// block at 5% while collapsing the event count of large grids.
const eventBatchTol = 0.05

// resident tracks one in-flight block. Residents live in a flat scratch
// slice; the hot loop is allocation-free.
type resident struct {
	idx                        int32
	sm                         int32
	warps                      float64
	remComp, remDRAM, remL2    float64
	rateComp, rateDRAM, rateL2 float64
	reqBytes                   float64
	start                      float64
}

// simState holds preallocated scratch for one simulation.
type simState struct {
	active  []resident
	smWarps []float64
	smLoad  []int
	// water-filling scratch: indices into active plus per-entry caps.
	demandIdx []int32
	demandCap []float64
	keepIdx   []int32
}

// Simulate runs kernel k on device d and returns the timing result. The
// simulation is deterministic: identical inputs produce identical outputs.
//
// Scheduling follows the GPU contract the paper's Figure 5 illustrates:
// blocks are dispatched in grid order to SMs with free slots (round-robin at
// launch, released-slot-first afterwards) and run non-preemptively until they
// drain. Between events, resident blocks drain their compute, DRAM and L2
// work at rates set by the current contention state; see rates.go.
func Simulate(d *Device, k *Kernel) (*SimResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if err := k.Validate(d); err != nil {
		return nil, err
	}
	bps := k.EffectiveBlocksPerSM(d)
	slots := d.ParallelBlockSlots(bps)
	if slots <= 0 {
		return nil, fmt.Errorf("gpusim: kernel %q has zero parallel block slots", k.Name)
	}
	if slots > len(k.Blocks) {
		slots = len(k.Blocks)
	}

	res := &SimResult{
		BlockTime:   make([]float64, len(k.Blocks)),
		BlockStart:  make([]float64, len(k.Blocks)),
		BlockSM:     make([]int32, len(k.Blocks)),
		TagTime:     make(map[int]float64),
		TagBlocks:   make(map[int]int),
		BlocksPerSM: bps,
	}
	st := &simState{
		active:    make([]resident, 0, slots),
		smWarps:   make([]float64, d.NumSMs),
		smLoad:    make([]int, d.NumSMs),
		demandIdx: make([]int32, 0, slots),
		demandCap: make([]float64, 0, slots),
		keepIdx:   make([]int32, 0, slots),
	}
	overheadCycles := d.BlockOverheadCycles

	next := 0
	dispatch := func(sm int, now float64) {
		b := &k.Blocks[next]
		reqBytes := 32.0
		if b.MemRequests > 0 {
			reqBytes = (b.DRAMBytes + b.L2Bytes) / b.MemRequests
			if reqBytes <= 0 {
				reqBytes = 32.0
			}
		}
		st.active = append(st.active, resident{
			idx:      int32(next),
			sm:       int32(sm),
			warps:    float64(b.Warps),
			remComp:  b.CompCycles + overheadCycles,
			remDRAM:  b.DRAMBytes,
			remL2:    b.L2Bytes,
			reqBytes: reqBytes,
			start:    now,
		})
		st.smLoad[sm]++
		res.BlockStart[next] = now
		res.BlockSM[next] = int32(sm)
		next++
	}

	// Initial round-robin fill, mirroring the hardware's launch-time
	// distribution of blocks across SMs.
	for sm := 0; next < len(k.Blocks) && len(st.active) < slots; sm = (sm + 1) % d.NumSMs {
		if st.smLoad[sm] < bps {
			dispatch(sm, 0)
		}
	}

	now := 0.0
	var acct counterAccum
	for len(st.active) > 0 {
		computeRates(d, st)

		// Earliest dimension completion among residents: freed bandwidth
		// is redistributed when a stream ends. Near-simultaneous
		// completions are batched into one event (eventBatchTol) — a
		// bounded approximation that collapses the event storm of large
		// heterogeneous grids.
		dt := math.Inf(1)
		for i := range st.active {
			if ft := nextDimEvent(&st.active[i]); ft < dt {
				dt = ft
			}
		}
		if math.IsInf(dt, 1) || dt < 0 {
			return nil, fmt.Errorf("gpusim: kernel %q stalled at t=%gs with %d resident blocks", k.Name, now, len(st.active))
		}
		dt *= 1 + eventBatchTol

		// Drain, integrating the traffic actually moved (exact even when
		// the batched step overshoots a stream's remaining work).
		var dramMoved, l2Moved float64
		for i := range st.active {
			rb := &st.active[i]
			rb.remComp = drain(rb.remComp, rb.rateComp, dt)
			dramBefore, l2Before := rb.remDRAM, rb.remL2
			rb.remDRAM = drain(rb.remDRAM, rb.rateDRAM, dt)
			rb.remL2 = drain(rb.remL2, rb.rateL2, dt)
			dramMoved += dramBefore - rb.remDRAM
			l2Moved += l2Before - rb.remL2
		}
		acct.observe(dramMoved, l2Moved, dt)
		now += dt

		// Retire drained blocks and backfill their slots. Iterating in
		// grid order keeps retirement deterministic.
		kept := st.active[:0]
		for i := range st.active {
			rb := st.active[i]
			if rb.remComp <= simEps && rb.remDRAM <= simEps && rb.remL2 <= simEps {
				bt := now - rb.start
				res.BlockTime[rb.idx] = bt
				if tag := k.Blocks[rb.idx].Tag; tag >= 0 {
					res.TagTime[tag] += bt
					res.TagBlocks[tag]++
				}
				st.smLoad[rb.sm]--
				if next < len(k.Blocks) {
					dispatch(int(rb.sm), now)
					kept = append(kept, st.active[len(st.active)-1])
					st.active = st.active[:len(st.active)-1]
				}
			} else {
				kept = append(kept, rb)
			}
		}
		st.active = kept
	}

	res.Time = now
	if k.IncludeLaunchOverhead {
		res.Time += d.KernelLaunchOverhead
	}
	res.Counters = acct.finalize(d, k, res.Time)
	return res, nil
}

// nextDimEvent returns the time until the earliest dimension of rb drains at
// current rates (infinity when every remaining dimension is stalled).
func nextDimEvent(rb *resident) float64 {
	t := math.Inf(1)
	if rb.remComp > simEps && rb.rateComp > 0 {
		t = rb.remComp / rb.rateComp
	}
	if rb.remDRAM > simEps && rb.rateDRAM > 0 {
		if ft := rb.remDRAM / rb.rateDRAM; ft < t {
			t = ft
		}
	}
	if rb.remL2 > simEps && rb.rateL2 > 0 {
		if ft := rb.remL2 / rb.rateL2; ft < t {
			t = ft
		}
	}
	return t
}

func drain(rem, rate, dt float64) float64 {
	rem -= rate * dt
	if rem < simEps {
		return 0
	}
	return rem
}

// SerialUpperBound returns the time the kernel would take if every block ran
// alone on one SM sequentially — a loose upper bound used by tests.
func SerialUpperBound(d *Device, k *Kernel) float64 {
	total := 0.0
	for i := range k.Blocks {
		b := &k.Blocks[i]
		comp := (b.CompCycles + d.BlockOverheadCycles) / (float64(b.Warps) * d.PerWarpIssue * d.ClockHz)
		mem := b.DRAMBytes/d.DRAMBandwidth + b.L2Bytes/d.L2Bandwidth
		lat := 0.0
		if b.MemRequests > 0 {
			reqBytes := (b.DRAMBytes + b.L2Bytes) / b.MemRequests
			if reqBytes > 0 {
				cap := float64(b.Warps) * d.MemParallelism * reqBytes * d.ClockHz / d.DRAMLatencyCycles
				lat = (b.DRAMBytes + b.L2Bytes) / cap
			}
		}
		total += comp + math.Max(mem, lat)
	}
	return total
}

// RooflineLowerBound returns max(compute, DRAM, L2) aggregate-resource time,
// a valid lower bound on any schedule of the kernel's blocks.
func RooflineLowerBound(d *Device, k *Kernel) float64 {
	comp, dram, l2 := k.TotalWork()
	comp += float64(len(k.Blocks)) * d.BlockOverheadCycles
	// Peak issue throughput across the device, in warp-cycles per second.
	peakIssue := float64(d.NumSMs*d.IssueSlotsPerSM) * d.ClockHz
	t := comp / peakIssue
	t = math.Max(t, dram/d.DRAMBandwidth)
	t = math.Max(t, l2/d.L2Bandwidth)
	return t
}
