package gpusim

import (
	"fmt"
	"math"
)

// SimResult reports the outcome of one kernel simulation.
type SimResult struct {
	// Time is the kernel wall-clock time in seconds, including the launch
	// overhead when the kernel requests it.
	Time float64

	// BlockTime[i] is the residency time of kernel block i (dispatch to
	// drain), the l_b of the paper's Equation 2.
	BlockTime []float64

	// BlockStart[i] is block i's dispatch time and BlockSM[i] the SM it ran
	// on — the scheduling trace behind Figure 5, used by tests to verify
	// the residency invariants and by tools to render timelines.
	BlockStart []float64
	BlockSM    []int32

	// TagTime sums BlockTime over blocks sharing a non-negative Tag. The
	// tuner's local stage reads per-candidate sums from here; the fusion
	// compiler reads per-feature sums.
	TagTime map[int]float64

	// TagBlocks counts blocks per non-negative tag.
	TagBlocks map[int]int

	// BlocksPerSM is the resident-block limit the simulation honored.
	BlocksPerSM int

	// Counters holds the Nsight-style hardware counters (Table II).
	Counters Counters
}

const simEps = 1e-15

// eventBatchTol batches dimension completions within 5% of the earliest one
// into a single scheduling event. It bounds the timing error of any single
// block at 5% while collapsing the event count of large grids.
const eventBatchTol = 0.05

// resident tracks the stream state of one in-flight block: the six floats
// every per-event scan reads and writes. The struct is deliberately just
// these — 48 bytes — so the widest scans of the event loop (next-event search
// and drain) stream one compact array that stays cache-resident even at full
// device occupancy. Bookkeeping that only the dispatch and retire paths touch
// lives in the parallel residentMeta array.
type resident struct {
	remComp, remDRAM, remL2    float64
	rateComp, rateDRAM, rateL2 float64
}

// residentMeta is the cold half of a resident: identity, placement and the
// demand-cap factor, read only when rates are recomputed or the block
// retires. meta[i] always describes active[i]; the two arrays grow, compact
// and truncate in lockstep.
type residentMeta struct {
	idx       int32
	sm        int32
	warps     float64
	capFactor float64 // warps × mean request bytes: the latency-cap factor
	start     float64
}

// simState holds preallocated scratch for one simulation.
type simState struct {
	active  []resident
	meta    []residentMeta
	smWarps []float64
	smLoad  []int
	// Water-filling scratch: indices into active plus per-entry caps, one set
	// per memory kind. The fused rate recomputation holds both kinds' demand
	// sets at once, so they cannot share a backing.
	demandIdx  []int32
	demandCap  []float64
	keepIdx    []int32
	demandIdx2 []int32
	demandCap2 []float64
	keepIdx2   []int32
}

// launchWork is the dispatch-time image of one grid block: the remaining-work
// seeds and bookkeeping constants the launch path stores into a resident
// slot. A Simulator derives the table once per (device, kernel) pair so that
// dispatch — which runs once per grid block — reads one dense 40-byte record
// instead of ranging over the full BlockWork struct.
type launchWork struct {
	comp, dram, l2   float64 // work seeds; comp includes the block overhead
	warps, capFactor float64
}

// Simulator owns the reusable working set of the kernel simulation: the
// resident-block scratch, the per-SM load tables and the result buffers.
// After a warm-up run, Run allocates nothing in steady state, so tuners and
// serving loops that simulate thousands of kernels back to back reuse one
// Simulator instead of re-growing the same slices every call.
//
// A Simulator is not safe for concurrent use; give each goroutine its own.
//
// Run assumes the Device and Kernel it is given are not mutated between calls
// that reuse them: when the same device and kernel (by identity) are passed
// again, validation and the grid-constant counter sums are reused from the
// previous call instead of being recomputed.
type Simulator struct {
	st  simState
	res SimResult

	// Validated-input memo (see the type comment). lastBlocks/lastNB pin the
	// identity of the block slice as well, so a kernel whose Blocks field was
	// swapped out is re-validated even under the same Kernel pointer.
	lastDev    *Device
	lastKernel *Kernel
	lastBlocks *BlockWork
	lastNB     int
	sums       threadSums
	launch     []launchWork // per-block dispatch image, derived once per kernel
	tags       []int        // per-block tag, densely packed for the retire path
}

// NewSimulator returns a Simulator with empty scratch; the first Run sizes
// it to the kernel at hand.
func NewSimulator() *Simulator { return &Simulator{} }

// Simulate runs kernel k on device d and returns the timing result. The
// simulation is deterministic: identical inputs produce identical outputs.
//
// Scheduling follows the GPU contract the paper's Figure 5 illustrates:
// blocks are dispatched in grid order to SMs with free slots (round-robin at
// launch, released-slot-first afterwards) and run non-preemptively until they
// drain. Between events, resident blocks drain their compute, DRAM and L2
// work at rates set by the current contention state; see rates.go.
//
// Each call allocates a fresh result; hot loops that can tolerate the result
// being overwritten by the next call should hold a Simulator and use Run.
func Simulate(d *Device, k *Kernel) (*SimResult, error) {
	return new(Simulator).Run(d, k)
}

// Run is Simulate over the Simulator's reusable scratch. The returned
// SimResult is owned by the Simulator and overwritten by the next Run;
// callers that retain it across runs must copy what they keep. On error the
// result buffers hold no meaningful data.
func (s *Simulator) Run(d *Device, k *Kernel) (*SimResult, error) {
	var blocksID *BlockWork
	if len(k.Blocks) > 0 {
		blocksID = &k.Blocks[0]
	}
	if d != s.lastDev || k != s.lastKernel || blocksID != s.lastBlocks || len(k.Blocks) != s.lastNB {
		if err := d.Validate(); err != nil {
			return nil, err
		}
		if err := k.Validate(d); err != nil {
			return nil, err
		}
		s.sums = gridThreadSums(d, k)
		if cap(s.launch) < len(k.Blocks) {
			s.launch = make([]launchWork, len(k.Blocks))
		}
		s.launch = s.launch[:len(k.Blocks)]
		if cap(s.tags) < len(k.Blocks) {
			s.tags = make([]int, len(k.Blocks))
		}
		s.tags = s.tags[:len(k.Blocks)]
		for i := range k.Blocks {
			b := &k.Blocks[i]
			rq := 32.0
			if b.MemRequests > 0 {
				rq = (b.DRAMBytes + b.L2Bytes) / b.MemRequests
				if rq <= 0 {
					rq = 32.0
				}
			}
			lw := &s.launch[i]
			lw.comp = b.CompCycles + d.BlockOverheadCycles
			lw.dram = b.DRAMBytes
			lw.l2 = b.L2Bytes
			lw.warps = float64(b.Warps)
			lw.capFactor = float64(b.Warps) * rq
			s.tags[i] = b.Tag
		}
		s.lastDev, s.lastKernel, s.lastBlocks, s.lastNB = d, k, blocksID, len(k.Blocks)
	}
	bps := k.EffectiveBlocksPerSM(d)
	slots := d.ParallelBlockSlots(bps)
	if slots <= 0 {
		return nil, fmt.Errorf("gpusim: kernel %q has zero parallel block slots", k.Name)
	}
	nb := len(k.Blocks)
	if slots > nb {
		slots = nb
	}

	res := &s.res
	res.Time = 0
	// Every entry of the per-block buffers is written before the loop exits
	// (each block dispatches exactly once and retires exactly once), so the
	// reused backing needs no zeroing.
	res.BlockTime = growFloats(res.BlockTime, nb)
	res.BlockStart = growFloats(res.BlockStart, nb)
	if cap(res.BlockSM) < nb {
		res.BlockSM = make([]int32, nb)
	}
	res.BlockSM = res.BlockSM[:nb]
	if res.TagTime == nil {
		res.TagTime = make(map[int]float64)
		res.TagBlocks = make(map[int]int)
	} else {
		clear(res.TagTime)
		clear(res.TagBlocks)
	}
	res.BlocksPerSM = bps
	res.Counters = Counters{}

	st := &s.st
	if cap(st.active) < slots {
		st.active = make([]resident, 0, slots)
		st.meta = make([]residentMeta, 0, slots)
		st.demandIdx = make([]int32, 0, slots)
		st.demandCap = make([]float64, 0, slots)
		st.keepIdx = make([]int32, 0, slots)
		st.demandIdx2 = make([]int32, 0, slots)
		st.demandCap2 = make([]float64, 0, slots)
		st.keepIdx2 = make([]int32, 0, slots)
	}
	st.active = st.active[:0]
	st.meta = st.meta[:0]
	st.smWarps = growFloats(st.smWarps, d.NumSMs)
	if cap(st.smLoad) < d.NumSMs {
		st.smLoad = make([]int, d.NumSMs)
	}
	st.smLoad = st.smLoad[:d.NumSMs]
	for i := range st.smLoad {
		st.smLoad[i] = 0
		st.smWarps[i] = 0
	}
	next := 0
	launch := s.launch
	tags := s.tags
	// dramDemand/l2Demand count the residents with any work remaining —
	// strictly positive, so a zero count proves every remainder is exactly
	// zero. That lets the event loop skip a bandwidth re-share whose demand
	// set is empty, and skip that stream's drain arithmetic outright: with no
	// positive remainder, both passes are exact no-ops.
	dramDemand, l2Demand := 0, 0
	// dispatchInto constructs the next grid block directly in resident slot w
	// — at launch the next free entry of the active array, at backfill time
	// the slot just vacated by a retirement — so the hot loop never appends
	// to (and never reallocates) the array it is iterating. Field-wise stores
	// throughout: the slot is written in place, with no struct temporary on
	// the way in.
	dispatchInto := func(w, sm int, now float64) {
		lw := &launch[next]
		rb := &st.active[w]
		rb.remComp = lw.comp
		rb.remDRAM = lw.dram
		rb.remL2 = lw.l2
		rb.rateComp = 0
		rb.rateDRAM = 0
		rb.rateL2 = 0
		m := &st.meta[w]
		m.idx = int32(next)
		m.sm = int32(sm)
		m.warps = lw.warps
		m.capFactor = lw.capFactor
		m.start = now
		if lw.dram > 0 {
			dramDemand++
		}
		if lw.l2 > 0 {
			l2Demand++
		}
		st.smLoad[sm]++
		st.smWarps[sm] += lw.warps
		res.BlockStart[next] = now
		res.BlockSM[next] = int32(sm)
		next++
	}

	// Initial round-robin fill, mirroring the hardware's launch-time
	// distribution of blocks across SMs. Capacity slots was reserved above,
	// so the reslices never reallocate.
	// (The wrap is an add-and-compare rather than a modulo: this loop runs
	// once per launched block, and integer division is serialized on the
	// loop-carried sm.)
	for sm := 0; next < nb && len(st.active) < slots; {
		if st.smLoad[sm] < bps {
			n := len(st.active)
			st.active = st.active[:n+1]
			st.meta = st.meta[:n+1]
			dispatchInto(n, sm, 0)
		}
		if sm++; sm == d.NumSMs {
			sm = 0
		}
	}

	now := 0.0
	var acct counterAccum
	// Rate recomputation is demand-driven: issue-slot shares change only
	// when residency changes, and a memory resource's water-filling shares
	// change only when its demand set does. Events that merely advance
	// still-draining streams skip the corresponding passes — the rates left
	// in place are bit-identical to what recomputation would produce, so
	// results are unchanged; only redundant work is elided.
	resDirty, dramDirty, l2Dirty := true, true, true
	for len(st.active) > 0 {
		// Earliest dimension completion among residents: freed bandwidth is
		// redistributed when a stream ends. Near-simultaneous completions are
		// batched into one event (eventBatchTol) — a bounded approximation
		// that collapses the event storm of large heterogeneous grids.
		//
		// A full recomputation event gets the minimum as a byproduct of the
		// fused rate pass; events that reuse rates run the explicit scan. The
		// per-dimension comparisons are open-coded because this is the widest
		// scan of the event loop, and a dimension with zero outstanding demand
		// is skipped wholesale — its clause would be false for every block.
		var dt float64
		if resDirty {
			dt = computeRatesFusedDT(d, st)
		} else {
			if dramDirty && dramDemand > 0 {
				shareBandwidth(d, st, memDRAM)
			}
			if l2Dirty && l2Demand > 0 {
				shareBandwidth(d, st, memL2)
			}
			dt = math.Inf(1)
			scanDRAM, scanL2 := dramDemand > 0, l2Demand > 0
			for i := range st.active {
				rb := &st.active[i]
				if rb.remComp > simEps && rb.rateComp > 0 {
					if ft := rb.remComp / rb.rateComp; ft < dt {
						dt = ft
					}
				}
				if scanDRAM && rb.remDRAM > simEps && rb.rateDRAM > 0 {
					if ft := rb.remDRAM / rb.rateDRAM; ft < dt {
						dt = ft
					}
				}
				if scanL2 && rb.remL2 > simEps && rb.rateL2 > 0 {
					if ft := rb.remL2 / rb.rateL2; ft < dt {
						dt = ft
					}
				}
			}
		}
		resDirty, dramDirty, l2Dirty = false, false, false
		if math.IsInf(dt, 1) || dt < 0 {
			return nil, fmt.Errorf("gpusim: kernel %q stalled at t=%gs with %d resident blocks", k.Name, now, len(st.active))
		}
		dt *= 1 + eventBatchTol
		now += dt

		// One fused scan: drain each block (integrating the traffic actually
		// moved — exact even when the batched step overshoots a stream's
		// remaining work), then retire it if fully drained and backfill its
		// slot in place. A write index compacts survivors leftward, and a
		// retirement with grid blocks remaining constructs the backfilled
		// block directly in the freed slot. Processing stays in grid-slot
		// order — same retirement order, same TagTime accumulation order,
		// same dispatch order as the append-based form this replaces — but
		// the resident array is never appended to mid-iteration, where the
		// old form reallocated it on every backfill once at capacity.
		var dramMoved, l2Moved float64
		// A memory stream with zero outstanding demand needs no drain at all:
		// every remainder is exactly zero, so the arithmetic below would move
		// nothing and change nothing. The gates are loop-invariant (frozen at
		// loop entry; blocks backfilled mid-scan are never drained in the same
		// event), so a finished stream costs one predictable branch per block.
		doDRAM, doL2 := dramDemand > 0, l2Demand > 0
		w := 0
		n0 := len(st.active)
		for i := 0; i < n0; i++ {
			rb := &st.active[i]
			rb.remComp = drain(rb.remComp, rb.rateComp, dt)
			if doDRAM {
				before := rb.remDRAM
				rb.remDRAM = drain(before, rb.rateDRAM, dt)
				dramMoved += before - rb.remDRAM
				if before > simEps && rb.remDRAM <= simEps {
					dramDirty = true // DRAM stream ended: re-share its bandwidth
				}
				if before > 0 && rb.remDRAM == 0 {
					dramDemand--
				}
			}
			if doL2 {
				before := rb.remL2
				rb.remL2 = drain(before, rb.rateL2, dt)
				l2Moved += before - rb.remL2
				if before > simEps && rb.remL2 <= simEps {
					l2Dirty = true
				}
				if before > 0 && rb.remL2 == 0 {
					l2Demand--
				}
			}
			if rb.remComp <= simEps && rb.remDRAM <= simEps && rb.remL2 <= simEps {
				m := &st.meta[i]
				bt := now - m.start
				res.BlockTime[m.idx] = bt
				if tag := tags[m.idx]; tag >= 0 {
					res.TagTime[tag] += bt
					res.TagBlocks[tag]++
				}
				sm := int(m.sm)
				st.smLoad[sm]--
				st.smWarps[sm] -= m.warps
				resDirty = true
				if next < nb {
					// The retiring block's fields are fully consumed; when
					// w == i this overwrites the slots rb and m point into.
					// The fresh block is dispatched at now and not drained
					// until the next event, exactly as with the separate
					// drain and retire scans.
					dispatchInto(w, sm, now)
					w++
				}
			} else {
				if w != i {
					st.active[w] = *rb
					st.meta[w] = st.meta[i]
				}
				w++
			}
		}
		st.active = st.active[:w]
		st.meta = st.meta[:w]
		acct.observe(dramMoved, l2Moved, dt)
	}

	res.Time = now
	if k.IncludeLaunchOverhead {
		res.Time += d.KernelLaunchOverhead
	}
	res.Counters = acct.finalize(d, res.Time, s.sums)
	return res, nil
}

// growFloats returns s resized to n, reallocating only when capacity is
// short. Contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// drain advances one work stream by dt at the given rate, clamping the
// remainder to exactly zero once it falls below the event epsilon so finished
// streams compare cleanly.
func drain(rem, rate, dt float64) float64 {
	rem -= rate * dt
	if rem < simEps {
		return 0
	}
	return rem
}

// SerialUpperBound returns the time the kernel would take if every block ran
// alone on one SM sequentially — a loose upper bound used by tests.
func SerialUpperBound(d *Device, k *Kernel) float64 {
	total := 0.0
	for i := range k.Blocks {
		b := &k.Blocks[i]
		comp := (b.CompCycles + d.BlockOverheadCycles) / (float64(b.Warps) * d.PerWarpIssue * d.ClockHz)
		mem := b.DRAMBytes/d.DRAMBandwidth + b.L2Bytes/d.L2Bandwidth
		lat := 0.0
		if b.MemRequests > 0 {
			reqBytes := (b.DRAMBytes + b.L2Bytes) / b.MemRequests
			if reqBytes > 0 {
				cap := float64(b.Warps) * d.MemParallelism * reqBytes * d.ClockHz / d.DRAMLatencyCycles
				lat = (b.DRAMBytes + b.L2Bytes) / cap
			}
		}
		total += comp + math.Max(mem, lat)
	}
	return total
}

// RooflineLowerBound returns max(compute, DRAM, L2) aggregate-resource time,
// a valid lower bound on any schedule of the kernel's blocks.
func RooflineLowerBound(d *Device, k *Kernel) float64 {
	comp, dram, l2 := k.TotalWork()
	comp += float64(len(k.Blocks)) * d.BlockOverheadCycles
	// Peak issue throughput across the device, in warp-cycles per second.
	peakIssue := float64(d.NumSMs*d.IssueSlotsPerSM) * d.ClockHz
	t := comp / peakIssue
	t = math.Max(t, dram/d.DRAMBandwidth)
	t = math.Max(t, l2/d.L2Bandwidth)
	return t
}
