package gpusim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBlocksPerSMWarpSlotBound(t *testing.T) {
	d := V100()
	r := KernelResources{ThreadsPerBlock: 256} // 8 warps, no reg/smem pressure
	if got := r.BlocksPerSM(d); got != 8 {
		t.Errorf("BlocksPerSM = %d, want 8 (64 warp slots / 8 warps)", got)
	}
	if got := r.OccupancyWarps(d); got != 64 {
		t.Errorf("OccupancyWarps = %d, want 64", got)
	}
}

func TestBlocksPerSMRegisterBound(t *testing.T) {
	d := V100()
	// 256 threads * 64 regs = 16384 regs per block; 65536/16384 = 4 blocks.
	r := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 64}
	if got := r.BlocksPerSM(d); got != 4 {
		t.Errorf("BlocksPerSM = %d, want 4 (register bound)", got)
	}
}

func TestBlocksPerSMSharedMemBound(t *testing.T) {
	d := V100()
	// 48KB smem per block; 96KB per SM -> 2 blocks.
	r := KernelResources{ThreadsPerBlock: 128, SharedMemPerBlock: 48 * 1024}
	if got := r.BlocksPerSM(d); got != 2 {
		t.Errorf("BlocksPerSM = %d, want 2 (shared memory bound)", got)
	}
}

func TestBlocksPerSMBlockSlotBound(t *testing.T) {
	d := V100()
	r := KernelResources{ThreadsPerBlock: 32} // 1 warp: 64 by warps but 32 block slots
	if got := r.BlocksPerSM(d); got != 32 {
		t.Errorf("BlocksPerSM = %d, want 32 (block slot bound)", got)
	}
}

// Property: granting more per-thread registers can only lower (never raise)
// occupancy, and shrinking shared memory can only raise it.
func TestOccupancyMonotonicProperty(t *testing.T) {
	d := V100()
	f := func(threadsRaw, regsRaw, smemRaw uint16) bool {
		threads := 32 * (1 + int(threadsRaw)%32) // 32..1024
		regs := int(regsRaw) % 129               // 0..128
		smem := (int(smemRaw) % 97) * 1024       // 0..96KB
		r := KernelResources{ThreadsPerBlock: threads, RegsPerThread: regs, SharedMemPerBlock: smem}
		base := r.BlocksPerSM(d)
		moreRegs := r
		moreRegs.RegsPerThread = regs + 16
		if moreRegs.RegsPerThread*threads <= d.RegistersPerSM && moreRegs.BlocksPerSM(d) > base {
			return false
		}
		lessSmem := r
		lessSmem.SharedMemPerBlock = smem / 2
		return lessSmem.BlocksPerSM(d) >= base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestOccupancyLevels(t *testing.T) {
	d := V100()
	levels := OccupancyLevels(d, 8) // 256-thread blocks
	if len(levels) != 8 {
		t.Fatalf("len(levels) = %d, want 8", len(levels))
	}
	for i, l := range levels {
		if l != i+1 {
			t.Errorf("levels[%d] = %d, want %d", i, l, i+1)
		}
	}
	if got := OccupancyLevels(d, 0); got != nil {
		t.Errorf("OccupancyLevels(0 warps) = %v, want nil", got)
	}
	// 1-warp blocks: limited by MaxBlocksPerSM=32, not 64 warp slots.
	if got := len(OccupancyLevels(d, 1)); got != 32 {
		t.Errorf("len(OccupancyLevels(1 warp)) = %d, want 32", got)
	}
}

func TestControlOccupancyReachesTargetExactly(t *testing.T) {
	d := V100()
	r := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 32, SharedMemPerBlock: 1024}
	for _, target := range OccupancyLevels(d, r.WarpsPerBlock(d)) {
		adj, spilled, err := r.ControlOccupancy(d, target)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if got := adj.BlocksPerSM(d); got != target {
			t.Errorf("target %d: achieved %d", target, got)
		}
		if spilled < 0 {
			t.Errorf("target %d: negative spill %d", target, spilled)
		}
	}
}

func TestControlOccupancySpillsWhenRegisterHungry(t *testing.T) {
	d := V100()
	// 128 regs/thread * 256 threads = 32768 regs/block: naturally 2 blocks/SM.
	r := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 128}
	adj, spilled, err := r.ControlOccupancy(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	if adj.BlocksPerSM(d) != 8 {
		t.Errorf("achieved %d blocks/SM, want 8", adj.BlocksPerSM(d))
	}
	// Budget at 8 blocks is 65536/(8*256)=32 regs; 96 must spill.
	if spilled != 96 {
		t.Errorf("spilled = %d, want 96", spilled)
	}
	if adj.RegsPerThread != 32 {
		t.Errorf("capped regs = %d, want 32", adj.RegsPerThread)
	}
}

func TestControlOccupancyPadsSharedMemory(t *testing.T) {
	d := V100()
	r := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 16}
	adj, spilled, err := r.ControlOccupancy(d, 2) // throttle 8 -> 2
	if err != nil {
		t.Fatal(err)
	}
	if spilled != 0 {
		t.Errorf("spilled = %d, want 0", spilled)
	}
	if adj.BlocksPerSM(d) != 2 {
		t.Errorf("achieved %d blocks/SM, want 2", adj.BlocksPerSM(d))
	}
	if adj.SharedMemPerBlock <= r.SharedMemPerBlock {
		t.Error("expected shared-memory padding to grow the footprint")
	}
}

func TestControlOccupancyRejectsUnreachableTargets(t *testing.T) {
	d := V100()
	r := KernelResources{ThreadsPerBlock: 256}
	if _, _, err := r.ControlOccupancy(d, 9); err == nil {
		t.Error("target above warp-slot bound should fail")
	}
	if _, _, err := r.ControlOccupancy(d, 0); err == nil {
		t.Error("zero target should fail")
	}
	big := KernelResources{ThreadsPerBlock: 128, SharedMemPerBlock: 96 * 1024}
	if _, _, err := big.ControlOccupancy(d, 2); err == nil {
		t.Error("shared-memory-impossible target should fail")
	}
}

// Property: ControlOccupancy either errors or achieves exactly the target.
func TestControlOccupancyExactProperty(t *testing.T) {
	d := V100()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		r := KernelResources{
			ThreadsPerBlock:   32 * (1 + rng.Intn(32)),
			RegsPerThread:     rng.Intn(129),
			SharedMemPerBlock: rng.Intn(96) * 1024,
		}
		target := 1 + rng.Intn(32)
		adj, _, err := r.ControlOccupancy(d, target)
		if err != nil {
			continue
		}
		if got := adj.BlocksPerSM(d); got != target {
			t.Fatalf("case %d: resources %+v target %d achieved %d", i, r, target, got)
		}
	}
}

func TestSpillBytesPerThread(t *testing.T) {
	if got := SpillBytesPerThread(0, 3); got != 0 {
		t.Errorf("no spill should cost 0 bytes, got %g", got)
	}
	if got := SpillBytesPerThread(-5, 3); got != 0 {
		t.Errorf("negative spill should cost 0 bytes, got %g", got)
	}
	// 10 regs * 4 bytes * 2 (st+ld) * reuse 3 = 240.
	if got := SpillBytesPerThread(10, 3); got != 240 {
		t.Errorf("SpillBytesPerThread(10,3) = %g, want 240", got)
	}
}

func TestKernelResourcesValidate(t *testing.T) {
	d := V100()
	good := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 32, SharedMemPerBlock: 2048}
	if err := good.Validate(d); err != nil {
		t.Errorf("valid resources rejected: %v", err)
	}
	bad := []KernelResources{
		{ThreadsPerBlock: 0},
		{ThreadsPerBlock: 2048},
		{ThreadsPerBlock: 256, RegsPerThread: 300},
		{ThreadsPerBlock: 256, SharedMemPerBlock: -1},
		{ThreadsPerBlock: 256, SharedMemPerBlock: 1 << 20},
		{ThreadsPerBlock: 1024, RegsPerThread: 255},
	}
	for i, r := range bad {
		if err := r.Validate(d); err == nil {
			t.Errorf("case %d: invalid resources %+v accepted", i, r)
		}
	}
}
