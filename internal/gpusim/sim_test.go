package gpusim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// uniformKernel builds a grid of identical blocks for closed-form checks.
func uniformKernel(n int, b BlockWork, res KernelResources) *Kernel {
	blocks := make([]BlockWork, n)
	for i := range blocks {
		blocks[i] = b
		blocks[i].Tag = -1
	}
	return &Kernel{Name: "uniform", Resources: res, Blocks: blocks}
}

func defaultBlock() BlockWork {
	return BlockWork{
		CompCycles:  20000,
		DRAMBytes:   64 * 1024,
		L2Bytes:     16 * 1024,
		MemRequests: 640,
		Warps:       8,
		ActiveFrac:  1,
		Tag:         -1,
	}
}

func TestSimulateRejectsInvalidInputs(t *testing.T) {
	d := V100()
	if _, err := Simulate(d, &Kernel{Resources: KernelResources{ThreadsPerBlock: 256}}); err == nil {
		t.Error("empty grid should be rejected")
	}
	k := uniformKernel(4, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	k.Blocks[2].Warps = 100 // exceeds resident warps
	if _, err := Simulate(d, k); err == nil {
		t.Error("block with more warps than the block size admits should be rejected")
	}
	k2 := uniformKernel(4, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	k2.BlocksPerSMOverride = 100
	if _, err := Simulate(d, k2); err == nil {
		t.Error("occupancy override above natural occupancy should be rejected")
	}
	k3 := uniformKernel(4, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	k3.Blocks[0].CompCycles = -1
	if _, err := Simulate(d, k3); err == nil {
		t.Error("negative work should be rejected")
	}
}

func TestSimulateWithinBounds(t *testing.T) {
	d := V100()
	for _, n := range []int{1, 7, 80, 640, 3000} {
		k := uniformKernel(n, defaultBlock(), KernelResources{ThreadsPerBlock: 256, RegsPerThread: 32})
		res, err := Simulate(d, k)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		lo, hi := RooflineLowerBound(d, k), SerialUpperBound(d, k)
		if res.Time < lo*(1-1e-9) {
			t.Errorf("n=%d: time %g below roofline bound %g", n, res.Time, lo)
		}
		if res.Time > hi*(1+1e-9) {
			t.Errorf("n=%d: time %g above serial bound %g", n, res.Time, hi)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	d := V100()
	rng := rand.New(rand.NewSource(11))
	blocks := make([]BlockWork, 500)
	for i := range blocks {
		blocks[i] = BlockWork{
			CompCycles:  float64(rng.Intn(50000)),
			DRAMBytes:   float64(rng.Intn(1 << 17)),
			L2Bytes:     float64(rng.Intn(1 << 15)),
			MemRequests: float64(1 + rng.Intn(1000)),
			Warps:       1 + rng.Intn(8),
			ActiveFrac:  1,
			Tag:         rng.Intn(4),
		}
	}
	k := &Kernel{Name: "det", Resources: KernelResources{ThreadsPerBlock: 256}, Blocks: blocks}
	a, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time {
		t.Errorf("nondeterministic total time: %g vs %g", a.Time, b.Time)
	}
	for i := range a.BlockTime {
		if a.BlockTime[i] != b.BlockTime[i] {
			t.Fatalf("nondeterministic block %d time", i)
		}
	}
	for tag, v := range a.TagTime {
		if b.TagTime[tag] != v {
			t.Errorf("nondeterministic tag %d time", tag)
		}
	}
}

// Latency must be monotone non-decreasing when work is added to any block.
func TestSimulateMonotoneInWork(t *testing.T) {
	d := V100()
	base := uniformKernel(200, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	r0, err := Simulate(d, base)
	if err != nil {
		t.Fatal(err)
	}
	grow := []func(*BlockWork){
		func(b *BlockWork) { b.CompCycles *= 3 },
		func(b *BlockWork) { b.DRAMBytes *= 3 },
		func(b *BlockWork) { b.L2Bytes *= 3 },
	}
	for gi, g := range grow {
		k := uniformKernel(200, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
		for i := range k.Blocks {
			g(&k.Blocks[i])
		}
		r1, err := Simulate(d, k)
		if err != nil {
			t.Fatal(err)
		}
		// Event batching introduces a bounded (<= eventBatchTol) timing
		// tolerance; monotonicity must hold beyond it.
		if r1.Time < r0.Time*(1-eventBatchTol) {
			t.Errorf("grow case %d: time decreased from %g to %g after adding work", gi, r0.Time, r1.Time)
		}
	}
	// Adding more blocks must not reduce latency either.
	bigger := uniformKernel(400, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	r2, err := Simulate(d, bigger)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Time < r0.Time*(1-eventBatchTol) {
		t.Errorf("doubling grid shrank time from %g to %g", r0.Time, r2.Time)
	}
}

// The paper's Equation 2: for a large uniform grid, latency ~= sum(block
// times) / (#SM * blocksPerSM). The fluid simulator should match closely.
func TestSimulateEquation2Approximation(t *testing.T) {
	d := V100()
	res := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 32}
	bps := res.BlocksPerSM(d)
	n := d.NumSMs * bps * 16 // deep grid so the tail is negligible
	k := uniformKernel(n, defaultBlock(), res)
	r, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, bt := range r.BlockTime {
		sum += bt
	}
	approx := sum / float64(d.NumSMs*bps)
	ratio := r.Time / approx
	if ratio < 0.95 || ratio > 1.15 {
		t.Errorf("Eq.2 approximation off: simulated %g, approx %g (ratio %.3f)", r.Time, approx, ratio)
	}
}

// Occupancy override must slow down a latency-bound kernel: fewer resident
// warps means less latency hiding.
func TestLowOccupancyHurtsLatencyBoundKernel(t *testing.T) {
	d := V100()
	b := BlockWork{
		CompCycles:  1000,
		DRAMBytes:   256 * 1024,
		MemRequests: 8192, // small 32B requests: latency-sensitive
		Warps:       8,
		ActiveFrac:  1,
		Tag:         -1,
	}
	res := KernelResources{ThreadsPerBlock: 256, RegsPerThread: 32}
	full := uniformKernel(1600, b, res)
	rFull, err := Simulate(d, full)
	if err != nil {
		t.Fatal(err)
	}
	throttled := uniformKernel(1600, b, res)
	throttled.BlocksPerSMOverride = 1
	rThr, err := Simulate(d, throttled)
	if err != nil {
		t.Fatal(err)
	}
	if rThr.Time <= rFull.Time*1.2 {
		t.Errorf("1 block/SM (%g) should be much slower than %d blocks/SM (%g)",
			rThr.Time, full.Resources.BlocksPerSM(d), rFull.Time)
	}
}

// A bandwidth-bound kernel should achieve close to peak DRAM bandwidth.
func TestBandwidthBoundKernelSaturates(t *testing.T) {
	d := V100()
	b := BlockWork{
		CompCycles:  100,
		DRAMBytes:   4 << 20,
		MemRequests: 4 << 20 / 128, // 128B coalesced requests
		Warps:       8,
		ActiveFrac:  1,
		Tag:         -1,
	}
	k := uniformKernel(1280, b, KernelResources{ThreadsPerBlock: 256})
	r, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	achieved := r.Counters.MemoryThroughput
	if achieved < 0.7*d.DRAMBandwidth {
		t.Errorf("achieved %g B/s, want >= 70%% of %g", achieved, d.DRAMBandwidth)
	}
	if achieved > d.DRAMBandwidth*(1+1e-9) {
		t.Errorf("achieved %g B/s exceeds peak %g", achieved, d.DRAMBandwidth)
	}
}

func TestTagTimeAccounting(t *testing.T) {
	d := V100()
	blocks := make([]BlockWork, 300)
	for i := range blocks {
		blocks[i] = defaultBlock()
		switch {
		case i < 100:
			blocks[i].Tag = 0
		case i < 200:
			blocks[i].Tag = 1
			blocks[i].CompCycles *= 4 // tag 1 works harder
		default:
			blocks[i].Tag = -1 // padding: excluded
		}
	}
	k := &Kernel{Name: "tags", Resources: KernelResources{ThreadsPerBlock: 256}, Blocks: blocks}
	r, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	if r.TagBlocks[0] != 100 || r.TagBlocks[1] != 100 {
		t.Fatalf("TagBlocks = %v, want 100 per tag", r.TagBlocks)
	}
	if _, ok := r.TagTime[-1]; ok {
		t.Error("padding tag -1 must not be accounted")
	}
	if r.TagTime[1] <= r.TagTime[0] {
		t.Errorf("tag 1 (4x compute) should accumulate more time: %g vs %g", r.TagTime[1], r.TagTime[0])
	}
	var sum float64
	for i, bt := range r.BlockTime {
		if bt <= 0 {
			t.Fatalf("block %d has non-positive time %g", i, bt)
		}
		if blocks[i].Tag >= 0 {
			sum += bt
		}
	}
	if math.Abs(sum-(r.TagTime[0]+r.TagTime[1])) > 1e-12*sum {
		t.Errorf("tag sums (%g) disagree with block times (%g)", r.TagTime[0]+r.TagTime[1], sum)
	}
}

func TestLaunchOverheadAdded(t *testing.T) {
	d := V100()
	k := uniformKernel(8, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	r0, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	k.IncludeLaunchOverhead = true
	r1, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	diff := r1.Time - r0.Time
	if math.Abs(diff-d.KernelLaunchOverhead) > 1e-12 {
		t.Errorf("launch overhead delta = %g, want %g", diff, d.KernelLaunchOverhead)
	}
}

func TestDivergenceCountersReported(t *testing.T) {
	d := V100()
	b := defaultBlock()
	b.ActiveFrac = 0.25
	b.PredOffFrac = 0.5
	k := uniformKernel(64, b, KernelResources{ThreadsPerBlock: 256})
	r, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Counters.AvgActiveThreadsPerWarp; math.Abs(got-8) > 1e-9 {
		t.Errorf("AvgActiveThreadsPerWarp = %g, want 8", got)
	}
	if got := r.Counters.AvgNotPredOffThreadsPerWarp; math.Abs(got-4) > 1e-9 {
		t.Errorf("AvgNotPredOffThreadsPerWarp = %g, want 4", got)
	}
}

func TestZeroWorkBlocksFinishInOverheadTime(t *testing.T) {
	d := V100()
	b := BlockWork{Warps: 1, ActiveFrac: 1, Tag: -1}
	k := uniformKernel(100, b, KernelResources{ThreadsPerBlock: 32})
	r, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	// 100 one-warp blocks of pure overhead across 80 SMs: a few microseconds.
	if r.Time > 100e-6 {
		t.Errorf("empty blocks took %g s, expected only scheduling overhead", r.Time)
	}
	if r.Time <= 0 {
		t.Error("time must be positive (block overhead)")
	}
}

// Imbalanced grids must show the straggler effect: one giant block among many
// small ones dominates the kernel time.
func TestImbalanceStragglerEffect(t *testing.T) {
	d := V100()
	small := defaultBlock()
	blocks := make([]BlockWork, 320)
	for i := range blocks {
		blocks[i] = small
	}
	balanced := &Kernel{Name: "bal", Resources: KernelResources{ThreadsPerBlock: 256}, Blocks: blocks}
	rb, err := Simulate(d, balanced)
	if err != nil {
		t.Fatal(err)
	}
	skewed := make([]BlockWork, 320)
	copy(skewed, blocks)
	skewed[0].CompCycles *= 100
	imb := &Kernel{Name: "imb", Resources: KernelResources{ThreadsPerBlock: 256}, Blocks: skewed}
	ri, err := Simulate(d, imb)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Time < rb.Time*2 {
		t.Errorf("straggler should dominate: balanced %g, imbalanced %g", rb.Time, ri.Time)
	}
}

func TestTotalWork(t *testing.T) {
	k := uniformKernel(10, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	comp, dram, l2 := k.TotalWork()
	if comp != 10*20000 || dram != 10*64*1024 || l2 != 10*16*1024 {
		t.Errorf("TotalWork = (%g,%g,%g)", comp, dram, l2)
	}
}

func TestCountersTrafficConservation(t *testing.T) {
	d := V100()
	k := uniformKernel(640, defaultBlock(), KernelResources{ThreadsPerBlock: 256})
	r, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	_, wantDRAM, wantL2 := k.TotalWork()
	if math.Abs(r.Counters.TotalDRAMBytes-wantDRAM) > 1e-6*wantDRAM {
		t.Errorf("DRAM traffic %g, want %g", r.Counters.TotalDRAMBytes, wantDRAM)
	}
	if math.Abs(r.Counters.TotalL2Bytes-wantL2) > 1e-6*wantL2 {
		t.Errorf("L2 traffic %g, want %g", r.Counters.TotalL2Bytes, wantL2)
	}
	if r.Counters.MemoryBusyPct < 0 || r.Counters.MemoryBusyPct > 100+1e-9 {
		t.Errorf("MemoryBusyPct %g outside [0,100]", r.Counters.MemoryBusyPct)
	}
	if r.Counters.MaxBandwidthPct > 100+1e-9 {
		t.Errorf("MaxBandwidthPct %g above 100", r.Counters.MaxBandwidthPct)
	}
}

// Scheduling-trace invariants: dispatch order follows the grid, every block
// runs within the kernel window, and no SM ever holds more than the
// resident-block limit.
func TestSchedulingTraceInvariants(t *testing.T) {
	d := V100()
	rng := rand.New(rand.NewSource(77))
	blocks := make([]BlockWork, 900)
	for i := range blocks {
		blocks[i] = BlockWork{
			CompCycles:  float64(500 + rng.Intn(40000)),
			DRAMBytes:   float64(rng.Intn(1 << 16)),
			MemRequests: float64(1 + rng.Intn(300)),
			Warps:       1 + rng.Intn(8),
			ActiveFrac:  1,
			Tag:         -1,
		}
	}
	k := &Kernel{Name: "trace", Resources: KernelResources{ThreadsPerBlock: 256, RegsPerThread: 40}, Blocks: blocks}
	r, err := Simulate(d, k)
	if err != nil {
		t.Fatal(err)
	}
	bps := r.BlocksPerSM
	// Dispatch order follows grid order.
	for i := 1; i < len(r.BlockStart); i++ {
		if r.BlockStart[i] < r.BlockStart[i-1] {
			t.Fatalf("block %d dispatched before block %d", i, i-1)
		}
	}
	// Every block's interval lies within the kernel window.
	type ev struct {
		t     float64
		delta int
	}
	perSM := make(map[int32][]ev)
	for i := range blocks {
		start, end := r.BlockStart[i], r.BlockStart[i]+r.BlockTime[i]
		if start < 0 || end > r.Time*(1+1e-9) {
			t.Fatalf("block %d interval [%g,%g] outside kernel [0,%g]", i, start, end, r.Time)
		}
		perSM[r.BlockSM[i]] = append(perSM[r.BlockSM[i]], ev{start, 1}, ev{end, -1})
	}
	// Residency per SM never exceeds the limit.
	for sm, evs := range perSM {
		sort.Slice(evs, func(a, b int) bool {
			if evs[a].t != evs[b].t {
				return evs[a].t < evs[b].t
			}
			return evs[a].delta < evs[b].delta // retire before dispatch at ties
		})
		cur, max := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > max {
				max = cur
			}
		}
		if max > bps {
			t.Fatalf("SM %d held %d blocks, limit %d", sm, max, bps)
		}
	}
}
