package gpusim

// computeRates fills in the drain rates of every resident block from the
// current contention state. Three shared resources are modeled:
//
//   - SM issue slots: each SM issues IssueSlotsPerSM warp instructions per
//     cycle, shared among resident warps in proportion to warp count, with a
//     per-warp dependency-stall ceiling (PerWarpIssue). A lone warp therefore
//     cannot saturate an SM: compute also rewards occupancy.
//   - DRAM bandwidth: processor-shared across all blocks with remaining DRAM
//     work, each capped by its latency-hiding ceiling
//     warps·MemParallelism·reqBytes/latency. Low-occupancy kernels become
//     latency-bound long before they are bandwidth-bound.
//   - L2 bandwidth: same model with the L2 latency and bandwidth.
//
// Unclaimed bandwidth from capped blocks is redistributed (water-filling), so
// a single memory-hungry schedule in a fused kernel can slow its neighbors —
// the inter-feature resource contention of the paper's §II-C.
func computeRates(d *Device, st *simState) {
	// Per-SM resident warp totals.
	sw := st.smWarps
	for i := range sw {
		sw[i] = 0
	}
	for i := range st.active {
		rb := &st.active[i]
		sw[rb.sm] += rb.warps
	}

	issuePeak := float64(d.IssueSlotsPerSM)
	for i := range st.active {
		rb := &st.active[i]
		rate := rb.warps * d.PerWarpIssue
		if share := issuePeak * rb.warps / sw[rb.sm]; share < rate {
			rate = share
		}
		rb.rateComp = rate * d.ClockHz
		rb.rateDRAM = 0
		rb.rateL2 = 0
	}

	shareBandwidth(d, st, memDRAM)
	shareBandwidth(d, st, memL2)
}

type memKind int

const (
	memDRAM memKind = iota
	memL2
)

// shareBandwidth water-fills one memory resource across the blocks that still
// demand it, using the preallocated scratch in st.
func shareBandwidth(d *Device, st *simState, kind memKind) {
	var bw, latency float64
	switch kind {
	case memDRAM:
		bw, latency = d.DRAMBandwidth, d.DRAMLatencyCycles
	case memL2:
		bw, latency = d.L2Bandwidth, d.L2LatencyCycles
	}
	capScale := d.MemParallelism * d.ClockHz / latency
	fallbackCap := bw / float64(d.NumSMs*d.MaxBlocksPerSM)

	idx := st.demandIdx[:0]
	caps := st.demandCap[:0]
	for i := range st.active {
		rb := &st.active[i]
		rem := rb.remDRAM
		if kind == memL2 {
			rem = rb.remL2
		}
		if rem <= simEps {
			continue
		}
		c := rb.warps * rb.reqBytes * capScale
		if c <= 0 {
			c = fallbackCap
		}
		idx = append(idx, int32(i))
		caps = append(caps, c)
	}
	st.demandIdx, st.demandCap = idx, caps
	if len(idx) == 0 {
		return
	}

	// Water-filling: repeatedly grant capped blocks their cap and re-share
	// the remainder among the rest. Terminates because every round either
	// removes a block or assigns the final fair share.
	remBW := bw
	for len(idx) > 0 {
		share := remBW / float64(len(idx))
		progressed := false
		keep := st.keepIdx[:0]
		keepCaps := 0
		for j, ai := range idx {
			if caps[j] <= share {
				setMemRate(&st.active[ai], kind, caps[j])
				remBW -= caps[j]
				progressed = true
			} else {
				keep = append(keep, ai)
				caps[keepCaps] = caps[j]
				keepCaps++
			}
		}
		if !progressed {
			for _, ai := range idx {
				setMemRate(&st.active[ai], kind, share)
			}
			break
		}
		// Swap the kept set into the working slices.
		st.keepIdx = idx[:0]
		idx = keep
		caps = caps[:keepCaps]
	}
}

func setMemRate(rb *resident, kind memKind, rate float64) {
	if kind == memDRAM {
		rb.rateDRAM = rate
	} else {
		rb.rateL2 = rate
	}
}
