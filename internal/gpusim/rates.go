package gpusim

import "math"

// computeRates fills in the drain rates of every resident block from the
// current contention state. Three shared resources are modeled:
//
//   - SM issue slots: each SM issues IssueSlotsPerSM warp instructions per
//     cycle, shared among resident warps in proportion to warp count, with a
//     per-warp dependency-stall ceiling (PerWarpIssue). A lone warp therefore
//     cannot saturate an SM: compute also rewards occupancy.
//   - DRAM bandwidth: processor-shared across all blocks with remaining DRAM
//     work, each capped by its latency-hiding ceiling
//     warps·MemParallelism·reqBytes/latency. Low-occupancy kernels become
//     latency-bound long before they are bandwidth-bound.
//   - L2 bandwidth: same model with the L2 latency and bandwidth.
//
// Unclaimed bandwidth from capped blocks is redistributed (water-filling), so
// a single memory-hungry schedule in a fused kernel can slow its neighbors —
// the inter-feature resource contention of the paper's §II-C.
func computeRates(d *Device, st *simState) {
	computeRatesFused(d, st)
}

// computeRatesFused is computeRatesFusedDT for callers that do not need the
// next-event time.
func computeRatesFused(d *Device, st *simState) {
	computeRatesFusedDT(d, st)
}

// computeRatesFusedDT recomputes every rate in one pass over the residents:
// issue-slot shares are written and both memory demand sets collected as the
// scan goes, then each resource is water-filled over its set. Behaviorally
// identical to computeIssueRates followed by one shareBandwidth per kind —
// demand entries are emitted in the same slot order, so the fills run the
// same rounds — but the three scans over the resident array collapse into
// one. Each kind has its own demand and keep scratch (demandIdx/keepIdx vs
// demandIdx2/keepIdx2) because both demand sets are alive at once here and
// the water-fill ping-pongs a set between its two backings.
//
// The returned dt is the earliest stream finish time at the new rates —
// +Inf when every stream is stalled. Each stream's finish time is taken the
// moment its final rate is known (issue shares inline, memory shares at the
// water-fill assignment), with the same remaining/rate quotient the event
// loop's scan would compute, so a full recomputation event needs no separate
// next-event pass over the residents.
func computeRatesFusedDT(d *Device, st *simState) float64 {
	sw := st.smWarps
	issuePeak := float64(d.IssueSlotsPerSM)
	dramScale := d.MemParallelism * d.ClockHz / d.DRAMLatencyCycles
	l2Scale := d.MemParallelism * d.ClockHz / d.L2LatencyCycles
	dramFallback := d.DRAMBandwidth / float64(d.NumSMs*d.MaxBlocksPerSM)
	l2Fallback := d.L2Bandwidth / float64(d.NumSMs*d.MaxBlocksPerSM)

	dIdx := st.demandIdx[:cap(st.demandIdx)]
	dCaps := st.demandCap[:cap(st.demandCap)]
	lIdx := st.demandIdx2[:cap(st.demandIdx2)]
	lCaps := st.demandCap2[:cap(st.demandCap2)]
	dMin, lMin := math.Inf(1), math.Inf(1)
	dt := math.Inf(1)
	nd, nl := 0, 0
	for i := range st.active {
		m := &st.meta[i]
		rate := m.warps * d.PerWarpIssue
		if share := issuePeak * m.warps / sw[m.sm]; share < rate {
			rate = share
		}
		rb := &st.active[i]
		rb.rateComp = rate * d.ClockHz
		rb.rateDRAM = 0
		rb.rateL2 = 0
		if rb.remComp > simEps && rb.rateComp > 0 {
			if ft := rb.remComp / rb.rateComp; ft < dt {
				dt = ft
			}
		}
		if rb.remDRAM > simEps {
			c := m.capFactor * dramScale
			if c <= 0 {
				c = dramFallback
			}
			dIdx[nd], dCaps[nd] = int32(i), c
			nd++
			if c < dMin {
				dMin = c
			}
		}
		if rb.remL2 > simEps {
			c := m.capFactor * l2Scale
			if c <= 0 {
				c = l2Fallback
			}
			lIdx[nl], lCaps[nl] = int32(i), c
			nl++
			if c < lMin {
				lMin = c
			}
		}
	}
	waterFill(st, memDRAM, dIdx[:nd], dCaps[:nd], dMin, st.keepIdx[:0], d.DRAMBandwidth, &dt)
	waterFill(st, memL2, lIdx[:nl], lCaps[:nl], lMin, st.keepIdx2[:0], d.L2Bandwidth, &dt)
	return dt
}

// computeIssueRates fills in the SM issue-slot shares (and resets the memory
// rates that shareBandwidth assigns next). Issue shares depend only on which
// blocks are resident where, so the event loop skips this whole pass — and
// leaves the bit-identical previous rates in place — on events that retired
// and dispatched nothing.
//
// st.smWarps is maintained incrementally by the dispatch and retire paths
// rather than recomputed here. Warp counts are integer-valued, so the running
// totals are exact in float64 no matter the order blocks come and go in —
// identical to a fresh sum over the residents.
func computeIssueRates(d *Device, st *simState) {
	sw := st.smWarps
	issuePeak := float64(d.IssueSlotsPerSM)
	for i := range st.active {
		m := &st.meta[i]
		rate := m.warps * d.PerWarpIssue
		if share := issuePeak * m.warps / sw[m.sm]; share < rate {
			rate = share
		}
		rb := &st.active[i]
		rb.rateComp = rate * d.ClockHz
		rb.rateDRAM = 0
		rb.rateL2 = 0
	}
}

type memKind int

const (
	memDRAM memKind = iota
	memL2
)

// shareBandwidth water-fills one memory resource across the blocks that still
// demand it, using the preallocated scratch in st. The event loop calls this
// on events where only this kind's demand set changed; full recomputations go
// through computeRatesFused instead.
func shareBandwidth(d *Device, st *simState, kind memKind) {
	var bw, latency float64
	switch kind {
	case memDRAM:
		bw, latency = d.DRAMBandwidth, d.DRAMLatencyCycles
	case memL2:
		bw, latency = d.L2Bandwidth, d.L2LatencyCycles
	}
	capScale := d.MemParallelism * d.ClockHz / latency
	fallbackCap := bw / float64(d.NumSMs*d.MaxBlocksPerSM)

	idx := st.demandIdx[:cap(st.demandIdx)]
	caps := st.demandCap[:cap(st.demandCap)]
	minCap := math.Inf(1)
	n := 0
	for i := range st.active {
		rb := &st.active[i]
		rem := rb.remDRAM
		if kind == memL2 {
			rem = rb.remL2
		}
		if rem <= simEps {
			continue
		}
		c := st.meta[i].capFactor * capScale
		if c <= 0 {
			c = fallbackCap
		}
		idx[n] = int32(i)
		caps[n] = c
		n++
		if c < minCap {
			minCap = c
		}
	}
	waterFill(st, kind, idx[:n], caps[:n], minCap, st.keepIdx[:0], bw, nil)
}

// waterFill assigns kind's rates across the demand set idx/caps: repeatedly
// grant capped blocks their cap and re-share the remainder among the rest.
// Terminates because every round either removes a block or assigns the final
// fair share. minCap is the smallest cap in the set: when it exceeds the fair
// share, no block is capped and the round would grant nothing, so the final
// equal split is assigned directly without the scan that would discover it.
//
// Every demander receives its final rate exactly once (a cap grant removes it
// from the set; a broadcast ends the fill), so when dt is non-nil the stream's
// finish time is folded into *dt at that moment — the fused-recompute caller
// gets the next-event minimum without another pass over the residents.
//
// The survivor set ping-pongs between idx's backing and keepScratch; both
// must have capacity for the full set and must not alias each other. The
// swaps stay local — the caller's scratch fields keep their backings.
func waterFill(st *simState, kind memKind, idx []int32, caps []float64, minCap float64, keepScratch []int32, bw float64, dt *float64) {
	remBW := bw
	for len(idx) > 0 {
		share := remBW / float64(len(idx))
		if minCap > share {
			if kind == memDRAM {
				for _, ai := range idx {
					rb := &st.active[ai]
					rb.rateDRAM = share
					if dt != nil {
						if ft := rb.remDRAM / share; ft < *dt {
							*dt = ft
						}
					}
				}
			} else {
				for _, ai := range idx {
					rb := &st.active[ai]
					rb.rateL2 = share
					if dt != nil {
						if ft := rb.remL2 / share; ft < *dt {
							*dt = ft
						}
					}
				}
			}
			break
		}
		progressed := false
		keep := keepScratch[:0]
		keepCaps := 0
		minKept := math.Inf(1)
		for j, ai := range idx {
			if caps[j] <= share {
				grantMemRate(&st.active[ai], kind, caps[j], dt)
				remBW -= caps[j]
				progressed = true
			} else {
				keep = append(keep, ai)
				caps[keepCaps] = caps[j]
				keepCaps++
				if caps[keepCaps-1] < minKept {
					minKept = caps[keepCaps-1]
				}
			}
		}
		if !progressed {
			// Unreachable while minCap is exact (no progress means every cap
			// exceeded the share), kept as a backstop against non-finite caps.
			for _, ai := range idx {
				grantMemRate(&st.active[ai], kind, share, dt)
			}
			break
		}
		// Swap the kept set into the working slices.
		keepScratch = idx[:0]
		idx = keep
		caps = caps[:keepCaps]
		minCap = minKept
	}
}

// grantMemRate assigns a block's final rate for one memory kind and, when dt
// is non-nil, folds the stream's finish time into the running next-event
// minimum. A zero rate divides to +Inf, which never lowers the minimum —
// matching the scan form, which skips rate-zero streams.
func grantMemRate(rb *resident, kind memKind, rate float64, dt *float64) {
	var rem float64
	if kind == memDRAM {
		rb.rateDRAM = rate
		rem = rb.remDRAM
	} else {
		rb.rateL2 = rate
		rem = rb.remL2
	}
	if dt != nil {
		if ft := rem / rate; ft < *dt {
			*dt = ft
		}
	}
}
