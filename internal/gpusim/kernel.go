package gpusim

import "fmt"

// BlockWork describes the total work one thread block performs, in the three
// fluid dimensions the simulator drains plus the shape metadata that
// determines rates and hardware counters.
type BlockWork struct {
	// CompCycles is the issue work of the block in warp-instruction cycles:
	// the number of cycles a single warp issuing at full rate would need.
	CompCycles float64

	// DRAMBytes is the traffic this block moves to or from device memory
	// (L2 misses, write-backs, register spills).
	DRAMBytes float64

	// L2Bytes is the traffic served by the L2 cache (hits). It excludes
	// DRAMBytes; a request that misses L2 is charged to DRAMBytes only.
	L2Bytes float64

	// MemRequests is the number of distinct memory requests the block
	// issues. Together with the device latency it bounds the block's
	// achievable memory rate (latency-bound behaviour at low occupancy).
	MemRequests float64

	// Warps is the number of warps in this block that perform work. It may
	// be lower than the kernel-level resident warp count when a fused
	// kernel mixes schedules with different logical block sizes.
	Warps int

	// ActiveFrac is the average fraction of threads per warp that are
	// active (not exited, in [0,1]). Divergence below 1 inflates compute.
	ActiveFrac float64

	// PredOffFrac is the average fraction of active threads that are
	// predicated off by branch divergence. It feeds the "Avg. Not Predicted
	// Off Threads per Warp" counter and inflates compute further.
	PredOffFrac float64

	// Tag and Sub identify the origin of the block for per-group time
	// accounting: the tuner tags blocks by schedule candidate, the fusion
	// compiler by feature. Negative tags denote padding blocks whose time
	// is excluded from group sums.
	Tag int
	Sub int
}

// Validate reports whether the block work is well-formed.
func (b *BlockWork) Validate() error {
	switch {
	case b.CompCycles < 0 || b.DRAMBytes < 0 || b.L2Bytes < 0 || b.MemRequests < 0:
		return fmt.Errorf("gpusim: negative work in block (comp=%g dram=%g l2=%g reqs=%g)",
			b.CompCycles, b.DRAMBytes, b.L2Bytes, b.MemRequests)
	case b.Warps <= 0:
		return fmt.Errorf("gpusim: block must have at least one warp, got %d", b.Warps)
	case b.ActiveFrac < 0 || b.ActiveFrac > 1:
		return fmt.Errorf("gpusim: ActiveFrac %g outside [0,1]", b.ActiveFrac)
	case b.PredOffFrac < 0 || b.PredOffFrac > 1:
		return fmt.Errorf("gpusim: PredOffFrac %g outside [0,1]", b.PredOffFrac)
	}
	return nil
}

// Kernel is one GPU kernel launch: a grid of blocks plus the static resource
// footprint that determines occupancy.
type Kernel struct {
	Name      string
	Resources KernelResources
	Blocks    []BlockWork

	// BlocksPerSMOverride, when positive, forces the resident-block limit
	// (explicit occupancy control). It must not exceed the natural
	// occupancy of Resources; use KernelResources.ControlOccupancy to
	// construct a footprint that makes the target natural.
	BlocksPerSMOverride int

	// IncludeLaunchOverhead adds the device's kernel launch latency to the
	// simulated time (the per-feature-kernel cost that makes unfused
	// TensorFlow execution slow).
	IncludeLaunchOverhead bool
}

// Validate checks the kernel against the device.
func (k *Kernel) Validate(d *Device) error {
	if err := k.Resources.Validate(d); err != nil {
		return fmt.Errorf("kernel %q: %w", k.Name, err)
	}
	if len(k.Blocks) == 0 {
		return fmt.Errorf("gpusim: kernel %q has no blocks", k.Name)
	}
	natural := k.Resources.BlocksPerSM(d)
	if natural == 0 {
		return fmt.Errorf("gpusim: kernel %q: resources admit zero resident blocks", k.Name)
	}
	if k.BlocksPerSMOverride > natural {
		return fmt.Errorf("gpusim: kernel %q: occupancy override %d exceeds natural occupancy %d",
			k.Name, k.BlocksPerSMOverride, natural)
	}
	residentWarps := k.Resources.WarpsPerBlock(d)
	for i := range k.Blocks {
		if err := k.Blocks[i].Validate(); err != nil {
			return fmt.Errorf("kernel %q block %d: %w", k.Name, i, err)
		}
		if k.Blocks[i].Warps > residentWarps {
			return fmt.Errorf("gpusim: kernel %q block %d uses %d warps, block size admits %d",
				k.Name, i, k.Blocks[i].Warps, residentWarps)
		}
	}
	return nil
}

// EffectiveBlocksPerSM returns the resident-block limit the simulator will
// honor for this kernel on device d.
func (k *Kernel) EffectiveBlocksPerSM(d *Device) int {
	natural := k.Resources.BlocksPerSM(d)
	if k.BlocksPerSMOverride > 0 && k.BlocksPerSMOverride < natural {
		return k.BlocksPerSMOverride
	}
	return natural
}

// TotalWork sums the work dimensions over all blocks, useful for roofline
// lower bounds and tests.
func (k *Kernel) TotalWork() (comp, dram, l2 float64) {
	for i := range k.Blocks {
		comp += k.Blocks[i].CompCycles
		dram += k.Blocks[i].DRAMBytes
		l2 += k.Blocks[i].L2Bytes
	}
	return comp, dram, l2
}
