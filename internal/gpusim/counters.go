package gpusim

// Counters are the Nsight-Compute-style metrics the paper reports in
// Table II. They are computed from the same events that drive the latency
// model, so improvements in the counters and improvements in time are
// consistent by construction.
type Counters struct {
	// MemoryThroughput is achieved DRAM traffic divided by kernel time, in
	// bytes per second.
	MemoryThroughput float64

	// MemoryBusyPct is the fraction of kernel time during which the DRAM
	// subsystem had outstanding demand, in percent.
	MemoryBusyPct float64

	// MaxBandwidthPct is the average achieved fraction of peak DRAM
	// bandwidth, in percent (the paper's "Max Bandwidth (%)").
	MaxBandwidthPct float64

	// L1CacheThroughputPct approximates L1/TEX utilization: total memory
	// traffic against the aggregate L1 bandwidth of all SMs, in percent.
	L1CacheThroughputPct float64

	// L2CacheThroughputPct is achieved L2 traffic against peak L2
	// bandwidth, in percent.
	L2CacheThroughputPct float64

	// AvgActiveThreadsPerWarp is the compute-weighted mean number of
	// non-exited threads per warp.
	AvgActiveThreadsPerWarp float64

	// AvgNotPredOffThreadsPerWarp is the compute-weighted mean number of
	// threads per warp that are active and not predicated off.
	AvgNotPredOffThreadsPerWarp float64

	// TotalDRAMBytes and TotalL2Bytes are the raw traffic sums.
	TotalDRAMBytes float64
	TotalL2Bytes   float64
}

// counterAccum integrates time-varying quantities during simulation.
type counterAccum struct {
	dramBusy  float64 // seconds with outstanding DRAM demand
	l2Busy    float64
	dramMoved float64
	l2Moved   float64
}

// observe integrates the traffic actually moved during one event interval.
func (a *counterAccum) observe(dramMoved, l2Moved, dt float64) {
	if dramMoved > 0 {
		a.dramBusy += dt
		a.dramMoved += dramMoved
	}
	if l2Moved > 0 {
		a.l2Busy += dt
		a.l2Moved += l2Moved
	}
}

// l1BytesPerCyclePerSM approximates the L1/TEX sector bandwidth of one SM.
const l1BytesPerCyclePerSM = 128.0

// threadSums are the compute-weighted thread-utilization sums over a grid.
// They depend only on the kernel and device, never on the run, so a Simulator
// computes them once per (device, kernel) pair and reuses them across runs.
type threadSums struct {
	w, active, notPred float64
}

// gridThreadSums accumulates the compute-weighted thread-utilization sums.
func gridThreadSums(d *Device, k *Kernel) threadSums {
	var ts threadSums
	for i := range k.Blocks {
		b := &k.Blocks[i]
		w := b.CompCycles
		if w <= 0 {
			w = 1
		}
		ts.w += w
		ts.active += w * b.ActiveFrac * float64(d.WarpSize)
		ts.notPred += w * b.ActiveFrac * (1 - b.PredOffFrac) * float64(d.WarpSize)
	}
	return ts
}

func (a *counterAccum) finalize(d *Device, totalTime float64, ts threadSums) Counters {
	var c Counters
	if totalTime <= 0 {
		return c
	}
	c.TotalDRAMBytes = a.dramMoved
	c.TotalL2Bytes = a.l2Moved
	c.MemoryThroughput = a.dramMoved / totalTime
	c.MemoryBusyPct = 100 * a.dramBusy / totalTime
	c.MaxBandwidthPct = 100 * c.MemoryThroughput / d.DRAMBandwidth
	l1Peak := float64(d.NumSMs) * l1BytesPerCyclePerSM * d.ClockHz
	c.L1CacheThroughputPct = 100 * (a.dramMoved + a.l2Moved) / totalTime / l1Peak
	c.L2CacheThroughputPct = 100 * (a.l2Moved + a.dramMoved) / totalTime / d.L2Bandwidth

	if ts.w > 0 {
		c.AvgActiveThreadsPerWarp = ts.active / ts.w
		c.AvgNotPredOffThreadsPerWarp = ts.notPred / ts.w
	}
	return c
}
