package gpusim

import "testing"

func TestDevicePresetsValidate(t *testing.T) {
	for _, d := range []*Device{V100(), A100()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestDevicePresetShapes(t *testing.T) {
	v, a := V100(), A100()
	if v.NumSMs != 80 {
		t.Errorf("V100 NumSMs = %d, want 80", v.NumSMs)
	}
	if a.NumSMs != 108 {
		t.Errorf("A100 NumSMs = %d, want 108", a.NumSMs)
	}
	if a.DRAMBandwidth <= v.DRAMBandwidth {
		t.Errorf("A100 bandwidth (%g) should exceed V100 (%g)", a.DRAMBandwidth, v.DRAMBandwidth)
	}
	if a.L2SizeBytes <= v.L2SizeBytes {
		t.Errorf("A100 L2 (%d) should exceed V100 (%d)", a.L2SizeBytes, v.L2SizeBytes)
	}
	if v.WarpSize != 32 || a.WarpSize != 32 {
		t.Errorf("warp size must be 32, got %d/%d", v.WarpSize, a.WarpSize)
	}
}

func TestDeviceValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Device)
	}{
		{"zero SMs", func(d *Device) { d.NumSMs = 0 }},
		{"zero warp size", func(d *Device) { d.WarpSize = 0 }},
		{"zero max warps", func(d *Device) { d.MaxWarpsPerSM = 0 }},
		{"zero max blocks", func(d *Device) { d.MaxBlocksPerSM = 0 }},
		{"zero threads per block", func(d *Device) { d.MaxThreadsPerBlock = 0 }},
		{"zero registers", func(d *Device) { d.RegistersPerSM = 0 }},
		{"zero shared mem", func(d *Device) { d.SharedMemPerSM = 0 }},
		{"zero clock", func(d *Device) { d.ClockHz = 0 }},
		{"zero issue slots", func(d *Device) { d.IssueSlotsPerSM = 0 }},
		{"per-warp issue above 1", func(d *Device) { d.PerWarpIssue = 1.5 }},
		{"negative per-warp issue", func(d *Device) { d.PerWarpIssue = -0.1 }},
		{"zero DRAM bandwidth", func(d *Device) { d.DRAMBandwidth = 0 }},
		{"zero L2 bandwidth", func(d *Device) { d.L2Bandwidth = 0 }},
		{"zero DRAM latency", func(d *Device) { d.DRAMLatencyCycles = 0 }},
		{"zero L2 latency", func(d *Device) { d.L2LatencyCycles = 0 }},
		{"zero mem parallelism", func(d *Device) { d.MemParallelism = 0 }},
	}
	for _, m := range mutations {
		d := V100()
		m.mut(d)
		if err := d.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid device", m.name)
		}
	}
}

func TestParallelBlockSlots(t *testing.T) {
	d := V100()
	if got := d.ParallelBlockSlots(4); got != 320 {
		t.Errorf("ParallelBlockSlots(4) = %d, want 320", got)
	}
	if got := d.ParallelBlockSlots(0); got != 0 {
		t.Errorf("ParallelBlockSlots(0) = %d, want 0", got)
	}
	if got := d.ParallelBlockSlots(-1); got != 0 {
		t.Errorf("ParallelBlockSlots(-1) = %d, want 0", got)
	}
}

func TestCycleSeconds(t *testing.T) {
	d := V100()
	got := d.CycleSeconds()
	want := 1.0 / 1.38e9
	if got != want {
		t.Errorf("CycleSeconds = %g, want %g", got, want)
	}
}
