package gpusim

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"testing"
)

// goldenPath pins the simulator's exact float64 outputs. The file was
// generated from the pre-optimization event loop; the optimized loop must
// reproduce it bit for bit (same retirement order, same float operation
// order), so any rewrite of the hot path is provably behavior-preserving.
// Regenerate deliberately with:
//
//	REGEN_SIM_GOLDENS=1 go test ./internal/gpusim -run TestSimulateMatchesGoldens
const goldenPath = "testdata/golden_sim.json"

// goldenKernels returns the deterministic scenarios the golden file covers:
// a wide launch that never backfills, a saturated grid that spends the whole
// run in the retire/backfill regime (the loop the aliasing fix rewrote), and
// a mixed grid with compute-only blocks, padding tags and uneven warp counts.
func goldenKernels() []*Kernel {
	wide := make([]BlockWork, 200)
	for i := range wide {
		wide[i] = BlockWork{
			CompCycles: 15000 + float64(i%9)*2500, DRAMBytes: float64(48<<10) + float64(i%4)*4096,
			L2Bytes: 12 << 10, MemRequests: 512, Warps: 8, ActiveFrac: 1, Tag: i % 8,
		}
	}
	saturated := make([]BlockWork, 320)
	for i := range saturated {
		saturated[i] = BlockWork{
			CompCycles: 10000 + float64(i%7)*3000, DRAMBytes: float64(32<<10) + float64(i%5)*8192,
			L2Bytes: 8 << 10, MemRequests: 320, Warps: 8, ActiveFrac: 1, Tag: i % 16,
		}
	}
	mixed := make([]BlockWork, 300)
	for i := range mixed {
		b := BlockWork{
			CompCycles: 8000 + float64(i%11)*1500, Warps: 4 + i%5,
			ActiveFrac: 0.75 + 0.25*float64(i%2), PredOffFrac: 0.1, Tag: i%6 - 1,
		}
		if i%3 != 0 { // two thirds move memory, one third is compute-only
			b.DRAMBytes = float64(16<<10) + float64(i%3)*8192
			b.L2Bytes = 4 << 10
			b.MemRequests = 128
		}
		mixed[i] = b
	}
	return []*Kernel{
		{Name: "wide", Resources: KernelResources{ThreadsPerBlock: 256}, Blocks: wide},
		{Name: "saturated", Resources: KernelResources{ThreadsPerBlock: 256, SharedMemPerBlock: 96 * 1024}, Blocks: saturated},
		{Name: "mixed", Resources: KernelResources{ThreadsPerBlock: 256, SharedMemPerBlock: 96 * 1024}, Blocks: mixed},
	}
}

// goldenSim stores floats as hex-float strings ("%x"), which round-trip
// float64 values exactly.
type goldenSim struct {
	Name       string            `json:"name"`
	Time       string            `json:"time"`
	BlockTime  []string          `json:"blockTime"`
	BlockStart []string          `json:"blockStart"`
	BlockSM    []int32           `json:"blockSM"`
	TagTime    map[string]string `json:"tagTime"`
	TagBlocks  map[string]int    `json:"tagBlocks"`
}

func hexFloat(v float64) string { return fmt.Sprintf("%x", v) }

func parseHexFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("golden float %q: %v", s, err)
	}
	return v
}

func encodeGolden(name string, r *SimResult) goldenSim {
	g := goldenSim{
		Name:       name,
		Time:       hexFloat(r.Time),
		BlockTime:  make([]string, len(r.BlockTime)),
		BlockStart: make([]string, len(r.BlockStart)),
		BlockSM:    append([]int32(nil), r.BlockSM...),
		TagTime:    make(map[string]string, len(r.TagTime)),
		TagBlocks:  make(map[string]int, len(r.TagBlocks)),
	}
	for i, v := range r.BlockTime {
		g.BlockTime[i] = hexFloat(v)
	}
	for i, v := range r.BlockStart {
		g.BlockStart[i] = hexFloat(v)
	}
	for tag, v := range r.TagTime {
		g.TagTime[strconv.Itoa(tag)] = hexFloat(v)
	}
	for tag, n := range r.TagBlocks {
		g.TagBlocks[strconv.Itoa(tag)] = n
	}
	return g
}

func checkGolden(t *testing.T, label string, g *goldenSim, r *SimResult) {
	t.Helper()
	if want := parseHexFloat(t, g.Time); r.Time != want {
		t.Errorf("%s: Time = %x, want %x", label, r.Time, want)
	}
	if len(r.BlockTime) != len(g.BlockTime) {
		t.Fatalf("%s: %d block times, want %d", label, len(r.BlockTime), len(g.BlockTime))
	}
	for i := range g.BlockTime {
		if want := parseHexFloat(t, g.BlockTime[i]); r.BlockTime[i] != want {
			t.Fatalf("%s: BlockTime[%d] = %x, want %x", label, i, r.BlockTime[i], want)
		}
		if want := parseHexFloat(t, g.BlockStart[i]); r.BlockStart[i] != want {
			t.Fatalf("%s: BlockStart[%d] = %x, want %x", label, i, r.BlockStart[i], want)
		}
		if r.BlockSM[i] != g.BlockSM[i] {
			t.Fatalf("%s: BlockSM[%d] = %d, want %d", label, i, r.BlockSM[i], g.BlockSM[i])
		}
	}
	if len(r.TagTime) != len(g.TagTime) {
		t.Fatalf("%s: %d tags, want %d", label, len(r.TagTime), len(g.TagTime))
	}
	for tag, v := range r.TagTime {
		key := strconv.Itoa(tag)
		ws, ok := g.TagTime[key]
		if !ok {
			t.Fatalf("%s: unexpected tag %d", label, tag)
		}
		if want := parseHexFloat(t, ws); v != want {
			t.Errorf("%s: TagTime[%d] = %x, want %x", label, tag, v, want)
		}
		if r.TagBlocks[tag] != g.TagBlocks[key] {
			t.Errorf("%s: TagBlocks[%d] = %d, want %d", label, tag, r.TagBlocks[tag], g.TagBlocks[key])
		}
	}
}

// TestSimulateMatchesGoldens pins Simulate's exact outputs — block residency
// times, dispatch times, SM assignments and per-tag sums — against goldens
// captured before the event-loop optimization. Exact float equality, not
// tolerance: the optimized retire/backfill loop must preserve processing
// order and float operation order.
func TestSimulateMatchesGoldens(t *testing.T) {
	d := V100()
	kernels := goldenKernels()

	if os.Getenv("REGEN_SIM_GOLDENS") != "" {
		var out []goldenSim
		for _, k := range kernels {
			r, err := Simulate(d, k)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			out = append(out, encodeGolden(k.Name, r))
		}
		sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
		buf, err := json.MarshalIndent(out, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d cases)", goldenPath, len(out))
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read goldens (REGEN_SIM_GOLDENS=1 to generate): %v", err)
	}
	var goldens []goldenSim
	if err := json.Unmarshal(raw, &goldens); err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*goldenSim, len(goldens))
	for i := range goldens {
		byName[goldens[i].Name] = &goldens[i]
	}
	for _, k := range kernels {
		g := byName[k.Name]
		if g == nil {
			t.Fatalf("no golden for %q", k.Name)
		}
		r, err := Simulate(d, k)
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		checkGolden(t, k.Name+"/Simulate", g, r)
	}

	// One reused Simulator across all cases, each case run twice back to
	// back: warm scratch from a previous (and differently shaped) kernel
	// must not leak into the next result.
	sim := NewSimulator()
	for pass := 0; pass < 2; pass++ {
		for _, k := range kernels {
			r, err := sim.Run(d, k)
			if err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
			checkGolden(t, fmt.Sprintf("%s/Run-pass%d", k.Name, pass), byName[k.Name], r)
		}
	}

	// NaN guard on the helper itself.
	if hexFloat(math.Pi) != fmt.Sprintf("%x", math.Pi) {
		t.Fatal("hexFloat drifted")
	}
}

// TestSimulatorRunSteadyStateAllocFree pins the tentpole's allocation claim:
// after a warm-up run, re-running a kernel on a reused Simulator allocates
// nothing — including the saturated grid whose retire/backfill loop used to
// reallocate the resident array on every backfilled dispatch.
func TestSimulatorRunSteadyStateAllocFree(t *testing.T) {
	d := V100()
	for _, k := range goldenKernels() {
		sim := NewSimulator()
		if _, err := sim.Run(d, k); err != nil {
			t.Fatalf("%s: warm-up: %v", k.Name, err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := sim.Run(d, k); err != nil {
				t.Fatalf("%s: %v", k.Name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state Run allocates %.1f objects/run, want 0", k.Name, allocs)
		}
	}
}
