package emcache

import (
	"math"
	"reflect"
	"testing"
)

// fuzzOp is one decoded dispatch event.
type fuzzOp struct {
	model, tenant, size int
	now                 float64
}

// decodeFuzzOps turns raw fuzz bytes into a time-ordered dispatch sequence:
// 4 bytes per op (model, tenant, time step, size), capped at 128 ops.
func decodeFuzzOps(data []byte) []fuzzOp {
	var ops []fuzzOp
	now := 0.0
	for i := 0; i+4 <= len(data) && len(ops) < 128; i += 4 {
		now += float64(data[i+2]) * 0.005
		ops = append(ops, fuzzOp{
			model:  int(data[i]) % 2,
			tenant: int(data[i+1]) % 2,
			size:   1 + int(data[i+3]),
			now:    now,
		})
	}
	return ops
}

// fuzzTierConfig builds the shared two-model tier the fuzzer mutates: mixed
// table shapes (one bucket bigger than the whole budget, one uniform, one
// drifting) so eviction, admission back-off and phase advance all get hit.
// Tables are kept small — ZipfBucketMass is harmonic-sum bound, and the fuzz
// body rebuilds the tier per policy per input.
func fuzzTierConfig(policy Policy, retier float64) Config {
	return Config{
		BudgetBytes: 16 << 10,
		Policy:      policy,
		RetierEvery: retier,
		Models: []ModelProfile{
			{Phases: []ProfilePhase{
				{Start: 0, Features: []FeatureHeat{
					{Rows: 512, RowBytes: 64, RowsPerSample: 3, Skew: 1.07},
					{Rows: 8192, RowBytes: 16, RowsPerSample: 1, Skew: 0},
				}},
				{Start: 0.2, Features: []FeatureHeat{
					{Rows: 512, RowBytes: 64, RowsPerSample: 0.25, Skew: 0.5},
					{Rows: 8192, RowBytes: 16, RowsPerSample: 4, Skew: 1.07},
				}},
			}},
			Steady([]FeatureHeat{
				{Rows: 1024, RowBytes: 128, RowsPerSample: 2, Skew: 1.07},
			}),
		},
		Tenants: 2,
	}
}

// FuzzCacheEviction checks the tier's safety and determinism invariants on
// arbitrary dispatch sequences across every policy:
//
//   - residency never exceeds the budget, and the occupancy counter always
//     equals the sum of resident bucket bytes;
//   - penalties are finite and non-negative, and the accounting identity
//     reads = hits + misses holds;
//   - replaying the identical sequence on a Reset tier and on a freshly built
//     tier reproduces bit-identical penalties and a deeply equal snapshot —
//     the property session replay rests on.
func FuzzCacheEviction(f *testing.F) {
	f.Add([]byte{0, 0, 1, 64, 1, 1, 0, 255, 0, 1, 40, 16})
	f.Add([]byte{1, 0, 0, 8, 1, 1, 0, 8, 0, 0, 200, 128, 0, 1, 0, 32})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		ops := decodeFuzzOps(data)
		if len(ops) == 0 {
			return
		}
		for _, policy := range []Policy{PolicyStatic, PolicyLRU, PolicyClock} {
			retier := 0.0
			if len(data)%2 == 1 {
				retier = 0.05
			}
			cfg := fuzzTierConfig(policy, retier)
			tier, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			run := func(tr *Tier) ([]uint64, *Snapshot) {
				pens := make([]uint64, len(ops))
				for i, op := range ops {
					pen := tr.Dispatch(op.model, op.tenant, op.now, op.size)
					if math.IsNaN(pen) || math.IsInf(pen, 0) || pen < 0 {
						t.Fatalf("%v op %d: bad penalty %g", policy, i, pen)
					}
					if tr.Occupied() > cfg.BudgetBytes {
						t.Fatalf("%v op %d: occupancy %d over budget %d", policy, i, tr.Occupied(), cfg.BudgetBytes)
					}
					var sum int64
					for bi := range tr.buckets {
						if tr.buckets[bi].resident {
							sum += tr.buckets[bi].bytes
						}
					}
					if sum != tr.Occupied() {
						t.Fatalf("%v op %d: occupancy counter %d, resident bytes %d", policy, i, tr.Occupied(), sum)
					}
					pens[i] = math.Float64bits(pen)
				}
				s := tr.Snapshot()
				if math.Abs(s.RowReads-(s.Hits+s.Misses)) > 1e-6*(1+s.RowReads) {
					t.Fatalf("%v: reads %g != hits %g + misses %g", policy, s.RowReads, s.Hits, s.Misses)
				}
				return pens, s
			}
			pens1, snap1 := run(tier)
			tier.Reset()
			pens2, snap2 := run(tier)
			fresh, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pens3, snap3 := run(fresh)
			if !reflect.DeepEqual(pens1, pens2) || !reflect.DeepEqual(pens1, pens3) {
				t.Fatalf("%v: penalties diverge across Reset/rebuild", policy)
			}
			if !reflect.DeepEqual(snap1, snap2) || !reflect.DeepEqual(snap1, snap3) {
				t.Fatalf("%v: snapshots diverge across Reset/rebuild:\n%+v\n%+v\n%+v", policy, snap1, snap2, snap3)
			}
		}
	})
}
