package emcache

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/uvmcache"
)

// driftConfig is the canonical drift scenario: one model, two same-shaped
// features, and at t=1 the traffic swaps from feature A to feature B. The
// budget fits exactly one feature, so the initial allocation (all of A) is
// optimal before the shift and worthless after it.
func driftConfig(p Policy, retier float64) Config {
	shape := FeatureHeat{Rows: 4096, RowBytes: 256, Skew: 1.07}
	hot := shape
	hot.RowsPerSample = 4
	cold := shape // RowsPerSample 0
	return Config{
		BudgetBytes: 4096 * 256,
		Policy:      p,
		RetierEvery: retier,
		Models: []ModelProfile{{Phases: []ProfilePhase{
			{Start: 0, Features: []FeatureHeat{hot, cold}},
			{Start: 1, Features: []FeatureHeat{cold, hot}},
		}}},
		Tenants: 1,
	}
}

func mustTier(t testing.TB, cfg Config) *Tier {
	t.Helper()
	tier, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"static": PolicyStatic, "": PolicyStatic, " Static ": PolicyStatic,
		"lru": PolicyLRU, "LRU": PolicyLRU,
		"clock": PolicyClock, "lfu": PolicyClock,
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("arc"); err == nil {
		t.Error("ParsePolicy(arc): want error, got nil")
	}
	for _, p := range []Policy{PolicyStatic, PolicyLRU, PolicyClock} {
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), back, err)
		}
	}
}

func TestNewValidation(t *testing.T) {
	ok := driftConfig(PolicyLRU, 0)
	mutate := func(f func(*Config)) Config {
		c := driftConfig(PolicyLRU, 0)
		f(&c)
		return c
	}
	bad := map[string]Config{
		"zero budget":     mutate(func(c *Config) { c.BudgetBytes = 0 }),
		"no models":       mutate(func(c *Config) { c.Models = nil }),
		"no tenants":      mutate(func(c *Config) { c.Tenants = 0 }),
		"bad policy":      mutate(func(c *Config) { c.Policy = Policy(99) }),
		"negative retier": mutate(func(c *Config) { c.RetierEvery = -1 }),
		"heatdecay 1":     mutate(func(c *Config) { c.HeatDecay = 1 }),
		"negative fill":   mutate(func(c *Config) { c.FillThreshold = -1 }),
		"no phases":       mutate(func(c *Config) { c.Models[0].Phases = nil }),
		"no features":     mutate(func(c *Config) { c.Models[0].Phases = []ProfilePhase{{}} }),
		"unsorted phases": mutate(func(c *Config) {
			c.Models[0].Phases[1].Start = -1
		}),
		"feature count drift": mutate(func(c *Config) {
			c.Models[0].Phases[1].Features = c.Models[0].Phases[1].Features[:1]
		}),
		"table resize": mutate(func(c *Config) {
			c.Models[0].Phases[1].Features[0].Rows = 8192
		}),
		"zero rows": mutate(func(c *Config) {
			c.Models[0].Phases[0].Features[0].Rows = 0
		}),
		"negative rps": mutate(func(c *Config) {
			c.Models[0].Phases[0].Features[0].RowsPerSample = -1
		}),
	}
	for name, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := New(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestInitialAllocation(t *testing.T) {
	tier := mustTier(t, driftConfig(PolicyStatic, 0))
	if tier.Occupied() != tier.Budget() {
		t.Fatalf("initial occupancy %d, want full budget %d", tier.Occupied(), tier.Budget())
	}
	// The budget fits exactly feature A; feature B has zero phase-0 heat and
	// must own no rows.
	fa, fb := &tier.feats[0], &tier.feats[1]
	for bi := fa.b0; bi < fa.bn; bi++ {
		if !tier.buckets[bi].resident {
			t.Fatalf("hot feature bucket %d not resident in initial allocation", bi)
		}
	}
	for bi := fb.b0; bi < fb.bn; bi++ {
		if tier.buckets[bi].resident {
			t.Fatalf("zero-heat feature bucket %d resident in initial allocation", bi)
		}
	}
}

func TestDispatchFullyResident(t *testing.T) {
	tier := mustTier(t, driftConfig(PolicyStatic, 0))
	// Phase 0 traffic goes entirely to the resident feature: pure hits.
	var pen float64
	for i := 0; i < 10; i++ {
		pen += tier.Dispatch(0, 0, float64(i)*0.01, 64)
	}
	s := tier.Snapshot()
	if pen != 0 || s.Penalty != 0 || s.Misses != 0 {
		t.Fatalf("fully resident run: penalty=%g misses=%g, want 0", pen, s.Misses)
	}
	if s.HitRate != 1 {
		t.Fatalf("hit rate %g, want 1", s.HitRate)
	}
	wantReads := 10 * 64 * 4.0 // dispatches x size x RowsPerSample
	if math.Abs(s.RowReads-wantReads) > 1e-6 {
		t.Fatalf("row reads %g, want %g", s.RowReads, wantReads)
	}
}

func TestDispatchAllColdMatchesPCIeModel(t *testing.T) {
	// A uniform feature far bigger than the budget: only the head bucket set
	// is resident, and the cold mass must be charged exactly at
	// uvmcache.PCIePenalty.
	cfg := Config{
		BudgetBytes: 256, // one row's worth: buckets [0,1) only
		Policy:      PolicyStatic,
		Models: []ModelProfile{Steady([]FeatureHeat{
			{Rows: 1 << 16, RowBytes: 256, RowsPerSample: 2, Skew: 0},
		})},
		Tenants: 1,
	}
	tier := mustTier(t, cfg)
	pen := tier.Dispatch(0, 0, 0, 128)
	s := tier.Snapshot()
	reads := 128 * 2.0
	residentMass := uvmcache.ZipfBucketMass(0, 1, 1<<16, 0) * reads
	wantCold := reads - residentMass
	if math.Abs(s.Misses-wantCold) > 1e-9 {
		t.Fatalf("cold mass %g, want %g", s.Misses, wantCold)
	}
	wantPen := uvmcache.PCIePenalty(wantCold, wantCold*256)
	if math.Abs(pen-wantPen) > 1e-12 {
		t.Fatalf("penalty %g, want PCIePenalty %g", pen, wantPen)
	}
	if s.Models[0].RowReads != reads || s.Tenants[0].RowReads != reads {
		t.Fatalf("group row reads %g/%g, want %g", s.Models[0].RowReads, s.Tenants[0].RowReads, reads)
	}
}

func TestThrashProtection(t *testing.T) {
	// Two equally hot features, budget for one: the second feature's buckets
	// are touched in the same dispatch that touched every resident bucket, so
	// no victim is evictable and admission must back off rather than thrash.
	shape := FeatureHeat{Rows: 4096, RowBytes: 256, RowsPerSample: 4, Skew: 1.07}
	cfg := Config{
		BudgetBytes: 4096 * 256,
		Policy:      PolicyLRU,
		Models:      []ModelProfile{Steady([]FeatureHeat{shape, shape})},
		Tenants:     1,
	}
	tier := mustTier(t, cfg)
	occ0 := tier.Occupied()
	for i := 0; i < 5; i++ {
		tier.Dispatch(0, 0, float64(i)*0.01, 64)
	}
	s := tier.Snapshot()
	if tier.Occupied() != occ0 {
		t.Fatalf("occupancy moved from %d to %d under a same-dispatch working set", occ0, tier.Occupied())
	}
	if s.Evictions != 0 || s.Fills != 0 {
		t.Fatalf("evictions=%d fills=%d, want 0 (all victims protected)", s.Evictions, s.Fills)
	}
}

// runDrift drives the drift scenario: 10 pre-shift and 20 post-shift
// dispatches, returning the snapshot and the final dispatch's penalty.
func runDrift(tier *Tier) (*Snapshot, float64) {
	now := 0.0
	for i := 0; i < 10; i++ {
		tier.Dispatch(0, 0, now, 64)
		now += 0.1
	}
	var last float64
	for i := 0; i < 20; i++ {
		last = tier.Dispatch(0, 0, now, 64)
		now += 0.1
	}
	return tier.Snapshot(), last
}

func TestEvictionAdaptsToDrift(t *testing.T) {
	staticSnap, staticLast := runDrift(mustTier(t, driftConfig(PolicyStatic, 0)))
	if staticLast == 0 {
		t.Fatal("static tier should keep missing after the shift")
	}
	for _, p := range []Policy{PolicyLRU, PolicyClock} {
		snap, last := runDrift(mustTier(t, driftConfig(p, 0)))
		if last != 0 {
			t.Errorf("%v: final dispatch penalty %g, want 0 (working set refilled)", p, last)
		}
		if snap.Hits <= staticSnap.Hits {
			t.Errorf("%v: hits %g not above static %g", p, snap.Hits, staticSnap.Hits)
		}
		if snap.Fills == 0 || snap.Evictions == 0 {
			t.Errorf("%v: fills=%d evictions=%d, want adaptation", p, snap.Fills, snap.Evictions)
		}
		if snap.OccupiedBytes > snap.BudgetBytes {
			t.Errorf("%v: occupancy %d over budget %d", p, snap.OccupiedBytes, snap.BudgetBytes)
		}
	}
}

func TestRetierRecoversStaticAllocation(t *testing.T) {
	snap, last := runDrift(mustTier(t, driftConfig(PolicyStatic, 0.25)))
	staticSnap, staticLast := runDrift(mustTier(t, driftConfig(PolicyStatic, 0)))
	// The density-greedy re-tier keeps a few decayed-but-dense head buckets of
	// the old feature over the new feature's huge tail bucket, so a small
	// residual miss is correct; the recovery claim is an order-of-magnitude
	// penalty drop, not exact zero.
	if last >= staticLast/5 {
		t.Fatalf("re-tiering static: final dispatch penalty %g, want well under frozen static %g", last, staticLast)
	}
	if snap.Retiers == 0 {
		t.Fatal("no retier happened")
	}
	if snap.Hits <= staticSnap.Hits {
		t.Fatalf("re-tiering hits %g not above frozen static %g", snap.Hits, staticSnap.Hits)
	}
}

func TestResetReplaysIdentically(t *testing.T) {
	for _, p := range []Policy{PolicyStatic, PolicyLRU, PolicyClock} {
		tier := mustTier(t, driftConfig(p, 0.25))
		first, penA := runDrift(tier)
		tier.Reset()
		second, penB := runDrift(tier)
		if math.Float64bits(penA) != math.Float64bits(penB) {
			t.Errorf("%v: penalties diverge across Reset: %x vs %x",
				p, math.Float64bits(penA), math.Float64bits(penB))
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%v: snapshots diverge across Reset:\n  %+v\n  %+v", p, first, second)
		}
	}
}

func TestDispatchZeroAllocs(t *testing.T) {
	tier := mustTier(t, driftConfig(PolicyLRU, 0))
	now := 0.0
	step := func() {
		tier.Dispatch(0, 0, now, 64)
		now += 0.1
	}
	step() // warm
	if avg := testing.AllocsPerRun(200, step); avg != 0 {
		t.Fatalf("Dispatch allocates %.1f allocs/op in steady state, want 0", avg)
	}
}

func TestDispatchRejectsBadArgs(t *testing.T) {
	tier := mustTier(t, driftConfig(PolicyLRU, 0))
	for _, c := range [][4]int{{-1, 0, 0, 64}, {1, 0, 0, 64}, {0, -1, 0, 64}, {0, 1, 0, 64}, {0, 0, 0, 0}} {
		if pen := tier.Dispatch(c[0], c[1], 0, c[3]); pen != 0 {
			t.Errorf("Dispatch%v = %g, want 0", c, pen)
		}
	}
	if s := tier.Snapshot(); s.RowReads != 0 {
		t.Fatalf("rejected dispatches accounted %g reads", s.RowReads)
	}
}

func BenchmarkTierDispatch(b *testing.B) {
	tier := mustTier(b, driftConfig(PolicyLRU, 0))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tier.Dispatch(0, 0, float64(i)*1e-4, 64)
	}
}
