// Package emcache is the serving-side embedding-cache tier: one shared
// GPU-memory budget of hot embedding rows that every request dispatched by the
// fleet pool consults and mutates. internal/uvmcache supplies the static cost
// model (frequency-optimal budget allocation, PCIe fault recosting, Zipf
// hit-rate analysis); this package puts it to work under live traffic, where
// misses inflate service times, fills warm the tier, per-feature heat drifts
// with the workload, and the eviction/budget policy becomes a measurable
// serving-latency lever across the models sharing the tier.
//
// # Determinism contract
//
// The tier is a deterministic state machine driven exclusively by dispatch
// events: Dispatch(model, tenant, now, size) is the only mutation, and
// fleet.Live calls it at exactly one place — when a request (or split chunk)
// resolves its service time. Pool.Serve is implemented on fleet.Live, so the
// batch replay and the gateway's live engine execute identical cache
// transitions in identical order, which is what keeps recorded sessions
// replaying bit-identically with the tier enabled. Reset restores the initial
// residency, so a reused Pool starts every session from the same cache state
// (mirroring how Begin resets a stateful admission policy).
//
// # Model
//
// Row residency is tracked at rank-bucket granularity: each feature's
// frequency-ranked row space (datasynth IDs are Zipf rank-ordered — low ID =
// hot) is split into exponentially growing buckets [0,1), [1,2), [2,4), ...,
// and a bucket is either resident or not. Per dispatch, the expected row
// accesses of the batch (size x rows-per-sample) distribute over buckets by
// the closed-form Zipf mass, hits are the resident share, and the cold
// remainder is charged through uvmcache.PCIePenalty. The analytic expectation
// keeps the per-dispatch cost O(features x log rows) and allocation-free —
// the same style of closed-form accounting the rest of the simulator uses.
package emcache

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/uvmcache"
)

// Policy selects the eviction discipline of the tier.
type Policy int

const (
	// PolicyStatic pins the frequency-optimal allocation computed from the
	// initial access profile (uvmcache.AllocateBudget's greedy
	// accesses-per-byte rule at bucket granularity) and never evicts.
	// Combined with Config.RetierEvery it becomes the re-tiering tier: the
	// allocation is recomputed online from windowed heat.
	PolicyStatic Policy = iota
	// PolicyLRU fills touched non-resident buckets on miss, evicting the
	// least-recently-touched resident bucket.
	PolicyLRU
	// PolicyClock approximates LFU with a CLOCK sweep: a reference bit per
	// bucket, set on touch, cleared as the hand passes; the first unreferenced
	// bucket is the victim.
	PolicyClock
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case PolicyStatic:
		return "static"
	case PolicyLRU:
		return "lru"
	case PolicyClock:
		return "clock"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy resolves the CLI spelling of an eviction policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "static", "":
		return PolicyStatic, nil
	case "lru":
		return PolicyLRU, nil
	case "clock", "lfu":
		return PolicyClock, nil
	}
	return 0, fmt.Errorf("emcache: unknown cache policy %q (want static, lru or clock)", s)
}

// FeatureHeat is one feature's table shape and access statistics: how much of
// each dispatched batch's row traffic it carries and how skewed that traffic
// is over the feature's frequency-ranked rows.
type FeatureHeat struct {
	// Rows is the feature's table size (row count).
	Rows int
	// RowBytes is the embedding row size in bytes (4 x dim for fp32).
	RowBytes int64
	// RowsPerSample is the mean embedding rows one batch sample reads from
	// this feature (coverage x mean pooling factor).
	RowsPerSample float64
	// Skew is the Zipf exponent of the row-rank access distribution
	// (0 = uniform).
	Skew float64
}

// ProfilePhase is one step of a model's time-varying access profile.
type ProfilePhase struct {
	// Start is the simulated time the phase takes effect; phase 0 is active
	// from the beginning regardless of its Start.
	Start float64
	// Features holds one FeatureHeat per feature. Rows and RowBytes must not
	// change across phases (tables don't resize mid-trace); RowsPerSample and
	// Skew may — that is exactly the heat drift the tier re-tiers under.
	Features []FeatureHeat
}

// ModelProfile is one model's access profile: a step function of phases over
// simulated time.
type ModelProfile struct {
	Phases []ProfilePhase
}

// Steady wraps a single never-drifting phase, the common case.
func Steady(features []FeatureHeat) ModelProfile {
	return ModelProfile{Phases: []ProfilePhase{{Features: features}}}
}

// Config shapes the tier.
type Config struct {
	// BudgetBytes is the shared GPU-memory budget for hot rows. Must be
	// positive.
	BudgetBytes int64
	// Policy selects the eviction discipline.
	Policy Policy
	// RetierEvery re-runs the budget allocator from windowed heat at most
	// every this many simulated seconds (paced at dispatch events, like the
	// pool's rebalance hook); 0 disables online re-tiering.
	RetierEvery float64
	// HeatDecay is the fraction of accumulated heat carried across retier
	// windows (EWMA); 0 defaults to 0.5.
	HeatDecay float64
	// FillThreshold is the expected per-batch touch mass below which a bucket
	// neither warms in nor refreshes its recency — it keeps the long Zipf
	// tail's infinitesimal expected touches from pinning every bucket.
	// 0 defaults to 1 (at least one expected row access).
	FillThreshold float64
	// Models holds one access profile per pool model, in pool model order.
	Models []ModelProfile
	// Tenants is the pool's tenant count (for per-tenant accounting).
	Tenants int
}

// bucket is one rank range of one feature.
type bucket struct {
	feature  int     // index into Tier.feats
	bytes    int64   // rows in the range x RowBytes
	invRows  float64 // 1 / rows in the range (fills count distinct rows)
	weight   float64 // current-phase access probability of the range
	resident bool
	initRes  bool // residency of the initial static allocation
	ref      bool // CLOCK reference bit
	last     float64
	window   float64 // access mass since the last retier
	heat     float64 // EWMA access mass across retier windows
	lo, hi   int     // rank range [lo, hi)
}

// featState is one (model, feature) pair.
type featState struct {
	model  int
	heat   FeatureHeat // current phase's entry
	b0, bn int         // bucket index range in Tier.buckets
}

// modelState tracks a model's profile position.
type modelState struct {
	profile ModelProfile
	phase   int
	f0, fn  int // feature index range in Tier.feats
}

// GroupStats is the per-model or per-tenant cache accounting of one session.
// Access counts are expected row reads (floats — the accounting is analytic).
type GroupStats struct {
	// Name labels the group; fleet fills it from its model/tenant lists.
	Name string
	// RowReads, Hits and Misses count expected embedding-row accesses.
	RowReads, Hits, Misses float64
	// ColdBytes is the bytes faulted over PCIe for the group's misses.
	ColdBytes float64
	// Penalty is the total service-time inflation charged, in seconds.
	Penalty float64
	// Fills and Evictions count residency changes the group's dispatches
	// caused (evictions may victimize another group's buckets — that
	// cross-model contention is the point of a shared tier).
	Fills, Evictions int
	// OccupiedBytes is the group's resident bytes at snapshot time
	// (models only; a tenant owns no rows).
	OccupiedBytes int64
	// HitRate is Hits / RowReads (0 when nothing was read).
	HitRate float64
}

// Snapshot is the tier's observability view, taken at session close.
type Snapshot struct {
	Policy                     string
	BudgetBytes, OccupiedBytes int64
	RowReads, Hits, Misses     float64
	ColdBytes, Penalty         float64
	Fills, Evictions, Retiers  int
	HitRate                    float64
	Models, Tenants            []GroupStats
}

// String summarizes the tier-wide counters in one line.
func (s *Snapshot) String() string {
	return fmt.Sprintf("policy=%s hit-rate=%.1f%% occupancy=%s/%s cold=%s penalty=%.3fms fills=%d evictions=%d retiers=%d",
		s.Policy, 100*s.HitRate, fmtBytes(s.OccupiedBytes), fmtBytes(s.BudgetBytes),
		fmtBytes(int64(s.ColdBytes)), s.Penalty*1e3, s.Fills, s.Evictions, s.Retiers)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// Tier is the shared embedding-cache state machine. Not safe for concurrent
// use: the fleet engine that owns it serializes all Dispatch calls (live
// admission is already serialized for determinism).
type Tier struct {
	cfg     Config
	models  []modelState
	feats   []featState
	buckets []bucket

	occupied int64
	initOcc  int64
	hand     int
	started  bool
	lastRet  float64

	rowReads, hits, misses float64
	coldBytes, penalty     float64
	fills, evicts, retiers int
	perModel               []GroupStats
	perTenant              []GroupStats

	scratch []int // fill candidates of the current dispatch
	order   []int // retier sort scratch
}

// New validates the configuration, computes the initial frequency-optimal
// static allocation and returns a ready tier.
func New(cfg Config) (*Tier, error) {
	if cfg.BudgetBytes <= 0 {
		return nil, fmt.Errorf("emcache: budget must be positive, got %d", cfg.BudgetBytes)
	}
	if len(cfg.Models) == 0 {
		return nil, fmt.Errorf("emcache: need at least one model profile")
	}
	if cfg.Tenants <= 0 {
		return nil, fmt.Errorf("emcache: need at least one tenant")
	}
	if cfg.Policy < PolicyStatic || cfg.Policy > PolicyClock {
		return nil, fmt.Errorf("emcache: unknown policy %d", int(cfg.Policy))
	}
	if cfg.RetierEvery < 0 {
		return nil, fmt.Errorf("emcache: RetierEvery must be >= 0, got %g", cfg.RetierEvery)
	}
	if cfg.HeatDecay < 0 || cfg.HeatDecay >= 1 {
		return nil, fmt.Errorf("emcache: HeatDecay %g outside [0,1)", cfg.HeatDecay)
	}
	if cfg.HeatDecay == 0 {
		cfg.HeatDecay = 0.5
	}
	if cfg.FillThreshold < 0 {
		return nil, fmt.Errorf("emcache: FillThreshold must be >= 0, got %g", cfg.FillThreshold)
	}
	if cfg.FillThreshold == 0 {
		cfg.FillThreshold = 1
	}

	t := &Tier{cfg: cfg}
	for m, mp := range cfg.Models {
		if len(mp.Phases) == 0 {
			return nil, fmt.Errorf("emcache: model %d has no profile phases", m)
		}
		base := mp.Phases[0].Features
		if len(base) == 0 {
			return nil, fmt.Errorf("emcache: model %d has no features", m)
		}
		for pi, ph := range mp.Phases {
			if pi > 0 && ph.Start < mp.Phases[pi-1].Start {
				return nil, fmt.Errorf("emcache: model %d phases not sorted (phase %d at t=%g after t=%g)",
					m, pi, ph.Start, mp.Phases[pi-1].Start)
			}
			if len(ph.Features) != len(base) {
				return nil, fmt.Errorf("emcache: model %d phase %d has %d features, phase 0 has %d",
					m, pi, len(ph.Features), len(base))
			}
			for f, fh := range ph.Features {
				if fh.Rows <= 0 || fh.RowBytes <= 0 {
					return nil, fmt.Errorf("emcache: model %d feature %d: need positive Rows and RowBytes", m, f)
				}
				if fh.RowsPerSample < 0 || fh.Skew < 0 {
					return nil, fmt.Errorf("emcache: model %d feature %d: negative RowsPerSample or Skew", m, f)
				}
				if fh.Rows != base[f].Rows || fh.RowBytes != base[f].RowBytes {
					return nil, fmt.Errorf("emcache: model %d feature %d resizes across phases (tables are fixed; only RowsPerSample/Skew may drift)", m, f)
				}
			}
		}
		ms := modelState{profile: mp, f0: len(t.feats)}
		for _, fh := range base {
			fs := featState{model: m, heat: fh, b0: len(t.buckets)}
			for lo, hi := 0, 1; lo < fh.Rows; lo, hi = hi, hi*2 {
				if hi > fh.Rows {
					hi = fh.Rows
				}
				rows := hi - lo
				t.buckets = append(t.buckets, bucket{
					feature: len(t.feats),
					bytes:   int64(rows) * fh.RowBytes,
					invRows: 1 / float64(rows),
					lo:      lo, hi: hi,
				})
			}
			fs.bn = len(t.buckets)
			t.feats = append(t.feats, fs)
		}
		ms.fn = len(t.feats)
		t.models = append(t.models, ms)
	}

	t.perModel = make([]GroupStats, len(cfg.Models))
	t.perTenant = make([]GroupStats, cfg.Tenants)
	t.scratch = make([]int, 0, len(t.buckets))
	t.order = make([]int, len(t.buckets))

	t.applyPhases()
	t.allocateInitial()
	t.Reset()
	return t, nil
}

// Models returns the number of model profiles the tier was built for.
func (t *Tier) Models() int { return len(t.models) }

// Tenants returns the tenant count the tier accounts for.
func (t *Tier) Tenants() int { return t.cfg.Tenants }

// Policy returns the tier's eviction policy.
func (t *Tier) Policy() Policy { return t.cfg.Policy }

// Budget returns the shared budget in bytes.
func (t *Tier) Budget() int64 { return t.cfg.BudgetBytes }

// Occupied returns the resident bytes right now.
func (t *Tier) Occupied() int64 { return t.occupied }

// applyPhases recomputes every feature's current-phase heat and its buckets'
// Zipf access weights from the models' phase positions.
func (t *Tier) applyPhases() {
	for m := range t.models {
		ms := &t.models[m]
		ph := ms.profile.Phases[ms.phase]
		for fi := ms.f0; fi < ms.fn; fi++ {
			fs := &t.feats[fi]
			fs.heat = ph.Features[fi-ms.f0]
			for bi := fs.b0; bi < fs.bn; bi++ {
				b := &t.buckets[bi]
				b.weight = uvmcache.ZipfBucketMass(b.lo, b.hi, fs.heat.Rows, fs.heat.Skew)
			}
		}
	}
}

// allocateInitial computes the static frequency-optimal residency: greedy by
// expected accesses per byte over all buckets (the bucket-granular form of
// uvmcache.AllocateBudget's density rule), assuming phase-0 heat and equal
// per-model traffic. The result is recorded as the Reset state.
func (t *Tier) allocateInitial() {
	for i := range t.order {
		t.order[i] = i
	}
	density := func(bi int) float64 {
		b := &t.buckets[bi]
		return t.feats[b.feature].heat.RowsPerSample * b.weight / float64(b.bytes)
	}
	sort.SliceStable(t.order, func(a, b int) bool {
		return density(t.order[a]) > density(t.order[b])
	})
	var occ int64
	for _, bi := range t.order {
		b := &t.buckets[bi]
		if density(bi) <= 0 || occ+b.bytes > t.cfg.BudgetBytes {
			continue
		}
		b.initRes = true
		occ += b.bytes
	}
	t.initOcc = occ
}

// Reset restores the tier to its initial state: the static allocation
// resident, all heat and counters cleared. fleet.Pool.Begin calls this so
// every session of a reused pool evolves the cache identically — the replay
// invariant depends on it.
func (t *Tier) Reset() {
	for i := range t.buckets {
		b := &t.buckets[i]
		b.resident = b.initRes
		b.ref = false
		b.last = math.Inf(-1)
		b.window = 0
		b.heat = 0
	}
	for m := range t.models {
		t.models[m].phase = 0
	}
	t.applyPhases()
	t.occupied = t.initOcc
	t.hand = 0
	t.started = false
	t.lastRet = 0
	t.rowReads, t.hits, t.misses = 0, 0, 0
	t.coldBytes, t.penalty = 0, 0
	t.fills, t.evicts, t.retiers = 0, 0, 0
	for i := range t.perModel {
		t.perModel[i] = GroupStats{}
	}
	for i := range t.perTenant {
		t.perTenant[i] = GroupStats{}
	}
}

// Dispatch is the tier's single mutation point: account one dispatched batch
// of the given model and tenant at simulated time now, warm the tier per the
// eviction policy, possibly re-tier the budget, and return the service-time
// penalty (seconds) of the cold traffic. The fleet engine adds the penalty to
// the request's resolved service time before any deadline decision, so misses
// propagate into queueing exactly like slow kernels do.
//
// Calls must be made with non-decreasing now; fleet dispatch events satisfy
// this by construction.
func (t *Tier) Dispatch(model, tenant int, now float64, size int) float64 {
	if model < 0 || model >= len(t.models) || tenant < 0 || tenant >= len(t.perTenant) || size <= 0 {
		return 0
	}
	if !t.started {
		t.started = true
		t.lastRet = now
	}
	t.advancePhase(model, now)
	if t.cfg.RetierEvery > 0 && now >= t.lastRet+t.cfg.RetierEvery {
		t.retier(now)
	}

	ms := &t.models[model]
	var reads, cold, coldBytes float64
	t.scratch = t.scratch[:0]
	for fi := ms.f0; fi < ms.fn; fi++ {
		fs := &t.feats[fi]
		acc := float64(size) * fs.heat.RowsPerSample
		if acc <= 0 {
			continue
		}
		rowBytes := float64(fs.heat.RowBytes)
		for bi := fs.b0; bi < fs.bn; bi++ {
			b := &t.buckets[bi]
			mass := acc * b.weight
			if mass <= 0 {
				continue
			}
			reads += mass
			b.window += mass
			touched := mass >= t.cfg.FillThreshold
			if touched {
				b.last = now
				b.ref = true
			}
			if b.resident {
				continue
			}
			cold += mass
			coldBytes += mass * rowBytes
			if touched && t.cfg.Policy != PolicyStatic {
				t.scratch = append(t.scratch, bi)
			}
		}
	}
	// Fills warm the tier after the cold batch paid for them: the faulted
	// rows are on the GPU now, so subsequent batches hit.
	for _, bi := range t.scratch {
		t.admit(bi, now, model)
	}

	pen := uvmcache.PCIePenalty(cold, coldBytes)
	hits := reads - cold
	t.rowReads += reads
	t.hits += hits
	t.misses += cold
	t.coldBytes += coldBytes
	t.penalty += pen
	pm, pt := &t.perModel[model], &t.perTenant[tenant]
	pm.RowReads += reads
	pm.Hits += hits
	pm.Misses += cold
	pm.ColdBytes += coldBytes
	pm.Penalty += pen
	pt.RowReads += reads
	pt.Hits += hits
	pt.Misses += cold
	pt.ColdBytes += coldBytes
	pt.Penalty += pen
	return pen
}

// advancePhase steps a model's profile to the phase active at now.
func (t *Tier) advancePhase(model int, now float64) {
	ms := &t.models[model]
	moved := false
	for ms.phase+1 < len(ms.profile.Phases) && ms.profile.Phases[ms.phase+1].Start <= now {
		ms.phase++
		moved = true
	}
	if !moved {
		return
	}
	ph := ms.profile.Phases[ms.phase]
	for fi := ms.f0; fi < ms.fn; fi++ {
		fs := &t.feats[fi]
		fs.heat = ph.Features[fi-ms.f0]
		for bi := fs.b0; bi < fs.bn; bi++ {
			b := &t.buckets[bi]
			b.weight = uvmcache.ZipfBucketMass(b.lo, b.hi, fs.heat.Rows, fs.heat.Skew)
		}
	}
}

// admit makes a touched non-resident bucket resident, evicting victims per
// the policy until it fits. Buckets touched by the current dispatch (last ==
// now) are protected; if no victim remains the admission is skipped — the
// working set outgrew the budget, and thrashing within one batch helps
// nobody.
func (t *Tier) admit(bi int, now float64, model int) {
	b := &t.buckets[bi]
	if b.resident || b.bytes > t.cfg.BudgetBytes {
		return
	}
	for t.occupied+b.bytes > t.cfg.BudgetBytes {
		v := t.victim(now)
		if v < 0 {
			return
		}
		t.buckets[v].resident = false
		t.occupied -= t.buckets[v].bytes
		t.evicts++
		t.perModel[model].Evictions++
	}
	b.resident = true
	t.occupied += b.bytes
	t.fills++
	t.perModel[model].Fills++
}

// victim picks the next bucket to evict, or -1 when every resident bucket is
// protected by the current dispatch.
func (t *Tier) victim(now float64) int {
	switch t.cfg.Policy {
	case PolicyLRU:
		best, bestLast := -1, math.Inf(1)
		for i := range t.buckets {
			b := &t.buckets[i]
			if !b.resident || b.last >= now {
				continue
			}
			if b.last < bestLast {
				best, bestLast = i, b.last
			}
		}
		return best
	case PolicyClock:
		n := len(t.buckets)
		for pass := 0; pass < 2*n; pass++ {
			i := t.hand
			t.hand = (t.hand + 1) % n
			b := &t.buckets[i]
			if !b.resident || b.last >= now {
				continue
			}
			if b.ref {
				b.ref = false
				continue
			}
			return i
		}
		return -1
	}
	return -1
}

// retier re-runs the budget allocator from observed heat: the accumulated
// window mass folds into the EWMA heat, and residency is reassigned greedily
// by heat per byte — the online, measurement-driven analogue of the initial
// static allocation (and of the supervisor's schedule re-tune: same drift,
// different resource). Runs for every policy; with PolicyStatic it is the
// only residency change the tier ever makes.
func (t *Tier) retier(now float64) {
	t.lastRet = now
	t.retiers++
	for i := range t.buckets {
		b := &t.buckets[i]
		b.heat = t.cfg.HeatDecay*b.heat + b.window
		b.window = 0
	}
	for i := range t.order {
		t.order[i] = i
	}
	sort.SliceStable(t.order, func(a, b int) bool {
		x, y := &t.buckets[t.order[a]], &t.buckets[t.order[b]]
		return x.heat/float64(x.bytes) > y.heat/float64(y.bytes)
	})
	var occ int64
	for _, bi := range t.order {
		b := &t.buckets[bi]
		want := b.heat > 0 && occ+b.bytes <= t.cfg.BudgetBytes
		if want {
			occ += b.bytes
		}
		if want != b.resident {
			if b.resident {
				t.evicts++
			} else {
				t.fills++
			}
			b.resident = want
		}
	}
	t.occupied = occ
}

// Snapshot returns the tier's accounting view. Group names are left empty;
// the pool fills them from its model/tenant lists.
func (t *Tier) Snapshot() *Snapshot {
	s := &Snapshot{
		Policy:        t.cfg.Policy.String(),
		BudgetBytes:   t.cfg.BudgetBytes,
		OccupiedBytes: t.occupied,
		RowReads:      t.rowReads,
		Hits:          t.hits,
		Misses:        t.misses,
		ColdBytes:     t.coldBytes,
		Penalty:       t.penalty,
		Fills:         t.fills,
		Evictions:     t.evicts,
		Retiers:       t.retiers,
		Models:        append([]GroupStats(nil), t.perModel...),
		Tenants:       append([]GroupStats(nil), t.perTenant...),
	}
	if s.RowReads > 0 {
		s.HitRate = s.Hits / s.RowReads
	}
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.resident {
			s.Models[t.feats[b.feature].model].OccupiedBytes += b.bytes
		}
	}
	for i := range s.Models {
		if s.Models[i].RowReads > 0 {
			s.Models[i].HitRate = s.Models[i].Hits / s.Models[i].RowReads
		}
	}
	for i := range s.Tenants {
		if s.Tenants[i].RowReads > 0 {
			s.Tenants[i].HitRate = s.Tenants[i].Hits / s.Tenants[i].RowReads
		}
	}
	return s
}
