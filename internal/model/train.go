package model

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/embedding"
)

// Trainer runs full-model training steps through the fused kernels: fused
// embedding forward, concat, MLP forward, MSE loss, MLP backward, gradient
// un-concat, fused embedding backward, SGD on both the dense tower and the
// embedding tables. It completes the training direction the paper declares
// open ("no fundamental reason limiting RecFlex from optimizing the training
// process, except the manual efforts to support more operators").
type Trainer struct {
	Opt    *core.RecFlex
	Tables []*embedding.Table
	MLP    *dnn.MLP
	LR     float32
}

// NewTrainer wires a tuned optimizer, its tables and a dense tower.
func NewTrainer(opt *core.RecFlex, tables []*embedding.Table, mlp *dnn.MLP, lr float32) (*Trainer, error) {
	features := opt.Features()
	if len(tables) != len(features) {
		return nil, fmt.Errorf("model: %d tables for %d features", len(tables), len(features))
	}
	total := 0
	for f := range features {
		if features[f].Pool != embedding.PoolSum && features[f].Pool != embedding.PoolMean {
			return nil, fmt.Errorf("model: feature %d uses %v pooling; training supports sum/mean", f, features[f].Pool)
		}
		total += features[f].Dim
	}
	if len(mlp.Layers) == 0 || mlp.Layers[0].In != total {
		return nil, fmt.Errorf("model: MLP input %d != concat width %d", mlp.Layers[0].In, total)
	}
	if lr <= 0 {
		return nil, fmt.Errorf("model: learning rate must be positive, got %g", lr)
	}
	return &Trainer{Opt: opt, Tables: tables, MLP: mlp, LR: lr}, nil
}

// StepResult reports one training step.
type StepResult struct {
	Loss float64
	// Simulated GPU times of the four stages.
	EmbFwd, MLPFwd, MLPBwd, EmbBwd float64
}

// Step runs one SGD step on (batch, targets): targets is the desired MLP
// output (batch * lastLayerDim), loss is mean squared error.
func (t *Trainer) Step(batch *embedding.Batch, targets []float32) (*StepResult, error) {
	features := t.Opt.Features()
	dev := t.Opt.Device()
	batchSize := batch.BatchSize()
	dims := make([]int, len(features))
	for f := range features {
		dims[f] = features[f].Dim
	}

	// Embedding forward (fused kernel).
	fu, err := t.Opt.CompileBatch(batch)
	if err != nil {
		return nil, err
	}
	outs, embSim, err := fu.Run(t.Tables, batch)
	if err != nil {
		return nil, err
	}
	joined, err := dnn.Concat(outs, dims, batchSize)
	if err != nil {
		return nil, err
	}

	// MLP forward.
	acts, err := t.MLP.ForwardActivations(joined, batchSize)
	if err != nil {
		return nil, err
	}
	pred := acts[len(acts)-1]
	if len(targets) != len(pred) {
		return nil, fmt.Errorf("model: %d targets for %d outputs", len(targets), len(pred))
	}
	mlpFwd, err := dnn.MeasureTower(batchSize, t.MLP.Layers[0].In, hiddenOf(t.MLP), dev)
	if err != nil {
		return nil, err
	}

	// MSE loss and upstream gradient.
	res := &StepResult{EmbFwd: embSim.Time, MLPFwd: mlpFwd}
	dy := make([]float32, len(pred))
	for i := range pred {
		d := pred[i] - targets[i]
		res.Loss += float64(d) * float64(d)
		dy[i] = 2 * d / float32(len(pred))
	}
	res.Loss /= float64(len(pred))

	// MLP backward + SGD.
	dJoined, mlpGrads, err := t.MLP.Backward(acts, dy, batchSize)
	if err != nil {
		return nil, err
	}
	if res.MLPBwd, err = dnn.MeasureTowerBackward(batchSize, t.MLP.Layers[0].In, hiddenOf(t.MLP), dev); err != nil {
		return nil, err
	}
	if err := t.MLP.SGD(mlpGrads, t.LR); err != nil {
		return nil, err
	}

	// Un-concat the joined gradient into per-feature upstream gradients.
	upstream := splitConcat(dJoined, dims, batchSize)

	// Fused embedding backward + SGD on the tables.
	bp, err := fu.Backward(batch)
	if err != nil {
		return nil, err
	}
	bwdSim, err := bp.Simulate()
	if err != nil {
		return nil, err
	}
	res.EmbBwd = bwdSim.Time
	grads, err := bp.Execute(batch, upstream)
	if err != nil {
		return nil, err
	}
	for f := range t.Tables {
		data := t.Tables[f].Data
		for i := range grads[f] {
			data[i] -= t.LR * grads[f][i]
		}
	}
	return res, nil
}

// hiddenOf recovers the tower shape for the cost model.
func hiddenOf(m *dnn.MLP) []int {
	out := make([]int, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = l.Out
	}
	return out
}

// splitConcat inverts dnn.Concat: one batch*dim buffer per feature.
func splitConcat(joined []float32, dims []int, batch int) [][]float32 {
	total := 0
	for _, d := range dims {
		total += d
	}
	outs := make([][]float32, len(dims))
	off := 0
	for f, d := range dims {
		outs[f] = make([]float32, batch*d)
		for r := 0; r < batch; r++ {
			copy(outs[f][r*d:(r+1)*d], joined[r*total+off:r*total+off+d])
		}
		off += d
	}
	return outs
}

// SimulatedStepTime sums the step's GPU stage times.
func (r *StepResult) SimulatedStepTime() float64 {
	return r.EmbFwd + r.MLPFwd + r.MLPBwd + r.EmbBwd
}
