package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/baselines"
	"repro/internal/datasynth"
	"repro/internal/dnn"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
)

func pipelineModel(t *testing.T) ([]fusion.FeatureInfo, *datasynth.ModelConfig) {
	t.Helper()
	cfg := &datasynth.ModelConfig{Name: "pipe", Seed: 61, Features: []datasynth.FeatureSpec{
		{Name: "a", Dim: 4, Rows: 256, PF: datasynth.Fixed{K: 1}, Coverage: 1},
		{Name: "b", Dim: 8, Rows: 256, PF: datasynth.Fixed{K: 10}, Coverage: 1},
		{Name: "c", Dim: 16, Rows: 256, PF: datasynth.Uniform{Lo: 1, Hi: 8}, Coverage: 1},
	}}
	features := make([]fusion.FeatureInfo, len(cfg.Features))
	for f := range features {
		features[f] = fusion.FeatureInfo{
			Name: cfg.Features[f].Name, Dim: cfg.Features[f].Dim,
			TableRows: cfg.Features[f].Rows, Pool: embedding.PoolSum,
		}
	}
	return features, cfg
}

func TestPipelineTotalDim(t *testing.T) {
	features, _ := pipelineModel(t)
	p, err := NewPipeline(gpusim.V100(), features)
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalDim() != 28 {
		t.Errorf("TotalDim = %d, want 28", p.TotalDim())
	}
	if _, err := NewPipeline(gpusim.V100(), nil); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestMeasureE2EDecomposition(t *testing.T) {
	features, cfg := pipelineModel(t)
	p, err := NewPipeline(gpusim.V100(), features)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	batch, err := datasynth.GenerateBatch(cfg, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.MeasureE2E(baselines.TorchRec{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Embedding <= 0 || res.Concat <= 0 || res.MLP <= 0 {
		t.Errorf("stage times must be positive: %+v", res)
	}
	if math.Abs(res.Total()-(res.Embedding+res.Concat+res.MLP)) > 1e-15 {
		t.Error("Total does not sum stages")
	}
}

// End-to-end speedups are diluted by the DNN stages (§VI-C): the relative gap
// between two systems must shrink when concat+MLP are added.
func TestE2EDilutesKernelSpeedup(t *testing.T) {
	features, cfg := pipelineModel(t)
	p, err := NewPipeline(gpusim.V100(), features)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	batch, err := datasynth.GenerateBatch(cfg, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := p.MeasureE2E(baselines.TensorFlow{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := p.MeasureE2E(baselines.TorchRec{}, batch)
	if err != nil {
		t.Fatal(err)
	}
	kernelSpeedup := slow.Embedding / fast.Embedding
	e2eSpeedup := slow.Total() / fast.Total()
	if e2eSpeedup >= kernelSpeedup {
		t.Errorf("e2e speedup (%.2f) should be below kernel speedup (%.2f)", e2eSpeedup, kernelSpeedup)
	}
	if e2eSpeedup <= 1 {
		t.Errorf("e2e speedup %.2f should still favor the faster system", e2eSpeedup)
	}
}

func TestForwardCPU(t *testing.T) {
	features, cfg := pipelineModel(t)
	p, err := NewPipeline(gpusim.V100(), features)
	if err != nil {
		t.Fatal(err)
	}
	p.Hidden = []int{16, 4} // small tower for the functional path
	tables, err := datasynth.BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	batch, err := datasynth.GenerateBatch(cfg, 8, rng)
	if err != nil {
		t.Fatal(err)
	}
	y, err := p.ForwardCPU(tables, batch, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 8*4 {
		t.Fatalf("output length %d, want 32", len(y))
	}
	// Must equal the hand-composed reference.
	outs, err := fusion.ReferenceOutputs(features, tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	dims := []int{4, 8, 16}
	joined, err := dnn.Concat(outs, dims, 8)
	if err != nil {
		t.Fatal(err)
	}
	mlp, err := dnn.NewMLP(28, p.Hidden, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, err := mlp.Forward(joined, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
}
