package model

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/dnn"
	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

func trainerFixture(t *testing.T) (*Trainer, *embedding.Batch, []float32) {
	t.Helper()
	features, cfg := pipelineModel(t)
	tables, err := datasynth.BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	hist, err := datasynth.GenerateBatch(cfg, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.New(gpusim.V100(), features)
	if err := opt.Tune([]*embedding.Batch{hist}, tuner.Options{Occupancies: []int{2, 4, 8}, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	mlp, err := dnn.NewMLP(28, []int{8, 4}, 5) // concat width of pipelineModel is 28
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := NewTrainer(opt, tables, mlp, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := datasynth.GenerateBatch(cfg, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	targets := make([]float32, 16*4)
	for i := range targets {
		targets[i] = float32(rng.NormFloat64())
	}
	return trainer, batch, targets
}

// Full-model training: loss must fall monotonically under SGD on a fixed
// batch — the end-to-end check that fused embedding gradients, concat
// inversion and MLP backprop compose correctly.
func TestTrainerLossDecreases(t *testing.T) {
	trainer, batch, targets := trainerFixture(t)
	prev := 0.0
	for step := 0; step < 5; step++ {
		res, err := trainer.Step(batch, targets)
		if err != nil {
			t.Fatal(err)
		}
		if res.EmbFwd <= 0 || res.MLPFwd <= 0 || res.MLPBwd <= 0 || res.EmbBwd <= 0 {
			t.Fatalf("step %d: non-positive stage times %+v", step, res)
		}
		if res.SimulatedStepTime() < res.EmbFwd {
			t.Fatal("step time must include all stages")
		}
		if step > 0 && res.Loss >= prev {
			t.Fatalf("step %d: loss did not decrease: %g -> %g", step, prev, res.Loss)
		}
		prev = res.Loss
	}
}

func TestNewTrainerValidation(t *testing.T) {
	features, cfg := pipelineModel(t)
	tables, err := datasynth.BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	opt := core.New(gpusim.V100(), features)
	mlp, err := dnn.NewMLP(28, []int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrainer(opt, tables[:1], mlp, 0.1); err == nil {
		t.Error("table count mismatch accepted")
	}
	badMLP, err := dnn.NewMLP(5, []int{4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewTrainer(opt, tables, badMLP, 0.1); err == nil {
		t.Error("MLP width mismatch accepted")
	}
	if _, err := NewTrainer(opt, tables, mlp, 0); err == nil {
		t.Error("zero learning rate accepted")
	}
	// Max pooling is not trainable.
	features[0].Pool = embedding.PoolMax
	optMax := core.New(gpusim.V100(), features)
	if _, err := NewTrainer(optMax, tables, mlp, 0.1); err == nil {
		t.Error("max pooling accepted for training")
	}
}

func TestTrainerStepValidation(t *testing.T) {
	trainer, batch, targets := trainerFixture(t)
	if _, err := trainer.Step(batch, targets[:3]); err == nil {
		t.Error("short targets accepted")
	}
}

func TestSplitConcatInvertsConcat(t *testing.T) {
	dims := []int{2, 3, 1}
	batch := 4
	outs := make([][]float32, len(dims))
	rng := rand.New(rand.NewSource(17))
	for f, d := range dims {
		outs[f] = make([]float32, batch*d)
		for i := range outs[f] {
			outs[f][i] = float32(rng.NormFloat64())
		}
	}
	joined, err := dnn.Concat(outs, dims, batch)
	if err != nil {
		t.Fatal(err)
	}
	back := splitConcat(joined, dims, batch)
	for f := range outs {
		for i := range outs[f] {
			if back[f][i] != outs[f][i] {
				t.Fatalf("feature %d elem %d: %g != %g", f, i, back[f][i], outs[f][i])
			}
		}
	}
}
