// Package model assembles the full inference pipeline of a deep
// recommendation model (the paper's Figure 1): host-side preprocessing with
// workload analysis, the fused embedding kernel, the concat operator and the
// MLP tower, with both simulated end-to-end latency (Figure 10) and a CPU
// reference forward pass for correctness.
package model

import (
	"fmt"

	"repro/internal/baselines"
	"repro/internal/dnn"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
)

// PaperHidden is the MLP tower of the end-to-end evaluation (§VI-C).
var PaperHidden = []int{1024, 256, 128}

// Pipeline is one recommendation model on one device.
type Pipeline struct {
	Device   *gpusim.Device
	Features []fusion.FeatureInfo
	Hidden   []int
}

// NewPipeline builds a pipeline with the paper's MLP tower.
func NewPipeline(dev *gpusim.Device, features []fusion.FeatureInfo) (*Pipeline, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("model: no features")
	}
	return &Pipeline{Device: dev, Features: features, Hidden: PaperHidden}, nil
}

// TotalDim is the concatenated embedding width, the MLP input dimension.
func (p *Pipeline) TotalDim() int {
	total := 0
	for i := range p.Features {
		total += p.Features[i].Dim
	}
	return total
}

// E2EResult decomposes one end-to-end latency measurement.
type E2EResult struct {
	Embedding float64
	Concat    float64
	MLP       float64
}

// Total returns the end-to-end time.
func (r E2EResult) Total() float64 { return r.Embedding + r.Concat + r.MLP }

// MeasureE2E runs the embedding stage under the given system and adds the
// (system-independent) concat and MLP stages — the reason the paper's
// end-to-end speedups are smaller than its kernel speedups.
func (p *Pipeline) MeasureE2E(runner baselines.Baseline, batch *embedding.Batch) (E2EResult, error) {
	var out E2EResult
	emb, err := runner.Measure(p.Device, p.Features, batch)
	if err != nil {
		return out, fmt.Errorf("model: %s embedding stage: %w", runner.Name(), err)
	}
	out.Embedding = emb

	ck := dnn.ConcatKernel(p.TotalDim(), batch.BatchSize())
	ck.IncludeLaunchOverhead = true
	cr, err := gpusim.Simulate(p.Device, &ck)
	if err != nil {
		return out, err
	}
	out.Concat = cr.Time

	mlp, err := dnn.MeasureTower(batch.BatchSize(), p.TotalDim(), p.Hidden, p.Device)
	if err != nil {
		return out, err
	}
	out.MLP = mlp
	return out, nil
}

// ForwardCPU runs the full reference pipeline on the CPU: pool every feature,
// concat, then the MLP tower with deterministic weights. Intended for small
// example models; the first weight matrix is TotalDim()×1024.
func (p *Pipeline) ForwardCPU(tables []*embedding.Table, batch *embedding.Batch, seed uint64) ([]float32, error) {
	outs, err := fusion.ReferenceOutputs(p.Features, tables, batch)
	if err != nil {
		return nil, err
	}
	dims := make([]int, len(p.Features))
	for f := range dims {
		dims[f] = p.Features[f].Dim
	}
	joined, err := dnn.Concat(outs, dims, batch.BatchSize())
	if err != nil {
		return nil, err
	}
	mlp, err := dnn.NewMLP(p.TotalDim(), p.Hidden, seed)
	if err != nil {
		return nil, err
	}
	return mlp.Forward(joined, batch.BatchSize())
}
