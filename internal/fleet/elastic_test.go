package fleet_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// The autoscaler grows the pool one worker per pacing tick under sustained
// backlog, lags each new worker's first dispatch by ScaleOutLag, drains back
// down once demand fades, and the whole elastic run stays deterministic.
func TestFleetAutoscaleScaleOutAndIn(t *testing.T) {
	const lag = 0.2
	run := func() *fleet.Report {
		p := mustPool(t, fleet.Config{
			Queue: trace.QueuePolicy{Workers: 2},
			Autoscale: &fleet.AutoscaleConfig{
				Every:       0.5,
				Max:         4,
				ScaleOutLag: lag,
				Class:       0,
				DownBacklog: 1.0,
				Window:      1, // react to the latest backlog so the short drain tail still scales in
			},
		}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, oneTenant())
		var reqs []fleet.Request
		for i := 0; i < 40; i++ {
			reqs = append(reqs, fleet.Request{Arrival: float64(i) * 0.1, Size: 16})
		}
		return mustServe(t, p, reqs)
	}
	rep := run()
	met := rep.Metrics

	outs, ins := 0, 0
	for _, ev := range met.ScaleEvents {
		switch ev.Delta {
		case +1:
			outs++
		case -1:
			ins++
		default:
			t.Fatalf("scale event with delta %d", ev.Delta)
		}
		if ev.Workers < 1 || ev.Workers > 4 {
			t.Fatalf("scale event at t=%g left %d active workers, bounds are [1, 4]", ev.Time, ev.Workers)
		}
	}
	if outs == 0 {
		t.Fatal("sustained 10:2 overload never scaled the pool out")
	}
	if ins == 0 {
		t.Fatal("the drain phase never scaled the pool back in")
	}
	if len(met.Workers) <= 2 {
		t.Fatalf("worker stats cover %d workers, want more than the initial 2 after scale-out", len(met.Workers))
	}
	if len(met.WorkerLives) != len(met.Workers) {
		t.Fatalf("WorkerLives covers %d workers, stats cover %d", len(met.WorkerLives), len(met.Workers))
	}

	// Every added worker's first dispatch waits out the scale-out lag, and
	// every drained worker has a finite retire time past its add time.
	firstDisp := make([]float64, len(met.Workers))
	for w := range firstDisp {
		firstDisp[w] = math.Inf(1)
	}
	for i := range rep.Worker {
		if w := rep.Worker[i]; w >= 0 && rep.Dispatch[i] < firstDisp[w] {
			firstDisp[w] = rep.Dispatch[i]
		}
	}
	for w, life := range met.WorkerLives {
		if life.Worker != w {
			t.Fatalf("WorkerLives[%d] carries id %d", w, life.Worker)
		}
		if w >= 2 {
			if life.AddedAt <= 0 {
				t.Errorf("scaled-out worker %d has AddedAt %g, want > 0", w, life.AddedAt)
			}
			if firstDisp[w] < life.AddedAt+lag-1e-9 {
				t.Errorf("worker %d dispatched at %g, before its boot lag ended at %g", w, firstDisp[w], life.AddedAt+lag)
			}
		}
		if !math.IsNaN(life.RetiredAt) && life.RetiredAt < life.AddedAt {
			t.Errorf("worker %d retired at %g before it was added at %g", w, life.RetiredAt, life.AddedAt)
		}
	}
	drained := false
	for _, life := range met.WorkerLives {
		if !math.IsNaN(life.RetiredAt) {
			drained = true
		}
	}
	if !drained {
		t.Error("scale-in events recorded but no worker carries a retire time")
	}

	// Nothing lost, and the elastic replay is exact.
	if met.Served+met.Shed() != 40 {
		t.Errorf("served %d + shed %d != 40", met.Served, met.Shed())
	}
	eqFleetReports(t, rep, run())
	rep2 := run()
	if !reflect.DeepEqual(met.ScaleEvents, rep2.Metrics.ScaleEvents) {
		t.Errorf("scale decisions diverge between replays: %v vs %v", met.ScaleEvents, rep2.Metrics.ScaleEvents)
	}
}

// A worker's device class scales the kernel time of models that declare a
// ClassScale and leaves class-blind models bit-identical.
func TestFleetWorkerClassScaling(t *testing.T) {
	classed := mustPool(t, fleet.Config{
		Queue:         trace.QueuePolicy{Workers: 1},
		WorkerClasses: []int{1},
		ClassNames:    []string{"V100", "A100"},
	}, []fleet.Model{{Name: "m", Service: constSvc(2.0), ClassScale: []float64{1, 0.5}}}, oneTenant())
	rep := mustServe(t, classed, []fleet.Request{{Arrival: 0, Size: 16}})
	if rep.Service[0] != 1.0 {
		t.Errorf("A100-class service = %g, want 1.0 (2.0 kernel x 0.5 class scale)", rep.Service[0])
	}

	// A model without a ClassScale entry for the worker's class runs at 1x —
	// bitwise identical to a class-blind pool.
	blind := mustPool(t, fleet.Config{
		Queue:         trace.QueuePolicy{Workers: 1},
		WorkerClasses: []int{1},
		ClassNames:    []string{"V100", "A100"},
	}, []fleet.Model{{Name: "m", Service: constSvc(2.0)}}, oneTenant())
	rep = mustServe(t, blind, []fleet.Request{{Arrival: 0, Size: 16}})
	if rep.Service[0] != 2.0 {
		t.Errorf("class-blind service = %g, want exactly 2.0", rep.Service[0])
	}

	// Shape errors reject at construction.
	if _, err := fleet.NewPool(fleet.Config{
		Queue:         trace.QueuePolicy{Workers: 2},
		WorkerClasses: []int{0},
	}, []fleet.Model{{Name: "m", Service: constSvc(1)}}, oneTenant()); err == nil {
		t.Error("WorkerClasses shorter than the pool was accepted")
	}
	if _, err := fleet.NewPool(fleet.Config{
		Queue:         trace.QueuePolicy{Workers: 1},
		WorkerClasses: []int{2},
		ClassNames:    []string{"V100", "A100"},
	}, []fleet.Model{{Name: "m", Service: constSvc(1)}}, oneTenant()); err == nil {
		t.Error("worker class out of ClassNames range was accepted")
	}
}

// Model.Reserve carves exclusive workers out of the shared pool: the initial
// assignment honors the floor, a rebalance that would break it is rejected,
// and a reserved model's background tunes land on its spare.
func TestFleetReservations(t *testing.T) {
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 3}},
		[]fleet.Model{
			{Name: "a", Service: constSvc(1.0), Reserve: 1},
			{Name: "b", Service: constSvc(1.0)},
		}, oneTenant())
	want := fleet.Assignment{{0, 1, 2}, {1, 2}}
	if got := p.InitialAssignment(); !reflect.DeepEqual(got, want) {
		t.Errorf("initial assignment %v, want %v (worker 0 exclusive to a)", got, want)
	}

	// Dedicated placement already partitions the pool; Reserve is rejected.
	if _, err := fleet.NewPool(fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2},
		Placement: fleet.PlacementDedicated,
	}, []fleet.Model{
		{Name: "a", Service: constSvc(1), Reserve: 1},
		{Name: "b", Service: constSvc(1)},
	}, oneTenant()); err == nil {
		t.Error("Reserve under dedicated placement was accepted")
	}

	// Reservations exceeding the pool are rejected.
	if _, err := fleet.NewPool(fleet.Config{Queue: trace.QueuePolicy{Workers: 2}},
		[]fleet.Model{
			{Name: "a", Service: constSvc(1), Reserve: 2},
			{Name: "b", Service: constSvc(1), Reserve: 1},
		}, oneTenant()); err == nil {
		t.Error("reservations larger than the pool were accepted")
	}

	// A rebalance that leaves the reserved model without its exclusive floor
	// must be rejected as an engine error.
	bad := mustPool(t, fleet.Config{
		Queue:          trace.QueuePolicy{Workers: 3},
		RebalanceEvery: 0.1,
		Rebalance: func(now float64, hist []fleet.LoadSnapshot, cur fleet.Assignment) fleet.Assignment {
			return fleet.Assignment{{1, 2}, {1, 2}} // no exclusive worker for model a
		},
	}, []fleet.Model{
		{Name: "a", Service: constSvc(0.5), Reserve: 1},
		{Name: "b", Service: constSvc(0.5)},
	}, oneTenant())
	var reqs []fleet.Request
	for i := 0; i < 8; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 0.1, Size: 16, Model: i % 2})
	}
	if _, err := bad.Serve(reqs); err == nil {
		t.Error("rebalance violating the Reserve floor was applied")
	}
}

// A reserved supervised model books its background tunes on its exclusive
// spare — the "tune on a dedicated worker" shape — instead of contending on
// the shared workers.
func TestFleetReserveTunesOnSpare(t *testing.T) {
	reserved := driftyModel(t, "a", 2e-3, 0.2)
	reserved.Reserve = 1
	models := []fleet.Model{reserved, {Name: "b", Service: constSvc(2e-3)}}
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 3}}, models,
		[]fleet.TenantSpec{{Name: "lo"}, {Name: "hi", Priority: 1}})
	rep := mustServe(t, p, fleetStream(t, 400, 11))
	ws := rep.Metrics.Workers
	if ws[0].TuneBusy == 0 {
		t.Error("reserved worker 0 held no tune time despite a drifting supervised model")
	}
	for w := 1; w < len(ws); w++ {
		if ws[w].TuneBusy != 0 {
			t.Errorf("shared worker %d held %g tune time; tunes must land on the reserved spare", w, ws[w].TuneBusy)
		}
	}
}

// Chunk-boundary preemption: a queued split chunk yields its dispatch slot to
// a strictly higher-priority whole request, cutting the urgent request's
// sojourn while the split still completes with its full sojourn accounting.
func TestFleetPreemptionPrioritizesUrgent(t *testing.T) {
	tenants := []fleet.TenantSpec{
		{Name: "batch", Priority: 0},
		{Name: "rt", Priority: 1},
	}
	reqs := []fleet.Request{
		{Arrival: 0, Size: 1000, Tenant: 0, Deadline: 2.0}, // splits into 10 chunks of 1s each
		{Arrival: 0.5, Size: 10, Tenant: 1},                // 0.1s of work, arrives mid-split
	}
	build := func(preempt bool) *fleet.Pool {
		return mustPool(t, fleet.Config{
			Queue:   trace.QueuePolicy{Workers: 1, Policy: trace.DegradeSplitTail, SplitCap: 100},
			Preempt: preempt,
		}, []fleet.Model{{Name: "m", Service: sizeSvc(1e-2)}}, tenants)
	}

	base := mustServe(t, build(false), reqs)
	if base.Outcomes[0] != fleet.OutcomeSplit {
		t.Fatalf("batch request resolved %v, want split", base.Outcomes[0])
	}
	if base.Metrics.Preemptions != 0 {
		t.Fatalf("preemptions counted with Preempt off: %d", base.Metrics.Preemptions)
	}

	rep := mustServe(t, build(true), reqs)
	if rep.Metrics.Preemptions == 0 {
		t.Fatal("no preemption despite an urgent arrival behind 9 queued chunks")
	}
	if rep.Outcomes[0] != fleet.OutcomeSplit || rep.Outcomes[1] != fleet.OutcomeServed {
		t.Fatalf("outcomes %v/%v, want split/served", rep.Outcomes[0], rep.Outcomes[1])
	}
	// Without preemption the urgent request waits behind every chunk (~9.6s);
	// with it, only behind the in-flight chunk (~0.6s).
	if rep.Sojourn[1] >= base.Sojourn[1] {
		t.Errorf("urgent sojourn %g with preemption, %g without — preemption must win", rep.Sojourn[1], base.Sojourn[1])
	}
	if rep.Sojourn[1] > 1.0 {
		t.Errorf("urgent sojourn %g, want at most one chunk boundary (~0.6s)", rep.Sojourn[1])
	}
	// The split's sojourn still runs from its original arrival: the requeues
	// moved its chunks, not its clock.
	if rep.Sojourn[0] <= base.Sojourn[0]-1e-9 {
		t.Errorf("split sojourn %g shrank below the no-preempt %g; preemption cannot speed up the preempted request", rep.Sojourn[0], base.Sojourn[0])
	}
	eqFleetReports(t, rep, mustServe(t, build(true), reqs))
}

// Regression for the rebalance snapshot double-count: split chunks used to be
// added per-chunk on top of per-request queue counts, so QueuedByModel could
// exceed the engine's own pending accounting. Every snapshot's total must
// equal Live.Pending at snapshot time.
func TestFleetSnapshotTotalsMatchPending(t *testing.T) {
	var lv *fleet.Live
	hookCalls, sawSplit := 0, false
	p := mustPool(t, fleet.Config{
		Queue:          trace.QueuePolicy{Workers: 2, Deadline: 1.0, Policy: trace.DegradeSplitTail, SplitCap: 256},
		Admission:      fleet.FIFO{},
		RebalanceEvery: 0.05,
		Rebalance: func(now float64, hist []fleet.LoadSnapshot, cur fleet.Assignment) fleet.Assignment {
			hookCalls++
			last := hist[len(hist)-1]
			total := 0
			for _, q := range last.QueuedByModel {
				total += q
			}
			if pending := lv.Pending(); total != pending {
				t.Errorf("snapshot at t=%g totals %d queued, engine has %d pending", now, total, pending)
			}
			return nil
		},
	}, []fleet.Model{{Name: "m", Service: sizeSvc(1e-3)}}, oneTenant())

	lv = p.Begin()
	for _, r := range denseStream(48, true) {
		if _, _, err := lv.Admit(fleet.Request{Arrival: r.Arrival, Size: r.Size}); err != nil {
			t.Fatal(err)
		}
	}
	rep, _, err := lv.Close()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.SplitServed > 0 {
		sawSplit = true
	}
	if hookCalls == 0 {
		t.Fatal("rebalance pacing never fired")
	}
	if !sawSplit {
		t.Fatal("stream produced no splits; the regression needs in-flight chunks at snapshot time")
	}
}

// Autoscaling, preemption, supervised hot-swaps and concurrent LiveSet readers
// all run together under -race, and nothing is lost.
func TestFleetAutoscaleUnderLoad(t *testing.T) {
	models := []fleet.Model{
		driftyModel(t, "a", 2e-3, 0.2),
		driftyModel(t, "b", 1e-3, 0.5),
	}
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
	}
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2, QueueDepth: 256, Deadline: 0.25, Policy: trace.DegradeSplitTail, SplitCap: 128},
		Placement: fleet.PlacementSpread,
		Preempt:   true,
		Autoscale: &fleet.AutoscaleConfig{Every: 0.1, Max: 5, ScaleOutLag: 0.05},
	}, models, tenants)
	reqs := fleetStream(t, 1200, 42)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := range models {
		sv := models[m].Supervisor
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if g := sv.Live().Current(); g == nil || g.Service == nil {
						t.Error("torn LiveSet read during autoscaled serving")
						return
					}
				}
			}()
		}
	}
	rep, err := p.Serve(reqs)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Served+rep.Metrics.Shed() != len(reqs) {
		t.Errorf("served %d + shed %d != %d requests", rep.Metrics.Served, rep.Metrics.Shed(), len(reqs))
	}
	for i := range reqs {
		if rep.Outcomes[i] == fleet.OutcomeServed && math.IsNaN(rep.Sojourn[i]) {
			t.Fatalf("request %d served but lost its sojourn", i)
		}
	}
}
