package fleet

import (
	"fmt"

	"repro/internal/emcache"
	"repro/internal/trace"
)

// GroupMetrics is the per-model or per-tenant slice of one fleet run.
type GroupMetrics struct {
	// Name labels the group (model or tenant name).
	Name string
	// Served counts requests that completed service (including late and
	// split ones).
	Served int
	// SplitServed counts long-tail requests served through the split-at-cap
	// degradation fallback (a subset of Served).
	SplitServed int
	// Timeouts counts served requests that completed after their deadline.
	Timeouts int
	// ShedQueue, ShedQuota, ShedLoad and ShedDeadline count drops by cause.
	ShedQueue, ShedQuota, ShedLoad, ShedDeadline int
	// MaxQueued is the group's peak queued-request count.
	MaxQueued int
	// Latency is the group's served-sojourn histogram.
	Latency *trace.Histogram
	// MeanSojourn, P50, P95 and P99 are exact statistics over the group's
	// served sojourns, clamped to 0 when nothing was served (Served == 0 is
	// the "no data" signal; NaN here would poison JSON reports and gateway
	// responses).
	MeanSojourn, P50, P95, P99 float64
}

// Shed returns the group's total dropped requests.
func (g *GroupMetrics) Shed() int {
	return g.ShedQueue + g.ShedQuota + g.ShedLoad + g.ShedDeadline
}

// String summarizes the group's counters in one line.
func (g *GroupMetrics) String() string {
	split := ""
	if g.SplitServed > 0 {
		split = fmt.Sprintf(" split=%d", g.SplitServed)
	}
	return fmt.Sprintf("%s: served=%d%s timeouts=%d shed=%d (queue=%d quota=%d load=%d deadline=%d) max-queued=%d",
		g.Name, g.Served, split, g.Timeouts, g.Shed(), g.ShedQueue, g.ShedQuota, g.ShedLoad, g.ShedDeadline, g.MaxQueued)
}

// Metrics is the observability snapshot of one fleet run: pool-wide
// counters plus the per-model and per-tenant splits — the accounting
// contract multi-tenant serving is judged by.
type Metrics struct {
	// Served, Timeouts and the Shed* counters aggregate across the pool.
	Served, Timeouts                             int
	ShedQueue, ShedQuota, ShedLoad, ShedDeadline int
	// SplitServed counts long-tail requests served through the split-at-cap
	// fallback (a subset of Served).
	SplitServed int
	// MaxQueueDepth is the peak shared-queue occupancy.
	MaxQueueDepth int
	// Makespan is the span from first arrival to last completion in seconds
	// (0 when nothing was served).
	Makespan float64
	// Latency is the pool-wide served-sojourn histogram.
	Latency *trace.Histogram
	// Workers holds per-simulated-GPU accounting; TuneBusy attributes each
	// model's background tunes to the slot that held them.
	Workers []trace.WorkerStats
	// Models and Tenants are the per-group splits.
	Models, Tenants []GroupMetrics
	// Rebalances counts applied placement changes from the rebalance hook.
	Rebalances int
	// Preemptions counts chunk-boundary preemptions under Config.Preempt:
	// each is one queued split chunk that yielded its dispatch slot (to a
	// higher-priority whole request, an applied rebalance or a scale-in) and
	// was requeued at the preemption time.
	Preemptions int
	// ScaleEvents records every applied autoscaling decision in virtual-time
	// order (empty without Config.Autoscale).
	ScaleEvents []ScaleEvent
	// WorkerLives records each worker's add/retire times in an autoscaled
	// run, indexed by worker id (nil without Config.Autoscale).
	WorkerLives []WorkerLife
	// LoadHistory is every load snapshot recorded at the rebalance pacing
	// (empty when no Rebalance hook is configured). The last entry is the
	// most recent; RebalanceByLoad consumes this same history during the
	// run. Callers must treat it as read-only.
	LoadHistory []LoadSnapshot
	// Policy names the admission policy that shaped the run.
	Policy string
	// Placement names the placement strategy.
	Placement string
	// Cache is the embedding-cache tier's accounting snapshot (hit rate,
	// cold bytes, occupancy, evictions, per-model/per-tenant splits), nil
	// when the pool serves without a tier. Group names are filled from the
	// pool's model and tenant lists.
	Cache *emcache.Snapshot
}

// Shed returns the pool-wide total of dropped requests.
func (m *Metrics) Shed() int {
	return m.ShedQueue + m.ShedQuota + m.ShedLoad + m.ShedDeadline
}

// String summarizes the pool-wide counters in one line.
func (m *Metrics) String() string {
	split := ""
	if m.SplitServed > 0 {
		split = fmt.Sprintf(" split=%d", m.SplitServed)
	}
	return fmt.Sprintf("served=%d%s timeouts=%d shed=%d (queue=%d quota=%d load=%d deadline=%d) max-queue=%d models=%d tenants=%d",
		m.Served, split, m.Timeouts, m.Shed(), m.ShedQueue, m.ShedQuota, m.ShedLoad, m.ShedDeadline,
		m.MaxQueueDepth, len(m.Models), len(m.Tenants))
}

// Report is the outcome of one fleet trace: per-request results aligned to
// the caller's request order, the pool-wide Metrics, and one trace.Report
// per model (its own sojourns and — for supervised models — its swap
// history, generation count and rollbacks, exactly as a single-model
// Supervisor.Run would report them).
type Report struct {
	// Sojourn[i] is request i's end-to-end latency (for a split request,
	// last chunk completion minus arrival); NaN for shed requests.
	Sojourn []float64
	// Outcomes[i] resolves request i.
	Outcomes []Outcome
	// Generations[i] is the model-local schedule-set generation request i
	// was admitted on.
	Generations []int
	// Dispatch[i] is the virtual time request i started service (for a split
	// request, its first chunk's start); NaN for shed requests.
	Dispatch []float64
	// Worker[i] is the simulated GPU that served request i (for a split
	// request, the worker of its last-dispatched chunk); -1 for shed
	// requests.
	Worker []int
	// Service[i] is request i's resolved service time (for a split request,
	// the summed chunk service). NaN for shed requests. Interference replays
	// are built from these, over whole-served requests only.
	Service []float64
	// Metrics is the pool-wide observability snapshot.
	Metrics *Metrics
	// ModelReports[m] is model m's single-model view of the run.
	ModelReports []*trace.Report
}

// groupStats finalizes one group's exact latency statistics from its
// retained sojourns.
func groupStats(g *GroupMetrics, sojourns []float64) {
	if len(sojourns) == 0 {
		g.MeanSojourn, g.P50, g.P95, g.P99 = 0, 0, 0, 0
		return
	}
	var sum float64
	for _, s := range sojourns {
		sum += s
	}
	g.MeanSojourn = sum / float64(len(sojourns))
	var q trace.Quantiler
	g.P50, g.P95, g.P99 = q.P50P95P99(sojourns)
}
